//===- trace/TraceIO.h - Trace text serialization ---------------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line-oriented text serialization for allocation traces, so traces can be
/// saved, inspected, and replayed by external tooling.  Format:
///
///   trace v1
///   nonheaprefs <count>
///   chain <index> <f0> <f1> ... <fk>      # outermost first
///   alloc <size> <chain-index> <lifetime|never> <refs>
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TRACE_TRACEIO_H
#define LIFEPRED_TRACE_TRACEIO_H

#include "trace/AllocationTrace.h"

#include <iosfwd>
#include <optional>

namespace lifepred {

/// Writes \p Trace to \p OS in the text format above.
void writeTrace(const AllocationTrace &Trace, std::ostream &OS);

/// Parses a trace from \p IS.  Returns std::nullopt on malformed input.
std::optional<AllocationTrace> readTrace(std::istream &IS);

} // namespace lifepred

#endif // LIFEPRED_TRACE_TRACEIO_H
