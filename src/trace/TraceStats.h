//===- trace/TraceStats.h - Table 2 style trace metrics ---------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-trace summary statistics corresponding to the paper's Table 2:
/// total objects/bytes allocated, maximum simultaneously live objects/bytes,
/// and the fraction of memory references that hit the heap.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TRACE_TRACESTATS_H
#define LIFEPRED_TRACE_TRACESTATS_H

#include "trace/AllocationTrace.h"

#include <cstdint>

namespace lifepred {

/// Summary of one trace.
struct TraceStats {
  uint64_t TotalObjects = 0;  ///< Allocation events.
  uint64_t TotalBytes = 0;    ///< Sum of allocation sizes.
  uint64_t MaxLiveObjects = 0; ///< Peak simultaneously-live objects.
  uint64_t MaxLiveBytes = 0;  ///< Peak simultaneously-live bytes.
  uint64_t HeapRefs = 0;      ///< References to heap objects.
  uint64_t NonHeapRefs = 0;   ///< References elsewhere (model parameter).
  size_t DistinctChains = 0;  ///< Distinct complete call-chains.

  /// Percentage of all references that touch the heap (Table 2 "Heap Refs").
  double heapRefPercent() const {
    uint64_t Total = HeapRefs + NonHeapRefs;
    return Total == 0 ? 0.0
                      : 100.0 * static_cast<double>(HeapRefs) /
                            static_cast<double>(Total);
  }
};

/// Computes summary statistics for \p Trace via replay.
TraceStats computeTraceStats(const AllocationTrace &Trace);

} // namespace lifepred

#endif // LIFEPRED_TRACE_TRACESTATS_H
