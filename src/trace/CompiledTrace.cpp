//===- trace/CompiledTrace.cpp - Precompiled trace replay schedule ---------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/CompiledTrace.h"

#include "support/Assert.h"

#include <algorithm>
#include <utility>

using namespace lifepred;

EventSchedule::EventSchedule(const AllocationTrace &Trace) {
  const std::vector<AllocRecord> &Records = Trace.records();
  assert(Records.size() < FreeBit && "trace exceeds the 2^31-1 record limit");

  // Pass 1: every freed record's (death clock, id), then one deterministic
  // sort.  The pair ordering matches the oracle heap's comparator exactly:
  // earliest death first, ties to the earlier-born object.
  std::vector<std::pair<uint64_t, uint32_t>> Deaths;
  size_t Freed = 0;
  for (const AllocRecord &Record : Records)
    if (Record.Lifetime != NeverFreed)
      ++Freed;
  Deaths.reserve(Freed);
  uint64_t Clock = 0;
  for (uint32_t Id = 0; Id < Records.size(); ++Id) {
    const AllocRecord &Record = Records[Id];
    Clock += Record.Size;
    if (Record.Lifetime == NeverFreed)
      continue;
    uint64_t DeathClock = Clock + Record.Lifetime;
    assert(DeathClock >= Clock && "death clock wrapped uint64_t");
    Deaths.emplace_back(DeathClock, Id);
  }
  std::sort(Deaths.begin(), Deaths.end());

  // Pass 2: merge births against the sorted deaths.  A death fires before
  // the first allocation whose post-alloc clock strictly exceeds it — the
  // oracle's pop condition (see the determinism argument in the header).
  TaggedIds.reserve(Records.size() + Deaths.size());
  Clocks.reserve(Records.size() + Deaths.size());
  size_t NextDeath = 0;
  Clock = 0;
  uint64_t LiveBytes = 0;
  for (uint32_t Id = 0; Id < Records.size(); ++Id) {
    uint64_t NewClock = Clock + Records[Id].Size;
    while (NextDeath < Deaths.size() && Deaths[NextDeath].first < NewClock) {
      TaggedIds.push_back(Deaths[NextDeath].second | FreeBit);
      Clocks.push_back(Deaths[NextDeath].first);
      LiveBytes -= Records[Deaths[NextDeath].second].Size;
      ++NextDeath;
    }
    Clock = NewClock;
    TaggedIds.push_back(Id);
    Clocks.push_back(Clock);
    // Live bytes only grow at allocations, so sampling here captures the
    // exact peak a sequential replay consumer would observe.
    LiveBytes += Records[Id].Size;
    if (LiveBytes > MaxLiveBytes)
      MaxLiveBytes = LiveBytes;
  }
  TotalAllocBytes = Clock;
  // Deaths scheduled past the last allocation.
  for (; NextDeath < Deaths.size(); ++NextDeath) {
    TaggedIds.push_back(Deaths[NextDeath].second | FreeBit);
    Clocks.push_back(Deaths[NextDeath].first);
  }
  EndClock = Clock;
}

namespace {

/// Per-record site keys, chain hashing hoisted per distinct chain and the
/// finished key memoized per (chain, rounded size) in a sorted small-vector.
std::vector<SiteKey> buildRecordKeys(const AllocationTrace &Trace,
                                     const SiteKeyPolicy &Policy) {
  std::vector<SiteKey> Keys;
  Keys.reserve(Trace.size());
  if (Policy.usesType()) {
    // Type-based keys ignore the chain; derive directly (cheap).
    for (const AllocRecord &Record : Trace.records())
      Keys.push_back(siteKeyForRecord(Policy, 0, Record));
    return Keys;
  }
  std::vector<uint64_t> ChainParts(Trace.chainCount());
  for (uint32_t I = 0; I < Trace.chainCount(); ++I)
    ChainParts[I] = chainKeyPart(Policy, Trace.chain(I));
  // A chain allocates few distinct sizes, so each memo stays tiny; keeping
  // it sorted turns the per-record probe into a binary search instead of
  // SiteKeyCache's old linear scan.
  std::vector<std::vector<std::pair<uint32_t, SiteKey>>> PerChain(
      Trace.chainCount());
  for (const AllocRecord &Record : Trace.records()) {
    uint32_t Rounded = roundSize(Policy, Record.Size);
    auto &Memo = PerChain[Record.ChainIndex];
    auto It = std::lower_bound(
        Memo.begin(), Memo.end(), Rounded,
        [](const std::pair<uint32_t, SiteKey> &Entry, uint32_t Size) {
          return Entry.first < Size;
        });
    if (It == Memo.end() || It->first != Rounded)
      It = Memo.insert(
          It, {Rounded, hashCombine(ChainParts[Record.ChainIndex], Rounded)});
    Keys.push_back(It->second);
  }
  return Keys;
}

} // namespace

CompiledTrace::CompiledTrace(const AllocationTrace &Trace,
                             const SiteKeyPolicy &Policy)
    : Source(&Trace), Schedule(Trace), Policy(Policy), HasKeys(true),
      RecordKeys(buildRecordKeys(Trace, Policy)) {}
