//===- trace/TraceBinaryIO.h - Binary trace serialization -------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compact little-endian binary serialization for allocation traces.  A
/// full-scale model trace (millions of events) is ~25 bytes per record
/// here versus ~40 characters as text; use this for archived corpora and
/// the text format (TraceIO.h) for anything a human reads.
///
/// Layout (all integers little-endian):
///   magic "LPTRACE1" (8 bytes)
///   u64 nonHeapRefs
///   u32 chainCount, then per chain: u32 length + length x u32 ids
///   u64 recordCount, then per record:
///     u64 lifetime, u32 size, u32 chainIndex, u32 refs, u32 typeId
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TRACE_TRACEBINARYIO_H
#define LIFEPRED_TRACE_TRACEBINARYIO_H

#include "trace/AllocationTrace.h"

#include <iosfwd>
#include <optional>

namespace lifepred {

/// Writes \p Trace to \p OS in the binary format.
void writeTraceBinary(const AllocationTrace &Trace, std::ostream &OS);

/// Parses a binary trace; std::nullopt on malformed or truncated input.
std::optional<AllocationTrace> readTraceBinary(std::istream &IS);

} // namespace lifepred

#endif // LIFEPRED_TRACE_TRACEBINARYIO_H
