//===- trace/TraceStats.cpp - Table 2 style trace metrics ------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceStats.h"

#include "trace/TraceReplayer.h"

using namespace lifepred;

namespace {

/// Tracks live objects/bytes during replay and records the peaks.
class StatsConsumer : public TraceConsumer {
public:
  explicit StatsConsumer(TraceStats &Stats) : Stats(Stats) {}

  void onAlloc(uint64_t, const AllocRecord &Record, uint64_t) override {
    ++Stats.TotalObjects;
    Stats.TotalBytes += Record.Size;
    Stats.HeapRefs += Record.Refs;
    ++LiveObjects;
    LiveBytes += Record.Size;
    if (LiveObjects > Stats.MaxLiveObjects)
      Stats.MaxLiveObjects = LiveObjects;
    if (LiveBytes > Stats.MaxLiveBytes)
      Stats.MaxLiveBytes = LiveBytes;
  }

  void onFree(uint64_t, const AllocRecord &Record, uint64_t) override {
    --LiveObjects;
    LiveBytes -= Record.Size;
  }

private:
  TraceStats &Stats;
  uint64_t LiveObjects = 0;
  uint64_t LiveBytes = 0;
};

} // namespace

TraceStats lifepred::computeTraceStats(const AllocationTrace &Trace) {
  TraceStats Stats;
  Stats.NonHeapRefs = Trace.nonHeapRefs();
  Stats.DistinctChains = Trace.chainCount();
  StatsConsumer Consumer(Stats);
  replayTrace(Trace, Consumer);
  return Stats;
}
