//===- trace/CompiledTrace.h - Precompiled trace replay schedule -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-time "trace compilation": the interleaved alloc/free event stream of
/// a trace, materialized as a flat structure-of-arrays schedule that can be
/// replayed any number of times with no per-event scheduling work and no
/// virtual dispatch.
///
/// The paper's entire evaluation is trace-driven replay, and the benches
/// replay the *same* trace dozens of times — threshold sweeps,
/// arena-fraction grids, chain-length ablations.  The interleaving of
/// births and deaths is a pure function of the trace (sizes and lifetimes),
/// independent of allocator and configuration, so replayTrace's per-replay
/// std::priority_queue death scheduling and per-event virtual TraceConsumer
/// call are pure overhead after the first replay.  Compiling once turns
/// every subsequent replay into a linear scan of two arrays.
///
/// Determinism: replayTrace (the reference oracle, see TraceReplayer.h)
/// pops deaths from a min-heap ordered by (death clock, object id) — ties
/// resolve to the earlier-born object — and a death fires before the first
/// allocation whose post-alloc clock strictly exceeds the death clock.
/// Because birth clocks are non-decreasing in object id and an object's
/// death clock is at least its birth clock, every death with clock D
/// strictly below an allocation's post-alloc clock B belongs to an object
/// born strictly earlier; the heap therefore always contains *all* not-yet-
/// emitted deaths below B when that allocation is processed.  A single
/// deterministic sort of the complete death set by (death clock, object id)
/// merged against the birth sequence hence reproduces the oracle's event
/// order bit-for-bit (asserted by differential tests in tests/sim_test.cpp).
/// The one precondition is that death clocks do not wrap uint64_t, which
/// holds for any real trace: lifetimes are measured in bytes allocated and
/// are bounded by the trace's total bytes (never-freed objects carry the
/// NeverFreed sentinel and enter no death set).  Compilation asserts this.
///
/// Memory footprint: 12 bytes per event (4-byte tagged object id + 8-byte
/// clock), i.e. ~23 MB per million trace records for a fully-freed trace
/// (two events per record).  Compare against re-running the priority queue:
/// the schedule is built once and shared read-only across every replay and
/// every bench worker thread.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TRACE_COMPILEDTRACE_H
#define LIFEPRED_TRACE_COMPILEDTRACE_H

#include "callchain/SiteKey.h"
#include "trace/AllocationTrace.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace lifepred {

/// The interleaved alloc/free event stream of one trace, flattened.  Each
/// event is a tagged object id (high bit = free, low 31 bits = the record's
/// trace index) plus the byte clock of the event — for an allocation the
/// clock *after* it, for a free the object's death clock, exactly the
/// values replayTrace hands its consumer.
class EventSchedule {
public:
  /// Tag bit marking a free event in taggedIds(); traces are limited to
  /// 2^31 - 1 records (a multi-billion-object trace would not fit in
  /// memory long before this matters).
  static constexpr uint32_t FreeBit = 0x80000000u;

  EventSchedule() = default;

  /// Compiles \p Trace's event stream.  O(n log n) in the number of freed
  /// objects (one sort), run once per trace.
  explicit EventSchedule(const AllocationTrace &Trace);

  /// Number of events (allocations plus derived frees).
  size_t size() const { return TaggedIds.size(); }

  /// The byte clock after the last allocation (replayTrace's onEnd value).
  uint64_t endClock() const { return EndClock; }

  /// Peak live payload bytes over the event stream.  Precomputed during
  /// compilation because it is a pure function of the schedule (allocator-
  /// independent): a sequential consumer sampling liveBytes() after every
  /// allocation observes exactly this peak (live bytes only grow at
  /// allocations), while a *batched* consumer permutes events within a
  /// batch and cannot recover it — it reads the value from here instead.
  uint64_t maxLiveBytes() const { return MaxLiveBytes; }

  /// Sum of all allocation payload sizes (equals endClock()).
  uint64_t totalAllocBytes() const { return TotalAllocBytes; }

  bool isFree(size_t Event) const { return TaggedIds[Event] & FreeBit; }
  uint32_t objectId(size_t Event) const { return TaggedIds[Event] & ~FreeBit; }
  uint64_t clock(size_t Event) const { return Clocks[Event]; }

  /// Raw arrays for the replay core's hot loop.
  const uint32_t *taggedIds() const { return TaggedIds.data(); }
  const uint64_t *clocks() const { return Clocks.data(); }

  /// Bytes held by the schedule's arrays (see the footprint note above).
  uint64_t memoryBytes() const {
    return TaggedIds.capacity() * sizeof(uint32_t) +
           Clocks.capacity() * sizeof(uint64_t);
  }

private:
  std::vector<uint32_t> TaggedIds;
  std::vector<uint64_t> Clocks;
  uint64_t EndClock = 0;
  uint64_t MaxLiveBytes = 0;
  uint64_t TotalAllocBytes = 0;
};

/// A compiled trace: the event schedule plus the per-record artifacts the
/// simulators would otherwise re-derive on every replay — today the full
/// SiteKey of every record under one key policy (the table SiteKeyCache
/// used to rebuild per simulator).  Immutable once built; share it
/// read-only across threads and replay it as often as needed.  Holds a
/// pointer to the trace, which must outlive it.
class CompiledTrace {
public:
  CompiledTrace() = default;

  /// Compiles the schedule only (enough for the baseline simulators).
  explicit CompiledTrace(const AllocationTrace &Trace)
      : Source(&Trace), Schedule(Trace) {}

  /// Compiles the schedule plus per-record site keys under \p Policy.
  /// The key memo is a per-chain *sorted* small-vector probed by binary
  /// search, replacing SiteKeyCache's linear scan per record.
  CompiledTrace(const AllocationTrace &Trace, const SiteKeyPolicy &Policy);

  /// False for a default-constructed placeholder slot.
  bool valid() const { return Source != nullptr; }

  const AllocationTrace &trace() const { return *Source; }
  const EventSchedule &schedule() const { return Schedule; }

  /// True when site keys were compiled (the two-argument constructor).
  bool hasKeys() const { return HasKeys; }

  /// The policy the keys were compiled under.  Only valid with hasKeys().
  const SiteKeyPolicy &keyPolicy() const { return Policy; }

  /// The full site key of record \p Id.  Only valid with hasKeys().
  SiteKey keyFor(uint64_t Id) const { return RecordKeys[Id]; }

  /// All record keys in trace order.  Only valid with hasKeys().
  const std::vector<SiteKey> &recordKeys() const { return RecordKeys; }

private:
  const AllocationTrace *Source = nullptr;
  EventSchedule Schedule;
  SiteKeyPolicy Policy;
  bool HasKeys = false;
  std::vector<SiteKey> RecordKeys;
};

/// Optional CRTP convenience base for forEachEvent consumers: supplies the
/// no-op onEnd so consumers that do not care about the final clock need not
/// declare it.
template <typename DerivedT> class ScheduleConsumer {
public:
  void onEnd(uint64_t Clock) { (void)Clock; }
};

/// Replays \p Schedule into \p Consumer with no virtual dispatch.  The
/// consumer provides onAlloc(uint32_t Id, uint64_t Clock), onFree(uint32_t
/// Id, uint64_t Clock), and onEnd(uint64_t Clock); calls inline into the
/// loop, so an uninstrumented consumer compiles to a branch-lean scan of
/// the two schedule arrays.  Event order is bit-identical to replayTrace's.
template <typename ConsumerT>
inline void forEachEvent(const EventSchedule &Schedule, ConsumerT &&Consumer) {
  const uint32_t *Ids = Schedule.taggedIds();
  const uint64_t *Clocks = Schedule.clocks();
  const size_t Count = Schedule.size();
  for (size_t Event = 0; Event < Count; ++Event) {
    uint32_t Tagged = Ids[Event];
    if (Tagged & EventSchedule::FreeBit)
      Consumer.onFree(Tagged & ~EventSchedule::FreeBit, Clocks[Event]);
    else
      Consumer.onAlloc(Tagged, Clocks[Event]);
  }
  Consumer.onEnd(Schedule.endClock());
}

/// Batch-grouped replay: events are consumed in fixed-size batches, each
/// batch stably partitioned by the consumer's route (size class / arena
/// lane) before dispatch, so the per-event work runs route-by-route with
/// hot free-list state instead of ping-ponging between classes.
///
/// Consumer protocol: routeCount() gives the number of routes R;
/// routeOf(Tagged) maps a tagged event id to [0, R); onAlloc/onFree/onEnd
/// are as in forEachEvent.  The partition is *stable*, so within one route
/// the event order is exactly the sequential order.  Any observable that
/// is (a) a per-route function of its route's subsequence or (b) a
/// commutative aggregate across events — every Kingsley counter, final
/// heap/live/free-block state, and the class-size histogram — is therefore
/// bit-identical to forEachEvent's result.  Trajectories that mix routes
/// at sub-batch granularity (live-byte peaks, timeline samples) are NOT
/// preserved; batched consumers read EventSchedule::maxLiveBytes() instead.
template <typename ConsumerT>
inline void forEachEventBatched(const EventSchedule &Schedule,
                                ConsumerT &&Consumer,
                                size_t BatchEvents = 8192) {
  const uint32_t *Ids = Schedule.taggedIds();
  const uint64_t *Clocks = Schedule.clocks();
  const size_t Count = Schedule.size();
  const uint32_t Routes = Consumer.routeCount();
  if (BatchEvents == 0)
    BatchEvents = 1;

  std::vector<uint32_t> RouteOf(BatchEvents);
  std::vector<uint32_t> Offsets(Routes + 1);
  std::vector<uint32_t> Order(BatchEvents);

  for (size_t Begin = 0; Begin < Count; Begin += BatchEvents) {
    const size_t Batch = std::min(BatchEvents, Count - Begin);
    // Stable counting sort of the batch by route.
    std::fill(Offsets.begin(), Offsets.end(), 0u);
    for (size_t I = 0; I < Batch; ++I) {
      RouteOf[I] = Consumer.routeOf(Ids[Begin + I]);
      ++Offsets[RouteOf[I] + 1];
    }
    for (uint32_t Route = 0; Route < Routes; ++Route)
      Offsets[Route + 1] += Offsets[Route];
    for (size_t I = 0; I < Batch; ++I)
      Order[Offsets[RouteOf[I]]++] = static_cast<uint32_t>(I);
    for (size_t I = 0; I < Batch; ++I) {
      size_t Event = Begin + Order[I];
      uint32_t Tagged = Ids[Event];
      if (Tagged & EventSchedule::FreeBit)
        Consumer.onFree(Tagged & ~EventSchedule::FreeBit, Clocks[Event]);
      else
        Consumer.onAlloc(Tagged, Clocks[Event]);
    }
  }
  Consumer.onEnd(Schedule.endClock());
}

} // namespace lifepred

#endif // LIFEPRED_TRACE_COMPILEDTRACE_H
