//===- trace/TraceReplayer.cpp - Ordered trace replay ----------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceReplayer.h"

#include <queue>
#include <utility>
#include <vector>

using namespace lifepred;

namespace {

/// A pending death: (death clock, object id).  Ordered so the earliest
/// death — ties broken by birth order — pops first.
using Death = std::pair<uint64_t, uint64_t>;

} // namespace

void lifepred::replayTrace(const AllocationTrace &Trace,
                           TraceConsumer &Consumer) {
  std::priority_queue<Death, std::vector<Death>, std::greater<Death>> Deaths;
  const std::vector<AllocRecord> &Records = Trace.records();

  uint64_t Clock = 0;
  for (uint64_t Id = 0; Id < Records.size(); ++Id) {
    const AllocRecord &Record = Records[Id];
    // Frees whose death clock this allocation would cross happen first, so
    // the allocator can reuse their space.
    uint64_t NewClock = Clock + Record.Size;
    while (!Deaths.empty() && Deaths.top().first < NewClock) {
      uint64_t DeadId = Deaths.top().second;
      uint64_t DeathClock = Deaths.top().first;
      Deaths.pop();
      Consumer.onFree(DeadId, Records[DeadId], DeathClock);
    }
    Clock = NewClock;
    Consumer.onAlloc(Id, Record, Clock);
    if (Record.Lifetime != NeverFreed)
      Deaths.push({Clock + Record.Lifetime, Id});
  }

  // Drain deaths scheduled past the last allocation.
  while (!Deaths.empty()) {
    uint64_t DeadId = Deaths.top().second;
    uint64_t DeathClock = Deaths.top().first;
    Deaths.pop();
    Consumer.onFree(DeadId, Records[DeadId], DeathClock);
  }
  Consumer.onEnd(Clock);
}
