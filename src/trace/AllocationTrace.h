//===- trace/AllocationTrace.h - Allocation trace storage -------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage for a program's allocation trace.  Mirrors the paper's simulator
/// input: each allocation event carries its size, its lifetime (in bytes
/// allocated — the paper's time measure), and an identifier for the complete
/// call-chain at the allocation point.  Free events are not stored: they are
/// derived from lifetimes during replay (see TraceReplayer), which keeps a
/// multi-million-object trace compact.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TRACE_ALLOCATIONTRACE_H
#define LIFEPRED_TRACE_ALLOCATIONTRACE_H

#include "callchain/CallChain.h"

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

namespace lifepred {

/// Lifetime value for objects that are never freed.
inline constexpr uint64_t NeverFreed = std::numeric_limits<uint64_t>::max();

/// One allocation event.  The object's id is its index in the trace.
struct AllocRecord {
  /// Bytes allocated between this object's birth and its free; NeverFreed
  /// for objects alive at program exit.
  uint64_t Lifetime = 0;
  /// Requested object size in bytes.
  uint32_t Size = 0;
  /// Index into the trace's chain table (the complete, unpruned chain).
  uint32_t ChainIndex = 0;
  /// Simulated count of heap references made to this object over its life.
  uint32_t Refs = 0;
  /// The object's type, when the traced language exposes one (the paper's
  /// future-work extension for C++/Modula); 0 = unknown.
  uint32_t TypeId = 0;
};

/// An entire program run's allocation behaviour.
class AllocationTrace {
public:
  /// Interns \p Chain into the chain table, returning its index.  Chains
  /// are deduplicated, so repeated allocations from one site share an entry.
  uint32_t internChain(const CallChain &Chain);

  /// Appends one allocation event.
  void append(const AllocRecord &Record) {
    Records.push_back(Record);
    TotalBytes += Record.Size;
  }

  /// Pre-sizes the record table; readers that know the count up front
  /// (the binary format stores it in the header) avoid regrowth copies.
  void reserveRecords(size_t Count) { Records.reserve(Count); }

  /// Pre-sizes the chain table and its dedup index likewise.
  void reserveChains(size_t Count) {
    Chains.reserve(Count);
    ChainLookup.reserve(Count);
  }

  /// All allocation events in birth order.
  const std::vector<AllocRecord> &records() const { return Records; }

  /// The chain for chain-table index \p Index.
  const CallChain &chain(uint32_t Index) const { return Chains[Index]; }

  /// Number of distinct chains.
  size_t chainCount() const { return Chains.size(); }

  /// Number of allocation events.
  size_t size() const { return Records.size(); }

  /// Total bytes allocated over the run.  Maintained as a running sum in
  /// append() rather than recomputed (or lazily cached) on demand, so the
  /// accessor stays O(1) *and* safe to call concurrently on a shared const
  /// trace — a mutable lazy cache would race.
  uint64_t totalBytes() const { return TotalBytes; }

  /// References made to non-heap (stack/global) memory by the modeled
  /// program; only used to report the paper's "Heap Refs %" column.
  uint64_t nonHeapRefs() const { return NonHeapRefs; }
  void setNonHeapRefs(uint64_t Refs) { NonHeapRefs = Refs; }

private:
  std::vector<CallChain> Chains;
  std::unordered_map<uint64_t, std::vector<uint32_t>> ChainLookup;
  std::vector<AllocRecord> Records;
  uint64_t TotalBytes = 0;
  uint64_t NonHeapRefs = 0;
};

} // namespace lifepred

#endif // LIFEPRED_TRACE_ALLOCATIONTRACE_H
