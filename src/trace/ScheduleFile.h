//===- trace/ScheduleFile.h - On-disk streamed event schedules --*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk, mmap-streamable form of a compiled event schedule: the
/// billion-event replay tier.  An in-memory EventSchedule holds 12 bytes
/// per event plus an O(trace) address table at replay time, which caps
/// trace size at available RAM.  A ScheduleFile instead stores the event
/// stream once on disk — 16 bytes per event — and replays it in fixed-size
/// chunks, so resident memory is O(chunk) + O(max-live-objects) regardless
/// of trace length.
///
/// Two ideas make the format self-contained and shardable:
///
///  * **Slot addressing.**  At write time every object id is renamed to a
///    *slot*: a LIFO stack recycles the slots of dead objects, so the slot
///    space is exactly the high-water mark of concurrently-live objects.
///    A replayer's address table is indexed by slot and sized slotCount(),
///    independent of how many events the file holds.  Free events carry
///    the object's size, so replay needs no side lookup into the trace.
///
///  * **Chunk live-in tables.**  The event stream is cut into fixed-size
///    chunks (the streaming/madvise granularity).  Each chunk's index
///    entry records the (slot, size) set live at its entry, so a sharded
///    replayer can warm up a fresh allocator at any chunk boundary and
///    replay chunks independently.  The chunk partition is a property of
///    the *file*, never of the worker count, which is what keeps sharded
///    telemetry bit-identical at any --jobs (shards merge in index order;
///    see sim/StreamReplay.h).
///
/// The writer is incremental: append() accepts one trace segment at a
/// time, offsetting byte clocks so segments concatenate into one monotonic
/// stream.  A billion-event schedule is therefore built from bounded-size
/// segments without ever materializing the whole trace (each segment's
/// objects die within the segment, so no live state crosses an append).
///
/// File layout (all fields little-endian host integers, 64-bit offsets):
///
///   [header 112 B] [events 16 B each] [chunk index 56 B each] [live-in 8 B]
///
/// The reader validates the header the same way TraceBinaryIO guards
/// corrupt traces: magic, version, and every section offset/count checked
/// against the actual file size (overflow-safely) before anything is
/// dereferenced; a truncated or bit-flipped header is rejected with a
/// diagnostic, never crashed on.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TRACE_SCHEDULEFILE_H
#define LIFEPRED_TRACE_SCHEDULEFILE_H

#include "trace/AllocationTrace.h"
#include "trace/CompiledTrace.h"

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

namespace lifepred {

/// One on-disk replay event.  TaggedSlot's high bit marks a free (the same
/// convention as EventSchedule::FreeBit); the low 31 bits are the object's
/// slot.  Size is the payload size — stored on the free as well, so replay
/// is self-contained.  Clock is the global byte clock of the event.
struct ScheduleEvent {
  uint32_t TaggedSlot = 0;
  uint32_t Size = 0;
  uint64_t Clock = 0;
};
static_assert(sizeof(ScheduleEvent) == 16, "on-disk event must be 16 bytes");

/// One object live at a chunk boundary: enough to re-allocate it when a
/// shard warms up a fresh allocator at that boundary.
struct ScheduleLiveIn {
  uint32_t Slot = 0;
  uint32_t Size = 0;
};
static_assert(sizeof(ScheduleLiveIn) == 8, "live-in entry must be 8 bytes");

/// Index entry for one chunk of the event stream.
struct ScheduleChunkInfo {
  uint64_t FirstEvent = 0;   ///< Index of the chunk's first event.
  uint64_t EventCount = 0;   ///< Events in this chunk.
  uint64_t StartClock = 0;   ///< Byte clock when the chunk begins.
  uint64_t MaxLiveBytes = 0; ///< Peak live payload within the chunk.
  uint64_t LiveInBytes = 0;  ///< Payload bytes live at chunk entry.
  uint64_t LiveInFirst = 0;  ///< First entry in the live-in table.
  uint64_t LiveInCount = 0;  ///< Live objects at chunk entry.
};
static_assert(sizeof(ScheduleChunkInfo) == 56, "chunk index must be 56 bytes");

/// Streams compiled schedules to disk, one trace segment at a time.
/// Usage: construct, append() each segment, finish().  The header is
/// backpatched at finish(), so an interrupted write leaves a file the
/// reader rejects (zero magic).
class ScheduleFileWriter {
public:
  struct Config {
    /// Events per chunk: the streaming granularity.  Small values stress
    /// chunk-boundary handling in tests; the default keeps a chunk's
    /// events at 64 MB.
    uint64_t EventsPerChunk = uint64_t(1) << 22;
  };

  explicit ScheduleFileWriter(const std::string &Path);
  ScheduleFileWriter(const std::string &Path, Config C);
  ~ScheduleFileWriter();

  ScheduleFileWriter(const ScheduleFileWriter &) = delete;
  ScheduleFileWriter &operator=(const ScheduleFileWriter &) = delete;

  /// False when the output file could not be opened or a write failed;
  /// error() says why.
  bool valid() const { return Out != nullptr && Error.empty(); }
  const std::string &error() const { return Error; }

  /// Appends one compiled segment.  \p Trace supplies the per-record sizes
  /// the schedule's tagged ids refer to.  Byte clocks are offset so that
  /// consecutive segments form one monotonic stream.  Every death of a
  /// trace is part of its own schedule, so a segment's freed objects
  /// release their slots before the next append; never-freed objects
  /// simply stay live (their slots are never recycled) and show up in
  /// later chunks' live-in tables like any other live object.
  void append(const EventSchedule &Schedule, const AllocationTrace &Trace);

  /// Convenience: compiles \p Trace's schedule, then appends it.
  void append(const AllocationTrace &Trace);

  /// Writes the chunk index, live-in table, and final header.  Returns
  /// false (with error() set) if any write failed.  No further appends.
  bool finish();

  uint64_t eventCount() const { return Events; }
  uint64_t allocCount() const { return Allocs; }
  uint64_t slotCount() const { return NextSlot; }
  uint64_t chunkCount() const { return Chunks.size(); }
  uint64_t maxLiveBytes() const { return GlobalPeakLive; }

private:
  void beginChunk();
  void writeEvent(uint32_t TaggedSlot, uint32_t Size, uint64_t Clock);
  void flushEvents();

  std::FILE *Out = nullptr;
  std::string Error;
  Config Cfg;

  std::vector<ScheduleEvent> Buffer;
  std::vector<ScheduleChunkInfo> Chunks;
  std::vector<ScheduleLiveIn> LiveIns;

  /// Slot allocator: sizes of live slots (sentinel = dead) plus the LIFO
  /// recycling stack.  NextSlot is the high-water mark.
  static constexpr uint64_t DeadSlot = ~uint64_t(0);
  std::vector<uint64_t> SlotSizes;
  std::vector<uint32_t> FreeSlots;
  uint32_t NextSlot = 0;

  uint64_t Events = 0;
  uint64_t Allocs = 0;
  uint64_t EventsInChunk = 0;
  uint64_t LiveBytesNow = 0;
  uint64_t ChunkPeakLive = 0;
  uint64_t GlobalPeakLive = 0;
  uint64_t TotalAllocBytes = 0;
  uint64_t ClockOffset = 0; ///< Base clock of the current segment.
  uint64_t MaxClock = 0;    ///< Largest global clock written so far.
  uint64_t EndClock = 0;    ///< Global post-last-alloc clock.
  bool Finished = false;
};

/// Memory-mapped reader.  open() validates the header and every section
/// bound before returning; all accessors are then O(1) pointer arithmetic
/// into the mapping.  Safe to share read-only across threads.
class ScheduleFile {
public:
  static constexpr char Magic[8] = {'L', 'P', 'S', 'C', 'H', 'E', 'D', '1'};
  static constexpr uint32_t Version = 1;
  static constexpr uint64_t HeaderBytes = 112;

  /// Maps and validates \p Path.  Returns std::nullopt with \p Error set
  /// on any structural problem (missing file, short file, bad magic or
  /// version, section out of bounds, inconsistent chunk index).
  static std::optional<ScheduleFile> open(const std::string &Path,
                                          std::string &Error);

  ScheduleFile(ScheduleFile &&Other) noexcept;
  ScheduleFile &operator=(ScheduleFile &&Other) noexcept;
  ScheduleFile(const ScheduleFile &) = delete;
  ScheduleFile &operator=(const ScheduleFile &) = delete;
  ~ScheduleFile();

  uint64_t eventCount() const { return Events; }
  uint64_t allocCount() const { return Allocs; }
  uint64_t slotCount() const { return Slots; }
  uint64_t endClock() const { return End; }
  uint64_t totalAllocBytes() const { return AllocBytes; }
  uint64_t maxLiveBytes() const { return MaxLive; }
  uint64_t eventsPerChunk() const { return PerChunk; }
  uint64_t chunkCount() const { return ChunkTotal; }
  uint64_t liveInCount() const { return LiveInTotal; }
  uint64_t fileBytes() const { return MapBytes; }

  const ScheduleChunkInfo &chunk(uint64_t Index) const {
    return ChunkIndex[Index];
  }
  const ScheduleEvent *chunkEvents(uint64_t Index) const {
    return EventBase + ChunkIndex[Index].FirstEvent;
  }
  const ScheduleLiveIn *chunkLiveIn(uint64_t Index) const {
    return LiveInBase + ChunkIndex[Index].LiveInFirst;
  }

  /// Advises the kernel the event region will be read front to back.
  void adviseSequential() const;

  /// Releases chunk \p Index's event pages from this process (the O(chunk)
  /// residency lever); the data stays valid and refaults from page cache
  /// if touched again.  No-op where madvise is unavailable.
  void dropChunk(uint64_t Index) const;

private:
  ScheduleFile() = default;

  const unsigned char *Map = nullptr;
  uint64_t MapBytes = 0;
  /// Non-null only in the no-mmap fallback, which reads the whole file.
  std::vector<unsigned char> Owned;

  const ScheduleEvent *EventBase = nullptr;
  const ScheduleChunkInfo *ChunkIndex = nullptr;
  const ScheduleLiveIn *LiveInBase = nullptr;

  uint64_t Events = 0;
  uint64_t Allocs = 0;
  uint64_t Slots = 0;
  uint64_t End = 0;
  uint64_t AllocBytes = 0;
  uint64_t MaxLive = 0;
  uint64_t PerChunk = 0;
  uint64_t ChunkTotal = 0;
  uint64_t LiveInTotal = 0;
};

} // namespace lifepred

#endif // LIFEPRED_TRACE_SCHEDULEFILE_H
