//===- trace/ScheduleFile.cpp - On-disk streamed event schedules -----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/ScheduleFile.h"

#include <cassert>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define LIFEPRED_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define LIFEPRED_HAVE_MMAP 0
#include <fstream>
#endif

using namespace lifepred;

namespace {

// Fixed header layout (112 bytes).  Offsets are load-bearing: the reader
// validates HeaderBytes against this exact size before trusting anything.
struct FileHeader {
  char Magic[8];
  uint32_t Version;
  uint32_t HeaderBytes;
  uint64_t EventCount;
  uint64_t AllocCount;
  uint64_t SlotCount;
  uint64_t EndClock;
  uint64_t TotalAllocBytes;
  uint64_t MaxLiveBytes;
  uint64_t EventsPerChunk;
  uint64_t ChunkCount;
  uint64_t ChunkIndexOffset;
  uint64_t LiveInCount;
  uint64_t LiveInOffset;
  uint64_t EventsOffset;
};
static_assert(sizeof(FileHeader) == ScheduleFile::HeaderBytes,
              "header layout drifted from the documented 112 bytes");

constexpr size_t EventFlushCount = 1 << 16; // 1 MB write granularity.

} // namespace

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

ScheduleFileWriter::ScheduleFileWriter(const std::string &Path)
    : ScheduleFileWriter(Path, Config()) {}

ScheduleFileWriter::ScheduleFileWriter(const std::string &Path, Config C)
    : Cfg(C) {
  if (Cfg.EventsPerChunk == 0)
    Cfg.EventsPerChunk = 1;
  Out = std::fopen(Path.c_str(), "wb");
  if (!Out) {
    Error = "cannot open " + Path + " for writing";
    return;
  }
  // Placeholder header; finish() backpatches the real one.  An interrupted
  // write therefore leaves zero magic, which the reader rejects.
  unsigned char Zero[ScheduleFile::HeaderBytes] = {};
  if (std::fwrite(Zero, 1, sizeof(Zero), Out) != sizeof(Zero))
    Error = "short write to " + Path;
  Buffer.reserve(EventFlushCount);
}

ScheduleFileWriter::~ScheduleFileWriter() {
  if (Out)
    std::fclose(Out);
}

void ScheduleFileWriter::flushEvents() {
  if (Buffer.empty() || !Out)
    return;
  if (std::fwrite(Buffer.data(), sizeof(ScheduleEvent), Buffer.size(), Out) !=
      Buffer.size())
    Error = "short write while streaming events";
  Buffer.clear();
}

void ScheduleFileWriter::beginChunk() {
  if (!Chunks.empty()) {
    Chunks.back().EventCount = Events - Chunks.back().FirstEvent;
    Chunks.back().MaxLiveBytes = ChunkPeakLive;
  }
  ScheduleChunkInfo Info;
  Info.FirstEvent = Events;
  Info.StartClock = MaxClock;
  Info.LiveInFirst = LiveIns.size();
  Info.LiveInBytes = LiveBytesNow;
  // The live set at the boundary, in slot order: everything a shard must
  // re-allocate before replaying this chunk with a fresh allocator.
  uint64_t LiveCount = 0;
  for (uint32_t Slot = 0; Slot < NextSlot; ++Slot) {
    if (SlotSizes[Slot] == DeadSlot)
      continue;
    LiveIns.push_back({Slot, static_cast<uint32_t>(SlotSizes[Slot])});
    ++LiveCount;
  }
  Info.LiveInCount = LiveCount;
  Chunks.push_back(Info);
  ChunkPeakLive = LiveBytesNow;
  EventsInChunk = 0;
}

void ScheduleFileWriter::writeEvent(uint32_t TaggedSlot, uint32_t Size,
                                    uint64_t Clock) {
  Buffer.push_back({TaggedSlot, Size, Clock});
  if (Buffer.size() >= EventFlushCount)
    flushEvents();
  ++Events;
  ++EventsInChunk;
  MaxClock = Clock;
}

void ScheduleFileWriter::append(const EventSchedule &Schedule,
                                const AllocationTrace &Trace) {
  assert(!Finished && "append after finish");
  if (!valid())
    return;
  const uint32_t *Ids = Schedule.taggedIds();
  const uint64_t *Clocks = Schedule.clocks();
  const AllocRecord *Records = Trace.records().data();
  std::vector<uint32_t> IdToSlot(Trace.size());

  for (size_t Event = 0, Count = Schedule.size(); Event < Count; ++Event) {
    // The chunk boundary is drawn *before* this event's state change, so
    // the live-in table describes the heap as it stands when the chunk's
    // first event has not yet run — exactly what a shard warm-up replays.
    if (EventsInChunk == Cfg.EventsPerChunk || Events == 0)
      beginChunk();
    uint32_t Tagged = Ids[Event];
    uint64_t Clock = Clocks[Event] + ClockOffset;
    if (Tagged & EventSchedule::FreeBit) {
      uint32_t Slot = IdToSlot[Tagged & ~EventSchedule::FreeBit];
      uint32_t Size = static_cast<uint32_t>(SlotSizes[Slot]);
      SlotSizes[Slot] = DeadSlot;
      FreeSlots.push_back(Slot);
      LiveBytesNow -= Size;
      writeEvent(Slot | EventSchedule::FreeBit, Size, Clock);
      continue;
    }
    uint32_t Size = Records[Tagged].Size;
    uint32_t Slot;
    if (FreeSlots.empty()) {
      Slot = NextSlot++;
      SlotSizes.push_back(Size);
    } else {
      Slot = FreeSlots.back();
      FreeSlots.pop_back();
      SlotSizes[Slot] = Size;
    }
    IdToSlot[Tagged] = Slot;
    LiveBytesNow += Size;
    if (LiveBytesNow > ChunkPeakLive)
      ChunkPeakLive = LiveBytesNow;
    if (LiveBytesNow > GlobalPeakLive)
      GlobalPeakLive = LiveBytesNow;
    TotalAllocBytes += Size;
    ++Allocs;
    writeEvent(Slot, Size, Clock);
  }

  EndClock = ClockOffset + Schedule.endClock();
  // Tail deaths can carry clocks past the segment's end clock; the next
  // segment starts after the largest clock written so the global stream
  // stays monotonic.
  ClockOffset = MaxClock;
}

void ScheduleFileWriter::append(const AllocationTrace &Trace) {
  append(EventSchedule(Trace), Trace);
}

bool ScheduleFileWriter::finish() {
  assert(!Finished && "finish called twice");
  Finished = true;
  if (!valid())
    return false;
  if (!Chunks.empty()) {
    Chunks.back().EventCount = Events - Chunks.back().FirstEvent;
    Chunks.back().MaxLiveBytes = ChunkPeakLive;
  }
  flushEvents();

  FileHeader Header = {};
  std::memcpy(Header.Magic, ScheduleFile::Magic, sizeof(Header.Magic));
  Header.Version = ScheduleFile::Version;
  Header.HeaderBytes = ScheduleFile::HeaderBytes;
  Header.EventCount = Events;
  Header.AllocCount = Allocs;
  Header.SlotCount = NextSlot;
  Header.EndClock = EndClock;
  Header.TotalAllocBytes = TotalAllocBytes;
  Header.MaxLiveBytes = GlobalPeakLive;
  Header.EventsPerChunk = Cfg.EventsPerChunk;
  Header.ChunkCount = Chunks.size();
  Header.EventsOffset = ScheduleFile::HeaderBytes;
  Header.ChunkIndexOffset =
      Header.EventsOffset + Events * sizeof(ScheduleEvent);
  Header.LiveInOffset =
      Header.ChunkIndexOffset + Chunks.size() * sizeof(ScheduleChunkInfo);
  Header.LiveInCount = LiveIns.size();

  if (!Chunks.empty() &&
      std::fwrite(Chunks.data(), sizeof(ScheduleChunkInfo), Chunks.size(),
                  Out) != Chunks.size())
    Error = "short write of the chunk index";
  if (Error.empty() && !LiveIns.empty() &&
      std::fwrite(LiveIns.data(), sizeof(ScheduleLiveIn), LiveIns.size(),
                  Out) != LiveIns.size())
    Error = "short write of the live-in table";
  if (Error.empty()) {
    if (std::fseek(Out, 0, SEEK_SET) != 0 ||
        std::fwrite(&Header, sizeof(Header), 1, Out) != 1)
      Error = "cannot backpatch the schedule header";
  }
  if (std::fclose(Out) != 0 && Error.empty())
    Error = "close failed (disk full?)";
  Out = nullptr;
  return Error.empty();
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

namespace {

/// True when \p Count elements of \p ElemSize fit at \p Offset in a file
/// of \p FileSize bytes, with no uint64 overflow possible.
bool sectionFits(uint64_t Offset, uint64_t Count, uint64_t ElemSize,
                 uint64_t FileSize) {
  if (Offset > FileSize)
    return false;
  return Count <= (FileSize - Offset) / ElemSize;
}

} // namespace

std::optional<ScheduleFile> ScheduleFile::open(const std::string &Path,
                                               std::string &Error) {
  ScheduleFile File;

#if LIFEPRED_HAVE_MMAP
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    Error = "cannot open " + Path;
    return std::nullopt;
  }
  struct stat St;
  if (::fstat(Fd, &St) != 0 || St.st_size < 0) {
    ::close(Fd);
    Error = "cannot stat " + Path;
    return std::nullopt;
  }
  File.MapBytes = static_cast<uint64_t>(St.st_size);
  if (File.MapBytes < HeaderBytes) {
    ::close(Fd);
    Error = Path + ": truncated (shorter than the schedule header)";
    return std::nullopt;
  }
  void *Base =
      ::mmap(nullptr, File.MapBytes, PROT_READ, MAP_PRIVATE, Fd, 0);
  ::close(Fd); // The mapping outlives the descriptor.
  if (Base == MAP_FAILED) {
    Error = "cannot mmap " + Path;
    return std::nullopt;
  }
  File.Map = static_cast<const unsigned char *>(Base);
#else
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open " + Path;
    return std::nullopt;
  }
  File.Owned.assign(std::istreambuf_iterator<char>(In),
                    std::istreambuf_iterator<char>());
  File.MapBytes = File.Owned.size();
  if (File.MapBytes < HeaderBytes) {
    Error = Path + ": truncated (shorter than the schedule header)";
    return std::nullopt;
  }
  File.Map = File.Owned.data();
#endif

  // Header validation, TraceBinaryIO-style: nothing past this point is
  // dereferenced until its section provably fits in the file.
  FileHeader Header;
  std::memcpy(&Header, File.Map, sizeof(Header));
  auto Reject = [&](const std::string &Why) {
    Error = Path + ": " + Why;
    return std::nullopt;
  };
  if (std::memcmp(Header.Magic, Magic, sizeof(Magic)) != 0)
    return Reject("not a schedule file (bad magic)");
  if (Header.Version != Version)
    return Reject("unsupported schedule version " +
                  std::to_string(Header.Version));
  if (Header.HeaderBytes != HeaderBytes)
    return Reject("unexpected header size " +
                  std::to_string(Header.HeaderBytes));
  if (Header.EventsOffset != HeaderBytes)
    return Reject("events section at unexpected offset");
  if (Header.AllocCount > Header.EventCount)
    return Reject("more allocations than events");
  if (Header.SlotCount > Header.AllocCount ||
      Header.SlotCount >= EventSchedule::FreeBit)
    return Reject("implausible slot count");
  if (Header.EventsPerChunk == 0)
    return Reject("zero events per chunk");
  uint64_t WantChunks =
      Header.EventCount == 0
          ? 0
          : (Header.EventCount + Header.EventsPerChunk - 1) /
                Header.EventsPerChunk;
  if (Header.ChunkCount != WantChunks)
    return Reject("chunk count disagrees with event count");
  if (!sectionFits(Header.EventsOffset, Header.EventCount,
                   sizeof(ScheduleEvent), File.MapBytes))
    return Reject("event section exceeds the file");
  if (!sectionFits(Header.ChunkIndexOffset, Header.ChunkCount,
                   sizeof(ScheduleChunkInfo), File.MapBytes))
    return Reject("chunk index exceeds the file");
  if (!sectionFits(Header.LiveInOffset, Header.LiveInCount,
                   sizeof(ScheduleLiveIn), File.MapBytes))
    return Reject("live-in table exceeds the file");
  if (Header.ChunkIndexOffset !=
      Header.EventsOffset + Header.EventCount * sizeof(ScheduleEvent))
    return Reject("chunk index at unexpected offset");
  if (Header.LiveInOffset !=
      Header.ChunkIndexOffset + Header.ChunkCount * sizeof(ScheduleChunkInfo))
    return Reject("live-in table at unexpected offset");

  File.Events = Header.EventCount;
  File.Allocs = Header.AllocCount;
  File.Slots = Header.SlotCount;
  File.End = Header.EndClock;
  File.AllocBytes = Header.TotalAllocBytes;
  File.MaxLive = Header.MaxLiveBytes;
  File.PerChunk = Header.EventsPerChunk;
  File.ChunkTotal = Header.ChunkCount;
  File.LiveInTotal = Header.LiveInCount;
  File.EventBase =
      reinterpret_cast<const ScheduleEvent *>(File.Map + Header.EventsOffset);
  File.ChunkIndex = reinterpret_cast<const ScheduleChunkInfo *>(
      File.Map + Header.ChunkIndexOffset);
  File.LiveInBase =
      reinterpret_cast<const ScheduleLiveIn *>(File.Map + Header.LiveInOffset);

  // The chunk index must tile the event stream exactly and index the
  // live-in table contiguously; a corrupt index is rejected here rather
  // than crashing a replay.
  uint64_t LiveInRunning = 0;
  uint64_t PrevStart = 0;
  for (uint64_t I = 0; I < File.ChunkTotal; ++I) {
    const ScheduleChunkInfo &Info = File.ChunkIndex[I];
    if (Info.FirstEvent != I * File.PerChunk)
      return Reject("chunk " + std::to_string(I) + " misplaced");
    uint64_t WantCount =
        std::min(File.PerChunk, File.Events - Info.FirstEvent);
    if (Info.EventCount != WantCount)
      return Reject("chunk " + std::to_string(I) + " has a bad event count");
    if (Info.LiveInFirst != LiveInRunning ||
        Info.LiveInCount > File.LiveInTotal - LiveInRunning)
      return Reject("chunk " + std::to_string(I) +
                    " live-in range is inconsistent");
    LiveInRunning += Info.LiveInCount;
    if (Info.StartClock < PrevStart)
      return Reject("chunk clocks are not monotonic");
    PrevStart = Info.StartClock;
  }
  if (LiveInRunning != File.LiveInTotal)
    return Reject("live-in table has unreferenced entries");
  for (uint64_t I = 0; I < File.LiveInTotal; ++I)
    if (File.LiveInBase[I].Slot >= File.Slots)
      return Reject("live-in slot out of range");

  return File;
}

ScheduleFile::ScheduleFile(ScheduleFile &&Other) noexcept {
  *this = std::move(Other);
}

ScheduleFile &ScheduleFile::operator=(ScheduleFile &&Other) noexcept {
  if (this == &Other)
    return *this;
#if LIFEPRED_HAVE_MMAP
  if (Map && Owned.empty())
    ::munmap(const_cast<unsigned char *>(Map), MapBytes);
#endif
  Map = Other.Map;
  MapBytes = Other.MapBytes;
  Owned = std::move(Other.Owned);
  EventBase = Other.EventBase;
  ChunkIndex = Other.ChunkIndex;
  LiveInBase = Other.LiveInBase;
  Events = Other.Events;
  Allocs = Other.Allocs;
  Slots = Other.Slots;
  End = Other.End;
  AllocBytes = Other.AllocBytes;
  MaxLive = Other.MaxLive;
  PerChunk = Other.PerChunk;
  ChunkTotal = Other.ChunkTotal;
  LiveInTotal = Other.LiveInTotal;
  Other.Map = nullptr;
  Other.MapBytes = 0;
  return *this;
}

ScheduleFile::~ScheduleFile() {
#if LIFEPRED_HAVE_MMAP
  if (Map && Owned.empty())
    ::munmap(const_cast<unsigned char *>(Map), MapBytes);
#endif
}

void ScheduleFile::adviseSequential() const {
#if LIFEPRED_HAVE_MMAP
  if (Map && Owned.empty())
    ::madvise(const_cast<unsigned char *>(Map), MapBytes, MADV_SEQUENTIAL);
#endif
}

void ScheduleFile::dropChunk(uint64_t Index) const {
#if LIFEPRED_HAVE_MMAP
  if (!Map || !Owned.empty())
    return;
  const ScheduleChunkInfo &Info = ChunkIndex[Index];
  uint64_t PageMask = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE)) - 1;
  uint64_t Begin = HeaderBytes + Info.FirstEvent * sizeof(ScheduleEvent);
  uint64_t End =
      Begin + Info.EventCount * sizeof(ScheduleEvent);
  // Page-align outward; a boundary page shared with a neighbouring chunk
  // just refaults from page cache if it is touched again.
  Begin &= ~PageMask;
  End = (End + PageMask) & ~PageMask;
  if (End > MapBytes)
    End = MapBytes;
  if (End > Begin)
    ::madvise(const_cast<unsigned char *>(Map + Begin), End - Begin,
              MADV_DONTNEED);
#else
  (void)Index;
#endif
}
