//===- trace/TraceReplayer.h - Ordered trace replay -------------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays an AllocationTrace as an interleaved alloc/free event stream.
///
/// The byte clock advances by the object's size at each allocation.  An
/// object born when the clock (including its own size) reads B, with
/// lifetime L, is freed once the clock reaches B + L — before the first
/// allocation that would push the clock past that point.  This is exactly
/// the paper's definition of lifetime as "bytes allocated between the time
/// the object is allocated and when it is deallocated".
///
/// replayTrace is the *reference oracle* for event ordering: it derives the
/// interleaving afresh on every call from a priority queue of pending
/// deaths.  The production replay path is trace/CompiledTrace.h, which
/// materializes this exact event stream once and replays it devirtualized;
/// differential tests in tests/sim_test.cpp hold the two bit-identical.
/// Prefer the compiled path anywhere a trace is replayed more than once.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TRACE_TRACEREPLAYER_H
#define LIFEPRED_TRACE_TRACEREPLAYER_H

#include "trace/AllocationTrace.h"

#include <cstdint>

namespace lifepred {

/// Receives the interleaved event stream of a trace replay.
class TraceConsumer {
public:
  virtual ~TraceConsumer() = default;

  /// An object is born.  \p ObjectId is its trace index and \p Clock the
  /// byte clock *after* this allocation.
  virtual void onAlloc(uint64_t ObjectId, const AllocRecord &Record,
                       uint64_t Clock) = 0;

  /// An object dies.  \p Clock is the byte clock at the free.
  virtual void onFree(uint64_t ObjectId, const AllocRecord &Record,
                      uint64_t Clock) = 0;

  /// The trace ended; \p Clock is the final byte clock.  Objects with
  /// Lifetime == NeverFreed receive no onFree.  Objects whose death clock
  /// exceeds the trace length are freed (in death order) before this call.
  virtual void onEnd(uint64_t Clock) { (void)Clock; }
};

/// Replays \p Trace into \p Consumer in event order.
void replayTrace(const AllocationTrace &Trace, TraceConsumer &Consumer);

} // namespace lifepred

#endif // LIFEPRED_TRACE_TRACEREPLAYER_H
