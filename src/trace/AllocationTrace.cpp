//===- trace/AllocationTrace.cpp - Allocation trace storage ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/AllocationTrace.h"

using namespace lifepred;

uint32_t AllocationTrace::internChain(const CallChain &Chain) {
  uint64_t Hash = Chain.hash();
  auto &Bucket = ChainLookup[Hash];
  for (uint32_t Index : Bucket)
    if (Chains[Index] == Chain)
      return Index;
  auto Index = static_cast<uint32_t>(Chains.size());
  Chains.push_back(Chain);
  Bucket.push_back(Index);
  return Index;
}
