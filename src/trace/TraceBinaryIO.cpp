//===- trace/TraceBinaryIO.cpp - Binary trace serialization ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceBinaryIO.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

using namespace lifepred;

namespace {

constexpr char Magic[8] = {'L', 'P', 'T', 'R', 'A', 'C', 'E', '1'};

void putU32(std::ostream &OS, uint32_t Value) {
  unsigned char Bytes[4];
  for (int I = 0; I < 4; ++I)
    Bytes[I] = static_cast<unsigned char>(Value >> (8 * I));
  OS.write(reinterpret_cast<const char *>(Bytes), 4);
}

void putU64(std::ostream &OS, uint64_t Value) {
  unsigned char Bytes[8];
  for (int I = 0; I < 8; ++I)
    Bytes[I] = static_cast<unsigned char>(Value >> (8 * I));
  OS.write(reinterpret_cast<const char *>(Bytes), 8);
}

bool getU32(std::istream &IS, uint32_t &Value) {
  unsigned char Bytes[4];
  if (!IS.read(reinterpret_cast<char *>(Bytes), 4))
    return false;
  Value = 0;
  for (int I = 3; I >= 0; --I)
    Value = (Value << 8) | Bytes[I];
  return true;
}

bool getU64(std::istream &IS, uint64_t &Value) {
  unsigned char Bytes[8];
  if (!IS.read(reinterpret_cast<char *>(Bytes), 8))
    return false;
  Value = 0;
  for (int I = 7; I >= 0; --I)
    Value = (Value << 8) | Bytes[I];
  return true;
}

} // namespace

void lifepred::writeTraceBinary(const AllocationTrace &Trace,
                                std::ostream &OS) {
  OS.write(Magic, sizeof(Magic));
  putU64(OS, Trace.nonHeapRefs());
  putU32(OS, static_cast<uint32_t>(Trace.chainCount()));
  for (size_t I = 0; I < Trace.chainCount(); ++I) {
    const CallChain &Chain = Trace.chain(static_cast<uint32_t>(I));
    putU32(OS, static_cast<uint32_t>(Chain.depth()));
    for (FunctionId F : Chain.functions())
      putU32(OS, F);
  }
  putU64(OS, Trace.size());
  for (const AllocRecord &Record : Trace.records()) {
    putU64(OS, Record.Lifetime);
    putU32(OS, Record.Size);
    putU32(OS, Record.ChainIndex);
    putU32(OS, Record.Refs);
    putU32(OS, Record.TypeId);
  }
}

std::optional<AllocationTrace> lifepred::readTraceBinary(std::istream &IS) {
  char Header[8];
  if (!IS.read(Header, sizeof(Header)) ||
      std::memcmp(Header, Magic, sizeof(Magic)) != 0)
    return std::nullopt;

  AllocationTrace Trace;
  uint64_t NonHeapRefs = 0;
  if (!getU64(IS, NonHeapRefs))
    return std::nullopt;
  Trace.setNonHeapRefs(NonHeapRefs);

  uint32_t ChainCount = 0;
  if (!getU32(IS, ChainCount))
    return std::nullopt;
  // Clamped: a corrupt header's absurd count must not force a huge
  // allocation before the per-chain reads detect truncation.
  Trace.reserveChains(std::min<uint32_t>(ChainCount, 1u << 20));
  for (uint32_t I = 0; I < ChainCount; ++I) {
    uint32_t Depth = 0;
    if (!getU32(IS, Depth) || Depth > (1u << 20))
      return std::nullopt; // Absurd depth: corrupt stream.
    CallChain Chain;
    for (uint32_t K = 0; K < Depth; ++K) {
      uint32_t F = 0;
      if (!getU32(IS, F))
        return std::nullopt;
      Chain.push(F);
    }
    if (Trace.internChain(Chain) != I)
      return std::nullopt; // Duplicate chain entries: corrupt stream.
  }

  uint64_t RecordCount = 0;
  if (!getU64(IS, RecordCount))
    return std::nullopt;
  // Cap the up-front reservation so a corrupt header's absurd count cannot
  // force a huge allocation before the per-record reads detect truncation.
  Trace.reserveRecords(
      static_cast<size_t>(std::min<uint64_t>(RecordCount, 1u << 24)));
  for (uint64_t I = 0; I < RecordCount; ++I) {
    AllocRecord Record;
    if (!getU64(IS, Record.Lifetime) || !getU32(IS, Record.Size) ||
        !getU32(IS, Record.ChainIndex) || !getU32(IS, Record.Refs) ||
        !getU32(IS, Record.TypeId))
      return std::nullopt;
    if (Record.ChainIndex >= ChainCount)
      return std::nullopt;
    Trace.append(Record);
  }
  return Trace;
}
