//===- trace/TraceIO.cpp - Trace text serialization ------------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

using namespace lifepred;

void lifepred::writeTrace(const AllocationTrace &Trace, std::ostream &OS) {
  OS << "trace v1\n";
  OS << "nonheaprefs " << Trace.nonHeapRefs() << '\n';
  for (size_t I = 0; I < Trace.chainCount(); ++I) {
    OS << "chain " << I;
    for (FunctionId F : Trace.chain(static_cast<uint32_t>(I)).functions())
      OS << ' ' << F;
    OS << '\n';
  }
  for (const AllocRecord &Record : Trace.records()) {
    OS << "alloc " << Record.Size << ' ' << Record.ChainIndex << ' ';
    if (Record.Lifetime == NeverFreed)
      OS << "never";
    else
      OS << Record.Lifetime;
    OS << ' ' << Record.Refs;
    if (Record.TypeId != 0)
      OS << ' ' << Record.TypeId;
    OS << '\n';
  }
}

std::optional<AllocationTrace> lifepred::readTrace(std::istream &IS) {
  std::string Line;
  if (!std::getline(IS, Line) || Line != "trace v1")
    return std::nullopt;

  AllocationTrace Trace;
  // Chain indices must match the file's declared indices; the file writer
  // emits them densely in order, which internChain reproduces.
  uint32_t NextChain = 0;
  while (std::getline(IS, Line)) {
    if (Line.empty())
      continue;
    std::istringstream LS(Line);
    std::string Keyword;
    LS >> Keyword;
    if (Keyword == "nonheaprefs") {
      uint64_t Refs = 0;
      if (!(LS >> Refs))
        return std::nullopt;
      Trace.setNonHeapRefs(Refs);
    } else if (Keyword == "chain") {
      uint32_t Index = 0;
      if (!(LS >> Index) || Index != NextChain)
        return std::nullopt;
      CallChain Chain;
      FunctionId F = 0;
      while (LS >> F)
        Chain.push(F);
      if (Trace.internChain(Chain) != NextChain)
        return std::nullopt; // Duplicate chain line.
      ++NextChain;
    } else if (Keyword == "alloc") {
      AllocRecord Record;
      std::string LifetimeText;
      if (!(LS >> Record.Size >> Record.ChainIndex >> LifetimeText >>
            Record.Refs))
        return std::nullopt;
      if (Record.ChainIndex >= NextChain)
        return std::nullopt;
      if (LifetimeText == "never") {
        Record.Lifetime = NeverFreed;
      } else {
        char *End = nullptr;
        Record.Lifetime = std::strtoull(LifetimeText.c_str(), &End, 10);
        if (!End || *End != '\0')
          return std::nullopt;
      }
      LS >> Record.TypeId; // Optional trailing type id.
      Trace.append(Record);
    } else {
      return std::nullopt;
    }
  }
  return Trace;
}
