//===- callchain/SiteKey.h - Allocation-site key encoding ------------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encoding of allocation sites as integer keys.  Per the paper, a site is
/// the call-chain to the allocator plus the object size (rounded to a
/// multiple of four so sites map across runs).  Four key policies cover the
/// paper's studies:
///
///  - CompleteChain: the full call-chain with recursive cycles pruned
///    (Tables 3, 4, and the infinity row of Table 6);
///  - LastN: the length-N sub-chain, unpruned (Table 6's rows 1-7 and the
///    production algorithm's length-4 variant);
///  - SizeOnly: the object size alone (Table 5);
///  - Encrypted: the 16-bit call-chain-encryption key XORed with the size
///    (Table 9's "Arena (cce)" column).
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_CALLCHAIN_SITEKEY_H
#define LIFEPRED_CALLCHAIN_SITEKEY_H

#include "callchain/CallChain.h"
#include "callchain/ChainEncryption.h"
#include "support/Hashing.h"
#include "support/MathExtras.h"

#include <cstdint>

namespace lifepred {

/// An encoded allocation site.
using SiteKey = uint64_t;

/// How chains are reduced to keys.
///
/// TypeOnly and TypeAndSize implement the paper's future-work extension:
/// predicting from the object's type (available at C++/Modula allocation
/// sites but not at C malloc calls).  They require traces that carry
/// AllocRecord::TypeId and are offline policies — the in-process runtime
/// predicts from the shadow stack, which has no type information.
enum class SiteKeyMode {
  CompleteChain,
  LastN,
  SizeOnly,
  Encrypted,
  TypeOnly,
  TypeAndSize,
};

/// A site-key policy: mode plus its parameters.
struct SiteKeyPolicy {
  SiteKeyMode Mode = SiteKeyMode::CompleteChain;

  /// Sub-chain length for LastN.
  unsigned Length = 4;

  /// Sizes are rounded up to a multiple of this before keying; the paper
  /// found 4 bytes best for cross-run site mapping.
  uint32_t SizeRounding = 4;

  /// Id assignment for Encrypted mode (must outlive the policy's use).
  const ChainEncryption *Encryption = nullptr;

  /// Convenience constructors for the four studies.
  static SiteKeyPolicy completeChain(uint32_t Rounding = 4) {
    return {SiteKeyMode::CompleteChain, 0, Rounding, nullptr};
  }
  static SiteKeyPolicy lastN(unsigned Length, uint32_t Rounding = 4) {
    return {SiteKeyMode::LastN, Length, Rounding, nullptr};
  }
  static SiteKeyPolicy sizeOnly(uint32_t Rounding = 4) {
    return {SiteKeyMode::SizeOnly, 0, Rounding, nullptr};
  }
  static SiteKeyPolicy encrypted(const ChainEncryption &Encryption,
                                 uint32_t Rounding = 4) {
    return {SiteKeyMode::Encrypted, 0, Rounding, &Encryption};
  }
  static SiteKeyPolicy typeOnly() {
    return {SiteKeyMode::TypeOnly, 0, 4, nullptr};
  }
  static SiteKeyPolicy typeAndSize(uint32_t Rounding = 4) {
    return {SiteKeyMode::TypeAndSize, 0, Rounding, nullptr};
  }

  /// True if the policy keys on the object's type rather than its chain.
  bool usesType() const {
    return Mode == SiteKeyMode::TypeOnly || Mode == SiteKeyMode::TypeAndSize;
  }

  /// Two policies are equal when they produce the same key for every
  /// allocation (encryption compares by table identity).  Lets precomputed
  /// per-record key tables assert they match a database's policy.
  friend bool operator==(const SiteKeyPolicy &A, const SiteKeyPolicy &B) {
    return A.Mode == B.Mode && A.Length == B.Length &&
           A.SizeRounding == B.SizeRounding && A.Encryption == B.Encryption;
  }
};

/// The chain-dependent part of a site key (size not yet mixed in).
uint64_t chainKeyPart(const SiteKeyPolicy &Policy, const CallChain &Raw);

/// Rounds \p Size per the policy.
inline uint32_t roundSize(const SiteKeyPolicy &Policy, uint32_t Size) {
  return static_cast<uint32_t>(alignTo(Size, Policy.SizeRounding));
}

/// Full site key for an allocation with \p Raw chain and \p Size bytes.
/// Type-based policies additionally need the object's \p TypeId.
inline SiteKey siteKey(const SiteKeyPolicy &Policy, const CallChain &Raw,
                       uint32_t Size, uint32_t TypeId = 0) {
  switch (Policy.Mode) {
  case SiteKeyMode::TypeOnly:
    return hashCombine(FnvOffsetBasis ^ 0x717e, TypeId);
  case SiteKeyMode::TypeAndSize:
    return hashCombine(hashCombine(FnvOffsetBasis, TypeId),
                       roundSize(Policy, Size));
  default:
    return hashCombine(chainKeyPart(Policy, Raw), roundSize(Policy, Size));
  }
}

/// Site key for a trace record given the precomputed chain part of its
/// chain (from chainKeyPart).  Callers that process whole traces hoist the
/// chain hashing per distinct chain and use this per record.
template <typename RecordT>
inline SiteKey siteKeyForRecord(const SiteKeyPolicy &Policy,
                                uint64_t ChainPart, const RecordT &Record) {
  switch (Policy.Mode) {
  case SiteKeyMode::TypeOnly:
    return hashCombine(FnvOffsetBasis ^ 0x717e, Record.TypeId);
  case SiteKeyMode::TypeAndSize:
    return hashCombine(hashCombine(FnvOffsetBasis, Record.TypeId),
                       roundSize(Policy, Record.Size));
  default:
    return hashCombine(ChainPart, roundSize(Policy, Record.Size));
  }
}

} // namespace lifepred

#endif // LIFEPRED_CALLCHAIN_SITEKEY_H
