//===- callchain/FunctionRegistry.cpp - Names for FunctionIds --------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "callchain/FunctionRegistry.h"

using namespace lifepred;

FunctionId FunctionRegistry::intern(const std::string &Name) {
  auto [It, Inserted] =
      Ids.try_emplace(Name, static_cast<FunctionId>(Names.size()));
  if (Inserted)
    Names.push_back(Name);
  return It->second;
}

const std::string &FunctionRegistry::name(FunctionId Id) const {
  static const std::string Unknown = "<unknown>";
  if (Id >= Names.size())
    return Unknown;
  return Names[Id];
}

CallChain FunctionRegistry::chainOf(const std::vector<std::string> &Path) {
  CallChain Chain;
  for (const std::string &Name : Path)
    Chain.push(intern(Name));
  return Chain;
}
