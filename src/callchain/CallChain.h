//===- callchain/CallChain.h - Call-chain abstraction -----------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call-chain abstraction of the paper's section 3.2: the ordered list
/// of functions on the runtime stack at an allocation event, with recursive
/// cycles removable (gprof-style) and length-N sub-chains (the last N
/// callers) extractable.
///
/// Chains are stored outermost-first: index 0 is the program entry point and
/// back() is the function that directly calls the allocator.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_CALLCHAIN_CALLCHAIN_H
#define LIFEPRED_CALLCHAIN_CALLCHAIN_H

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace lifepred {

/// Identifies one function in the traced program.
using FunctionId = uint32_t;

/// An ordered list of functions on the call stack, outermost first.
class CallChain {
public:
  CallChain() = default;

  /// Builds a chain from an explicit outermost-first path.
  CallChain(std::initializer_list<FunctionId> Path) : Funcs(Path) {}

  /// Builds a chain from an explicit outermost-first path.
  explicit CallChain(std::vector<FunctionId> Path) : Funcs(std::move(Path)) {}

  /// Pushes \p Callee as the new innermost function.
  void push(FunctionId Callee) { Funcs.push_back(Callee); }

  /// Pops the innermost function.  Requires a non-empty chain.
  void pop();

  /// Number of functions on the chain.
  size_t depth() const { return Funcs.size(); }

  /// Returns true if the chain is empty.
  bool empty() const { return Funcs.empty(); }

  /// The innermost function (direct caller of the allocator).
  /// Requires a non-empty chain.
  FunctionId innermost() const;

  /// Outermost-first access to the functions on the chain.
  const std::vector<FunctionId> &functions() const { return Funcs; }

  /// Returns a copy with recursive cycles collapsed so every function
  /// appears at most once (the paper's complete-call-chain definition).
  ///
  /// Walking outermost to innermost, when a function that is already on the
  /// pruned chain reappears, the pruned chain is truncated back to (and
  /// including) its first occurrence, discarding the cycle.  Matches gprof's
  /// cycle collapsing.
  CallChain pruned() const;

  /// Returns the length-N sub-chain: the last \p N callers (innermost N
  /// functions).  If the chain is shorter than N the whole chain is
  /// returned.  Per the paper, no recursion pruning is applied here.
  CallChain lastN(size_t N) const;

  /// Order-sensitive 64-bit hash of the chain.
  uint64_t hash() const;

  friend bool operator==(const CallChain &A, const CallChain &B) {
    return A.Funcs == B.Funcs;
  }
  friend bool operator!=(const CallChain &A, const CallChain &B) {
    return !(A == B);
  }

private:
  std::vector<FunctionId> Funcs;
};

} // namespace lifepred

#endif // LIFEPRED_CALLCHAIN_CALLCHAIN_H
