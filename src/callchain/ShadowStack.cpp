//===- callchain/ShadowStack.cpp - Runtime call-stack mirror ---------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "callchain/ShadowStack.h"

using namespace lifepred;

ShadowStack &ShadowStack::current() {
  thread_local ShadowStack Stack;
  return Stack;
}

CallChain ShadowStack::captureLastN(size_t N) const {
  if (N >= Frames.size())
    return CallChain(Frames);
  return CallChain(std::vector<FunctionId>(
      Frames.end() - static_cast<ptrdiff_t>(N), Frames.end()));
}
