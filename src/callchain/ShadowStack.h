//===- callchain/ShadowStack.h - Runtime call-stack mirror ------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-local shadow of the call stack for in-process profiling.  The
/// paper walks SPARC stack frames to find the last four return addresses; a
/// portable C++ library cannot rely on frame pointers, so instrumented
/// functions push RAII frames onto this stack instead (see the
/// LIFEPRED_FUNCTION macro in runtime/Instrument.h).
///
/// The stack also maintains the incremental call-chain-encryption key (one
/// XOR per push/pop, mirroring the paper's 3-instruction estimate).
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_CALLCHAIN_SHADOWSTACK_H
#define LIFEPRED_CALLCHAIN_SHADOWSTACK_H

#include "callchain/CallChain.h"
#include "callchain/ChainEncryption.h"

#include <vector>

namespace lifepred {

/// Thread-local mirror of the instrumented call stack.
class ShadowStack {
public:
  /// Returns the calling thread's shadow stack.
  static ShadowStack &current();

  /// Pushes \p Function (entering it).  \p EncryptedId is XORed into the
  /// running chain key.
  void push(FunctionId Function, ChainKey EncryptedId = 0) {
    Frames.push_back(Function);
    EncryptionKeys.push_back(static_cast<ChainKey>(currentKey() ^ EncryptedId));
  }

  /// Pops the innermost function (leaving it).
  void pop() {
    Frames.pop_back();
    EncryptionKeys.pop_back();
  }

  /// Current stack depth.
  size_t depth() const { return Frames.size(); }

  /// Captures the complete chain, outermost first.
  CallChain capture() const { return CallChain(Frames); }

  /// Captures the last \p N callers without materializing the whole chain.
  CallChain captureLastN(size_t N) const;

  /// The running call-chain-encryption key for the current stack.
  ChainKey currentKey() const {
    return EncryptionKeys.empty() ? ChainKey(0) : EncryptionKeys.back();
  }

  /// Empties the stack (test support).
  void clear() {
    Frames.clear();
    EncryptionKeys.clear();
  }

private:
  std::vector<FunctionId> Frames;
  std::vector<ChainKey> EncryptionKeys;
};

/// RAII frame: pushes on construction, pops on destruction.
class ScopedFrame {
public:
  explicit ScopedFrame(FunctionId Function, ChainKey EncryptedId = 0)
      : Stack(ShadowStack::current()) {
    Stack.push(Function, EncryptedId);
  }
  ~ScopedFrame() { Stack.pop(); }

  ScopedFrame(const ScopedFrame &) = delete;
  ScopedFrame &operator=(const ScopedFrame &) = delete;

private:
  ShadowStack &Stack;
};

} // namespace lifepred

#endif // LIFEPRED_CALLCHAIN_SHADOWSTACK_H
