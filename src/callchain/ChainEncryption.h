//===- callchain/ChainEncryption.h - XOR call-chain keys --------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call-chain encryption (paper section 5.1, attributed to Larry Carter):
/// every function is assigned a 16-bit id; at each call the callee's key is
/// the caller's key XORed with the callee's id, so the current key is the
/// XOR of the ids of every function on the stack.  The key identifies the
/// call-chain in O(1) per call (the paper charges 3 instructions).
///
/// Because XOR is commutative and self-inverse, distinct chains can share a
/// key.  The paper proposes choosing ids via static call-graph analysis so
/// that keys of chains that actually occur are likely unique; we implement
/// that as randomized-restart assignment scored on the observed chain set.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_CALLCHAIN_CHAINENCRYPTION_H
#define LIFEPRED_CALLCHAIN_CHAINENCRYPTION_H

#include "callchain/CallChain.h"
#include "support/Random.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lifepred {

/// A 16-bit chain key, as computed by call-chain encryption.
using ChainKey = uint16_t;

/// Assigns 16-bit ids to functions and computes chain keys.
class ChainEncryption {
public:
  ChainEncryption() = default;

  /// Assigns ids to every function appearing in \p Chains, retrying
  /// \p Attempts random assignments and keeping the one with the fewest
  /// key collisions among distinct chains.  This models the paper's
  /// "static call-graph analysis may be used to determine the best ids".
  static ChainEncryption assign(const std::vector<CallChain> &Chains,
                                Rng &Random, unsigned Attempts = 16);

  /// Returns the id assigned to \p Function (assigning a fresh random-free
  /// id of 0 if the function was never seen; unseen functions XOR as 0 so
  /// they do not perturb keys).
  ChainKey idFor(FunctionId Function) const;

  /// Sets \p Function's id explicitly (used by the runtime shadow stack).
  void setId(FunctionId Function, ChainKey Id) { Ids[Function] = Id; }

  /// Computes the key of \p Chain: the XOR of its function ids.
  ChainKey keyFor(const CallChain &Chain) const;

  /// Counts how many of the given distinct \p Chains collide (share a key
  /// with a different chain) under this assignment.
  unsigned countCollisions(const std::vector<CallChain> &Chains) const;

private:
  std::unordered_map<FunctionId, ChainKey> Ids;
};

} // namespace lifepred

#endif // LIFEPRED_CALLCHAIN_CHAINENCRYPTION_H
