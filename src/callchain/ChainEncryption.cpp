//===- callchain/ChainEncryption.cpp - XOR call-chain keys -----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "callchain/ChainEncryption.h"

#include <algorithm>
#include <unordered_set>

using namespace lifepred;

ChainKey ChainEncryption::idFor(FunctionId Function) const {
  auto It = Ids.find(Function);
  return It == Ids.end() ? ChainKey(0) : It->second;
}

ChainKey ChainEncryption::keyFor(const CallChain &Chain) const {
  ChainKey Key = 0;
  for (FunctionId F : Chain.functions())
    Key = static_cast<ChainKey>(Key ^ idFor(F));
  return Key;
}

unsigned ChainEncryption::countCollisions(
    const std::vector<CallChain> &Chains) const {
  std::unordered_map<ChainKey, unsigned> KeyCounts;
  for (const CallChain &Chain : Chains)
    ++KeyCounts[keyFor(Chain)];
  unsigned Colliding = 0;
  for (const CallChain &Chain : Chains)
    if (KeyCounts[keyFor(Chain)] > 1)
      ++Colliding;
  return Colliding;
}

ChainEncryption ChainEncryption::assign(const std::vector<CallChain> &Chains,
                                        Rng &Random, unsigned Attempts) {
  // Collect the function universe.
  std::unordered_set<FunctionId> FunctionSet;
  for (const CallChain &Chain : Chains)
    for (FunctionId F : Chain.functions())
      FunctionSet.insert(F);
  std::vector<FunctionId> Functions(FunctionSet.begin(), FunctionSet.end());
  std::sort(Functions.begin(), Functions.end());

  ChainEncryption Best;
  unsigned BestCollisions = ~0u;
  for (unsigned Attempt = 0; Attempt < std::max(Attempts, 1u); ++Attempt) {
    ChainEncryption Candidate;
    for (FunctionId F : Functions)
      Candidate.Ids[F] = static_cast<ChainKey>(Random.next() & 0xffff);
    unsigned Collisions = Candidate.countCollisions(Chains);
    if (Collisions < BestCollisions) {
      BestCollisions = Collisions;
      Best = std::move(Candidate);
      if (BestCollisions == 0)
        break;
    }
  }
  return Best;
}
