//===- callchain/FunctionRegistry.h - Names for FunctionIds -----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bidirectional mapping between function names and FunctionIds.  The
/// workload models register readable names ("xmalloc", "parse_expr") and the
/// reporting code resolves ids back for debug output.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_CALLCHAIN_FUNCTIONREGISTRY_H
#define LIFEPRED_CALLCHAIN_FUNCTIONREGISTRY_H

#include "callchain/CallChain.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace lifepred {

/// Interns function names, handing out dense FunctionIds from 0.
class FunctionRegistry {
public:
  /// Returns the id for \p Name, creating it on first use.
  FunctionId intern(const std::string &Name);

  /// Returns the name for \p Id; "<unknown>" if the id was never interned.
  const std::string &name(FunctionId Id) const;

  /// Number of interned functions.
  size_t size() const { return Names.size(); }

  /// Builds a chain by interning each name in \p Path (outermost first).
  CallChain chainOf(const std::vector<std::string> &Path);

private:
  std::unordered_map<std::string, FunctionId> Ids;
  std::vector<std::string> Names;
};

} // namespace lifepred

#endif // LIFEPRED_CALLCHAIN_FUNCTIONREGISTRY_H
