//===- callchain/CallChain.cpp - Call-chain abstraction --------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "callchain/CallChain.h"

#include "support/Hashing.h"

#include <cassert>

using namespace lifepred;

void CallChain::pop() {
  assert(!Funcs.empty() && "pop on empty call-chain");
  Funcs.pop_back();
}

FunctionId CallChain::innermost() const {
  assert(!Funcs.empty() && "innermost on empty call-chain");
  return Funcs.back();
}

CallChain CallChain::pruned() const {
  std::vector<FunctionId> Result;
  Result.reserve(Funcs.size());
  for (FunctionId F : Funcs) {
    // Chains are short (tens of frames), so a linear scan beats a hash map.
    size_t Existing = Result.size();
    for (size_t I = 0; I < Result.size(); ++I) {
      if (Result[I] == F) {
        Existing = I;
        break;
      }
    }
    if (Existing < Result.size())
      Result.resize(Existing + 1); // Collapse the cycle back to F.
    else
      Result.push_back(F);
  }
  return CallChain(std::move(Result));
}

CallChain CallChain::lastN(size_t N) const {
  if (N >= Funcs.size())
    return *this;
  return CallChain(
      std::vector<FunctionId>(Funcs.end() - static_cast<ptrdiff_t>(N),
                              Funcs.end()));
}

uint64_t CallChain::hash() const {
  uint64_t Hash = FnvOffsetBasis;
  for (FunctionId F : Funcs)
    Hash = hashCombine(Hash, F);
  // Mix in the depth so a chain is never confused with a prefix of itself.
  return hashCombine(Hash, Funcs.size());
}
