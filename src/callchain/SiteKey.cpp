//===- callchain/SiteKey.cpp - Allocation-site key encoding ---------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "callchain/SiteKey.h"

#include "support/Assert.h"

using namespace lifepred;

uint64_t lifepred::chainKeyPart(const SiteKeyPolicy &Policy,
                                const CallChain &Raw) {
  switch (Policy.Mode) {
  case SiteKeyMode::CompleteChain:
    return Raw.pruned().hash();
  case SiteKeyMode::LastN:
    return Raw.lastN(Policy.Length).hash();
  case SiteKeyMode::SizeOnly:
    // A fixed chain part: the key depends only on the rounded size.
    return FnvOffsetBasis;
  case SiteKeyMode::Encrypted:
    assert(Policy.Encryption && "encrypted policy needs an id assignment");
    return Policy.Encryption->keyFor(Raw);
  case SiteKeyMode::TypeOnly:
  case SiteKeyMode::TypeAndSize:
    // Type-based policies ignore the chain; callers may still precompute
    // chain parts uniformly, so return a fixed basis.
    return FnvOffsetBasis;
  }
  LIFEPRED_UNREACHABLE("unknown site-key mode");
}
