//===- alloc/AllocatorSim.h - Allocator simulation interface ----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common interface for the simulated allocators.  The simulators manage a
/// *simulated* address space: allocate() returns an address, free() takes
/// it back, and the implementation tracks heap growth and the operation
/// counts the instruction cost model consumes.  No real memory of the
/// requested sizes is touched, so multi-gigabyte traces replay quickly.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_ALLOC_ALLOCATORSIM_H
#define LIFEPRED_ALLOC_ALLOCATORSIM_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace lifepred {

/// Raises the high-water mark \p Peak to \p Current when exceeded.  Every
/// allocator and trace consumer tracks its MaxHeap / MaxLive peaks through
/// this one helper so the update can never be duplicated along one
/// bookkeeping path (or drift between implementations).
inline void raisePeak(uint64_t &Peak, uint64_t Current) {
  if (Current > Peak)
    Peak = Current;
}

/// Abstract allocator simulator.
class AllocatorSim {
public:
  virtual ~AllocatorSim();

  /// Allocates \p Size bytes; returns the simulated address.
  virtual uint64_t allocate(uint32_t Size) = 0;

  /// Frees a previously allocated address.
  virtual void free(uint64_t Address) = 0;

  /// Bytes currently acquired from the simulated operating system.
  virtual uint64_t heapBytes() const = 0;

  /// High-water mark of heapBytes().
  virtual uint64_t maxHeapBytes() const = 0;

  /// Bytes currently allocated to live objects (payload, not headers).
  virtual uint64_t liveBytes() const = 0;

  /// Blocks currently on the allocator's free list(s); 0 where the concept
  /// does not apply.  Only consulted at telemetry sampling points, never on
  /// the per-event path.
  virtual size_t freeBlockCount() const { return 0; }

  /// Span callback: a contiguous (Address, Bytes) run of heap.
  using SpanVisitor = std::function<void(uint64_t Address, uint64_t Bytes)>;

  /// Invokes \p Visit for every free span the allocator could satisfy a
  /// request from: free boundary-tag blocks, free size-class blocks, and
  /// unconsumed arena tails.  Like freeBlockCount(), this is only called
  /// at stride-gated sampling points — never on the per-event path — so
  /// the virtual dispatch and std::function indirection are off the hot
  /// path by construction.  The default emits nothing.
  virtual void forEachFreeSpan(const SpanVisitor &Visit) const { (void)Visit; }

  /// Invokes \p Visit for every live span.  Allocators that track payload
  /// sizes report payload bytes; size-class allocators report the rounded
  /// block size (the resident footprint of the object).  Default: nothing.
  virtual void forEachLiveSpan(const SpanVisitor &Visit) const { (void)Visit; }
};

} // namespace lifepred

#endif // LIFEPRED_ALLOC_ALLOCATORSIM_H
