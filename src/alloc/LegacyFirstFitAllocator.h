//===- alloc/LegacyFirstFitAllocator.h - Map-based first fit ----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The original node-based implementation of the first-fit simulator: blocks
/// in a std::map keyed by address, free addresses in a std::set, payload
/// sizes in a separate hash map.  Retained verbatim as the differential
/// oracle for the flat block-store rewrite (FirstFitAllocator) — the two
/// must produce bit-identical counters, placements, and heap peaks for all
/// three FitPolicy modes.  Not used on any hot path.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_ALLOC_LEGACYFIRSTFITALLOCATOR_H
#define LIFEPRED_ALLOC_LEGACYFIRSTFITALLOCATOR_H

#include "alloc/FirstFitAllocator.h"

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

namespace lifepred {

/// Reference free-list allocator simulator (see FirstFitAllocator for the
/// production flat-store implementation).
class LegacyFirstFitAllocator : public AllocatorSim {
public:
  using Config = FirstFitAllocator::Config;
  using Counters = FirstFitAllocator::Counters;

  LegacyFirstFitAllocator();
  explicit LegacyFirstFitAllocator(Config C);

  uint64_t allocate(uint32_t Size) override;
  void free(uint64_t Address) override;
  uint64_t heapBytes() const override { return HeapEnd - Cfg.BaseAddress; }
  uint64_t maxHeapBytes() const override { return MaxHeap; }
  uint64_t liveBytes() const override { return LiveBytes; }

  const Counters &counters() const { return Stats; }
  const Config &config() const { return Cfg; }

  /// Number of blocks on the free list (test support).
  size_t freeBlockCount() const override { return FreeBlocks.size(); }

private:
  struct Block {
    uint64_t Size = 0; ///< Total block size including header.
    bool Free = false;
  };

  uint64_t blockNeed(uint32_t Size) const;
  void grow(uint64_t AtLeast);

  Config Cfg;
  Counters Stats;
  /// All blocks keyed by address; adjacency = map neighbours (the
  /// simulation analogue of boundary tags).
  std::map<uint64_t, Block> Blocks;
  /// Addresses of free blocks, in address order (first fit scans this).
  std::set<uint64_t> FreeBlocks;
  /// Payload size by allocated address (for liveBytes accounting).
  std::unordered_map<uint64_t, uint32_t> Payload;
  uint64_t HeapEnd;
  uint64_t Rover = 0; ///< Next-fit scan resume address.
  uint64_t MaxHeap = 0;
  uint64_t LiveBytes = 0;
};

} // namespace lifepred

#endif // LIFEPRED_ALLOC_LEGACYFIRSTFITALLOCATOR_H
