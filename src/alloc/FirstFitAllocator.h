//===- alloc/FirstFitAllocator.h - Knuth-style first fit --------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's baseline general-purpose allocator: first fit over an
/// address-ordered free list with the boundary-tag enhancements of Knuth
/// (TAOCP vol. 1, section 2.5) — immediate coalescing of adjacent free
/// blocks and block splitting.  The heap grows in 8 KB increments, matching
/// the granularity of the paper's reported heap sizes.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_ALLOC_FIRSTFITALLOCATOR_H
#define LIFEPRED_ALLOC_FIRSTFITALLOCATOR_H

#include "alloc/AllocatorSim.h"

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

namespace lifepred {

/// How the free list is searched.
enum class FitPolicy {
  /// First fit with Knuth's roving pointer (next fit): searches resume
  /// where the last one stopped, so small residues do not pile up at the
  /// front of the list.  The paper's baseline.
  RovingFirstFit,
  /// Classic first fit over the address-ordered free list.
  AddressOrderedFirstFit,
  /// Best fit: the whole list is searched for the tightest block.
  BestFit,
};

/// Free-list allocator simulator (first fit by default; see FitPolicy).
class FirstFitAllocator : public AllocatorSim {
public:
  /// Tunables; defaults model a 1990s Unix malloc.
  struct Config {
    uint64_t GrowthGranularity = 8192; ///< sbrk increment.
    uint64_t HeaderBytes = 8;          ///< Boundary-tag overhead per block.
    uint64_t MinBlockBytes = 16;       ///< Smallest splittable remainder.
    uint64_t BaseAddress = uint64_t(1) << 40; ///< Simulated heap start.
    FitPolicy Policy = FitPolicy::RovingFirstFit;
  };

  /// Operation counts for the instruction cost model.
  struct Counters {
    uint64_t Allocs = 0;
    uint64_t Frees = 0;
    uint64_t SearchSteps = 0; ///< Free blocks inspected during searches.
    uint64_t Splits = 0;
    uint64_t Coalesces = 0;   ///< Merges performed at free time.
    uint64_t Grows = 0;       ///< Heap extensions.
  };

  FirstFitAllocator();
  explicit FirstFitAllocator(Config C);

  uint64_t allocate(uint32_t Size) override;
  void free(uint64_t Address) override;
  uint64_t heapBytes() const override { return HeapEnd - Cfg.BaseAddress; }
  uint64_t maxHeapBytes() const override { return MaxHeap; }
  uint64_t liveBytes() const override { return LiveBytes; }

  const Counters &counters() const { return Stats; }
  const Config &config() const { return Cfg; }

  /// Number of blocks on the free list (test support).
  size_t freeBlockCount() const { return FreeBlocks.size(); }

private:
  struct Block {
    uint64_t Size = 0; ///< Total block size including header.
    bool Free = false;
  };

  uint64_t blockNeed(uint32_t Size) const;
  void grow(uint64_t AtLeast);

  Config Cfg;
  Counters Stats;
  /// All blocks keyed by address; adjacency = map neighbours (the
  /// simulation analogue of boundary tags).
  std::map<uint64_t, Block> Blocks;
  /// Addresses of free blocks, in address order (first fit scans this).
  std::set<uint64_t> FreeBlocks;
  /// Payload size by allocated address (for liveBytes accounting).
  std::unordered_map<uint64_t, uint32_t> Payload;
  uint64_t HeapEnd;
  uint64_t Rover = 0; ///< Next-fit scan resume address.
  uint64_t MaxHeap = 0;
  uint64_t LiveBytes = 0;
};

} // namespace lifepred

#endif // LIFEPRED_ALLOC_FIRSTFITALLOCATOR_H
