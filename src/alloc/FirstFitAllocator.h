//===- alloc/FirstFitAllocator.h - Knuth-style first fit --------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's baseline general-purpose allocator: first fit over an
/// address-ordered free list with the boundary-tag enhancements of Knuth
/// (TAOCP vol. 1, section 2.5) — immediate coalescing of adjacent free
/// blocks and block splitting.  The heap grows in 8 KB increments, matching
/// the granularity of the paper's reported heap sizes.
///
/// The implementation is a flat block store: every block lives in one
/// contiguous node arena and carries intrusive prev/next-by-address links
/// (the simulation analogue of boundary tags) plus free-list links, so
/// neighbour lookup and free-list traversal are index arithmetic instead of
/// red-black-tree walks.  LegacyFirstFitAllocator keeps the original
/// map-based implementation as the differential-testing oracle; the two are
/// bit-identical in counters, placements, and heap peaks.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_ALLOC_FIRSTFITALLOCATOR_H
#define LIFEPRED_ALLOC_FIRSTFITALLOCATOR_H

#include "alloc/AllocatorSim.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lifepred {

class StatsRegistry;
class Log2Histogram;

/// How the free list is searched.
enum class FitPolicy {
  /// First fit with Knuth's roving pointer (next fit): searches resume
  /// where the last one stopped, so small residues do not pile up at the
  /// front of the list.  The paper's baseline.
  RovingFirstFit,
  /// Classic first fit over the address-ordered free list.
  AddressOrderedFirstFit,
  /// Best fit: the whole list is searched for the tightest block.
  BestFit,
};

/// Free-list allocator simulator (first fit by default; see FitPolicy).
class FirstFitAllocator : public AllocatorSim {
public:
  /// Tunables; defaults model a 1990s Unix malloc.
  struct Config {
    uint64_t GrowthGranularity = 8192; ///< sbrk increment.
    uint64_t HeaderBytes = 8;          ///< Boundary-tag overhead per block.
    uint64_t MinBlockBytes = 16;       ///< Smallest splittable remainder.
    uint64_t BaseAddress = uint64_t(1) << 40; ///< Simulated heap start.
    FitPolicy Policy = FitPolicy::RovingFirstFit;
    /// Opt-in fast path for BestFit: segregated power-of-two size-class
    /// bins replace the full free-list scan.  Placement (and therefore
    /// heaps and addresses) is identical to the scanning best fit, but
    /// inspections happen in the bins and are counted as BinProbes instead
    /// of SearchSteps (and are fewer than the legacy full-list count) —
    /// leave off when reproducing the paper's instruction-cost tables.
    bool BestFitBins = false;
  };

  /// Operation counts for the instruction cost model.
  struct Counters {
    uint64_t Allocs = 0;
    uint64_t Frees = 0;
    uint64_t SearchSteps = 0; ///< Free blocks inspected by list scans.
    uint64_t BinProbes = 0;   ///< Blocks inspected in BestFitBins bins.
    uint64_t Splits = 0;
    uint64_t Coalesces = 0;   ///< Merges performed at free time.
    uint64_t Grows = 0;       ///< Heap extensions.

    bool operator==(const Counters &Other) const = default;
  };

  FirstFitAllocator();
  explicit FirstFitAllocator(Config C);

  uint64_t allocate(uint32_t Size) override;
  void free(uint64_t Address) override;
  uint64_t heapBytes() const override { return HeapEnd - Cfg.BaseAddress; }
  uint64_t maxHeapBytes() const override { return MaxHeap; }
  uint64_t liveBytes() const override { return LiveBytes; }

  const Counters &counters() const { return Stats; }
  const Config &config() const { return Cfg; }

  /// Number of blocks on the free list.
  size_t freeBlockCount() const override { return FreeCount; }

  /// Walks the address-ordered block chain: free blocks report their full
  /// boundary-tag size, live blocks their requested payload.
  void forEachFreeSpan(const SpanVisitor &Visit) const override;
  void forEachLiveSpan(const SpanVisitor &Visit) const override;

  /// Resolves per-allocation distribution histograms in \p Registry
  /// ("<Prefix>scan_len", and "<Prefix>bin_probe_len" under BestFitBins)
  /// and records into them on every subsequent allocate().  Detached (the
  /// default) the hot path pays one untaken branch.
  void attachTelemetry(StatsRegistry &Registry, const std::string &Prefix);

  /// Copies the operation counters and heap state into \p Registry as
  /// "<Prefix>allocs", "<Prefix>heap_bytes", ... — read-only, callable at
  /// any point.
  void exportTelemetry(StatsRegistry &Registry,
                       const std::string &Prefix) const;

  /// Exhaustive structural self-audit for the verify layer: heap tiling
  /// (byte conservation), free-list and bin consistency, coalescing
  /// idempotence (no two adjacent free blocks), live-byte accounting, and
  /// the rover cache.  O(blocks) per call and costs nothing unless called,
  /// mirroring the attachTelemetry zero-cost-when-detached convention.
  /// Returns false and fills \p Error at the first broken invariant.
  bool auditInvariants(std::string &Error) const;

private:
  /// Node-index sentinel (no block).
  static constexpr uint32_t Nil = ~uint32_t(0);
  /// Size-class count for the BestFit bins (indices are log2 of size).
  static constexpr unsigned BinCount = 48;

  /// One block of the simulated heap.  Blocks tile [BaseAddress, HeapEnd)
  /// contiguously; AddrPrev/AddrNext are the boundary tags, FreePrev /
  /// FreeNext thread the free blocks in address order, BinPrev/BinNext
  /// thread the (optional) size-class bin of a free block.
  struct BlockNode {
    uint64_t Addr = 0;
    uint64_t Size = 0;     ///< Total block size including header.
    uint32_t Payload = 0;  ///< Requested bytes while allocated.
    bool Free = false;
    uint32_t AddrPrev = Nil;
    uint32_t AddrNext = Nil;
    uint32_t FreePrev = Nil;
    uint32_t FreeNext = Nil;
    uint32_t BinPrev = Nil;
    uint32_t BinNext = Nil;
  };

  uint64_t blockNeed(uint32_t Size) const;
  void grow(uint64_t AtLeast);
  uint32_t newNode();
  void releaseNode(uint32_t N);
  uint32_t nodeAt(uint64_t Address) const;
  void mapAddress(uint64_t Address, uint32_t N);

  void freeListInsertBetween(uint32_t Prev, uint32_t Next, uint32_t N);
  void freeListInsertByAddress(uint32_t N);
  void freeListRemove(uint32_t N);
  void freeListReplace(uint32_t Old, uint32_t N);

  unsigned binIndex(uint64_t Size) const;
  void binInsert(uint32_t N);
  void binRemove(uint32_t N);
  void binResize(uint32_t N, uint64_t NewSize);
  uint32_t binnedBestFit(uint64_t Need);

  Config Cfg;
  Counters Stats;
  /// Telemetry sinks; null until attachTelemetry().
  Log2Histogram *ScanLenHist = nullptr;
  Log2Histogram *BinProbeHist = nullptr;
  /// The block store: all nodes, live and recycled.
  std::vector<BlockNode> Nodes;
  /// Indices of recycled (merged-away) nodes available for reuse.
  std::vector<uint32_t> FreeNodes;
  /// Node index by (Address - BaseAddress) / 8.  Block addresses are always
  /// 8-aligned, so this resolves free(Address) with one vector load instead
  /// of a hash probe; entries are only read for live addresses.
  std::vector<uint32_t> AddrMap;
  uint32_t Head = Nil;     ///< Lowest-addressed block.
  uint32_t Tail = Nil;     ///< Highest-addressed block.
  uint32_t FreeHead = Nil; ///< Lowest-addressed free block.
  uint32_t FreeTail = Nil; ///< Highest-addressed free block.
  size_t FreeCount = 0;
  /// Heads of the BestFit size-class bins (only maintained when
  /// Cfg.Policy == BestFit and Cfg.BestFitBins).
  std::array<uint32_t, BinCount> Bins;
  uint64_t HeapEnd;
  uint64_t Rover = 0; ///< Next-fit scan resume address.
  /// First free block with Addr >= Rover (the free-list analogue of the
  /// legacy set's lower_bound(Rover)); Nil when no such block exists.
  uint32_t RoverNode = Nil;
  uint64_t MaxHeap = 0;
  uint64_t LiveBytes = 0;
};

} // namespace lifepred

#endif // LIFEPRED_ALLOC_FIRSTFITALLOCATOR_H
