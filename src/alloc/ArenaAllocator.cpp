//===- alloc/ArenaAllocator.cpp - Lifetime-predicting arenas ---------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alloc/ArenaAllocator.h"

#include "support/MathExtras.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/StatsRegistry.h"

#include <cassert>

using namespace lifepred;

ArenaAllocator::ArenaAllocator() : ArenaAllocator(Config()) {}

ArenaAllocator::ArenaAllocator(Config Config)
    : Cfg(Config), General(Config.General) {
  assert(Cfg.ArenaCount > 0 && Cfg.AreaBytes % Cfg.ArenaCount == 0 &&
         "arena area must divide evenly");
  assert(Cfg.ArenaBase + Cfg.AreaBytes <= Cfg.General.BaseAddress &&
         "arena area must not overlap the general heap");
  Arenas.resize(Cfg.ArenaCount);
}

bool ArenaAllocator::fitsCurrentArena(uint64_t Need) const {
  return Arenas[Current].AllocPtr + Need <= arenaBytes();
}

uint64_t ArenaAllocator::bumpAllocate(uint32_t Size, uint64_t Need) {
  Arena &A = Arenas[Current];
  uint64_t Addr = Cfg.ArenaBase + Current * arenaBytes() + A.AllocPtr;
  A.AllocPtr += Need;
  ++A.LiveCount;
  ++Stats.ArenaAllocs;
  Stats.ArenaBytes += Size;
  ArenaPayload[Addr] = Size;
  ArenaLiveBytes += Size;
  raisePeak(MaxArenaLiveBytes, ArenaLiveBytes);
  return Addr;
}

uint64_t ArenaAllocator::allocate(uint32_t Size, bool PredictedShortLived) {
  if (!PredictedShortLived) {
    ++Stats.GeneralAllocs;
    ++Stats.UnpredictedAllocs;
    Stats.GeneralBytes += Size;
    return General.allocate(Size);
  }

  // Objects have no per-object overhead in an arena; only 8-byte alignment.
  // Zero-size requests still consume one granule: a zero-width bump would
  // hand out the same address twice and corrupt the live count / payload
  // map (found by the trace fuzzer).
  uint64_t Need = alignTo(Size == 0 ? 1 : Size, 8);
  if (Need > arenaBytes()) {
    // Predicted short-lived but cannot ever fit an arena (GHOST's 6 KB
    // objects) — general heap.
    ++Stats.GeneralAllocs;
    ++Stats.OversizeAllocs;
    Stats.GeneralBytes += Size;
    return General.allocate(Size);
  }

  if (fitsCurrentArena(Need))
    return bumpAllocate(Size, Need);

  // Scan every arena for one with no live objects; reset and reuse it.
  for (unsigned I = 0; I < Cfg.ArenaCount; ++I) {
    ++Stats.ScanSteps;
    if (Arenas[I].LiveCount == 0) {
      ++Stats.Resets;
      Arenas[I].AllocPtr = 0;
      ++Arenas[I].Generation;
      if (Lifecycle)
        Lifecycle->onArenaReset(0, I, Arenas[I].Generation);
      Current = I;
      return bumpAllocate(Size, Need);
    }
    if (Lifecycle)
      Lifecycle->onArenaPinned(0, I, Arenas[I].Generation,
                               Arenas[I].LiveCount);
  }

  // Every arena is pinned by live objects: degenerate to the general
  // allocator (the paper's CFRAC pollution case).
  ++Stats.GeneralAllocs;
  ++Stats.FallbackAllocs;
  Stats.GeneralBytes += Size;
  return General.allocate(Size);
}

void ArenaAllocator::free(uint64_t Address) {
  if (Address >= Cfg.ArenaBase &&
      Address < Cfg.ArenaBase + Cfg.AreaBytes) {
    ++Stats.ArenaFrees;
    unsigned Index =
        static_cast<unsigned>((Address - Cfg.ArenaBase) / arenaBytes());
    Arena &A = Arenas[Index];
    assert(A.LiveCount > 0 && "arena live count underflow");
    --A.LiveCount;
    auto It = ArenaPayload.find(Address);
    assert(It != ArenaPayload.end() && "free of unallocated arena address");
    ArenaLiveBytes -= It->second;
    ArenaPayload.erase(It);
    return;
  }
  ++Stats.GeneralFrees;
  General.free(Address);
}

//===----------------------------------------------------------------------===//
// Invariant audit (verify layer).
//===----------------------------------------------------------------------===//

bool ArenaAllocator::auditInvariants(std::string &Error) const {
  auto Fail = [&Error](std::string Message) {
    Error = std::move(Message);
    return false;
  };

  if (Current >= Cfg.ArenaCount)
    return Fail("current arena index out of range");
  for (unsigned I = 0; I < Cfg.ArenaCount; ++I) {
    if (Arenas[I].AllocPtr > arenaBytes())
      return Fail("arena " + std::to_string(I) +
                  " bump pointer past the arena end");
    if (Arenas[I].AllocPtr % 8 != 0)
      return Fail("arena " + std::to_string(I) + " bump pointer unaligned");
  }

  // The payload map and the per-arena live counts must describe the same
  // population — the soundness condition for batch reset (LiveCount == 0
  // really means no live object remains in the arena).
  std::vector<uint32_t> Counts(Cfg.ArenaCount, 0);
  uint64_t Live = 0;
  for (const auto &[Addr, Payload] : ArenaPayload) {
    if (!isArenaAddress(Addr))
      return Fail("payload map entry outside the arena area at " +
                  std::to_string(Addr));
    unsigned Index = arenaIndexFor(Addr);
    uint64_t Offset = Addr - Cfg.ArenaBase - Index * arenaBytes();
    if (Offset >= Arenas[Index].AllocPtr)
      return Fail("live object above the bump pointer in arena " +
                  std::to_string(Index));
    if (Offset + Payload > arenaBytes())
      return Fail("live object overflows arena " + std::to_string(Index));
    ++Counts[Index];
    Live += Payload;
  }
  for (unsigned I = 0; I < Cfg.ArenaCount; ++I)
    if (Counts[I] != Arenas[I].LiveCount)
      return Fail("arena " + std::to_string(I) + " live count " +
                  std::to_string(Arenas[I].LiveCount) +
                  " disagrees with payload map population " +
                  std::to_string(Counts[I]));
  if (Live != ArenaLiveBytes)
    return Fail("arena payload sums to " + std::to_string(Live) +
                " but ArenaLiveBytes is " + std::to_string(ArenaLiveBytes));
  if (MaxArenaLiveBytes < ArenaLiveBytes)
    return Fail("MaxArenaLiveBytes below current arena live bytes");

  return General.auditInvariants(Error);
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

void ArenaAllocator::attachTelemetry(StatsRegistry &Registry,
                                     const std::string &Prefix) {
  General.attachTelemetry(Registry, Prefix + "general.");
}

void ArenaAllocator::exportTelemetry(StatsRegistry &Registry,
                                     const std::string &Prefix) const {
  Registry.counter(Prefix + "arena_allocs") += Stats.ArenaAllocs;
  Registry.counter(Prefix + "arena_bytes") += Stats.ArenaBytes;
  Registry.counter(Prefix + "general_allocs") += Stats.GeneralAllocs;
  Registry.counter(Prefix + "general_bytes") += Stats.GeneralBytes;
  Registry.counter(Prefix + "unpredicted_allocs") += Stats.UnpredictedAllocs;
  Registry.counter(Prefix + "oversize_allocs") += Stats.OversizeAllocs;
  Registry.counter(Prefix + "fallback_allocs") += Stats.FallbackAllocs;
  Registry.counter(Prefix + "scan_steps") += Stats.ScanSteps;
  Registry.counter(Prefix + "resets") += Stats.Resets;
  Registry.counter(Prefix + "arena_frees") += Stats.ArenaFrees;
  Registry.counter(Prefix + "general_frees") += Stats.GeneralFrees;
  raisePeak(Registry.gauge(Prefix + "max_arena_live_bytes"),
            MaxArenaLiveBytes);
  raisePeak(Registry.gauge(Prefix + "max_heap_bytes"), maxHeapBytes());
  General.exportTelemetry(Registry, Prefix + "general.");
}

void ArenaAllocator::forEachFreeSpan(const SpanVisitor &Visit) const {
  General.forEachFreeSpan(Visit);
  // Each arena's unconsumed bump tail is allocatable space the area holds
  // but no object covers — the arena analogue of a free block.
  for (unsigned I = 0; I < Cfg.ArenaCount; ++I) {
    uint64_t Tail = arenaBytes() - Arenas[I].AllocPtr;
    if (Tail != 0)
      Visit(Cfg.ArenaBase + I * arenaBytes() + Arenas[I].AllocPtr, Tail);
  }
}

void ArenaAllocator::forEachLiveSpan(const SpanVisitor &Visit) const {
  General.forEachLiveSpan(Visit);
  for (const auto &[Addr, Payload] : ArenaPayload)
    Visit(Addr, Payload);
}
