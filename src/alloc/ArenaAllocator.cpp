//===- alloc/ArenaAllocator.cpp - Lifetime-predicting arenas ---------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alloc/ArenaAllocator.h"

#include "support/MathExtras.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/StatsRegistry.h"

#include <cassert>

using namespace lifepred;

ArenaAllocator::ArenaAllocator() : ArenaAllocator(Config()) {}

ArenaAllocator::ArenaAllocator(Config Config)
    : Cfg(Config), General(Config.General) {
  assert(Cfg.ArenaCount > 0 && Cfg.AreaBytes % Cfg.ArenaCount == 0 &&
         "arena area must divide evenly");
  assert(Cfg.ArenaBase + Cfg.AreaBytes <= Cfg.General.BaseAddress &&
         "arena area must not overlap the general heap");
  Arenas.resize(Cfg.ArenaCount);
}

bool ArenaAllocator::fitsCurrentArena(uint64_t Need) const {
  return Arenas[Current].AllocPtr + Need <= arenaBytes();
}

uint64_t ArenaAllocator::bumpAllocate(uint32_t Size, uint64_t Need) {
  Arena &A = Arenas[Current];
  uint64_t Addr = Cfg.ArenaBase + Current * arenaBytes() + A.AllocPtr;
  A.AllocPtr += Need;
  ++A.LiveCount;
  ++Stats.ArenaAllocs;
  Stats.ArenaBytes += Size;
  ArenaPayload[Addr] = Size;
  ArenaLiveBytes += Size;
  raisePeak(MaxArenaLiveBytes, ArenaLiveBytes);
  return Addr;
}

uint64_t ArenaAllocator::allocate(uint32_t Size, bool PredictedShortLived) {
  if (!PredictedShortLived) {
    ++Stats.GeneralAllocs;
    ++Stats.UnpredictedAllocs;
    Stats.GeneralBytes += Size;
    return General.allocate(Size);
  }

  // Objects have no per-object overhead in an arena; only 8-byte alignment.
  uint64_t Need = alignTo(Size, 8);
  if (Need > arenaBytes()) {
    // Predicted short-lived but cannot ever fit an arena (GHOST's 6 KB
    // objects) — general heap.
    ++Stats.GeneralAllocs;
    ++Stats.OversizeAllocs;
    Stats.GeneralBytes += Size;
    return General.allocate(Size);
  }

  if (fitsCurrentArena(Need))
    return bumpAllocate(Size, Need);

  // Scan every arena for one with no live objects; reset and reuse it.
  for (unsigned I = 0; I < Cfg.ArenaCount; ++I) {
    ++Stats.ScanSteps;
    if (Arenas[I].LiveCount == 0) {
      ++Stats.Resets;
      Arenas[I].AllocPtr = 0;
      ++Arenas[I].Generation;
      if (Lifecycle)
        Lifecycle->onArenaReset(0, I, Arenas[I].Generation);
      Current = I;
      return bumpAllocate(Size, Need);
    }
    if (Lifecycle)
      Lifecycle->onArenaPinned(0, I, Arenas[I].Generation,
                               Arenas[I].LiveCount);
  }

  // Every arena is pinned by live objects: degenerate to the general
  // allocator (the paper's CFRAC pollution case).
  ++Stats.GeneralAllocs;
  ++Stats.FallbackAllocs;
  Stats.GeneralBytes += Size;
  return General.allocate(Size);
}

void ArenaAllocator::free(uint64_t Address) {
  if (Address >= Cfg.ArenaBase &&
      Address < Cfg.ArenaBase + Cfg.AreaBytes) {
    ++Stats.ArenaFrees;
    unsigned Index =
        static_cast<unsigned>((Address - Cfg.ArenaBase) / arenaBytes());
    Arena &A = Arenas[Index];
    assert(A.LiveCount > 0 && "arena live count underflow");
    --A.LiveCount;
    auto It = ArenaPayload.find(Address);
    assert(It != ArenaPayload.end() && "free of unallocated arena address");
    ArenaLiveBytes -= It->second;
    ArenaPayload.erase(It);
    return;
  }
  ++Stats.GeneralFrees;
  General.free(Address);
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

void ArenaAllocator::attachTelemetry(StatsRegistry &Registry,
                                     const std::string &Prefix) {
  General.attachTelemetry(Registry, Prefix + "general.");
}

void ArenaAllocator::exportTelemetry(StatsRegistry &Registry,
                                     const std::string &Prefix) const {
  Registry.counter(Prefix + "arena_allocs") += Stats.ArenaAllocs;
  Registry.counter(Prefix + "arena_bytes") += Stats.ArenaBytes;
  Registry.counter(Prefix + "general_allocs") += Stats.GeneralAllocs;
  Registry.counter(Prefix + "general_bytes") += Stats.GeneralBytes;
  Registry.counter(Prefix + "unpredicted_allocs") += Stats.UnpredictedAllocs;
  Registry.counter(Prefix + "oversize_allocs") += Stats.OversizeAllocs;
  Registry.counter(Prefix + "fallback_allocs") += Stats.FallbackAllocs;
  Registry.counter(Prefix + "scan_steps") += Stats.ScanSteps;
  Registry.counter(Prefix + "resets") += Stats.Resets;
  Registry.counter(Prefix + "arena_frees") += Stats.ArenaFrees;
  Registry.counter(Prefix + "general_frees") += Stats.GeneralFrees;
  raisePeak(Registry.gauge(Prefix + "max_arena_live_bytes"),
            MaxArenaLiveBytes);
  raisePeak(Registry.gauge(Prefix + "max_heap_bytes"), maxHeapBytes());
  General.exportTelemetry(Registry, Prefix + "general.");
}
