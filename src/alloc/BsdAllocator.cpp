//===- alloc/BsdAllocator.cpp - Kingsley power-of-two buckets --------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alloc/BsdAllocator.h"

#include "support/MathExtras.h"
#include "telemetry/StatsRegistry.h"

#include <cassert>

using namespace lifepred;

BsdAllocator::BsdAllocator() : BsdAllocator(Config()) {}

BsdAllocator::BsdAllocator(Config Config)
    : Cfg(Config), HeapEnd(Config.BaseAddress) {
  assert(isPowerOf2(Cfg.MinBlockBytes) && "min block must be a power of 2");
  Buckets.resize(40);
}

unsigned BsdAllocator::bucketFor(uint32_t Size) const {
  uint64_t Need = Size + Cfg.HeaderBytes;
  if (Need < Cfg.MinBlockBytes)
    Need = Cfg.MinBlockBytes;
  return log2Ceil(Need);
}

uint64_t BsdAllocator::allocate(uint32_t Size) {
  ++Stats.Allocs;
  unsigned Bucket = bucketFor(Size);
  Stats.BucketBits += Bucket;
  assert(Bucket < Buckets.size() && "size class out of range");
  std::vector<uint64_t> &FreeList = Buckets[Bucket];

  if (FreeList.empty()) {
    // Carve a fresh extent into blocks of this class.  Oversize classes
    // get a single block of their exact power-of-two size.
    ++Stats.PageRefills;
    uint64_t BlockBytes = uint64_t(1) << Bucket;
    uint64_t Extent =
        BlockBytes >= Cfg.PageBytes ? BlockBytes : Cfg.PageBytes;
    uint64_t Page = HeapEnd;
    HeapEnd += Extent;
    raisePeak(MaxHeap, heapBytes());
    // Push in reverse so the lowest address pops first.
    for (uint64_t Offset = Extent; Offset >= BlockBytes;
         Offset -= BlockBytes)
      FreeList.push_back(Page + Offset - BlockBytes);
  }

  uint64_t Addr = FreeList.back();
  FreeList.pop_back();
  Live[Addr] = Size;
  LiveBytes += Size;
  if (ClassBytesHist)
    ClassBytesHist->record(uint64_t(1) << Bucket);
  return Addr;
}

void BsdAllocator::free(uint64_t Address) {
  ++Stats.Frees;
  auto It = Live.find(Address);
  assert(It != Live.end() && "free of unallocated address");
  unsigned Bucket = bucketFor(It->second);
  LiveBytes -= It->second;
  Live.erase(It);
  Buckets[Bucket].push_back(Address);
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

size_t BsdAllocator::freeBlockCount() const {
  size_t Count = 0;
  for (const std::vector<uint64_t> &FreeList : Buckets)
    Count += FreeList.size();
  return Count;
}

void BsdAllocator::attachTelemetry(StatsRegistry &Registry,
                                   const std::string &Prefix) {
  ClassBytesHist = &Registry.histogram(Prefix + "class_bytes");
}

void BsdAllocator::exportTelemetry(StatsRegistry &Registry,
                                   const std::string &Prefix) const {
  Registry.counter(Prefix + "allocs") += Stats.Allocs;
  Registry.counter(Prefix + "frees") += Stats.Frees;
  Registry.counter(Prefix + "page_refills") += Stats.PageRefills;
  Registry.counter(Prefix + "bucket_bits") += Stats.BucketBits;
  raisePeak(Registry.gauge(Prefix + "heap_bytes"), heapBytes());
  raisePeak(Registry.gauge(Prefix + "max_heap_bytes"), maxHeapBytes());
  raisePeak(Registry.gauge(Prefix + "live_bytes"), liveBytes());
  raisePeak(Registry.gauge(Prefix + "free_blocks"), freeBlockCount());
}
