//===- alloc/BsdAllocator.cpp - Kingsley power-of-two buckets --------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alloc/BsdAllocator.h"

#include "support/MathExtras.h"
#include "telemetry/StatsRegistry.h"

#include <cassert>
#include <unordered_set>

using namespace lifepred;

BsdAllocator::BsdAllocator() : BsdAllocator(Config()) {}

BsdAllocator::BsdAllocator(Config Config)
    : Cfg(Config), HeapEnd(Config.BaseAddress) {
  assert(isPowerOf2(Cfg.MinBlockBytes) && "min block must be a power of 2");
  Buckets.resize(40);
  if (Cfg.FreeList == FreeListKind::Bitmap) {
    Bitmaps.resize(Buckets.size());
    for (unsigned Bucket = 0; Bucket < Bitmaps.size(); ++Bucket) {
      uint64_t BlockBytes = uint64_t(1) << Bucket;
      uint64_t Extent =
          BlockBytes >= Cfg.PageBytes ? BlockBytes : Cfg.PageBytes;
      Bitmaps[Bucket].configure(BlockBytes, Extent / BlockBytes);
    }
  }
}

unsigned BsdAllocator::bucketFor(uint32_t Size) const {
  uint64_t Need = Size + Cfg.HeaderBytes;
  if (Need < Cfg.MinBlockBytes)
    Need = Cfg.MinBlockBytes;
  return log2Ceil(Need);
}

uint64_t BsdAllocator::allocate(uint32_t Size) {
  ++Stats.Allocs;
  unsigned Bucket = bucketFor(Size);
  Stats.BucketBits += Bucket;
  assert(Bucket < Buckets.size() && "size class out of range");

  uint64_t Addr;
  if (Cfg.FreeList == FreeListKind::Bitmap) {
    BitmapFreeList &FreeList = Bitmaps[Bucket];
    if (FreeList.empty()) {
      ++Stats.PageRefills;
      uint64_t BlockBytes = uint64_t(1) << Bucket;
      uint64_t Extent =
          BlockBytes >= Cfg.PageBytes ? BlockBytes : Cfg.PageBytes;
      FreeList.addExtent(HeapEnd);
      HeapEnd += Extent;
      raisePeak(MaxHeap, heapBytes());
    }
    Addr = FreeList.pop();
  } else {
    std::vector<uint64_t> &FreeList = Buckets[Bucket];
    if (FreeList.empty()) {
      // Carve a fresh extent into blocks of this class.  Oversize classes
      // get a single block of their exact power-of-two size.
      ++Stats.PageRefills;
      uint64_t BlockBytes = uint64_t(1) << Bucket;
      uint64_t Extent =
          BlockBytes >= Cfg.PageBytes ? BlockBytes : Cfg.PageBytes;
      uint64_t Page = HeapEnd;
      HeapEnd += Extent;
      raisePeak(MaxHeap, heapBytes());
      // Push in reverse so the lowest address pops first.
      for (uint64_t Offset = Extent; Offset >= BlockBytes;
           Offset -= BlockBytes)
        FreeList.push_back(Page + Offset - BlockBytes);
    }
    Addr = FreeList.back();
    FreeList.pop_back();
  }
  Live[Addr] = Size;
  LiveBytes += Size;
  if (ClassBytesHist)
    ClassBytesHist->record(uint64_t(1) << Bucket);
  return Addr;
}

void BsdAllocator::free(uint64_t Address) {
  ++Stats.Frees;
  auto It = Live.find(Address);
  assert(It != Live.end() && "free of unallocated address");
  unsigned Bucket = bucketFor(It->second);
  LiveBytes -= It->second;
  Live.erase(It);
  if (Cfg.FreeList == FreeListKind::Bitmap)
    Bitmaps[Bucket].push(Address);
  else
    Buckets[Bucket].push_back(Address);
}

//===----------------------------------------------------------------------===//
// Invariant audit (verify layer).
//===----------------------------------------------------------------------===//

bool BsdAllocator::auditInvariants(std::string &Error) const {
  auto Fail = [&Error](std::string Message) {
    Error = std::move(Message);
    return false;
  };

  uint64_t Live = 0;
  for (const auto &[Addr, Payload] : this->Live) {
    if (Addr < Cfg.BaseAddress || Addr >= HeapEnd)
      return Fail("live block outside the heap at " + std::to_string(Addr));
    if ((uint64_t(1) << bucketFor(Payload)) > heapBytes())
      return Fail("live block class larger than the heap at " +
                  std::to_string(Addr));
    Live += Payload;
  }
  if (Live != LiveBytes)
    return Fail("live payload sums to " + std::to_string(Live) +
                " but LiveBytes is " + std::to_string(LiveBytes));
  if (MaxHeap < heapBytes())
    return Fail("MaxHeap below current heap size");

  std::unordered_set<uint64_t> Parked;
  auto CheckParked = [&](uint64_t Addr, size_t Bucket, std::string &Err) {
    if (Addr < Cfg.BaseAddress || Addr >= HeapEnd) {
      Err = "parked block outside the heap at " + std::to_string(Addr) +
            " in class " + std::to_string(Bucket);
      return false;
    }
    if (this->Live.count(Addr)) {
      Err = "address both live and parked: " + std::to_string(Addr);
      return false;
    }
    if (!Parked.insert(Addr).second) {
      Err = "address parked twice: " + std::to_string(Addr);
      return false;
    }
    return true;
  };
  for (size_t Bucket = 0; Bucket < Buckets.size(); ++Bucket)
    for (uint64_t Addr : Buckets[Bucket]) {
      std::string Err;
      if (!CheckParked(Addr, Bucket, Err))
        return Fail(std::move(Err));
    }
  for (size_t Bucket = 0; Bucket < Bitmaps.size(); ++Bucket) {
    std::string Err;
    Bitmaps[Bucket].forEachFree([&](uint64_t Addr) {
      if (Err.empty())
        CheckParked(Addr, Bucket, Err);
    });
    if (!Err.empty())
      return Fail(std::move(Err));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

size_t BsdAllocator::freeBlockCount() const {
  size_t Count = 0;
  for (const std::vector<uint64_t> &FreeList : Buckets)
    Count += FreeList.size();
  for (const BitmapFreeList &FreeList : Bitmaps)
    Count += FreeList.freeCount();
  return Count;
}

void BsdAllocator::attachTelemetry(StatsRegistry &Registry,
                                   const std::string &Prefix) {
  ClassBytesHist = &Registry.histogram(Prefix + "class_bytes");
}

void BsdAllocator::exportTelemetry(StatsRegistry &Registry,
                                   const std::string &Prefix) const {
  Registry.counter(Prefix + "allocs") += Stats.Allocs;
  Registry.counter(Prefix + "frees") += Stats.Frees;
  Registry.counter(Prefix + "page_refills") += Stats.PageRefills;
  Registry.counter(Prefix + "bucket_bits") += Stats.BucketBits;
  raisePeak(Registry.gauge(Prefix + "heap_bytes"), heapBytes());
  raisePeak(Registry.gauge(Prefix + "max_heap_bytes"), maxHeapBytes());
  raisePeak(Registry.gauge(Prefix + "live_bytes"), liveBytes());
  raisePeak(Registry.gauge(Prefix + "free_blocks"), freeBlockCount());
}

void BsdAllocator::forEachFreeSpan(const SpanVisitor &Visit) const {
  for (size_t Bucket = 0; Bucket < Buckets.size(); ++Bucket)
    for (uint64_t Addr : Buckets[Bucket])
      Visit(Addr, uint64_t(1) << Bucket);
  for (size_t Bucket = 0; Bucket < Bitmaps.size(); ++Bucket)
    Bitmaps[Bucket].forEachFree(
        [&](uint64_t Addr) { Visit(Addr, uint64_t(1) << Bucket); });
}

void BsdAllocator::forEachLiveSpan(const SpanVisitor &Visit) const {
  // Unordered iteration is fine: span consumers aggregate into
  // order-independent sums, maxima, and bucket counts.
  for (const auto &[Addr, Bucket] : Live)
    Visit(Addr, uint64_t(1) << Bucket);
}
