//===- alloc/FirstFitAllocator.cpp - Knuth-style first fit -----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Flat block-store implementation.  Invariants:
//
//  * Blocks tile [BaseAddress, HeapEnd) contiguously; the address list
//    (Head/Tail, AddrPrev/AddrNext) is sorted by address.
//  * The free list (FreeHead/FreeTail, FreePrev/FreeNext) holds exactly the
//    free blocks, sorted by address — the legacy std::set in link form.
//  * Immediate coalescing means two free blocks are never address-adjacent
//    once free() returns.
//  * RoverNode is the first free block with Addr >= Rover (lower_bound),
//    maintained incrementally across every free-list mutation.
//
// Every placement decision, counter, and peak is bit-identical to
// LegacyFirstFitAllocator; tests/blockstore_test.cpp enforces this
// differentially over randomized traces for all three fit policies.
//
//===----------------------------------------------------------------------===//

#include "alloc/FirstFitAllocator.h"

#include "support/Assert.h"
#include "support/MathExtras.h"
#include "telemetry/StatsRegistry.h"

#include <bit>
#include <cassert>

using namespace lifepred;

AllocatorSim::~AllocatorSim() = default;

FirstFitAllocator::FirstFitAllocator() : FirstFitAllocator(Config()) {}

FirstFitAllocator::FirstFitAllocator(Config Config)
    : Cfg(Config), HeapEnd(Config.BaseAddress) {
  assert(isPowerOf2(Cfg.GrowthGranularity) && "growth must be a power of 2");
  Bins.fill(Nil);
  Nodes.reserve(256);
}

uint64_t FirstFitAllocator::blockNeed(uint32_t Size) const {
  uint64_t Need = alignTo(Size + Cfg.HeaderBytes, 8);
  return Need < Cfg.MinBlockBytes ? Cfg.MinBlockBytes : Need;
}

uint32_t FirstFitAllocator::newNode() {
  if (!FreeNodes.empty()) {
    uint32_t N = FreeNodes.back();
    FreeNodes.pop_back();
    Nodes[N] = BlockNode();
    return N;
  }
  Nodes.emplace_back();
  return static_cast<uint32_t>(Nodes.size() - 1);
}

void FirstFitAllocator::releaseNode(uint32_t N) { FreeNodes.push_back(N); }

uint32_t FirstFitAllocator::nodeAt(uint64_t Address) const {
  uint64_t Slot = (Address - Cfg.BaseAddress) >> 3;
  return Slot < AddrMap.size() ? AddrMap[Slot] : Nil;
}

void FirstFitAllocator::mapAddress(uint64_t Address, uint32_t N) {
  AddrMap[(Address - Cfg.BaseAddress) >> 3] = N;
}

//===----------------------------------------------------------------------===//
// BestFit size-class bins (opt-in fast path).
//===----------------------------------------------------------------------===//

unsigned FirstFitAllocator::binIndex(uint64_t Size) const {
  unsigned B = std::bit_width(Size) - 1; // floor(log2(Size)), Size >= 1.
  return B < BinCount ? B : BinCount - 1;
}

void FirstFitAllocator::binInsert(uint32_t N) {
  unsigned B = binIndex(Nodes[N].Size);
  Nodes[N].BinPrev = Nil;
  Nodes[N].BinNext = Bins[B];
  if (Bins[B] != Nil)
    Nodes[Bins[B]].BinPrev = N;
  Bins[B] = N;
}

void FirstFitAllocator::binRemove(uint32_t N) {
  unsigned B = binIndex(Nodes[N].Size);
  if (Nodes[N].BinPrev != Nil)
    Nodes[Nodes[N].BinPrev].BinNext = Nodes[N].BinNext;
  else
    Bins[B] = Nodes[N].BinNext;
  if (Nodes[N].BinNext != Nil)
    Nodes[Nodes[N].BinNext].BinPrev = Nodes[N].BinPrev;
  Nodes[N].BinPrev = Nodes[N].BinNext = Nil;
}

void FirstFitAllocator::binResize(uint32_t N, uint64_t NewSize) {
  bool UseBins = Cfg.Policy == FitPolicy::BestFit && Cfg.BestFitBins &&
                 Nodes[N].Free;
  if (UseBins)
    binRemove(N);
  Nodes[N].Size = NewSize;
  if (UseBins)
    binInsert(N);
}

uint32_t FirstFitAllocator::binnedBestFit(uint64_t Need) {
  uint32_t Best = Nil;
  uint64_t BestSize = ~uint64_t(0);
  auto Consider = [&](uint32_t I) {
    uint64_t S = Nodes[I].Size;
    if (S < BestSize || (S == BestSize && Best != Nil &&
                         Nodes[I].Addr < Nodes[Best].Addr)) {
      Best = I;
      BestSize = S;
    }
  };
  // The home bin mixes sizes above and below Need; filter explicitly.
  unsigned B0 = binIndex(Need);
  for (uint32_t I = Bins[B0]; I != Nil; I = Nodes[I].BinNext) {
    ++Stats.BinProbes;
    if (Nodes[I].Size >= Need)
      Consider(I);
  }
  if (Best != Nil)
    return Best;
  // Every block in a later bin is larger than any block in an earlier one,
  // so the first non-empty bin contains the global best fit.
  for (unsigned B = B0 + 1; B < BinCount; ++B) {
    for (uint32_t I = Bins[B]; I != Nil; I = Nodes[I].BinNext) {
      ++Stats.BinProbes;
      Consider(I);
    }
    if (Best != Nil)
      return Best;
  }
  return Nil;
}

//===----------------------------------------------------------------------===//
// Free-list primitives.
//===----------------------------------------------------------------------===//

void FirstFitAllocator::freeListInsertBetween(uint32_t Prev, uint32_t Next,
                                              uint32_t N) {
  Nodes[N].FreePrev = Prev;
  Nodes[N].FreeNext = Next;
  if (Prev != Nil)
    Nodes[Prev].FreeNext = N;
  else
    FreeHead = N;
  if (Next != Nil)
    Nodes[Next].FreePrev = N;
  else
    FreeTail = N;
  ++FreeCount;
  if (Cfg.Policy == FitPolicy::BestFit && Cfg.BestFitBins)
    binInsert(N);
  // A new free block below the current lower_bound(Rover) becomes it.
  if (Nodes[N].Addr >= Rover &&
      (RoverNode == Nil || Nodes[N].Addr < Nodes[RoverNode].Addr))
    RoverNode = N;
}

void FirstFitAllocator::freeListInsertByAddress(uint32_t N) {
  // Immediate coalescing failed in both directions, so the nearest free
  // block must be found by walking the boundary tags outward.  The walk is
  // bidirectional: whichever side reaches a free block first identifies the
  // insert position (the free predecessor and successor are adjacent on the
  // free list, so either neighbour determines it).
  uint32_t P = Nodes[N].AddrPrev;
  uint32_t Q = Nodes[N].AddrNext;
  for (;;) {
    if (P == Nil && Q == Nil) {
      freeListInsertBetween(Nil, Nil, N);
      return;
    }
    if (P != Nil) {
      if (Nodes[P].Free) {
        freeListInsertBetween(P, Nodes[P].FreeNext, N);
        return;
      }
      P = Nodes[P].AddrPrev;
    }
    if (Q != Nil) {
      if (Nodes[Q].Free) {
        freeListInsertBetween(Nodes[Q].FreePrev, Q, N);
        return;
      }
      Q = Nodes[Q].AddrNext;
    }
  }
}

void FirstFitAllocator::freeListRemove(uint32_t N) {
  if (RoverNode == N)
    RoverNode = Nodes[N].FreeNext;
  if (Cfg.Policy == FitPolicy::BestFit && Cfg.BestFitBins)
    binRemove(N);
  uint32_t P = Nodes[N].FreePrev;
  uint32_t Q = Nodes[N].FreeNext;
  if (P != Nil)
    Nodes[P].FreeNext = Q;
  else
    FreeHead = Q;
  if (Q != Nil)
    Nodes[Q].FreePrev = P;
  else
    FreeTail = P;
  Nodes[N].FreePrev = Nodes[N].FreeNext = Nil;
  --FreeCount;
}

void FirstFitAllocator::freeListReplace(uint32_t Old, uint32_t N) {
  if (Cfg.Policy == FitPolicy::BestFit && Cfg.BestFitBins) {
    binRemove(Old);
    binInsert(N);
  }
  uint32_t P = Nodes[Old].FreePrev;
  uint32_t Q = Nodes[Old].FreeNext;
  Nodes[N].FreePrev = P;
  Nodes[N].FreeNext = Q;
  if (P != Nil)
    Nodes[P].FreeNext = N;
  else
    FreeHead = N;
  if (Q != Nil)
    Nodes[Q].FreePrev = N;
  else
    FreeTail = N;
  Nodes[Old].FreePrev = Nodes[Old].FreeNext = Nil;
}

//===----------------------------------------------------------------------===//
// Heap growth.
//===----------------------------------------------------------------------===//

void FirstFitAllocator::grow(uint64_t AtLeast) {
  uint64_t Extent = alignTo(AtLeast, Cfg.GrowthGranularity);
  ++Stats.Grows;
  uint64_t NewAddr = HeapEnd;
  HeapEnd += Extent;
  raisePeak(MaxHeap, heapBytes());
  AddrMap.resize((HeapEnd - Cfg.BaseAddress) >> 3, Nil);

  // Coalesce the fresh extent with a trailing free block, if any.
  if (Tail != Nil && Nodes[Tail].Free &&
      Nodes[Tail].Addr + Nodes[Tail].Size == NewAddr) {
    binResize(Tail, Nodes[Tail].Size + Extent);
    return;
  }
  uint32_t N = newNode();
  Nodes[N].Addr = NewAddr;
  Nodes[N].Size = Extent;
  Nodes[N].Free = true;
  Nodes[N].AddrPrev = Tail;
  if (Tail != Nil)
    Nodes[Tail].AddrNext = N;
  else
    Head = N;
  Tail = N;
  mapAddress(NewAddr, N);
  freeListInsertBetween(FreeTail, Nil, N); // Highest address: list tail.
}

//===----------------------------------------------------------------------===//
// Allocation and free.
//===----------------------------------------------------------------------===//

uint64_t FirstFitAllocator::allocate(uint32_t Size) {
  ++Stats.Allocs;
  uint64_t Need = blockNeed(Size);
  uint64_t StepsBefore = Stats.SearchSteps;
  uint64_t ProbesBefore = Stats.BinProbes;

  // Search the free list per the configured policy.
  uint32_t Fit = Nil;
  switch (Cfg.Policy) {
  case FitPolicy::RovingFirstFit: {
    uint32_t Start = RoverNode; // lower_bound(Rover) on the free list.
    for (uint32_t I = Start; I != Nil; I = Nodes[I].FreeNext) {
      ++Stats.SearchSteps;
      if (Nodes[I].Size >= Need) {
        Fit = I;
        break;
      }
    }
    if (Fit == Nil) {
      for (uint32_t I = FreeHead; I != Start; I = Nodes[I].FreeNext) {
        ++Stats.SearchSteps;
        if (Nodes[I].Size >= Need) {
          Fit = I;
          break;
        }
      }
    }
    break;
  }
  case FitPolicy::AddressOrderedFirstFit:
    for (uint32_t I = FreeHead; I != Nil; I = Nodes[I].FreeNext) {
      ++Stats.SearchSteps;
      if (Nodes[I].Size >= Need) {
        Fit = I;
        break;
      }
    }
    break;
  case FitPolicy::BestFit: {
    if (Cfg.BestFitBins) {
      Fit = binnedBestFit(Need);
      break;
    }
    // Scan everything, keeping the tightest fit (ties to lowest address).
    uint64_t BestSize = ~uint64_t(0);
    for (uint32_t I = FreeHead; I != Nil; I = Nodes[I].FreeNext) {
      ++Stats.SearchSteps;
      uint64_t BlockSize = Nodes[I].Size;
      if (BlockSize >= Need && BlockSize < BestSize) {
        BestSize = BlockSize;
        Fit = I;
        if (BlockSize == Need)
          break; // Perfect fit.
      }
    }
    break;
  }
  }

  if (Fit == Nil) {
    grow(Need);
    // After growth the trailing block always fits; take it directly.
    assert(Tail != Nil && Nodes[Tail].Free && Nodes[Tail].Size >= Need &&
           "heap growth failed to produce a fitting block");
    Fit = Tail;
  }

  uint64_t Addr = Nodes[Fit].Addr;
  uint64_t BlockSize = Nodes[Fit].Size;
  uint32_t NextFree = Nodes[Fit].FreeNext; // Captured for the rover.
  uint32_t PrevFree = Nodes[Fit].FreePrev;
  freeListRemove(Fit);
  Rover = Addr + Need; // Next search resumes past this allocation.

  if (BlockSize >= Need + Cfg.MinBlockBytes) {
    // Split: the allocation takes the front, the remainder stays free.
    ++Stats.Splits;
    Nodes[Fit].Size = Need;
    Nodes[Fit].Free = false;
    uint32_t Rest = newNode();
    Nodes[Rest].Addr = Addr + Need;
    Nodes[Rest].Size = BlockSize - Need;
    Nodes[Rest].Free = true;
    // Splice into the address list right after the allocation.
    Nodes[Rest].AddrPrev = Fit;
    Nodes[Rest].AddrNext = Nodes[Fit].AddrNext;
    if (Nodes[Rest].AddrNext != Nil)
      Nodes[Nodes[Rest].AddrNext].AddrPrev = Rest;
    else
      Tail = Rest;
    Nodes[Fit].AddrNext = Rest;
    mapAddress(Nodes[Rest].Addr, Rest);
    // The remainder takes the fit block's old free-list position.
    freeListInsertBetween(PrevFree, NextFree, Rest);
    RoverNode = Rest; // Remainder address == Rover exactly.
  } else {
    Nodes[Fit].Free = false;
    RoverNode = NextFree; // First free block past the allocation.
  }

  Nodes[Fit].Payload = Size;
  LiveBytes += Size;
  if (ScanLenHist)
    ScanLenHist->record(Stats.SearchSteps - StepsBefore);
  if (BinProbeHist)
    BinProbeHist->record(Stats.BinProbes - ProbesBefore);
  return Addr;
}

//===----------------------------------------------------------------------===//
// Telemetry.
//===----------------------------------------------------------------------===//

void FirstFitAllocator::attachTelemetry(StatsRegistry &Registry,
                                        const std::string &Prefix) {
  ScanLenHist = &Registry.histogram(Prefix + "scan_len");
  if (Cfg.Policy == FitPolicy::BestFit && Cfg.BestFitBins)
    BinProbeHist = &Registry.histogram(Prefix + "bin_probe_len");
}

void FirstFitAllocator::exportTelemetry(StatsRegistry &Registry,
                                        const std::string &Prefix) const {
  Registry.counter(Prefix + "allocs") += Stats.Allocs;
  Registry.counter(Prefix + "frees") += Stats.Frees;
  Registry.counter(Prefix + "search_steps") += Stats.SearchSteps;
  Registry.counter(Prefix + "bin_probes") += Stats.BinProbes;
  Registry.counter(Prefix + "splits") += Stats.Splits;
  Registry.counter(Prefix + "coalesces") += Stats.Coalesces;
  Registry.counter(Prefix + "grows") += Stats.Grows;
  raisePeak(Registry.gauge(Prefix + "heap_bytes"), heapBytes());
  raisePeak(Registry.gauge(Prefix + "max_heap_bytes"), MaxHeap);
  raisePeak(Registry.gauge(Prefix + "live_bytes"), LiveBytes);
  raisePeak(Registry.gauge(Prefix + "free_blocks"), FreeCount);
}

void FirstFitAllocator::forEachFreeSpan(const SpanVisitor &Visit) const {
  for (uint32_t N = Head; N != Nil; N = Nodes[N].AddrNext)
    if (Nodes[N].Free)
      Visit(Nodes[N].Addr, Nodes[N].Size);
}

void FirstFitAllocator::forEachLiveSpan(const SpanVisitor &Visit) const {
  for (uint32_t N = Head; N != Nil; N = Nodes[N].AddrNext)
    if (!Nodes[N].Free)
      Visit(Nodes[N].Addr, Nodes[N].Payload);
}

//===----------------------------------------------------------------------===//
// Invariant audit (verify layer).
//===----------------------------------------------------------------------===//

bool FirstFitAllocator::auditInvariants(std::string &Error) const {
  auto Fail = [&Error](std::string Message) {
    Error = std::move(Message);
    return false;
  };

  // Address list: blocks tile [BaseAddress, HeapEnd) contiguously, the
  // boundary tags link both ways, the address map resolves every block
  // start, and no two free blocks are adjacent (coalescing idempotence).
  uint64_t Expect = Cfg.BaseAddress;
  uint64_t Live = 0;
  size_t FreeSeen = 0, Walked = 0;
  bool PrevFree = false;
  uint32_t Prev = Nil;
  for (uint32_t N = Head; N != Nil; N = Nodes[N].AddrNext) {
    const BlockNode &B = Nodes[N];
    if (++Walked > Nodes.size())
      return Fail("address list cycle");
    if (B.Addr != Expect)
      return Fail("blocks do not tile the heap at " + std::to_string(B.Addr));
    if (B.AddrPrev != Prev)
      return Fail("broken AddrPrev boundary tag at " + std::to_string(B.Addr));
    if (B.Size == 0)
      return Fail("zero-sized block at " + std::to_string(B.Addr));
    if (nodeAt(B.Addr) != N)
      return Fail("stale address map entry at " + std::to_string(B.Addr));
    if (B.Free && PrevFree)
      return Fail("adjacent free blocks at " + std::to_string(B.Addr) +
                  " (missed coalesce)");
    if (B.Free)
      ++FreeSeen;
    else {
      if (blockNeed(B.Payload) > B.Size)
        return Fail("payload overflows block at " + std::to_string(B.Addr));
      Live += B.Payload;
    }
    Expect = B.Addr + B.Size;
    PrevFree = B.Free;
    Prev = N;
  }
  if (Expect != HeapEnd)
    return Fail("blocks tile to " + std::to_string(Expect) +
                " but HeapEnd is " + std::to_string(HeapEnd) +
                " (byte conservation broken)");
  if (Tail != Prev)
    return Fail("Tail does not name the highest-addressed block");
  if (Live != LiveBytes)
    return Fail("live payload sums to " + std::to_string(Live) +
                " but LiveBytes is " + std::to_string(LiveBytes));
  if (MaxHeap < heapBytes())
    return Fail("MaxHeap below current heap size");

  // Free list: exactly the free blocks, sorted by address, doubly linked.
  uint64_t LastAddr = 0;
  size_t FreeWalked = 0;
  uint32_t FreePrev = Nil;
  for (uint32_t N = FreeHead; N != Nil; N = Nodes[N].FreeNext) {
    if (++FreeWalked > FreeCount)
      return Fail("free-list cycle or length above FreeCount");
    if (!Nodes[N].Free)
      return Fail("allocated block on the free list at " +
                  std::to_string(Nodes[N].Addr));
    if (Nodes[N].FreePrev != FreePrev)
      return Fail("broken FreePrev link at " + std::to_string(Nodes[N].Addr));
    if (FreePrev != Nil && Nodes[N].Addr <= LastAddr)
      return Fail("free list not address-sorted at " +
                  std::to_string(Nodes[N].Addr));
    LastAddr = Nodes[N].Addr;
    FreePrev = N;
  }
  if (FreeWalked != FreeCount || FreeWalked != FreeSeen)
    return Fail("free-list length " + std::to_string(FreeWalked) +
                " disagrees with FreeCount " + std::to_string(FreeCount) +
                " / free blocks seen " + std::to_string(FreeSeen));
  if (FreeTail != FreePrev)
    return Fail("FreeTail does not name the last free block");

  // Rover cache: RoverNode is lower_bound(Rover) on the free list.
  uint32_t Lower = Nil;
  for (uint32_t N = FreeHead; N != Nil; N = Nodes[N].FreeNext)
    if (Nodes[N].Addr >= Rover) {
      Lower = N;
      break;
    }
  if (Lower != RoverNode)
    return Fail("rover cache stale: lower_bound(Rover) mismatch");

  // BestFit bins: together they hold exactly the free blocks, each block
  // in its home bin with intact links.
  if (Cfg.Policy == FitPolicy::BestFit && Cfg.BestFitBins) {
    size_t Binned = 0;
    for (unsigned B = 0; B < BinCount; ++B) {
      uint32_t BinPrev = Nil;
      for (uint32_t N = Bins[B]; N != Nil; N = Nodes[N].BinNext) {
        if (++Binned > FreeCount)
          return Fail("bin cycle or bin population above FreeCount");
        if (!Nodes[N].Free)
          return Fail("allocated block in bin " + std::to_string(B));
        if (binIndex(Nodes[N].Size) != B)
          return Fail("block of size " + std::to_string(Nodes[N].Size) +
                      " filed in wrong bin " + std::to_string(B));
        if (Nodes[N].BinPrev != BinPrev)
          return Fail("broken BinPrev link in bin " + std::to_string(B));
        BinPrev = N;
      }
    }
    if (Binned != FreeCount)
      return Fail("bins hold " + std::to_string(Binned) +
                  " blocks but FreeCount is " + std::to_string(FreeCount));
  }
  return true;
}

void FirstFitAllocator::free(uint64_t Address) {
  ++Stats.Frees;
  uint32_t N = nodeAt(Address);
  assert(N != Nil && Nodes[N].Addr == Address && !Nodes[N].Free &&
         "free of unallocated address");
  LiveBytes -= Nodes[N].Payload;
  Nodes[N].Free = true;

  // Coalesce with the following block.  The merged block inherits the
  // following block's free-list position (no free block can sit between
  // two address-adjacent blocks).
  bool InFreeList = false;
  uint32_t Next = Nodes[N].AddrNext;
  if (Next != Nil && Nodes[Next].Free &&
      Nodes[N].Addr + Nodes[N].Size == Nodes[Next].Addr) {
    ++Stats.Coalesces;
    Nodes[N].Size += Nodes[Next].Size;
    freeListReplace(Next, N);
    if (RoverNode == Next)
      RoverNode = Nodes[N].Addr >= Rover ? N : Nodes[N].FreeNext;
    else if (Nodes[N].Addr >= Rover &&
             (RoverNode == Nil || Nodes[N].Addr < Nodes[RoverNode].Addr))
      RoverNode = N;
    // Unlink the absorbed block from the address list.
    Nodes[N].AddrNext = Nodes[Next].AddrNext;
    if (Nodes[N].AddrNext != Nil)
      Nodes[Nodes[N].AddrNext].AddrPrev = N;
    else
      Tail = N;
    releaseNode(Next);
    InFreeList = true;
  }

  // Coalesce with the preceding block (already on the free list).
  uint32_t Prev = Nodes[N].AddrPrev;
  if (Prev != Nil && Nodes[Prev].Free &&
      Nodes[Prev].Addr + Nodes[Prev].Size == Nodes[N].Addr) {
    ++Stats.Coalesces;
    if (InFreeList)
      freeListRemove(N);
    binResize(Prev, Nodes[Prev].Size + Nodes[N].Size);
    Nodes[Prev].AddrNext = Nodes[N].AddrNext;
    if (Nodes[N].AddrNext != Nil)
      Nodes[Nodes[N].AddrNext].AddrPrev = Prev;
    else
      Tail = Prev;
    releaseNode(N);
    return;
  }
  if (!InFreeList)
    freeListInsertByAddress(N);
}
