//===- alloc/LegacyFirstFitAllocator.cpp - Map-based first fit -------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// This file is the pre-rewrite FirstFitAllocator implementation, kept
// byte-for-byte in behaviour (only renamed) so the differential tests can
// prove the flat block store preserves the simulation semantics exactly.
//
//===----------------------------------------------------------------------===//

#include "alloc/LegacyFirstFitAllocator.h"

#include "support/Assert.h"
#include "support/MathExtras.h"

#include <cassert>

using namespace lifepred;

LegacyFirstFitAllocator::LegacyFirstFitAllocator()
    : LegacyFirstFitAllocator(Config()) {}

LegacyFirstFitAllocator::LegacyFirstFitAllocator(Config Config)
    : Cfg(Config), HeapEnd(Config.BaseAddress) {
  assert(isPowerOf2(Cfg.GrowthGranularity) && "growth must be a power of 2");
}

uint64_t LegacyFirstFitAllocator::blockNeed(uint32_t Size) const {
  uint64_t Need = alignTo(Size + Cfg.HeaderBytes, 8);
  return Need < Cfg.MinBlockBytes ? Cfg.MinBlockBytes : Need;
}

void LegacyFirstFitAllocator::grow(uint64_t AtLeast) {
  uint64_t Extent = alignTo(AtLeast, Cfg.GrowthGranularity);
  ++Stats.Grows;
  uint64_t NewAddr = HeapEnd;
  HeapEnd += Extent;
  raisePeak(MaxHeap, heapBytes());

  // Coalesce the fresh extent with a trailing free block, if any.
  if (!Blocks.empty()) {
    auto Last = std::prev(Blocks.end());
    if (Last->second.Free && Last->first + Last->second.Size == NewAddr) {
      Last->second.Size += Extent;
      return;
    }
  }
  Blocks[NewAddr] = {Extent, /*Free=*/true};
  FreeBlocks.insert(NewAddr);
}

uint64_t LegacyFirstFitAllocator::allocate(uint32_t Size) {
  ++Stats.Allocs;
  uint64_t Need = blockNeed(Size);

  // Search the free list per the configured policy.
  auto Fit = Blocks.end();
  auto ScanFrom = [&](std::set<uint64_t>::iterator Begin,
                      std::set<uint64_t>::iterator End) {
    for (auto It = Begin; It != End; ++It) {
      ++Stats.SearchSteps;
      auto BlockIt = Blocks.find(*It);
      assert(BlockIt != Blocks.end() && "free list out of sync");
      if (BlockIt->second.Size >= Need) {
        Fit = BlockIt;
        return true;
      }
    }
    return false;
  };
  switch (Cfg.Policy) {
  case FitPolicy::RovingFirstFit: {
    auto Start = FreeBlocks.lower_bound(Rover);
    if (!ScanFrom(Start, FreeBlocks.end()))
      ScanFrom(FreeBlocks.begin(), Start);
    break;
  }
  case FitPolicy::AddressOrderedFirstFit:
    ScanFrom(FreeBlocks.begin(), FreeBlocks.end());
    break;
  case FitPolicy::BestFit: {
    // Scan everything, keeping the tightest fit (ties to lowest address).
    uint64_t BestSize = ~uint64_t(0);
    for (uint64_t Addr : FreeBlocks) {
      ++Stats.SearchSteps;
      auto BlockIt = Blocks.find(Addr);
      assert(BlockIt != Blocks.end() && "free list out of sync");
      uint64_t Size = BlockIt->second.Size;
      if (Size >= Need && Size < BestSize) {
        BestSize = Size;
        Fit = BlockIt;
        if (Size == Need)
          break; // Perfect fit.
      }
    }
    break;
  }
  }

  if (Fit == Blocks.end()) {
    grow(Need);
    // After growth the trailing block always fits; rescan from the back.
    auto Last = std::prev(Blocks.end());
    assert(Last->second.Free && Last->second.Size >= Need &&
           "heap growth failed to produce a fitting block");
    Fit = Last;
    FreeBlocks.insert(Last->first); // No-op if already present.
  }

  uint64_t Addr = Fit->first;
  uint64_t BlockSize = Fit->second.Size;
  FreeBlocks.erase(Addr);
  Rover = Addr + Need; // Next search resumes past this allocation.

  if (BlockSize >= Need + Cfg.MinBlockBytes) {
    // Split: the allocation takes the front, the remainder stays free.
    ++Stats.Splits;
    Fit->second.Size = Need;
    Fit->second.Free = false;
    uint64_t RestAddr = Addr + Need;
    Blocks[RestAddr] = {BlockSize - Need, /*Free=*/true};
    FreeBlocks.insert(RestAddr);
  } else {
    Fit->second.Free = false;
  }

  Payload[Addr] = Size;
  LiveBytes += Size;
  return Addr;
}

void LegacyFirstFitAllocator::free(uint64_t Address) {
  ++Stats.Frees;
  auto PayloadIt = Payload.find(Address);
  assert(PayloadIt != Payload.end() && "free of unallocated address");
  LiveBytes -= PayloadIt->second;
  Payload.erase(PayloadIt);

  auto It = Blocks.find(Address);
  assert(It != Blocks.end() && !It->second.Free && "free of a free block");
  It->second.Free = true;

  // Coalesce with the following block.
  auto Next = std::next(It);
  if (Next != Blocks.end() && Next->second.Free &&
      It->first + It->second.Size == Next->first) {
    ++Stats.Coalesces;
    It->second.Size += Next->second.Size;
    FreeBlocks.erase(Next->first);
    Blocks.erase(Next);
  }

  // Coalesce with the preceding block.
  if (It != Blocks.begin()) {
    auto Prev = std::prev(It);
    if (Prev->second.Free &&
        Prev->first + Prev->second.Size == It->first) {
      ++Stats.Coalesces;
      Prev->second.Size += It->second.Size;
      Blocks.erase(It);
      FreeBlocks.insert(Prev->first); // Already present; keeps invariants.
      return;
    }
  }
  FreeBlocks.insert(Address);
}
