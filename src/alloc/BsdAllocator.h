//===- alloc/BsdAllocator.h - Kingsley power-of-two buckets -----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 4.2BSD (Kingsley) malloc the paper uses as its CPU-cost baseline:
/// requests are rounded up to a power of two, each size class keeps a LIFO
/// free list, freed blocks are pushed without coalescing, and empty classes
/// are refilled by carving a fresh page.  Extremely fast but memory-hungry.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_ALLOC_BSDALLOCATOR_H
#define LIFEPRED_ALLOC_BSDALLOCATOR_H

#include "alloc/AllocatorSim.h"
#include "support/BitmapFreeList.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lifepred {

class StatsRegistry;
class Log2Histogram;

/// Kingsley-style power-of-two segregated-storage simulator.
class BsdAllocator : public AllocatorSim {
public:
  /// How a size class stores its free blocks.
  enum class FreeListKind {
    /// The classic LIFO stack: free pushes, allocate pops the most
    /// recently freed block.  The paper's baseline behaviour.
    Lifo,
    /// One bit per block (support/BitmapFreeList.h): allocate claims the
    /// lowest free address via find-first-set.  Placement differs from
    /// Lifo, but every counter, the heap trajectory, and the exported
    /// telemetry are bit-identical — refills happen iff the class is
    /// empty, which is a placement-independent condition.  This is the
    /// batched-replay fast path's policy.
    Bitmap,
  };

  /// Tunables.
  struct Config {
    uint64_t PageBytes = 8192;        ///< Refill granularity.
    uint64_t HeaderBytes = 8;         ///< Per-block bucket tag.
    uint64_t MinBlockBytes = 16;      ///< Smallest size class.
    uint64_t BaseAddress = uint64_t(1) << 41;
    FreeListKind FreeList = FreeListKind::Lifo;
  };

  /// Operation counts for the instruction cost model.
  struct Counters {
    uint64_t Allocs = 0;
    uint64_t Frees = 0;
    uint64_t PageRefills = 0; ///< Pages carved into a size class.
    uint64_t BucketBits = 0;  ///< Sum of size-class indexes (shift loops).

    bool operator==(const Counters &Other) const = default;
  };

  BsdAllocator();
  explicit BsdAllocator(Config C);

  uint64_t allocate(uint32_t Size) override;
  void free(uint64_t Address) override;
  uint64_t heapBytes() const override { return HeapEnd - Cfg.BaseAddress; }
  uint64_t maxHeapBytes() const override { return MaxHeap; }
  uint64_t liveBytes() const override { return LiveBytes; }

  const Counters &counters() const { return Stats; }
  const Config &config() const { return Cfg; }

  /// The size class (bucket index) serving \p Size (test support).
  unsigned bucketFor(uint32_t Size) const;

  /// Blocks parked across all size-class free lists.
  size_t freeBlockCount() const override;

  /// Free spans are the parked blocks of every size class (span = rounded
  /// block size); live spans are the live addresses at their class size —
  /// Kingsley never splits, so block size is the resident footprint.
  void forEachFreeSpan(const SpanVisitor &Visit) const override;
  void forEachLiveSpan(const SpanVisitor &Visit) const override;

  /// Resolves the "<Prefix>class_bytes" histogram in \p Registry (rounded
  /// block size per allocation — the bucket distribution) and records into
  /// it on every subsequent allocate().
  void attachTelemetry(StatsRegistry &Registry, const std::string &Prefix);

  /// Copies the operation counters and heap state into \p Registry as
  /// "<Prefix>allocs", "<Prefix>page_refills", ... — read-only.
  void exportTelemetry(StatsRegistry &Registry,
                       const std::string &Prefix) const;

  /// Structural self-audit for the verify layer: live-byte accounting,
  /// address-range containment of every live and parked block, and
  /// free-list distinctness (no address both live and parked, no address
  /// parked twice).  O(blocks) per call; costs nothing unless called.
  /// Returns false and fills \p Error at the first broken invariant.
  bool auditInvariants(std::string &Error) const;

private:
  Config Cfg;
  Counters Stats;
  /// Telemetry sink; null until attachTelemetry().
  Log2Histogram *ClassBytesHist = nullptr;
  /// Per-bucket LIFO free lists of addresses (FreeListKind::Lifo).
  std::vector<std::vector<uint64_t>> Buckets;
  /// Per-bucket bitmap free lists (FreeListKind::Bitmap).
  std::vector<BitmapFreeList> Bitmaps;
  /// Bucket index by allocated address.
  std::unordered_map<uint64_t, uint32_t> Live;
  uint64_t HeapEnd;
  uint64_t MaxHeap = 0;
  uint64_t LiveBytes = 0;
};

} // namespace lifepred

#endif // LIFEPRED_ALLOC_BSDALLOCATOR_H
