//===- alloc/MultiArenaAllocator.cpp - Banded arena areas ------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alloc/MultiArenaAllocator.h"

#include "support/MathExtras.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/StatsRegistry.h"

#include <cassert>

using namespace lifepred;

MultiArenaAllocator::MultiArenaAllocator()
    : MultiArenaAllocator(Config()) {}

MultiArenaAllocator::MultiArenaAllocator(Config C)
    : Cfg(std::move(C)), General(Cfg.General) {
  if (Cfg.Bands.empty())
    Cfg.Bands.push_back(BandConfig());
  // Lay the band areas out contiguously below the general heap.
  uint64_t Base = 1 << 20;
  for (const BandConfig &BandCfg : Cfg.Bands) {
    assert(BandCfg.ArenaCount > 0 &&
           BandCfg.AreaBytes % BandCfg.ArenaCount == 0 &&
           "band area must divide evenly");
    BandState State;
    State.Cfg = BandCfg;
    State.Base = Base;
    State.Arenas.resize(BandCfg.ArenaCount);
    Base += BandCfg.AreaBytes;
    BandStates.push_back(std::move(State));
  }
  assert(Base <= Cfg.General.BaseAddress &&
         "band areas must not overlap the general heap");
}

uint64_t MultiArenaAllocator::bumpAllocate(BandState &Band, uint32_t Size,
                                           uint64_t Need) {
  Arena &A = Band.Arenas[Band.Current];
  uint64_t Addr = Band.Base + Band.Current * Band.arenaBytes() + A.AllocPtr;
  A.AllocPtr += Need;
  ++A.LiveCount;
  ++Band.Stats.Allocs;
  Band.Stats.Bytes += Size;
  ArenaPayload[Addr] = Size;
  ArenaLiveBytes += Size;
  raisePeak(MaxArenaLiveBytes, ArenaLiveBytes);
  return Addr;
}

uint64_t MultiArenaAllocator::allocate(uint32_t Size, uint8_t BandIndex) {
  if (BandIndex < BandStates.size()) {
    BandState &Band = BandStates[BandIndex];
    // Zero-size requests consume one granule so no two objects ever share
    // a bump address (see ArenaAllocator::allocate).
    uint64_t Need = alignTo(Size == 0 ? 1 : Size, 8);
    if (Need <= Band.arenaBytes()) {
      Arena &Current = Band.Arenas[Band.Current];
      if (Current.AllocPtr + Need <= Band.arenaBytes())
        return bumpAllocate(Band, Size, Need);
      for (unsigned I = 0; I < Band.Cfg.ArenaCount; ++I) {
        ++Band.Stats.ScanSteps;
        if (Band.Arenas[I].LiveCount == 0) {
          ++Band.Stats.Resets;
          Band.Arenas[I].AllocPtr = 0;
          ++Band.Arenas[I].Generation;
          if (Lifecycle)
            Lifecycle->onArenaReset(BandIndex, I, Band.Arenas[I].Generation);
          Band.Current = I;
          return bumpAllocate(Band, Size, Need);
        }
        if (Lifecycle)
          Lifecycle->onArenaPinned(BandIndex, I, Band.Arenas[I].Generation,
                                   Band.Arenas[I].LiveCount);
      }
    }
    ++Band.Stats.Fallbacks;
  }
  ++GeneralAllocs;
  GeneralBytes += Size;
  return General.allocate(Size);
}

void MultiArenaAllocator::free(uint64_t Address) {
  for (BandState &Band : BandStates) {
    if (Address < Band.Base || Address >= Band.Base + Band.Cfg.AreaBytes)
      continue;
    ++Band.Stats.Frees;
    Arena &A =
        Band.Arenas[(Address - Band.Base) / Band.arenaBytes()];
    assert(A.LiveCount > 0 && "arena live count underflow");
    --A.LiveCount;
    auto It = ArenaPayload.find(Address);
    assert(It != ArenaPayload.end() && "free of unallocated arena address");
    ArenaLiveBytes -= It->second;
    ArenaPayload.erase(It);
    return;
  }
  General.free(Address);
}

uint64_t MultiArenaAllocator::heapBytes() const {
  uint64_t Total = General.heapBytes();
  for (const BandState &Band : BandStates)
    Total += Band.Cfg.AreaBytes;
  return Total;
}

uint64_t MultiArenaAllocator::maxHeapBytes() const {
  uint64_t Total = General.maxHeapBytes();
  for (const BandState &Band : BandStates)
    Total += Band.Cfg.AreaBytes;
  return Total;
}

uint64_t MultiArenaAllocator::liveBytes() const {
  return ArenaLiveBytes + General.liveBytes();
}

//===----------------------------------------------------------------------===//
// Invariant audit (verify layer).
//===----------------------------------------------------------------------===//

bool MultiArenaAllocator::auditInvariants(std::string &Error) const {
  auto Fail = [&Error](std::string Message) {
    Error = std::move(Message);
    return false;
  };

  // Band areas are laid out contiguously and never overlap the general
  // heap.
  uint64_t Base = 1 << 20;
  for (size_t I = 0; I < BandStates.size(); ++I) {
    const BandState &Band = BandStates[I];
    if (Band.Base != Base)
      return Fail("band " + std::to_string(I) + " area not contiguous");
    Base += Band.Cfg.AreaBytes;
    if (Band.Current >= Band.Cfg.ArenaCount)
      return Fail("band " + std::to_string(I) +
                  " current arena index out of range");
    for (unsigned A = 0; A < Band.Cfg.ArenaCount; ++A) {
      if (Band.Arenas[A].AllocPtr > Band.arenaBytes())
        return Fail("band " + std::to_string(I) + " arena " +
                    std::to_string(A) + " bump pointer past the arena end");
      if (Band.Arenas[A].AllocPtr % 8 != 0)
        return Fail("band " + std::to_string(I) + " arena " +
                    std::to_string(A) + " bump pointer unaligned");
    }
  }
  if (Base > Cfg.General.BaseAddress)
    return Fail("band areas overlap the general heap");

  // Payload map vs per-arena live counts, attributed by address range.
  std::vector<std::vector<uint32_t>> Counts;
  for (const BandState &Band : BandStates)
    Counts.emplace_back(Band.Cfg.ArenaCount, 0);
  uint64_t Live = 0;
  for (const auto &[Addr, Payload] : ArenaPayload) {
    uint8_t Band = bandForAddress(Addr);
    if (Band == GeneralBand)
      return Fail("payload map entry outside every band area at " +
                  std::to_string(Addr));
    const BandState &State = BandStates[Band];
    unsigned Index = arenaIndexFor(Band, Addr);
    uint64_t Offset = Addr - State.Base - Index * State.arenaBytes();
    if (Offset >= State.Arenas[Index].AllocPtr)
      return Fail("live object above the bump pointer in band " +
                  std::to_string(Band) + " arena " + std::to_string(Index));
    if (Offset + Payload > State.arenaBytes())
      return Fail("live object overflows band " + std::to_string(Band) +
                  " arena " + std::to_string(Index));
    ++Counts[Band][Index];
    Live += Payload;
  }
  for (size_t I = 0; I < BandStates.size(); ++I)
    for (unsigned A = 0; A < BandStates[I].Cfg.ArenaCount; ++A)
      if (Counts[I][A] != BandStates[I].Arenas[A].LiveCount)
        return Fail("band " + std::to_string(I) + " arena " +
                    std::to_string(A) + " live count disagrees with the " +
                    "payload map population");
  if (Live != ArenaLiveBytes)
    return Fail("arena payload sums to " + std::to_string(Live) +
                " but ArenaLiveBytes is " + std::to_string(ArenaLiveBytes));
  if (MaxArenaLiveBytes < ArenaLiveBytes)
    return Fail("MaxArenaLiveBytes below current arena live bytes");

  return General.auditInvariants(Error);
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

void MultiArenaAllocator::attachTelemetry(StatsRegistry &Registry,
                                          const std::string &Prefix) {
  General.attachTelemetry(Registry, Prefix + "general.");
}

void MultiArenaAllocator::exportTelemetry(StatsRegistry &Registry,
                                          const std::string &Prefix) const {
  for (size_t I = 0; I < BandStates.size(); ++I) {
    const BandCounters &C = BandStates[I].Stats;
    std::string BandPrefix = Prefix + "band" + std::to_string(I) + ".";
    Registry.counter(BandPrefix + "allocs") += C.Allocs;
    Registry.counter(BandPrefix + "bytes") += C.Bytes;
    Registry.counter(BandPrefix + "frees") += C.Frees;
    Registry.counter(BandPrefix + "scan_steps") += C.ScanSteps;
    Registry.counter(BandPrefix + "resets") += C.Resets;
    Registry.counter(BandPrefix + "fallbacks") += C.Fallbacks;
  }
  Registry.counter(Prefix + "general_allocs") += GeneralAllocs;
  Registry.counter(Prefix + "general_bytes") += GeneralBytes;
  raisePeak(Registry.gauge(Prefix + "max_arena_live_bytes"),
            MaxArenaLiveBytes);
  raisePeak(Registry.gauge(Prefix + "max_heap_bytes"), maxHeapBytes());
  General.exportTelemetry(Registry, Prefix + "general.");
}

void MultiArenaAllocator::forEachFreeSpan(const SpanVisitor &Visit) const {
  General.forEachFreeSpan(Visit);
  for (const BandState &Band : BandStates)
    for (unsigned I = 0; I < Band.Cfg.ArenaCount; ++I) {
      uint64_t Tail = Band.arenaBytes() - Band.Arenas[I].AllocPtr;
      if (Tail != 0)
        Visit(Band.Base + I * Band.arenaBytes() + Band.Arenas[I].AllocPtr,
              Tail);
    }
}

void MultiArenaAllocator::forEachLiveSpan(const SpanVisitor &Visit) const {
  General.forEachLiveSpan(Visit);
  for (const auto &[Addr, Payload] : ArenaPayload)
    Visit(Addr, Payload);
}
