//===- alloc/MultiArenaAllocator.cpp - Banded arena areas ------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alloc/MultiArenaAllocator.h"

#include "support/MathExtras.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/StatsRegistry.h"

#include <cassert>

using namespace lifepred;

MultiArenaAllocator::MultiArenaAllocator()
    : MultiArenaAllocator(Config()) {}

MultiArenaAllocator::MultiArenaAllocator(Config C)
    : Cfg(std::move(C)), General(Cfg.General) {
  if (Cfg.Bands.empty())
    Cfg.Bands.push_back(BandConfig());
  // Lay the band areas out contiguously below the general heap.
  uint64_t Base = 1 << 20;
  for (const BandConfig &BandCfg : Cfg.Bands) {
    assert(BandCfg.ArenaCount > 0 &&
           BandCfg.AreaBytes % BandCfg.ArenaCount == 0 &&
           "band area must divide evenly");
    BandState State;
    State.Cfg = BandCfg;
    State.Base = Base;
    State.Arenas.resize(BandCfg.ArenaCount);
    Base += BandCfg.AreaBytes;
    BandStates.push_back(std::move(State));
  }
  assert(Base <= Cfg.General.BaseAddress &&
         "band areas must not overlap the general heap");
}

uint64_t MultiArenaAllocator::bumpAllocate(BandState &Band, uint32_t Size,
                                           uint64_t Need) {
  Arena &A = Band.Arenas[Band.Current];
  uint64_t Addr = Band.Base + Band.Current * Band.arenaBytes() + A.AllocPtr;
  A.AllocPtr += Need;
  ++A.LiveCount;
  ++Band.Stats.Allocs;
  Band.Stats.Bytes += Size;
  ArenaPayload[Addr] = Size;
  ArenaLiveBytes += Size;
  raisePeak(MaxArenaLiveBytes, ArenaLiveBytes);
  return Addr;
}

uint64_t MultiArenaAllocator::allocate(uint32_t Size, uint8_t BandIndex) {
  if (BandIndex < BandStates.size()) {
    BandState &Band = BandStates[BandIndex];
    uint64_t Need = alignTo(Size, 8);
    if (Need <= Band.arenaBytes()) {
      Arena &Current = Band.Arenas[Band.Current];
      if (Current.AllocPtr + Need <= Band.arenaBytes())
        return bumpAllocate(Band, Size, Need);
      for (unsigned I = 0; I < Band.Cfg.ArenaCount; ++I) {
        ++Band.Stats.ScanSteps;
        if (Band.Arenas[I].LiveCount == 0) {
          ++Band.Stats.Resets;
          Band.Arenas[I].AllocPtr = 0;
          ++Band.Arenas[I].Generation;
          if (Lifecycle)
            Lifecycle->onArenaReset(BandIndex, I, Band.Arenas[I].Generation);
          Band.Current = I;
          return bumpAllocate(Band, Size, Need);
        }
        if (Lifecycle)
          Lifecycle->onArenaPinned(BandIndex, I, Band.Arenas[I].Generation,
                                   Band.Arenas[I].LiveCount);
      }
    }
    ++Band.Stats.Fallbacks;
  }
  ++GeneralAllocs;
  GeneralBytes += Size;
  return General.allocate(Size);
}

void MultiArenaAllocator::free(uint64_t Address) {
  for (BandState &Band : BandStates) {
    if (Address < Band.Base || Address >= Band.Base + Band.Cfg.AreaBytes)
      continue;
    ++Band.Stats.Frees;
    Arena &A =
        Band.Arenas[(Address - Band.Base) / Band.arenaBytes()];
    assert(A.LiveCount > 0 && "arena live count underflow");
    --A.LiveCount;
    auto It = ArenaPayload.find(Address);
    assert(It != ArenaPayload.end() && "free of unallocated arena address");
    ArenaLiveBytes -= It->second;
    ArenaPayload.erase(It);
    return;
  }
  General.free(Address);
}

uint64_t MultiArenaAllocator::heapBytes() const {
  uint64_t Total = General.heapBytes();
  for (const BandState &Band : BandStates)
    Total += Band.Cfg.AreaBytes;
  return Total;
}

uint64_t MultiArenaAllocator::maxHeapBytes() const {
  uint64_t Total = General.maxHeapBytes();
  for (const BandState &Band : BandStates)
    Total += Band.Cfg.AreaBytes;
  return Total;
}

uint64_t MultiArenaAllocator::liveBytes() const {
  return ArenaLiveBytes + General.liveBytes();
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

void MultiArenaAllocator::attachTelemetry(StatsRegistry &Registry,
                                          const std::string &Prefix) {
  General.attachTelemetry(Registry, Prefix + "general.");
}

void MultiArenaAllocator::exportTelemetry(StatsRegistry &Registry,
                                          const std::string &Prefix) const {
  for (size_t I = 0; I < BandStates.size(); ++I) {
    const BandCounters &C = BandStates[I].Stats;
    std::string BandPrefix = Prefix + "band" + std::to_string(I) + ".";
    Registry.counter(BandPrefix + "allocs") += C.Allocs;
    Registry.counter(BandPrefix + "bytes") += C.Bytes;
    Registry.counter(BandPrefix + "frees") += C.Frees;
    Registry.counter(BandPrefix + "scan_steps") += C.ScanSteps;
    Registry.counter(BandPrefix + "resets") += C.Resets;
    Registry.counter(BandPrefix + "fallbacks") += C.Fallbacks;
  }
  Registry.counter(Prefix + "general_allocs") += GeneralAllocs;
  Registry.counter(Prefix + "general_bytes") += GeneralBytes;
  raisePeak(Registry.gauge(Prefix + "max_arena_live_bytes"),
            MaxArenaLiveBytes);
  raisePeak(Registry.gauge(Prefix + "max_heap_bytes"), maxHeapBytes());
  General.exportTelemetry(Registry, Prefix + "general.");
}
