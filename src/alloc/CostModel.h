//===- alloc/CostModel.h - Instruction cost model ---------------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction cost model for Table 9.  The paper measured its BSD and
/// first-fit numbers by instruction profiling real implementations and
/// derived its arena numbers by multiplying simulated operation counts by
/// estimated per-operation instruction costs; we apply the second method to
/// all four allocators.  The per-primitive constants below are calibrated
/// so the model reproduces the paper's measured BSD and first-fit baselines
/// on a RISC (SPARC-class) instruction mix.
///
/// Prediction overheads follow the paper directly: 18 instructions per
/// allocation for the length-4 call-chain variant (of which 10 walk the
/// stack), and for call-chain encryption an 8-instruction check plus 3
/// instructions per function call amortized over allocations.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_ALLOC_COSTMODEL_H
#define LIFEPRED_ALLOC_COSTMODEL_H

#include "alloc/ArenaAllocator.h"
#include "alloc/BsdAllocator.h"
#include "alloc/FirstFitAllocator.h"

namespace lifepred {

/// Average instructions per allocate and per free.
struct InstrPerOp {
  double Alloc = 0;
  double Free = 0;
  double total() const { return Alloc + Free; }
};

/// Per-primitive instruction costs with Table-9-calibrated defaults.
struct CostModel {
  // First fit (Knuth boundary tags).
  double FirstFitAllocBase = 42;  ///< Header setup, list entry, unlink.
  double FirstFitSearchStep = 8;  ///< Inspect one free block.
  double FirstFitSplit = 9;       ///< Write the remainder's tags.
  double FirstFitGrow = 60;       ///< sbrk call amortized.
  double FirstFitFreeBase = 52;   ///< Tag checks, list relinking.
  double FirstFitCoalesce = 13;   ///< Merge one neighbour.

  // BSD (Kingsley buckets).
  double BsdAllocBase = 40;       ///< List pop + header store.
  double BsdBucketBit = 2.2;      ///< Size-class shift loop, per bit.
  double BsdRefill = 90;          ///< Carve a page, amortized per refill.
  double BsdFreeCost = 17;        ///< Push onto the bucket list.

  // Lifetime prediction.
  double PredictLen4 = 18;        ///< Length-4 chain walk (10) + lookup (8).
  double PredictCceBase = 8;      ///< Lookup only; key is maintained...
  double CcePerCall = 3;          ///< ...by 3 instructions at every call.

  // Arena operations.
  double ArenaBump = 8;           ///< Space check, bump, count increment.
  double ArenaScanStep = 3;       ///< Inspect one arena's count.
  double ArenaReset = 6;          ///< Reset pointer and count.
  double ArenaFreeCost = 9;       ///< Range check + count decrement.
  double ArenaRangeCheck = 4;     ///< Free-side test on general frees.

  /// First-fit averages from its operation counters.
  InstrPerOp firstFit(const FirstFitAllocator::Counters &C) const;

  /// BSD averages from its operation counters.
  InstrPerOp bsd(const BsdAllocator::Counters &C) const;

  /// Arena averages.  \p CallsPerAlloc is the traced program's function
  /// calls per allocation; used only when \p UseCce is true.
  InstrPerOp arena(const ArenaAllocator::Counters &C,
                   const FirstFitAllocator::Counters &GeneralC,
                   bool UseCce, double CallsPerAlloc) const;
};

} // namespace lifepred

#endif // LIFEPRED_ALLOC_COSTMODEL_H
