//===- alloc/ArenaAllocator.h - Lifetime-predicting arenas ------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's lifetime-predicting arena allocator (section 5.1).  A fixed
/// 64 KB arena area is divided into 16 arenas of 4 KB.  Objects predicted
/// short-lived are bump-allocated into the current arena; each arena keeps
/// only an allocation pointer and a live-object count.  Freeing an arena
/// object decrements its arena's count; an arena whose count reaches zero
/// is reusable wholesale (no per-object bookkeeping).  When the current
/// arena is full the allocator scans for an empty arena; when none exists
/// — or the object was predicted long-lived, or is bigger than an arena —
/// the request falls through to a general-purpose first-fit heap.
///
/// The blocking into 16 small arenas limits the damage of mispredicted
/// long-lived objects: one such object pins only its own 4 KB arena.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_ALLOC_ARENAALLOCATOR_H
#define LIFEPRED_ALLOC_ARENAALLOCATOR_H

#include "alloc/FirstFitAllocator.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lifepred {

class ArenaLifecycleSink;

/// Arena allocator simulator with a first-fit general heap.
class ArenaAllocator : public AllocatorSim {
public:
  /// Geometry of the arena area.
  struct Config {
    uint64_t AreaBytes = 64 * 1024; ///< Total short-lived area.
    unsigned ArenaCount = 16;       ///< Arenas the area is divided into.
    uint64_t ArenaBase = 1 << 20;   ///< Simulated base address of the area.
    FirstFitAllocator::Config General; ///< The fallback heap.
  };

  /// Operation counts for the instruction cost model and Table 7.
  struct Counters {
    uint64_t ArenaAllocs = 0;     ///< Objects placed in arenas.
    uint64_t ArenaBytes = 0;      ///< Bytes placed in arenas.
    uint64_t GeneralAllocs = 0;   ///< Objects placed in the general heap.
    uint64_t GeneralBytes = 0;    ///< Bytes placed in the general heap.
    uint64_t UnpredictedAllocs = 0; ///< General because predicted long.
    uint64_t OversizeAllocs = 0;  ///< Predicted short but > arena size.
    uint64_t FallbackAllocs = 0;  ///< Predicted short but no empty arena.
    uint64_t ScanSteps = 0;       ///< Arenas inspected during scans.
    uint64_t Resets = 0;          ///< Arena reuses (count hit zero).
    uint64_t ArenaFrees = 0;
    uint64_t GeneralFrees = 0;

    bool operator==(const Counters &Other) const = default;
  };

  ArenaAllocator();
  explicit ArenaAllocator(Config C);

  /// Allocates with an explicit prediction (the simulator consults the
  /// trained site database and passes the verdict here).
  uint64_t allocate(uint32_t Size, bool PredictedShortLived);

  /// AllocatorSim::allocate treats every request as predicted long-lived
  /// (degenerates to first fit, as the paper notes).
  uint64_t allocate(uint32_t Size) override {
    return allocate(Size, /*PredictedShortLived=*/false);
  }

  void free(uint64_t Address) override;

  /// Heap size includes the whole arena area (Table 8's convention).
  uint64_t heapBytes() const override {
    return Cfg.AreaBytes + General.heapBytes();
  }
  uint64_t maxHeapBytes() const override {
    return Cfg.AreaBytes + General.maxHeapBytes();
  }
  uint64_t liveBytes() const override {
    return ArenaLiveBytes + General.liveBytes();
  }

  const Counters &counters() const { return Stats; }
  const FirstFitAllocator &general() const { return General; }
  const Config &config() const { return Cfg; }

  /// Bytes one arena can hold.
  uint64_t arenaBytes() const { return Cfg.AreaBytes / Cfg.ArenaCount; }

  /// Live-object count of arena \p Index (test support).
  uint32_t arenaLiveCount(unsigned Index) const {
    return Arenas[Index].LiveCount;
  }

  /// True when \p Address lies inside the arena area.
  bool isArenaAddress(uint64_t Address) const {
    return Address >= Cfg.ArenaBase && Address < Cfg.ArenaBase + Cfg.AreaBytes;
  }

  /// The arena containing \p Address (which must satisfy isArenaAddress).
  unsigned arenaIndexFor(uint64_t Address) const {
    return static_cast<unsigned>((Address - Cfg.ArenaBase) / arenaBytes());
  }

  /// Times arena \p Index has been reset; identifies which occupancy of
  /// the arena an object belongs to.
  uint64_t arenaGeneration(unsigned Index) const {
    return Arenas[Index].Generation;
  }

  /// Attaches an observer for pin/reset events in the reset scan (the
  /// flight recorder).  Null detaches; the bump fast path is unaffected
  /// either way.
  void attachLifecycle(ArenaLifecycleSink *Sink) { Lifecycle = Sink; }

  /// Payload bytes currently live inside the arena area.
  uint64_t arenaLiveBytes() const { return ArenaLiveBytes; }

  /// High-water mark of arenaLiveBytes().
  uint64_t maxArenaLiveBytes() const { return MaxArenaLiveBytes; }

  /// The arena area keeps no free lists; only the general heap does.
  size_t freeBlockCount() const override { return General.freeBlockCount(); }

  /// Free spans are the general heap's free blocks plus each arena's
  /// unconsumed bump tail; live spans are the general heap's live payloads
  /// plus the arena-held objects.
  void forEachFreeSpan(const SpanVisitor &Visit) const override;
  void forEachLiveSpan(const SpanVisitor &Visit) const override;

  /// Forwards to the general heap's histograms under "<Prefix>general.".
  void attachTelemetry(StatsRegistry &Registry, const std::string &Prefix);

  /// Copies arena counters ("<Prefix>arena_allocs", "<Prefix>resets",
  /// "<Prefix>fallback_allocs", ...) and the embedded general heap's
  /// telemetry ("<Prefix>general.*") into \p Registry — read-only.
  void exportTelemetry(StatsRegistry &Registry,
                       const std::string &Prefix) const;

  /// Structural self-audit for the verify layer: per-arena bump-pointer
  /// bounds and alignment, live-counter consistency against the payload
  /// map (batch-reset soundness), arena-live-byte accounting, and the
  /// embedded general heap's full audit.  O(live objects) per call; costs
  /// nothing unless called.  Returns false and fills \p Error at the first
  /// broken invariant.
  bool auditInvariants(std::string &Error) const;

private:
  /// Per-arena state: the paper's alloc pointer and live count, plus a
  /// reset-generation counter for the audit trail.
  struct Arena {
    uint64_t AllocPtr = 0; ///< Next free offset within the arena.
    uint32_t LiveCount = 0;
    uint64_t Generation = 0; ///< Incremented at every reset.
  };

  bool fitsCurrentArena(uint64_t Need) const;
  uint64_t bumpAllocate(uint32_t Size, uint64_t Need);

  Config Cfg;
  Counters Stats;
  std::vector<Arena> Arenas;
  unsigned Current = 0;
  ArenaLifecycleSink *Lifecycle = nullptr;
  FirstFitAllocator General;
  /// Payload size by arena address (simulation bookkeeping only — the
  /// modeled allocator stores nothing per object).
  std::unordered_map<uint64_t, uint32_t> ArenaPayload;
  uint64_t ArenaLiveBytes = 0;
  uint64_t MaxArenaLiveBytes = 0;
};

} // namespace lifepred

#endif // LIFEPRED_ALLOC_ARENAALLOCATOR_H
