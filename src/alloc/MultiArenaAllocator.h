//===- alloc/MultiArenaAllocator.h - Banded arena areas ---------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-band extension of the paper's arena allocator: one arena area
/// per predicted lifetime band, all sharing one general first-fit heap.
/// Band 0 (the shortest-lived objects) can be sized very small — it
/// recycles fastest — while later bands hold the medium-lived objects that
/// would otherwise pin the small area's arenas.  Objects with no predicted
/// band go to the general heap.
///
/// With a single band this is exactly the paper's allocator; the
/// multi-band ablation quantifies what the extra segregation buys.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_ALLOC_MULTIARENAALLOCATOR_H
#define LIFEPRED_ALLOC_MULTIARENAALLOCATOR_H

#include "alloc/FirstFitAllocator.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lifepred {

class ArenaLifecycleSink;

/// Arena allocator with one arena area per lifetime band.
class MultiArenaAllocator : public AllocatorSim {
public:
  /// Band placed in the general heap / no predicted band.
  static constexpr uint8_t GeneralBand = 0xff;

  /// Geometry of one band's arena area.
  struct BandConfig {
    uint64_t AreaBytes = 64 * 1024;
    unsigned ArenaCount = 16;
  };

  /// Whole-allocator configuration.
  struct Config {
    /// Band areas; empty = one band with the paper's 64 KB/16 geometry.
    std::vector<BandConfig> Bands;
    FirstFitAllocator::Config General;
  };

  /// Per-band operation counts.
  struct BandCounters {
    uint64_t Allocs = 0;
    uint64_t Bytes = 0;
    uint64_t Frees = 0;
    uint64_t ScanSteps = 0;
    uint64_t Resets = 0;
    uint64_t Fallbacks = 0; ///< Routed to the general heap (full/oversize).
  };

  MultiArenaAllocator();
  explicit MultiArenaAllocator(Config C);

  /// Allocates \p Size bytes into band \p Band; GeneralBand or an
  /// out-of-range band uses the general heap, as does a full band.
  uint64_t allocate(uint32_t Size, uint8_t Band);

  /// AllocatorSim::allocate places everything in the general heap.
  uint64_t allocate(uint32_t Size) override {
    return allocate(Size, GeneralBand);
  }

  void free(uint64_t Address) override;

  /// Heap size includes every band's arena area.
  uint64_t heapBytes() const override;
  uint64_t maxHeapBytes() const override;
  uint64_t liveBytes() const override;

  /// Number of configured bands.
  size_t bands() const { return BandStates.size(); }

  /// Counters of band \p Band.
  const BandCounters &bandCounters(size_t Band) const {
    return BandStates[Band].Stats;
  }

  /// Objects and bytes placed in the general heap.
  uint64_t generalAllocs() const { return GeneralAllocs; }
  uint64_t generalBytes() const { return GeneralBytes; }

  const FirstFitAllocator &general() const { return General; }
  const Config &config() const { return Cfg; }

  /// Payload bytes currently live across all band areas.
  uint64_t arenaLiveBytes() const { return ArenaLiveBytes; }

  /// High-water mark of arenaLiveBytes().
  uint64_t maxArenaLiveBytes() const { return MaxArenaLiveBytes; }

  /// The band whose area contains \p Address, or GeneralBand.
  uint8_t bandForAddress(uint64_t Address) const {
    for (size_t I = 0; I < BandStates.size(); ++I)
      if (Address >= BandStates[I].Base &&
          Address < BandStates[I].Base + BandStates[I].Cfg.AreaBytes)
        return static_cast<uint8_t>(I);
    return GeneralBand;
  }

  /// The arena of band \p Band containing \p Address.
  unsigned arenaIndexFor(uint8_t Band, uint64_t Address) const {
    const BandState &State = BandStates[Band];
    return static_cast<unsigned>((Address - State.Base) / State.arenaBytes());
  }

  /// Reset count of arena \p Index in band \p Band.
  uint64_t arenaGeneration(uint8_t Band, unsigned Index) const {
    return BandStates[Band].Arenas[Index].Generation;
  }

  /// Bytes one arena of band \p Band holds.
  uint64_t bandArenaBytes(uint8_t Band) const {
    return BandStates[Band].arenaBytes();
  }

  /// Attaches an observer for pin/reset events in every band's reset scan.
  void attachLifecycle(ArenaLifecycleSink *Sink) { Lifecycle = Sink; }

  /// Band areas keep no free lists; only the general heap does.
  size_t freeBlockCount() const override { return General.freeBlockCount(); }

  /// Free spans are the general heap's free blocks plus every band arena's
  /// unconsumed bump tail; live spans are the general heap's live payloads
  /// plus the arena-held objects of every band.
  void forEachFreeSpan(const SpanVisitor &Visit) const override;
  void forEachLiveSpan(const SpanVisitor &Visit) const override;

  /// Forwards to the general heap's histograms under "<Prefix>general.".
  void attachTelemetry(StatsRegistry &Registry, const std::string &Prefix);

  /// Copies per-band counters ("<Prefix>band<i>.allocs", ...), the general
  /// routing totals, and the embedded general heap's telemetry
  /// ("<Prefix>general.*") into \p Registry — read-only.
  void exportTelemetry(StatsRegistry &Registry,
                       const std::string &Prefix) const;

  /// Structural self-audit for the verify layer: band-area layout, per-band
  /// bump-pointer bounds and alignment, live-counter consistency against
  /// the payload map, arena-live-byte accounting, and the embedded general
  /// heap's full audit.  O(live objects) per call; costs nothing unless
  /// called.  Returns false and fills \p Error at the first broken
  /// invariant.
  bool auditInvariants(std::string &Error) const;

private:
  struct Arena {
    uint64_t AllocPtr = 0;
    uint32_t LiveCount = 0;
    uint64_t Generation = 0; ///< Incremented at every reset.
  };

  struct BandState {
    BandConfig Cfg;
    uint64_t Base = 0; ///< Simulated base address of this band's area.
    std::vector<Arena> Arenas;
    unsigned Current = 0;
    BandCounters Stats;

    uint64_t arenaBytes() const { return Cfg.AreaBytes / Cfg.ArenaCount; }
  };

  uint64_t bumpAllocate(BandState &Band, uint32_t Size, uint64_t Need);

  Config Cfg;
  std::vector<BandState> BandStates;
  ArenaLifecycleSink *Lifecycle = nullptr;
  FirstFitAllocator General;
  uint64_t GeneralAllocs = 0;
  uint64_t GeneralBytes = 0;
  /// Payload sizes of arena-held objects (simulation bookkeeping only).
  std::unordered_map<uint64_t, uint32_t> ArenaPayload;
  uint64_t ArenaLiveBytes = 0;
  uint64_t MaxArenaLiveBytes = 0;
};

} // namespace lifepred

#endif // LIFEPRED_ALLOC_MULTIARENAALLOCATOR_H
