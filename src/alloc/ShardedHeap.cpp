//===- alloc/ShardedHeap.cpp - Sharded concurrent heap layer ---------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alloc/ShardedHeap.h"

#include "telemetry/FragmentationProbe.h"
#include "telemetry/StatsRegistry.h"

#include <cassert>

using namespace lifepred;

//===----------------------------------------------------------------------===//
// CasHeapShard
//===----------------------------------------------------------------------===//

void CasHeapShard::configure(const Config &C, SharedBackingStore *Backing,
                             unsigned ShardIndex) {
  assert(Backing && "CAS shard needs a backing store");
  assert(isPowerOf2(C.PageBytes) && "page size must be a power of 2");
  assert(isPowerOf2(C.MinBlockBytes) && "min block must be a power of 2");
  Cfg = C;
  Store = Backing;
  Shard = ShardIndex;
  LaneBase = Store->laneBase(Shard);
  HeapEnd = LaneBase;
  Classes = std::make_unique<AtomicBitmapFreeList[]>(BucketCount);
  for (unsigned Bucket = 0; Bucket < BucketCount; ++Bucket) {
    uint64_t BlockBytes = uint64_t(1) << Bucket;
    uint64_t Extent = BlockBytes >= Cfg.PageBytes ? BlockBytes : Cfg.PageBytes;
    Classes[Bucket].configure(BlockBytes, Extent / BlockBytes,
                              Cfg.MaxExtentsPerClass);
  }
}

uint64_t CasHeapShard::allocate(uint32_t Size, uint64_t &CasRetries) {
  // Mirrors BsdAllocator::allocate (bitmap mode) statement for statement so
  // a serially driven shard reproduces its address stream exactly — the
  // shadow-conformance test replays one shard's op log through a fresh
  // BsdAllocator and compares addresses.
  ++Stats.Allocs;
  unsigned Bucket = bucketFor(Size);
  Stats.BucketBits += Bucket;
  assert(Bucket < BucketCount && "size class out of range");

  AtomicBitmapFreeList &Class = Classes[Bucket];
  if (Class.empty()) {
    // In eager mode a remote free can land between this check and the pop;
    // the refill is then conservative (one extra extent), never wrong.  In
    // channel mode the owner is the only mutator, so the refill count is
    // deterministic and matches the serial BSD heap.
    ++Stats.PageRefills;
    uint64_t BlockBytes = uint64_t(1) << Bucket;
    uint64_t Extent = BlockBytes >= Cfg.PageBytes ? BlockBytes : Cfg.PageBytes;
    uint64_t Base = Store->reserve(Shard, Extent);
    assert(Base == HeapEnd && "lane reserved out from under its owner");
    Class.addExtent(Base);
    HeapEnd += Extent;
    raisePeak(MaxHeap, heapBytes());
  }
  uint64_t Addr = Class.pop(CasRetries);
  LiveBytes.fetch_add(Size, std::memory_order_relaxed);
  return Addr;
}

uint64_t CasHeapShard::freeBlockCount() const {
  uint64_t Count = 0;
  for (unsigned Bucket = 0; Bucket < BucketCount; ++Bucket)
    Count += Classes[Bucket].freeCount();
  return Count;
}

void CasHeapShard::exportTelemetry(StatsRegistry &Registry,
                                   const std::string &Prefix) const {
  // Same key set as BsdAllocator::exportTelemetry so serving rows diff
  // against single-heap rows key for key.
  Registry.counter(Prefix + "allocs") += Stats.Allocs;
  Registry.counter(Prefix + "frees") += freeCount();
  Registry.counter(Prefix + "page_refills") += Stats.PageRefills;
  Registry.counter(Prefix + "bucket_bits") += Stats.BucketBits;
  raisePeak(Registry.gauge(Prefix + "heap_bytes"), heapBytes());
  raisePeak(Registry.gauge(Prefix + "max_heap_bytes"), maxHeapBytes());
  raisePeak(Registry.gauge(Prefix + "live_bytes"), liveBytes());
  raisePeak(Registry.gauge(Prefix + "free_blocks"), freeBlockCount());
}

void CasHeapShard::sampleFragmentation(uint64_t Clock,
                                       FragmentationProbe &Probe) const {
  // Bulk per-class sampling: every span in class B is exactly 1<<B bytes,
  // so counts are enough — no per-block walk.
  Probe.beginSample(Clock, heapBytes(), liveBytes());
  for (unsigned Bucket = 0; Bucket < BucketCount; ++Bucket) {
    uint64_t Free = Classes[Bucket].freeCount();
    uint64_t Blocks = Classes[Bucket].blockCount();
    uint64_t SpanBytes = uint64_t(1) << Bucket;
    if (Free)
      Probe.addFreeSpans(SpanBytes, Free);
    if (Blocks > Free)
      Probe.addLiveSpans(SpanBytes, Blocks - Free);
  }
  Probe.endSample();
}

//===----------------------------------------------------------------------===//
// Shard sets
//===----------------------------------------------------------------------===//

FirstFitShardSet::FirstFitShardSet(const SharedBackingStore::Config &Backing,
                                   FirstFitAllocator::Config Alloc,
                                   unsigned Shards) {
  Store.configure(Backing, Shards);
  this->Shards.reserve(Shards);
  for (unsigned S = 0; S < Shards; ++S) {
    Alloc.BaseAddress = Store.laneBase(S);
    this->Shards.push_back(std::make_unique<FirstFitAllocator>(Alloc));
  }
}

void FirstFitShardSet::exportShard(unsigned Shard, StatsRegistry &Registry,
                                   const std::string &Prefix) const {
  Shards[Shard]->exportTelemetry(Registry, Prefix);
}

BsdShardSet::BsdShardSet(const SharedBackingStore::Config &Backing,
                         BsdAllocator::Config Alloc, unsigned Shards) {
  Store.configure(Backing, Shards);
  this->Shards.reserve(Shards);
  for (unsigned S = 0; S < Shards; ++S) {
    Alloc.BaseAddress = Store.laneBase(S);
    this->Shards.push_back(std::make_unique<BsdAllocator>(Alloc));
  }
}

void BsdShardSet::exportShard(unsigned Shard, StatsRegistry &Registry,
                              const std::string &Prefix) const {
  Shards[Shard]->exportTelemetry(Registry, Prefix);
}

CasShardSet::CasShardSet(const SharedBackingStore::Config &Backing,
                         CasHeapShard::Config Shard, unsigned Shards)
    : ShardCount(Shards) {
  Store.configure(Backing, Shards);
  this->Shards = std::make_unique<CasHeapShard[]>(Shards);
  for (unsigned S = 0; S < Shards; ++S)
    this->Shards[S].configure(Shard, &Store, S);
}

void CasShardSet::exportShard(unsigned Shard, StatsRegistry &Registry,
                              const std::string &Prefix) const {
  Shards[Shard].exportTelemetry(Registry, Prefix);
}

ArenaShardSet::ArenaShardSet(const SharedBackingStore::Config &Backing,
                             ArenaAllocator::Config Alloc, unsigned Shards) {
  Store.configure(Backing, Shards);
  this->Shards.reserve(Shards);
  for (unsigned S = 0; S < Shards; ++S) {
    // The arena area sits at the lane base; the general (first-fit) heap
    // starts half a lane up so the two regions cannot collide even at the
    // largest serving scales.
    Alloc.ArenaBase = Store.laneBase(S);
    Alloc.General.BaseAddress = Store.laneBase(S) + Backing.LaneBytes / 2;
    this->Shards.push_back(std::make_unique<ArenaAllocator>(Alloc));
  }
}

void ArenaShardSet::exportShard(unsigned Shard, StatsRegistry &Registry,
                                const std::string &Prefix) const {
  Shards[Shard]->exportTelemetry(Registry, Prefix);
}
