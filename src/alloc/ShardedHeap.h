//===- alloc/ShardedHeap.h - Sharded concurrent heap layer ------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent heap layer under the multi-tenant serving engine
/// (sim/TenantMux.h): every allocator family is wrapped in S per-shard
/// sub-heaps over one SharedBackingStore that partitions the simulated
/// address space into per-shard lanes, so shard s of any family owns the
/// address range [laneBase(s), laneBase(s) + LaneBytes) and cross-shard
/// address collisions are impossible by construction.
///
/// Pieces:
///
///   * SharedBackingStore — the lane map plus a process-wide atomic
///     reserved-byte total (the "sbrk" the shards share).
///   * RemoteFreeChannel — a lock-free MPSC Treiber stack per shard for
///     cross-shard frees (a tenant's free can execute on a different
///     worker than its alloc); producers push nodes from per-worker
///     pools, the shard's owner drains at batch boundaries.
///   * CasHeapShard — one shard of the lock-free Kingsley heap: the
///     serving counterpart of BsdAllocator's FreeListKind::Bitmap mode,
///     rebuilt on support/AtomicBitmapFreeList so the intra-shard alloc
///     fast path is a CAS claim and remote frees in eager mode are one
///     fetch_or into the owning shard's bitmap.  Same bucket geometry,
///     same refill rule, same counters — driven serially it produces
///     BsdAllocator's addresses bit for bit (the shadow conformance test
///     relies on this).
///   * *ShardSet — thin per-family containers (first-fit, BSD LIFO,
///     CAS-Kingsley, predicting arena) presenting one shard-indexed
///     interface to the engine's templated replay core.
///
/// Threading contract: allocate()/freeLocal() are owner-only (the worker
/// that owns the shard this round); freeRemoteEager() is any-thread but
/// only the CAS family supports it.  Everything else — export, span
/// sampling, heap totals — is quiescent-only (between rounds or after the
/// run).  Contended counters (CAS retries, drain depths) are accumulated
/// by the *caller* per worker and folded into ContentionCounters, keeping
/// every shard counter single-writer and therefore deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_ALLOC_SHARDEDHEAP_H
#define LIFEPRED_ALLOC_SHARDEDHEAP_H

#include "alloc/ArenaAllocator.h"
#include "alloc/BsdAllocator.h"
#include "alloc/FirstFitAllocator.h"
#include "support/AtomicBitmapFreeList.h"
#include "support/MathExtras.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lifepred {

class StatsRegistry;
class FragmentationProbe;

//===----------------------------------------------------------------------===//
// SharedBackingStore
//===----------------------------------------------------------------------===//

/// The simulated address space the shards share: a contiguous base carved
/// into fixed-size per-shard lanes, plus an atomic total of every byte any
/// shard reserved.  Lane bumps are owner-only; the total is the one
/// cross-shard cell and is fetch_add'ed.
class SharedBackingStore {
public:
  struct Config {
    /// Base of the serving address space.  Above every single-heap base
    /// (1<<40 .. 1<<41) so serving addresses are recognizable in dumps.
    uint64_t BaseAddress = uint64_t(1) << 42;
    /// Address span of one shard's lane.
    uint64_t LaneBytes = uint64_t(1) << 34;
  };

  void configure(const Config &C, unsigned Shards) {
    assert(Shards > 0 && "need at least one shard");
    Cfg = C;
    Lanes.assign(Shards, Lane());
    TotalReserved.store(0, std::memory_order_relaxed);
  }

  unsigned shardCount() const { return static_cast<unsigned>(Lanes.size()); }
  uint64_t laneBytes() const { return Cfg.LaneBytes; }

  uint64_t laneBase(unsigned Shard) const {
    assert(Shard < Lanes.size());
    return Cfg.BaseAddress + uint64_t(Shard) * Cfg.LaneBytes;
  }

  /// Reserves \p Bytes in \p Shard's lane and returns the base address of
  /// the reservation.  Owner-only per shard (plain bump); the shared total
  /// is atomic so concurrent shards account correctly.
  uint64_t reserve(unsigned Shard, uint64_t Bytes) {
    Lane &L = Lanes[Shard];
    assert(L.Used + Bytes <= Cfg.LaneBytes &&
           "shard lane exhausted; raise SharedBackingStore LaneBytes");
    uint64_t Addr = laneBase(Shard) + L.Used;
    L.Used += Bytes;
    TotalReserved.fetch_add(Bytes, std::memory_order_relaxed);
    return Addr;
  }

  uint64_t laneUsed(unsigned Shard) const { return Lanes[Shard].Used; }

  uint64_t reservedBytes() const {
    return TotalReserved.load(std::memory_order_relaxed);
  }

private:
  /// Cache-line-sized so two shards' bumps never share a line.
  struct alignas(64) Lane {
    uint64_t Used = 0;
  };

  Config Cfg;
  std::vector<Lane> Lanes;
  std::atomic<uint64_t> TotalReserved{0};
};

//===----------------------------------------------------------------------===//
// Remote-free channel (MPSC)
//===----------------------------------------------------------------------===//

/// One cross-shard free in flight: the address plus its payload size (the
/// owner needs the size class at application time and must not touch the
/// producer tenant's table).
struct RemoteFreeNode {
  uint64_t Addr = 0;
  uint32_t Size = 0;
  RemoteFreeNode *Next = nullptr;
};

/// Lock-free multi-producer single-consumer channel: a Treiber stack of
/// externally owned nodes.  push() is the producers' CAS loop (the one
/// genuinely contended hot path in channel mode — its retry count is the
/// bench's channel-contention signal); drain() is the owner's single
/// exchange.  Node lifetime is the caller's problem: the serving engine
/// hands out nodes from per-worker pools and recycles them after the
/// post-drain barrier, when no drained list can still be referenced.
class RemoteFreeChannel {
public:
  /// Pushes \p Node (fully filled in by the caller).  Any thread.
  /// Returns the number of lost CAS races.
  unsigned push(RemoteFreeNode *Node) {
    unsigned Retries = 0;
    RemoteFreeNode *Expected = Head.load(std::memory_order_relaxed);
    for (;;) {
      Node->Next = Expected;
      if (Head.compare_exchange_weak(Expected, Node,
                                     std::memory_order_release,
                                     std::memory_order_relaxed))
        return Retries;
      ++Retries;
    }
  }

  /// Detaches and returns the current list (LIFO arrival order), leaving
  /// the channel empty.  Single consumer: the shard's owner at a batch
  /// boundary.  The caller sorts entries by address before applying them,
  /// which erases the racy arrival order — live addresses are unique, so
  /// the sorted order is a deterministic function of the round's frees.
  RemoteFreeNode *drain() {
    return Head.exchange(nullptr, std::memory_order_acquire);
  }

  bool emptyApprox() const {
    return Head.load(std::memory_order_relaxed) == nullptr;
  }

private:
  alignas(64) std::atomic<RemoteFreeNode *> Head{nullptr};
};

/// Per-worker bump pool of RemoteFreeNodes.  acquire() never recycles
/// within a round; reset() (called by the owning worker after the
/// post-drain barrier) makes every node available again without freeing
/// the chunks, so steady-state rounds allocate nothing.
class RemoteNodePool {
public:
  RemoteFreeNode *acquire() {
    size_t Chunk = Used / ChunkNodes;
    if (Chunk == Chunks.size())
      Chunks.push_back(std::make_unique<RemoteFreeNode[]>(ChunkNodes));
    return &Chunks[Chunk][Used++ % ChunkNodes];
  }

  /// Recycles every node.  Only safe once no drained list references them
  /// (after the engine's post-drain barrier).
  void reset() { Used = 0; }

  size_t capacity() const { return Chunks.size() * ChunkNodes; }

private:
  static constexpr size_t ChunkNodes = 4096;
  std::vector<std::unique_ptr<RemoteFreeNode[]>> Chunks;
  size_t Used = 0;
};

//===----------------------------------------------------------------------===//
// Contention counters
//===----------------------------------------------------------------------===//

/// Counters whose values depend on thread interleaving: CAS retry counts
/// and the deepest remote-free drain observed.  These are *timing-class*
/// telemetry — reported for observability, never gated — so they live
/// outside the deterministic StatsRegistry and are exported under
/// "contention" key names that ReportDiff ignores by default.
struct ContentionCounters {
  uint64_t BitmapCasRetries = 0;  ///< Lost pop() claims (eager mode).
  uint64_t ChannelCasRetries = 0; ///< Lost remote-free channel pushes.
  uint64_t RemoteFreePushes = 0;  ///< Channel pushes attempted.
  uint64_t MaxDrainDepth = 0;     ///< Deepest single channel drain.

  void merge(const ContentionCounters &Other) {
    BitmapCasRetries += Other.BitmapCasRetries;
    ChannelCasRetries += Other.ChannelCasRetries;
    RemoteFreePushes += Other.RemoteFreePushes;
    raisePeak(MaxDrainDepth, Other.MaxDrainDepth);
  }
};

//===----------------------------------------------------------------------===//
// CasHeapShard — one shard of the lock-free Kingsley heap
//===----------------------------------------------------------------------===//

/// One shard of the CAS-bitmap Kingsley heap.  Semantically identical to
/// BsdAllocator in FreeListKind::Bitmap mode with BaseAddress = the
/// shard's lane base: same bucketFor rule, same
/// max(BlockBytes, PageBytes) extent carve at the bump end, same counter
/// definitions.  The differences are mechanical: free lists are
/// AtomicBitmapFreeLists (CAS pop, fetch_or push), the heap end bump goes
/// through the SharedBackingStore lane, there is no internal live map
/// (the serving engine's tenant tables carry sizes), and Frees/LiveBytes
/// are relaxed atomics so eager-mode remote frees can maintain them.
class CasHeapShard {
public:
  struct Config {
    uint64_t PageBytes = 8192;   ///< Refill granularity.
    uint64_t HeaderBytes = 8;    ///< Per-block bucket tag.
    uint64_t MinBlockBytes = 16; ///< Smallest size class.
    /// Capacity bound per size class (AtomicBitmapFreeList publishes its
    /// word array once; see that header).
    uint64_t MaxExtentsPerClass = 4096;
  };

  /// Mirrors BsdAllocator::Counters; BucketBits is the same shift-loop
  /// cost proxy.  Frees is atomic because eager remote frees bump it.
  struct Counters {
    uint64_t Allocs = 0;
    uint64_t PageRefills = 0;
    uint64_t BucketBits = 0;
    std::atomic<uint64_t> Frees{0};
  };

  static constexpr unsigned BucketCount = 40;

  CasHeapShard() = default;
  CasHeapShard(const CasHeapShard &) = delete;
  CasHeapShard &operator=(const CasHeapShard &) = delete;

  /// Binds the shard to \p Store lane \p Shard.  Call once, before any
  /// concurrent access.
  void configure(const Config &C, SharedBackingStore *Store, unsigned Shard);

  /// The size class serving \p Size — BsdAllocator::bucketFor's rule.
  unsigned bucketFor(uint32_t Size) const {
    uint64_t Need = Size + Cfg.HeaderBytes;
    if (Need < Cfg.MinBlockBytes)
      Need = Cfg.MinBlockBytes;
    return log2Ceil(Need);
  }

  /// Allocates a block.  Owner thread only.  \p CasRetries accumulates
  /// lost bitmap CAS claims (nonzero only when eager remote frees are
  /// racing this shard's pops).
  uint64_t allocate(uint32_t Size, uint64_t &CasRetries);

  /// Returns a block allocated from *this* shard.  Owner thread only.
  void freeLocal(uint64_t Addr, uint32_t Size) { freeCommon(Addr, Size); }

  /// Returns a block from any thread (eager cross-shard free): the bitmap
  /// push is a fetch_or, the counters are atomic.  Placement observed by
  /// the owner becomes interleaving-dependent; totals stay exact.
  void freeRemote(uint64_t Addr, uint32_t Size) { freeCommon(Addr, Size); }

  uint64_t heapBytes() const { return HeapEnd - LaneBase; }
  uint64_t maxHeapBytes() const { return MaxHeap; }
  uint64_t liveBytes() const {
    return LiveBytes.load(std::memory_order_relaxed);
  }
  uint64_t allocCount() const { return Stats.Allocs; }
  uint64_t freeCount() const {
    return Stats.Frees.load(std::memory_order_relaxed);
  }
  uint64_t freeBlockCount() const;

  /// Exports BsdAllocator-compatible keys ("<Prefix>allocs",
  /// "<Prefix>page_refills", "<Prefix>heap_bytes", ...).  Quiescent only.
  void exportTelemetry(StatsRegistry &Registry,
                       const std::string &Prefix) const;

  /// Feeds one fragmentation sample at \p Clock: bulk per-class free and
  /// live span counts (the batched-BSD convention — spans at the rounded
  /// block size).  Quiescent only.
  void sampleFragmentation(uint64_t Clock, FragmentationProbe &Probe) const;

private:
  void freeCommon(uint64_t Addr, uint32_t Size) {
    Stats.Frees.fetch_add(1, std::memory_order_relaxed);
    LiveBytes.fetch_sub(Size, std::memory_order_relaxed);
    Classes[bucketFor(Size)].push(Addr);
  }

  Config Cfg;
  SharedBackingStore *Store = nullptr;
  unsigned Shard = 0;
  uint64_t LaneBase = 0;
  uint64_t HeapEnd = 0; ///< Owner-only bump, mirrors the lane's Used.
  uint64_t MaxHeap = 0;
  Counters Stats;
  std::atomic<uint64_t> LiveBytes{0};
  std::unique_ptr<AtomicBitmapFreeList[]> Classes;
};

//===----------------------------------------------------------------------===//
// Per-family shard sets
//===----------------------------------------------------------------------===//

/// The shard-set interface the serving engine's templated replay core
/// compiles against (no virtual dispatch — each family instantiates the
/// core):
///
///   static constexpr bool SupportsEagerRemoteFree;
///   uint64_t allocate(unsigned Shard, uint32_t Size, bool PredictedShort,
///                     uint64_t &CasRetries);          // owner-only
///   void freeLocal(unsigned Shard, uint64_t Addr, uint32_t Size);
///   void freeRemoteEager(unsigned Shard, uint64_t Addr, uint32_t Size);
///   void exportShard(unsigned Shard, StatsRegistry &, const std::string &);
///   uint64_t shardHeapBytes(unsigned Shard) const;
///
/// Fragmentation sampling is not part of the interface: the AllocatorSim-
/// backed families expose shardSim(Shard) so the engine reuses the shared
/// shard-aware span walk (sim/SimTelemetry's probeHeapSpans); the CAS
/// family samples in bulk per size class via shard(Shard)'s
/// sampleFragmentation (its free lists are bitmap populations, not span
/// lists, so per-block iteration would be O(blocks) for no extra fidelity).

/// First-fit family: one FirstFitAllocator per shard, based in its lane.
class FirstFitShardSet {
public:
  static constexpr bool SupportsEagerRemoteFree = false;

  FirstFitShardSet(const SharedBackingStore::Config &Backing,
                   FirstFitAllocator::Config Alloc, unsigned Shards);

  uint64_t allocate(unsigned Shard, uint32_t Size, bool /*PredictedShort*/,
                    uint64_t & /*CasRetries*/) {
    return Shards[Shard]->allocate(Size);
  }
  void freeLocal(unsigned Shard, uint64_t Addr, uint32_t /*Size*/) {
    Shards[Shard]->free(Addr);
  }
  void freeRemoteEager(unsigned, uint64_t, uint32_t) {
    assert(false && "first-fit shards have no eager remote-free path");
  }
  void exportShard(unsigned Shard, StatsRegistry &Registry,
                   const std::string &Prefix) const;
  uint64_t shardHeapBytes(unsigned Shard) const {
    return Shards[Shard]->heapBytes();
  }
  const AllocatorSim &shardSim(unsigned Shard) const { return *Shards[Shard]; }
  const SharedBackingStore &backing() const { return Store; }

private:
  SharedBackingStore Store;
  std::vector<std::unique_ptr<FirstFitAllocator>> Shards;
};

/// BSD/Kingsley family: one LIFO BsdAllocator per shard.  The serial
/// comparison row for the CAS family.
class BsdShardSet {
public:
  static constexpr bool SupportsEagerRemoteFree = false;

  BsdShardSet(const SharedBackingStore::Config &Backing,
              BsdAllocator::Config Alloc, unsigned Shards);

  uint64_t allocate(unsigned Shard, uint32_t Size, bool /*PredictedShort*/,
                    uint64_t & /*CasRetries*/) {
    return Shards[Shard]->allocate(Size);
  }
  void freeLocal(unsigned Shard, uint64_t Addr, uint32_t /*Size*/) {
    Shards[Shard]->free(Addr);
  }
  void freeRemoteEager(unsigned, uint64_t, uint32_t) {
    assert(false && "LIFO BSD shards have no eager remote-free path");
  }
  void exportShard(unsigned Shard, StatsRegistry &Registry,
                   const std::string &Prefix) const;
  uint64_t shardHeapBytes(unsigned Shard) const {
    return Shards[Shard]->heapBytes();
  }
  const AllocatorSim &shardSim(unsigned Shard) const { return *Shards[Shard]; }
  const SharedBackingStore &backing() const { return Store; }

private:
  SharedBackingStore Store;
  std::vector<std::unique_ptr<BsdAllocator>> Shards;
};

/// Lock-free CAS-Kingsley family: CasHeapShards over one backing store.
/// The only family with an eager remote-free fast path.
class CasShardSet {
public:
  static constexpr bool SupportsEagerRemoteFree = true;

  CasShardSet(const SharedBackingStore::Config &Backing,
              CasHeapShard::Config Shard, unsigned Shards);

  uint64_t allocate(unsigned Shard, uint32_t Size, bool /*PredictedShort*/,
                    uint64_t &CasRetries) {
    return Shards[Shard].allocate(Size, CasRetries);
  }
  void freeLocal(unsigned Shard, uint64_t Addr, uint32_t Size) {
    Shards[Shard].freeLocal(Addr, Size);
  }
  void freeRemoteEager(unsigned Shard, uint64_t Addr, uint32_t Size) {
    Shards[Shard].freeRemote(Addr, Size);
  }
  void exportShard(unsigned Shard, StatsRegistry &Registry,
                   const std::string &Prefix) const;
  uint64_t shardHeapBytes(unsigned Shard) const {
    return Shards[Shard].heapBytes();
  }
  const SharedBackingStore &backing() const { return Store; }
  const CasHeapShard &shard(unsigned Shard) const { return Shards[Shard]; }

private:
  SharedBackingStore Store;
  std::unique_ptr<CasHeapShard[]> Shards;
  unsigned ShardCount = 0;
};

/// Predicting-arena family: one ArenaAllocator per shard, arena area and
/// general heap both inside the shard's lane.  Predictions come from each
/// tenant's own trained site database (resolved to per-record bits by the
/// engine) — the paper's allocator, now under multi-tenant contention.
class ArenaShardSet {
public:
  static constexpr bool SupportsEagerRemoteFree = false;

  ArenaShardSet(const SharedBackingStore::Config &Backing,
                ArenaAllocator::Config Alloc, unsigned Shards);

  uint64_t allocate(unsigned Shard, uint32_t Size, bool PredictedShort,
                    uint64_t & /*CasRetries*/) {
    return Shards[Shard]->allocate(Size, PredictedShort);
  }
  void freeLocal(unsigned Shard, uint64_t Addr, uint32_t /*Size*/) {
    Shards[Shard]->free(Addr);
  }
  void freeRemoteEager(unsigned, uint64_t, uint32_t) {
    assert(false && "arena shards have no eager remote-free path");
  }
  void exportShard(unsigned Shard, StatsRegistry &Registry,
                   const std::string &Prefix) const;
  uint64_t shardHeapBytes(unsigned Shard) const {
    return Shards[Shard]->heapBytes();
  }
  const AllocatorSim &shardSim(unsigned Shard) const { return *Shards[Shard]; }
  const SharedBackingStore &backing() const { return Store; }

private:
  SharedBackingStore Store;
  std::vector<std::unique_ptr<ArenaAllocator>> Shards;
};

} // namespace lifepred

#endif // LIFEPRED_ALLOC_SHARDEDHEAP_H
