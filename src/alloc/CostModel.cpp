//===- alloc/CostModel.cpp - Instruction cost model ------------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "alloc/CostModel.h"

using namespace lifepred;

namespace {

double perOp(double TotalInstr, uint64_t Ops) {
  return Ops == 0 ? 0.0 : TotalInstr / static_cast<double>(Ops);
}

} // namespace

InstrPerOp CostModel::firstFit(const FirstFitAllocator::Counters &C) const {
  // Bin probes (BestFitBins only) inspect a block just as a list scan step
  // does, so both are charged at FirstFitSearchStep.
  double AllocInstr = static_cast<double>(C.Allocs) * FirstFitAllocBase +
                      static_cast<double>(C.SearchSteps + C.BinProbes) *
                          FirstFitSearchStep +
                      static_cast<double>(C.Splits) * FirstFitSplit +
                      static_cast<double>(C.Grows) * FirstFitGrow;
  double FreeInstr = static_cast<double>(C.Frees) * FirstFitFreeBase +
                     static_cast<double>(C.Coalesces) * FirstFitCoalesce;
  return {perOp(AllocInstr, C.Allocs), perOp(FreeInstr, C.Frees)};
}

InstrPerOp CostModel::bsd(const BsdAllocator::Counters &C) const {
  double AllocInstr = static_cast<double>(C.Allocs) * BsdAllocBase +
                      static_cast<double>(C.BucketBits) * BsdBucketBit +
                      static_cast<double>(C.PageRefills) * BsdRefill;
  double FreeInstr = static_cast<double>(C.Frees) * BsdFreeCost;
  return {perOp(AllocInstr, C.Allocs), perOp(FreeInstr, C.Frees)};
}

InstrPerOp CostModel::arena(const ArenaAllocator::Counters &C,
                            const FirstFitAllocator::Counters &GeneralC,
                            bool UseCce, double CallsPerAlloc) const {
  uint64_t Allocs = C.ArenaAllocs + C.GeneralAllocs;
  uint64_t Frees = C.ArenaFrees + C.GeneralFrees;

  double PredictPerAlloc =
      UseCce ? PredictCceBase + CcePerCall * CallsPerAlloc : PredictLen4;

  // Every allocation pays the prediction check; arena hits pay the bump;
  // scans and resets are charged as they occurred; general allocations pay
  // the embedded first-fit costs (whose counters track only the general
  // heap's operations).
  double GeneralAllocInstr =
      static_cast<double>(GeneralC.Allocs) * FirstFitAllocBase +
      static_cast<double>(GeneralC.SearchSteps) * FirstFitSearchStep +
      static_cast<double>(GeneralC.Splits) * FirstFitSplit +
      static_cast<double>(GeneralC.Grows) * FirstFitGrow;
  double AllocInstr = static_cast<double>(Allocs) * PredictPerAlloc +
                      static_cast<double>(C.ArenaAllocs) * ArenaBump +
                      static_cast<double>(C.ScanSteps) * ArenaScanStep +
                      static_cast<double>(C.Resets) * ArenaReset +
                      GeneralAllocInstr;

  double GeneralFreeInstr =
      static_cast<double>(GeneralC.Frees) * FirstFitFreeBase +
      static_cast<double>(GeneralC.Coalesces) * FirstFitCoalesce;
  double FreeInstr = static_cast<double>(C.ArenaFrees) * ArenaFreeCost +
                     static_cast<double>(C.GeneralFrees) * ArenaRangeCheck +
                     GeneralFreeInstr;

  return {perOp(AllocInstr, Allocs), perOp(FreeInstr, Frees)};
}
