//===- core/Profiler.cpp - Training-run profiling --------------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"

#include <vector>

using namespace lifepred;

Profile lifepred::profileTrace(const AllocationTrace &Trace,
                               const SiteKeyPolicy &Policy) {
  Profile Result;
  Result.NonHeapRefs = Trace.nonHeapRefs();

  // Site keys depend only on (chain index, size); precompute the chain
  // part once per distinct chain rather than per object.
  std::vector<uint64_t> ChainParts(Trace.chainCount());
  for (uint32_t I = 0; I < Trace.chainCount(); ++I)
    ChainParts[I] = chainKeyPart(Policy, Trace.chain(I));

  uint64_t FinalClock = Trace.totalBytes();
  uint64_t Clock = 0;
  for (const AllocRecord &Record : Trace.records()) {
    Clock += Record.Size;
    uint64_t Lifetime = effectiveLifetime(Record, Clock, FinalClock);
    SiteKey Key =
        siteKeyForRecord(Policy, ChainParts[Record.ChainIndex], Record);
    Result.Sites[Key].add(Record.Size, Lifetime, Record.Refs);
    ++Result.TotalObjects;
    Result.TotalBytes += Record.Size;
    Result.TotalHeapRefs += Record.Refs;
  }
  return Result;
}
