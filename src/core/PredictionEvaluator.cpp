//===- core/PredictionEvaluator.cpp - Prediction accuracy metrics ----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/PredictionEvaluator.h"

#include "core/Profiler.h"

#include <unordered_set>
#include <vector>

using namespace lifepred;

PredictionReport lifepred::evaluatePrediction(const AllocationTrace &Trace,
                                              const SiteDatabase &DB) {
  PredictionReport Report;
  Report.NonHeapRefs = Trace.nonHeapRefs();

  const SiteKeyPolicy &Policy = DB.policy();
  std::vector<uint64_t> ChainParts(Trace.chainCount());
  for (uint32_t I = 0; I < Trace.chainCount(); ++I)
    ChainParts[I] = chainKeyPart(Policy, Trace.chain(I));

  std::unordered_set<SiteKey> UsedSites;
  uint64_t Threshold = DB.threshold();
  uint64_t FinalClock = Trace.totalBytes();
  uint64_t Clock = 0;
  for (const AllocRecord &Record : Trace.records()) {
    Clock += Record.Size;
    ++Report.TotalObjects;
    Report.TotalBytes += Record.Size;
    Report.TotalHeapRefs += Record.Refs;

    uint64_t Lifetime = effectiveLifetime(Record, Clock, FinalClock);
    bool ActuallyShort = Lifetime < Threshold;
    if (ActuallyShort)
      Report.ActualShortBytes += Record.Size;

    SiteKey Key =
        siteKeyForRecord(Policy, ChainParts[Record.ChainIndex], Record);
    if (!DB.contains(Key))
      continue;
    UsedSites.insert(Key);
    ++Report.PredictedObjects;
    Report.PredictedRefs += Record.Refs;
    if (ActuallyShort)
      Report.PredictedShortBytes += Record.Size;
    else
      Report.ErrorBytes += Record.Size;
  }
  Report.SitesUsed = UsedSites.size();
  return Report;
}
