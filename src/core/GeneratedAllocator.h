//===- core/GeneratedAllocator.h - Emit a linkable predictor ----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a trained site database as a self-contained C++ header, closing
/// the paper's loop: "this set of sites is stored in a database that is
/// incorporated into an allocation system that is then linked to the
/// program."  The generated header defines a sorted constexpr key table
/// and a branch-free binary-search predicate, so the optimized build
/// carries no file I/O or hash-table initialization — the profile *is*
/// the code.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_CORE_GENERATEDALLOCATOR_H
#define LIFEPRED_CORE_GENERATEDALLOCATOR_H

#include "core/SiteDatabase.h"

#include <iosfwd>
#include <string>

namespace lifepred {

/// Options for header emission.
struct EmitHeaderOptions {
  /// Namespace the generated symbols live in.
  std::string Namespace = "lifepred_profile";
  /// Include-guard macro.
  std::string Guard = "LIFEPRED_GENERATED_PROFILE_H";
};

/// Writes \p DB to \p OS as a compilable header defining:
///   constexpr uint64_t SiteKeys[];         // sorted
///   constexpr uint64_t ShortLivedThreshold;
///   bool isPredictedShortLived(uint64_t SiteKey);
void emitSiteDatabaseHeader(const SiteDatabase &DB, std::ostream &OS,
                            const EmitHeaderOptions &Options = {});

} // namespace lifepred

#endif // LIFEPRED_CORE_GENERATEDALLOCATOR_H
