//===- core/SiteDatabase.cpp - Predicted-short-lived site set --------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/SiteDatabase.h"

#include "support/Assert.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

using namespace lifepred;

namespace {

const char *modeName(SiteKeyMode Mode) {
  switch (Mode) {
  case SiteKeyMode::CompleteChain:
    return "complete";
  case SiteKeyMode::LastN:
    return "lastn";
  case SiteKeyMode::SizeOnly:
    return "sizeonly";
  case SiteKeyMode::Encrypted:
    return "encrypted";
  case SiteKeyMode::TypeOnly:
    return "typeonly";
  case SiteKeyMode::TypeAndSize:
    return "typesize";
  }
  LIFEPRED_UNREACHABLE("unknown site-key mode");
}

std::optional<SiteKeyMode> parseMode(const std::string &Name) {
  if (Name == "complete")
    return SiteKeyMode::CompleteChain;
  if (Name == "lastn")
    return SiteKeyMode::LastN;
  if (Name == "sizeonly")
    return SiteKeyMode::SizeOnly;
  if (Name == "encrypted")
    return SiteKeyMode::Encrypted;
  if (Name == "typeonly")
    return SiteKeyMode::TypeOnly;
  if (Name == "typesize")
    return SiteKeyMode::TypeAndSize;
  return std::nullopt;
}

} // namespace

void SiteDatabase::save(std::ostream &OS) const {
  OS << "sitedb v1\n";
  OS << "policy " << modeName(Policy.Mode) << ' ' << Policy.Length << ' '
     << Policy.SizeRounding << '\n';
  OS << "threshold " << Threshold << '\n';
  for (SiteKey Key : Keys)
    OS << "site " << Key << '\n';
}

std::optional<SiteDatabase> SiteDatabase::load(std::istream &IS) {
  std::string Line;
  if (!std::getline(IS, Line) || Line != "sitedb v1")
    return std::nullopt;

  SiteDatabase DB;
  while (std::getline(IS, Line)) {
    if (Line.empty())
      continue;
    std::istringstream LS(Line);
    std::string Keyword;
    LS >> Keyword;
    if (Keyword == "policy") {
      std::string ModeText;
      if (!(LS >> ModeText >> DB.Policy.Length >> DB.Policy.SizeRounding))
        return std::nullopt;
      auto Mode = parseMode(ModeText);
      if (!Mode)
        return std::nullopt;
      DB.Policy.Mode = *Mode;
    } else if (Keyword == "threshold") {
      if (!(LS >> DB.Threshold))
        return std::nullopt;
    } else if (Keyword == "site") {
      SiteKey Key = 0;
      if (!(LS >> Key))
        return std::nullopt;
      DB.Keys.insert(Key);
    } else {
      return std::nullopt;
    }
  }
  return DB;
}
