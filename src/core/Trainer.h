//===- core/Trainer.h - Site selection from a profile -----------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a training profile into a predicted-short-lived site database by
/// applying the paper's selection rule: a site is selected iff *all* of its
/// training objects died before the short-lived threshold (32 KB by
/// default).  The rule is deliberately conservative because incorrect
/// prediction is expensive — an erroneously predicted long-lived object
/// ties up an entire arena.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_CORE_TRAINER_H
#define LIFEPRED_CORE_TRAINER_H

#include "core/Profiler.h"
#include "core/SiteDatabase.h"

#include <cstdint>

namespace lifepred {

/// The paper's default short-lived threshold: 32 kilobytes of allocation.
inline constexpr uint64_t DefaultShortLivedThreshold = 32 * 1024;

/// Training configuration.
struct TrainingOptions {
  /// An object is short-lived if it dies before this many bytes are
  /// allocated after its birth.
  uint64_t Threshold = DefaultShortLivedThreshold;

  /// Minimum objects a site must have allocated in training to be
  /// considered (0/1 = the paper's behaviour: every observed site counts).
  uint64_t MinObjects = 1;
};

/// Selects the all-short-lived sites of \p Profile into a database trained
/// under \p Policy.
SiteDatabase trainDatabase(const Profile &Profile,
                           const SiteKeyPolicy &Policy,
                           const TrainingOptions &Options = {});

} // namespace lifepred

#endif // LIFEPRED_CORE_TRAINER_H
