//===- core/SiteTable.h - Per-site lifetime statistics ----------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mapping from allocation sites to lifetime statistics built during a
/// training run: object/byte/reference counts, the exact maximum lifetime
/// (the training rule needs it exactly), and the P² quantile histogram of
/// the site's lifetime distribution (the paper's section 4.1 data).
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_CORE_SITETABLE_H
#define LIFEPRED_CORE_SITETABLE_H

#include "callchain/SiteKey.h"
#include "quantile/QuantileHistogram.h"

#include <cstdint>
#include <unordered_map>

namespace lifepred {

/// Statistics for a single allocation site.
struct SiteStats {
  uint64_t Objects = 0;      ///< Objects allocated at this site.
  uint64_t Bytes = 0;        ///< Bytes allocated at this site.
  uint64_t Refs = 0;         ///< Heap references to this site's objects.
  uint64_t MaxLifetime = 0;  ///< Exact maximum observed lifetime.
  QuantileHistogram Lifetimes{8}; ///< Streaming lifetime histogram.

  /// Records one object.
  void add(uint32_t Size, uint64_t Lifetime, uint32_t ObjectRefs) {
    ++Objects;
    Bytes += Size;
    Refs += ObjectRefs;
    if (Lifetime > MaxLifetime)
      MaxLifetime = Lifetime;
    Lifetimes.add(static_cast<double>(Lifetime));
  }

  /// The paper's selection rule: every object died under \p Threshold.
  bool allShortLived(uint64_t Threshold) const {
    return Objects > 0 && MaxLifetime < Threshold;
  }
};

/// Site-keyed statistics table.
using SiteTable = std::unordered_map<SiteKey, SiteStats>;

} // namespace lifepred

#endif // LIFEPRED_CORE_SITETABLE_H
