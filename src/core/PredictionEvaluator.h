//===- core/PredictionEvaluator.h - Prediction accuracy metrics -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates a trained site database against a (test or training) trace,
/// producing the statistics of the paper's Tables 4-6: the fraction of
/// bytes correctly predicted short-lived, the erroneously predicted bytes,
/// the number of database sites actually used, and the fraction of all
/// memory references made to predicted objects ("New Ref").
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_CORE_PREDICTIONEVALUATOR_H
#define LIFEPRED_CORE_PREDICTIONEVALUATOR_H

#include "core/SiteDatabase.h"
#include "trace/AllocationTrace.h"

#include <cstdint>

namespace lifepred {

/// Accuracy of one database evaluated over one trace.
struct PredictionReport {
  uint64_t TotalObjects = 0;
  uint64_t TotalBytes = 0;

  /// Bytes of objects that really were short-lived (died before the
  /// database threshold).
  uint64_t ActualShortBytes = 0;

  /// Bytes predicted short-lived that really were ("Predicted" columns).
  uint64_t PredictedShortBytes = 0;

  /// Bytes predicted short-lived that were long-lived ("Error Bytes").
  uint64_t ErrorBytes = 0;

  /// Objects predicted short-lived (right or wrong).
  uint64_t PredictedObjects = 0;

  /// Distinct database sites observed in the trace ("Sites Used").
  uint64_t SitesUsed = 0;

  /// References to predicted objects / all references ("New Ref").
  uint64_t PredictedRefs = 0;
  uint64_t TotalHeapRefs = 0;
  uint64_t NonHeapRefs = 0;

  double actualShortPercent() const {
    return pct(ActualShortBytes, TotalBytes);
  }
  double predictedShortPercent() const {
    return pct(PredictedShortBytes, TotalBytes);
  }
  double errorPercent() const { return pct(ErrorBytes, TotalBytes); }
  double newRefPercent() const {
    return pct(PredictedRefs, TotalHeapRefs + NonHeapRefs);
  }

private:
  static double pct(uint64_t Num, uint64_t Den) {
    return Den == 0 ? 0.0
                    : 100.0 * static_cast<double>(Num) /
                          static_cast<double>(Den);
  }
};

/// Evaluates \p DB over \p Trace.  Objects are judged short-lived by their
/// effective lifetime (deaths past the trace end clamp to exit).
PredictionReport evaluatePrediction(const AllocationTrace &Trace,
                                    const SiteDatabase &DB);

} // namespace lifepred

#endif // LIFEPRED_CORE_PREDICTIONEVALUATOR_H
