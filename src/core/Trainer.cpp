//===- core/Trainer.cpp - Site selection from a profile --------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Trainer.h"

using namespace lifepred;

SiteDatabase lifepred::trainDatabase(const Profile &Profile,
                                     const SiteKeyPolicy &Policy,
                                     const TrainingOptions &Options) {
  SiteDatabase DB(Policy, Options.Threshold);
  uint64_t MinObjects = Options.MinObjects == 0 ? 1 : Options.MinObjects;
  for (const auto &[Key, Stats] : Profile.Sites) {
    if (Stats.Objects < MinObjects)
      continue;
    if (Stats.allShortLived(Options.Threshold))
      DB.insert(Key);
  }
  return DB;
}
