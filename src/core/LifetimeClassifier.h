//===- core/LifetimeClassifier.h - Multi-class lifetime prediction -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-class lifetime prediction: instead of the paper's binary
/// short-lived / long-lived split, sites are classified into lifetime
/// bands by a ladder of thresholds (e.g. < 4 KB and < 32 KB), and the
/// allocator keeps one arena area per band.  This generalizes the paper's
/// algorithm toward the generational segregation its related-work section
/// discusses: very-short-lived objects recycle in a tiny, cache-hot area
/// while medium-lived ones stop diluting it.
///
/// A site's class is the *smallest* threshold below which all of its
/// training objects died; sites exceeding every threshold are unclassified
/// (allocated in the general heap), exactly like the paper's unpredicted
/// sites.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_CORE_LIFETIMECLASSIFIER_H
#define LIFEPRED_CORE_LIFETIMECLASSIFIER_H

#include "core/Profiler.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lifepred {

/// Index of a lifetime band (0 = shortest-lived band).
using LifetimeClass = uint8_t;

/// Class value for sites that fit no band.
inline constexpr LifetimeClass UnclassifiedLifetime = 0xff;

/// A trained multi-class predictor: site key -> lifetime band.
class ClassDatabase {
public:
  ClassDatabase() = default;
  ClassDatabase(SiteKeyPolicy Policy, std::vector<uint64_t> Thresholds)
      : Policy(Policy), Thresholds(std::move(Thresholds)) {}

  /// Assigns \p Key to band \p Class.
  void insert(SiteKey Key, LifetimeClass Class) { Classes[Key] = Class; }

  /// The band of \p Key, or UnclassifiedLifetime if unknown.
  LifetimeClass classify(SiteKey Key) const {
    auto It = Classes.find(Key);
    return It == Classes.end() ? UnclassifiedLifetime : It->second;
  }

  /// Number of classified sites.
  size_t size() const { return Classes.size(); }

  /// Number of sites in band \p Class.
  size_t sitesInClass(LifetimeClass Class) const;

  const SiteKeyPolicy &policy() const { return Policy; }
  const std::vector<uint64_t> &thresholds() const { return Thresholds; }

private:
  std::unordered_map<SiteKey, LifetimeClass> Classes;
  SiteKeyPolicy Policy;
  std::vector<uint64_t> Thresholds;
};

/// Trains a multi-class database from \p Profile: each site is placed in
/// the band of the smallest threshold (of the sorted \p Thresholds) that
/// bounds all of its training lifetimes.
ClassDatabase trainClassDatabase(const Profile &Profile,
                                 const SiteKeyPolicy &Policy,
                                 std::vector<uint64_t> Thresholds);

} // namespace lifepred

#endif // LIFEPRED_CORE_LIFETIMECLASSIFIER_H
