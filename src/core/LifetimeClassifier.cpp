//===- core/LifetimeClassifier.cpp - Multi-class lifetime prediction -------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/LifetimeClassifier.h"

#include <algorithm>
#include <cassert>

using namespace lifepred;

size_t ClassDatabase::sitesInClass(LifetimeClass Class) const {
  size_t Count = 0;
  for (const auto &[Key, C] : Classes)
    if (C == Class)
      ++Count;
  return Count;
}

ClassDatabase lifepred::trainClassDatabase(const Profile &Profile,
                                           const SiteKeyPolicy &Policy,
                                           std::vector<uint64_t> Thresholds) {
  assert(!Thresholds.empty() && "need at least one lifetime band");
  std::sort(Thresholds.begin(), Thresholds.end());
  ClassDatabase DB(Policy, Thresholds);
  for (const auto &[Key, Stats] : Profile.Sites) {
    for (size_t Band = 0; Band < Thresholds.size(); ++Band) {
      if (Stats.allShortLived(Thresholds[Band])) {
        DB.insert(Key, static_cast<LifetimeClass>(Band));
        break;
      }
    }
  }
  return DB;
}
