//===- core/ThresholdSelector.h - Automatic threshold choice ----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automatic selection of the short-lived threshold.  The paper fixes
/// 32 KB by hand and notes that "in general, this value would be
/// determined automatically by the tool that analyses the program
/// behavior" — this is that tool.
///
/// The tradeoff (paper section 4.1): a larger threshold qualifies more
/// sites (more predicted bytes) but needs a proportionally larger arena
/// area (the paper sizes the area at twice the threshold), costing memory
/// and diluting locality.  The selector sweeps candidate thresholds,
/// scores each by predicted-byte coverage penalized by the implied arena
/// area, and returns the knee: the smallest threshold within a
/// configurable fraction of the best achievable coverage.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_CORE_THRESHOLDSELECTOR_H
#define LIFEPRED_CORE_THRESHOLDSELECTOR_H

#include "core/Profiler.h"

#include <cstdint>
#include <vector>

namespace lifepred {

/// One candidate threshold's evaluation.
struct ThresholdCandidate {
  uint64_t Threshold = 0;       ///< Bytes.
  uint64_t QualifyingSites = 0; ///< Sites whose objects all die under it.
  uint64_t PredictedBytes = 0;  ///< Bytes those sites allocated in training.
  double CoveragePercent = 0;   ///< PredictedBytes / total bytes.
  uint64_t ImpliedArenaBytes = 0; ///< 2x threshold (the paper's sizing).
};

/// Selector configuration.
struct ThresholdSelectorOptions {
  /// Candidate thresholds; empty = powers of two from 2 KB to 512 KB.
  std::vector<uint64_t> Candidates;

  /// Accept the smallest threshold whose coverage reaches this fraction of
  /// the best candidate's coverage (the knee criterion).
  double KneeFraction = 0.95;

  /// Hard cap on the implied arena area; candidates above it are skipped
  /// (0 = no cap).
  uint64_t MaxArenaBytes = 0;
};

/// Result: the chosen threshold plus the full candidate table.
struct ThresholdSelection {
  uint64_t Threshold = 0;
  std::vector<ThresholdCandidate> Candidates;
};

/// Sweeps thresholds over \p Profile and picks the knee.  The profile must
/// have been built with the complete-chain (or any fixed) policy; only the
/// per-site maximum lifetimes and byte counts are consulted, so one
/// profiling pass serves every candidate.
ThresholdSelection selectThreshold(
    const Profile &Profile, const ThresholdSelectorOptions &Options = {});

} // namespace lifepred

#endif // LIFEPRED_CORE_THRESHOLDSELECTOR_H
