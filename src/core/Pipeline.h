//===- core/Pipeline.h - One-call train-and-evaluate API --------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience API tying the pipeline together: profile a training trace,
/// select sites, and evaluate the resulting database against a test trace.
/// Self prediction passes the same trace twice; true prediction passes
/// traces from different inputs.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_CORE_PIPELINE_H
#define LIFEPRED_CORE_PIPELINE_H

#include "core/PredictionEvaluator.h"
#include "core/Trainer.h"

namespace lifepred {

/// Everything a train+evaluate cycle produces.
struct PipelineResult {
  Profile TrainingProfile;    ///< Per-site statistics of the training run.
  SiteDatabase Database;      ///< Selected short-lived sites.
  PredictionReport Report;    ///< Accuracy over the evaluation trace.
};

/// Profiles \p Train under \p Policy, trains a database with \p Options,
/// and evaluates it over \p Test.
PipelineResult trainAndEvaluate(const AllocationTrace &Train,
                                const AllocationTrace &Test,
                                const SiteKeyPolicy &Policy,
                                const TrainingOptions &Options = {});

} // namespace lifepred

#endif // LIFEPRED_CORE_PIPELINE_H
