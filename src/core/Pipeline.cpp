//===- core/Pipeline.cpp - One-call train-and-evaluate API -----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

using namespace lifepred;

PipelineResult lifepred::trainAndEvaluate(const AllocationTrace &Train,
                                          const AllocationTrace &Test,
                                          const SiteKeyPolicy &Policy,
                                          const TrainingOptions &Options) {
  PipelineResult Result;
  Result.TrainingProfile = profileTrace(Train, Policy);
  Result.Database = trainDatabase(Result.TrainingProfile, Policy, Options);
  Result.Report = evaluatePrediction(Test, Result.Database);
  return Result;
}
