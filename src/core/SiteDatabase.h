//===- core/SiteDatabase.h - Predicted-short-lived site set -----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The database of allocation sites predicted to allocate only short-lived
/// objects — the artifact a training run produces and the optimized
/// allocator links against.  Per the paper it is a small hash table of
/// encoded site keys; here additionally serializable so examples and tools
/// can persist profiles between processes.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_CORE_SITEDATABASE_H
#define LIFEPRED_CORE_SITEDATABASE_H

#include "callchain/SiteKey.h"

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <unordered_set>

namespace lifepred {

/// A set of site keys predicted short-lived, plus the policy and threshold
/// they were trained under.
class SiteDatabase {
public:
  SiteDatabase() = default;
  SiteDatabase(SiteKeyPolicy Policy, uint64_t Threshold)
      : Policy(Policy), Threshold(Threshold) {}

  /// Adds a predicted-short-lived site.
  void insert(SiteKey Key) { Keys.insert(Key); }

  /// True if \p Key was predicted short-lived in training.
  bool contains(SiteKey Key) const { return Keys.count(Key) != 0; }

  /// Predicts from a raw chain and size directly.
  bool predictShortLived(const CallChain &Raw, uint32_t Size) const {
    return contains(siteKey(Policy, Raw, Size));
  }

  /// Number of predicted sites.
  size_t size() const { return Keys.size(); }

  /// The key policy the database was trained under.
  const SiteKeyPolicy &policy() const { return Policy; }

  /// The short-lived threshold (bytes) used in training.
  uint64_t threshold() const { return Threshold; }

  /// Writes the database as text ("sitedb v1" header, one key per line).
  /// The encryption pointer of the policy is not serialized.
  void save(std::ostream &OS) const;

  /// Parses a database written by save(); std::nullopt on malformed input.
  static std::optional<SiteDatabase> load(std::istream &IS);

private:
  std::unordered_set<SiteKey> Keys;
  SiteKeyPolicy Policy;
  uint64_t Threshold = 32 * 1024;
};

} // namespace lifepred

#endif // LIFEPRED_CORE_SITEDATABASE_H
