//===- core/Profiler.h - Training-run profiling -----------------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds per-site lifetime statistics from an allocation trace.  This is
/// the offline half of the paper's system: the training execution is traced
/// and every object's lifetime is attributed to its allocation site.
///
/// Objects alive at program exit (or whose scheduled death lies beyond the
/// end of the trace) are treated as dying at exit, so their lifetime is the
/// number of bytes allocated after their birth.  This matches the paper's
/// Table 3, whose maximum lifetimes equal each program's total allocation.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_CORE_PROFILER_H
#define LIFEPRED_CORE_PROFILER_H

#include "core/SiteTable.h"
#include "trace/AllocationTrace.h"

#include <cstdint>

namespace lifepred {

/// The lifetime an object actually exhibits within a trace whose final byte
/// clock is \p FinalClock, given its birth clock (clock *after* its own
/// allocation).  Never-freed and past-the-end deaths clamp to exit.
inline uint64_t effectiveLifetime(const AllocRecord &Record,
                                  uint64_t BirthClock, uint64_t FinalClock) {
  uint64_t AtExit = FinalClock - BirthClock;
  uint64_t Lifetime =
      Record.Lifetime == NeverFreed || Record.Lifetime > AtExit
          ? AtExit
          : Record.Lifetime;
  return Lifetime == 0 ? 1 : Lifetime;
}

/// Result of profiling one trace under one site-key policy.
struct Profile {
  SiteTable Sites;
  uint64_t TotalObjects = 0;
  uint64_t TotalBytes = 0;
  uint64_t TotalHeapRefs = 0;
  uint64_t NonHeapRefs = 0;
};

/// Profiles \p Trace, attributing each object's (effective) lifetime to its
/// site under \p Policy.
Profile profileTrace(const AllocationTrace &Trace,
                     const SiteKeyPolicy &Policy);

} // namespace lifepred

#endif // LIFEPRED_CORE_PROFILER_H
