//===- core/ThresholdSelector.cpp - Automatic threshold choice -------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/ThresholdSelector.h"

#include <algorithm>

using namespace lifepred;

ThresholdSelection lifepred::selectThreshold(
    const Profile &Profile, const ThresholdSelectorOptions &Options) {
  std::vector<uint64_t> Candidates = Options.Candidates;
  if (Candidates.empty())
    for (uint64_t T = 2 * 1024; T <= 512 * 1024; T *= 2)
      Candidates.push_back(T);
  std::sort(Candidates.begin(), Candidates.end());

  ThresholdSelection Selection;
  double BestCoverage = 0;
  for (uint64_t Threshold : Candidates) {
    ThresholdCandidate Candidate;
    Candidate.Threshold = Threshold;
    Candidate.ImpliedArenaBytes = 2 * Threshold;
    if (Options.MaxArenaBytes != 0 &&
        Candidate.ImpliedArenaBytes > Options.MaxArenaBytes)
      continue;
    for (const auto &[Key, Stats] : Profile.Sites) {
      if (!Stats.allShortLived(Threshold))
        continue;
      ++Candidate.QualifyingSites;
      Candidate.PredictedBytes += Stats.Bytes;
    }
    Candidate.CoveragePercent =
        Profile.TotalBytes == 0
            ? 0.0
            : 100.0 * static_cast<double>(Candidate.PredictedBytes) /
                  static_cast<double>(Profile.TotalBytes);
    BestCoverage = std::max(BestCoverage, Candidate.CoveragePercent);
    Selection.Candidates.push_back(Candidate);
  }

  // Knee: the smallest threshold within KneeFraction of the best coverage.
  for (const ThresholdCandidate &Candidate : Selection.Candidates) {
    if (Candidate.CoveragePercent >= Options.KneeFraction * BestCoverage) {
      Selection.Threshold = Candidate.Threshold;
      break;
    }
  }
  return Selection;
}
