//===- verify/TraceFuzzer.cpp - Generative trace fuzzing -------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/TraceFuzzer.h"

#include "support/Random.h"
#include "trace/TraceBinaryIO.h"

#include <algorithm>
#include <iterator>
#include <sstream>

using namespace lifepred;

const char *lifepred::profileName(FuzzProfile Profile) {
  switch (Profile) {
  case FuzzProfile::Uniform:
    return "uniform";
  case FuzzProfile::SizeSpike:
    return "sizespike";
  case FuzzProfile::DeathCollision:
    return "deathcollision";
  case FuzzProfile::Fragmentation:
    return "fragmentation";
  case FuzzProfile::SiteChurn:
    return "sitechurn";
  case FuzzProfile::Oversize:
    return "oversize";
  case FuzzProfile::Immortal:
    return "immortal";
  case FuzzProfile::Burst:
    return "burst";
  case FuzzProfile::Mixed:
    return "mixed";
  case FuzzProfile::GrandChallenge:
    return "grandchallenge";
  }
  return "unknown";
}

std::vector<FuzzProfile> lifepred::allProfiles() {
  return {FuzzProfile::Uniform,        FuzzProfile::SizeSpike,
          FuzzProfile::DeathCollision, FuzzProfile::Fragmentation,
          FuzzProfile::SiteChurn,      FuzzProfile::Oversize,
          FuzzProfile::Immortal,       FuzzProfile::Burst,
          FuzzProfile::Mixed,          FuzzProfile::GrandChallenge};
}

std::optional<FuzzProfile> lifepred::profileByName(const std::string &Name) {
  for (FuzzProfile Profile : allProfiles())
    if (Name == profileName(Profile))
      return Profile;
  return std::nullopt;
}

namespace {

/// A pool of pre-interned chains for profiles that reuse sites (reuse is
/// what makes training select them).
std::vector<uint32_t> makeChainPool(AllocationTrace &Trace, Rng &Rand,
                                    size_t Count, unsigned MaxDepth) {
  std::vector<uint32_t> Pool;
  Pool.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    CallChain Chain;
    unsigned Depth = 1 + static_cast<unsigned>(Rand.nextBelow(MaxDepth));
    for (unsigned D = 0; D < Depth; ++D)
      Chain.push(static_cast<uint32_t>(Rand.nextBelow(5000)));
    Pool.push_back(Trace.internChain(Chain));
  }
  return Pool;
}

/// Appends a record and advances the running post-alloc byte clock.
void emit(AllocationTrace &Trace, uint64_t &Clock, uint32_t Size,
          uint64_t Lifetime, uint32_t ChainIndex) {
  Clock += Size;
  AllocRecord Record;
  Record.Size = Size;
  Record.Lifetime = Lifetime;
  Record.ChainIndex = ChainIndex;
  Trace.append(Record);
}

void genUniform(AllocationTrace &Trace, Rng &Rand, size_t Objects) {
  std::vector<uint32_t> Pool = makeChainPool(Trace, Rand, 32, 8);
  uint64_t Clock = 0;
  for (size_t I = 0; I < Objects; ++I) {
    uint32_t Size = 1 + static_cast<uint32_t>(Rand.nextBelow(512));
    uint64_t Lifetime = Rand.nextBool(0.05)
                            ? NeverFreed
                            : Rand.nextBelow(64 * 1024);
    emit(Trace, Clock, Size, Lifetime,
         Pool[Rand.nextBelow(Pool.size())]);
  }
}

void genSizeSpike(AllocationTrace &Trace, Rng &Rand, size_t Objects) {
  std::vector<uint32_t> Pool = makeChainPool(Trace, Rand, 16, 4);
  uint64_t Clock = 0;
  for (size_t I = 0; I < Objects; ++I) {
    uint32_t Size;
    if (Rand.nextBool(0.02))
      Size = 0; // malloc(0): the zero-width bump hazard.
    else if (Rand.nextBool(0.03))
      Size = 16 * 1024 + static_cast<uint32_t>(Rand.nextBelow(100 * 1024));
    else
      Size = 8 + static_cast<uint32_t>(Rand.nextBelow(56));
    uint64_t Lifetime = Rand.nextBelow(16 * 1024);
    emit(Trace, Clock, Size, Lifetime, Pool[Rand.nextBelow(Pool.size())]);
  }
}

void genDeathCollision(AllocationTrace &Trace, Rng &Rand, size_t Objects) {
  std::vector<uint32_t> Pool = makeChainPool(Trace, Rand, 8, 4);
  uint64_t Clock = 0;
  size_t Emitted = 0;
  while (Emitted < Objects) {
    // A cohort of up to 64 objects engineered to die at one byte clock,
    // stressing the free-burst paths (mass coalescing, arena batch reset,
    // tie-breaking in the death priority queue).
    size_t Cohort = std::min<size_t>(2 + Rand.nextBelow(63),
                                     Objects - Emitted);
    uint64_t Target =
        Clock + 4096 + Rand.nextBelow(32 * 1024); // shared death clock
    for (size_t I = 0; I < Cohort; ++I) {
      uint32_t Size = 8 + static_cast<uint32_t>(Rand.nextBelow(120));
      uint64_t After = Clock + Size;
      uint64_t Lifetime = Target > After ? Target - After : 0;
      emit(Trace, Clock, Size, Lifetime, Pool[Rand.nextBelow(Pool.size())]);
    }
    Emitted += Cohort;
  }
}

void genFragmentation(AllocationTrace &Trace, Rng &Rand, size_t Objects) {
  static const uint32_t Boundary[] = {8, 16, 24, 4088, 4096, 8184, 8192};
  std::vector<uint32_t> Pool = makeChainPool(Trace, Rand, 8, 3);
  uint64_t Clock = 0;
  for (size_t I = 0; I < Objects; ++I) {
    uint32_t Size = Boundary[Rand.nextBelow(std::size(Boundary))];
    // Alternate short and long lifetimes so freed holes are pinned apart
    // by survivors — the split/coalesce worst case for boundary tags.
    uint64_t Lifetime = (I % 2 == 0) ? Rand.nextBelow(2048)
                                     : 128 * 1024 + Rand.nextBelow(128 * 1024);
    emit(Trace, Clock, Size, Lifetime, Pool[Rand.nextBelow(Pool.size())]);
  }
}

void genSiteChurn(AllocationTrace &Trace, Rng &Rand, size_t Objects) {
  uint64_t Clock = 0;
  for (size_t I = 0; I < Objects; ++I) {
    // Nearly every record brings a fresh deep chain (some with repeated
    // frames, exercising recursion pruning in the profiler).
    CallChain Chain;
    unsigned Depth = 1 + static_cast<unsigned>(Rand.nextBelow(64));
    uint32_t Fn = static_cast<uint32_t>(Rand.nextBelow(5000));
    for (unsigned D = 0; D < Depth; ++D) {
      Chain.push(Fn);
      if (!Rand.nextBool(0.3))
        Fn = static_cast<uint32_t>(Rand.nextBelow(5000));
    }
    uint32_t Size = 1 + static_cast<uint32_t>(Rand.nextBelow(256));
    emit(Trace, Clock, Size, Rand.nextBelow(32 * 1024),
         Trace.internChain(Chain));
  }
}

void genOversize(AllocationTrace &Trace, Rng &Rand, size_t Objects) {
  std::vector<uint32_t> Pool = makeChainPool(Trace, Rand, 8, 4);
  uint64_t Clock = 0;
  for (size_t I = 0; I < Objects; ++I) {
    // Consistently short-lived (so training predicts them short) but
    // mostly bigger than a 4 KB arena — the oversize routing path.
    uint32_t Size = 3000 + static_cast<uint32_t>(Rand.nextBelow(9000));
    emit(Trace, Clock, Size, Rand.nextBelow(8 * 1024),
         Pool[Rand.nextBelow(Pool.size())]);
  }
}

void genImmortal(AllocationTrace &Trace, Rng &Rand, size_t Objects) {
  std::vector<uint32_t> Pool = makeChainPool(Trace, Rand, 16, 6);
  uint64_t Clock = 0;
  for (size_t I = 0; I < Objects; ++I) {
    uint32_t Size = 1 + static_cast<uint32_t>(Rand.nextBelow(384));
    uint64_t Lifetime =
        Rand.nextBool(0.25) ? NeverFreed : Rand.nextBelow(24 * 1024);
    emit(Trace, Clock, Size, Lifetime, Pool[Rand.nextBelow(Pool.size())]);
  }
}

void genBurst(AllocationTrace &Trace, Rng &Rand, size_t Objects) {
  std::vector<uint32_t> ShortPool = makeChainPool(Trace, Rand, 4, 3);
  std::vector<uint32_t> LongPool = makeChainPool(Trace, Rand, 4, 3);
  uint64_t Clock = 0;
  size_t Emitted = 0;
  while (Emitted < Objects) {
    // A burst of tiny short-lived objects (arena recycling), then a few
    // long-lived stragglers from distinct sites that pin whatever arena
    // they land in — the paper's CFRAC pollution case.
    size_t BurstLen = std::min<size_t>(16 + Rand.nextBelow(48),
                                       Objects - Emitted);
    for (size_t I = 0; I < BurstLen; ++I)
      emit(Trace, Clock, 8 + static_cast<uint32_t>(Rand.nextBelow(56)),
           Rand.nextBelow(2048), ShortPool[Rand.nextBelow(ShortPool.size())]);
    Emitted += BurstLen;
    if (Emitted < Objects) {
      emit(Trace, Clock, 32 + static_cast<uint32_t>(Rand.nextBelow(64)),
           256 * 1024 + Rand.nextBelow(256 * 1024),
           LongPool[Rand.nextBelow(LongPool.size())]);
      ++Emitted;
    }
  }
}

void genGrandChallenge(AllocationTrace &Trace, Rng &Rand, size_t Objects) {
  // The billion-event bench's workload, kept deliberately self-contained:
  // every lifetime is bounded, so the live set (and hence the schedule
  // writer's slot space) stays O(1) in the object count and consecutive
  // segments concatenate with empty live-in seams.  Sizes sweep the whole
  // Kingsley bucket spectrum — mostly sub-128 B churn, a mid band, and
  // rare page-scale spikes — so the batched replay touches many classes.
  std::vector<uint32_t> Pool = makeChainPool(Trace, Rand, 64, 6);
  uint64_t Clock = 0;
  for (size_t I = 0; I < Objects; ++I) {
    uint32_t Size;
    uint64_t Draw = Rand.nextBelow(100);
    if (Draw < 70)
      Size = 8 + static_cast<uint32_t>(Rand.nextBelow(120));
    else if (Draw < 95)
      Size = 128 + static_cast<uint32_t>(Rand.nextBelow(896));
    else
      Size = 4096 + static_cast<uint32_t>(Rand.nextBelow(60 * 1024));
    emit(Trace, Clock, Size, Rand.nextBelow(256 * 1024),
         Pool[Rand.nextBelow(Pool.size())]);
  }
}

void generateInto(AllocationTrace &Trace, FuzzProfile Profile, Rng &Rand,
                  size_t Objects);

void genMixed(AllocationTrace &Trace, Rng &Rand, size_t Objects) {
  // Concatenated sub-traces re-interned into one chain table; lifetimes
  // from an early segment routinely cross into later segments.
  static const FuzzProfile Parts[] = {
      FuzzProfile::Uniform, FuzzProfile::Fragmentation,
      FuzzProfile::DeathCollision, FuzzProfile::Burst,
      FuzzProfile::SizeSpike};
  size_t PerPart = std::max<size_t>(Objects / std::size(Parts), 1);
  for (FuzzProfile Part : Parts) {
    Rng Sub = Rand.fork();
    generateInto(Trace, Part, Sub, PerPart);
  }
}

void generateInto(AllocationTrace &Trace, FuzzProfile Profile, Rng &Rand,
                  size_t Objects) {
  switch (Profile) {
  case FuzzProfile::Uniform:
    return genUniform(Trace, Rand, Objects);
  case FuzzProfile::SizeSpike:
    return genSizeSpike(Trace, Rand, Objects);
  case FuzzProfile::DeathCollision:
    return genDeathCollision(Trace, Rand, Objects);
  case FuzzProfile::Fragmentation:
    return genFragmentation(Trace, Rand, Objects);
  case FuzzProfile::SiteChurn:
    return genSiteChurn(Trace, Rand, Objects);
  case FuzzProfile::Oversize:
    return genOversize(Trace, Rand, Objects);
  case FuzzProfile::Immortal:
    return genImmortal(Trace, Rand, Objects);
  case FuzzProfile::Burst:
    return genBurst(Trace, Rand, Objects);
  case FuzzProfile::Mixed:
    return genMixed(Trace, Rand, Objects);
  case FuzzProfile::GrandChallenge:
    return genGrandChallenge(Trace, Rand, Objects);
  }
}

} // namespace

AllocationTrace lifepred::generateFuzzTrace(FuzzProfile Profile,
                                            uint64_t Seed, size_t Objects) {
  // Mix the profile into the seed so "--profile all --seed N" draws
  // distinct streams per profile.
  Rng Rand(Seed ^ (0x9e37'79b9'7f4a'7c15ULL *
                   (static_cast<uint64_t>(Profile) + 1)));
  AllocationTrace Trace;
  Trace.reserveRecords(Objects);
  generateInto(Trace, Profile, Rand, Objects);
  return Trace;
}

ShadowReport lifepred::runFuzzCase(FuzzProfile Profile, uint64_t Seed,
                                   size_t Objects) {
  AllocationTrace Trace = generateFuzzTrace(Profile, Seed, Objects);
  return shadowCheckAll(Trace);
}

//===----------------------------------------------------------------------===//
// Binary round-trip fuzzing
//===----------------------------------------------------------------------===//

namespace {

bool tracesEqual(const AllocationTrace &A, const AllocationTrace &B) {
  if (A.size() != B.size() || A.chainCount() != B.chainCount() ||
      A.totalBytes() != B.totalBytes() || A.nonHeapRefs() != B.nonHeapRefs())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    const AllocRecord &RA = A.records()[I];
    const AllocRecord &RB = B.records()[I];
    if (RA.Lifetime != RB.Lifetime || RA.Size != RB.Size ||
        RA.ChainIndex != RB.ChainIndex || RA.Refs != RB.Refs ||
        RA.TypeId != RB.TypeId)
      return false;
  }
  for (uint32_t I = 0; I < A.chainCount(); ++I)
    if (!(A.chain(I) == B.chain(I)))
      return false;
  return true;
}

/// Feeds \p Bytes to the reader; any returned trace must validate.
bool checkMutant(const std::string &Bytes, std::string &Error,
                 BinaryFuzzStats *Stats) {
  std::istringstream IS(Bytes);
  std::optional<AllocationTrace> Read = readTraceBinary(IS);
  if (Stats) {
    ++Stats->Cases;
    ++(Read ? Stats->Accepted : Stats->Rejected);
  }
  if (!Read)
    return true;
  std::string Why;
  if (!validateTrace(*Read, Why)) {
    Error = "reader accepted a corrupt trace that fails validation: " + Why;
    return false;
  }
  return true;
}

} // namespace

bool lifepred::fuzzBinaryRoundTrip(uint64_t Seed, size_t Cases,
                                   std::string &Error,
                                   BinaryFuzzStats *Stats) {
  Rng Rand(Seed ^ 0xb17f'11b5ULL);
  for (size_t Case = 0; Case < Cases; ++Case) {
    AllocationTrace Trace =
        generateFuzzTrace(FuzzProfile::Uniform, Rand.next(), 64);
    std::ostringstream OS;
    writeTraceBinary(Trace, OS);
    std::string Bytes = OS.str();

    // Pristine bytes must round-trip value-identically.
    std::istringstream IS(Bytes);
    std::optional<AllocationTrace> Read = readTraceBinary(IS);
    if (!Read || !tracesEqual(Trace, *Read)) {
      Error = "pristine round-trip failed at case " + std::to_string(Case);
      return false;
    }

    // Truncation at every region of the stream, including inside the
    // header.
    for (int I = 0; I < 4; ++I) {
      std::string Cut = Bytes.substr(0, Rand.nextBelow(Bytes.size() + 1));
      if (!checkMutant(Cut, Error, Stats))
        return false;
    }

    // Single-bit flips.
    for (int I = 0; I < 8; ++I) {
      std::string Flipped = Bytes;
      size_t Byte = Rand.nextBelow(Flipped.size());
      Flipped[Byte] = static_cast<char>(
          Flipped[Byte] ^ (1u << Rand.nextBelow(8)));
      if (!checkMutant(Flipped, Error, Stats))
        return false;
    }

    // Absurd counts spliced into the fixed-width header fields just after
    // the magic — claims of millions of chains/records backed by a few
    // hundred bytes (the reserve-clamp and bounds paths).
    for (int I = 0; I < 4; ++I) {
      std::string Spliced = Bytes;
      size_t Offset = 8 + Rand.nextBelow(16);
      for (size_t B = 0; B < 4 && Offset + B < Spliced.size(); ++B)
        Spliced[Offset + B] = static_cast<char>(0xff);
      if (!checkMutant(Spliced, Error, Stats))
        return false;
    }

    // Trailing garbage must not disturb what was already parsed.
    std::string Long = Bytes;
    for (int I = 0; I < 32; ++I)
      Long.push_back(static_cast<char>(Rand.nextBelow(256)));
    std::istringstream LongIS(Long);
    std::optional<AllocationTrace> LongRead = readTraceBinary(LongIS);
    if (Stats) {
      ++Stats->Cases;
      ++(LongRead ? Stats->Accepted : Stats->Rejected);
    }
    if (!LongRead || !tracesEqual(Trace, *LongRead)) {
      Error = "trailing garbage changed the parse at case " +
              std::to_string(Case);
      return false;
    }
  }
  return true;
}
