//===- verify/ShadowHeap.cpp - Lockstep allocator reference models ---------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/ShadowHeap.h"

#include "support/MathExtras.h"

#include <algorithm>

using namespace lifepred;

//===----------------------------------------------------------------------===//
// LiveSpanSet
//===----------------------------------------------------------------------===//

void LiveSpanSet::insert(ViolationLog &Log, uint64_t Op, uint64_t Addr,
                         uint32_t Size) {
  uint64_t End = Addr + std::max<uint64_t>(Size, 1);
  auto Next = Spans.upper_bound(Addr);
  if (Next != Spans.begin()) {
    auto Prev = std::prev(Next);
    if (Prev->second > Addr)
      Log.add(Op, "live-disjointness",
              "new span [" + std::to_string(Addr) + ", " +
                  std::to_string(End) + ") overlaps live span [" +
                  std::to_string(Prev->first) + ", " +
                  std::to_string(Prev->second) + ")");
  }
  if (Next != Spans.end() && Next->first < End)
    Log.add(Op, "live-disjointness",
            "new span [" + std::to_string(Addr) + ", " + std::to_string(End) +
                ") overlaps live span [" + std::to_string(Next->first) +
                ", " + std::to_string(Next->second) + ")");
  Spans[Addr] = End;
}

bool LiveSpanSet::erase(ViolationLog &Log, uint64_t Op, uint64_t Addr) {
  auto It = Spans.find(Addr);
  if (It == Spans.end()) {
    Log.add(Op, "free-of-dead",
            "free of address " + std::to_string(Addr) +
                " which is not a live object");
    return false;
  }
  Spans.erase(It);
  return true;
}

//===----------------------------------------------------------------------===//
// ShadowFirstFit
//===----------------------------------------------------------------------===//

ShadowFirstFit::ShadowFirstFit(const FirstFitAllocator *Observed,
                               ViolationLog &Log,
                               FirstFitAllocator::Config ReplicaConfig,
                               uint64_t AuditStride)
    : Observed(Observed), Log(Log), Replica(ReplicaConfig),
      AuditStride(AuditStride) {}

void ShadowFirstFit::crossCheck() {
  if (!Observed || Diverged)
    return;
  if (Observed->liveBytes() != Replica.liveBytes())
    Log.add(Op, "byte-conservation",
            "observed liveBytes " + std::to_string(Observed->liveBytes()) +
                " != model " + std::to_string(Replica.liveBytes()));
  if (Observed->heapBytes() != Replica.heapBytes())
    Log.add(Op, "heap-conservation",
            "observed heapBytes " + std::to_string(Observed->heapBytes()) +
                " != model " + std::to_string(Replica.heapBytes()));
  if (Observed->freeBlockCount() != Replica.freeBlockCount())
    Log.add(Op, "free-accounting",
            "observed free blocks " +
                std::to_string(Observed->freeBlockCount()) + " != model " +
                std::to_string(Replica.freeBlockCount()));
  if (AuditStride && Op % AuditStride == 0) {
    std::string Error;
    if (!Observed->auditInvariants(Error))
      Log.add(Op, "self-audit", Error);
  }
}

void ShadowFirstFit::onAlloc(uint32_t Size, uint64_t Addr) {
  Spans.insert(Log, Op, Addr, Size);
  Payloads[Addr] = Size;
  if (!Diverged) {
    uint64_t Want = Replica.allocate(Size);
    if (Want != Addr) {
      Log.add(Op, "placement-conformance",
              "alloc of " + std::to_string(Size) + " bytes placed at " +
                  std::to_string(Addr) + " but the policy model placed it " +
                  "at " + std::to_string(Want));
      Diverged = true;
    }
  }
  crossCheck();
  ++Op;
}

void ShadowFirstFit::onFree(uint64_t Addr) {
  bool Known = Spans.erase(Log, Op, Addr);
  Payloads.erase(Addr);
  if (!Diverged && Known)
    Replica.free(Addr);
  crossCheck();
  ++Op;
}

void ShadowFirstFit::finish() {
  if (Observed && !Diverged) {
    const FirstFitAllocator::Counters &Got = Observed->counters();
    const FirstFitAllocator::Counters &Want = Replica.counters();
    const FirstFitAllocator::Config &Cfg = Observed->config();
    // Under BestFitBins the flat store probes bins instead of scanning the
    // list, so the inspection counters legitimately differ from the
    // scanning model; everything else must match exactly.
    bool SkipSearch =
        Cfg.Policy == FitPolicy::BestFit && Cfg.BestFitBins;
    bool CountersMatch =
        Got.Allocs == Want.Allocs && Got.Frees == Want.Frees &&
        Got.Splits == Want.Splits && Got.Coalesces == Want.Coalesces &&
        Got.Grows == Want.Grows &&
        (SkipSearch || Got.SearchSteps == Want.SearchSteps);
    if (!CountersMatch)
      Log.add(Op, "counter-conformance",
              "first-fit counters diverge from the reference model");
    if (Observed->maxHeapBytes() != Replica.maxHeapBytes())
      Log.add(Op, "heap-peak",
              "observed maxHeapBytes " +
                  std::to_string(Observed->maxHeapBytes()) + " != model " +
                  std::to_string(Replica.maxHeapBytes()));
  }
  if (Observed) {
    std::string Error;
    if (!Observed->auditInvariants(Error))
      Log.add(Op, "self-audit", Error);
  }
}

//===----------------------------------------------------------------------===//
// ShadowBsd
//===----------------------------------------------------------------------===//

ShadowBsd::ShadowBsd(const BsdAllocator &Observed, ViolationLog &Log,
                     uint64_t AuditStride)
    : Observed(&Observed), Log(Log), Cfg(Observed.config()),
      HeapEnd(Cfg.BaseAddress), AuditStride(AuditStride) {
  if (Cfg.FreeList == BsdAllocator::FreeListKind::Bitmap)
    OrderedBuckets.resize(40);
  else
    Buckets.resize(40);
}

unsigned ShadowBsd::bucketFor(uint32_t Size) const {
  uint64_t Need = Size + Cfg.HeaderBytes;
  if (Need < Cfg.MinBlockBytes)
    Need = Cfg.MinBlockBytes;
  return log2Ceil(Need);
}

uint64_t ShadowBsd::modelAllocate(uint32_t Size) {
  ++Model.Allocs;
  unsigned Bucket = bucketFor(Size);
  Model.BucketBits += Bucket;
  if (Cfg.FreeList == BsdAllocator::FreeListKind::Bitmap) {
    // Lowest-free-address policy, modelled with an ordered set rather
    // than a bitmap: the production and shadow structures share nothing.
    std::set<uint64_t> &Parked = OrderedBuckets[Bucket];
    if (Parked.empty()) {
      ++Model.PageRefills;
      uint64_t BlockBytes = uint64_t(1) << Bucket;
      uint64_t Extent =
          BlockBytes >= Cfg.PageBytes ? BlockBytes : Cfg.PageBytes;
      uint64_t Page = HeapEnd;
      HeapEnd += Extent;
      MaxHeap = std::max(MaxHeap, HeapEnd - Cfg.BaseAddress);
      for (uint64_t Offset = 0; Offset < Extent; Offset += BlockBytes)
        Parked.insert(Page + Offset);
    }
    uint64_t Addr = *Parked.begin();
    Parked.erase(Parked.begin());
    LiveBytesModel += Size;
    return Addr;
  }
  std::vector<uint64_t> &FreeList = Buckets[Bucket];
  if (FreeList.empty()) {
    ++Model.PageRefills;
    uint64_t BlockBytes = uint64_t(1) << Bucket;
    uint64_t Extent = BlockBytes >= Cfg.PageBytes ? BlockBytes : Cfg.PageBytes;
    uint64_t Page = HeapEnd;
    HeapEnd += Extent;
    MaxHeap = std::max(MaxHeap, HeapEnd - Cfg.BaseAddress);
    for (uint64_t Offset = Extent; Offset >= BlockBytes; Offset -= BlockBytes)
      FreeList.push_back(Page + Offset - BlockBytes);
  }
  uint64_t Addr = FreeList.back();
  FreeList.pop_back();
  LiveBytesModel += Size;
  return Addr;
}

void ShadowBsd::crossCheck() {
  if (Diverged)
    return;
  if (Observed->liveBytes() != LiveBytesModel)
    Log.add(Op, "byte-conservation",
            "observed liveBytes " + std::to_string(Observed->liveBytes()) +
                " != model " + std::to_string(LiveBytesModel));
  if (Observed->heapBytes() != HeapEnd - Cfg.BaseAddress)
    Log.add(Op, "heap-conservation",
            "observed heapBytes " + std::to_string(Observed->heapBytes()) +
                " != model " + std::to_string(HeapEnd - Cfg.BaseAddress));
  size_t Parked = 0;
  for (const std::vector<uint64_t> &FreeList : Buckets)
    Parked += FreeList.size();
  for (const std::set<uint64_t> &Ordered : OrderedBuckets)
    Parked += Ordered.size();
  if (Observed->freeBlockCount() != Parked)
    Log.add(Op, "free-accounting",
            "observed free blocks " +
                std::to_string(Observed->freeBlockCount()) + " != model " +
                std::to_string(Parked));
  if (AuditStride && Op % AuditStride == 0) {
    std::string Error;
    if (!Observed->auditInvariants(Error))
      Log.add(Op, "self-audit", Error);
  }
}

void ShadowBsd::onAlloc(uint32_t Size, uint64_t Addr) {
  Spans.insert(Log, Op, Addr, Size);
  Payloads[Addr] = Size;
  if (!Diverged) {
    uint64_t Want = modelAllocate(Size);
    if (Want != Addr) {
      Log.add(Op, "placement-conformance",
              "alloc of " + std::to_string(Size) + " bytes placed at " +
                  std::to_string(Addr) +
                  " but the Kingsley model placed it at " +
                  std::to_string(Want));
      Diverged = true;
    }
  }
  crossCheck();
  ++Op;
}

void ShadowBsd::onFree(uint64_t Addr) {
  bool Known = Spans.erase(Log, Op, Addr);
  auto It = Payloads.find(Addr);
  if (!Diverged && Known && It != Payloads.end()) {
    ++Model.Frees;
    LiveBytesModel -= It->second;
    if (Cfg.FreeList == BsdAllocator::FreeListKind::Bitmap)
      OrderedBuckets[bucketFor(It->second)].insert(Addr);
    else
      Buckets[bucketFor(It->second)].push_back(Addr);
  }
  if (It != Payloads.end())
    Payloads.erase(It);
  crossCheck();
  ++Op;
}

void ShadowBsd::finish() {
  if (!Diverged) {
    if (!(Observed->counters() == Model))
      Log.add(Op, "counter-conformance",
              "BSD counters diverge from the reference model");
    if (Observed->maxHeapBytes() != MaxHeap)
      Log.add(Op, "heap-peak",
              "observed maxHeapBytes " +
                  std::to_string(Observed->maxHeapBytes()) + " != model " +
                  std::to_string(MaxHeap));
  }
  std::string Error;
  if (!Observed->auditInvariants(Error))
    Log.add(Op, "self-audit", Error);
}

//===----------------------------------------------------------------------===//
// ShadowArena
//===----------------------------------------------------------------------===//

ShadowArena::ShadowArena(const ArenaAllocator &Observed, ViolationLog &Log,
                         uint64_t AuditStride)
    : Observed(&Observed), Log(Log), Cfg(Observed.config()),
      GeneralReplica(Cfg.General), AuditStride(AuditStride) {
  Arenas.resize(Cfg.ArenaCount);
}

uint64_t ShadowArena::bump(uint32_t Size, uint64_t Need) {
  ModelArena &A = Arenas[Current];
  uint64_t Addr = Cfg.ArenaBase + Current * arenaBytes() + A.AllocPtr;
  A.AllocPtr += Need;
  ++A.LiveCount;
  ++Model.ArenaAllocs;
  Model.ArenaBytes += Size;
  ArenaLive += Size;
  MaxArenaLive = std::max(MaxArenaLive, ArenaLive);
  return Addr;
}

uint64_t ShadowArena::modelAllocate(uint32_t Size, bool Predicted) {
  if (!Predicted) {
    ++Model.GeneralAllocs;
    ++Model.UnpredictedAllocs;
    Model.GeneralBytes += Size;
    return GeneralReplica.allocate(Size);
  }
  uint64_t Need = alignTo(Size == 0 ? 1 : Size, 8);
  if (Need > arenaBytes()) {
    ++Model.GeneralAllocs;
    ++Model.OversizeAllocs;
    Model.GeneralBytes += Size;
    return GeneralReplica.allocate(Size);
  }
  if (Arenas[Current].AllocPtr + Need <= arenaBytes())
    return bump(Size, Need);
  for (unsigned I = 0; I < Cfg.ArenaCount; ++I) {
    ++Model.ScanSteps;
    if (Arenas[I].LiveCount == 0) {
      ++Model.Resets;
      Arenas[I].AllocPtr = 0;
      ++Arenas[I].Generation;
      Current = I;
      return bump(Size, Need);
    }
  }
  ++Model.GeneralAllocs;
  ++Model.FallbackAllocs;
  Model.GeneralBytes += Size;
  return GeneralReplica.allocate(Size);
}

void ShadowArena::crossCheck() {
  if (Diverged)
    return;
  if (Observed->arenaLiveBytes() != ArenaLive)
    Log.add(Op, "byte-conservation",
            "observed arenaLiveBytes " +
                std::to_string(Observed->arenaLiveBytes()) + " != model " +
                std::to_string(ArenaLive));
  if (Observed->liveBytes() != ArenaLive + GeneralReplica.liveBytes())
    Log.add(Op, "byte-conservation",
            "observed liveBytes " + std::to_string(Observed->liveBytes()) +
                " != model " +
                std::to_string(ArenaLive + GeneralReplica.liveBytes()));
  if (AuditStride && Op % AuditStride == 0) {
    for (unsigned I = 0; I < Cfg.ArenaCount; ++I) {
      if (Observed->arenaLiveCount(I) != Arenas[I].LiveCount)
        Log.add(Op, "arena-live-count",
                "arena " + std::to_string(I) + " live count " +
                    std::to_string(Observed->arenaLiveCount(I)) +
                    " != model " + std::to_string(Arenas[I].LiveCount));
      if (Observed->arenaGeneration(I) != Arenas[I].Generation)
        Log.add(Op, "arena-reset",
                "arena " + std::to_string(I) + " generation " +
                    std::to_string(Observed->arenaGeneration(I)) +
                    " != model " + std::to_string(Arenas[I].Generation));
    }
    std::string Error;
    if (!Observed->auditInvariants(Error))
      Log.add(Op, "self-audit", Error);
  }
}

void ShadowArena::onAlloc(uint32_t Size, bool PredictedShortLived,
                          uint64_t Addr) {
  Spans.insert(Log, Op, Addr, Size);
  if (!Diverged) {
    uint64_t Want = modelAllocate(Size, PredictedShortLived);
    bool WantArena = isArenaAddress(Want);
    bool GotArena = isArenaAddress(Addr);
    if (WantArena != GotArena) {
      Log.add(Op, "routing-conformance",
              std::string("alloc of ") + std::to_string(Size) + " bytes (" +
                  (PredictedShortLived ? "predicted short" :
                                         "predicted long") +
                  ") routed to the " + (GotArena ? "arena area" :
                                                  "general heap") +
                  " but the model routed it to the " +
                  (WantArena ? "arena area" : "general heap"));
      Diverged = true;
    } else if (Want != Addr) {
      Log.add(Op, "placement-conformance",
              "alloc of " + std::to_string(Size) + " bytes placed at " +
                  std::to_string(Addr) + " but the model placed it at " +
                  std::to_string(Want));
      Diverged = true;
    }
    if (!Diverged) {
      if (GotArena)
        ArenaPayloads[Addr] = Size;
      else
        GeneralPayloads[Addr] = Size;
    }
  }
  crossCheck();
  ++Op;
}

void ShadowArena::onFree(uint64_t Addr) {
  bool Known = Spans.erase(Log, Op, Addr);
  if (!Diverged && Known) {
    if (isArenaAddress(Addr)) {
      ++Model.ArenaFrees;
      unsigned Index =
          static_cast<unsigned>((Addr - Cfg.ArenaBase) / arenaBytes());
      if (Arenas[Index].LiveCount == 0) {
        Log.add(Op, "arena-live-count",
                "model live count underflow in arena " +
                    std::to_string(Index));
        Diverged = true;
      } else {
        --Arenas[Index].LiveCount;
        auto It = ArenaPayloads.find(Addr);
        if (It != ArenaPayloads.end()) {
          ArenaLive -= It->second;
          ArenaPayloads.erase(It);
        }
      }
    } else {
      ++Model.GeneralFrees;
      auto It = GeneralPayloads.find(Addr);
      if (It != GeneralPayloads.end()) {
        GeneralReplica.free(Addr);
        GeneralPayloads.erase(It);
      }
    }
  }
  crossCheck();
  ++Op;
}

void ShadowArena::finish() {
  if (!Diverged) {
    if (!(Observed->counters() == Model))
      Log.add(Op, "counter-conformance",
              "arena counters diverge from the reference model");
    const FirstFitAllocator::Config &GCfg = Cfg.General;
    bool SkipGeneral = GCfg.Policy == FitPolicy::BestFit && GCfg.BestFitBins;
    if (!SkipGeneral &&
        !(Observed->general().counters() == GeneralReplica.counters()))
      Log.add(Op, "counter-conformance",
              "general-heap counters diverge from the reference model");
    if (Observed->maxArenaLiveBytes() != MaxArenaLive)
      Log.add(Op, "arena-peak",
              "observed maxArenaLiveBytes " +
                  std::to_string(Observed->maxArenaLiveBytes()) +
                  " != model " + std::to_string(MaxArenaLive));
    if (Observed->general().maxHeapBytes() != GeneralReplica.maxHeapBytes())
      Log.add(Op, "heap-peak",
              "observed general maxHeapBytes " +
                  std::to_string(Observed->general().maxHeapBytes()) +
                  " != model " +
                  std::to_string(GeneralReplica.maxHeapBytes()));
  }
  std::string Error;
  if (!Observed->auditInvariants(Error))
    Log.add(Op, "self-audit", Error);
}

//===----------------------------------------------------------------------===//
// ShadowMultiArena
//===----------------------------------------------------------------------===//

ShadowMultiArena::ShadowMultiArena(const MultiArenaAllocator &Observed,
                                   ViolationLog &Log, uint64_t AuditStride)
    : Observed(&Observed), Log(Log),
      GeneralReplica(Observed.config().General), AuditStride(AuditStride) {
  uint64_t Base = 1 << 20;
  for (const MultiArenaAllocator::BandConfig &BandCfg :
       Observed.config().Bands) {
    ModelBand Band;
    Band.Cfg = BandCfg;
    Band.Base = Base;
    Band.Arenas.resize(BandCfg.ArenaCount);
    Base += BandCfg.AreaBytes;
    Bands.push_back(std::move(Band));
  }
}

uint8_t ShadowMultiArena::bandForAddress(uint64_t Addr) const {
  for (size_t I = 0; I < Bands.size(); ++I)
    if (Addr >= Bands[I].Base && Addr < Bands[I].Base + Bands[I].Cfg.AreaBytes)
      return static_cast<uint8_t>(I);
  return MultiArenaAllocator::GeneralBand;
}

uint64_t ShadowMultiArena::bump(ModelBand &Band, uint32_t Size,
                                uint64_t Need) {
  ModelArena &A = Band.Arenas[Band.Current];
  uint64_t Addr = Band.Base + Band.Current * Band.arenaBytes() + A.AllocPtr;
  A.AllocPtr += Need;
  ++A.LiveCount;
  ++Band.Stats.Allocs;
  Band.Stats.Bytes += Size;
  ArenaLive += Size;
  MaxArenaLive = std::max(MaxArenaLive, ArenaLive);
  return Addr;
}

uint64_t ShadowMultiArena::modelAllocate(uint32_t Size, uint8_t BandIndex) {
  if (BandIndex < Bands.size()) {
    ModelBand &Band = Bands[BandIndex];
    uint64_t Need = alignTo(Size == 0 ? 1 : Size, 8);
    if (Need <= Band.arenaBytes()) {
      if (Band.Arenas[Band.Current].AllocPtr + Need <= Band.arenaBytes())
        return bump(Band, Size, Need);
      for (unsigned I = 0; I < Band.Cfg.ArenaCount; ++I) {
        ++Band.Stats.ScanSteps;
        if (Band.Arenas[I].LiveCount == 0) {
          ++Band.Stats.Resets;
          Band.Arenas[I].AllocPtr = 0;
          ++Band.Arenas[I].Generation;
          Band.Current = I;
          return bump(Band, Size, Need);
        }
      }
    }
    ++Band.Stats.Fallbacks;
  }
  ++ModelGeneralAllocs;
  ModelGeneralBytes += Size;
  return GeneralReplica.allocate(Size);
}

void ShadowMultiArena::crossCheck() {
  if (Diverged)
    return;
  if (Observed->arenaLiveBytes() != ArenaLive)
    Log.add(Op, "byte-conservation",
            "observed arenaLiveBytes " +
                std::to_string(Observed->arenaLiveBytes()) + " != model " +
                std::to_string(ArenaLive));
  if (Observed->liveBytes() != ArenaLive + GeneralReplica.liveBytes())
    Log.add(Op, "byte-conservation",
            "observed liveBytes " + std::to_string(Observed->liveBytes()) +
                " != model " +
                std::to_string(ArenaLive + GeneralReplica.liveBytes()));
  if (AuditStride && Op % AuditStride == 0) {
    for (size_t B = 0; B < Bands.size(); ++B)
      for (unsigned I = 0; I < Bands[B].Cfg.ArenaCount; ++I)
        if (Observed->arenaGeneration(static_cast<uint8_t>(B), I) !=
            Bands[B].Arenas[I].Generation)
          Log.add(Op, "arena-reset",
                  "band " + std::to_string(B) + " arena " +
                      std::to_string(I) + " generation disagrees with the " +
                      "model");
    std::string Error;
    if (!Observed->auditInvariants(Error))
      Log.add(Op, "self-audit", Error);
  }
}

void ShadowMultiArena::onAlloc(uint32_t Size, uint8_t Band, uint64_t Addr) {
  Spans.insert(Log, Op, Addr, Size);
  if (!Diverged) {
    uint64_t Want = modelAllocate(Size, Band);
    uint8_t WantBand = bandForAddress(Want);
    uint8_t GotBand = bandForAddress(Addr);
    if (WantBand != GotBand) {
      Log.add(Op, "routing-conformance",
              "alloc of " + std::to_string(Size) + " bytes for band " +
                  std::to_string(Band) + " routed to band " +
                  std::to_string(GotBand) + " but the model routed it to " +
                  "band " + std::to_string(WantBand));
      Diverged = true;
    } else if (Want != Addr) {
      Log.add(Op, "placement-conformance",
              "alloc of " + std::to_string(Size) + " bytes placed at " +
                  std::to_string(Addr) + " but the model placed it at " +
                  std::to_string(Want));
      Diverged = true;
    }
    if (!Diverged) {
      if (GotBand != MultiArenaAllocator::GeneralBand)
        ArenaPayloads[Addr] = Size;
      else
        GeneralPayloads[Addr] = Size;
    }
  }
  crossCheck();
  ++Op;
}

void ShadowMultiArena::onFree(uint64_t Addr) {
  bool Known = Spans.erase(Log, Op, Addr);
  if (!Diverged && Known) {
    uint8_t Band = bandForAddress(Addr);
    if (Band != MultiArenaAllocator::GeneralBand) {
      ModelBand &State = Bands[Band];
      ++State.Stats.Frees;
      unsigned Index =
          static_cast<unsigned>((Addr - State.Base) / State.arenaBytes());
      if (State.Arenas[Index].LiveCount == 0) {
        Log.add(Op, "arena-live-count",
                "model live count underflow in band " + std::to_string(Band) +
                    " arena " + std::to_string(Index));
        Diverged = true;
      } else {
        --State.Arenas[Index].LiveCount;
        auto It = ArenaPayloads.find(Addr);
        if (It != ArenaPayloads.end()) {
          ArenaLive -= It->second;
          ArenaPayloads.erase(It);
        }
      }
    } else {
      auto It = GeneralPayloads.find(Addr);
      if (It != GeneralPayloads.end()) {
        GeneralReplica.free(Addr);
        GeneralPayloads.erase(It);
      }
    }
  }
  crossCheck();
  ++Op;
}

void ShadowMultiArena::finish() {
  if (!Diverged) {
    for (size_t B = 0; B < Bands.size(); ++B) {
      const MultiArenaAllocator::BandCounters &Got =
          Observed->bandCounters(B);
      const MultiArenaAllocator::BandCounters &Want = Bands[B].Stats;
      if (Got.Allocs != Want.Allocs || Got.Bytes != Want.Bytes ||
          Got.Frees != Want.Frees || Got.ScanSteps != Want.ScanSteps ||
          Got.Resets != Want.Resets || Got.Fallbacks != Want.Fallbacks)
        Log.add(Op, "counter-conformance",
                "band " + std::to_string(B) +
                    " counters diverge from the reference model");
    }
    if (Observed->generalAllocs() != ModelGeneralAllocs ||
        Observed->generalBytes() != ModelGeneralBytes)
      Log.add(Op, "counter-conformance",
              "general routing totals diverge from the reference model");
    const FirstFitAllocator::Config &GCfg = Observed->config().General;
    bool SkipGeneral = GCfg.Policy == FitPolicy::BestFit && GCfg.BestFitBins;
    if (!SkipGeneral &&
        !(Observed->general().counters() == GeneralReplica.counters()))
      Log.add(Op, "counter-conformance",
              "general-heap counters diverge from the reference model");
    if (Observed->maxArenaLiveBytes() != MaxArenaLive)
      Log.add(Op, "arena-peak",
              "observed maxArenaLiveBytes " +
                  std::to_string(Observed->maxArenaLiveBytes()) +
                  " != model " + std::to_string(MaxArenaLive));
  }
  std::string Error;
  if (!Observed->auditInvariants(Error))
    Log.add(Op, "self-audit", Error);
}
