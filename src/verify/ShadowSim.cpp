//===- verify/ShadowSim.cpp - Shadow-checked trace replays -----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/ShadowSim.h"

#include "core/Profiler.h"
#include "core/Trainer.h"
#include "runtime/Retrainer.h"
#include "sim/CompiledPrediction.h"
#include "trace/CompiledTrace.h"
#include "trace/TraceReplayer.h"

#include <tuple>

using namespace lifepred;

//===----------------------------------------------------------------------===//
// ShadowReport
//===----------------------------------------------------------------------===//

void ShadowReport::merge(const ShadowReport &Other,
                         const std::string &Context) {
  Events += Other.Events;
  Checks += Other.Checks;
  ViolationCount += Other.ViolationCount;
  for (const Violation &V : Other.Violations) {
    if (Violations.size() >= 32)
      break;
    Violation Tagged = V;
    Tagged.Detail = "[" + Context + "] " + Tagged.Detail;
    Violations.push_back(std::move(Tagged));
  }
}

std::string ShadowReport::summary() const {
  std::string Text = std::to_string(Checks) + " checks, " +
                     std::to_string(Events) + " events, " +
                     std::to_string(ViolationCount) + " violations";
  if (!Violations.empty())
    Text += "; first: " + Violations.front().Invariant + " at op " +
            std::to_string(Violations.front().Op) + " (" +
            Violations.front().Detail + ")";
  return Text;
}

//===----------------------------------------------------------------------===//
// Trace validation
//===----------------------------------------------------------------------===//

bool lifepred::validateTrace(const AllocationTrace &Trace,
                             std::string &Error) {
  uint32_t Chains = Trace.chainCount();
  for (size_t Id = 0; Id < Trace.size(); ++Id) {
    const AllocRecord &Record = Trace.records()[Id];
    if (Record.ChainIndex >= Chains) {
      Error = "record " + std::to_string(Id) + " references chain " +
              std::to_string(Record.ChainIndex) + " of " +
              std::to_string(Chains);
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Drivers
//===----------------------------------------------------------------------===//

namespace {

/// Turns a ViolationLog and an event count into a ShadowReport.
ShadowReport reportFrom(const ViolationLog &Log, uint64_t Events) {
  ShadowReport Report;
  Report.Events = Events;
  Report.Checks = 1;
  Report.ViolationCount = Log.total();
  Report.Violations = Log.violations();
  return Report;
}

/// Oracle-path driver: replays through the priority-queue interleaving.
/// ShadowT provides onAlloc(Size, ..., Addr) via the Route functor and
/// onFree(Addr).
template <typename AllocatorT, typename ShadowT, typename RouteT>
class OracleDriver : public TraceConsumer {
public:
  OracleDriver(const AllocationTrace &Trace, AllocatorT &Allocator,
               ShadowT &Shadow, RouteT Route)
      : Allocator(Allocator), Shadow(Shadow), Route(Route) {
    Addresses.resize(Trace.size());
  }

  void onAlloc(uint64_t Id, const AllocRecord &Record, uint64_t) override {
    Addresses[Id] = Route(Allocator, Shadow, Id, Record);
    ++Events;
  }

  void onFree(uint64_t Id, const AllocRecord &, uint64_t) override {
    Allocator.free(Addresses[Id]);
    Shadow.onFree(Addresses[Id]);
    ++Events;
  }

  uint64_t events() const { return Events; }

private:
  AllocatorT &Allocator;
  ShadowT &Shadow;
  RouteT Route;
  std::vector<uint64_t> Addresses;
  uint64_t Events = 0;
};

/// Compiled-path driver: replays the flat schedule with no virtual
/// dispatch, mirroring the production simulators.
template <typename AllocatorT, typename ShadowT, typename RouteT>
class CompiledDriver
    : public ScheduleConsumer<CompiledDriver<AllocatorT, ShadowT, RouteT>> {
public:
  CompiledDriver(const AllocationTrace &Trace, AllocatorT &Allocator,
                 ShadowT &Shadow, RouteT Route)
      : Allocator(Allocator), Shadow(Shadow), Route(Route),
        Records(Trace.records().data()) {
    Addresses.resize(Trace.size());
  }

  void onAlloc(uint32_t Id, uint64_t) {
    Addresses[Id] = Route(Allocator, Shadow, Id, Records[Id]);
    ++Events;
  }

  void onFree(uint32_t Id, uint64_t) {
    Allocator.free(Addresses[Id]);
    Shadow.onFree(Addresses[Id]);
    ++Events;
  }

  uint64_t events() const { return Events; }

private:
  AllocatorT &Allocator;
  ShadowT &Shadow;
  RouteT Route;
  const AllocRecord *Records;
  std::vector<uint64_t> Addresses;
  uint64_t Events = 0;
};

/// Runs one shadow-checked replay over the requested path.
template <typename AllocatorT, typename ShadowT, typename RouteT>
uint64_t drive(const AllocationTrace &Trace, ReplayPath Path,
               AllocatorT &Allocator, ShadowT &Shadow, RouteT Route) {
  if (Path == ReplayPath::Oracle) {
    OracleDriver<AllocatorT, ShadowT, RouteT> Driver(Trace, Allocator, Shadow,
                                                     Route);
    replayTrace(Trace, Driver);
    Shadow.finish();
    return Driver.events();
  }
  CompiledTrace Compiled(Trace);
  CompiledDriver<AllocatorT, ShadowT, RouteT> Driver(Trace, Allocator, Shadow,
                                                     Route);
  forEachEvent(Compiled.schedule(), Driver);
  Shadow.finish();
  return Driver.events();
}

} // namespace

ShadowReport lifepred::shadowCheckFirstFit(const AllocationTrace &Trace,
                                           FirstFitAllocator::Config Config,
                                           ReplayPath Path) {
  FirstFitAllocator Allocator(Config);
  ViolationLog Log;
  ShadowFirstFit Shadow(Allocator, Log);
  auto Route = [](FirstFitAllocator &A, ShadowFirstFit &S, uint64_t,
                  const AllocRecord &Record) {
    uint64_t Addr = A.allocate(Record.Size);
    S.onAlloc(Record.Size, Addr);
    return Addr;
  };
  uint64_t Events = drive(Trace, Path, Allocator, Shadow, Route);
  return reportFrom(Log, Events);
}

ShadowReport lifepred::shadowCheckBsd(const AllocationTrace &Trace,
                                      BsdAllocator::Config Config,
                                      ReplayPath Path) {
  BsdAllocator Allocator(Config);
  ViolationLog Log;
  ShadowBsd Shadow(Allocator, Log);
  auto Route = [](BsdAllocator &A, ShadowBsd &S, uint64_t,
                  const AllocRecord &Record) {
    uint64_t Addr = A.allocate(Record.Size);
    S.onAlloc(Record.Size, Addr);
    return Addr;
  };
  uint64_t Events = drive(Trace, Path, Allocator, Shadow, Route);
  return reportFrom(Log, Events);
}

ShadowReport lifepred::shadowCheckArena(const AllocationTrace &Trace,
                                        const SiteDatabase &DB,
                                        ArenaAllocator::Config Config,
                                        ReplayPath Path) {
  ArenaAllocator Allocator(Config);
  ViolationLog Log;
  ShadowArena Shadow(Allocator, Log);
  uint64_t Events = 0;

  if (Path == ReplayPath::Oracle) {
    // Oracle path resolves every prediction with a live database probe —
    // independently of the compiled bit table, so a disagreement between
    // the two paths surfaces as a routing violation on one of them.
    auto Route = [&Trace, &DB](ArenaAllocator &A, ShadowArena &S, uint64_t,
                               const AllocRecord &Record) {
      bool Predicted = DB.contains(siteKey(DB.policy(),
                                           Trace.chain(Record.ChainIndex),
                                           Record.Size, Record.TypeId));
      uint64_t Addr = A.allocate(Record.Size, Predicted);
      S.onAlloc(Record.Size, Predicted, Addr);
      return Addr;
    };
    Events = drive(Trace, Path, Allocator, Shadow, Route);
  } else {
    CompiledTrace Compiled(Trace, DB.policy());
    PredictedShortBits Predicted(Compiled, DB);
    auto Route = [&Predicted](ArenaAllocator &A, ShadowArena &S, uint64_t Id,
                              const AllocRecord &Record) {
      bool Bit = Predicted.test(Id);
      uint64_t Addr = A.allocate(Record.Size, Bit);
      S.onAlloc(Record.Size, Bit, Addr);
      return Addr;
    };
    CompiledDriver<ArenaAllocator, ShadowArena, decltype(Route)> Driver(
        Trace, Allocator, Shadow, Route);
    forEachEvent(Compiled.schedule(), Driver);
    Shadow.finish();
    Events = Driver.events();
  }
  return reportFrom(Log, Events);
}

namespace {

/// Oracle-path online driver: a live predictor routes each allocation at
/// its birth clock and sees each death as it happens — the causal loop the
/// route compile pass (runtime/Retrainer.h) replays sequentially.
class OnlineOracleDriver : public TraceConsumer {
public:
  OnlineOracleDriver(const AllocationTrace &Trace, const SiteKeyPolicy &Policy,
                     OnlinePredictor &Online, ArenaAllocator &Allocator,
                     ShadowArena &Shadow)
      : Trace(Trace), Policy(Policy), Online(Online), Allocator(Allocator),
        Shadow(Shadow) {
    Addresses.resize(Trace.size());
    Keys.resize(Trace.size());
    Routes.resize(Trace.size());
  }

  void onAlloc(uint64_t Id, const AllocRecord &Record,
               uint64_t Clock) override {
    Online.advanceClock(Clock);
    SiteKey Key = siteKey(Policy, Trace.chain(Record.ChainIndex), Record.Size,
                          Record.TypeId);
    bool Route = Online.routeShort(Key);
    Keys[Id] = Key;
    Routes[Id] = Route;
    Addresses[Id] = Allocator.allocate(Record.Size, Route);
    Shadow.onAlloc(Record.Size, Route, Addresses[Id]);
    ++Events;
  }

  void onFree(uint64_t Id, const AllocRecord &Record,
              uint64_t Clock) override {
    Online.advanceClock(Clock);
    // Feed back the route the object was *born* under, so misprediction
    // evidence scores what the allocator actually did.
    Online.observeDeath(Keys[Id], Routes[Id] != 0, Record.Lifetime);
    Allocator.free(Addresses[Id]);
    Shadow.onFree(Addresses[Id]);
    ++Events;
  }

  void onEnd(uint64_t Clock) override { Online.finish(Clock); }

  uint64_t events() const { return Events; }
  bool routedShort(uint64_t Id) const { return Routes[Id] != 0; }

private:
  const AllocationTrace &Trace;
  const SiteKeyPolicy &Policy;
  OnlinePredictor &Online;
  ArenaAllocator &Allocator;
  ShadowArena &Shadow;
  std::vector<uint64_t> Addresses;
  std::vector<SiteKey> Keys;
  std::vector<unsigned char> Routes;
  uint64_t Events = 0;
};

} // namespace

ShadowReport lifepred::shadowCheckArenaOnline(const AllocationTrace &Trace,
                                              const SiteDatabase &DB,
                                              OnlinePredictorConfig OnlineConfig,
                                              ArenaAllocator::Config Config,
                                              ReplayPath Path) {
  // Resolve the window width once so the live predictor and the compiled
  // plan close retrain windows on the same clocks.
  OnlineConfig.WindowBytes =
      resolveOnlineWindowBytes(OnlineConfig, Trace.totalBytes());
  CompiledTrace Compiled(Trace, DB.policy());
  OnlineRoutePlan Plan = compileOnlineRoutes(Compiled, OnlineConfig);

  ArenaAllocator Allocator(Config);
  ViolationLog Log;
  ShadowArena Shadow(Allocator, Log);

  if (Path == ReplayPath::Oracle) {
    OnlinePredictor Online(OnlineConfig);
    OnlineOracleDriver Driver(Trace, DB.policy(), Online, Allocator, Shadow);
    replayTrace(Trace, Driver);
    Shadow.finish();
    ShadowReport Report = reportFrom(Log, Driver.events());
    // Routes must be a pure function of the event stream: the live causal
    // run and the sequential route compile pass agree on every birth.
    for (size_t Id = 0; Id < Trace.size(); ++Id) {
      if (Driver.routedShort(Id) == Plan.testShort(Id))
        continue;
      ++Report.ViolationCount;
      if (Report.Violations.size() < 32)
        Report.Violations.push_back(
            {Id, "online-route-differential",
             "live oracle route disagrees with the compiled plan at record " +
                 std::to_string(Id)});
    }
    if (Online.epoch() != Plan.Epochs) {
      ++Report.ViolationCount;
      if (Report.Violations.size() < 32)
        Report.Violations.push_back(
            {Trace.size(), "online-route-differential",
             "live oracle epoch " + std::to_string(Online.epoch()) +
                 " != compiled plan epoch " + std::to_string(Plan.Epochs)});
    }
    return Report;
  }

  DynamicRouteBits Routes(Plan.RouteWords);
  auto Route = [&Routes](ArenaAllocator &A, ShadowArena &S, uint64_t Id,
                         const AllocRecord &Record) {
    bool Bit = Routes.test(Id);
    uint64_t Addr = A.allocate(Record.Size, Bit);
    S.onAlloc(Record.Size, Bit, Addr);
    return Addr;
  };
  CompiledDriver<ArenaAllocator, ShadowArena, decltype(Route)> Driver(
      Trace, Allocator, Shadow, Route);
  forEachEvent(Compiled.schedule(), Driver);
  Shadow.finish();
  return reportFrom(Log, Driver.events());
}

ShadowReport lifepred::shadowCheckMultiArena(const AllocationTrace &Trace,
                                             const ClassDatabase &DB,
                                             ReplayPath Path) {
  MultiArenaAllocator::Config Config;
  for (size_t I = 0; I < DB.thresholds().size(); ++I)
    Config.Bands.push_back(MultiArenaAllocator::BandConfig());
  MultiArenaAllocator Allocator(Config);
  ViolationLog Log;
  ShadowMultiArena Shadow(Allocator, Log);
  uint64_t Events = 0;

  if (Path == ReplayPath::Oracle) {
    auto Route = [&Trace, &DB](MultiArenaAllocator &A, ShadowMultiArena &S,
                               uint64_t, const AllocRecord &Record) {
      uint8_t Band = DB.classify(siteKey(DB.policy(),
                                         Trace.chain(Record.ChainIndex),
                                         Record.Size, Record.TypeId));
      uint64_t Addr = A.allocate(Record.Size, Band);
      S.onAlloc(Record.Size, Band, Addr);
      return Addr;
    };
    Events = drive(Trace, Path, Allocator, Shadow, Route);
  } else {
    CompiledTrace Compiled(Trace, DB.policy());
    std::vector<LifetimeClass> Bands = compileBands(Compiled, DB);
    auto Route = [&Bands](MultiArenaAllocator &A, ShadowMultiArena &S,
                          uint64_t Id, const AllocRecord &Record) {
      uint8_t Band = Bands[Id];
      uint64_t Addr = A.allocate(Record.Size, Band);
      S.onAlloc(Record.Size, Band, Addr);
      return Addr;
    };
    CompiledDriver<MultiArenaAllocator, ShadowMultiArena, decltype(Route)>
        Driver(Trace, Allocator, Shadow, Route);
    forEachEvent(Compiled.schedule(), Driver);
    Shadow.finish();
    Events = Driver.events();
  }
  return reportFrom(Log, Events);
}

//===----------------------------------------------------------------------===//
// Replay-path differential
//===----------------------------------------------------------------------===//

namespace {

/// One replay event for stream comparison.
using StreamEvent = std::tuple<bool, uint64_t, uint64_t>; // free?, id, clock

class StreamCollector : public TraceConsumer {
public:
  void onAlloc(uint64_t Id, const AllocRecord &, uint64_t Clock) override {
    Stream.emplace_back(false, Id, Clock);
  }
  void onFree(uint64_t Id, const AllocRecord &, uint64_t Clock) override {
    Stream.emplace_back(true, Id, Clock);
  }
  void onEnd(uint64_t Clock) override { EndClock = Clock; }

  std::vector<StreamEvent> Stream;
  uint64_t EndClock = 0;
};

} // namespace

ShadowReport lifepred::diffReplayPaths(const AllocationTrace &Trace) {
  StreamCollector Oracle;
  replayTrace(Trace, Oracle);
  EventSchedule Schedule(Trace);

  ShadowReport Report;
  Report.Checks = 1;
  Report.Events = Oracle.Stream.size();
  auto AddViolation = [&Report](uint64_t Op, std::string Detail) {
    ++Report.ViolationCount;
    if (Report.Violations.size() < 32)
      Report.Violations.push_back(
          {Op, "schedule-differential", std::move(Detail)});
  };

  if (Schedule.size() != Oracle.Stream.size()) {
    AddViolation(0, "oracle emits " + std::to_string(Oracle.Stream.size()) +
                        " events but the compiled schedule has " +
                        std::to_string(Schedule.size()));
    return Report;
  }
  for (size_t Event = 0; Event < Schedule.size(); ++Event) {
    auto [Free, Id, Clock] = Oracle.Stream[Event];
    if (Schedule.isFree(Event) != Free || Schedule.objectId(Event) != Id ||
        Schedule.clock(Event) != Clock) {
      AddViolation(Event, "event streams diverge at position " +
                              std::to_string(Event));
      break;
    }
  }
  if (Schedule.endClock() != Oracle.EndClock)
    AddViolation(Schedule.size(),
                 "oracle end clock " + std::to_string(Oracle.EndClock) +
                     " != compiled " + std::to_string(Schedule.endClock()));
  return Report;
}

//===----------------------------------------------------------------------===//
// shadowCheckAll
//===----------------------------------------------------------------------===//

ShadowReport lifepred::shadowCheckAll(const AllocationTrace &Trace) {
  ShadowReport Report;
  std::string Error;
  if (!validateTrace(Trace, Error)) {
    Report.Checks = 1;
    Report.ViolationCount = 1;
    Report.Violations.push_back({0, "trace-structure", Error});
    return Report;
  }

  auto CheckFF = [&Report, &Trace](FitPolicy Policy, bool Bins,
                                   ReplayPath Path, const char *Context) {
    FirstFitAllocator::Config Config;
    Config.Policy = Policy;
    Config.BestFitBins = Bins;
    Report.merge(shadowCheckFirstFit(Trace, Config, Path), Context);
  };
  CheckFF(FitPolicy::RovingFirstFit, false, ReplayPath::Oracle,
          "firstfit-roving/oracle");
  CheckFF(FitPolicy::RovingFirstFit, false, ReplayPath::Compiled,
          "firstfit-roving/compiled");
  CheckFF(FitPolicy::AddressOrderedFirstFit, false, ReplayPath::Compiled,
          "firstfit-addr/compiled");
  CheckFF(FitPolicy::BestFit, false, ReplayPath::Oracle, "bestfit/oracle");
  CheckFF(FitPolicy::BestFit, false, ReplayPath::Compiled,
          "bestfit/compiled");
  CheckFF(FitPolicy::BestFit, true, ReplayPath::Compiled,
          "bestfit-bins/compiled");

  Report.merge(shadowCheckBsd(Trace, BsdAllocator::Config(),
                              ReplayPath::Oracle),
               "bsd/oracle");
  Report.merge(shadowCheckBsd(Trace, BsdAllocator::Config(),
                              ReplayPath::Compiled),
               "bsd/compiled");
  BsdAllocator::Config BitmapConfig;
  BitmapConfig.FreeList = BsdAllocator::FreeListKind::Bitmap;
  Report.merge(shadowCheckBsd(Trace, BitmapConfig, ReplayPath::Oracle),
               "bsd-bitmap/oracle");
  Report.merge(shadowCheckBsd(Trace, BitmapConfig, ReplayPath::Compiled),
               "bsd-bitmap/compiled");

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  Profile Prof = profileTrace(Trace, Policy);
  SiteDatabase DB = trainDatabase(Prof, Policy);
  Report.merge(shadowCheckArena(Trace, DB, ArenaAllocator::Config(),
                                ReplayPath::Oracle),
               "arena/oracle");
  Report.merge(shadowCheckArena(Trace, DB, ArenaAllocator::Config(),
                                ReplayPath::Compiled),
               "arena/compiled");

  OnlinePredictorConfig OnlineConfig;
  OnlineConfig.WarmStart = &DB;
  Report.merge(shadowCheckArenaOnline(Trace, DB, OnlineConfig,
                                      ArenaAllocator::Config(),
                                      ReplayPath::Oracle),
               "arena-online/oracle");
  Report.merge(shadowCheckArenaOnline(Trace, DB, OnlineConfig,
                                      ArenaAllocator::Config(),
                                      ReplayPath::Compiled),
               "arena-online/compiled");

  ClassDatabase CDB = trainClassDatabase(Prof, Policy, {4096, 32 * 1024});
  Report.merge(shadowCheckMultiArena(Trace, CDB, ReplayPath::Oracle),
               "multiarena/oracle");
  Report.merge(shadowCheckMultiArena(Trace, CDB, ReplayPath::Compiled),
               "multiarena/compiled");

  Report.merge(diffReplayPaths(Trace), "schedule");
  return Report;
}
