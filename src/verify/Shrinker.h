//===- verify/Shrinker.h - Violating-trace minimization ---------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging minimization of violating traces.  When the fuzzer
/// finds a trace the shadow heap rejects, the shrinker reduces it to a
/// small witness: ddmin-style chunk removal over the record list (largest
/// chunks first, halving down to single records), then per-record field
/// simplification (canonical sizes, zero lifetimes, shared chains).  Every
/// candidate is re-tested with the caller's failure predicate, so the
/// result is the smallest trace found that still fails.  Minimized
/// witnesses are written to tests/corpus/ and replayed forever as ctest
/// cases.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_VERIFY_SHRINKER_H
#define LIFEPRED_VERIFY_SHRINKER_H

#include "trace/AllocationTrace.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lifepred {

/// Returns true when a candidate trace still exhibits the failure being
/// minimized (e.g. !shadowCheckAll(T).clean()).
using FailurePredicate = std::function<bool(const AllocationTrace &)>;

/// Shrink-run statistics.
struct ShrinkStats {
  uint64_t Probes = 0;     ///< Predicate evaluations performed.
  uint64_t Reductions = 0; ///< Candidates adopted (strictly simpler).
  size_t FinalRecords = 0; ///< Record count of the result.
};

/// A new trace holding \p Source's records at \p Indices (in order), with
/// only the chains those records use, re-interned densely.
AllocationTrace cloneTraceSubset(const AllocationTrace &Source,
                                 const std::vector<uint32_t> &Indices);

/// Minimizes \p Seed under \p StillFails.  \p Seed must fail the
/// predicate; the result also fails it and has no removable record or
/// simplifiable field (within the \p MaxProbes budget).  Deterministic.
AllocationTrace shrinkTrace(const AllocationTrace &Seed,
                            const FailurePredicate &StillFails,
                            uint64_t MaxProbes = 2000,
                            ShrinkStats *Stats = nullptr);

/// Writes \p Trace as \p Dir/\p Stem.lptrace (creating \p Dir if needed).
/// Fills \p PathOut with the path written; false on I/O failure.
bool writeCorpusTrace(const AllocationTrace &Trace, const std::string &Dir,
                      const std::string &Stem, std::string &PathOut);

} // namespace lifepred

#endif // LIFEPRED_VERIFY_SHRINKER_H
