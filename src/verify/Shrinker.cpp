//===- verify/Shrinker.cpp - Violating-trace minimization ------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "verify/Shrinker.h"

#include "trace/TraceBinaryIO.h"

#include <filesystem>
#include <fstream>
#include <numeric>

using namespace lifepred;

AllocationTrace
lifepred::cloneTraceSubset(const AllocationTrace &Source,
                           const std::vector<uint32_t> &Indices) {
  AllocationTrace Out;
  Out.reserveRecords(Indices.size());
  // Re-intern only the chains the kept records use; internChain dedups, so
  // the mapping falls out of the existing mechanism.
  std::vector<uint32_t> ChainMap(Source.chainCount(), ~uint32_t(0));
  for (uint32_t Index : Indices) {
    AllocRecord Record = Source.records()[Index];
    uint32_t &Mapped = ChainMap[Record.ChainIndex];
    if (Mapped == ~uint32_t(0))
      Mapped = Out.internChain(Source.chain(Record.ChainIndex));
    Record.ChainIndex = Mapped;
    Out.append(Record);
  }
  Out.setNonHeapRefs(Source.nonHeapRefs());
  return Out;
}

namespace {

/// Tests a candidate, charging the probe budget.
bool probe(const FailurePredicate &StillFails, const AllocationTrace &T,
           uint64_t MaxProbes, ShrinkStats &Stats) {
  if (Stats.Probes >= MaxProbes)
    return false;
  ++Stats.Probes;
  return StillFails(T);
}

} // namespace

AllocationTrace lifepred::shrinkTrace(const AllocationTrace &Seed,
                                      const FailurePredicate &StillFails,
                                      uint64_t MaxProbes,
                                      ShrinkStats *StatsOut) {
  ShrinkStats Stats;
  std::vector<uint32_t> Kept(Seed.size());
  std::iota(Kept.begin(), Kept.end(), 0);

  // Phase 1: ddmin chunk removal.  Try dropping windows of half the trace,
  // halving the window down to single records; restart at the current
  // window size after any successful removal.
  for (size_t Chunk = std::max<size_t>(Kept.size() / 2, 1); Chunk >= 1;) {
    bool Removed = false;
    for (size_t Start = 0; Start < Kept.size() && Stats.Probes < MaxProbes;) {
      std::vector<uint32_t> Candidate;
      Candidate.reserve(Kept.size());
      size_t End = std::min(Start + Chunk, Kept.size());
      Candidate.insert(Candidate.end(), Kept.begin(),
                       Kept.begin() + Start);
      Candidate.insert(Candidate.end(), Kept.begin() + End, Kept.end());
      if (!Candidate.empty() &&
          probe(StillFails, cloneTraceSubset(Seed, Candidate), MaxProbes,
                Stats)) {
        Kept = std::move(Candidate);
        ++Stats.Reductions;
        Removed = true;
        // Do not advance: the window now covers fresh records.
      } else {
        Start += Chunk;
      }
    }
    if (Chunk == 1 && !Removed)
      break;
    if (!Removed)
      Chunk = std::max<size_t>(Chunk / 2, 1);
  }

  // Phase 2: per-record field simplification on the survivor set.  Each
  // candidate rewrites one field of one record toward its most canonical
  // value; adopted only if the failure persists.
  AllocationTrace Current = cloneTraceSubset(Seed, Kept);
  auto TrySimplify = [&](size_t Index, auto Mutate) {
    if (Stats.Probes >= MaxProbes)
      return;
    AllocRecord Record = Current.records()[Index];
    if (!Mutate(Record))
      return;
    AllocationTrace Rebuilt;
    Rebuilt.reserveRecords(Current.size());
    for (size_t I = 0; I < Current.size(); ++I) {
      AllocRecord R = I == Index ? Record : Current.records()[I];
      R.ChainIndex = Rebuilt.internChain(Current.chain(R.ChainIndex));
      Rebuilt.append(R);
    }
    if (probe(StillFails, Rebuilt, MaxProbes, Stats)) {
      Current = std::move(Rebuilt);
      ++Stats.Reductions;
    }
  };

  for (size_t I = 0; I < Current.size(); ++I) {
    TrySimplify(I, [](AllocRecord &R) {
      if (R.Size == 8)
        return false;
      R.Size = 8;
      return true;
    });
    TrySimplify(I, [](AllocRecord &R) {
      if (R.Lifetime == 0)
        return false;
      R.Lifetime = 0;
      return true;
    });
    TrySimplify(I, [&Current](AllocRecord &R) {
      uint32_t First = Current.records()[0].ChainIndex;
      if (R.ChainIndex == First)
        return false;
      R.ChainIndex = First;
      return true;
    });
    TrySimplify(I, [](AllocRecord &R) {
      if (R.Refs == 0 && R.TypeId == 0)
        return false;
      R.Refs = 0;
      R.TypeId = 0;
      return true;
    });
  }

  Stats.FinalRecords = Current.size();
  if (StatsOut)
    *StatsOut = Stats;
  return Current;
}

bool lifepred::writeCorpusTrace(const AllocationTrace &Trace,
                                const std::string &Dir,
                                const std::string &Stem,
                                std::string &PathOut) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return false;
  PathOut = (std::filesystem::path(Dir) / (Stem + ".lptrace")).string();
  std::ofstream OS(PathOut, std::ios::binary);
  if (!OS)
    return false;
  writeTraceBinary(Trace, OS);
  return static_cast<bool>(OS);
}
