//===- verify/TraceFuzzer.h - Generative trace fuzzing ----------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, deterministic generation of adversarial allocation traces from
/// composable profiles, each tuned to stress a different allocator
/// mechanism: size spikes (split/coalesce churn and oversize routing),
/// death-clock collisions (mass frees at one byte clock), pathological
/// fragmentation (boundary sizes with alternating lifetimes), allocation-
/// site churn (profiling/training under thousands of one-shot chains),
/// arena-hostile bursts, and never-freed immortals.  A generated trace is
/// pushed through shadowCheckAll; any reported violation is a bug in an
/// allocator, a replay path, or the prediction compilation.
///
/// The binary round-trip fuzzer mutates serialized traces (truncation, bit
/// flips, absurd header counts, trailing garbage) and requires the reader
/// to either reject cleanly or return a structurally valid trace — never
/// crash, never hand back out-of-range chain indices.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_VERIFY_TRACEFUZZER_H
#define LIFEPRED_VERIFY_TRACEFUZZER_H

#include "trace/AllocationTrace.h"
#include "verify/ShadowSim.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace lifepred {

/// Trace-shape families the generator composes.
enum class FuzzProfile {
  Uniform,        ///< Baseline: mixed sizes and lifetimes, a few immortals.
  SizeSpike,      ///< Tiny objects with rare huge spikes and zero-size runs.
  DeathCollision, ///< Cohorts engineered to die at the same byte clock.
  Fragmentation,  ///< Boundary sizes, alternating lifetimes: split/coalesce.
  SiteChurn,      ///< A fresh deep call chain for nearly every record.
  Oversize,       ///< Short-lived objects larger than an arena.
  Immortal,       ///< A quarter of all objects never freed.
  Burst,          ///< Alternating arena-friendly and arena-pinning phases.
  Mixed,          ///< Concatenation of sub-traces from the other profiles.
  GrandChallenge, ///< The billion-event bench's synthetic workload: steady
                  ///< small-object churn over the full bucket spectrum with
                  ///< rare size spikes, bounded lifetimes, no immortals —
                  ///< every segment is self-contained, so schedule segments
                  ///< concatenate with empty live-in seams.  Shared by
                  ///< bench_sim_throughput's grand-challenge mode and the
                  ///< fuzzer so there is exactly one trace synthesizer.
};

/// Stable lowercase name of \p Profile (CLI and report key).
const char *profileName(FuzzProfile Profile);

/// All profiles, in declaration order.
std::vector<FuzzProfile> allProfiles();

/// Parses a profile name; std::nullopt if unknown.
std::optional<FuzzProfile> profileByName(const std::string &Name);

/// Generates a deterministic trace of about \p Objects records shaped by
/// \p Profile.  Same (profile, seed, objects) => byte-identical trace.
AllocationTrace generateFuzzTrace(FuzzProfile Profile, uint64_t Seed,
                                  size_t Objects);

/// Generates one trace and runs it through shadowCheckAll.
ShadowReport runFuzzCase(FuzzProfile Profile, uint64_t Seed, size_t Objects);

/// Statistics of one binary round-trip fuzz batch.
struct BinaryFuzzStats {
  uint64_t Cases = 0;    ///< Mutants fed to the reader.
  uint64_t Accepted = 0; ///< Mutants the reader parsed into a trace.
  uint64_t Rejected = 0; ///< Mutants the reader rejected cleanly.
};

/// Serializes \p Cases small traces, mutates each (truncation, bit flips,
/// spliced header counts, trailing garbage), and feeds the mutants to
/// readTraceBinary.  Returns false and fills \p Error if a pristine
/// round-trip is not value-identical or an accepted mutant fails
/// structural validation.
bool fuzzBinaryRoundTrip(uint64_t Seed, size_t Cases, std::string &Error,
                         BinaryFuzzStats *Stats = nullptr);

} // namespace lifepred

#endif // LIFEPRED_VERIFY_TRACEFUZZER_H
