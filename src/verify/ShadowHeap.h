//===- verify/ShadowHeap.h - Lockstep allocator reference models -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shadow-heap reference models that lockstep-check the four allocator
/// families step by step.  Each shadow consumes the observed (size,
/// address) stream of an allocator under test, runs an *independent*
/// reference model of the same policy beside it, and reports any
/// divergence to a ViolationLog:
///
///  - placement-policy conformance (first fit / best fit / BSD bucket /
///    arena bump addresses predicted exactly by the reference model);
///  - live-block address disjointness (an interval set of payload spans);
///  - byte conservation (liveBytes / heapBytes / free-block accounting
///    cross-checked against the model every operation);
///  - coalescing idempotence, free-list order, and rover/bin integrity
///    (the allocator's own auditInvariants, invoked at a stride);
///  - arena live-counter, generation, and batch-reset consistency;
///  - predicted-class routing (arena vs general placement must match the
///    prediction handed to the allocator).
///
/// The shadows are deliberately built on *different* data structures than
/// the production allocators (the map/set LegacyFirstFitAllocator and
/// small hand-written models), so a shared bug must be introduced twice
/// to go unnoticed.  After the first placement divergence a shadow goes
/// passive (model state is no longer meaningful) but keeps the
/// model-free span checks running.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_VERIFY_SHADOWHEAP_H
#define LIFEPRED_VERIFY_SHADOWHEAP_H

#include "alloc/ArenaAllocator.h"
#include "alloc/BsdAllocator.h"
#include "alloc/LegacyFirstFitAllocator.h"
#include "alloc/MultiArenaAllocator.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace lifepred {

/// One invariant violation observed during a shadow-checked replay.
struct Violation {
  uint64_t Op = 0;        ///< 0-based index of the offending event.
  std::string Invariant;  ///< Short kebab-case invariant id.
  std::string Detail;     ///< Human-readable specifics.
};

/// Collects violations; records the first MaxRecorded in full and counts
/// the rest, so a totally broken run stays cheap to diagnose.
class ViolationLog {
public:
  explicit ViolationLog(size_t MaxRecorded = 16) : MaxRecorded(MaxRecorded) {}

  void add(uint64_t Op, std::string Invariant, std::string Detail) {
    ++Total;
    if (Entries.size() < MaxRecorded)
      Entries.push_back({Op, std::move(Invariant), std::move(Detail)});
  }

  bool clean() const { return Total == 0; }
  uint64_t total() const { return Total; }
  const std::vector<Violation> &violations() const { return Entries; }

private:
  std::vector<Violation> Entries;
  size_t MaxRecorded;
  uint64_t Total = 0;
};

/// Address-interval set of live payload spans; detects overlap between
/// any two live objects regardless of which allocator placed them.
/// Zero-size payloads occupy one byte so identical bump addresses are
/// still flagged.
class LiveSpanSet {
public:
  /// Inserts [Addr, Addr + max(Size, 1)); reports overlap to \p Log.
  void insert(ViolationLog &Log, uint64_t Op, uint64_t Addr, uint32_t Size);

  /// Erases the span starting at \p Addr; reports an unknown address to
  /// \p Log.  Returns false when the address was not live.
  bool erase(ViolationLog &Log, uint64_t Op, uint64_t Addr);

  size_t size() const { return Spans.size(); }

private:
  std::map<uint64_t, uint64_t> Spans; ///< start -> end (exclusive).
};

/// Lockstep checker for FirstFitAllocator (any FitPolicy): runs the
/// map/set LegacyFirstFitAllocator as the placement oracle.
class ShadowFirstFit {
public:
  /// \p Observed may be null for stream-only conformance checking (the
  /// mutation tests drive the shadow with a hand-made address stream).
  /// \p ReplicaConfig configures the reference model — normally the
  /// observed allocator's own config; a deliberate mismatch is the
  /// mutation-test hook.  \p AuditStride is how often (in operations) the
  /// observed allocator's auditInvariants runs; 0 = only at finish().
  ShadowFirstFit(const FirstFitAllocator *Observed, ViolationLog &Log,
                 FirstFitAllocator::Config ReplicaConfig,
                 uint64_t AuditStride = 256);

  /// Convenience: replica config taken from \p Observed.
  ShadowFirstFit(const FirstFitAllocator &Observed, ViolationLog &Log,
                 uint64_t AuditStride = 256)
      : ShadowFirstFit(&Observed, Log, Observed.config(), AuditStride) {}

  void onAlloc(uint32_t Size, uint64_t Addr);
  void onFree(uint64_t Addr);

  /// End-of-replay checks: counters, peaks, and a final audit.
  void finish();

private:
  void crossCheck();

  const FirstFitAllocator *Observed;
  ViolationLog &Log;
  LegacyFirstFitAllocator Replica;
  LiveSpanSet Spans;
  std::unordered_map<uint64_t, uint32_t> Payloads;
  uint64_t AuditStride;
  uint64_t Op = 0;
  bool Diverged = false;
};

/// Lockstep checker for BsdAllocator: an independent Kingsley bucket
/// model (vectors of parked addresses, exact refill/pop order) predicts
/// every address.  Honours the observed allocator's free-list policy: in
/// FreeListKind::Bitmap mode the model keeps each class's parked blocks
/// in an ordered std::set and predicts the *minimum* address — a
/// deliberately different structure from the production bitmap, so the
/// lowest-free-address policy is verified independently.
class ShadowBsd {
public:
  ShadowBsd(const BsdAllocator &Observed, ViolationLog &Log,
            uint64_t AuditStride = 256);

  void onAlloc(uint32_t Size, uint64_t Addr);
  void onFree(uint64_t Addr);
  void finish();

private:
  unsigned bucketFor(uint32_t Size) const;
  uint64_t modelAllocate(uint32_t Size);
  void crossCheck();

  const BsdAllocator *Observed;
  ViolationLog &Log;
  BsdAllocator::Config Cfg;
  BsdAllocator::Counters Model;
  std::vector<std::vector<uint64_t>> Buckets;
  /// Ordered parked sets (FreeListKind::Bitmap mode only).
  std::vector<std::set<uint64_t>> OrderedBuckets;
  std::unordered_map<uint64_t, uint32_t> Payloads;
  LiveSpanSet Spans;
  uint64_t HeapEnd;
  uint64_t MaxHeap = 0;
  uint64_t LiveBytesModel = 0;
  uint64_t AuditStride;
  uint64_t Op = 0;
  bool Diverged = false;
};

/// Lockstep checker for ArenaAllocator: an independent model of the
/// routing state machine (bump pointers, live counts, reset scan) plus a
/// legacy replica of the general heap predicts every address, and the
/// observed allocator's per-arena live counts / generations are
/// cross-checked against the model.  The prediction bit handed to the
/// allocator is replayed here, so predicted-class routing is verified
/// end to end.
class ShadowArena {
public:
  ShadowArena(const ArenaAllocator &Observed, ViolationLog &Log,
              uint64_t AuditStride = 256);

  void onAlloc(uint32_t Size, bool PredictedShortLived, uint64_t Addr);
  void onFree(uint64_t Addr);
  void finish();

private:
  struct ModelArena {
    uint64_t AllocPtr = 0;
    uint32_t LiveCount = 0;
    uint64_t Generation = 0;
  };

  uint64_t arenaBytes() const { return Cfg.AreaBytes / Cfg.ArenaCount; }
  bool isArenaAddress(uint64_t Addr) const {
    return Addr >= Cfg.ArenaBase && Addr < Cfg.ArenaBase + Cfg.AreaBytes;
  }
  uint64_t modelAllocate(uint32_t Size, bool Predicted);
  uint64_t bump(uint32_t Size, uint64_t Need);
  void crossCheck();

  const ArenaAllocator *Observed;
  ViolationLog &Log;
  ArenaAllocator::Config Cfg;
  ArenaAllocator::Counters Model;
  std::vector<ModelArena> Arenas;
  unsigned Current = 0;
  LegacyFirstFitAllocator GeneralReplica;
  std::unordered_map<uint64_t, uint32_t> ArenaPayloads;
  std::unordered_map<uint64_t, uint32_t> GeneralPayloads;
  LiveSpanSet Spans;
  uint64_t ArenaLive = 0;
  uint64_t MaxArenaLive = 0;
  uint64_t AuditStride;
  uint64_t Op = 0;
  bool Diverged = false;
};

/// Lockstep checker for MultiArenaAllocator: the banded analogue of
/// ShadowArena, replaying the predicted band per allocation.
class ShadowMultiArena {
public:
  ShadowMultiArena(const MultiArenaAllocator &Observed, ViolationLog &Log,
                   uint64_t AuditStride = 256);

  void onAlloc(uint32_t Size, uint8_t Band, uint64_t Addr);
  void onFree(uint64_t Addr);
  void finish();

private:
  struct ModelArena {
    uint64_t AllocPtr = 0;
    uint32_t LiveCount = 0;
    uint64_t Generation = 0;
  };

  struct ModelBand {
    MultiArenaAllocator::BandConfig Cfg;
    uint64_t Base = 0;
    std::vector<ModelArena> Arenas;
    unsigned Current = 0;
    MultiArenaAllocator::BandCounters Stats;

    uint64_t arenaBytes() const { return Cfg.AreaBytes / Cfg.ArenaCount; }
  };

  uint8_t bandForAddress(uint64_t Addr) const;
  uint64_t modelAllocate(uint32_t Size, uint8_t Band);
  uint64_t bump(ModelBand &Band, uint32_t Size, uint64_t Need);
  void crossCheck();

  const MultiArenaAllocator *Observed;
  ViolationLog &Log;
  std::vector<ModelBand> Bands;
  LegacyFirstFitAllocator GeneralReplica;
  uint64_t ModelGeneralAllocs = 0;
  uint64_t ModelGeneralBytes = 0;
  std::unordered_map<uint64_t, uint32_t> ArenaPayloads;
  std::unordered_map<uint64_t, uint32_t> GeneralPayloads;
  LiveSpanSet Spans;
  uint64_t ArenaLive = 0;
  uint64_t MaxArenaLive = 0;
  uint64_t AuditStride;
  uint64_t Op = 0;
  bool Diverged = false;
};

} // namespace lifepred

#endif // LIFEPRED_VERIFY_SHADOWHEAP_H
