//===- verify/ShadowSim.h - Shadow-checked trace replays --------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drivers that replay an AllocationTrace through each allocator family
/// under a ShadowHeap oracle, over either replay path — the priority-queue
/// reference oracle (replayTrace) or the compiled flat schedule
/// (CompiledTrace/forEachEvent).  The arena drivers resolve predictions
/// independently per path (direct database probes on the oracle path,
/// PredictedShortBits / compileBands on the compiled path), so a shadow run
/// over both paths doubles as a differential test of the prediction
/// compilation.  shadowCheckAll composes every family, policy, and path
/// into one verdict; it is the fuzzer's per-trace test function.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_VERIFY_SHADOWSIM_H
#define LIFEPRED_VERIFY_SHADOWSIM_H

#include "core/LifetimeClassifier.h"
#include "core/SiteDatabase.h"
#include "runtime/OnlinePredictor.h"
#include "verify/ShadowHeap.h"

#include <string>
#include <vector>

namespace lifepred {

class AllocationTrace;

/// Which event-interleaving engine drives a shadow-checked replay.
enum class ReplayPath {
  Oracle,   ///< replayTrace's priority-queue reference interleaving.
  Compiled, ///< CompiledTrace's flat schedule (the production path).
};

/// Outcome of one or more shadow-checked replays.
struct ShadowReport {
  uint64_t Events = 0;          ///< Alloc + free events replayed.
  uint64_t Checks = 0;          ///< Shadow-checked replays performed.
  uint64_t ViolationCount = 0;  ///< Total violations across all checks.
  std::vector<Violation> Violations; ///< First few, with check context.

  bool clean() const { return ViolationCount == 0; }

  /// Folds \p Other into this report, prefixing its recorded violations
  /// with \p Context (e.g. "firstfit/compiled").
  void merge(const ShadowReport &Other, const std::string &Context);

  /// One-line human-readable verdict.
  std::string summary() const;
};

/// Structural validation of a trace: every record's chain index must be in
/// range.  Traces read from (possibly corrupt) external bytes go through
/// this before any replay touches them.
bool validateTrace(const AllocationTrace &Trace, std::string &Error);

/// Replays \p Trace through a FirstFitAllocator under ShadowFirstFit.
ShadowReport shadowCheckFirstFit(const AllocationTrace &Trace,
                                 FirstFitAllocator::Config Config,
                                 ReplayPath Path);

/// Replays \p Trace through a BsdAllocator under ShadowBsd.
ShadowReport shadowCheckBsd(const AllocationTrace &Trace,
                            BsdAllocator::Config Config, ReplayPath Path);

/// Replays \p Trace through an ArenaAllocator under ShadowArena, routing
/// by \p DB's predictions.
ShadowReport shadowCheckArena(const AllocationTrace &Trace,
                              const SiteDatabase &DB,
                              ArenaAllocator::Config Config, ReplayPath Path);

/// Replays \p Trace through an ArenaAllocator under ShadowArena with
/// *online* routing.  The oracle path drives a live OnlinePredictor
/// causally — advanceClock / routeShort at each birth, observeDeath at
/// each death — and afterwards cross-checks every birth route against the
/// frozen compileOnlineRoutes plan (the routes-are-a-pure-function-of-the-
/// event-stream invariant).  The compiled path consumes the frozen plan
/// through DynamicRouteBits, exactly as the production sharded replays do.
/// \p OnlineConfig's WindowBytes, when 0, resolves to the trace's
/// automatic drift-window width on both paths.
ShadowReport shadowCheckArenaOnline(const AllocationTrace &Trace,
                                    const SiteDatabase &DB,
                                    OnlinePredictorConfig OnlineConfig,
                                    ArenaAllocator::Config Config,
                                    ReplayPath Path);

/// Replays \p Trace through a MultiArenaAllocator under ShadowMultiArena,
/// routing by \p DB's band classifications.  The allocator is configured
/// with one band per database threshold.
ShadowReport shadowCheckMultiArena(const AllocationTrace &Trace,
                                   const ClassDatabase &DB, ReplayPath Path);

/// Compares the oracle and compiled event streams of \p Trace event by
/// event: same kind, object id, and clock at every position, same final
/// clock.  The schedule-differential invariant.
ShadowReport diffReplayPaths(const AllocationTrace &Trace);

/// The fuzzer's per-trace test function: structural validation, then every
/// allocator family x fit policy x replay path under its shadow, a trained
/// arena and multi-arena run, and the replay-path differential.
ShadowReport shadowCheckAll(const AllocationTrace &Trace);

} // namespace lifepred

#endif // LIFEPRED_VERIFY_SHADOWSIM_H
