//===- runtime/Retrainer.h - Online route compile pass ----------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges the inherently *causal* online predictor into the project's
/// jobs-invariant replay discipline.  An online model must see deaths in
/// event order, so it cannot run inside a sharded replay directly; instead
/// this pass drives an OnlinePredictor over the event stream **once,
/// sequentially** — O(events), far cheaper than any allocator replay —
/// and materializes the outcome as an immutable per-record route plan:
/// one routed-short bit per trace record (the route the record's site held
/// at the record's birth), plus the full retrain timeline and per-site
/// forensics.  Every replay shape — oracle, compiled, batched, sharded,
/// streamed — then consumes the frozen artifact, and the merged telemetry
/// is byte-identical at any worker count because the plan is a pure
/// function of the event stream (DESIGN.md §17).
///
/// Two drivers produce the plan: compileOnlineRoutes walks the compiled
/// flat schedule; replayOnlineRoutesOracle drives the replayTrace
/// priority-queue oracle.  The two event streams are bit-identical by the
/// CompiledTrace contract, so the plans must match exactly — the
/// differential spine of tests/online_predictor_test.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_RUNTIME_RETRAINER_H
#define LIFEPRED_RUNTIME_RETRAINER_H

#include "runtime/OnlinePredictor.h"
#include "trace/AllocationTrace.h"
#include "trace/CompiledTrace.h"

#include <cstdint>
#include <vector>

namespace lifepred {

/// Confusion-matrix score of one route assignment over one trace, in the
/// paper's terms (an object is actually short-lived when its traced
/// lifetime is within the threshold; never-freed objects are long).
struct RouteScore {
  uint64_t TrueShort = 0;
  uint64_t FalseShort = 0;
  uint64_t MissedShort = 0;
  uint64_t TrueLong = 0;

  uint64_t total() const {
    return TrueShort + FalseShort + MissedShort + TrueLong;
  }
  int64_t accuracyPpm() const {
    uint64_t Total = total();
    return Total == 0 ? -1
                      : static_cast<int64_t>((TrueShort + TrueLong) *
                                             1000000 / Total);
  }
  double accuracyPercent() const {
    uint64_t Total = total();
    return Total == 0 ? 0.0
                      : 100.0 * static_cast<double>(TrueShort + TrueLong) /
                            static_cast<double>(Total);
  }

  bool operator==(const RouteScore &Other) const = default;
};

/// The immutable artifact of one online-prediction pass: per-record birth
/// routes plus the retrain forensics.  Wrap RouteWords in a
/// sim/CompiledPrediction.h DynamicRouteBits to feed the simulators.
struct OnlineRoutePlan {
  /// One bit per trace record: routed short-lived at birth.
  std::vector<uint64_t> RouteWords;
  size_t Records = 0;
  /// Applied re-routes, in (window, site-key) order.
  std::vector<RetrainEvent> Retrains;
  /// Final per-site model state, key-sorted.
  std::vector<OnlineSiteSnapshot> Sites;
  uint64_t WindowBytes = 0;
  uint64_t Threshold = 0;
  uint32_t Epochs = 0;       ///< Final routing-table epoch.
  uint64_t SitesSeen = 0;
  uint64_t DeathsObserved = 0;

  bool testShort(uint64_t Id) const {
    return (RouteWords[Id >> 6] >> (Id & 63)) & 1;
  }

  bool operator==(const OnlineRoutePlan &Other) const = default;
};

/// The window width an online replay of a schedule ending at \p EndClock
/// uses when \p Config leaves WindowBytes automatic: the DriftObservatory
/// auto width, so the online CUSUM sees the same windows the offline
/// drift report scores.
uint64_t resolveOnlineWindowBytes(const OnlinePredictorConfig &Config,
                                  uint64_t EndClock);

/// Drives an OnlinePredictor over \p Compiled's flat event schedule (site
/// keys required) and returns the frozen route plan.
OnlineRoutePlan compileOnlineRoutes(const CompiledTrace &Compiled,
                                    OnlinePredictorConfig Config);

/// Oracle-path twin of compileOnlineRoutes: drives the predictor from the
/// replayTrace priority-queue oracle under \p Policy.  Produces an
/// identical plan (differential-tested).
OnlineRoutePlan replayOnlineRoutesOracle(const AllocationTrace &Trace,
                                         const SiteKeyPolicy &Policy,
                                         OnlinePredictorConfig Config);

/// Scores any route assignment over \p Trace against \p Threshold.
/// \p RoutedShort maps a record id to its routed-short verdict — wrap a
/// PredictedShortBits, an OnlineRoutePlan, or an oracle lambda.
template <typename RouteFn>
RouteScore scoreRoutes(const AllocationTrace &Trace, uint64_t Threshold,
                       RouteFn &&RoutedShort) {
  RouteScore Score;
  const std::vector<AllocRecord> &Records = Trace.records();
  for (size_t Id = 0; Id < Records.size(); ++Id) {
    bool Predicted = RoutedShort(Id);
    bool ActuallyShort = Records[Id].Lifetime <= Threshold;
    if (Predicted)
      ++(ActuallyShort ? Score.TrueShort : Score.FalseShort);
    else
      ++(ActuallyShort ? Score.MissedShort : Score.TrueLong);
  }
  return Score;
}

} // namespace lifepred

#endif // LIFEPRED_RUNTIME_RETRAINER_H
