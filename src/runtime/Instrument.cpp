//===- runtime/Instrument.cpp - Function instrumentation -------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Instrument.h"

#include <mutex>
#include <string>
#include <unordered_map>

using namespace lifepred;

FunctionId lifepred::runtimeFunctionId(const char *Name) {
  static std::mutex Lock;
  static std::unordered_map<std::string, FunctionId> Ids;
  std::lock_guard<std::mutex> Guard(Lock);
  auto [It, Inserted] =
      Ids.try_emplace(Name, static_cast<FunctionId>(Ids.size()));
  return It->second;
}
