//===- runtime/Retrainer.cpp - Online route compile pass -------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Retrainer.h"

#include "support/Assert.h"
#include "telemetry/DriftObservatory.h"
#include "trace/TraceReplayer.h"

using namespace lifepred;

uint64_t
lifepred::resolveOnlineWindowBytes(const OnlinePredictorConfig &Config,
                                   uint64_t EndClock) {
  return Config.WindowBytes != 0 ? Config.WindowBytes
                                 : DriftObservatory::autoWindowBytes(EndClock);
}

namespace {

/// Shared per-event logic of the two drivers: route at birth (recording
/// the bit), observe at death under the birth route.  The route words
/// double as the birth-route memo the death observation needs.
class RoutePlanBuilder {
public:
  RoutePlanBuilder(OnlinePredictor &Predictor, size_t Records)
      : Predictor(Predictor) {
    Words.assign((Records + 63) / 64, 0);
  }

  void alloc(uint64_t Id, SiteKey Key, uint64_t Clock) {
    Predictor.advanceClock(Clock);
    if (Predictor.routeShort(Key))
      Words[Id >> 6] |= uint64_t(1) << (Id & 63);
  }

  void free(uint64_t Id, SiteKey Key, uint64_t Lifetime, uint64_t Clock) {
    Predictor.advanceClock(Clock);
    bool RoutedShort = (Words[Id >> 6] >> (Id & 63)) & 1;
    Predictor.observeDeath(Key, RoutedShort, Lifetime);
  }

  void end(uint64_t Clock) { Predictor.finish(Clock); }

  std::vector<uint64_t> takeWords() { return std::move(Words); }

private:
  OnlinePredictor &Predictor;
  std::vector<uint64_t> Words;
};

/// forEachEvent consumer over the compiled schedule.
class CompiledRouteConsumer : public ScheduleConsumer<CompiledRouteConsumer> {
public:
  CompiledRouteConsumer(RoutePlanBuilder &Builder, const AllocationTrace &Trace,
                        const std::vector<SiteKey> &Keys)
      : Builder(Builder), Records(Trace.records().data()), Keys(Keys.data()) {}

  void onAlloc(uint32_t Id, uint64_t Clock) {
    Builder.alloc(Id, Keys[Id], Clock);
  }
  void onFree(uint32_t Id, uint64_t Clock) {
    Builder.free(Id, Keys[Id], Records[Id].Lifetime, Clock);
  }
  void onEnd(uint64_t Clock) { Builder.end(Clock); }

private:
  RoutePlanBuilder &Builder;
  const AllocRecord *Records;
  const SiteKey *Keys;
};

/// replayTrace consumer: the oracle-path twin.
class OracleRouteConsumer : public TraceConsumer {
public:
  OracleRouteConsumer(RoutePlanBuilder &Builder, const AllocationTrace &Trace,
                      const SiteKeyPolicy &Policy)
      : Builder(Builder), Trace(Trace), Policy(Policy) {}

  void onAlloc(uint64_t Id, const AllocRecord &Record,
               uint64_t Clock) override {
    Builder.alloc(Id, keyFor(Record), Clock);
  }
  void onFree(uint64_t Id, const AllocRecord &Record,
              uint64_t Clock) override {
    Builder.free(Id, keyFor(Record), Record.Lifetime, Clock);
  }
  void onEnd(uint64_t Clock) override { Builder.end(Clock); }

private:
  SiteKey keyFor(const AllocRecord &Record) const {
    return siteKey(Policy, Trace.chain(Record.ChainIndex), Record.Size,
                   Record.TypeId);
  }

  RoutePlanBuilder &Builder;
  const AllocationTrace &Trace;
  const SiteKeyPolicy &Policy;
};

OnlineRoutePlan sealPlan(OnlinePredictor &Predictor, RoutePlanBuilder &Builder,
                         size_t Records) {
  OnlineRoutePlan Plan;
  Plan.RouteWords = Builder.takeWords();
  Plan.Records = Records;
  Plan.Retrains = Predictor.retrains();
  Plan.Sites = Predictor.snapshot();
  Plan.WindowBytes = Predictor.windowBytes();
  Plan.Threshold = Predictor.threshold();
  Plan.Epochs = Predictor.epoch();
  Plan.SitesSeen = Predictor.siteCount();
  Plan.DeathsObserved = Predictor.deathCount();
  return Plan;
}

} // namespace

OnlineRoutePlan lifepred::compileOnlineRoutes(const CompiledTrace &Compiled,
                                              OnlinePredictorConfig Config) {
  assert(Compiled.hasKeys() && "compile the trace with a key policy");
  Config.WindowBytes =
      resolveOnlineWindowBytes(Config, Compiled.schedule().endClock());
  OnlinePredictor Predictor(Config);
  RoutePlanBuilder Builder(Predictor, Compiled.trace().size());
  CompiledRouteConsumer Consumer(Builder, Compiled.trace(),
                                 Compiled.recordKeys());
  forEachEvent(Compiled.schedule(), Consumer);
  return sealPlan(Predictor, Builder, Compiled.trace().size());
}

OnlineRoutePlan
lifepred::replayOnlineRoutesOracle(const AllocationTrace &Trace,
                                   const SiteKeyPolicy &Policy,
                                   OnlinePredictorConfig Config) {
  // The oracle's final clock equals the schedule's end clock (total
  // allocated bytes), so the auto window width matches the compiled pass.
  Config.WindowBytes = resolveOnlineWindowBytes(Config, Trace.totalBytes());
  OnlinePredictor Predictor(Config);
  RoutePlanBuilder Builder(Predictor, Trace.size());
  OracleRouteConsumer Consumer(Builder, Trace, Policy);
  replayTrace(Trace, Consumer);
  return sealPlan(Predictor, Builder, Trace.size());
}
