//===- runtime/RuntimeProfiler.h - In-process profiling ---------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online half of the system: records real allocations and frees made
/// by an instrumented application (see runtime/Instrument.h), measures
/// lifetimes on the bytes-allocated clock, attributes them to allocation
/// sites captured from the shadow stack, and trains a SiteDatabase that a
/// later run feeds to PredictingHeap.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_RUNTIME_RUNTIMEPROFILER_H
#define LIFEPRED_RUNTIME_RUNTIMEPROFILER_H

#include "core/Profiler.h"
#include "core/Trainer.h"
#include "telemetry/LifetimeAudit.h"

#include <cstdint>
#include <unordered_map>

namespace lifepred {

/// Records allocation lifetimes of a live process run.
class RuntimeProfiler {
public:
  /// Profiles under \p Policy (LastN with length 4 models the paper's
  /// production configuration).
  explicit RuntimeProfiler(
      SiteKeyPolicy Policy = SiteKeyPolicy::lastN(4))
      : Policy(Policy) {}

  /// Records an allocation of \p Size bytes returning \p Ptr, attributing
  /// it to the calling thread's current shadow-stack chain.
  void recordAlloc(const void *Ptr, uint32_t Size);

  /// Records the free of \p Ptr.  Unknown pointers are ignored (the
  /// allocation may predate profiling).
  void recordFree(const void *Ptr);

  /// Bytes allocated so far (the lifetime clock).
  uint64_t clock() const { return Clock; }

  /// Finalizes the profile: objects still live are treated as dying now.
  /// The profiler can keep recording afterwards, but typical use is once
  /// at the end of the training run.
  Profile takeProfile();

  /// Convenience: finalize and train in one step.
  SiteDatabase train(const TrainingOptions &Options = {});

  /// Live-database probes for the drift observatory: per-site lifetime
  /// quantiles of everything profiled so far, keyed by the truncated
  /// uint32 site key PredictingHeap feeds its DriftSampleLog — so a live
  /// run's observed windows can be scored against what the database
  /// trained on (the static-vs-observed comparison).  Non-destructive,
  /// unlike takeProfile(); still-live objects are not counted.
  TrainedQuantileMap quantileProbes() const;

private:
  struct LiveObject {
    SiteKey Key;
    uint64_t BirthClock;
    uint32_t Size;
  };

  SiteKeyPolicy Policy;
  uint64_t Clock = 0;
  std::unordered_map<const void *, LiveObject> Live;
  SiteTable Sites;
  uint64_t TotalObjects = 0;
  uint64_t TotalBytes = 0;
};

} // namespace lifepred

#endif // LIFEPRED_RUNTIME_RUNTIMEPROFILER_H
