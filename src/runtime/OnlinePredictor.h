//===- runtime/OnlinePredictor.h - Online per-site lifetime model -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *reaction* half of drift handling: a per-site lifetime model that
/// trains during the run.  Where the offline SiteDatabase is frozen at
/// training time and the DriftObservatory (telemetry/DriftObservatory.h)
/// only *reports* when it went stale, the online predictor keeps a
/// streaming per-SiteKey sketch of observed death lifetimes, runs the same
/// windowed CUSUM the drift report uses — but live, at byte-clock window
/// boundaries — and, when a site's accumulated misprediction evidence
/// trips the decision threshold, retrains that one site's verdict by
/// majority vote over its recent deaths and re-routes it between the
/// short-lived arena and the general heap mid-run.
///
/// The routing table is epoch-versioned: every window that flips at least
/// one site's route bumps the epoch, so consumers (PredictingHeap, the
/// route compile pass in runtime/Retrainer.h) can cheaply detect "the
/// table you cached is stale".
///
/// Determinism contract: the model is a pure function of the sequence of
/// routeShort / observeDeath / advanceClock calls.  All state is integer
/// (ppm accumulators, log2 lifetime histograms — no floating point), site
/// iteration at window close is key-sorted, and retrain decisions happen
/// only at window boundaries.  Feeding the model the replay event stream
/// — which is itself bit-identical between the oracle and compiled paths —
/// therefore yields bit-identical routes, retrain logs, and epochs on
/// every run (the differential battery in tests/online_predictor_test.cpp
/// holds all of this).
///
/// Warm start: constructed over a SiteDatabase, each site's initial route
/// is the database verdict, resolved lazily on first sight (the database's
/// key set is not iterable, and lazy resolution also covers sites the
/// training run never saw).  With ReactToDrift off, routes never change,
/// so a warm-started frozen predictor reproduces the static path
/// bit-for-bit — the anchor of the differential tests.  Cold start (no
/// database) routes every site long until evidence arrives.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_RUNTIME_ONLINEPREDICTOR_H
#define LIFEPRED_RUNTIME_ONLINEPREDICTOR_H

#include "callchain/SiteKey.h"
#include "core/SiteDatabase.h"
#include "core/Trainer.h"

#include <array>
#include <cstdint>
#include <map>
#include <vector>

namespace lifepred {

/// Knobs of one online-prediction run.  The CUSUM defaults mirror
/// DriftReportOptions (telemetry/DriftObservatory.h), so a site the
/// offline drift report would flag is the site the online model retrains.
struct OnlinePredictorConfig {
  /// Warm-start database: initial routes and the classification
  /// threshold.  Null cold-starts every site as long-lived.  The pointee
  /// must outlive the predictor.
  const SiteDatabase *WarmStart = nullptr;
  /// Short-lived threshold (bytes) classifying observed deaths.  Taken
  /// from WarmStart when present.
  uint64_t Threshold = DefaultShortLivedThreshold;
  /// Byte-clock window width for retrain decisions; 0 picks
  /// DefaultWindowBytes (callers replaying a known-length schedule
  /// resolve an automatic width first, see Retrainer.h).
  uint64_t WindowBytes = 0;
  /// When false the model observes and accumulates evidence but never
  /// re-routes — the frozen mode the differential tests pin against the
  /// static path.
  bool ReactToDrift = true;
  /// CUSUM slack per window, in ppm (deviations below this never
  /// accumulate).  The gate integrates the *net benefit margin* — the
  /// window misprediction rate minus the 500000 ppm break-even point —
  /// because re-routing a site only pays when the opposite route would
  /// have done strictly better; a site mispredicted 45% of the time is
  /// still on its majority route and must never trip.
  int64_t CusumSlackPpm = 20000;
  /// CUSUM decision threshold, in ppm of accumulated benefit margin:
  /// roughly one window at 100% misprediction (a hard one-time drift
  /// re-routes at the window close that flags it) or sustained moderate
  /// evidence across several windows.
  int64_t CusumDecisionPpm = 450000;
  /// Minimum deaths in a (site, window) before it feeds the CUSUM.
  uint64_t MinWindowDeaths = 4;
  /// Majority-vote bar for re-routing a site short: the window's
  /// short-death fraction in ppm must reach this.
  uint64_t RouteShortMinPpm = 500000;
  /// Break-even deadband: no flip while the short-death fraction of the
  /// evidence that *led to this decision* — deaths observed since the
  /// site's previous gate decision — is within this many ppm of 500000.
  /// A near-break-even site accumulates its gate slowly across windows
  /// of mixed deaths, so its evidence sits at the coin-toss point and
  /// the flip is withheld: such a site gains nothing from either route,
  /// and flipping it only chases phase noise.  A genuinely drifted site
  /// trips on one or two near-pure windows, far outside the band.  The
  /// evidence counters reset at every decision (flipped or withheld),
  /// so stale pre-drift history cannot drown out fresh evidence.  0
  /// disables the deadband.
  uint64_t FlipDeadbandPpm = 150000;
  /// Oscillation damper, asymmetric around the warm-start verdict: each
  /// flip *away* from a site's home route doubles the decision bar for
  /// the next flip away (capped at this many doublings), while flipping
  /// back home is always at the base bar.  A genuine one-time drift pays
  /// nothing — its single flip away is at the base bar — but a site
  /// whose phases alternate, where *any* reactive policy loses to
  /// standing still, spends geometrically less time off its trained
  /// verdict and converges back to the static route.  0 disables the
  /// damper.
  uint32_t FlipBackoffCap = 6;
};

/// One applied re-route: the flagged site's verdict flip, logged at the
/// window boundary that tripped the CUSUM.
struct RetrainEvent {
  uint64_t Window = 0;      ///< Index of the window whose close tripped.
  uint64_t Clock = 0;       ///< Byte clock of that window boundary.
  SiteKey Site = 0;
  bool OldRoute = false;    ///< true = short-lived arena.
  bool NewRoute = false;
  uint64_t WindowShortDeaths = 0;
  uint64_t WindowLongDeaths = 0;
  int64_t GatePpm = 0;      ///< CUSUM accumulator value at the trip.
  uint32_t Epoch = 0;       ///< Routing-table epoch after the flip.

  bool operator==(const RetrainEvent &Other) const = default;
};

/// Per-site forensics snapshot (key-sorted), for `trace_tool retrain`.
struct OnlineSiteSnapshot {
  SiteKey Site = 0;
  bool Route = false;
  uint32_t RouteFlips = 0;
  uint64_t ShortDeaths = 0;
  uint64_t LongDeaths = 0;
  int64_t GatePpm = 0;
  /// Median observed death lifetime, as the representative value of its
  /// log2 bucket (0 when the site saw no deaths).
  uint64_t ObservedQ50 = 0;

  bool operator==(const OnlineSiteSnapshot &Other) const = default;
};

/// The streaming per-site model.  Not thread-safe; hosts that share it
/// (PredictingHeap in ThreadSafe mode) serialize calls under their own
/// lock, and the replay drivers are single-threaded by construction (the
/// sharded shapes consume the *precompiled* route plan instead).
class OnlinePredictor {
public:
  /// Window width used when the config leaves WindowBytes at 0 and no
  /// end clock is known (the live-heap host): 256 KiB of allocation.
  static constexpr uint64_t DefaultWindowBytes = 256 * 1024;

  explicit OnlinePredictor(const OnlinePredictorConfig &Config = {});

  const OnlinePredictorConfig &config() const { return Cfg; }
  uint64_t threshold() const { return Cfg.Threshold; }
  uint64_t windowBytes() const { return Width; }

  /// The current route of \p Site: true = short-lived arena.  Resolves
  /// the warm-start verdict on first sight.  Callers invoke this at every
  /// allocation; the result is the route *as of the last closed window*.
  bool routeShort(SiteKey Site) { return state(Site).Route; }

  /// Records one observed death.  \p RoutedShort is the route the object
  /// was *born* under (the caller tracked it at allocation), so the
  /// misprediction signal matches what the allocator actually did, not
  /// what the current table would do.
  void observeDeath(SiteKey Site, bool RoutedShort, uint64_t Lifetime);

  /// Advances the byte clock, closing (and deciding) every window that
  /// ends at or before \p Clock.  Call with each event's clock, before
  /// processing the event; clocks must be non-decreasing.
  void advanceClock(uint64_t Clock);

  /// Closes the final partial window at \p EndClock.  Only affects the
  /// forensics (retrain log completeness); no allocation follows.
  void finish(uint64_t EndClock);

  /// Routing-table epoch: bumped once per window that flipped at least
  /// one route.  0 means "still exactly the warm-start table".
  uint32_t epoch() const { return Epoch; }

  /// Applied re-routes, in (window, site-key) order.
  const std::vector<RetrainEvent> &retrains() const { return Retrains; }

  /// Distinct sites seen (routed or observed).
  uint64_t siteCount() const { return Sites.size(); }

  /// Total deaths observed.
  uint64_t deathCount() const { return Deaths; }

  /// Key-sorted per-site state, for forensics output.
  std::vector<OnlineSiteSnapshot> snapshot() const;

private:
  struct SiteState {
    bool Init = false;
    bool Route = false;
    bool HomeRoute = false; ///< The warm-start verdict (backoff anchor).
    uint32_t AwayFlips = 0; ///< Flips away from home, drives the backoff.
    uint32_t RouteFlips = 0;
    int64_t Gate = 0; ///< CUSUM accumulator, ppm.
    uint64_t WinShort = 0;
    uint64_t WinLong = 0;
    uint64_t WinMis = 0;
    uint64_t ShortDeaths = 0;
    uint64_t LongDeaths = 0;
    /// Deadband evidence: deaths since the last gate decision.
    uint64_t DbShort = 0;
    uint64_t DbLong = 0;
    /// Log2 lifetime sketch: bucket = bit_width(Lifetime), so bucket 0 is
    /// lifetime 0 and bucket B covers [2^(B-1), 2^B).
    std::array<uint32_t, 65> Hist = {};
  };

  SiteState &state(SiteKey Site);
  void closeWindow(uint64_t BoundaryClock);

  OnlinePredictorConfig Cfg;
  uint64_t Width = DefaultWindowBytes;
  uint64_t NextBoundary = 0;
  uint64_t WindowIndex = 0;
  uint64_t WindowDeaths = 0; ///< Deaths in the open window (skip gate).
  uint64_t Deaths = 0;
  uint32_t Epoch = 0;
  std::map<SiteKey, SiteState> Sites; ///< Key-sorted: deterministic close.
  std::vector<RetrainEvent> Retrains;
};

} // namespace lifepred

#endif // LIFEPRED_RUNTIME_ONLINEPREDICTOR_H
