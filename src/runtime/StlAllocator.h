//===- runtime/StlAllocator.h - STL adapter for PredictingHeap --*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An STL-compatible allocator adapter over PredictingHeap, so standard
/// containers participate in lifetime prediction.  Combined with a
/// LIFEPRED_FUNCTION frame at the container's use site, a std::vector's
/// buffer can be profiled and — when its site trains short-lived —
/// bump-allocated in an arena.
///
/// \code
///   PredictingHeap Heap(Database);
///   std::vector<int, StlAllocator<int>> V{StlAllocator<int>(Heap)};
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_RUNTIME_STLALLOCATOR_H
#define LIFEPRED_RUNTIME_STLALLOCATOR_H

#include "runtime/PredictingHeap.h"

#include <cstddef>

namespace lifepred {

/// C++17-style allocator delegating to a PredictingHeap.
template <typename T> class StlAllocator {
public:
  using value_type = T;

  explicit StlAllocator(PredictingHeap &Heap) : Heap(&Heap) {}

  template <typename U>
  StlAllocator(const StlAllocator<U> &Other) : Heap(Other.heap()) {}

  T *allocate(size_t N) {
    return static_cast<T *>(Heap->allocate(N * sizeof(T)));
  }

  void deallocate(T *Ptr, size_t) { Heap->deallocate(Ptr); }

  PredictingHeap *heap() const { return Heap; }

  friend bool operator==(const StlAllocator &A, const StlAllocator &B) {
    return A.Heap == B.Heap;
  }
  friend bool operator!=(const StlAllocator &A, const StlAllocator &B) {
    return !(A == B);
  }

private:
  template <typename U> friend class StlAllocator;

  PredictingHeap *Heap;
};

} // namespace lifepred

#endif // LIFEPRED_RUNTIME_STLALLOCATOR_H
