//===- runtime/Instrument.h - Function instrumentation macro ----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instrumentation for real, in-process call-chain capture.  The paper
/// walks SPARC stack frames; portable C++ cannot, so applications mark
/// instrumented functions with LIFEPRED_FUNCTION() at the top of the body,
/// which pushes an RAII frame onto the thread's shadow stack (one
/// FunctionId push plus one XOR for the encryption key — the same order of
/// cost as the paper's 3-instruction call-chain encryption).
///
/// \code
///   void parseExpression() {
///     LIFEPRED_FUNCTION();
///     Node *N = static_cast<Node *>(Heap.allocate(sizeof(Node)));
///     ...
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_RUNTIME_INSTRUMENT_H
#define LIFEPRED_RUNTIME_INSTRUMENT_H

#include "callchain/ShadowStack.h"

#include <string>

namespace lifepred {

/// Interns runtime function names into stable FunctionIds, process-wide.
/// (The offline pipeline uses per-run FunctionRegistry instances; the
/// runtime needs a single registry shared by every instrumented function.)
FunctionId runtimeFunctionId(const char *Name);

} // namespace lifepred

/// Marks the enclosing function as instrumented for call-chain capture.
#define LIFEPRED_FUNCTION()                                                   \
  static const ::lifepred::FunctionId LifepredFuncId =                       \
      ::lifepred::runtimeFunctionId(__func__);                               \
  ::lifepred::ScopedFrame LifepredFrame(LifepredFuncId,                      \
                                        static_cast<::lifepred::ChainKey>(   \
                                            LifepredFuncId & 0xffff))

/// Variant with an explicit name (for lambdas or disambiguation).
#define LIFEPRED_NAMED_FUNCTION(Name)                                         \
  static const ::lifepred::FunctionId LifepredFuncId =                       \
      ::lifepred::runtimeFunctionId(Name);                                   \
  ::lifepred::ScopedFrame LifepredFrame(LifepredFuncId,                      \
                                        static_cast<::lifepred::ChainKey>(   \
                                            LifepredFuncId & 0xffff))

#endif // LIFEPRED_RUNTIME_INSTRUMENT_H
