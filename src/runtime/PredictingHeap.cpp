//===- runtime/PredictingHeap.cpp - Real predicting allocator --------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/PredictingHeap.h"

#include "callchain/ShadowStack.h"
#include "runtime/OnlinePredictor.h"
#include "support/MathExtras.h"
#include "telemetry/DriftObservatory.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/StatsRegistry.h"

#include <cassert>
#include <new>

using namespace lifepred;

PredictingHeap::PredictingHeap(SiteDatabase Database)
    : PredictingHeap(std::move(Database), Config()) {}

PredictingHeap::PredictingHeap(SiteDatabase Database, Config Config)
    : Database(std::move(Database)), Cfg(Config) {
  assert(Cfg.ArenaCount > 0 && Cfg.AreaBytes % Cfg.ArenaCount == 0 &&
         "arena area must divide evenly");
  assert(isPowerOf2(Cfg.Alignment) && "alignment must be a power of two");
  Area = std::make_unique<unsigned char[]>(Cfg.AreaBytes);
  Arenas.resize(Cfg.ArenaCount);
}

PredictingHeap::~PredictingHeap() = default;

bool PredictingHeap::isArenaPointer(const void *Ptr) const {
  const auto *P = static_cast<const unsigned char *>(Ptr);
  return P >= Area.get() && P < Area.get() + Cfg.AreaBytes;
}

void *PredictingHeap::bump(size_t Need, size_t Size) {
  Arena &A = Arenas[Current];
  void *Ptr = Area.get() + Current * arenaBytes() + A.AllocPtr;
  A.AllocPtr += Need;
  ++A.LiveCount;
  ++Counters.ArenaAllocs;
  Counters.ArenaBytes += Size;
  return Ptr;
}

void *PredictingHeap::allocateImpl(size_t Size, bool Predicted) {
  // Zero-size requests consume one granule so every returned pointer is
  // distinct (malloc(0) semantics; a zero-width bump would hand out the
  // same arena pointer twice).
  size_t Need = alignTo(Size == 0 ? 1 : Size, Cfg.Alignment);
  if (Predicted && Need <= arenaBytes()) {
    if (Arenas[Current].AllocPtr + Need <= arenaBytes())
      return bump(Need, Size);
    for (unsigned I = 0; I < Cfg.ArenaCount; ++I) {
      if (Arenas[I].LiveCount == 0) {
        ++Counters.Resets;
        Arenas[I].AllocPtr = 0;
        ++Arenas[I].Generation;
        if (Recorder)
          Recorder->onArenaReset(AuditPlacement::DefaultBand, I,
                                 Arenas[I].Generation);
        Current = I;
        return bump(Need, Size);
      }
      if (Recorder)
        Recorder->onArenaPinned(AuditPlacement::DefaultBand, I,
                                Arenas[I].Generation, Arenas[I].LiveCount);
    }
    ++Counters.Fallbacks;
  }

  ++Counters.GeneralAllocs;
  Counters.GeneralBytes += Size;
  return ::operator new(Size < 1 ? 1 : Size);
}

void PredictingHeap::recordBirth(const void *Ptr, size_t Size, bool Predicted,
                                 uint32_t Site) {
  uint64_t Id = NextId++;
  LiveIds[Ptr] = Id;
  if (DriftLog)
    DriftLog->recordAlloc(Id, ByteClock, Site, static_cast<uint32_t>(Size),
                          Predicted);
  if (!Recorder)
    return;
  AuditPlacement Placement;
  if (isArenaPointer(Ptr)) {
    auto Offset =
        static_cast<size_t>(static_cast<const unsigned char *>(Ptr) -
                            Area.get());
    Placement.ArenaIndex = static_cast<uint32_t>(Offset / arenaBytes());
    Placement.Generation = Arenas[Placement.ArenaIndex].Generation;
  }
  Recorder->recordAlloc(Id, ByteClock, Site, static_cast<uint32_t>(Size),
                        Predicted, Database.threshold(), Placement);
}

void *PredictingHeap::allocate(size_t Size) {
  const ShadowStack &Stack = ShadowStack::current();
  const SiteKeyPolicy &Policy = Database.policy();
  CallChain Chain = Policy.Mode == SiteKeyMode::LastN
                        ? Stack.captureLastN(Policy.Length)
                        : Stack.capture();

  std::unique_lock<std::mutex> Guard(Lock, std::defer_lock);
  if (Cfg.ThreadSafe)
    Guard.lock();

  if (!Online && !Recorder && !DriftLog) {
    bool Predicted =
        Database.predictShortLived(Chain, static_cast<uint32_t>(Size));
    return allocateImpl(Size, Predicted);
  }

  // Instrumented path: the byte clock advances by the payload before the
  // allocation (matching the simulator's "clock after alloc" convention),
  // so pin/reset callbacks fired from the reset scan carry this event's
  // clock, and the online predictor's retrain windows close on exactly
  // the clocks a replay of the same run would close them on.
  ByteClock += Size;
  SiteKey Key = siteKey(Policy, Chain, static_cast<uint32_t>(Size));
  bool Predicted;
  if (Online) {
    Online->advanceClock(ByteClock);
    Predicted = Online->routeShort(Key);
  } else {
    Predicted = Database.contains(Key);
  }
  if (Recorder)
    Recorder->beginEvent(ByteClock);
  void *Ptr = allocateImpl(Size, Predicted);
  if (Online)
    OnlineLive[Ptr] = OnlineBirth{Key, ByteClock, Predicted};
  if (Recorder || DriftLog)
    recordBirth(Ptr, Size, Predicted, static_cast<uint32_t>(Key));
  return Ptr;
}

void PredictingHeap::attachRecorder(FlightRecorder *NewRecorder) {
  std::unique_lock<std::mutex> Guard(Lock, std::defer_lock);
  if (Cfg.ThreadSafe)
    Guard.lock();
  Recorder = NewRecorder;
  if (Recorder)
    Recorder->setArenaGeometry(AuditPlacement::DefaultBand, arenaBytes());
}

void PredictingHeap::attachDriftLog(DriftSampleLog *Log) {
  std::unique_lock<std::mutex> Guard(Lock, std::defer_lock);
  if (Cfg.ThreadSafe)
    Guard.lock();
  DriftLog = Log;
}

void PredictingHeap::attachOnline(OnlinePredictor *Predictor) {
  std::unique_lock<std::mutex> Guard(Lock, std::defer_lock);
  if (Cfg.ThreadSafe)
    Guard.lock();
  Online = Predictor;
}

uint32_t PredictingHeap::routeEpoch() const {
  return Online ? Online->epoch() : 0;
}

void PredictingHeap::finishRecording() {
  std::unique_lock<std::mutex> Guard(Lock, std::defer_lock);
  if (Cfg.ThreadSafe)
    Guard.lock();
  if (Recorder)
    Recorder->finish(ByteClock);
  if (DriftLog)
    DriftLog->finish(ByteClock);
  if (Online)
    Online->finish(ByteClock);
  LiveIds.clear();
  OnlineLive.clear();
}

void PredictingHeap::deallocate(void *Ptr) {
  if (!Ptr)
    return;
  std::unique_lock<std::mutex> Guard(Lock, std::defer_lock);
  if (Cfg.ThreadSafe)
    Guard.lock();
  if (Recorder || DriftLog) {
    auto It = LiveIds.find(Ptr);
    if (It != LiveIds.end()) {
      if (Recorder)
        Recorder->recordFree(It->second, ByteClock);
      if (DriftLog)
        DriftLog->recordFree(It->second, ByteClock);
      LiveIds.erase(It);
    }
  }
  if (Online) {
    auto It = OnlineLive.find(Ptr);
    if (It != OnlineLive.end()) {
      // Lifetime in bytes allocated since birth — the paper's definition —
      // fed back under the route the object was actually placed with.
      Online->observeDeath(It->second.Site, It->second.RoutedShort,
                           ByteClock - It->second.BirthClock);
      OnlineLive.erase(It);
    }
  }
  if (isArenaPointer(Ptr)) {
    auto Offset = static_cast<size_t>(static_cast<unsigned char *>(Ptr) -
                                      Area.get());
    Arena &A = Arenas[Offset / arenaBytes()];
    assert(A.LiveCount > 0 && "arena live count underflow");
    --A.LiveCount;
    return;
  }
  ::operator delete(Ptr);
}

bool PredictingHeap::auditInvariants(std::string &Error) const {
  auto Fail = [&Error](std::string Message) {
    Error = std::move(Message);
    return false;
  };

  if (Current >= Cfg.ArenaCount)
    return Fail("current arena index out of range");
  for (unsigned I = 0; I < Cfg.ArenaCount; ++I) {
    if (Arenas[I].AllocPtr > arenaBytes())
      return Fail("arena " + std::to_string(I) +
                  " bump pointer past the arena end");
    if (Arenas[I].AllocPtr % Cfg.Alignment != 0)
      return Fail("arena " + std::to_string(I) + " bump pointer unaligned");
  }

  // With a recorder attached, LiveIds names every live object; each
  // recorded arena pointer must lie below its arena's bump pointer and the
  // per-arena population must not exceed the live count (batch-reset
  // soundness for the real heap).
  std::vector<uint32_t> Counts(Cfg.ArenaCount, 0);
  for (const auto &[Ptr, Id] : LiveIds) {
    if (!isArenaPointer(Ptr))
      continue;
    auto Offset = static_cast<size_t>(
        static_cast<const unsigned char *>(Ptr) - Area.get());
    unsigned Index = static_cast<unsigned>(Offset / arenaBytes());
    if (Offset - Index * arenaBytes() >= Arenas[Index].AllocPtr)
      return Fail("recorded live object above the bump pointer in arena " +
                  std::to_string(Index));
    ++Counts[Index];
  }
  for (unsigned I = 0; I < Cfg.ArenaCount; ++I)
    if (Counts[I] > Arenas[I].LiveCount)
      return Fail("arena " + std::to_string(I) +
                  " holds more recorded live objects than its live count");
  return true;
}

void PredictingHeap::exportTelemetry(StatsRegistry &Registry,
                                     const std::string &Prefix) const {
  Registry.counter(Prefix + "arena_allocs") += Counters.ArenaAllocs;
  Registry.counter(Prefix + "general_allocs") += Counters.GeneralAllocs;
  Registry.counter(Prefix + "arena_bytes") += Counters.ArenaBytes;
  Registry.counter(Prefix + "general_bytes") += Counters.GeneralBytes;
  Registry.counter(Prefix + "resets") += Counters.Resets;
  Registry.counter(Prefix + "fallbacks") += Counters.Fallbacks;
}
