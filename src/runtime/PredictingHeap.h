//===- runtime/PredictingHeap.h - Real predicting allocator -----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A *real* (not simulated) lifetime-predicting heap: the prototype the
/// paper's conclusion calls for.  Allocation consults a trained
/// SiteDatabase using the calling thread's shadow stack; predicted
/// short-lived objects are bump-allocated into real 4 KB arenas carved out
/// of one contiguous 64 KB area, everything else goes to ::operator new.
/// deallocate() distinguishes arena pointers by address range, exactly as
/// the paper's algorithm does.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_RUNTIME_PREDICTINGHEAP_H
#define LIFEPRED_RUNTIME_PREDICTINGHEAP_H

#include "core/SiteDatabase.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace lifepred {

class DriftSampleLog;
class FlightRecorder;
class OnlinePredictor;
class StatsRegistry;

/// Profile-driven two-strategy heap.
class PredictingHeap {
public:
  /// Geometry of the real arena area.
  struct Config {
    size_t AreaBytes = 64 * 1024;
    unsigned ArenaCount = 16;
    size_t Alignment = 16; ///< Alignment of every returned pointer.
    /// Serialize allocate()/deallocate() with a mutex.  The shadow stacks
    /// are thread-local either way; this guards the shared arena state.
    bool ThreadSafe = false;
  };

  /// Allocation statistics.
  struct Stats {
    uint64_t ArenaAllocs = 0;
    uint64_t GeneralAllocs = 0;
    uint64_t ArenaBytes = 0;
    uint64_t GeneralBytes = 0;
    uint64_t Resets = 0;
    uint64_t Fallbacks = 0; ///< Predicted short but no empty arena.
  };

  /// Builds a heap using the trained \p Database (copied).
  explicit PredictingHeap(SiteDatabase Database);
  PredictingHeap(SiteDatabase Database, Config C);
  ~PredictingHeap();

  PredictingHeap(const PredictingHeap &) = delete;
  PredictingHeap &operator=(const PredictingHeap &) = delete;

  /// Allocates \p Size bytes; consults the shadow stack and database.
  void *allocate(size_t Size);

  /// Frees a pointer returned by allocate().
  void deallocate(void *Ptr);

  const Stats &stats() const { return Counters; }
  const SiteDatabase &database() const { return Database; }

  /// True if \p Ptr lies inside the arena area (test support).
  bool isArenaPointer(const void *Ptr) const;

  /// Copies the allocation statistics into \p Registry as
  /// "<Prefix>arena_allocs", "<Prefix>resets", ... — read-only.
  void exportTelemetry(StatsRegistry &Registry,
                       const std::string &Prefix) const;

  /// Structural self-audit for the verify layer: per-arena bump-pointer
  /// bounds and alignment, and (with a recorder attached) containment of
  /// every recorded live arena pointer in an arena with a positive live
  /// count.  Costs nothing unless called.  Returns false and fills
  /// \p Error at the first broken invariant.
  bool auditInvariants(std::string &Error) const;

  /// Attaches a per-object flight recorder.  Attach before the first
  /// allocate(); the heap then assigns object ids in allocation order and
  /// drives a byte clock (bytes allocated so far), so the audit trail of a
  /// single-threaded run is deterministic.  Detach by attaching nullptr.
  /// Unattached heaps skip every audit branch on the allocation path.
  void attachRecorder(FlightRecorder *Recorder);

  /// Finishes the attached recorder and drift log at the current byte
  /// clock (classifying still-live objects as long-lived) and drops the
  /// pointer-id map.
  void finishRecording();

  /// Attaches a drift sample log (telemetry/DriftObservatory.h): every
  /// allocation's site, size, prediction, and byte-clock birth/death feed
  /// the log, so a live run's prediction quality can be compared against
  /// its trained database after the fact.  Same discipline as
  /// attachRecorder — attach before the first allocate(), detach with
  /// nullptr; unattached heaps skip the branch.
  void attachDriftLog(DriftSampleLog *Log);

  /// Attaches an online predictor (runtime/OnlinePredictor.h): allocation
  /// routing switches from the frozen database probe to the predictor's
  /// epoch-versioned routing table, every deallocation feeds the observed
  /// lifetime back, and the heap's byte clock drives the predictor's
  /// retrain windows — so a drifting live workload re-routes its flagged
  /// sites mid-run.  Attach before the first allocate(); detach with
  /// nullptr.  The predictor is *not* internally locked; in ThreadSafe
  /// mode the heap's own mutex serializes every model call.
  void attachOnline(OnlinePredictor *Predictor);

  /// The attached predictor's routing-table epoch (0 without one): bumps
  /// exactly when a retrain window flipped at least one site's route, so
  /// callers can cheaply detect mid-run re-routing.
  uint32_t routeEpoch() const;

private:
  struct Arena {
    size_t AllocPtr = 0;
    uint32_t LiveCount = 0;
    uint64_t Generation = 0; ///< Incremented at every reset.
  };

  size_t arenaBytes() const { return Cfg.AreaBytes / Cfg.ArenaCount; }
  void *bump(size_t Need, size_t Size);
  void *allocateImpl(size_t Size, bool Predicted);
  void recordBirth(const void *Ptr, size_t Size, bool Predicted,
                   uint32_t Site);

  SiteDatabase Database;
  Config Cfg;
  Stats Counters;
  std::mutex Lock; ///< Used only when Cfg.ThreadSafe.
  std::unique_ptr<unsigned char[]> Area; ///< The contiguous arena area.
  std::vector<Arena> Arenas;
  unsigned Current = 0;
  /// Audit state; all null/empty (and untouched) without a recorder.
  FlightRecorder *Recorder = nullptr;
  DriftSampleLog *DriftLog = nullptr;
  OnlinePredictor *Online = nullptr;
  uint64_t ByteClock = 0;
  uint64_t NextId = 0;
  std::unordered_map<const void *, uint64_t> LiveIds;
  /// Birth facts the online feedback loop needs at deallocate().
  struct OnlineBirth {
    SiteKey Site = 0;
    uint64_t BirthClock = 0;
    bool RoutedShort = false;
  };
  std::unordered_map<const void *, OnlineBirth> OnlineLive;
};

} // namespace lifepred

#endif // LIFEPRED_RUNTIME_PREDICTINGHEAP_H
