//===- runtime/RuntimeProfiler.cpp - In-process profiling ------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/RuntimeProfiler.h"

#include "callchain/ShadowStack.h"

using namespace lifepred;

void RuntimeProfiler::recordAlloc(const void *Ptr, uint32_t Size) {
  // Capture only as much of the chain as the policy needs.
  const ShadowStack &Stack = ShadowStack::current();
  CallChain Chain = Policy.Mode == SiteKeyMode::LastN
                        ? Stack.captureLastN(Policy.Length)
                        : Stack.capture();
  SiteKey Key = siteKey(Policy, Chain, Size);

  Clock += Size;
  Live[Ptr] = {Key, Clock, Size};
  ++TotalObjects;
  TotalBytes += Size;
}

void RuntimeProfiler::recordFree(const void *Ptr) {
  auto It = Live.find(Ptr);
  if (It == Live.end())
    return;
  const LiveObject &Object = It->second;
  Sites[Object.Key].add(Object.Size, Clock - Object.BirthClock, 0);
  Live.erase(It);
}

Profile RuntimeProfiler::takeProfile() {
  // Objects still live die "now" — mirroring the offline profiler's
  // die-at-exit treatment.
  for (const auto &[Ptr, Object] : Live)
    Sites[Object.Key].add(Object.Size, Clock - Object.BirthClock, 0);
  Live.clear();

  Profile Result;
  Result.Sites = std::move(Sites);
  Result.TotalObjects = TotalObjects;
  Result.TotalBytes = TotalBytes;
  Sites = SiteTable();
  return Result;
}

SiteDatabase RuntimeProfiler::train(const TrainingOptions &Options) {
  Profile P = takeProfile();
  return trainDatabase(P, Policy, Options);
}

TrainedQuantileMap RuntimeProfiler::quantileProbes() const {
  TrainedQuantileMap Map;
  for (const auto &[Key, Stats] : Sites) {
    TrainedSiteQuantiles Quantiles;
    Quantiles.Objects = Stats.Objects;
    Quantiles.Q25 = Stats.Lifetimes.quantile(0.25);
    Quantiles.Q50 = Stats.Lifetimes.quantile(0.50);
    Quantiles.Q75 = Stats.Lifetimes.quantile(0.75);
    Map.emplace(static_cast<uint32_t>(Key), Quantiles);
  }
  return Map;
}
