//===- runtime/OnlinePredictor.cpp - Online per-site lifetime model --------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/OnlinePredictor.h"

#include <algorithm>
#include <bit>

using namespace lifepred;

OnlinePredictor::OnlinePredictor(const OnlinePredictorConfig &Config)
    : Cfg(Config) {
  if (Cfg.WarmStart)
    Cfg.Threshold = Cfg.WarmStart->threshold();
  Width = Cfg.WindowBytes == 0 ? DefaultWindowBytes : Cfg.WindowBytes;
  NextBoundary = Width;
}

OnlinePredictor::SiteState &OnlinePredictor::state(SiteKey Site) {
  SiteState &S = Sites[Site];
  if (!S.Init) {
    S.Init = true;
    S.Route = Cfg.WarmStart != nullptr && Cfg.WarmStart->contains(Site);
    S.HomeRoute = S.Route;
  }
  return S;
}

void OnlinePredictor::observeDeath(SiteKey Site, bool RoutedShort,
                                   uint64_t Lifetime) {
  SiteState &S = state(Site);
  bool Short = Lifetime <= Cfg.Threshold;
  if (Short)
    ++S.WinShort;
  else
    ++S.WinLong;
  if (RoutedShort != Short)
    ++S.WinMis;
  ++(Short ? S.ShortDeaths : S.LongDeaths);
  ++(Short ? S.DbShort : S.DbLong);
  ++S.Hist[std::bit_width(Lifetime)];
  ++WindowDeaths;
  ++Deaths;
}

void OnlinePredictor::advanceClock(uint64_t Clock) {
  while (Clock >= NextBoundary) {
    closeWindow(NextBoundary);
    NextBoundary += Width;
    ++WindowIndex;
  }
}

void OnlinePredictor::finish(uint64_t EndClock) {
  advanceClock(EndClock);
  // The final partial window, so tail-of-run evidence reaches the log.
  if (WindowDeaths != 0)
    closeWindow(EndClock);
}

void OnlinePredictor::closeWindow(uint64_t BoundaryClock) {
  if (WindowDeaths == 0)
    return;
  WindowDeaths = 0;
  bool Flipped = false;
  // std::map iteration is key-sorted, so the decision order — and with it
  // the retrain log — is a pure function of the event stream.
  for (auto &[Key, S] : Sites) {
    uint64_t WindowTotal = S.WinShort + S.WinLong;
    if (WindowTotal == 0)
      continue;
    if (WindowTotal >= Cfg.MinWindowDeaths) {
      int64_t MisPpm = static_cast<int64_t>(S.WinMis * 1000000 / WindowTotal);
      // Benefit margin: positive only when the *opposite* route would
      // have mispredicted less this window (mis rate above break-even).
      S.Gate = std::max<int64_t>(
          0, S.Gate + (MisPpm - 500000) - Cfg.CusumSlackPpm);
      // Leaving the warm-start verdict gets geometrically harder with
      // every departure; coming home is always at the base bar.
      int64_t Decision =
          S.Route == S.HomeRoute
              ? Cfg.CusumDecisionPpm
                    << std::min(S.AwayFlips, Cfg.FlipBackoffCap)
              : Cfg.CusumDecisionPpm;
      if (Cfg.ReactToDrift && S.Gate >= Decision) {
        bool NewRoute =
            S.WinShort * 1000000 >= Cfg.RouteShortMinPpm * WindowTotal;
        // Near-break-even evidence gains nothing from either route;
        // withhold the flip instead of chasing phase noise.  The
        // evidence is what accumulated since the last decision, so it
        // measures exactly the windows that tripped this gate.
        uint64_t DbTotal = S.DbShort + S.DbLong;
        uint64_t DbShortPpm =
            DbTotal == 0 ? 500000 : S.DbShort * 1000000 / DbTotal;
        bool BreakEven =
            DbShortPpm + Cfg.FlipDeadbandPpm > 500000 &&
            DbShortPpm < 500000 + Cfg.FlipDeadbandPpm;
        if (BreakEven)
          NewRoute = S.Route;
        S.DbShort = 0;
        S.DbLong = 0;
        if (NewRoute != S.Route) {
          RetrainEvent Event;
          Event.Window = WindowIndex;
          Event.Clock = BoundaryClock;
          Event.Site = Key;
          Event.OldRoute = S.Route;
          Event.NewRoute = NewRoute;
          Event.WindowShortDeaths = S.WinShort;
          Event.WindowLongDeaths = S.WinLong;
          Event.GatePpm = S.Gate;
          Event.Epoch = Epoch + 1;
          Retrains.push_back(Event);
          if (NewRoute != S.HomeRoute)
            ++S.AwayFlips;
          S.Route = NewRoute;
          ++S.RouteFlips;
          Flipped = true;
        }
        // Evidence consumed either way: the verdict was re-decided.
        S.Gate = 0;
      }
    }
    S.WinShort = 0;
    S.WinLong = 0;
    S.WinMis = 0;
  }
  if (Flipped)
    ++Epoch;
}

std::vector<OnlineSiteSnapshot> OnlinePredictor::snapshot() const {
  std::vector<OnlineSiteSnapshot> Out;
  Out.reserve(Sites.size());
  for (const auto &[Key, S] : Sites) {
    OnlineSiteSnapshot Snap;
    Snap.Site = Key;
    Snap.Route = S.Route;
    Snap.RouteFlips = S.RouteFlips;
    Snap.ShortDeaths = S.ShortDeaths;
    Snap.LongDeaths = S.LongDeaths;
    Snap.GatePpm = S.Gate;
    uint64_t Total = S.ShortDeaths + S.LongDeaths;
    if (Total != 0) {
      uint64_t Seen = 0;
      for (size_t Bucket = 0; Bucket < S.Hist.size(); ++Bucket) {
        Seen += S.Hist[Bucket];
        if (Seen * 2 >= Total) {
          Snap.ObservedQ50 =
              Bucket == 0 ? 0 : uint64_t(1) << (Bucket - 1);
          break;
        }
      }
    }
    Out.push_back(Snap);
  }
  return Out;
}
