//===- quantile/QuantileHistogram.cpp - Lifetime quantile histogram --------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "quantile/QuantileHistogram.h"

#include <cassert>

using namespace lifepred;

std::vector<double> QuantileHistogram::cellTargets(unsigned Cells) {
  assert(Cells >= 2 && "a histogram needs at least two cells");
  std::vector<double> Targets;
  Targets.reserve(Cells + 1);
  for (unsigned I = 0; I <= Cells; ++I)
    Targets.push_back(static_cast<double>(I) / Cells);
  return Targets;
}

QuantileHistogram::QuantileHistogram(unsigned Cells)
    : Cells(Cells), Markers(cellTargets(Cells)) {}

void QuantileHistogram::add(double Lifetime) {
  if (Markers.count() == 0) {
    Min = Lifetime;
    Max = Lifetime;
  } else {
    if (Lifetime < Min)
      Min = Lifetime;
    if (Lifetime > Max)
      Max = Lifetime;
  }
  Markers.add(Lifetime);
}

double QuantileHistogram::quantile(double Phi) const {
  assert(count() > 0 && "no observations");
  if (Phi <= 0.0)
    return Min;
  if (Phi >= 1.0)
    return Max;
  return Markers.quantile(Phi);
}
