//===- quantile/ExactQuantiles.h - Exact quantile reference -----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact quantile computation that stores every observation.  Used as the
/// ground-truth oracle in tests and by Table 3's harness, which reports how
/// far the streaming P² approximation drifts from the truth (the paper makes
/// the same remark for GHOST's 75% quantile).
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_QUANTILE_EXACTQUANTILES_H
#define LIFEPRED_QUANTILE_EXACTQUANTILES_H

#include <cstdint>
#include <vector>

namespace lifepred {

/// Stores observations and answers exact quantile queries.
class ExactQuantiles {
public:
  /// Records one observation.
  void add(double Value) {
    Values.push_back(Value);
    Sorted = false;
  }

  /// Number of observations.
  uint64_t count() const { return Values.size(); }

  /// Exact quantile at probability \p Phi in [0, 1] using linear
  /// interpolation between order statistics.  Requires count() > 0.
  double quantile(double Phi);

  /// Exact minimum.  Requires count() > 0.
  double min() { return quantile(0.0); }

  /// Exact maximum.  Requires count() > 0.
  double max() { return quantile(1.0); }

private:
  void ensureSorted();

  std::vector<double> Values;
  bool Sorted = false;
};

} // namespace lifepred

#endif // LIFEPRED_QUANTILE_EXACTQUANTILES_H
