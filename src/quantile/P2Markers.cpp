//===- quantile/P2Markers.cpp - Generic P-squared marker set ---------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "quantile/P2Markers.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace lifepred;

P2Markers::P2Markers(std::vector<double> InTargets) {
  std::sort(InTargets.begin(), InTargets.end());
  Targets.reserve(InTargets.size() + 2);
  if (InTargets.empty() || InTargets.front() > 0.0)
    Targets.push_back(0.0);
  for (double T : InTargets) {
    assert(T >= 0.0 && T <= 1.0 && "quantile target out of range");
    if (Targets.empty() || T > Targets.back())
      Targets.push_back(T);
  }
  if (Targets.back() < 1.0)
    Targets.push_back(1.0);
  assert(Targets.size() >= 3 && "need at least one interior target");

  Heights.reserve(Targets.size());
  Positions.reserve(Targets.size());
  Desired.reserve(Targets.size());
}

void P2Markers::add(double Value) {
  if (Count < Targets.size())
    addInitial(Value);
  else
    addSteadyState(Value);
  ++Count;
}

void P2Markers::addInitial(double Value) {
  // Collect the first M observations sorted; once M have arrived they
  // become the initial marker heights.
  auto It = std::lower_bound(Heights.begin(), Heights.end(), Value);
  Heights.insert(It, Value);
  if (Heights.size() == Targets.size()) {
    Positions.resize(Targets.size());
    Desired.resize(Targets.size());
    for (size_t I = 0; I < Targets.size(); ++I) {
      Positions[I] = static_cast<double>(I + 1);
      Desired[I] = 1.0 + Targets[I] * static_cast<double>(Targets.size() - 1);
    }
  }
}

void P2Markers::addSteadyState(double Value) {
  size_t M = Targets.size();

  // Find the cell containing the new observation, extending the extreme
  // markers when the observation falls outside the current range.
  size_t K;
  if (Value < Heights[0]) {
    Heights[0] = Value;
    K = 0;
  } else if (Value >= Heights[M - 1]) {
    Heights[M - 1] = Value;
    K = M - 2;
  } else {
    K = 0;
    while (K + 1 < M && Value >= Heights[K + 1])
      ++K;
  }

  for (size_t I = K + 1; I < M; ++I)
    Positions[I] += 1.0;
  for (size_t I = 0; I < M; ++I)
    Desired[I] += Targets[I];

  // Adjust interior markers whose actual position drifted at least one slot
  // away from the desired position.
  for (size_t I = 1; I + 1 < M; ++I) {
    double Drift = Desired[I] - Positions[I];
    bool MoveUp = Drift >= 1.0 && Positions[I + 1] - Positions[I] > 1.0;
    bool MoveDown = Drift <= -1.0 && Positions[I - 1] - Positions[I] < -1.0;
    if (!MoveUp && !MoveDown)
      continue;
    double Direction = MoveUp ? 1.0 : -1.0;
    double NewHeight = parabolic(I, Direction);
    if (NewHeight <= Heights[I - 1] || NewHeight >= Heights[I + 1])
      NewHeight = linear(I, Direction);
    Heights[I] = NewHeight;
    Positions[I] += Direction;
  }
}

double P2Markers::parabolic(size_t I, double Direction) const {
  double Q = Heights[I];
  double QPrev = Heights[I - 1];
  double QNext = Heights[I + 1];
  double N = Positions[I];
  double NPrev = Positions[I - 1];
  double NNext = Positions[I + 1];
  return Q + Direction / (NNext - NPrev) *
                 ((N - NPrev + Direction) * (QNext - Q) / (NNext - N) +
                  (NNext - N - Direction) * (Q - QPrev) / (N - NPrev));
}

double P2Markers::linear(size_t I, double Direction) const {
  size_t J = Direction > 0 ? I + 1 : I - 1;
  return Heights[I] + Direction * (Heights[J] - Heights[I]) /
                          (Positions[J] - Positions[I]);
}

double P2Markers::markerValue(size_t I) const {
  assert(Count > 0 && "no observations");
  assert(I < Targets.size() && "marker index out of range");
  if (Count < Targets.size()) {
    // Transient phase: interpolate into the sorted prefix.
    double Rank = Targets[I] * static_cast<double>(Heights.size() - 1);
    size_t Lo = static_cast<size_t>(Rank);
    size_t Hi = std::min(Lo + 1, Heights.size() - 1);
    double Frac = Rank - static_cast<double>(Lo);
    return Heights[Lo] * (1.0 - Frac) + Heights[Hi] * Frac;
  }
  return Heights[I];
}

double P2Markers::quantile(double Phi) const {
  assert(Count > 0 && "no observations");
  Phi = std::clamp(Phi, 0.0, 1.0);
  if (Count < Targets.size()) {
    double Rank = Phi * static_cast<double>(Heights.size() - 1);
    size_t Lo = static_cast<size_t>(Rank);
    size_t Hi = std::min(Lo + 1, Heights.size() - 1);
    double Frac = Rank - static_cast<double>(Lo);
    return Heights[Lo] * (1.0 - Frac) + Heights[Hi] * Frac;
  }
  // Find surrounding targets and interpolate between marker heights.
  size_t Hi = 0;
  while (Hi + 1 < Targets.size() && Targets[Hi] < Phi)
    ++Hi;
  if (Hi == 0)
    return Heights[0];
  size_t Lo = Hi - 1;
  double Span = Targets[Hi] - Targets[Lo];
  double Frac = Span <= 0 ? 0.0 : (Phi - Targets[Lo]) / Span;
  return Heights[Lo] * (1.0 - Frac) + Heights[Hi] * Frac;
}
