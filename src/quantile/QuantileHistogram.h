//===- quantile/QuantileHistogram.h - Lifetime quantile histogram -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lifetime quantile histogram of the paper's section 4.1: a B-cell
/// equiprobable histogram maintained with the P² algorithm, plus the exact
/// extrema and observation count that the predictor's training rule needs.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_QUANTILE_QUANTILEHISTOGRAM_H
#define LIFEPRED_QUANTILE_QUANTILEHISTOGRAM_H

#include "quantile/P2Markers.h"

#include <cstdint>
#include <vector>

namespace lifepred {

/// Streaming B-cell quantile histogram of a lifetime distribution.
///
/// markerValue(i) estimates the i/B quantile.  The exact minimum and
/// maximum are tracked separately because the training rule ("all objects
/// at this site died before the threshold") must be exact, not estimated.
class QuantileHistogram {
public:
  /// Creates a histogram with \p Cells equiprobable cells (Cells >= 2).
  explicit QuantileHistogram(unsigned Cells = 8);

  /// Records one observed lifetime (in allocated bytes).
  void add(double Lifetime);

  /// Number of recorded lifetimes.
  uint64_t count() const { return Markers.count(); }

  /// Exact minimum recorded lifetime; requires count() > 0.
  double min() const { return Min; }

  /// Exact maximum recorded lifetime; requires count() > 0.
  double max() const { return Max; }

  /// Estimated quantile at probability \p Phi in [0, 1].
  double quantile(double Phi) const;

  /// Number of equiprobable cells.
  unsigned cells() const { return Cells; }

  /// Returns true if every recorded lifetime was strictly below
  /// \p Threshold.  This is the paper's site-selection predicate.
  bool allBelow(double Threshold) const {
    return count() > 0 && Max < Threshold;
  }

private:
  static std::vector<double> cellTargets(unsigned Cells);

  unsigned Cells;
  P2Markers Markers;
  double Min = 0;
  double Max = 0;
};

} // namespace lifepred

#endif // LIFEPRED_QUANTILE_QUANTILEHISTOGRAM_H
