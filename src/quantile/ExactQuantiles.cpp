//===- quantile/ExactQuantiles.cpp - Exact quantile reference --------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "quantile/ExactQuantiles.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace lifepred;

void ExactQuantiles::ensureSorted() {
  if (Sorted)
    return;
  std::sort(Values.begin(), Values.end());
  Sorted = true;
}

double ExactQuantiles::quantile(double Phi) {
  assert(!Values.empty() && "no observations");
  ensureSorted();
  Phi = std::clamp(Phi, 0.0, 1.0);
  double Rank = Phi * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}
