//===- quantile/P2Markers.h - Generic P-squared marker set ------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic multi-marker P² quantile estimator (Jain & Chlamtac, CACM 28(10),
/// 1985).  The paper uses this algorithm to summarize the object-lifetime
/// distribution of every allocation site with O(#markers) memory instead of
/// storing every observed lifetime.
///
/// A marker set tracks a fixed vector of target cumulative probabilities
/// (e.g. {0, .25, .5, .75, 1} for quartiles).  Marker heights are adjusted
/// with the piecewise-parabolic (P²) formula as observations arrive, falling
/// back to linear adjustment when the parabolic prediction would break
/// monotonicity.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_QUANTILE_P2MARKERS_H
#define LIFEPRED_QUANTILE_P2MARKERS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lifepred {

/// Streaming quantile estimator over an arbitrary set of target quantiles.
class P2Markers {
public:
  /// Creates an estimator for the given \p Targets, which must be strictly
  /// increasing and bracketed by 0.0 and 1.0 (both are added automatically
  /// if missing).  At least one interior target is required.
  explicit P2Markers(std::vector<double> Targets);

  /// Adds one observation.
  void add(double Value);

  /// Returns the number of observations added so far.
  uint64_t count() const { return Count; }

  /// Returns the estimate for the I-th target quantile (including the
  /// implicit 0.0 and 1.0 endpoints).  Exact while count() <= #markers.
  double markerValue(size_t I) const;

  /// Returns the number of markers (targets including endpoints).
  size_t markerCount() const { return Targets.size(); }

  /// Returns the target probability of the I-th marker.
  double markerTarget(size_t I) const { return Targets[I]; }

  /// Estimates an arbitrary quantile \p Phi in [0, 1] by interpolating
  /// linearly between neighbouring markers.
  double quantile(double Phi) const;

  /// Smallest observation seen (marker 0).  Requires count() > 0.
  double min() const { return markerValue(0); }

  /// Largest observation seen (last marker).  Requires count() > 0.
  double max() const { return markerValue(Targets.size() - 1); }

private:
  void addInitial(double Value);
  void addSteadyState(double Value);

  /// Piecewise-parabolic height prediction for marker \p I moved by
  /// \p Direction (+1 or -1).
  double parabolic(size_t I, double Direction) const;

  /// Linear height prediction for marker \p I moved by \p Direction.
  double linear(size_t I, double Direction) const;

  std::vector<double> Targets;  ///< Target probabilities, 0 and 1 included.
  std::vector<double> Heights;  ///< Current marker heights (q_i).
  std::vector<double> Positions; ///< Current marker positions (n_i), 1-based.
  std::vector<double> Desired;  ///< Desired marker positions (n'_i).
  uint64_t Count = 0;
};

} // namespace lifepred

#endif // LIFEPRED_QUANTILE_P2MARKERS_H
