//===- workloads/WorkloadRunner.h - Model execution -------------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a ProgramModel, producing an AllocationTrace.  The runner
/// maintains a simulated call stack per allocation (so chains, recursion,
/// and pruning behave as in a real program) and draws sites, sizes, and
/// lifetimes from the model's distributions.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_WORKLOADS_WORKLOADRUNNER_H
#define LIFEPRED_WORKLOADS_WORKLOADRUNNER_H

#include "callchain/FunctionRegistry.h"
#include "trace/AllocationTrace.h"
#include "workloads/ProgramModel.h"

#include <cstdint>

namespace lifepred {

/// Options controlling a model run.
struct RunOptions {
  RunKind Kind = RunKind::Train;
  /// Object-count multiplier; 1.0 reproduces the model's BaseObjects.
  double Scale = 1.0;
  /// Seed for all randomness in the run.  Train and test runs derive
  /// distinct streams from the same seed.
  uint64_t Seed = 0x1993;
};

/// Runs \p Model and returns its allocation trace.  \p Registry interns the
/// model's function names; pass the same registry for the train and test
/// runs of one program so FunctionIds agree across runs.
AllocationTrace runWorkload(const ProgramModel &Model, RunOptions Options,
                            FunctionRegistry &Registry);

} // namespace lifepred

#endif // LIFEPRED_WORKLOADS_WORKLOADRUNNER_H
