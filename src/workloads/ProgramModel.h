//===- workloads/ProgramModel.h - Synthetic program models ------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarative models of allocation-intensive programs.  Each model is a
/// population of allocation sites: a call path (outermost first, with
/// optional recursive repetition), an object size, a lifetime distribution,
/// a relative allocation rate, and a heap-reference density.  Running a
/// model (WorkloadRunner) produces an AllocationTrace — the stand-in for
/// the paper's AE-generated traces of cfrac/espresso/gawk/ghostscript/perl.
///
/// Train/test divergence (the paper's *true prediction*) is modeled with
/// per-site presence flags, weight perturbation, and a test-only error
/// fraction that redirects some objects to a long-lived distribution.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_WORKLOADS_PROGRAMMODEL_H
#define LIFEPRED_WORKLOADS_PROGRAMMODEL_H

#include "workloads/LifetimeDistribution.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lifepred {

/// One element of a call path.  When MaxRepeat > MinRepeat the function is
/// pushed a random number of times per allocation, modeling recursion: the
/// raw chain varies with depth while the cycle-pruned chain is constant.
struct PathSegment {
  std::string Function;
  unsigned MinRepeat = 1;
  unsigned MaxRepeat = 1;
};

/// One allocation site of a modeled program.
struct SiteSpec {
  /// Debug label (also the default innermost-function name basis).
  std::string Label;

  /// Call path, outermost first; the last segment is the direct caller of
  /// the allocator.
  std::vector<PathSegment> Path;

  /// Base object size in bytes.
  uint32_t Size = 16;

  /// Extra uniformly-random bytes in [0, SizeJitter] added to Size.  Jitter
  /// within one 4-byte rounding class exercises the paper's size-rounding
  /// site mapping.
  uint32_t SizeJitter = 0;

  /// Relative allocation rate (in objects) within the program.
  double Weight = 1.0;

  /// Lifetime distribution for this site's objects.
  LifetimeDistribution Lifetime;

  /// Simulated heap references per byte of each object.
  double RefsPerByte = 1.0;

  /// Site does not occur in test inputs (train-only code path).
  bool TrainOnly = false;

  /// Site does not occur in training inputs (test-only code path).
  bool TestOnly = false;

  /// In test runs, this fraction of the site's objects draws from
  /// ErrorLifetime instead of Lifetime — the source of the paper's
  /// "Error Bytes" (objects predicted short-lived that live long).
  double TestErrorFraction = 0.0;

  /// Lifetime used for the error fraction (typically long-lived).
  LifetimeDistribution ErrorLifetime;

  /// Number of consecutive objects emitted per visit to this site.  Values
  /// above 1 model phase behaviour (batch construction of tables/caches),
  /// which clusters the site's objects in address space.  The site's
  /// long-run allocation share is unchanged.
  unsigned BurstLength = 1;

  /// The (source-language) type of this site's objects; empty = the site's
  /// label.  Distinct sites often allocate the same type (a shared node or
  /// buffer struct), which bounds type-based prediction.
  std::string TypeName;
};

/// A complete program model.
struct ProgramModel {
  /// Program name as it appears in the paper's tables (e.g. "CFRAC").
  std::string Name;

  /// One-line description (Table 1 analogue).
  std::string Description;

  /// Objects allocated per run at scale = 1.0.
  uint64_t BaseObjects = 100000;

  /// Target percentage of all memory references that touch the heap
  /// (Table 2 "Heap Refs"); fixes the model's non-heap reference count.
  double TargetHeapRefPercent = 50.0;

  /// Standard deviation of the per-site log-normal weight perturbation
  /// applied in test runs.  Larger values model train/test inputs that
  /// exercise the program differently (e.g. two distinct PERL scripts).
  double TestWeightSigma = 0.0;

  /// Function calls executed per allocation.  Used by the CPU-cost model to
  /// amortize call-chain-encryption's per-call overhead per allocation
  /// (Table 9's "Arena (cce)" column).
  double CallsPerAlloc = 5.0;

  /// The site population.
  std::vector<SiteSpec> Sites;
};

/// Which input dataset a run models.
enum class RunKind { Train, Test };

} // namespace lifepred

#endif // LIFEPRED_WORKLOADS_PROGRAMMODEL_H
