//===- workloads/PaperData.h - Published numbers from the paper -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The numbers published in Tables 2-9 of Barrett & Zorn (PLDI 1993).  The
/// bench harnesses print these beside the measured values so every run is a
/// direct paper-vs-reproduction comparison, and the integration tests check
/// that the measured *shape* tracks the published one.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_WORKLOADS_PAPERDATA_H
#define LIFEPRED_WORKLOADS_PAPERDATA_H

#include <cstdint>
#include <string>

namespace lifepred {

/// All published per-program numbers.
struct PaperProgramData {
  const char *Name;

  // Table 1 / Table 2: program description and execution behaviour.
  const char *Description;
  unsigned SourceLines;         ///< Lines of C.
  double InstructionsM;         ///< Instructions executed (millions).
  double FunctionCallsM;        ///< Function calls (millions).
  double TotalBytesM;           ///< Bytes allocated (millions).
  double TotalObjectsM;         ///< Objects allocated (millions).
  double MaxBytesK;             ///< Peak live bytes (thousands).
  unsigned MaxObjects;          ///< Peak live objects.
  unsigned HeapRefsPercent;     ///< % of references to the heap.

  // Table 3: byte-weighted lifetime quantiles (bytes).
  double LifetimeQuantiles[5]; ///< 0 / 25 / 50 / 75 / 100 %.

  // Table 4: site-and-size prediction (threshold 32 KB).
  unsigned TotalSites;
  unsigned ActualShortPercent;
  unsigned SelfSitesUsed;
  double SelfPredictedPercent;
  double SelfErrorPercent;
  unsigned TrueSitesUsed;
  double TruePredictedPercent;
  double TrueErrorPercent;

  // Table 5: size-only prediction (self).
  unsigned SizeOnlyPredictedPercent;
  unsigned SizeOnlySitesUsed;

  // Table 6: chain length 1..7 then the complete (pruned) chain.
  int ChainPredPercent[8];
  int ChainNewRefPercent[8];
  /// Chain length at which the paper marks the abrupt improvement.
  int ChainJumpLength;

  // Table 7: arena fractions under true prediction.
  double ArenaAllocPercent;
  double ArenaBytesPercent;

  // Table 8: maximum heap sizes (kilobytes).
  unsigned FirstFitHeapK;
  unsigned SelfArenaHeapK;
  unsigned TrueArenaHeapK;

  // Table 9: instructions per alloc / free.
  int BsdAlloc, BsdFree;
  int FirstFitAlloc, FirstFitFree;
  int ArenaLen4Alloc, ArenaLen4Free;
  int ArenaCceAlloc, ArenaCceFree;
};

/// Published data for the five programs, in the paper's order
/// (CFRAC, ESPRESSO, GAWK, GHOST, PERL).
extern const PaperProgramData PaperPrograms[5];

/// Number of modeled programs.
inline constexpr unsigned PaperProgramCount = 5;

/// Looks up published data by program name; nullptr if unknown.
const PaperProgramData *paperData(const std::string &Name);

} // namespace lifepred

#endif // LIFEPRED_WORKLOADS_PAPERDATA_H
