//===- workloads/Programs.h - The five modeled programs ---------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factories for the five synthetic program models standing in for the
/// paper's five allocation-intensive C programs (CFRAC, ESPRESSO, GAWK,
/// GHOST, PERL).  Each model is calibrated so the published behaviour of
/// its namesake — byte totals, lifetime quantiles, site counts, prediction
/// rates, chain-length jump, arena fractions — is reproduced by the same
/// code paths the paper's pipeline exercised.  See DESIGN.md for the
/// substitution rationale and each model's source file for the per-group
/// calibration notes.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_WORKLOADS_PROGRAMS_H
#define LIFEPRED_WORKLOADS_PROGRAMS_H

#include "workloads/ProgramModel.h"

#include <vector>

namespace lifepred {

/// CFRAC: continued-fraction integer factoring.  Tiny objects, nearly all
/// short-lived, a permanent factor base, and a test input that makes some
/// trained sites allocate very long-lived objects (3.65% error bytes —
/// the paper's arena-pollution case).
ProgramModel cfracModel();

/// ESPRESSO: PLA logic optimizer.  Thousands of sites, heavily referenced
/// long-lived cubes, recursion (the paper's length-7 > complete-chain
/// anomaly), and a flat chain-length response.
ProgramModel espressoModel();

/// GAWK: AWK interpreter.  Almost everything short-lived, prediction jump
/// at chain length 3, near-identical train/test behaviour.
ProgramModel gawkModel();

/// GHOST: PostScript interpreter.  Large heap, ~5000 six-kilobyte
/// short-lived objects that do not fit the 4 KB arenas, deep wrapper
/// layering (jump at length 4).
ProgramModel ghostModel();

/// PERL: report extraction.  Train and test runs are different scripts, so
/// true prediction finds far fewer sites than self prediction.
ProgramModel perlModel();

/// All five models in the paper's order.
std::vector<ProgramModel> allPrograms();

} // namespace lifepred

#endif // LIFEPRED_WORKLOADS_PROGRAMS_H
