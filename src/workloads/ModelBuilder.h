//===- workloads/ModelBuilder.h - Site-group model construction -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for building program models out of *site groups*: families of
/// allocation sites that share a wrapper-layer suffix, a size palette, and
/// a lifetime distribution.  The group abstraction makes the published
/// calibration targets explicit: a group's ByteShare is its fraction of the
/// program's allocated bytes, and its distinguishing depth (the length of
/// its shared suffix plus one) controls at which call-chain length the
/// paper's Table 6 prediction jump occurs.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_WORKLOADS_MODELBUILDER_H
#define LIFEPRED_WORKLOADS_MODELBUILDER_H

#include "workloads/ProgramModel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lifepred {

/// Parameters for one family of similar allocation sites.
struct GroupSpec {
  /// Basis for the per-site unique function names ("cf_pnum" produces
  /// "cf_pnum_0", "cf_pnum_1", ...).
  std::string BaseName;

  /// Number of sites in the group.
  unsigned Count = 1;

  /// Outermost path context (e.g. {main, interp_loop}).
  std::vector<PathSegment> Prefix;

  /// Shared allocator-wrapper suffix between the site's unique function and
  /// the allocator.  A group whose suffix (and sizes) it shares with a
  /// longer-lived group is indistinguishable from it at sub-chain lengths
  /// <= suffix length, so its sites become predictable only at length
  /// suffix length + 1 — the paper's layered-design effect.
  std::vector<PathSegment> Suffix;

  /// Object sizes, cycled across the group's sites.
  std::vector<uint32_t> Sizes;

  /// The group's fraction of the program's total allocated bytes (relative
  /// to the other groups' shares).
  double ByteShare = 0;

  /// Lifetime distribution shared by the group's sites.
  LifetimeDistribution Lifetime;

  /// Heap references per byte for the group's objects.
  double RefsPerByte = 1.0;

  /// Zipf exponent skewing per-site weights within the group (0 = equal).
  double ZipfExponent = 0;

  /// Fraction of sites that occur only in the training input.  For each
  /// such site a "twin" test-only site is added (modeling the test input
  /// exercising different code paths), weighted by MirrorWeightFactor.
  double TrainOnlyFraction = 0;

  /// Weight multiplier for the test-only twins; 0 disables twins.
  double MirrorWeightFactor = 1.0;

  /// Per-object probability, in test runs, of drawing from ErrorLifetime
  /// instead of Lifetime (source of prediction-error bytes).
  double TestErrorFraction = 0;

  /// Lifetime for error objects (typically long-lived).
  LifetimeDistribution ErrorLifetime;

  /// Uniform extra bytes in [0, SizeJitter] per allocation.
  uint32_t SizeJitter = 0;

  /// Consecutive objects per site visit (see SiteSpec::BurstLength).
  unsigned BurstLength = 1;

  /// Type name for all of the group's objects; empty = one type per group
  /// (named after the group).  Set two groups to the same TypeName to model
  /// a struct allocated from several sites.
  std::string TypeName;
};

/// Appends the group's sites (and any test-only twins) to \p Model.
void addGroup(ProgramModel &Model, const GroupSpec &Group);

/// Shorthand for a fixed (non-recursive) path segment.
inline PathSegment seg(std::string Function) {
  return PathSegment{std::move(Function), 1, 1};
}

/// Shorthand for a recursive path segment repeated [Min, Max] times.
inline PathSegment recSeg(std::string Function, unsigned Min, unsigned Max) {
  return PathSegment{std::move(Function), Min, Max};
}

} // namespace lifepred

#endif // LIFEPRED_WORKLOADS_MODELBUILDER_H
