//===- workloads/WorkloadRunner.cpp - Model execution ----------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadRunner.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace lifepred;

namespace {

/// A site prepared for fast sampling: pre-interned path ids and a cached
/// chain index when the site's chain never varies.
struct PreparedSite {
  const SiteSpec *Spec = nullptr;
  std::vector<std::pair<FunctionId, const PathSegment *>> Segments;
  bool FixedChain = true;
  uint32_t CachedChainIndex = 0;
  bool CacheValid = false;
  double EffectiveWeight = 0;
  uint32_t TypeId = 0;
};

bool sitePresent(const SiteSpec &Site, RunKind Kind) {
  if (Kind == RunKind::Train)
    return !Site.TestOnly;
  return !Site.TrainOnly;
}

} // namespace

AllocationTrace lifepred::runWorkload(const ProgramModel &Model,
                                      RunOptions Options,
                                      FunctionRegistry &Registry) {
  AllocationTrace Trace;
  bool IsTest = Options.Kind == RunKind::Test;

  // Seed independent streams for weights and events so a model change in
  // one place does not shift unrelated randomness.
  uint64_t KindSalt = IsTest ? 0x7e57 : 0x7121;
  Rng WeightRng(hashCombine(Options.Seed, 0x3e197));
  Rng EventRng(hashCombine(Options.Seed, KindSalt));

  // Intern type names over the whole model (not just the active sites) so
  // TypeIds agree between the train and test runs.  Id 0 means "untyped".
  std::unordered_map<std::string, uint32_t> TypeIds;
  auto InternType = [&TypeIds](const std::string &Name) -> uint32_t {
    if (Name.empty())
      return 0;
    auto [It, Inserted] =
        TypeIds.try_emplace(Name, static_cast<uint32_t>(TypeIds.size() + 1));
    return It->second;
  };
  std::vector<uint32_t> SiteTypeIds;
  SiteTypeIds.reserve(Model.Sites.size());
  for (const SiteSpec &Spec : Model.Sites)
    SiteTypeIds.push_back(
        InternType(Spec.TypeName.empty() ? Spec.Label : Spec.TypeName));

  // Prepare the active sites.
  std::vector<PreparedSite> Sites;
  Sites.reserve(Model.Sites.size());
  size_t SpecIndex = static_cast<size_t>(-1);
  for (const SiteSpec &Spec : Model.Sites) {
    ++SpecIndex;
    // Draw the weight perturbation for every site regardless of presence so
    // the weight stream stays aligned between train and test runs.
    double Perturbation = 1.0;
    if (Model.TestWeightSigma > 0)
      Perturbation =
          std::exp(WeightRng.nextGaussian() * Model.TestWeightSigma);
    if (!sitePresent(Spec, Options.Kind))
      continue;

    PreparedSite Prepared;
    Prepared.Spec = &Spec;
    for (const PathSegment &Segment : Spec.Path) {
      assert(Segment.MinRepeat >= 1 &&
             Segment.MinRepeat <= Segment.MaxRepeat &&
             "invalid path segment repeat bounds");
      Prepared.Segments.emplace_back(Registry.intern(Segment.Function),
                                     &Segment);
      if (Segment.MaxRepeat != Segment.MinRepeat)
        Prepared.FixedChain = false;
    }
    // Each visit to a burst site emits BurstLength objects, so divide the
    // visit weight accordingly to preserve the site's allocation share.
    Prepared.EffectiveWeight = Spec.Weight * (IsTest ? Perturbation : 1.0) /
                               std::max(1u, Spec.BurstLength);
    Prepared.TypeId = SiteTypeIds[SpecIndex];
    if (Prepared.EffectiveWeight > 0)
      Sites.push_back(std::move(Prepared));
  }
  assert(!Sites.empty() && "model has no active sites for this run kind");

  // Cumulative weights for O(log n) site sampling.
  std::vector<double> Cumulative;
  Cumulative.reserve(Sites.size());
  double Total = 0;
  for (const PreparedSite &Site : Sites) {
    Total += Site.EffectiveWeight;
    Cumulative.push_back(Total);
  }

  auto Objects = static_cast<uint64_t>(
      std::llround(static_cast<double>(Model.BaseObjects) * Options.Scale));
  uint64_t HeapRefs = 0;
  CallChain Chain;

  uint64_t Emitted = 0;
  while (Emitted < Objects) {
    double Target = EventRng.nextDouble() * Total;
    size_t Index = static_cast<size_t>(
        std::lower_bound(Cumulative.begin(), Cumulative.end(), Target) -
        Cumulative.begin());
    if (Index >= Sites.size())
      Index = Sites.size() - 1;
    PreparedSite &Site = Sites[Index];
    const SiteSpec &Spec = *Site.Spec;

    uint64_t Burst = std::max(1u, Spec.BurstLength);
    if (Burst > Objects - Emitted)
      Burst = Objects - Emitted;
    for (uint64_t B = 0; B < Burst; ++B) {
      AllocRecord Record;
      Record.Size = Spec.Size;
      if (Spec.SizeJitter > 0)
        Record.Size += static_cast<uint32_t>(
            EventRng.nextBelow(Spec.SizeJitter + 1));

      if (Site.FixedChain && Site.CacheValid) {
        Record.ChainIndex = Site.CachedChainIndex;
      } else {
        Chain = CallChain();
        for (auto &[Id, Segment] : Site.Segments) {
          unsigned Repeats = Segment->MinRepeat;
          if (Segment->MaxRepeat > Segment->MinRepeat)
            Repeats += static_cast<unsigned>(EventRng.nextBelow(
                Segment->MaxRepeat - Segment->MinRepeat + 1));
          for (unsigned R = 0; R < Repeats; ++R)
            Chain.push(Id);
        }
        Record.ChainIndex = Trace.internChain(Chain);
        if (Site.FixedChain) {
          Site.CachedChainIndex = Record.ChainIndex;
          Site.CacheValid = true;
        }
      }

      bool UseError = IsTest && Spec.TestErrorFraction > 0 &&
                      EventRng.nextBool(Spec.TestErrorFraction);
      Record.Lifetime = UseError ? Spec.ErrorLifetime.sample(EventRng)
                                 : Spec.Lifetime.sample(EventRng);

      Record.TypeId = Site.TypeId;
      Record.Refs = static_cast<uint32_t>(std::llround(
          static_cast<double>(Record.Size) * Spec.RefsPerByte));
      HeapRefs += Record.Refs;
      Trace.append(Record);
      ++Emitted;
    }
  }

  // Fix the non-heap reference count so the heap-reference percentage hits
  // the model's target (Table 2's "Heap Refs" column).
  double P = Model.TargetHeapRefPercent;
  if (P > 0 && P < 100)
    Trace.setNonHeapRefs(static_cast<uint64_t>(
        std::llround(static_cast<double>(HeapRefs) * (100.0 - P) / P)));
  return Trace;
}
