//===- workloads/PaperData.cpp - Published numbers from the paper ----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/PaperData.h"

using namespace lifepred;

const PaperProgramData lifepred::PaperPrograms[5] = {
    {
        "CFRAC",
        "Factors large integers using the continued fraction method",
        6000, 1490, 18.4, 65.0, 3.8, 83, 5236, 79,
        {10, 32, 48, 849, 64994593},
        134, 100, 110, 79.0, 0.00, 77, 47.3, 3.65,
        0, 5,
        {48, 76, 82, 82, 82, 82, 82, 82},
        {52, 66, 70, 70, 70, 70, 70, 70},
        2,
        2.6, 1.8,
        144, 208, 208,
        52, 17, 66, 64, 134, 62, 140, 62,
    },
    {
        "ESPRESSO",
        "PLA logic optimization, version 2.3",
        15500, 2419, 9.55, 105, 1.7, 254, 4387, 80,
        {4, 196, 2379, 25530, 104881499},
        2854, 91, 2291, 41.8, 0.00, 855, 18.1, 0.06,
        19, 177,
        {41, 41, 41, 42, 42, 43, 44, 42},
        {7, 7, 8, 8, 8, 9, 9, 8},
        1,
        19.1, 18.2,
        280, 344, 344,
        55, 17, 65, 65, 76, 55, 84, 55,
    },
    {
        "GAWK",
        "GNU AWK interpreter, version 2.11",
        8500, 2072, 28.7, 167, 4.3, 35, 1384, 47,
        {2, 29, 257, 1192, 167322377},
        171, 98, 93, 99.3, 0.00, 91, 99.3, 0.00,
        5, 64,
        {72, 78, 99, 99, 99, 99, 99, 99},
        {26, 29, 43, 43, 43, 43, 43, 43},
        3,
        98.2, 99.3,
        56, 112, 112,
        54, 17, 56, 64, 29, 11, 29, 11,
    },
    {
        "GHOST",
        "GhostScript PostScript interpreter, version 2.1 (NODISPLAY)",
        29500, 1035, 1.21, 89.7, 0.9, 2113, 26467, 69,
        {16, 4330, 8052, 393531, 89669104},
        634, 97, 256, 80.9, 0.00, 211, 71.8, 0.00,
        36, 106,
        {40, 40, 47, 75, 80, 80, 81, 81},
        {13, 13, 14, 31, 37, 37, 38, 38},
        4,
        81.3, 37.7,
        5584, 2896, 4048,
        61, 17, 165, 57, 58, 18, 142, 18,
    },
    {
        "PERL",
        "Perl 4.10 report extraction and printing language",
        34500, 894, 23.4, 33.5, 1.5, 62, 1826, 48,
        {1, 64, 887, 1306, 33528692},
        305, 99, 74, 91.4, 0.00, 29, 20.4, 1.11,
        29, 26,
        {31, 63, 63, 91, 94, 94, 95, 92},
        {23, 33, 33, 44, 45, 45, 45, 44},
        4,
        18.0, 20.5,
        80, 144, 144,
        51, 17, 70, 65, 82, 55, 120, 55,
    },
};

const PaperProgramData *lifepred::paperData(const std::string &Name) {
  for (const PaperProgramData &Data : PaperPrograms)
    if (Name == Data.Name)
      return &Data;
  return nullptr;
}
