//===- workloads/LifetimeDistribution.cpp - Lifetime sampling --------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/LifetimeDistribution.h"

#include "support/Assert.h"
#include "trace/AllocationTrace.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace lifepred;

LifetimeDistribution LifetimeDistribution::constant(uint64_t Lifetime) {
  assert(Lifetime >= 1 && "lifetimes are at least one byte");
  LifetimeDistribution D;
  D.Kind = KindTy::Constant;
  D.A = Lifetime;
  return D;
}

LifetimeDistribution LifetimeDistribution::uniform(uint64_t Lo, uint64_t Hi) {
  assert(Lo >= 1 && Lo <= Hi && "invalid uniform range");
  LifetimeDistribution D;
  D.Kind = KindTy::Uniform;
  D.A = Lo;
  D.B = Hi;
  return D;
}

LifetimeDistribution LifetimeDistribution::logUniform(uint64_t Lo,
                                                      uint64_t Hi) {
  assert(Lo >= 1 && Lo <= Hi && "invalid log-uniform range");
  LifetimeDistribution D;
  D.Kind = KindTy::LogUniform;
  D.A = Lo;
  D.B = Hi;
  return D;
}

LifetimeDistribution
LifetimeDistribution::fromQuantiles(std::vector<QuantilePoint> InPoints) {
  assert(InPoints.size() >= 2 && "need at least two control points");
  assert(InPoints.front().Probability == 0.0 && "first point must be P=0");
  assert(InPoints.back().Probability == 1.0 && "last point must be P=1");
  for (size_t I = 0; I < InPoints.size(); ++I) {
    assert(InPoints[I].Lifetime >= 1.0 && "lifetimes are at least one byte");
    assert(I == 0 ||
           InPoints[I].Probability >= InPoints[I - 1].Probability &&
               "probabilities must be non-decreasing");
    assert(I == 0 || InPoints[I].Lifetime >= InPoints[I - 1].Lifetime &&
                         "lifetimes must be non-decreasing");
  }
  LifetimeDistribution D;
  D.Kind = KindTy::Quantiles;
  D.Points = std::move(InPoints);
  return D;
}

LifetimeDistribution LifetimeDistribution::permanent() {
  LifetimeDistribution D;
  D.Kind = KindTy::Permanent;
  return D;
}

LifetimeDistribution LifetimeDistribution::mixture(
    std::vector<std::pair<double, LifetimeDistribution>> InComponents) {
  assert(!InComponents.empty() && "mixture needs components");
  LifetimeDistribution D;
  D.Kind = KindTy::Mixture;
  for (auto &[Weight, Component] : InComponents) {
    assert(Weight >= 0 && "negative mixture weight");
    D.Weights.push_back(Weight);
    D.Components.push_back(std::move(Component));
  }
  return D;
}

uint64_t LifetimeDistribution::sample(Rng &Random) const {
  switch (Kind) {
  case KindTy::Constant:
    return A;
  case KindTy::Uniform:
    return static_cast<uint64_t>(Random.nextInRange(
        static_cast<int64_t>(A), static_cast<int64_t>(B)));
  case KindTy::LogUniform: {
    double LogLo = std::log(static_cast<double>(A));
    double LogHi = std::log(static_cast<double>(B));
    double Value = std::exp(LogLo + Random.nextDouble() * (LogHi - LogLo));
    uint64_t Result = static_cast<uint64_t>(Value + 0.5);
    return std::clamp<uint64_t>(Result, A, B);
  }
  case KindTy::Quantiles: {
    double U = Random.nextDouble();
    size_t Hi = 1;
    while (Hi + 1 < Points.size() && Points[Hi].Probability < U)
      ++Hi;
    const QuantilePoint &P0 = Points[Hi - 1];
    const QuantilePoint &P1 = Points[Hi];
    double Span = P1.Probability - P0.Probability;
    double Frac = Span <= 0 ? 0.0 : (U - P0.Probability) / Span;
    double LogValue = std::log(P0.Lifetime) +
                      Frac * (std::log(P1.Lifetime) - std::log(P0.Lifetime));
    double Value = std::exp(LogValue);
    return std::max<uint64_t>(1, static_cast<uint64_t>(Value + 0.5));
  }
  case KindTy::Permanent:
    return NeverFreed;
  case KindTy::Mixture:
    return Components[Random.nextWeighted(Weights)].sample(Random);
  }
  LIFEPRED_UNREACHABLE("unknown lifetime distribution kind");
}

uint64_t LifetimeDistribution::maxValue() const {
  switch (Kind) {
  case KindTy::Constant:
    return A;
  case KindTy::Uniform:
  case KindTy::LogUniform:
    return B;
  case KindTy::Quantiles:
    return static_cast<uint64_t>(Points.back().Lifetime + 0.5);
  case KindTy::Permanent:
    return NeverFreed;
  case KindTy::Mixture: {
    uint64_t Max = 0;
    for (size_t I = 0; I < Components.size(); ++I)
      if (Weights[I] > 0)
        Max = std::max(Max, Components[I].maxValue());
    return Max;
  }
  }
  LIFEPRED_UNREACHABLE("unknown lifetime distribution kind");
}
