//===- workloads/ModelBuilder.cpp - Site-group model construction ----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/ModelBuilder.h"

#include "support/Hashing.h"

#include <cassert>
#include <cmath>

using namespace lifepred;

void lifepred::addGroup(ProgramModel &Model, const GroupSpec &Group) {
  assert(Group.Count >= 1 && "group needs at least one site");
  assert(!Group.Sizes.empty() && "group needs at least one size");
  assert(Group.ByteShare > 0 && "group needs a positive byte share");

  // Zipf weights within the group, normalized so the group's byte share is
  // split across sites (site byte share = ZipfWeight * Share / ZipfSum).
  std::vector<double> Zipf(Group.Count);
  double ZipfSum = 0;
  for (unsigned I = 0; I < Group.Count; ++I) {
    Zipf[I] = 1.0 / std::pow(static_cast<double>(I + 1), Group.ZipfExponent);
    ZipfSum += Zipf[I];
  }

  for (unsigned I = 0; I < Group.Count; ++I) {
    SiteSpec Site;
    Site.Label = Group.BaseName + "_" + std::to_string(I);
    Site.Path = Group.Prefix;
    Site.Path.push_back(seg(Site.Label));
    for (const PathSegment &Segment : Group.Suffix)
      Site.Path.push_back(Segment);
    Site.Size = Group.Sizes[I % Group.Sizes.size()];
    Site.SizeJitter = Group.SizeJitter;

    double SiteByteShare = Group.ByteShare * Zipf[I] / ZipfSum;
    // The runner samples sites by object count, so convert the byte share
    // to an object weight by dividing by the site's mean object size.
    double MeanSize =
        static_cast<double>(Site.Size) + Group.SizeJitter / 2.0;
    Site.Weight = SiteByteShare / MeanSize;

    Site.Lifetime = Group.Lifetime;
    Site.RefsPerByte = Group.RefsPerByte;
    Site.BurstLength = Group.BurstLength;
    Site.TypeName = Group.TypeName.empty() ? Group.BaseName
                                           : Group.TypeName;
    Site.TestErrorFraction = Group.TestErrorFraction;
    Site.ErrorLifetime = Group.ErrorLifetime;

    // Spread the train-only sites across the group deterministically (a
    // hash stripe rather than a prefix, so Zipf-heavy sites are not all
    // train-only).
    bool TrainOnly = Group.TrainOnlyFraction > 0 &&
                     static_cast<double>(hashCombine(I, 0x517e) % 1000u) <
                         Group.TrainOnlyFraction * 1000.0;
    Site.TrainOnly = TrainOnly;
    Model.Sites.push_back(Site);

    if (TrainOnly && Group.MirrorWeightFactor > 0) {
      // The test input exercises a different code path instead: a twin site
      // that the trained database has never seen.
      SiteSpec Twin = Site;
      Twin.Label += "_t";
      Twin.Path[Group.Prefix.size()] = seg(Twin.Label);
      Twin.Weight *= Group.MirrorWeightFactor;
      Twin.TrainOnly = false;
      Twin.TestOnly = true;
      Model.Sites.push_back(Twin);
    }
  }
}
