//===- workloads/models/Cfrac.cpp - CFRAC program model --------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Calibration targets (paper values):
///   Table 2: 3.8M objects, 65.0M bytes (mean ~17 B), peak 83 KB / 5236
///            objects, 79% heap refs.
///   Table 3: byte-weighted lifetime quartiles 10 / 32 / 48 / 849, max ~65M.
///   Table 4: 134 sites; self 110 sites -> 79.0%; true 77 sites -> 47.3%,
///            3.65% error bytes.
///   Table 5: size-only prediction ~0% (5 sizes all-short).
///   Table 6: 48 / 76 / 82 ... (jump at length 2).
///   Table 7: arena pollution — error objects are *very* long-lived, so the
///            arenas fill with live objects and the allocator degenerates.
///
//===----------------------------------------------------------------------===//

#include "workloads/ModelBuilder.h"
#include "workloads/Programs.h"

using namespace lifepred;

ProgramModel lifepred::cfracModel() {
  ProgramModel Model;
  Model.Name = "CFRAC";
  Model.Description =
      "Factors large integers using the continued fraction method";
  Model.BaseObjects = 4350000;
  Model.TargetHeapRefPercent = 79;
  Model.TestWeightSigma = 0.25;
  Model.CallsPerAlloc = 5.3; // consistent with Table 9's cce overhead

  std::vector<PathSegment> Loop = {seg("main"), seg("cfrac_loop")};

  // Lifetimes (bytes).  Most cfrac objects are multi-precision digits that
  // die almost immediately.
  auto Tiny = LifetimeDistribution::fromQuantiles(
      {{0, 8}, {0.25, 24}, {0.5, 32}, {0.75, 420}, {1.0, 8000}});
  auto Mid = LifetimeDistribution::fromQuantiles(
      {{0, 48}, {0.5, 1200}, {1.0, 25000}});
  auto Long = LifetimeDistribution::logUniform(48 * 1024, 4 * 1000 * 1000);
  // Error objects in the test input are extremely long-lived — this is what
  // pollutes the arenas (paper section 5.2).
  auto VeryLong =
      LifetimeDistribution::logUniform(300 * 1000, 4 * 1000 * 1000);

  // G1: digit buffers allocated directly (distinguishable at length 1).
  {
    GroupSpec G;
    G.BaseName = "cf_digit";
    G.Count = 52;
    G.Prefix = Loop;
    G.Sizes = {8, 12, 16, 20, 24};
    G.ByteShare = 0.47;
    G.Lifetime = Tiny;
    G.RefsPerByte = 1.5;
    G.TrainOnlyFraction = 0.37;
    G.TestErrorFraction = 0.075;
    G.ErrorLifetime = VeryLong;
    addGroup(Model, G);
  }

  // G2: precision-number objects behind one wrapper layer, spoiled at
  // length 1 by the mixed group below (same wrapper, same sizes), so they
  // become predictable at length 2 — the paper's jump.
  {
    GroupSpec G;
    G.BaseName = "cf_pnum";
    G.TypeName = "pnum";
    G.Count = 38;
    G.Prefix = Loop;
    G.Suffix = {seg("pnum_alloc")};
    G.Sizes = {12, 16, 20, 28};
    G.ByteShare = 0.27;
    G.Lifetime = Tiny;
    G.RefsPerByte = 1.5;
    G.TrainOnlyFraction = 0.37;
    G.TestErrorFraction = 0.075;
    G.ErrorLifetime = VeryLong;
    addGroup(Model, G);
  }

  // G3: residue lists behind two wrapper layers (predictable at length 3;
  // spoiled below by cf_res_mixed).
  {
    GroupSpec G;
    G.BaseName = "cf_res";
    G.Count = 13;
    G.Prefix = Loop;
    G.Suffix = {seg("xmalloc"), seg("reserve")};
    G.Sizes = {16, 24};
    G.ByteShare = 0.05;
    G.Lifetime = Mid;
    G.RefsPerByte = 1.5;
    G.TrainOnlyFraction = 0.37;
    addGroup(Model, G);
  }

  // Rare all-short sites with sizes used nowhere else: the only thing
  // size-only prediction can find (Table 5: ~0% from 5 sites).
  {
    GroupSpec G;
    G.BaseName = "cf_rare";
    G.Count = 5;
    G.Prefix = Loop;
    G.Sizes = {40, 44, 52, 60, 68};
    G.ByteShare = 0.003;
    G.Lifetime = Tiny;
    G.RefsPerByte = 1.5;
    addGroup(Model, G);
  }

  // Mixed sites: mostly short but occasionally long-lived, so the training
  // rule rejects them.  They share pnum_alloc and its sizes, spoiling G2 at
  // length 1.
  {
    GroupSpec G;
    G.BaseName = "cf_mix";
    G.TypeName = "pnum"; // Same struct as cf_pnum: type cannot separate.
    G.Count = 20;
    G.Prefix = Loop;
    G.Suffix = {seg("pnum_alloc")};
    G.Sizes = {8, 12, 16, 20, 24, 28};
    G.ByteShare = 0.17;
    G.Lifetime = LifetimeDistribution::mixture(
        {{0.98, Tiny}, {0.02, Long}});
    G.RefsPerByte = 0.6;
    addGroup(Model, G);
  }

  // A small mixed group sharing G3's wrappers and sizes, so G3 is only
  // predictable once the chain is deep enough to see past "reserve".
  {
    GroupSpec G;
    G.BaseName = "cf_resmix";
    G.Count = 4;
    G.Prefix = Loop;
    G.Suffix = {seg("xmalloc"), seg("reserve")};
    G.Sizes = {16, 24};
    G.ByteShare = 0.035;
    G.Lifetime = LifetimeDistribution::mixture(
        {{0.97, Mid}, {0.03, Long}});
    G.RefsPerByte = 0.6;
    addGroup(Model, G);
  }

  // The factor base: ~4800 permanent 12-byte entries = 58 KB live at exit,
  // which dominates the 83 KB peak heap.
  {
    GroupSpec G;
    G.BaseName = "cf_fbase";
    G.Count = 2;
    G.Prefix = Loop;
    G.Suffix = {seg("pnum_alloc")};
    G.Sizes = {12};
    G.ByteShare = 0.001;
    G.Lifetime = LifetimeDistribution::permanent();
    G.BurstLength = 256;
    G.RefsPerByte = 0.3;
    addGroup(Model, G);
  }

  return Model;
}
