//===- workloads/models/Espresso.cpp - ESPRESSO program model --------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Calibration targets (paper values):
///   Table 2: 1.7M objects, 105M bytes (mean ~62 B), peak 254 KB / 4387
///            objects, 80% heap refs.
///   Table 3: quartiles 4 / 196 / 2379 / 25530, max ~105M.
///   Table 4: 2854 sites; self 2291 -> 41.8%; true 855 -> 18.1%, 0.06% err.
///   Table 5: size-only ~19% (177 size classes exclusively short).
///   Table 6: essentially flat (41..44) with the complete-chain value (42)
///            *below* length-7 (44): recursion pruning merges sites that
///            raw sub-chains keep apart.
///   Refs:    short-lived sets are barely referenced (New Ref ~8%) while
///            the long-lived cube covers are scanned repeatedly.
///
//===----------------------------------------------------------------------===//

#include "workloads/ModelBuilder.h"
#include "workloads/Programs.h"

using namespace lifepred;

ProgramModel lifepred::espressoModel() {
  ProgramModel Model;
  Model.Name = "ESPRESSO";
  Model.Description = "PLA logic optimization, version 2.3";
  Model.BaseObjects = 2110000;
  Model.TargetHeapRefPercent = 80;
  Model.TestWeightSigma = 0.35;
  Model.CallsPerAlloc = 5.6;

  std::vector<PathSegment> Minimize = {seg("main"), seg("espresso_main"),
                                       seg("minimize")};

  auto Short = LifetimeDistribution::fromQuantiles(
      {{0, 4}, {0.25, 170}, {0.5, 1700}, {0.75, 26000}, {1.0, 31000}});
  auto MixShort = LifetimeDistribution::fromQuantiles(
      {{0, 4}, {0.5, 1900}, {1.0, 30000}});
  auto Long = LifetimeDistribution::logUniform(33000, 2500 * 1000);

  // Sizes used by both short and mixed sites (contaminated for Table 5)...
  std::vector<uint32_t> SharedSizes = {16, 24, 32, 48, 64, 96, 128, 192, 256};
  // ...and sizes used exclusively by short-lived sites (the ~19% that
  // size-only prediction can still find).
  std::vector<uint32_t> ShortOnlySizes;
  for (uint32_t S = 20; ShortOnlySizes.size() < 177; S += 8)
    ShortOnlySizes.push_back(S);

  // G1a: leaf temporaries with shared (contaminated) sizes.
  {
    GroupSpec G;
    G.BaseName = "es_leaf";
    G.Count = 1210;
    G.Prefix = Minimize;
    G.Sizes = SharedSizes;
    G.ByteShare = 0.21;
    G.Lifetime = Short;
    G.RefsPerByte = 0.3;
    G.ZipfExponent = 0.6;
    G.TrainOnlyFraction = 0.62;
    G.TestErrorFraction = 0.004;
    G.ErrorLifetime = Long;
    addGroup(Model, G);
  }

  // G1b: leaf temporaries with short-only sizes (size-only predictable).
  {
    GroupSpec G;
    G.BaseName = "es_set";
    G.Count = 1120;
    G.Prefix = Minimize;
    G.Sizes = ShortOnlySizes;
    G.ByteShare = 0.19;
    G.Lifetime = Short;
    G.RefsPerByte = 0.3;
    G.ZipfExponent = 0.6;
    G.TrainOnlyFraction = 0.62;
    G.TestErrorFraction = 0.004;
    G.ErrorLifetime = Long;
    addGroup(Model, G);
  }

  // G2: cube covers — mostly short but with a heavy long-lived component,
  // so their sites never qualify.  These carry most heap references.
  {
    GroupSpec G;
    G.BaseName = "es_cover";
    G.Count = 560;
    G.Prefix = Minimize;
    G.Sizes = SharedSizes;
    G.ByteShare = 0.53;
    G.Lifetime = LifetimeDistribution::mixture(
        {{0.83, MixShort}, {0.17, Long}});
    G.RefsPerByte = 3.0;
    G.BurstLength = 256;
    addGroup(Model, G);
  }

  // G3: recursion anomaly.  sharp() recurses; allocations from the deep
  // recursion are short-lived while shallow calls sometimes build
  // long-lived results.  Raw length-5..7 sub-chains separate the depths
  // (all-short subsets appear), but cycle pruning merges them into one
  // mixed site — so the complete chain predicts *less* than length 7.
  for (unsigned Depth = 3; Depth <= 5; ++Depth) {
    GroupSpec G;
    // The same unique-function names at every depth, so the pruned chains
    // coincide across depths while the raw chains differ.
    G.BaseName = "es_sharp";
    G.Count = 12;
    G.Prefix = {seg("main"), seg("espresso_main")};
    for (unsigned R = 0; R < Depth; ++R)
      G.Prefix.push_back(seg("sharp"));
    G.Sizes = {32, 64};
    G.ByteShare = Depth == 3 ? 0.012 : 0.008;
    G.Lifetime = Depth == 3
                     ? LifetimeDistribution::mixture(
                           {{0.9, MixShort}, {0.1, Long}})
                     : Short;
    G.RefsPerByte = 0.5;
    addGroup(Model, G);
  }

  // G4: setup allocations behind three wrapper layers; the mixed twin
  // below shares the wrappers and sizes, delaying prediction to length 4
  // (the paper's small +1% step at length 4).
  {
    GroupSpec G;
    G.BaseName = "es_init";
    G.Count = 16;
    G.Prefix = Minimize;
    G.Suffix = {seg("cube_new"), seg("set_new"), seg("sm_alloc")};
    G.Sizes = {40, 72};
    G.ByteShare = 0.012;
    G.Lifetime = Short;
    G.RefsPerByte = 0.3;
    addGroup(Model, G);
  }
  {
    GroupSpec G;
    G.BaseName = "es_initmix";
    G.Count = 6;
    G.Prefix = Minimize;
    G.Suffix = {seg("cube_new"), seg("set_new"), seg("sm_alloc")};
    G.Sizes = {40, 72};
    G.ByteShare = 0.004;
    G.Lifetime = LifetimeDistribution::mixture(
        {{0.9, MixShort}, {0.1, Long}});
    G.RefsPerByte = 0.5;
    addGroup(Model, G);
  }

  // Permanent PLA description: ~3000 * 48 B = 144 KB live at exit.
  {
    GroupSpec G;
    G.BaseName = "es_pla";
    G.Count = 3;
    G.Prefix = {seg("main"), seg("espresso_main"), seg("read_pla")};
    G.Sizes = {48};
    G.ByteShare = 0.0018;
    G.Lifetime = LifetimeDistribution::permanent();
    G.BurstLength = 512;
    G.RefsPerByte = 2.0;
    addGroup(Model, G);
  }

  return Model;
}
