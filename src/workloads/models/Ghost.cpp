//===- workloads/models/Ghost.cpp - GHOST program model --------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Calibration targets (paper values):
///   Table 2: 0.9M objects, 89.7M bytes (mean ~100 B), peak 2113 KB /
///            26467 objects, 69% heap refs.
///   Table 3: quartiles 16 / 4330 / 8052 / 393531, max ~89.7M.
///   Table 4: 634 sites; self 256 -> 80.9%; true 211 -> 71.8%, no error.
///   Table 5: size-only ~36%: the ~5000 six-kilobyte short-lived objects
///            (33.6% of all bytes) have a size used nowhere else.
///   Table 6: 40 / 40 / 47 / 75 / 80 / 80 / 81 (jump at length 4: most
///            allocation flows through three wrapper layers).
///   Table 7: arena *objects* 81.3% but arena *bytes* only 37.7% — the
///            6 KB objects are predicted short-lived but do not fit the
///            4 KB arenas and fall back to the general heap.
///   Table 8: the only program with a large heap; segregation cuts the
///            first-fit heap roughly in half.
///
//===----------------------------------------------------------------------===//

#include "workloads/ModelBuilder.h"
#include "workloads/Programs.h"

using namespace lifepred;

ProgramModel lifepred::ghostModel() {
  ProgramModel Model;
  Model.Name = "GHOST";
  Model.Description =
      "GhostScript PostScript interpreter, version 2.1 (NODISPLAY)";
  Model.BaseObjects = 1070000;
  Model.TargetHeapRefPercent = 69;
  Model.TestWeightSigma = 0.3;
  // Table 9's cce overhead implies ~31 calls per allocation (the paper's
  // Table 2 lists 1.21M calls, which is inconsistent with its own Table 9
  // formula; we follow Table 9 — see EXPERIMENTS.md).
  Model.CallsPerAlloc = 31.3;

  std::vector<PathSegment> Interp = {seg("main"), seg("gs_interpret"),
                                     seg("exec_op")};

  auto Short = LifetimeDistribution::fromQuantiles(
      {{0, 16}, {0.25, 3000}, {0.5, 5500}, {0.75, 12000}, {1.0, 31000}});
  auto BigShort = LifetimeDistribution::fromQuantiles(
      {{0, 8000}, {0.5, 13000}, {1.0, 28000}});
  auto Long = LifetimeDistribution::logUniform(60000, 30 * 1000 * 1000);

  std::vector<uint32_t> SmallSizes = {16, 24, 32, 40, 56, 72, 96, 128};
  std::vector<uint32_t> CacheSizes = {192, 256, 384, 512, 768};

  // G1: the 6 KB band buffers: short-lived, unique size, allocated directly
  // by the rasterizer.  ~5000 objects * 6144 B = 33.6% of all bytes.
  // Predictable at every chain length and by size alone — but too big for
  // a 4 KB arena.
  {
    GroupSpec G;
    G.BaseName = "gs_band";
    G.Count = 6;
    G.Prefix = Interp;
    G.Sizes = {6144};
    G.ByteShare = 0.336;
    G.Lifetime = BigShort;
    G.RefsPerByte = 0.3;
    addGroup(Model, G);
  }

  // G2: a slice of small objects allocated directly (length 1).
  {
    GroupSpec G;
    G.BaseName = "gs_tmp";
    G.Count = 40;
    G.Prefix = Interp;
    G.Sizes = SmallSizes;
    G.ByteShare = 0.07;
    G.Lifetime = Short;
    G.RefsPerByte = 0.8;
    G.TrainOnlyFraction = 0.12;
    addGroup(Model, G);
  }

  // G3: names/refs behind two wrapper layers (predictable at length 3).
  {
    GroupSpec G;
    G.BaseName = "gs_name";
    G.Count = 36;
    G.Prefix = Interp;
    G.Suffix = {seg("name_ref"), seg("gs_malloc")};
    G.Sizes = SmallSizes;
    G.ByteShare = 0.07;
    G.Lifetime = Short;
    G.RefsPerByte = 0.8;
    G.TrainOnlyFraction = 0.12;
    addGroup(Model, G);
  }
  {
    GroupSpec G;
    G.BaseName = "gs_namemix";
    G.Count = 10;
    G.Prefix = Interp;
    G.Suffix = {seg("name_ref"), seg("gs_malloc")};
    G.Sizes = SmallSizes;
    G.ByteShare = 0.008;
    G.Lifetime = LifetimeDistribution::mixture({{0.6, Short}, {0.4, Long}});
    G.RefsPerByte = 2.5;
    addGroup(Model, G);
  }

  // G4: the bulk of the interpreter's structures, behind three wrapper
  // layers (alloc_struct -> chunk_alloc -> obj_alloc): the paper's jump
  // from 47% to 75% at length 4.
  {
    GroupSpec G;
    G.BaseName = "gs_struct";
    G.TypeName = "ref";
    G.Count = 110;
    G.Prefix = Interp;
    G.Suffix = {seg("alloc_struct"), seg("chunk_alloc"), seg("obj_alloc")};
    G.Sizes = SmallSizes;
    G.ByteShare = 0.28;
    G.Lifetime = Short;
    G.RefsPerByte = 0.8;
    G.TrainOnlyFraction = 0.12;
    addGroup(Model, G);
  }
  {
    GroupSpec G;
    G.BaseName = "gs_structmix";
    G.TypeName = "ref"; // GhostScript's tagged ref cells.
    G.Count = 30;
    G.Prefix = Interp;
    G.Suffix = {seg("alloc_struct"), seg("chunk_alloc"), seg("obj_alloc")};
    G.Sizes = SmallSizes;
    G.ByteShare = 0.02;
    G.Lifetime = LifetimeDistribution::mixture({{0.6, Short}, {0.4, Long}});
    G.RefsPerByte = 2.5;
    addGroup(Model, G);
  }

  // G5: dictionary entries behind four wrapper layers (length 5).
  {
    GroupSpec G;
    G.BaseName = "gs_dict";
    G.Count = 30;
    G.Prefix = Interp;
    G.Suffix = {seg("dict_put"), seg("alloc_struct"), seg("chunk_alloc"),
                seg("obj_alloc")};
    G.Sizes = {48, 96};
    G.ByteShare = 0.05;
    G.Lifetime = Short;
    G.RefsPerByte = 0.8;
    G.TrainOnlyFraction = 0.12;
    addGroup(Model, G);
  }
  {
    GroupSpec G;
    G.BaseName = "gs_dictmix";
    G.Count = 8;
    G.Prefix = Interp;
    G.Suffix = {seg("dict_put"), seg("alloc_struct"), seg("chunk_alloc"),
                seg("obj_alloc")};
    G.Sizes = {48, 96};
    G.ByteShare = 0.004;
    G.Lifetime = LifetimeDistribution::mixture({{0.6, Short}, {0.4, Long}});
    G.RefsPerByte = 2.5;
    addGroup(Model, G);
  }

  // G6: a sliver behind six wrapper layers (the +1% at length 7).
  {
    GroupSpec G;
    G.BaseName = "gs_deep";
    G.Count = 8;
    G.Prefix = Interp;
    G.Suffix = {seg("gsave"), seg("clip_path"), seg("dict_put"),
                seg("alloc_struct"), seg("chunk_alloc"), seg("obj_alloc")};
    G.Sizes = {64, 160};
    G.ByteShare = 0.01;
    G.Lifetime = Short;
    G.RefsPerByte = 0.8;
    addGroup(Model, G);
  }
  {
    GroupSpec G;
    G.BaseName = "gs_deepmix";
    G.Count = 3;
    G.Prefix = Interp;
    G.Suffix = {seg("gsave"), seg("clip_path"), seg("dict_put"),
                seg("alloc_struct"), seg("chunk_alloc"), seg("obj_alloc")};
    G.Sizes = {64, 160};
    G.ByteShare = 0.001;
    G.Lifetime = LifetimeDistribution::mixture({{0.6, Short}, {0.4, Long}});
    G.RefsPerByte = 2.5;
    addGroup(Model, G);
  }

  // G6b: glyph bitmaps with sizes used nowhere else — the extra size
  // classes that keep size-only prediction near the published 36%.
  {
    GroupSpec G;
    G.BaseName = "gs_glyph";
    G.Count = 40;
    G.Prefix = Interp;
    std::vector<uint32_t> GlyphSizes;
    for (uint32_t K = 0; K < 40; ++K)
      GlyphSizes.push_back(520 + 16 * K);
    G.Sizes = GlyphSizes;
    G.ByteShare = 0.022;
    G.Lifetime = Short;
    G.RefsPerByte = 0.8;
    G.TrainOnlyFraction = 0.12;
    addGroup(Model, G);
  }

  // G7: font and path caches — mixed lifetimes, never predicted, heavily
  // referenced.
  {
    GroupSpec G;
    G.BaseName = "gs_cache";
    G.Count = 290;
    G.Prefix = Interp;
    G.Sizes = CacheSizes;
    G.ByteShare = 0.14;
    G.Lifetime = LifetimeDistribution::mixture({{0.82, Short}, {0.18, Long}});
    G.RefsPerByte = 2.5;
    addGroup(Model, G);
  }

  // G8: permanent fonts and systemdict: ~18000 * 64 B = 1.15 MB of the
  // 2.1 MB peak heap.
  {
    GroupSpec G;
    G.BaseName = "gs_font";
    G.Count = 15;
    G.Prefix = {seg("main"), seg("gs_init")};
    G.Suffix = {seg("alloc_struct"), seg("chunk_alloc"), seg("obj_alloc")};
    G.Sizes = {48};
    G.ByteShare = 0.021;
    G.Lifetime = LifetimeDistribution::permanent();
    G.RefsPerByte = 2.5;
    addGroup(Model, G);
  }

  return Model;
}
