//===- workloads/models/Perl.cpp - PERL program model ----------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Calibration targets (paper values):
///   Table 2: 1.5M objects, 33.5M bytes (mean ~22 B), peak 62 KB / 1826
///            objects, 48% heap refs.
///   Table 3: quartiles 1 / 64 / 887 / 1306, max ~33.5M.
///   Table 4: 305 sites; self 74 -> 91.4%; true 29 -> 20.4%, 1.11% error.
///            Train and test are *different perl scripts*, so the test run
///            exercises mostly different sites and weights them very
///            differently — the large self/true gap.
///   Table 5: size-only ~29% (26 size classes).
///   Table 6: 31 / 63 / 63 / 91 / 94 ... with the complete chain (92)
///            below length 7 (95): perl's recursive evaluator.
///
//===----------------------------------------------------------------------===//

#include "workloads/ModelBuilder.h"
#include "workloads/Programs.h"

using namespace lifepred;

ProgramModel lifepred::perlModel() {
  ProgramModel Model;
  Model.Name = "PERL";
  Model.Description = "Perl 4.10 report extraction and printing language";
  Model.BaseObjects = 1715000;
  Model.TargetHeapRefPercent = 48;
  Model.TestWeightSigma = 0.5;
  Model.CallsPerAlloc = 15.6;

  std::vector<PathSegment> Run = {seg("main"), seg("perl_run"), seg("eval")};

  auto Short = LifetimeDistribution::fromQuantiles(
      {{0, 1}, {0.25, 60}, {0.5, 800}, {0.75, 1280}, {1.0, 9000}});
  auto Long = LifetimeDistribution::logUniform(40000, 3 * 1000 * 1000);
  auto VeryLong =
      LifetimeDistribution::logUniform(40 * 1000, 400 * 1000);

  std::vector<uint32_t> SmallSizes = {8, 12, 16, 20, 24, 32};
  // Sizes only ever used by short-lived sites (Table 5's 29% / 26 classes).
  std::vector<uint32_t> ShortOnlySizes;
  for (uint32_t K = 0; K < 26; ++K)
    ShortOnlySizes.push_back(36 + 4 * K);

  // G1: scalar temporaries allocated directly (length 1).  Their sizes are
  // the short-only ones, so size-only prediction finds them too.
  {
    GroupSpec G;
    G.BaseName = "pl_tmp";
    G.Count = 30;
    G.Prefix = Run;
    G.Sizes = ShortOnlySizes;
    G.ByteShare = 0.31;
    G.Lifetime = Short;
    G.RefsPerByte = 2.0;
    G.TrainOnlyFraction = 0.68;
    G.MirrorWeightFactor = 2.2;
    G.TestErrorFraction = 0.08;
    G.ErrorLifetime = VeryLong;
    addGroup(Model, G);
  }

  // G2: string values behind sv_grow; spoiled at length 1 by the mixed
  // group below (predictable at length 2: the paper's 31 -> 63 jump).
  {
    GroupSpec G;
    G.BaseName = "pl_sv";
    G.TypeName = "SV";
    G.Count = 25;
    G.Prefix = Run;
    G.Suffix = {seg("sv_grow")};
    G.Sizes = SmallSizes;
    G.ByteShare = 0.32;
    G.Lifetime = Short;
    G.RefsPerByte = 1.2;
    G.TrainOnlyFraction = 0.68;
    G.MirrorWeightFactor = 2.2;
    G.TestErrorFraction = 0.08;
    G.ErrorLifetime = VeryLong;
    addGroup(Model, G);
  }
  {
    GroupSpec G;
    G.BaseName = "pl_svmix";
    G.TypeName = "SV"; // perl scalars are one struct everywhere.
    G.Count = 40;
    G.Prefix = Run;
    G.Suffix = {seg("sv_grow")};
    G.Sizes = SmallSizes;
    G.ByteShare = 0.02;
    G.Lifetime = LifetimeDistribution::mixture({{0.7, Short}, {0.3, Long}});
    G.RefsPerByte = 1.0;
    addGroup(Model, G);
  }

  // G3: hash entries behind three wrapper layers (length 4: 63 -> 91).
  {
    GroupSpec G;
    G.BaseName = "pl_hash";
    G.Count = 15;
    G.Prefix = Run;
    G.Suffix = {seg("hv_store"), seg("hent_new"), seg("safemalloc")};
    G.Sizes = SmallSizes;
    G.ByteShare = 0.28;
    G.Lifetime = Short;
    G.RefsPerByte = 0.9;
    G.TrainOnlyFraction = 0.68;
    G.MirrorWeightFactor = 2.2;
    addGroup(Model, G);
  }
  {
    GroupSpec G;
    G.BaseName = "pl_hashmix";
    G.Count = 30;
    G.Prefix = Run;
    G.Suffix = {seg("hv_store"), seg("hent_new"), seg("safemalloc")};
    G.Sizes = SmallSizes;
    G.ByteShare = 0.015;
    G.Lifetime = LifetimeDistribution::mixture({{0.7, Short}, {0.3, Long}});
    G.RefsPerByte = 1.0;
    addGroup(Model, G);
  }

  // G4: format buffers behind four wrapper layers (length 5: 91 -> 94).
  {
    GroupSpec G;
    G.BaseName = "pl_fmt";
    G.Count = 4;
    G.Prefix = Run;
    G.Suffix = {seg("do_write"), seg("hv_store"), seg("hent_new"),
                seg("safemalloc")};
    G.Sizes = {24, 32};
    G.ByteShare = 0.03;
    G.Lifetime = Short;
    G.RefsPerByte = 1.2;
    G.TrainOnlyFraction = 0.68;
    G.MirrorWeightFactor = 2.2;
    addGroup(Model, G);
  }
  {
    GroupSpec G;
    G.BaseName = "pl_fmtmix";
    G.Count = 3;
    G.Prefix = Run;
    G.Suffix = {seg("do_write"), seg("hv_store"), seg("hent_new"),
                seg("safemalloc")};
    G.Sizes = {24, 32};
    G.ByteShare = 0.002;
    G.Lifetime = LifetimeDistribution::mixture({{0.7, Short}, {0.3, Long}});
    G.RefsPerByte = 1.0;
    addGroup(Model, G);
  }

  // G5: recursion anomaly — eval() recurses; deep-recursion allocations
  // are short while shallow ones are mixed.  Raw length-6/7 chains keep
  // the depths apart (length 7 predicts 95%) but cycle pruning merges
  // them (complete chain predicts 92%).
  for (unsigned Depth = 4; Depth <= 6; ++Depth) {
    GroupSpec G;
    G.BaseName = "pl_evrec";
    G.Count = 8;
    G.Prefix = {seg("main"), seg("perl_run")};
    for (unsigned R = 0; R < Depth; ++R)
      G.Prefix.push_back(seg("eval"));
    G.Sizes = {16, 24};
    G.ByteShare = Depth == 4 ? 0.01 : 0.008;
    G.Lifetime = Depth == 4
                     ? LifetimeDistribution::mixture(
                           {{0.75, Short}, {0.25, Long}})
                     : Short;
    G.RefsPerByte = 1.0;
    addGroup(Model, G);
  }

  // G6: symbol-table and regex sites — mixed, small, numerous (fills out
  // the 305-site total).
  {
    GroupSpec G;
    G.BaseName = "pl_stab";
    G.Count = 146;
    G.Prefix = Run;
    G.Sizes = SmallSizes;
    G.ByteShare = 0.01;
    G.Lifetime = LifetimeDistribution::mixture({{0.7, Short}, {0.3, Long}});
    G.RefsPerByte = 1.0;
    addGroup(Model, G);
  }

  // G7: permanent interpreter state: ~2000 * 16 B = 32 KB of the 62 KB
  // peak heap.
  {
    GroupSpec G;
    G.BaseName = "pl_glob";
    G.Count = 4;
    G.Prefix = {seg("main"), seg("perl_parse")};
    G.Suffix = {seg("safemalloc")};
    G.Sizes = {16};
    G.ByteShare = 0.0007;
    G.Lifetime = LifetimeDistribution::permanent();
    G.RefsPerByte = 1.0;
    addGroup(Model, G);
  }

  return Model;
}
