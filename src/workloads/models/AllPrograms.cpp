//===- workloads/models/AllPrograms.cpp - Model roster ---------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Programs.h"

using namespace lifepred;

std::vector<ProgramModel> lifepred::allPrograms() {
  std::vector<ProgramModel> Models;
  Models.push_back(cfracModel());
  Models.push_back(espressoModel());
  Models.push_back(gawkModel());
  Models.push_back(ghostModel());
  Models.push_back(perlModel());
  return Models;
}
