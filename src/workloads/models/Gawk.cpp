//===- workloads/models/Gawk.cpp - GAWK program model ----------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Calibration targets (paper values):
///   Table 2: 4.3M objects, 167M bytes (mean ~39 B), peak 35 KB / 1384
///            objects, 47% heap refs.
///   Table 3: quartiles 2 / 29 / 257 / 1192, max ~167M.
///   Table 4: 171 sites; self 93 -> 99.3%; true 91 -> 99.3%, no error.
///            Train and test inputs run the *same* awk script on different
///            data, so true prediction matches self prediction.
///   Table 5: size-only ~5% (64 size classes).
///   Table 6: 72 / 78 / 99 (jump at length 3: node allocations sit behind
///            two wrapper layers).
///
//===----------------------------------------------------------------------===//

#include "workloads/ModelBuilder.h"
#include "workloads/Programs.h"

using namespace lifepred;

ProgramModel lifepred::gawkModel() {
  ProgramModel Model;
  Model.Name = "GAWK";
  Model.Description = "GNU AWK interpreter, version 2.11";
  Model.BaseObjects = 5330000;
  Model.TargetHeapRefPercent = 47;
  Model.TestWeightSigma = 0.05;
  Model.CallsPerAlloc = 6.7;

  std::vector<PathSegment> Interp = {seg("main"), seg("do_file"),
                                     seg("interpret")};

  auto Short = LifetimeDistribution::fromQuantiles(
      {{0, 2}, {0.25, 24}, {0.5, 220}, {0.75, 1150}, {1.0, 15000}});
  auto Long = LifetimeDistribution::logUniform(40000, 2 * 1000 * 1000);

  std::vector<uint32_t> StrSizes;
  for (uint32_t S = 8; S <= 96; S += 4)
    StrSizes.push_back(S);
  std::vector<uint32_t> NodeSizes = {32, 40, 48};
  std::vector<uint32_t> BufSizes = {64, 128, 256};

  // G1: string values allocated directly by the evaluator (length 1).
  {
    GroupSpec G;
    G.BaseName = "gawk_str";
    G.Count = 16;
    G.Prefix = Interp;
    G.Sizes = StrSizes;
    G.ByteShare = 0.67;
    G.Lifetime = Short;
    G.RefsPerByte = 0.75;
    G.TrainOnlyFraction = 0.04;
    addGroup(Model, G);
  }

  // G1b: per-field cells with sizes used nowhere else — what size-only
  // prediction can find (Table 5: ~5% from 64 size classes).
  {
    GroupSpec G;
    G.BaseName = "gawk_field";
    G.Count = 64;
    G.Prefix = Interp;
    std::vector<uint32_t> FieldSizes;
    for (uint32_t K = 0; K < 64; ++K)
      FieldSizes.push_back(100 + 4 * K);
    G.Sizes = FieldSizes;
    G.ByteShare = 0.05;
    G.Lifetime = Short;
    G.RefsPerByte = 0.75;
    addGroup(Model, G);
  }

  // G2: parse/eval nodes behind obj_alloc -> xmalloc; spoiled at lengths
  // 1-2 by the mixed node sites below, predictable at length 3.
  {
    GroupSpec G;
    G.BaseName = "gawk_node";
    G.TypeName = "NODE";
    G.Count = 10;
    G.Prefix = Interp;
    G.Suffix = {seg("obj_alloc"), seg("xmalloc")};
    G.Sizes = NodeSizes;
    G.ByteShare = 0.21;
    G.Lifetime = Short;
    G.RefsPerByte = 1.7;
    addGroup(Model, G);
  }
  {
    GroupSpec G;
    G.BaseName = "gawk_nodemix";
    G.TypeName = "NODE"; // gawk's universal NODE struct.
    G.Count = 8;
    G.Prefix = Interp;
    G.Suffix = {seg("obj_alloc"), seg("xmalloc")};
    G.Sizes = NodeSizes;
    G.ByteShare = 0.02;
    G.Lifetime = LifetimeDistribution::mixture({{0.5, Short}, {0.5, Long}});
    G.RefsPerByte = 1.4;
    addGroup(Model, G);
  }

  // G3: record buffers behind one wrapper; the mixed twin delays
  // prediction to length 2 (the paper's +6% step).
  {
    GroupSpec G;
    G.BaseName = "gawk_buf";
    G.Count = 6;
    G.Prefix = Interp;
    G.Suffix = {seg("xrealloc_buf")};
    G.Sizes = BufSizes;
    G.ByteShare = 0.06;
    G.Lifetime = Short;
    G.RefsPerByte = 1.7;
    addGroup(Model, G);
  }
  {
    GroupSpec G;
    G.BaseName = "gawk_bufmix";
    G.Count = 4;
    G.Prefix = Interp;
    G.Suffix = {seg("xrealloc_buf")};
    G.Sizes = BufSizes;
    G.ByteShare = 0.008;
    G.Lifetime = LifetimeDistribution::mixture({{0.5, Short}, {0.5, Long}});
    G.RefsPerByte = 1.4;
    addGroup(Model, G);
  }

  // Mixed string sites contaminating the shared string sizes so size-only
  // prediction stays near 5%.
  {
    GroupSpec G;
    G.BaseName = "gawk_strmix";
    G.Count = 24;
    G.Prefix = Interp;
    G.Sizes = StrSizes;
    G.ByteShare = 0.006;
    G.Lifetime = LifetimeDistribution::mixture({{0.5, Short}, {0.5, Long}});
    G.RefsPerByte = 1.4;
    addGroup(Model, G);
  }

  // Regex and misc sites: mixed, numerous, tiny (fills out the paper's
  // 171-site total without contributing predictable bytes).
  {
    GroupSpec G;
    G.BaseName = "gawk_re";
    G.Count = 36;
    G.Prefix = Interp;
    G.Sizes = StrSizes;
    G.ByteShare = 0.004;
    G.Lifetime = LifetimeDistribution::mixture({{0.5, Short}, {0.5, Long}});
    G.RefsPerByte = 1.4;
    addGroup(Model, G);
  }

  // Permanent symbol table: ~600 * 40 B = 24 KB of the 35 KB peak.
  {
    GroupSpec G;
    G.BaseName = "gawk_sym";
    G.Count = 3;
    G.Prefix = {seg("main"), seg("parse_program")};
    G.Suffix = {seg("xmalloc")};
    G.Sizes = {40};
    G.ByteShare = 0.00021;
    G.Lifetime = LifetimeDistribution::permanent();
    G.RefsPerByte = 1.4;
    addGroup(Model, G);
  }

  return Model;
}
