//===- workloads/LifetimeDistribution.h - Lifetime sampling -----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Samplable object-lifetime distributions for the synthetic program models.
/// Lifetimes are measured in bytes allocated, matching the paper.  The
/// quantile form interpolates log-linearly through control points, which
/// lets a model reproduce a published quantile table (the paper's Table 3)
/// by construction.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_WORKLOADS_LIFETIMEDISTRIBUTION_H
#define LIFEPRED_WORKLOADS_LIFETIMEDISTRIBUTION_H

#include "support/Random.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace lifepred {

/// A (cumulative probability, lifetime-in-bytes) control point.
struct QuantilePoint {
  double Probability;
  double Lifetime;
};

/// A samplable lifetime distribution.
class LifetimeDistribution {
public:
  /// Default-constructs a degenerate distribution (always 1 byte).
  LifetimeDistribution() : Kind(KindTy::Constant), A(1) {}

  /// Every object lives exactly \p Lifetime bytes.
  static LifetimeDistribution constant(uint64_t Lifetime);

  /// Lifetimes uniform in [\p Lo, \p Hi] on a linear scale.
  static LifetimeDistribution uniform(uint64_t Lo, uint64_t Hi);

  /// Lifetimes uniform in [\p Lo, \p Hi] on a logarithmic scale (each
  /// decade equally likely) — matches the heavy skew of real lifetimes.
  static LifetimeDistribution logUniform(uint64_t Lo, uint64_t Hi);

  /// Inverse-CDF sampling through \p Points (log-linear interpolation
  /// between consecutive control points).  Points must have increasing
  /// probabilities starting at 0.0 and ending at 1.0, with lifetimes >= 1.
  static LifetimeDistribution fromQuantiles(std::vector<QuantilePoint> Points);

  /// Objects are never freed (alive at program exit).
  static LifetimeDistribution permanent();

  /// Mixture: sample component i with probability Weights[i] (normalized).
  static LifetimeDistribution
  mixture(std::vector<std::pair<double, LifetimeDistribution>> Components);

  /// Draws one lifetime.  Returns NeverFreed for the permanent kind.
  uint64_t sample(Rng &Random) const;

  /// Largest value this distribution can produce (NeverFreed for permanent
  /// or mixtures containing it).  Used by tests and model sanity checks.
  uint64_t maxValue() const;

  /// True if every sample is strictly below \p Threshold.
  bool alwaysBelow(uint64_t Threshold) const {
    return maxValue() < Threshold;
  }

private:
  enum class KindTy { Constant, Uniform, LogUniform, Quantiles, Permanent,
                      Mixture };

  KindTy Kind;
  uint64_t A = 0; ///< Constant value or range low bound.
  uint64_t B = 0; ///< Range high bound.
  std::vector<QuantilePoint> Points;             ///< Quantiles kind.
  std::vector<double> Weights;                   ///< Mixture kind.
  std::vector<LifetimeDistribution> Components;  ///< Mixture kind.
};

} // namespace lifepred

#endif // LIFEPRED_WORKLOADS_LIFETIMEDISTRIBUTION_H
