//===- telemetry/ReportDiff.cpp - Bench report regression diff -------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/ReportDiff.h"

#include "support/Json.h"
#include "telemetry/PerfLedger.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

using namespace lifepred;

bool lifepred::isTimingMetric(std::string_view Key) {
  return Key.find("seconds") != std::string_view::npos ||
         Key.find("per_sec") != std::string_view::npos ||
         Key.find("speedup") != std::string_view::npos ||
         Key.find("latency") != std::string_view::npos;
}

bool lifepred::isContentionMetric(std::string_view Key) {
  return Key.find("contention") != std::string_view::npos ||
         Key.find("cas_retries") != std::string_view::npos ||
         Key.find("queue_depth") != std::string_view::npos ||
         Key.find("drain_depth") != std::string_view::npos ||
         Key.find("imbalance") != std::string_view::npos;
}

bool lifepred::isOnlineMetric(std::string_view Key) {
  return Key.find("online.") != std::string_view::npos ||
         Key.find("retrain.") != std::string_view::npos;
}

bool lifepred::globMatch(std::string_view Pattern, std::string_view Text) {
  // Iterative matcher with single-star backtracking: on mismatch, retry
  // from the most recent '*' with one more character consumed.  Linear in
  // practice for metric-key patterns.
  size_t P = 0, T = 0;
  size_t StarP = std::string_view::npos, StarT = 0;
  while (T < Text.size()) {
    if (P < Pattern.size() &&
        (Pattern[P] == '?' || Pattern[P] == Text[T])) {
      ++P;
      ++T;
    } else if (P < Pattern.size() && Pattern[P] == '*') {
      StarP = P++;
      StarT = T;
    } else if (StarP != std::string_view::npos) {
      P = StarP + 1;
      T = ++StarT;
    } else {
      return false;
    }
  }
  while (P < Pattern.size() && Pattern[P] == '*')
    ++P;
  return P == Pattern.size();
}

namespace {

/// Flattened numeric metrics of one report, in a name-sorted map so the
/// comparison (and its printed output) is deterministic.
using MetricMap = std::map<std::string, double>;

void collectObject(const JsonValue *Object, const std::string &Prefix,
                   MetricMap &Out) {
  if (!Object || !Object->isObject())
    return;
  for (const auto &[Name, Value] : Object->members())
    if (Value.isNumber())
      Out[Prefix + Name] = Value.number();
}

MetricMap flattenReport(const JsonValue &Report) {
  MetricMap Metrics;
  // Top-level numerics that describe the run's result (schema_version is
  // compared separately; manifest members are provenance, not metrics).
  for (const char *Key : {"events", "wall_seconds", "events_per_sec"})
    if (const JsonValue *Value = Report.find(Key); Value && Value->isNumber())
      Metrics[Key] = Value->number();

  collectObject(Report.find("values"), "values.", Metrics);
  if (const JsonValue *Telemetry = Report.find("telemetry")) {
    collectObject(Telemetry->find("counters"), "telemetry.counters.",
                  Metrics);
    collectObject(Telemetry->find("gauges"), "telemetry.gauges.", Metrics);
    if (const JsonValue *Histograms = Telemetry->find("histograms");
        Histograms && Histograms->isObject()) {
      for (const auto &[Name, Histogram] : Histograms->members()) {
        std::string Prefix = "telemetry.histograms." + Name + ".";
        for (const char *Field : {"count", "sum", "p50", "p90", "p99"})
          if (const JsonValue *Value = Histogram.find(Field);
              Value && Value->isNumber())
            Metrics[Prefix + Field] = Value->number();
      }
    }
  }
  return Metrics;
}

double relativeDelta(double Old, double New) {
  double Magnitude = std::max(std::fabs(Old), std::fabs(New));
  if (Magnitude == 0.0)
    return 0.0;
  return std::fabs(New - Old) / Magnitude;
}

void compareManifest(const JsonValue &Old, const JsonValue &New,
                     DiffResult &Result) {
  double OldSchema = Old.numberOr("schema_version", 0);
  double NewSchema = New.numberOr("schema_version", 0);
  if (OldSchema != NewSchema)
    Result.Notes.push_back("schema_version differs: " +
                           std::to_string(static_cast<int>(OldSchema)) +
                           " vs " +
                           std::to_string(static_cast<int>(NewSchema)));
  const JsonValue *OldManifest = Old.find("manifest");
  const JsonValue *NewManifest = New.find("manifest");
  if (!OldManifest || !NewManifest || !OldManifest->isObject() ||
      !NewManifest->isObject())
    return;
  for (const auto &[Name, Value] : OldManifest->members()) {
    const JsonValue *Other = NewManifest->find(Name);
    if (!Other)
      continue;
    std::string OldText, NewText;
    if (Value.isString() && Other->isString()) {
      OldText = Value.string();
      NewText = Other->string();
    } else if (Value.isNumber() && Other->isNumber()) {
      if (Value.number() == Other->number())
        continue;
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%g", Value.number());
      OldText = Buf;
      std::snprintf(Buf, sizeof(Buf), "%g", Other->number());
      NewText = Buf;
    } else {
      continue;
    }
    if (OldText != NewText)
      Result.Notes.push_back("manifest." + Name + ": \"" + OldText +
                             "\" vs \"" + NewText + "\"");
  }
}

} // namespace

DiffResult lifepred::diffReports(const JsonValue &Old, const JsonValue &New,
                                 const DiffOptions &Options) {
  DiffResult Result;
  compareManifest(Old, New, Result);

  MetricMap OldMetrics = flattenReport(Old);
  MetricMap NewMetrics = flattenReport(New);

  if (!Options.IgnoreGlobs.empty()) {
    auto Erase = [&](MetricMap &Metrics, bool Count) {
      for (auto It = Metrics.begin(); It != Metrics.end();) {
        bool Matched = false;
        for (const std::string &Glob : Options.IgnoreGlobs)
          if (globMatch(Glob, It->first)) {
            Matched = true;
            break;
          }
        if (Matched) {
          if (Count)
            ++Result.Ignored;
          It = Metrics.erase(It);
        } else {
          ++It;
        }
      }
    };
    Erase(OldMetrics, /*Count=*/true);
    Erase(NewMetrics, /*Count=*/false);
  }

  for (const auto &[Key, OldValue] : OldMetrics) {
    auto It = NewMetrics.find(Key);
    if (It == NewMetrics.end()) {
      Result.MissingInNew.push_back(Key);
      continue;
    }
    // Contention metrics share the timing class: both measure the run,
    // not the allocator, so both default to not-compared.  Online-
    // prediction metrics are deterministic by contract, so they stay in
    // the strictly-gated value class unless the key itself is a timing
    // measurement (latency, seconds, per_sec).
    bool Timing = isTimingMetric(Key) ||
                  (!isOnlineMetric(Key) && isContentionMetric(Key));
    double Tolerance =
        Timing ? Options.TimeTolerance : Options.ValueTolerance;
    if (Tolerance < 0.0)
      continue; // This class is not compared.
    ++Result.Compared;
    double Delta = relativeDelta(OldValue, It->second);
    if (Delta > Tolerance)
      Result.Drifted.push_back({Key, OldValue, It->second, Delta, Timing});
  }
  for (const auto &[Key, NewValue] : NewMetrics) {
    (void)NewValue;
    if (!OldMetrics.count(Key))
      Result.OnlyInNew.push_back(Key);
  }
  return Result;
}

namespace {

std::optional<JsonValue> loadReport(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    return std::nullopt;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::optional<JsonValue> Report = parseJson(Buffer.str());
  if (!Report || !Report->isObject()) {
    std::fprintf(stderr, "error: %s is not a JSON report\n", Path.c_str());
    return std::nullopt;
  }
  return Report;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare <old.json> <new.json> [--tol=R] "
               "[--time-tol=R] [--ignore=GLOB]... [--quiet]\n"
               "       bench_compare --append-history <report.json> "
               "[--history-dir=DIR]\n"
               "  --tol=R       relative tolerance for value metrics "
               "(default 1e-9)\n"
               "  --time-tol=R  relative tolerance for timing and "
               "contention metrics (default: not compared)\n"
               "  --ignore=GLOB exclude matching metric keys from the diff "
               "('*' any run, '?' one char); repeatable\n"
               "  --append-history   append the report's manifest and "
               "headline metrics to the perf-trajectory ledger\n"
               "  --history-dir=DIR  ledger directory (default "
               "bench/history)\n"
               "exit status: 0 no regression, 1 regression, 2 bad "
               "invocation or unreadable input\n");
  return 2;
}

} // namespace

int lifepred::runBenchCompare(const std::vector<std::string> &Args) {
  std::vector<std::string> Paths;
  DiffOptions Options;
  bool Quiet = false;
  bool AppendHistory = false;
  std::string HistoryDir = "bench/history";
  for (const std::string &Arg : Args) {
    if (Arg.rfind("--tol=", 0) == 0)
      Options.ValueTolerance = std::atof(Arg.c_str() + 6);
    else if (Arg.rfind("--time-tol=", 0) == 0)
      Options.TimeTolerance = std::atof(Arg.c_str() + 11);
    else if (Arg.rfind("--ignore=", 0) == 0)
      Options.IgnoreGlobs.push_back(Arg.substr(9));
    else if (Arg == "--quiet")
      Quiet = true;
    else if (Arg == "--append-history")
      AppendHistory = true;
    else if (Arg.rfind("--history-dir=", 0) == 0)
      HistoryDir = Arg.substr(14);
    else if (Arg.rfind("--", 0) == 0)
      return usage();
    else
      Paths.push_back(Arg);
  }
  if (AppendHistory) {
    if (Paths.size() != 1)
      return usage();
    std::string Error;
    if (!appendRunRecord(Paths[0], HistoryDir, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
    if (!Quiet)
      std::printf("appended %s to %s\n", Paths[0].c_str(),
                  HistoryDir.c_str());
    return 0;
  }
  if (Paths.size() != 2)
    return usage();

  std::optional<JsonValue> Old = loadReport(Paths[0]);
  std::optional<JsonValue> New = loadReport(Paths[1]);
  if (!Old || !New)
    return 2;

  DiffResult Result = diffReports(*Old, *New, Options);

  if (!Quiet) {
    for (const std::string &Note : Result.Notes)
      std::printf("note: %s\n", Note.c_str());
    for (const std::string &Key : Result.OnlyInNew)
      std::printf("note: new metric %s\n", Key.c_str());
    for (const std::string &Key : Result.MissingInNew)
      std::printf("FAIL: metric %s missing from %s\n", Key.c_str(),
                  Paths[1].c_str());
    for (const MetricDrift &Drift : Result.Drifted)
      std::printf("FAIL: %s drifted %.3g%% (%.6g -> %.6g, %s tolerance)\n",
                  Drift.Key.c_str(), 100.0 * Drift.RelativeDelta,
                  Drift.OldValue, Drift.NewValue,
                  Drift.Timing ? "timing" : "value");
    if (Result.Ignored != 0)
      std::printf("note: %llu metrics ignored by --ignore\n",
                  static_cast<unsigned long long>(Result.Ignored));
    std::printf("%s: %llu metrics compared, %zu drifted, %zu missing\n",
                Result.ok() ? "OK" : "REGRESSION",
                static_cast<unsigned long long>(Result.Compared),
                Result.Drifted.size(), Result.MissingInNew.size());
  }
  return Result.ok() ? 0 : 1;
}
