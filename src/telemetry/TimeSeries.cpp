//===- telemetry/TimeSeries.cpp - Byte-clock windowed series ---------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/TimeSeries.h"

#include <algorithm>
#include <cassert>

using namespace lifepred;

TimeSeries::TimeSeries(const Config &C) : Cfg(C) {
  assert(Cfg.WindowBytes >= 1 && "window width must be positive");
}

void TimeSeries::extendToWindow(uint64_t Window) {
  if (Retained != 0 && Window < Base + Retained)
    return;
  uint64_t NewLast = Window;
  uint64_t NewBase = Base;
  if (Cfg.RingWindows != 0 && NewLast + 1 >= Cfg.RingWindows)
    NewBase = std::max(NewBase, NewLast + 1 - Cfg.RingWindows);
  if (NewBase > Base) {
    uint64_t Drop = std::min(NewBase - Base, Retained);
    Counters.erase(Counters.begin(),
                   Counters.begin() +
                       static_cast<ptrdiff_t>(Drop * Cfg.CounterLanes));
    Histograms.erase(Histograms.begin(),
                     Histograms.begin() +
                         static_cast<ptrdiff_t>(Drop * Cfg.HistogramLanes));
    Retained -= Drop;
    Dropped += NewBase - Base;
    Base = NewBase;
  }
  uint64_t NewRetained = NewLast + 1 - Base;
  Counters.resize(NewRetained * Cfg.CounterLanes, 0);
  Histograms.resize(NewRetained * Cfg.HistogramLanes);
  Retained = NewRetained;
}

uint64_t &TimeSeries::counterSlot(uint64_t Window, unsigned Lane) {
  assert(Lane < Cfg.CounterLanes && "counter lane out of range");
  extendToWindow(Window);
  return Counters[(Window - Base) * Cfg.CounterLanes + Lane];
}

Log2Histogram &TimeSeries::histogramSlot(uint64_t Window, unsigned Lane) {
  assert(Lane < Cfg.HistogramLanes && "histogram lane out of range");
  extendToWindow(Window);
  std::unique_ptr<Log2Histogram> &Slot =
      Histograms[(Window - Base) * Cfg.HistogramLanes + Lane];
  if (!Slot)
    Slot = std::make_unique<Log2Histogram>();
  return *Slot;
}

void TimeSeries::addWindow(uint64_t Window, unsigned Lane, uint64_t Delta) {
  if (Window < Base) {
    ++LateDrops;
    return;
  }
  counterSlot(Window, Lane) += Delta;
}

void TimeSeries::observeWindow(uint64_t Window, unsigned Lane,
                               uint64_t Value) {
  if (Window < Base) {
    ++LateDrops;
    return;
  }
  histogramSlot(Window, Lane).record(Value);
}

uint64_t TimeSeries::counter(uint64_t Window, unsigned Lane) const {
  assert(Lane < Cfg.CounterLanes && "counter lane out of range");
  if (Window < Base || Window >= Base + Retained)
    return 0;
  return Counters[(Window - Base) * Cfg.CounterLanes + Lane];
}

const Log2Histogram *TimeSeries::histogram(uint64_t Window,
                                           unsigned Lane) const {
  assert(Lane < Cfg.HistogramLanes && "histogram lane out of range");
  if (Window < Base || Window >= Base + Retained)
    return nullptr;
  return Histograms[(Window - Base) * Cfg.HistogramLanes + Lane].get();
}

void TimeSeries::merge(const TimeSeries &Other) {
  assert(Cfg == Other.Cfg && "merging series of different geometry");
  if (Other.Retained == 0)
    return;
  extendToWindow(Other.Base + Other.Retained - 1);
  for (uint64_t W = Other.Base; W < Other.Base + Other.Retained; ++W) {
    for (unsigned Lane = 0; Lane < Cfg.CounterLanes; ++Lane) {
      uint64_t Delta =
          Other.Counters[(W - Other.Base) * Cfg.CounterLanes + Lane];
      if (Delta != 0)
        addWindow(W, Lane, Delta);
    }
    for (unsigned Lane = 0; Lane < Cfg.HistogramLanes; ++Lane) {
      const Log2Histogram *Hist =
          Other.Histograms[(W - Other.Base) * Cfg.HistogramLanes + Lane]
              .get();
      if (Hist && Hist->count() != 0 && W >= Base)
        histogramSlot(W, Lane).merge(*Hist);
    }
  }
  LateDrops += Other.LateDrops;
  Dropped = std::max(Dropped, Other.Dropped);
}

bool TimeSeries::operator==(const TimeSeries &Other) const {
  if (Cfg != Other.Cfg || Base != Other.Base || Retained != Other.Retained ||
      Counters != Other.Counters)
    return false;
  static const Log2Histogram Empty;
  for (size_t I = 0; I < Histograms.size(); ++I) {
    const Log2Histogram &A = Histograms[I] ? *Histograms[I] : Empty;
    const Log2Histogram &B =
        Other.Histograms[I] ? *Other.Histograms[I] : Empty;
    if (!(A == B))
      return false;
  }
  return true;
}
