//===- telemetry/StatsRegistry.h - Named metrics registry -------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified metrics substrate the benches and simulators report through:
/// a registry of named counters (monotonic sums), gauges (level/peak
/// values; merged by maximum), and log2-bucketed histograms (full
/// distributions at 64 buckets of fixed cost).
///
/// Designed for the replay hot path: consumers resolve a metric to a plain
/// `uint64_t &` or `Log2Histogram *` once, at attach time, and the per-event
/// cost is a single unlocked increment.  There are no atomics and no locks —
/// `--jobs` runs give each worker its own registry and merge them at the
/// join point, in task-index order, so the merged result is identical at
/// any job count.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TELEMETRY_STATSREGISTRY_H
#define LIFEPRED_TELEMETRY_STATSREGISTRY_H

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>

namespace lifepred {

/// Histogram over uint64 values with power-of-two bucket boundaries.
/// Bucket 0 holds exactly the value 0; bucket B >= 1 holds the range
/// [2^(B-1), 2^B - 1].  Recording is two increments and an add.
class Log2Histogram {
public:
  /// Bucket 0 plus one bucket per bit of a uint64_t.
  static constexpr unsigned BucketCount = 65;

  /// The bucket holding \p Value.
  static unsigned bucketIndex(uint64_t Value) {
    return Value == 0 ? 0 : static_cast<unsigned>(std::bit_width(Value));
  }

  /// Smallest value of bucket \p Bucket.
  static uint64_t bucketLow(unsigned Bucket) {
    return Bucket == 0 ? 0 : uint64_t(1) << (Bucket - 1);
  }

  /// Largest value of bucket \p Bucket.
  static uint64_t bucketHigh(unsigned Bucket) {
    if (Bucket == 0)
      return 0;
    if (Bucket == BucketCount - 1)
      return ~uint64_t(0);
    return (uint64_t(1) << Bucket) - 1;
  }

  void record(uint64_t Value) {
    ++Buckets[bucketIndex(Value)];
    ++Total;
    Sum += Value;
    if (Value < MinValue)
      MinValue = Value;
    if (Value > MaxValue)
      MaxValue = Value;
  }

  /// Records \p Count occurrences of \p Value in O(1) — equivalent to
  /// calling record(Value) \p Count times.  Size-class scans ("N blocks of
  /// B bytes") use this to stay O(classes) per sample.
  void recordMany(uint64_t Value, uint64_t Count) {
    if (Count == 0)
      return;
    Buckets[bucketIndex(Value)] += Count;
    Total += Count;
    Sum += Value * Count;
    if (Value < MinValue)
      MinValue = Value;
    if (Value > MaxValue)
      MaxValue = Value;
  }

  /// Element-wise accumulation of \p Other into this histogram.
  void merge(const Log2Histogram &Other);

  /// Lower-bound quantile: the smallest value of the bucket containing the
  /// ceil(Phi * count)-th smallest recorded value.  Because buckets are
  /// power-of-two ranges this underestimates the true quantile by at most
  /// 2x — a deliberate convention: the result is an exact integer, stable
  /// across platforms, and safe to gate with bench_compare at exact
  /// tolerance.  Returns 0 for an empty histogram; \p Phi is clamped to
  /// (0, 1].
  uint64_t quantileLowerBound(double Phi) const;

  uint64_t count() const { return Total; }
  uint64_t sum() const { return Sum; }
  /// Minimum/maximum recorded value; 0 when empty.
  uint64_t min() const { return Total == 0 ? 0 : MinValue; }
  uint64_t max() const { return MaxValue; }
  double mean() const {
    return Total == 0 ? 0.0
                      : static_cast<double>(Sum) / static_cast<double>(Total);
  }
  uint64_t bucketCount(unsigned Bucket) const { return Buckets[Bucket]; }

  bool operator==(const Log2Histogram &Other) const = default;

private:
  std::array<uint64_t, BucketCount> Buckets{};
  uint64_t Total = 0;
  uint64_t Sum = 0;
  uint64_t MinValue = ~uint64_t(0);
  uint64_t MaxValue = 0;
};

/// Registry of named metrics.  Names are dotted paths by convention
/// ("firstfit.search_steps"); storage is node-based, so the references and
/// pointers handed out stay valid for the registry's lifetime no matter how
/// many metrics are added afterwards.
class StatsRegistry {
public:
  /// The counter named \p Name (created at 0 on first use).  Counters are
  /// sums; merge() adds them.
  uint64_t &counter(const std::string &Name) { return Counters[Name]; }

  /// The gauge named \p Name (created at 0 on first use).  Gauges are
  /// levels or peaks; merge() takes the maximum.
  uint64_t &gauge(const std::string &Name) { return Gauges[Name]; }

  /// The histogram named \p Name (created empty on first use).
  Log2Histogram &histogram(const std::string &Name) {
    return Histograms[Name];
  }

  /// Accumulates \p Other: counters add, gauges take the maximum,
  /// histograms merge bucket-wise.  Summation is commutative, so merging
  /// per-worker registries in task-index order yields the same result at
  /// any `--jobs` value.
  void merge(const StatsRegistry &Other);

  /// Metrics of every kind currently registered.
  size_t metricCount() const {
    return Counters.size() + Gauges.size() + Histograms.size();
  }

  /// Name-sorted views (std::map iteration order) for deterministic output.
  const std::map<std::string, uint64_t> &counters() const { return Counters; }
  const std::map<std::string, uint64_t> &gauges() const { return Gauges; }
  const std::map<std::string, Log2Histogram> &histograms() const {
    return Histograms;
  }

  /// Appends the registry as a JSON object ({"counters": .., "gauges": ..,
  /// "histograms": ..}) to \p Out.  \p Indent prefixes every emitted line;
  /// output is name-sorted and therefore stable across runs and job counts.
  void writeJson(std::string &Out, const std::string &Indent) const;

  bool operator==(const StatsRegistry &Other) const = default;

private:
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, uint64_t> Gauges;
  std::map<std::string, Log2Histogram> Histograms;
};

} // namespace lifepred

#endif // LIFEPRED_TELEMETRY_STATSREGISTRY_H
