//===- telemetry/FragmentationProbe.cpp - Fragmentation forensics ----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/FragmentationProbe.h"

#include <cassert>
#include <cstdio>

using namespace lifepred;

void FragmentationProbe::beginSample(uint64_t Clock, uint64_t HeapBytes,
                                     uint64_t LiveBytes) {
  assert(!InSample && "beginSample while a sample is open");
  InSample = true;
  CurClock = Clock;
  CurHeap = HeapBytes;
  CurLive = LiveBytes;
  CurFreeBytes = 0;
  CurLargestFree = 0;
}

void FragmentationProbe::addFreeSpans(uint64_t Bytes, uint64_t Count) {
  assert(InSample && "span outside beginSample/endSample");
  if (Count == 0)
    return;
  FreeSpanHist.recordMany(Bytes, Count);
  CurFreeBytes += Bytes * Count;
  if (Bytes > CurLargestFree)
    CurLargestFree = Bytes;
}

void FragmentationProbe::addLiveSpans(uint64_t Bytes, uint64_t Count) {
  assert(InSample && "span outside beginSample/endSample");
  LiveSpanHist.recordMany(Bytes, Count);
}

void FragmentationProbe::endSample() {
  assert(InSample && "endSample without beginSample");
  InSample = false;
  ++Samples;
  LastFragPpm =
      CurFreeBytes == 0
          ? 0
          : (CurFreeBytes - CurLargestFree) * uint64_t(1000000) / CurFreeBytes;
  if (LastFragPpm > MaxFragPpm)
    MaxFragPpm = LastFragPpm;
  if (CurLargestFree > PeakLargestFree)
    PeakLargestFree = CurLargestFree;
  if (CurFreeBytes > PeakFreeBytes)
    PeakFreeBytes = CurFreeBytes;
  Points.push_back({CurClock, CurHeap});
  // Next boundary strictly after this sample's clock.
  NextClock = (CurClock / Stride + 1) * Stride;
}

FragmentationProbe::Drift FragmentationProbe::driftEstimate() const {
  Drift Result;
  if (Points.size() < 2)
    return Result;
  // Back half of the replay by byte clock: heap delta from the first
  // sample at or past the midpoint to the last sample.  Steady churn
  // should hold this near zero; sustained growth is the RSS-drift smell.
  uint64_t EndClock = Points.back().Clock;
  uint64_t Midpoint = EndClock / 2;
  const HeapPoint *First = &Points.back();
  for (const HeapPoint &P : Points)
    if (P.Clock >= Midpoint) {
      First = &P;
      break;
    }
  const HeapPoint &Last = Points.back();
  Result.WindowClock = Last.Clock - First->Clock;
  if (Last.HeapBytes >= First->HeapBytes)
    Result.GrowthBytes = Last.HeapBytes - First->HeapBytes;
  else
    Result.ShrinkBytes = First->HeapBytes - Last.HeapBytes;
  return Result;
}

void FragmentationProbe::exportTelemetry(StatsRegistry &Registry,
                                         const std::string &Prefix) const {
  // Gauges take the maximum across repeated exports (same semantics as the
  // registry merge), so several probes can share one registry key space.
  auto Peak = [&Registry](const std::string &Name, uint64_t Value) {
    uint64_t &Gauge = Registry.gauge(Name);
    if (Value > Gauge)
      Gauge = Value;
  };
  Registry.counter(Prefix + "frag.samples") += Samples;
  Registry.counter(Prefix + "frag.free_spans") += FreeSpanHist.count();
  Registry.counter(Prefix + "frag.live_spans") += LiveSpanHist.count();
  Peak(Prefix + "frag.index_ppm", MaxFragPpm);
  Peak(Prefix + "frag.largest_free_block", PeakLargestFree);
  Peak(Prefix + "frag.peak_free_bytes", PeakFreeBytes);
  Drift D = driftEstimate();
  Peak(Prefix + "frag.drift_growth_bytes", D.GrowthBytes);
  Peak(Prefix + "frag.drift_shrink_bytes", D.ShrinkBytes);
  Peak(Prefix + "frag.drift_window_clock", D.WindowClock);
  Registry.histogram(Prefix + "frag.free_span_bytes").merge(FreeSpanHist);
  Registry.histogram(Prefix + "frag.live_span_bytes").merge(LiveSpanHist);
}

namespace {

void appendHistogramJson(std::string &Out, const std::string &Indent,
                         const Log2Histogram &Hist) {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "{\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
                "\"max\": %llu, \"buckets\": [",
                static_cast<unsigned long long>(Hist.count()),
                static_cast<unsigned long long>(Hist.sum()),
                static_cast<unsigned long long>(Hist.min()),
                static_cast<unsigned long long>(Hist.max()));
  Out += Buf;
  // Sparse [bucket_low, count] pairs: 65 mostly-empty buckets would bury
  // the signal.
  bool FirstPair = true;
  for (unsigned B = 0; B < Log2Histogram::BucketCount; ++B) {
    if (Hist.bucketCount(B) == 0)
      continue;
    std::snprintf(Buf, sizeof(Buf), "%s[%llu, %llu]", FirstPair ? "" : ", ",
                  static_cast<unsigned long long>(Log2Histogram::bucketLow(B)),
                  static_cast<unsigned long long>(Hist.bucketCount(B)));
    Out += Buf;
    FirstPair = false;
  }
  Out += "]}";
  (void)Indent;
}

} // namespace

void FragmentationProbe::writeJson(std::string &Out,
                                   const std::string &Indent) const {
  char Buf[192];
  Drift D = driftEstimate();
  Out += "{\n";
  std::snprintf(Buf, sizeof(Buf),
                "%s  \"stride_bytes\": %llu,\n%s  \"samples\": %llu,\n",
                Indent.c_str(), static_cast<unsigned long long>(Stride),
                Indent.c_str(), static_cast<unsigned long long>(Samples));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "%s  \"frag_index_ppm\": %llu,\n"
                "%s  \"max_frag_index_ppm\": %llu,\n",
                Indent.c_str(), static_cast<unsigned long long>(LastFragPpm),
                Indent.c_str(), static_cast<unsigned long long>(MaxFragPpm));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "%s  \"largest_free_block\": %llu,\n"
                "%s  \"peak_free_bytes\": %llu,\n",
                Indent.c_str(),
                static_cast<unsigned long long>(PeakLargestFree),
                Indent.c_str(), static_cast<unsigned long long>(PeakFreeBytes));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "%s  \"drift\": {\"growth_bytes\": %llu, "
                "\"shrink_bytes\": %llu, \"window_clock\": %llu},\n",
                Indent.c_str(), static_cast<unsigned long long>(D.GrowthBytes),
                static_cast<unsigned long long>(D.ShrinkBytes),
                static_cast<unsigned long long>(D.WindowClock));
  Out += Buf;
  Out += Indent + "  \"free_span_bytes\": ";
  appendHistogramJson(Out, Indent, FreeSpanHist);
  Out += ",\n" + Indent + "  \"live_span_bytes\": ";
  appendHistogramJson(Out, Indent, LiveSpanHist);
  Out += "\n" + Indent + "}";
}
