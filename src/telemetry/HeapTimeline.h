//===- telemetry/HeapTimeline.h - Byte-clock heap sampler -------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Samples heap state on the allocation byte clock — the paper's time
/// measure — at a configurable stride.  Where wall-clock sampling would
/// make a profile depend on machine speed and job count, byte-clock
/// sampling is a pure function of the trace: the same trace produces the
/// same timeline on every run, so timelines from two builds can be diffed
/// point by point.  Consumers call due() per allocation (one compare on
/// the hot path) and record() only when a stride boundary was crossed.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TELEMETRY_HEAPTIMELINE_H
#define LIFEPRED_TELEMETRY_HEAPTIMELINE_H

#include <cstdint>
#include <string>
#include <vector>

namespace lifepred {

class StatsRegistry;

/// One byte-clock sample of a simulated heap.
struct HeapSample {
  uint64_t Clock = 0;      ///< Byte clock at the sample.
  uint64_t HeapBytes = 0;  ///< Bytes acquired from the simulated OS.
  uint64_t LiveBytes = 0;  ///< Payload bytes currently allocated.
  uint64_t ArenaBytes = 0; ///< Live bytes held in arenas (0 for baselines).
  uint64_t FreeBlocks = 0; ///< Free-list block count.

  /// Heap not covered by live payload, as a percentage of the heap —
  /// external fragmentation plus header overhead.
  double fragmentationPercent() const {
    return HeapBytes == 0
               ? 0.0
               : 100.0 *
                     static_cast<double>(HeapBytes > LiveBytes
                                             ? HeapBytes - LiveBytes
                                             : 0) /
                     static_cast<double>(HeapBytes);
  }
};

/// Fixed-stride byte-clock sampler.
class HeapTimeline {
public:
  /// Samples at most once per \p StrideBytes of allocation (minimum 1).
  explicit HeapTimeline(uint64_t StrideBytes)
      : Stride(StrideBytes == 0 ? 1 : StrideBytes) {}

  /// True when the clock has crossed the next stride boundary and a sample
  /// should be recorded.  This is the only per-event cost.
  bool due(uint64_t Clock) const { return Clock >= NextClock; }

  /// Appends \p Sample and advances the stride cursor past its clock, so
  /// bursts of allocation skip missed boundaries instead of back-filling.
  void record(const HeapSample &Sample);

  uint64_t stride() const { return Stride; }
  const std::vector<HeapSample> &samples() const { return Samples; }

  /// Summary gauges under \p Prefix: sample count, peak fragmentation
  /// percent, and peak free-block count.
  void exportTelemetry(StatsRegistry &Registry,
                       const std::string &Prefix) const;

  /// Appends the timeline as a JSON object to \p Out.  Samples are rows of
  /// [clock, heap, live, arena, free_blocks, frag_pct] under a "columns"
  /// legend; \p Indent prefixes every emitted line.
  void writeJson(std::string &Out, const std::string &Indent) const;

private:
  uint64_t Stride;
  uint64_t NextClock = 0; ///< First sample triggers immediately.
  std::vector<HeapSample> Samples;
};

} // namespace lifepred

#endif // LIFEPRED_TELEMETRY_HEAPTIMELINE_H
