//===- telemetry/LatencyRecorder.h - Per-op latency tails -------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sampled wall-clock latency of individual allocator operations.  Every
/// Nth operation (a deterministic countdown, so the *sampling schedule* is
/// a pure function of the trace even though the *measured values* are
/// not) is timed with a calibrated steady_clock read; samples feed a
/// nanosecond Log2Histogram plus P2 quantile markers for p50/p90/p99/p999
/// per op kind.
///
/// Reporting convention: every exported key contains "latency", which
/// ReportDiff classifies as a timing metric — bench_compare checks the
/// key *schema* but never gates the values, because wall-clock numbers
/// are machine-dependent by nature.  Detached recorders (the null pointer
/// default throughout the simulators) cost one predictable branch per op.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TELEMETRY_LATENCYRECORDER_H
#define LIFEPRED_TELEMETRY_LATENCYRECORDER_H

#include "quantile/P2Markers.h"
#include "telemetry/StatsRegistry.h"

#include <array>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

namespace lifepred {

/// Sampled per-op latency distributions for one replay.
class LatencyRecorder {
public:
  /// Operation kinds tracked separately.
  enum OpKind : unsigned { OpAlloc = 0, OpFree = 1 };
  static constexpr unsigned KindCount = 2;

  /// Times one operation in every \p SamplePeriod (minimum 1 = every op).
  explicit LatencyRecorder(uint32_t SamplePeriod = 64);

  uint32_t samplePeriod() const { return Period; }

  /// True when the next operation should be timed.  One decrement and one
  /// compare per op — the entire attached-but-not-sampling cost.
  bool due() {
    if (--Countdown != 0)
      return false;
    Countdown = Period;
    return true;
  }

  /// Monotonic nanoseconds.
  static uint64_t nowNanos();

  /// Measured cost of one nowNanos() round trip, estimated once per
  /// process (minimum observed back-to-back delta).  record() subtracts
  /// this so the histogram reflects the operation, not the clock.
  static uint64_t clockOverheadNanos();

  /// Records one sampled operation of \p ElapsedNanos (pre-subtraction).
  void record(OpKind Kind, uint64_t ElapsedNanos);

  uint64_t samples(OpKind Kind) const { return Kinds[Kind].Hist.count(); }
  const Log2Histogram &histogram(OpKind Kind) const {
    return Kinds[Kind].Hist;
  }
  /// P2 quantile estimate in nanoseconds (0 when no samples).
  double quantileNanos(OpKind Kind, double Phi) const;

  /// Exports under "<Prefix>latency.<kind>.": the sample count, P2
  /// p50/p90/p99/p999 and max gauges (all "_ns"-suffixed), and the
  /// nanosecond histogram.  Every key contains "latency" and is therefore
  /// timing-classified by ReportDiff.
  void exportTelemetry(StatsRegistry &Registry,
                       const std::string &Prefix) const;

private:
  struct PerKind {
    Log2Histogram Hist;
    P2Markers Quantiles;
  };

  uint32_t Period;
  uint32_t Countdown;
  std::array<PerKind, KindCount> Kinds;
};

/// Runs \p Op once, timing it through \p Recorder when one is attached and
/// a sample is due.  The null-recorder fast path is a single predictable
/// branch, preserving the zero-cost-when-detached convention.
template <typename OpT>
inline auto timedAllocatorOp(LatencyRecorder *Recorder,
                             LatencyRecorder::OpKind Kind, OpT &&Op) {
  if (!Recorder || !Recorder->due())
    return Op();
  uint64_t Begin = LatencyRecorder::nowNanos();
  if constexpr (std::is_void_v<decltype(Op())>) {
    Op();
    Recorder->record(Kind, LatencyRecorder::nowNanos() - Begin);
  } else {
    auto Result = Op();
    Recorder->record(Kind, LatencyRecorder::nowNanos() - Begin);
    return Result;
  }
}

} // namespace lifepred

#endif // LIFEPRED_TELEMETRY_LATENCYRECORDER_H
