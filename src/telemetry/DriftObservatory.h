//===- telemetry/DriftObservatory.h - Prediction drift tracking -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time-resolved lifetime-prediction quality: where SimTelemetry's
/// PredictionCounts answer "how accurate was the database over the whole
/// replay", the drift observatory answers *when* and *at which sites* it
/// went stale.  Every allocation outcome lands in a byte-clock window
/// (telemetry/TimeSeries.h) twice — once in a global series, once in a
/// per-site series — carrying the short-lived confusion matrix
/// (TP/FP/FN/TN), observed-lifetime histograms, and misprediction cost:
///
///   * false_short_bytes — bytes of predicted-short objects that outlived
///     the threshold, charged to their birth window (arena bytes a wrong
///     "short" verdict placed there);
///   * pinned_bytes — the same objects charged to every window their
///     post-threshold overstay [birth + threshold, death) overlaps (the
///     windows during which they pinned an arena);
///   * missed_short_bytes — bytes of predicted-long objects that died
///     within the threshold, charged to the birth window (general-heap
///     bytes a correct "short" verdict would have arena'd).
///
/// The analysis pass (buildDriftReport) turns a filled observatory into
/// per-window accuracy with CUSUM change-point flags and per-site
/// observed-vs-trained quantile divergence — the FlightRecorder audit's
/// drift score, time-resolved.  Everything is a commutative sum over
/// allocation outcomes, so sharded replays merge window-wise into the
/// same bytes at any job count.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TELEMETRY_DRIFTOBSERVATORY_H
#define LIFEPRED_TELEMETRY_DRIFTOBSERVATORY_H

#include "telemetry/LifetimeAudit.h"
#include "telemetry/TimeSeries.h"

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace lifepred {

class StatsRegistry;
class TraceEventWriter;

/// Geometry and classification of one drift-tracking run.
struct DriftConfig {
  /// The replay's final byte clock; windows cover [0, EndClock] and
  /// never-freed lifetimes clamp to it.
  uint64_t EndClock = 0;
  /// Window width; 0 picks autoWindowBytes(EndClock).
  uint64_t WindowBytes = 0;
  /// The short-lived threshold the outcomes were classified under (the
  /// SiteDatabase threshold; the widest band for multi-arena replays).
  uint64_t Threshold = 0;

  bool operator==(const DriftConfig &Other) const = default;
};

/// Windowed confusion-matrix and cost accounting for one replay.
class DriftObservatory {
public:
  /// Counter lanes of both the global and the per-site series.
  enum Lane : unsigned {
    LaneTrueShort = 0,
    LaneFalseShort,
    LaneMissedShort,
    LaneTrueLong,
    LaneFalseShortBytes,
    LaneMissedShortBytes,
    LanePinnedBytes,
    LaneCount
  };
  /// Histogram lane: observed (exit-clamped) lifetimes.
  static constexpr unsigned HistLifetime = 0;

  /// The default window width: the smallest power of two giving at most
  /// 64 windows over \p EndClock — deterministic, and coarse enough that
  /// per-site histograms stay cheap.
  static uint64_t autoWindowBytes(uint64_t EndClock);

  explicit DriftObservatory(const DriftConfig &C);

  const DriftConfig &config() const { return Cfg; }
  uint64_t windowBytes() const { return Width; }
  uint64_t endClock() const { return Cfg.EndClock; }
  uint64_t threshold() const { return Cfg.Threshold; }
  /// Fixed at construction: every window through the one holding EndClock
  /// exists, so quiet tails appear as explicit empty windows.
  uint64_t windowCount() const { return Global.windowCount(); }
  uint64_t totalObjects() const { return Objects; }

  /// Records one allocation outcome.  \p BirthClock is the byte clock
  /// after the allocation (the schedule convention); \p Lifetime is the
  /// traced lifetime, clamped here to the bytes remaining until EndClock
  /// (so NeverFreed needs no special casing); \p ActuallyShort is the
  /// caller's classification, passed explicitly so each simulator's own
  /// threshold semantics (single threshold, band thresholds) are
  /// reproduced exactly.
  void recordAlloc(uint64_t BirthClock, uint32_t Site, uint32_t Size,
                   bool PredictedShort, uint64_t Lifetime,
                   bool ActuallyShort);

  /// Window-wise accumulation of \p Other (same DriftConfig required).
  /// Commutative and associative, so shard merges in index order equal a
  /// sequential fill.
  void merge(const DriftObservatory &Other);

  const TimeSeries &global() const { return Global; }
  /// Per-site series, key-sorted for deterministic iteration.
  const std::map<uint32_t, TimeSeries> &sites() const { return Sites; }

  bool operator==(const DriftObservatory &Other) const;

private:
  TimeSeries::Config seriesConfig() const;
  TimeSeries &siteSeries(uint32_t Site);

  DriftConfig Cfg;
  uint64_t Width = 1;
  uint64_t Objects = 0;
  TimeSeries Global;
  std::map<uint32_t, TimeSeries> Sites;
};

/// Replayable record of a live run's allocation outcomes, for hosts (the
/// real PredictingHeap, RuntimeProfiler-driven probes) that do not know
/// the final byte clock until the run ends.  Feed births and deaths as
/// they happen, finish() at the end, then build() an observatory whose
/// EndClock is the observed final clock.
class DriftSampleLog {
public:
  void recordAlloc(uint64_t Id, uint64_t BirthClock, uint32_t Site,
                   uint32_t Size, bool PredictedShort);
  void recordFree(uint64_t Id, uint64_t DeathClock);
  /// Pins the end clock (still-live objects clamp to it in build()).
  void finish(uint64_t EndClock);

  uint64_t endClock() const { return EndClock; }
  size_t size() const { return Samples.size(); }

  /// Replays the log into a fresh observatory.  \p WindowBytes 0 picks
  /// the automatic width; \p Threshold classifies ActuallyShort from the
  /// exit-clamped lifetime.
  DriftObservatory build(uint64_t WindowBytes, uint64_t Threshold) const;

private:
  struct Sample {
    uint64_t Birth = 0;
    uint64_t Death = ~uint64_t(0); ///< Max = never freed.
    uint32_t Site = 0;
    uint32_t Size = 0;
    bool Predicted = false;
  };

  std::vector<Sample> Samples;
  std::map<uint64_t, size_t> Index;
  uint64_t EndClock = 0;
};

/// One window row of the drift report.
struct DriftWindowRow {
  uint64_t StartClock = 0; ///< Inclusive.
  uint64_t EndClock = 0;   ///< Exclusive.
  uint64_t TrueShort = 0;
  uint64_t FalseShort = 0;
  uint64_t MissedShort = 0;
  uint64_t TrueLong = 0;
  uint64_t FalseShortBytes = 0;
  uint64_t MissedShortBytes = 0;
  uint64_t PinnedBytes = 0;
  uint64_t total() const {
    return TrueShort + FalseShort + MissedShort + TrueLong;
  }
  /// -1 when the window saw no allocations.
  int64_t AccuracyPpm = -1;
  bool ChangePoint = false;
};

/// One scored (site, window) divergence.
struct DriftSiteScore {
  uint32_t Site = 0;
  uint64_t Window = 0;
  uint64_t Objects = 0;
  uint64_t ObsQ50 = 0;
  double TrainQ50 = -1.0;
  /// max over {p25, p50, p75} of |log2((1 + observed) / (1 + trained))|.
  double Score = 0.0;
};

/// Analysis knobs; the defaults are what `trace_tool drift` and the
/// benches use, so the gated baselines pin them.
struct DriftReportOptions {
  /// CUSUM slack per window, in ppm of accuracy (deviations smaller than
  /// this never accumulate).
  int64_t CusumSlackPpm = 20000;
  /// CUSUM decision threshold, in ppm — a sustained 5-point accuracy
  /// shift trips it within a handful of windows.
  int64_t CusumDecisionPpm = 100000;
  /// Minimum observed objects before a (site, window) is scored.
  uint64_t MinSiteWindowObjects = 4;
  /// Scored rows kept in TopSites.
  size_t TopSites = 5;
};

/// The complete time-resolved drift analysis.
struct DriftReport {
  std::string Label;
  uint64_t WindowBytes = 0;
  uint64_t EndClock = 0;
  uint64_t Threshold = 0;
  uint64_t TotalObjects = 0;
  uint64_t TrueShort = 0;
  uint64_t FalseShort = 0;
  uint64_t MissedShort = 0;
  uint64_t TrueLong = 0;
  uint64_t FalseShortBytes = 0;
  uint64_t MissedShortBytes = 0;
  uint64_t PinnedBytes = 0;
  int64_t MeanAccuracyPpm = -1;
  uint64_t SiteCount = 0;
  uint64_t ScoredSiteWindows = 0;
  std::vector<DriftWindowRow> Windows;
  std::vector<uint64_t> ChangePointWindows;
  /// Ranked by Score descending (ties: Site asc, Window asc).
  std::vector<DriftSiteScore> TopSites;

  bool hasWorstSite() const { return !TopSites.empty(); }
  const DriftSiteScore &worstSite() const { return TopSites.front(); }
  uint64_t changePointCount() const { return ChangePointWindows.size(); }
};

/// Builds the report: window rows, CUSUM change points, and (when
/// \p Trained is non-null) per-site observed-vs-trained divergence.
DriftReport buildDriftReport(const DriftObservatory &Obs,
                             const TrainedQuantileMap *Trained = nullptr,
                             std::string Label = "",
                             const DriftReportOptions &Options = {});

/// Prints the human-readable drift report with per-window sparklines.
void printDriftReport(const DriftReport &Report, std::FILE *Out);

/// Appends the report as a fully ordered JSON object (byte-identical for
/// byte-identical reports).  \p Indent prefixes every emitted line.
void writeDriftJson(const DriftReport &Report, std::string &Out,
                    const std::string &Indent);

/// Folds the headline numbers into \p Registry under \p Prefix: window
/// and change-point counts, confusion totals, cost bytes as counters;
/// mean accuracy, worst site id/window and its score (milli-units, so the
/// metric stays integer-gateable) as gauges.
void exportDriftTelemetry(const DriftReport &Report, StatsRegistry &Registry,
                          const std::string &Prefix = "drift.");

/// Emits the report as a chrome://tracing track \p Track (byte time on
/// the microsecond axis): one complete span per non-empty window named
/// with its accuracy, plus an instant per change point.
void emitDriftTrack(const DriftReport &Report, TraceEventWriter &Writer,
                    unsigned Track);

} // namespace lifepred

#endif // LIFEPRED_TELEMETRY_DRIFTOBSERVATORY_H
