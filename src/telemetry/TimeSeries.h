//===- telemetry/TimeSeries.h - Byte-clock windowed series ------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-width windowed time series on the bytes-allocated clock: the
/// substrate the drift observatory (telemetry/DriftObservatory.h) builds
/// its per-window confusion timelines and lifetime histograms on.
///
/// Each window covers [W * WindowBytes, (W + 1) * WindowBytes) of byte
/// clock; an event with clock C lands in window C / WindowBytes, so an
/// event exactly on a window edge belongs to the window it opens.  A
/// window holds a fixed set of counter lanes (uint64 sums) and histogram
/// lanes (Log2Histogram, allocated lazily so sparse lanes cost one
/// pointer).  Storage either accumulates every window (RingWindows = 0)
/// or keeps only the trailing RingWindows windows, dropping the oldest —
/// the bounded-memory mode for live processes.
///
/// Every mutation is a commutative add, so a window-wise merge of series
/// filled from disjoint event subsets equals the series filled from the
/// union, in any merge order.  Sharded replay exploits this: per-shard
/// series merged in shard-index order are byte-identical to a sequential
/// fill at any job count.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TELEMETRY_TIMESERIES_H
#define LIFEPRED_TELEMETRY_TIMESERIES_H

#include "telemetry/StatsRegistry.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace lifepred {

/// Windowed counters and histograms on the byte clock.
class TimeSeries {
public:
  struct Config {
    /// Window width in byte-clock units; must be >= 1.
    uint64_t WindowBytes = 1;
    /// Number of uint64 counter lanes per window.
    unsigned CounterLanes = 0;
    /// Number of Log2Histogram lanes per window.
    unsigned HistogramLanes = 0;
    /// Keep only the trailing N windows (0 = accumulate every window).
    uint64_t RingWindows = 0;

    bool operator==(const Config &Other) const = default;
  };

  TimeSeries() : TimeSeries(Config()) {}
  explicit TimeSeries(const Config &C);

  const Config &config() const { return Cfg; }

  /// The window index holding byte clock \p Clock under width \p Width.
  static uint64_t windowIndexFor(uint64_t Clock, uint64_t Width) {
    return Clock / Width;
  }

  /// Adds \p Delta to counter lane \p Lane of the window holding \p Clock.
  void add(uint64_t Clock, unsigned Lane, uint64_t Delta) {
    addWindow(windowIndexFor(Clock, Cfg.WindowBytes), Lane, Delta);
  }

  /// Adds \p Delta to counter lane \p Lane of window \p Window directly
  /// (cost attribution spreads one object over several windows).
  void addWindow(uint64_t Window, unsigned Lane, uint64_t Delta);

  /// Records \p Value into histogram lane \p Lane of the window holding
  /// \p Clock.
  void observe(uint64_t Clock, unsigned Lane, uint64_t Value) {
    observeWindow(windowIndexFor(Clock, Cfg.WindowBytes), Lane, Value);
  }

  /// Records \p Value into histogram lane \p Lane of window \p Window.
  void observeWindow(uint64_t Window, unsigned Lane, uint64_t Value);

  /// Materializes every window up to the one holding \p Clock, so a quiet
  /// tail of the run still appears as explicit empty windows.
  void extendToClock(uint64_t Clock) {
    extendToWindow(windowIndexFor(Clock, Cfg.WindowBytes));
  }

  /// Materializes windows [firstWindow(), Window] (ring mode slides the
  /// base forward instead, dropping the oldest windows).
  void extendToWindow(uint64_t Window);

  /// Index of the oldest retained window (always 0 in accumulate mode).
  uint64_t firstWindow() const { return Base; }

  /// Number of retained windows.
  uint64_t windowCount() const { return Retained; }

  /// Windows the ring dropped off the front.
  uint64_t droppedWindows() const { return Dropped; }

  /// Mutations aimed below the ring base (counted, otherwise ignored).
  uint64_t lateDrops() const { return LateDrops; }

  /// Counter lane \p Lane of absolute window \p Window (0 if the window
  /// is outside the retained range).
  uint64_t counter(uint64_t Window, unsigned Lane) const;

  /// Histogram lane \p Lane of absolute window \p Window, or nullptr when
  /// the lane has no samples (or the window is outside the retained
  /// range).  Lazily allocated: an untouched lane costs one null pointer.
  const Log2Histogram *histogram(uint64_t Window, unsigned Lane) const;

  /// Window-wise accumulation of \p Other into this series.  Both series
  /// must share the same Config; this one extends to cover Other's
  /// retained range.  All lanes are sums, so merging per-shard series in
  /// any order equals a sequential fill.
  void merge(const TimeSeries &Other);

  bool operator==(const TimeSeries &Other) const;

private:
  uint64_t &counterSlot(uint64_t Window, unsigned Lane);
  Log2Histogram &histogramSlot(uint64_t Window, unsigned Lane);

  Config Cfg;
  /// Absolute index of the oldest retained window.
  uint64_t Base = 0;
  /// Number of retained windows.
  uint64_t Retained = 0;
  uint64_t Dropped = 0;
  uint64_t LateDrops = 0;
  /// Retained * CounterLanes, window-major.
  std::vector<uint64_t> Counters;
  /// Retained * HistogramLanes, window-major; null until first sample.
  std::vector<std::unique_ptr<Log2Histogram>> Histograms;
};

} // namespace lifepred

#endif // LIFEPRED_TELEMETRY_TIMESERIES_H
