//===- telemetry/LatencyRecorder.cpp - Per-op latency tails ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/LatencyRecorder.h"

#include <chrono>

using namespace lifepred;

LatencyRecorder::LatencyRecorder(uint32_t SamplePeriod)
    : Period(SamplePeriod == 0 ? 1 : SamplePeriod), Countdown(Period),
      Kinds{PerKind{{}, P2Markers({0.5, 0.9, 0.99, 0.999})},
            PerKind{{}, P2Markers({0.5, 0.9, 0.99, 0.999})}} {}

uint64_t LatencyRecorder::nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t LatencyRecorder::clockOverheadNanos() {
  // Calibrated once per process: the smallest observed delta between
  // back-to-back clock reads approximates the read cost itself with the
  // least scheduling noise.
  static const uint64_t Overhead = [] {
    uint64_t Min = ~uint64_t(0);
    for (int I = 0; I < 256; ++I) {
      uint64_t A = nowNanos();
      uint64_t B = nowNanos();
      if (B - A < Min)
        Min = B - A;
    }
    return Min == ~uint64_t(0) ? 0 : Min;
  }();
  return Overhead;
}

void LatencyRecorder::record(OpKind Kind, uint64_t ElapsedNanos) {
  uint64_t Overhead = clockOverheadNanos();
  uint64_t Net = ElapsedNanos > Overhead ? ElapsedNanos - Overhead : 0;
  PerKind &K = Kinds[Kind];
  K.Hist.record(Net);
  K.Quantiles.add(static_cast<double>(Net));
}

double LatencyRecorder::quantileNanos(OpKind Kind, double Phi) const {
  const PerKind &K = Kinds[Kind];
  return K.Quantiles.count() == 0 ? 0.0 : K.Quantiles.quantile(Phi);
}

void LatencyRecorder::exportTelemetry(StatsRegistry &Registry,
                                      const std::string &Prefix) const {
  static constexpr const char *KindNames[KindCount] = {"alloc", "free"};
  static constexpr double Phis[] = {0.5, 0.9, 0.99, 0.999};
  static constexpr const char *PhiNames[] = {"p50_ns", "p90_ns", "p99_ns",
                                             "p999_ns"};
  for (unsigned Kind = 0; Kind < KindCount; ++Kind) {
    const PerKind &K = Kinds[Kind];
    std::string Base = Prefix + "latency." + KindNames[Kind] + ".";
    Registry.counter(Base + "samples") += K.Hist.count();
    for (unsigned I = 0; I < 4; ++I) {
      double Value = K.Quantiles.count() == 0 ? 0.0 : K.Quantiles.quantile(Phis[I]);
      uint64_t &Gauge = Registry.gauge(Base + PhiNames[I]);
      uint64_t Rounded = Value <= 0.0 ? 0 : static_cast<uint64_t>(Value + 0.5);
      if (Rounded > Gauge)
        Gauge = Rounded;
    }
    uint64_t &MaxGauge = Registry.gauge(Base + "max_ns");
    if (K.Hist.max() > MaxGauge)
      MaxGauge = K.Hist.max();
    Registry.histogram(Base + "ns").merge(K.Hist);
  }
}
