//===- telemetry/PerfLedger.h - Perf-trajectory ledger ----------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bench-trajectory ledger: an append-only JSONL file per bench under
/// bench/history/, one line per run, carrying the run's manifest
/// (provenance) and headline metrics.  `bench_compare --append-history`
/// appends a schema-v2 report to the ledger after a run; `trace_tool
/// history` renders per-metric sparklines over the ledger and flags the
/// latest value when it deviates from the trailing window — a regression
/// check over *time*, complementing bench_compare's check against a
/// single pinned baseline.
///
/// Direction awareness: throughput-like keys (per_sec, speedup) regress
/// downward, everything else (seconds, heap bytes, wasted bytes) regresses
/// upward.  Timing keys are rendered but flagged only advisorily — the
/// ledger typically spans machines.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TELEMETRY_PERFLEDGER_H
#define LIFEPRED_TELEMETRY_PERFLEDGER_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace lifepred {

/// One ledger line: a run's provenance and headline metrics.
struct LedgerRecord {
  std::string Bench;
  std::string TimeIso;   ///< UTC wall time the record was appended.
  std::string GitSha;
  std::string BuildType;
  uint64_t Events = 0;
  double WallSeconds = 0.0;
  double EventsPerSec = 0.0;
  /// The report's values.* metrics, name-sorted.
  std::vector<std::pair<std::string, double>> Values;
};

/// Appends \p ReportPath (a schema-v2 bench report) to the ledger file
/// "<HistoryDir>/<bench>.jsonl", creating the directory as needed.
/// Returns false and fills \p Error on unreadable input or write failure.
bool appendRunRecord(const std::string &ReportPath,
                     const std::string &HistoryDir, std::string &Error);

/// Parses every line of one ledger file.  Unparseable lines are skipped
/// (the ledger is append-only across versions); returns false only when
/// the file cannot be read at all.
bool readLedger(const std::string &LedgerPath,
                std::vector<LedgerRecord> &Records, std::string &Error);

/// Rendering/flagging options for renderHistory.
struct HistoryOptions {
  std::string MetricGlob = "*"; ///< Keys to render (globMatch syntax).
  size_t Window = 8;            ///< Trailing records per sparkline.
  double Tolerance = 0.10;      ///< Relative deviation that flags.
  /// Cap on ledger records considered, applied as a trailing window before
  /// sparklining (0 = the whole ledger).  Lets a long-lived ledger be read
  /// "recent runs only" without truncating the file.
  size_t Limit = 0;
};

/// Unicode sparkline of \p Series scaled to its own min/max.
std::string sparkline(const std::vector<double> &Series);

/// Renders every ledger under \p HistoryDir: one sparkline per metric key
/// with the latest value, flagging metrics whose last value deviates from
/// the mean of the preceding window beyond the tolerance in the bad
/// direction.  Returns the number of flagged regressions, or -1 when the
/// directory is unreadable.
int renderHistory(const std::string &HistoryDir,
                  const HistoryOptions &Options, std::FILE *Out);

} // namespace lifepred

#endif // LIFEPRED_TELEMETRY_PERFLEDGER_H
