//===- telemetry/ReportDiff.h - Bench report regression diff ----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two BENCH_*.json reports (schema v2, written by JsonReport)
/// metric by metric.  Metrics are split into two classes with independent
/// tolerances:
///
///   * value metrics — heap sizes, counters, prediction rates: the
///     correctness surface.  Default tolerance is exact (tiny epsilon for
///     float formatting).
///   * timing metrics — wall seconds, events/sec, speedups: machine- and
///     load-dependent.  Ignored by default; CI can opt into a generous
///     bound.
///
/// A metric present in the old report but missing from the new one is a
/// regression (a rename silently hides drift); metrics only in the new
/// report are informational.  This is the gate every later performance PR
/// reports through, so exit semantics are strict: ok() means no value
/// drifted past tolerance and nothing disappeared.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TELEMETRY_REPORTDIFF_H
#define LIFEPRED_TELEMETRY_REPORTDIFF_H

#include <string>
#include <string_view>
#include <vector>

namespace lifepred {

class JsonValue;

/// Tolerances for diffReports.
struct DiffOptions {
  /// Maximum relative drift for value metrics.
  double ValueTolerance = 1e-9;
  /// Maximum relative drift for timing metrics; negative = don't compare.
  double TimeTolerance = -1.0;
  /// Metric keys matching any of these globs ('*' = any run, '?' = any one
  /// character) are excluded from the diff entirely — not compared, not
  /// reported missing, not listed as new.  For volatile metrics a baseline
  /// should not pin down.
  std::vector<std::string> IgnoreGlobs;
};

/// One metric whose drift exceeded its class tolerance.
struct MetricDrift {
  std::string Key;
  double OldValue = 0.0;
  double NewValue = 0.0;
  double RelativeDelta = 0.0;
  bool Timing = false;
};

/// Outcome of one report comparison.
struct DiffResult {
  std::vector<MetricDrift> Drifted;
  std::vector<std::string> MissingInNew;  ///< Regression: metric vanished.
  std::vector<std::string> OnlyInNew;     ///< Informational.
  std::vector<std::string> Notes;         ///< Manifest differences etc.
  uint64_t Compared = 0;                  ///< Metrics checked.
  uint64_t Ignored = 0;                   ///< Keys skipped via IgnoreGlobs.

  bool ok() const { return Drifted.empty() && MissingInNew.empty(); }
};

/// True for metrics measuring time rather than behaviour (matched by key:
/// "seconds", "per_sec", "speedup", "latency").
bool isTimingMetric(std::string_view Key);

/// True for contention metrics of the concurrent serving engine (matched
/// by key: "contention", "cas_retries", "queue_depth", "drain_depth",
/// "imbalance").  These measure thread interleaving, not allocator
/// behaviour, so they share the timing class: ignored by default, opt-in
/// via --time-tol.
bool isContentionMetric(std::string_view Key);

/// True for online-prediction metrics (key contains "online." or
/// "retrain.").  The online model is deterministic by contract — its
/// route plans, retrain counts, and epochs are pure functions of the
/// event stream — so these keys are gated at the strict value tolerance
/// even when they would otherwise match a contention substring (e.g. a
/// future "online.queue_depth").  Timing keys inside the family
/// ("*.latency*", "*seconds*", "*per_sec*") still classify as timing.
bool isOnlineMetric(std::string_view Key);

/// Shell-style glob match over the whole of \p Text: '*' matches any run
/// (including empty), '?' matches exactly one character, everything else
/// (dots included) matches literally.
bool globMatch(std::string_view Pattern, std::string_view Text);

/// Diffs two parsed reports.
DiffResult diffReports(const JsonValue &Old, const JsonValue &New,
                       const DiffOptions &Options = {});

/// Full bench_compare command: parses "<old.json> <new.json> [--tol=R]
/// [--time-tol=R] [--ignore=GLOB]... [--quiet]" from \p Args, prints a
/// human-readable diff, and returns the process exit code (0 ok, 1
/// regression, 2 usage/IO error).  Shared by bench/bench_compare and
/// `trace_tool report`.
int runBenchCompare(const std::vector<std::string> &Args);

} // namespace lifepred

#endif // LIFEPRED_TELEMETRY_REPORTDIFF_H
