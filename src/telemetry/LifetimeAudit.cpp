//===- telemetry/LifetimeAudit.cpp - Misprediction forensics ---------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/LifetimeAudit.h"

#include "support/Json.h"
#include "telemetry/StatsRegistry.h"
#include "telemetry/TraceEventWriter.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>

using namespace lifepred;

namespace {

void appendU64(std::string &Out, uint64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(Value));
  Out += Buf;
}

void appendDouble(std::string &Out, double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  Out += Buf;
}

void appendField(std::string &Out, bool &First, const char *Name,
                 uint64_t Value) {
  Out += First ? "" : ", ";
  First = false;
  Out += "\"";
  Out += Name;
  Out += "\": ";
  appendU64(Out, Value);
}

/// |log2((1 + Observed) / (1 + Trained))|, the per-quantile drift measure.
double quantileDrift(double Observed, double Trained) {
  return std::fabs(std::log2((1.0 + Observed) / (1.0 + Trained)));
}

} // namespace

AuditReport lifepred::buildAuditReport(const FlightRecorder &Recorder,
                                       const TrainedQuantileMap *Trained,
                                       std::string Label) {
  AuditReport Report;
  Report.Label = std::move(Label);
  Report.TotalObjects = Recorder.totalObjects();
  Report.TotalBytes = Recorder.totalBytes();
  Report.SampledObjects = Recorder.sampledCount();
  Report.FinalClock = Recorder.finalClock();
  Report.TotalDeadByteIntegral = Recorder.totalDeadByteIntegral();
  Report.PinnedEpisodes = Recorder.pinnedEpisodeCount();
  Report.DroppedEpisodes = Recorder.droppedEpisodes();
  Report.Episodes = Recorder.episodes();
  Report.Samples = Recorder.sampledRecords();

  for (const auto &[Site, F] : Recorder.siteForensics()) {
    SiteAuditRow Row;
    Row.Site = Site;
    Row.Objects = F.Objects;
    Row.Bytes = F.Bytes;
    Row.TrueShort = F.TrueShort;
    Row.FalseShort = F.FalseShort;
    Row.MissedShort = F.MissedShort;
    Row.TrueLong = F.TrueLong;
    Row.FalseShortBytes = F.FalseShortBytes;
    Row.MissedShortBytes = F.MissedShortBytes;
    Row.WastedBytes = F.wastedBytes();
    Row.ObsQ25 = F.Lifetimes.quantileLowerBound(0.25);
    Row.ObsQ50 = F.Lifetimes.quantileLowerBound(0.50);
    Row.ObsQ75 = F.Lifetimes.quantileLowerBound(0.75);
    Row.ObsQ90 = F.Lifetimes.quantileLowerBound(0.90);
    if (Trained) {
      auto It = Trained->find(Site);
      if (It != Trained->end() && It->second.Objects > 0) {
        Row.HasTrained = true;
        Row.TrainQ25 = It->second.Q25;
        Row.TrainQ50 = It->second.Q50;
        Row.TrainQ75 = It->second.Q75;
        Row.DriftScore = std::max(
            {quantileDrift(static_cast<double>(Row.ObsQ25), Row.TrainQ25),
             quantileDrift(static_cast<double>(Row.ObsQ50), Row.TrainQ50),
             quantileDrift(static_cast<double>(Row.ObsQ75), Row.TrainQ75)});
      }
    }
    Report.TrueShort += Row.TrueShort;
    Report.FalseShort += Row.FalseShort;
    Report.MissedShort += Row.MissedShort;
    Report.TrueLong += Row.TrueLong;
    Report.FalseShortBytes += Row.FalseShortBytes;
    Report.MissedShortBytes += Row.MissedShortBytes;
    Report.Sites.push_back(Row);
  }
  std::sort(Report.Sites.begin(), Report.Sites.end(),
            [](const SiteAuditRow &A, const SiteAuditRow &B) {
              if (A.WastedBytes != B.WastedBytes)
                return A.WastedBytes > B.WastedBytes;
              if (A.FalseShort != B.FalseShort)
                return A.FalseShort > B.FalseShort;
              return A.Site < B.Site;
            });
  return Report;
}

void lifepred::printAuditReport(const AuditReport &Report, std::FILE *Out,
                                size_t MaxSites, size_t MaxEpisodes) {
  std::fprintf(Out, "== lifetime audit%s%s ==\n",
               Report.Label.empty() ? "" : ": ", Report.Label.c_str());
  std::fprintf(Out,
               "objects %" PRIu64 " (%" PRIu64 " bytes), sampled %" PRIu64
               ", final byte clock %" PRIu64 "\n",
               Report.TotalObjects, Report.TotalBytes, Report.SampledObjects,
               Report.FinalClock);
  std::fprintf(Out,
               "confusion: true_short %" PRIu64 "  false_short %" PRIu64
               "  missed_short %" PRIu64 "  true_long %" PRIu64 "\n",
               Report.TrueShort, Report.FalseShort, Report.MissedShort,
               Report.TrueLong);
  std::fprintf(Out,
               "wasted bytes: %" PRIu64 " false-short + %" PRIu64
               " missed-short = %" PRIu64 "\n",
               Report.FalseShortBytes, Report.MissedShortBytes,
               Report.wastedBytes());

  std::fprintf(Out, "\nmispredicting sites (by wasted bytes):\n");
  std::fprintf(Out, "  %6s %9s %11s %12s %12s %10s %11s %7s\n", "site",
               "objects", "false_short", "missed_short", "wasted_bytes",
               "obs_p50", "train_p50", "drift");
  size_t Printed = 0;
  for (const SiteAuditRow &Row : Report.Sites) {
    if (Printed >= MaxSites)
      break;
    if (Row.WastedBytes == 0 && Printed > 0)
      break; // Only clean sites remain; the first row always prints.
    ++Printed;
    char TrainBuf[32] = "-";
    char DriftBuf[32] = "-";
    if (Row.HasTrained) {
      std::snprintf(TrainBuf, sizeof(TrainBuf), "%.0f", Row.TrainQ50);
      std::snprintf(DriftBuf, sizeof(DriftBuf), "%.2f", Row.DriftScore);
    }
    std::fprintf(Out,
                 "  %6u %9" PRIu64 " %11" PRIu64 " %12" PRIu64 " %12" PRIu64
                 " %10" PRIu64 " %11s %7s\n",
                 Row.Site, Row.Objects, Row.FalseShort, Row.MissedShort,
                 Row.WastedBytes, Row.ObsQ50, TrainBuf, DriftBuf);
  }
  if (Report.Sites.empty())
    std::fprintf(Out, "  (no sites recorded)\n");

  std::fprintf(Out, "\narena pinning (by dead-bytes-held):\n");
  size_t Shown = 0;
  for (const FlightRecorder::PinEpisode &E : Report.Episodes) {
    if (Shown++ >= MaxEpisodes)
      break;
    std::fprintf(Out,
                 "  band %u arena %u gen %" PRIu64 ": pinned %" PRIu64
                 "..%" PRIu64 "%s, %zu/%" PRIu64
                 " survivors listed, dead-bytes-held %" PRIu64 "\n",
                 E.Band, E.ArenaIndex, E.Generation, E.PinnedSinceClock,
                 E.EndClock, E.ResetObserved ? " (reset)" : " (still pinned)",
                 E.Survivors.size(), E.SurvivorCount, E.DeadByteIntegral);
    for (const FlightRecorder::Survivor &S : E.Survivors) {
      if (S.DeathClock == FlightRecorder::NoDeath)
        std::fprintf(Out,
                     "    survivor id=%" PRIu64 " site=%u size=%u born=%" PRIu64
                     " (alive at exit)\n",
                     S.Id, S.Site, S.Size, S.BirthClock);
      else
        std::fprintf(Out,
                     "    survivor id=%" PRIu64 " site=%u size=%u born=%" PRIu64
                     " died=%" PRIu64 "\n",
                     S.Id, S.Site, S.Size, S.BirthClock, S.DeathClock);
    }
  }
  if (Report.Episodes.empty())
    std::fprintf(Out, "  (no pinned arenas observed)\n");
  std::fprintf(Out,
               "totals: %" PRIu64 " pinned episodes (%" PRIu64
               " pruned), dead-byte integral %" PRIu64 "\n",
               Report.PinnedEpisodes, Report.DroppedEpisodes,
               Report.TotalDeadByteIntegral);
}

void lifepred::writeAuditJson(const AuditReport &Report, std::string &Out,
                              const std::string &Indent) {
  Out += "{\n";
  Out += Indent + "  \"label\": \"";
  appendJsonEscaped(Out, Report.Label);
  Out += "\",\n";
  Out += Indent + "  \"objects\": ";
  appendU64(Out, Report.TotalObjects);
  Out += ",\n" + Indent + "  \"bytes\": ";
  appendU64(Out, Report.TotalBytes);
  Out += ",\n" + Indent + "  \"sampled\": ";
  appendU64(Out, Report.SampledObjects);
  Out += ",\n" + Indent + "  \"final_clock\": ";
  appendU64(Out, Report.FinalClock);

  Out += ",\n" + Indent + "  \"totals\": {";
  {
    bool First = true;
    appendField(Out, First, "true_short", Report.TrueShort);
    appendField(Out, First, "false_short", Report.FalseShort);
    appendField(Out, First, "missed_short", Report.MissedShort);
    appendField(Out, First, "true_long", Report.TrueLong);
    appendField(Out, First, "false_short_bytes", Report.FalseShortBytes);
    appendField(Out, First, "missed_short_bytes", Report.MissedShortBytes);
    appendField(Out, First, "wasted_bytes", Report.wastedBytes());
    appendField(Out, First, "dead_byte_integral", Report.TotalDeadByteIntegral);
    appendField(Out, First, "pinned_episodes", Report.PinnedEpisodes);
    appendField(Out, First, "dropped_episodes", Report.DroppedEpisodes);
  }
  Out += "},\n";

  Out += Indent + "  \"sites\": [";
  for (size_t I = 0; I < Report.Sites.size(); ++I) {
    const SiteAuditRow &Row = Report.Sites[I];
    Out += I == 0 ? "\n" : ",\n";
    Out += Indent + "    {";
    bool First = true;
    appendField(Out, First, "site", Row.Site);
    appendField(Out, First, "objects", Row.Objects);
    appendField(Out, First, "bytes", Row.Bytes);
    appendField(Out, First, "true_short", Row.TrueShort);
    appendField(Out, First, "false_short", Row.FalseShort);
    appendField(Out, First, "missed_short", Row.MissedShort);
    appendField(Out, First, "true_long", Row.TrueLong);
    appendField(Out, First, "false_short_bytes", Row.FalseShortBytes);
    appendField(Out, First, "missed_short_bytes", Row.MissedShortBytes);
    appendField(Out, First, "wasted_bytes", Row.WastedBytes);
    appendField(Out, First, "obs_p25", Row.ObsQ25);
    appendField(Out, First, "obs_p50", Row.ObsQ50);
    appendField(Out, First, "obs_p75", Row.ObsQ75);
    appendField(Out, First, "obs_p90", Row.ObsQ90);
    if (Row.HasTrained) {
      Out += ", \"train_p25\": ";
      appendDouble(Out, Row.TrainQ25);
      Out += ", \"train_p50\": ";
      appendDouble(Out, Row.TrainQ50);
      Out += ", \"train_p75\": ";
      appendDouble(Out, Row.TrainQ75);
      Out += ", \"drift\": ";
      appendDouble(Out, Row.DriftScore);
    }
    Out += "}";
  }
  Out += Report.Sites.empty() ? "],\n" : "\n" + Indent + "  ],\n";

  Out += Indent + "  \"episodes\": [";
  for (size_t I = 0; I < Report.Episodes.size(); ++I) {
    const FlightRecorder::PinEpisode &E = Report.Episodes[I];
    Out += I == 0 ? "\n" : ",\n";
    Out += Indent + "    {";
    bool First = true;
    appendField(Out, First, "band", E.Band);
    appendField(Out, First, "arena", E.ArenaIndex);
    appendField(Out, First, "generation", E.Generation);
    appendField(Out, First, "first_fill", E.FirstFillClock);
    appendField(Out, First, "last_fill", E.LastFillClock);
    appendField(Out, First, "pinned_since", E.PinnedSinceClock);
    appendField(Out, First, "end", E.EndClock);
    appendField(Out, First, "reset", E.ResetObserved ? 1 : 0);
    appendField(Out, First, "pin_events", E.PinEvents);
    appendField(Out, First, "objects", E.ObjectCount);
    appendField(Out, First, "placed_bytes", E.PlacedBytes);
    appendField(Out, First, "survivor_count", E.SurvivorCount);
    appendField(Out, First, "dead_byte_integral", E.DeadByteIntegral);
    Out += ", \"survivors\": [";
    for (size_t J = 0; J < E.Survivors.size(); ++J) {
      const FlightRecorder::Survivor &S = E.Survivors[J];
      Out += J == 0 ? "" : ", ";
      Out += "{";
      bool SF = true;
      appendField(Out, SF, "id", S.Id);
      appendField(Out, SF, "site", S.Site);
      appendField(Out, SF, "size", S.Size);
      appendField(Out, SF, "birth", S.BirthClock);
      appendField(Out, SF, "freed", S.DeathClock != FlightRecorder::NoDeath);
      if (S.DeathClock != FlightRecorder::NoDeath)
        appendField(Out, SF, "death", S.DeathClock);
      Out += "}";
    }
    Out += "]}";
  }
  Out += Report.Episodes.empty() ? "],\n" : "\n" + Indent + "  ],\n";

  Out += Indent + "  \"samples\": [";
  for (size_t I = 0; I < Report.Samples.size(); ++I) {
    const FlightRecorder::ObjectRecord &R = Report.Samples[I];
    Out += I == 0 ? "\n" : ",\n";
    Out += Indent + "    {";
    bool First = true;
    appendField(Out, First, "id", R.Id);
    appendField(Out, First, "site", R.Site);
    appendField(Out, First, "size", R.Size);
    appendField(Out, First, "birth", R.BirthClock);
    appendField(Out, First, "freed", R.DeathClock != FlightRecorder::NoDeath);
    if (R.DeathClock != FlightRecorder::NoDeath)
      appendField(Out, First, "death", R.DeathClock);
    appendField(Out, First, "predicted_short", R.PredictedShort);
    appendField(Out, First, "actually_short", R.ActuallyShort);
    appendField(Out, First, "band", R.Band);
    if (R.ArenaIndex != AuditPlacement::NoArena) {
      appendField(Out, First, "arena", R.ArenaIndex);
      appendField(Out, First, "generation", R.Generation);
    }
    Out += "}";
  }
  Out += Report.Samples.empty() ? "]" : "\n" + Indent + "  ]";
  Out += "\n" + Indent + "}";
}

void lifepred::exportAuditTelemetry(const AuditReport &Report,
                                    StatsRegistry &Registry,
                                    const std::string &Prefix) {
  Registry.counter(Prefix + "objects") += Report.TotalObjects;
  Registry.counter(Prefix + "sampled") += Report.SampledObjects;
  Registry.counter(Prefix + "sites") += Report.Sites.size();
  Registry.counter(Prefix + "true_short") += Report.TrueShort;
  Registry.counter(Prefix + "false_short") += Report.FalseShort;
  Registry.counter(Prefix + "missed_short") += Report.MissedShort;
  Registry.counter(Prefix + "true_long") += Report.TrueLong;
  Registry.counter(Prefix + "false_short_bytes") += Report.FalseShortBytes;
  Registry.counter(Prefix + "missed_short_bytes") += Report.MissedShortBytes;
  Registry.counter(Prefix + "wasted_bytes") += Report.wastedBytes();
  Registry.counter(Prefix + "dead_byte_integral") +=
      Report.TotalDeadByteIntegral;
  Registry.counter(Prefix + "pinned_episodes") += Report.PinnedEpisodes;

  // Headline gauges: the top-5 offending sites.  Gauges merge by maximum,
  // so in a merged multi-program registry these read as the worst offender
  // across programs; per-program registries keep the full ranking.
  size_t Top = std::min<size_t>(5, Report.Sites.size());
  for (size_t I = 0; I < Top; ++I) {
    if (Report.Sites[I].WastedBytes == 0)
      break;
    std::string Key = Prefix + "top" + std::to_string(I + 1);
    uint64_t &SiteGauge = Registry.gauge(Key + ".site");
    SiteGauge = std::max<uint64_t>(SiteGauge, Report.Sites[I].Site);
    uint64_t &WasteGauge = Registry.gauge(Key + ".wasted_bytes");
    WasteGauge = std::max<uint64_t>(WasteGauge, Report.Sites[I].WastedBytes);
  }
  if (!Report.Episodes.empty()) {
    uint64_t &Peak = Registry.gauge(Prefix + "max_episode_dead_bytes");
    Peak = std::max(Peak, Report.Episodes.front().DeadByteIntegral);
  }
}

void lifepred::emitArenaOccupancy(const AuditReport &Report,
                                  TraceEventWriter &Writer) {
  for (const FlightRecorder::PinEpisode &E : Report.Episodes) {
    // One synthetic track per arena, away from the real thread tids.
    unsigned Track = 100 + unsigned(E.Band) * 64 + (E.ArenaIndex & 63);
    std::string Tag = "b" + std::to_string(E.Band) + " a" +
                      std::to_string(E.ArenaIndex) + " g" +
                      std::to_string(E.Generation);
    Writer.complete("fill " + Tag, "arena", Track, E.FirstFillClock,
                    E.LastFillClock - E.FirstFillClock);
    Writer.complete("pinned " + Tag + " (" + std::to_string(E.SurvivorCount) +
                        " survivors)",
                    "arena", Track, E.PinnedSinceClock,
                    E.EndClock - E.PinnedSinceClock);
    if (E.ResetObserved)
      Writer.instantAt("reset " + Tag, "arena", Track, E.EndClock);
  }
}
