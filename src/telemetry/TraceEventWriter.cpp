//===- telemetry/TraceEventWriter.cpp - chrome://tracing spans -------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/TraceEventWriter.h"

#include "support/Json.h"

#include <chrono>
#include <cstdio>

using namespace lifepred;

namespace {

TraceEventWriter::ClockFn steadyMicrosSince() {
  auto Start = std::chrono::steady_clock::now();
  return [Start]() -> uint64_t {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
  };
}

} // namespace

TraceEventWriter::TraceEventWriter(std::string Path)
    : TraceEventWriter(std::move(Path), steadyMicrosSince()) {}

TraceEventWriter::TraceEventWriter(std::string Path, ClockFn Clock)
    : Path(std::move(Path)), Clock(std::move(Clock)) {}

TraceEventWriter::~TraceEventWriter() { close(); }

unsigned TraceEventWriter::tidForThisThread() {
  auto [It, Inserted] = Tids.try_emplace(std::this_thread::get_id(),
                                         static_cast<unsigned>(Tids.size()));
  (void)Inserted;
  return It->second;
}

void TraceEventWriter::beginSpan(const std::string &Name,
                                 const std::string &Category) {
  uint64_t Ts = Clock();
  std::lock_guard<std::mutex> Guard(Lock);
  unsigned Tid = tidForThisThread();
  Events.push_back({Name, Category, 'B', Tid, Ts});
  ++OpenSpans[Tid];
}

void TraceEventWriter::endSpan() {
  uint64_t Ts = Clock();
  std::lock_guard<std::mutex> Guard(Lock);
  unsigned Tid = tidForThisThread();
  unsigned &Open = OpenSpans[Tid];
  if (Open == 0)
    return; // Unbalanced endSpan; drop rather than corrupt nesting.
  --Open;
  Events.push_back({"", "", 'E', Tid, Ts});
}

void TraceEventWriter::instant(const std::string &Name,
                               const std::string &Category) {
  uint64_t Ts = Clock();
  std::lock_guard<std::mutex> Guard(Lock);
  Events.push_back({Name, Category, 'i', tidForThisThread(), Ts});
}

void TraceEventWriter::complete(const std::string &Name,
                                const std::string &Category, unsigned Track,
                                uint64_t Ts, uint64_t Dur) {
  std::lock_guard<std::mutex> Guard(Lock);
  Events.push_back({Name, Category, 'X', Track, Ts, Dur});
}

void TraceEventWriter::instantAt(const std::string &Name,
                                 const std::string &Category, unsigned Track,
                                 uint64_t Ts) {
  std::lock_guard<std::mutex> Guard(Lock);
  Events.push_back({Name, Category, 'i', Track, Ts});
}

size_t TraceEventWriter::eventCount() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Events.size();
}

std::string TraceEventWriter::toJson() {
  uint64_t Now = Clock();
  std::lock_guard<std::mutex> Guard(Lock);
  // Close any spans left open so every "B" has its "E".
  for (auto &[Tid, Open] : OpenSpans)
    for (; Open > 0; --Open)
      Events.push_back({"", "", 'E', Tid, Now});

  std::string Out;
  Out += "{\"traceEvents\": [";
  char Buf[64];
  for (size_t I = 0; I < Events.size(); ++I) {
    const Event &E = Events[I];
    Out += I == 0 ? "\n" : ",\n";
    Out += "  {\"ph\": \"";
    Out += E.Phase;
    Out += "\"";
    if (E.Phase != 'E') {
      Out += ", \"name\": \"";
      appendJsonEscaped(Out, E.Name);
      Out += "\", \"cat\": \"";
      appendJsonEscaped(Out, E.Category);
      Out += "\"";
      if (E.Phase == 'i')
        Out += ", \"s\": \"t\""; // Instant scope: thread.
      if (E.Phase == 'X') {
        std::snprintf(Buf, sizeof(Buf), ", \"dur\": %llu",
                      static_cast<unsigned long long>(E.Dur));
        Out += Buf;
      }
    }
    std::snprintf(Buf, sizeof(Buf), ", \"pid\": 1, \"tid\": %u, \"ts\": %llu}",
                  E.Tid, static_cast<unsigned long long>(E.Ts));
    Out += Buf;
  }
  Out += Events.empty() ? "]" : "\n]";
  Out += ", \"displayTimeUnit\": \"ms\"}\n";
  return Out;
}

bool TraceEventWriter::close() {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    if (Closed)
      return true;
    Closed = true;
  }
  std::string Json = toJson();
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    std::fprintf(stderr, "warning: cannot write trace events to %s\n",
                 Path.c_str());
    return false;
  }
  std::fwrite(Json.data(), 1, Json.size(), File);
  std::fclose(File);
  std::printf("trace events written to %s (open in chrome://tracing)\n",
              Path.c_str());
  return true;
}
