//===- telemetry/FlightRecorder.h - Per-object lifetime audit ---*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded, deterministic per-object event recorder — the causal record
/// behind the aggregate confusion matrices.  For every object the attached
/// producer reports birth byte-time, site, size, predicted class, and
/// placement (band/arena/generation); the recorder classifies the object at
/// death (or at end-of-trace) against its per-object short-lived threshold,
/// accumulates exact per-site misprediction forensics, tracks each arena
/// generation's fill → pin → reset lifecycle with dead-bytes-held
/// integrals and survivor attribution, and keeps a bounded reservoir of
/// raw object records for drill-down.
///
/// Determinism contract: every data structure here is a pure function of
/// the (seed, event stream) pair.  Reservoir sampling uses Algorithm R
/// with the random draw replaced by a splitMix64 hash of
/// (Seed, BirthClock, ObjectId) — no global RNG, no wall clock — so runs
/// are bit-identical at any `--jobs` count as long as each replay owns its
/// recorder (the same per-worker-then-ordered-export discipline
/// StatsRegistry uses).
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TELEMETRY_FLIGHTRECORDER_H
#define LIFEPRED_TELEMETRY_FLIGHTRECORDER_H

#include "telemetry/StatsRegistry.h"

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace lifepred {

/// Observer for arena lifecycle transitions.  Allocators hold a null
/// pointer by default and invoke these from their reset scan, so the timed
/// path pays only a predictable null test per scan step when no recorder
/// is attached (the bump fast path is untouched).
class ArenaLifecycleSink {
public:
  virtual ~ArenaLifecycleSink() = default;

  /// The reset scan passed over arena \p ArenaIndex of \p Band because
  /// \p LiveCount survivors held its live counter above zero.
  virtual void onArenaPinned(uint8_t Band, uint32_t ArenaIndex,
                             uint64_t Generation, uint32_t LiveCount) = 0;

  /// Arena \p ArenaIndex of \p Band was reset; its generation counter now
  /// reads \p NewGeneration.
  virtual void onArenaReset(uint8_t Band, uint32_t ArenaIndex,
                            uint64_t NewGeneration) = 0;
};

/// Where an object landed.  Default-constructed = the general heap.
struct AuditPlacement {
  /// Band value used for single-band arena allocators and the general heap.
  static constexpr uint8_t DefaultBand = 0;
  /// ArenaIndex value meaning "not in an arena".
  static constexpr uint32_t NoArena = ~uint32_t(0);

  uint8_t Band = DefaultBand;
  uint32_t ArenaIndex = NoArena;
  uint64_t Generation = 0;

  bool inArena() const { return ArenaIndex != NoArena; }
};

/// Bounded per-object audit trail with misprediction forensics and
/// arena-pinning attribution.
class FlightRecorder : public ArenaLifecycleSink {
public:
  /// DeathClock value for objects still alive at end-of-trace.
  static constexpr uint64_t NoDeath = ~uint64_t(0);

  struct Config {
    /// Seed mixed into every reservoir draw; by convention the run
    /// manifest seed, so the sample is reproducible from the report alone.
    uint64_t Seed = 0x1993;
    /// Upper bound on retained raw object records.
    size_t ReservoirCapacity = 4096;
    /// Survivors kept verbatim per pin episode (the full count is always
    /// recorded; only the listed exemplars are bounded).
    unsigned MaxSurvivors = 8;
    /// Upper bound on archived pin episodes; when exceeded the smallest
    /// dead-byte integrals are pruned (totals are unaffected).
    size_t MaxPinEpisodes = 512;
  };

  /// One sampled object.
  struct ObjectRecord {
    uint64_t Id = 0;
    uint64_t BirthClock = 0;
    uint64_t DeathClock = NoDeath;
    uint32_t Site = 0;
    uint32_t Size = 0;
    uint8_t Band = AuditPlacement::DefaultBand;
    uint32_t ArenaIndex = AuditPlacement::NoArena;
    uint64_t Generation = 0;
    bool PredictedShort = false;
    /// Classified at death (or at finish; alive-at-exit = long).
    bool ActuallyShort = false;
  };

  /// A survivor that held an arena's live counter above zero at pin time.
  struct Survivor {
    uint64_t Id = 0;
    uint32_t Site = 0;
    uint32_t Size = 0;
    uint64_t BirthClock = 0;
    /// Backfilled when the survivor dies while the episode is still open;
    /// NoDeath if it outlived the trace.  (A reset requires LiveCount == 0,
    /// so for reset-terminated episodes every survivor death is observed.)
    uint64_t DeathClock = NoDeath;
  };

  /// One arena generation that was observed pinned: from its first fill
  /// to its reset (or to end-of-trace).
  struct PinEpisode {
    uint8_t Band = AuditPlacement::DefaultBand;
    uint32_t ArenaIndex = 0;
    uint64_t Generation = 0;
    uint64_t FirstFillClock = 0;
    uint64_t LastFillClock = 0;
    uint64_t PinnedSinceClock = 0;
    /// Reset clock, or the final byte clock for still-pinned episodes.
    uint64_t EndClock = 0;
    bool ResetObserved = false;
    /// Times the reset scan skipped this arena while pinned.
    uint64_t PinEvents = 0;
    uint64_t ObjectCount = 0;
    uint64_t PlacedBytes = 0;
    /// Live objects when the arena was first observed pinned.
    uint64_t SurvivorCount = 0;
    /// Integral of (arena bytes - live payload bytes) over byte time from
    /// the first pin to EndClock — byte*bytes of dead space held hostage.
    uint64_t DeadByteIntegral = 0;
    /// Up to Config::MaxSurvivors exemplars, ordered by (BirthClock, Id).
    std::vector<Survivor> Survivors;
  };

  /// Exact per-site outcome record (kept for every site, not sampled).
  struct SiteForensics {
    uint64_t Objects = 0;
    uint64_t Bytes = 0;
    /// Confusion counts under the per-object thresholds.  "FalseShort" =
    /// predicted short, lived long (pollutes arenas); "MissedShort" =
    /// predicted long, died short (forgoes the arena win).
    uint64_t TrueShort = 0;
    uint64_t FalseShort = 0;
    uint64_t MissedShort = 0;
    uint64_t TrueLong = 0;
    uint64_t FalseShortBytes = 0;
    uint64_t MissedShortBytes = 0;
    /// Observed lifetimes (alive-at-exit objects contribute their clamped
    /// final age).  Quantiles derive via Log2Histogram::quantileLowerBound.
    Log2Histogram Lifetimes;

    uint64_t wastedBytes() const { return FalseShortBytes + MissedShortBytes; }
  };

  FlightRecorder() = default;
  explicit FlightRecorder(const Config &C) : Cfg(C) {}

  /// Declares the arena byte size for \p Band so dead-byte integrals can be
  /// computed.  Call once at attach time, before replay.
  void setArenaGeometry(uint8_t Band, uint64_t ArenaBytes);

  /// Sets the byte clock for allocator-driven callbacks (pin/reset fire
  /// from inside allocate()).  Call before the allocation with the clock
  /// the subsequent recordAlloc will carry.
  void beginEvent(uint64_t Clock) { CurrentClock = Clock; }

  /// Records a birth.  \p ClassThreshold is the short-lived boundary this
  /// object is judged against at death (the trained threshold, or the
  /// object's band boundary under multi-band classification).
  void recordAlloc(uint64_t Id, uint64_t BirthClock, uint32_t Site,
                   uint32_t Size, bool PredictedShort, uint64_t ClassThreshold,
                   const AuditPlacement &Placement);

  /// Records a death at \p DeathClock (observed lifetime is
  /// DeathClock - BirthClock).
  void recordFree(uint64_t Id, uint64_t DeathClock);

  /// Ends the recording: classifies every still-live object as long-lived,
  /// closes still-pinned episodes at \p FinalClock, and ranks the episode
  /// archive.  Must be called exactly once before reading results.
  void finish(uint64_t FinalClock);
  bool finished() const { return Finished; }

  // ArenaLifecycleSink: driven by the attached allocator's reset scan.
  void onArenaPinned(uint8_t Band, uint32_t ArenaIndex, uint64_t Generation,
                     uint32_t LiveCount) override;
  void onArenaReset(uint8_t Band, uint32_t ArenaIndex,
                    uint64_t NewGeneration) override;

  const Config &config() const { return Cfg; }

  /// Total objects recorded (sampled or not).
  uint64_t totalObjects() const { return TotalObjects; }
  uint64_t totalBytes() const { return TotalBytes; }
  /// Objects the reservoir has retained.
  size_t sampledCount() const { return Reservoir.size(); }
  uint64_t finalClock() const { return FinalClock; }

  /// The retained sample, sorted by (BirthClock, Id) for stable output.
  std::vector<ObjectRecord> sampledRecords() const;

  /// Exact per-site forensics, site-sorted for stable output.
  std::map<uint32_t, SiteForensics> siteForensics() const;

  /// Archived pin episodes ranked by DeadByteIntegral descending (ties:
  /// band, arena, generation ascending).  Valid after finish().
  const std::vector<PinEpisode> &episodes() const { return Episodes; }

  /// Sum of DeadByteIntegral over *all* pinned episodes, including any
  /// pruned past Config::MaxPinEpisodes.
  uint64_t totalDeadByteIntegral() const { return TotalDeadByteIntegral; }
  /// Pinned episodes observed (including pruned ones).
  uint64_t pinnedEpisodeCount() const { return PinnedEpisodeCount; }
  /// Episodes pruned from the archive to respect MaxPinEpisodes.
  uint64_t droppedEpisodes() const { return DroppedEpisodes; }

private:
  struct LiveObject {
    uint32_t Site = 0;
    uint32_t Size = 0;
    uint64_t BirthClock = 0;
    uint64_t ClassThreshold = 0;
    bool PredictedShort = false;
    uint8_t Band = AuditPlacement::DefaultBand;
    uint32_t ArenaIndex = AuditPlacement::NoArena;
    uint64_t Generation = 0;
    /// Index into Reservoir, or ~0u when unsampled.
    uint32_t ReservoirSlot = ~uint32_t(0);
  };

  /// Live tracking for one arena's current generation.
  struct ArenaState {
    uint64_t Generation = 0;
    bool Filled = false;
    uint64_t FirstFillClock = 0;
    uint64_t LastFillClock = 0;
    uint64_t ObjectCount = 0;
    uint64_t PlacedBytes = 0;
    uint64_t LivePayload = 0;
    std::vector<uint64_t> LiveIds;
    bool Pinned = false;
    uint64_t PinnedSinceClock = 0;
    uint64_t PinEvents = 0;
    uint64_t LastIntegralClock = 0;
    uint64_t DeadByteIntegral = 0;
    uint64_t SurvivorCount = 0;
    std::vector<Survivor> Survivors;
  };

  struct BandTrack {
    uint64_t ArenaBytes = 0;
    std::vector<ArenaState> Arenas;
  };

  ArenaState &arenaState(uint8_t Band, uint32_t ArenaIndex);
  void advanceIntegral(const BandTrack &Track, ArenaState &State,
                       uint64_t Clock);
  void closeEpisode(uint8_t Band, uint32_t ArenaIndex, BandTrack &Track,
                    ArenaState &State, uint64_t Clock, bool ResetObserved);
  void classifyAtDeath(uint64_t Id, LiveObject &Obj, uint64_t Lifetime,
                       bool Died);
  void maybeSample(uint64_t Id, const LiveObject &Obj);
  void pruneEpisodes(size_t Keep);
  static void rankEpisodes(std::vector<PinEpisode> &List);

  Config Cfg;
  uint64_t CurrentClock = 0;
  uint64_t FinalClock = 0;
  bool Finished = false;

  uint64_t TotalObjects = 0;
  uint64_t TotalBytes = 0;

  std::unordered_map<uint64_t, LiveObject> Live;
  std::vector<ObjectRecord> Reservoir;
  /// Objects offered to the reservoir so far (Algorithm R's "k").
  uint64_t ReservoirSeen = 0;

  std::unordered_map<uint32_t, SiteForensics> Forensics;

  std::map<uint8_t, BandTrack> Bands;
  std::vector<PinEpisode> Episodes;
  uint64_t TotalDeadByteIntegral = 0;
  uint64_t PinnedEpisodeCount = 0;
  uint64_t DroppedEpisodes = 0;
};

} // namespace lifepred

#endif // LIFEPRED_TELEMETRY_FLIGHTRECORDER_H
