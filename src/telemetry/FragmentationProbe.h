//===- telemetry/FragmentationProbe.h - Fragmentation forensics -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stride-gated fragmentation scanner.  At byte-clock sample points a
/// driver walks the allocator's free and live spans into the probe, which
/// accumulates free-span and live-span log2 histograms (the power-of-two
/// buckets double as per-size-class occupancy), the external-fragmentation
/// index (1 - largest_free / total_free, in parts per million so it stays
/// an exact integer), the largest observed free block, and an
/// RSS-drift-under-steady-churn estimator: the heap-size slope over the
/// back half of the replay, where a well-behaved steady-state heap should
/// be flat.
///
/// Like HeapTimeline, sampling is keyed to the allocation byte clock, so
/// every number the probe emits is a pure function of the trace — safe to
/// gate with bench_compare at exact tolerance and byte-identical at any
/// `--jobs` value under the registry's task-index-order merge.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TELEMETRY_FRAGMENTATIONPROBE_H
#define LIFEPRED_TELEMETRY_FRAGMENTATIONPROBE_H

#include "telemetry/StatsRegistry.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lifepred {

/// Byte-clock-gated fragmentation scanner for one replay.
class FragmentationProbe {
public:
  /// Scans at most once per \p StrideBytes of allocation (minimum 1).
  explicit FragmentationProbe(uint64_t StrideBytes)
      : Stride(StrideBytes == 0 ? 1 : StrideBytes) {}

  /// True when the clock has crossed the next stride boundary and a scan
  /// should run.  The only per-event cost.
  bool due(uint64_t Clock) const { return Clock >= NextClock; }

  uint64_t stride() const { return Stride; }

  /// Opens a sample at \p Clock.  The driver then feeds every span through
  /// addFreeSpan/addLiveSpan and closes with endSample().
  void beginSample(uint64_t Clock, uint64_t HeapBytes, uint64_t LiveBytes);

  void addFreeSpan(uint64_t Bytes) { addFreeSpans(Bytes, 1); }
  void addLiveSpan(uint64_t Bytes) { addLiveSpans(Bytes, 1); }

  /// Bulk forms for size-class allocators that know "N blocks of B bytes"
  /// without enumerating addresses (the batched replay path).
  void addFreeSpans(uint64_t Bytes, uint64_t Count);
  void addLiveSpans(uint64_t Bytes, uint64_t Count);

  /// Closes the open sample: folds its frag index and largest-free into
  /// the running peaks and advances the stride cursor past its clock.
  void endSample();

  uint64_t sampleCount() const { return Samples; }
  /// Fragmentation index of the most recent closed sample, in ppm:
  /// (1 - largest_free_span / total_free_bytes) * 1e6; 0 when nothing is
  /// free.  High values mean free space exists but is shattered.
  uint64_t lastFragIndexPpm() const { return LastFragPpm; }
  /// Peak fragmentation index over all samples, in ppm.
  uint64_t maxFragIndexPpm() const { return MaxFragPpm; }
  /// Largest free span observed in any sample.
  uint64_t largestFreeBlock() const { return PeakLargestFree; }
  /// Cumulative span histograms across all samples.
  const Log2Histogram &freeSpans() const { return FreeSpanHist; }
  const Log2Histogram &liveSpans() const { return LiveSpanHist; }

  /// Heap-size slope over the back half of the replay, split by sign
  /// (the registry is unsigned).  Exactly one of Growth/Shrink is nonzero.
  struct Drift {
    uint64_t GrowthBytes = 0; ///< Heap grew by this much over the window.
    uint64_t ShrinkBytes = 0; ///< Heap shrank by this much over the window.
    uint64_t WindowClock = 0; ///< Byte-clock width of the window.
  };
  Drift driftEstimate() const;

  /// Exports under "<Prefix>frag.": the sample count and total spans seen
  /// (counters), peak frag index / largest free block / peak per-sample
  /// free-byte total (gauges), drift estimator gauges, and the two span
  /// histograms.  Multiple probes exporting to the same keys accumulate
  /// under the registry's merge semantics (counters add, gauges peak,
  /// histograms merge).
  void exportTelemetry(StatsRegistry &Registry,
                       const std::string &Prefix) const;

  /// Appends the probe state as a JSON object to \p Out: summary scalars,
  /// drift, and per-bucket span histograms.  \p Indent prefixes every
  /// emitted line.
  void writeJson(std::string &Out, const std::string &Indent) const;

private:
  uint64_t Stride;
  uint64_t NextClock = 0; ///< First sample triggers immediately.

  // Open-sample accumulation.
  bool InSample = false;
  uint64_t CurClock = 0;
  uint64_t CurHeap = 0;
  uint64_t CurLive = 0;
  uint64_t CurFreeBytes = 0;
  uint64_t CurLargestFree = 0;

  // Cumulative state.
  uint64_t Samples = 0;
  Log2Histogram FreeSpanHist;
  Log2Histogram LiveSpanHist;
  uint64_t LastFragPpm = 0;
  uint64_t MaxFragPpm = 0;
  uint64_t PeakLargestFree = 0;
  uint64_t PeakFreeBytes = 0;

  /// (Clock, HeapBytes) per sample, for the drift estimator.
  struct HeapPoint {
    uint64_t Clock;
    uint64_t HeapBytes;
  };
  std::vector<HeapPoint> Points;
};

} // namespace lifepred

#endif // LIFEPRED_TELEMETRY_FRAGMENTATIONPROBE_H
