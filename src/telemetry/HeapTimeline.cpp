//===- telemetry/HeapTimeline.cpp - Byte-clock heap sampler ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/HeapTimeline.h"

#include "telemetry/StatsRegistry.h"

#include <cstdio>

using namespace lifepred;

void HeapTimeline::record(const HeapSample &Sample) {
  Samples.push_back(Sample);
  // Next boundary strictly after this sample's clock.
  NextClock = (Sample.Clock / Stride + 1) * Stride;
}

void HeapTimeline::exportTelemetry(StatsRegistry &Registry,
                                   const std::string &Prefix) const {
  Registry.gauge(Prefix + "samples") = Samples.size();
  uint64_t PeakFreeBlocks = 0;
  double PeakFragPct = 0.0;
  for (const HeapSample &Sample : Samples) {
    if (Sample.FreeBlocks > PeakFreeBlocks)
      PeakFreeBlocks = Sample.FreeBlocks;
    double Frag = Sample.fragmentationPercent();
    if (Frag > PeakFragPct)
      PeakFragPct = Frag;
  }
  Registry.gauge(Prefix + "peak_free_blocks") = PeakFreeBlocks;
  Registry.gauge(Prefix + "peak_frag_pct") =
      static_cast<uint64_t>(PeakFragPct + 0.5);
}

void HeapTimeline::writeJson(std::string &Out,
                             const std::string &Indent) const {
  char Buf[192];
  Out += "{\n";
  std::snprintf(Buf, sizeof(Buf), "%s  \"stride_bytes\": %llu,\n",
                Indent.c_str(), static_cast<unsigned long long>(Stride));
  Out += Buf;
  Out += Indent + "  \"columns\": [\"clock\", \"heap_bytes\", "
                  "\"live_bytes\", \"arena_bytes\", \"free_blocks\", "
                  "\"frag_pct\"],\n";
  Out += Indent + "  \"samples\": [";
  for (size_t I = 0; I < Samples.size(); ++I) {
    const HeapSample &S = Samples[I];
    Out += I == 0 ? "\n" : ",\n";
    std::snprintf(Buf, sizeof(Buf),
                  "%s    [%llu, %llu, %llu, %llu, %llu, %.2f]",
                  Indent.c_str(), static_cast<unsigned long long>(S.Clock),
                  static_cast<unsigned long long>(S.HeapBytes),
                  static_cast<unsigned long long>(S.LiveBytes),
                  static_cast<unsigned long long>(S.ArenaBytes),
                  static_cast<unsigned long long>(S.FreeBlocks),
                  S.fragmentationPercent());
    Out += Buf;
  }
  Out += Samples.empty() ? "]" : "\n" + Indent + "  ]";
  Out += "\n" + Indent + "}";
}
