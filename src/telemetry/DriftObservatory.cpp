//===- telemetry/DriftObservatory.cpp - Prediction drift tracking ----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/DriftObservatory.h"

#include "telemetry/PerfLedger.h"
#include "telemetry/StatsRegistry.h"
#include "telemetry/TraceEventWriter.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdarg>

using namespace lifepred;

uint64_t DriftObservatory::autoWindowBytes(uint64_t EndClock) {
  return std::bit_ceil(EndClock / 64 + 1);
}

TimeSeries::Config DriftObservatory::seriesConfig() const {
  TimeSeries::Config C;
  C.WindowBytes = Width;
  C.CounterLanes = LaneCount;
  C.HistogramLanes = 1;
  C.RingWindows = 0;
  return C;
}

DriftObservatory::DriftObservatory(const DriftConfig &C) : Cfg(C) {
  Width = Cfg.WindowBytes != 0 ? Cfg.WindowBytes
                               : autoWindowBytes(Cfg.EndClock);
  Global = TimeSeries(seriesConfig());
  Global.extendToClock(Cfg.EndClock);
}

TimeSeries &DriftObservatory::siteSeries(uint32_t Site) {
  auto It = Sites.find(Site);
  if (It == Sites.end())
    It = Sites.emplace(Site, TimeSeries(seriesConfig())).first;
  return It->second;
}

void DriftObservatory::recordAlloc(uint64_t BirthClock, uint32_t Site,
                                   uint32_t Size, bool PredictedShort,
                                   uint64_t Lifetime, bool ActuallyShort) {
  uint64_t Birth = std::min(BirthClock, Cfg.EndClock);
  uint64_t AtExit = Cfg.EndClock - Birth;
  // The profiler's effectiveLifetime convention: never-freed and
  // past-the-end deaths clamp to exit, zero lifetimes become one, so the
  // observed histograms are comparable with trained quantiles.
  uint64_t Observed = std::min(Lifetime, AtExit);
  if (Observed == 0)
    Observed = 1;

  unsigned Lane = PredictedShort
                      ? (ActuallyShort ? LaneTrueShort : LaneFalseShort)
                      : (ActuallyShort ? LaneMissedShort : LaneTrueLong);
  TimeSeries &SiteTs = siteSeries(Site);
  Global.add(Birth, Lane, 1);
  SiteTs.add(Birth, Lane, 1);
  Global.observe(Birth, HistLifetime, Observed);
  SiteTs.observe(Birth, HistLifetime, Observed);

  if (PredictedShort && !ActuallyShort) {
    Global.add(Birth, LaneFalseShortBytes, Size);
    SiteTs.add(Birth, LaneFalseShortBytes, Size);
    // The object pins its arena from the moment it outstays the
    // threshold until its (exit-clamped) death.
    uint64_t PinStart = Birth + std::min(Cfg.Threshold, AtExit);
    uint64_t PinEnd = Birth + Observed;
    if (PinEnd > PinStart) {
      uint64_t First = PinStart / Width;
      uint64_t Last = (PinEnd - 1) / Width;
      for (uint64_t W = First; W <= Last; ++W) {
        Global.addWindow(W, LanePinnedBytes, Size);
        SiteTs.addWindow(W, LanePinnedBytes, Size);
      }
    }
  } else if (!PredictedShort && ActuallyShort) {
    Global.add(Birth, LaneMissedShortBytes, Size);
    SiteTs.add(Birth, LaneMissedShortBytes, Size);
  }
  ++Objects;
}

void DriftObservatory::merge(const DriftObservatory &Other) {
  assert(Cfg == Other.Cfg && Width == Other.Width &&
         "merging observatories of different geometry");
  Objects += Other.Objects;
  Global.merge(Other.Global);
  for (const auto &[Site, Ts] : Other.Sites)
    siteSeries(Site).merge(Ts);
}

bool DriftObservatory::operator==(const DriftObservatory &Other) const {
  return Cfg == Other.Cfg && Width == Other.Width &&
         Objects == Other.Objects && Global == Other.Global &&
         Sites == Other.Sites;
}

//===----------------------------------------------------------------------===//
// DriftSampleLog
//===----------------------------------------------------------------------===//

void DriftSampleLog::recordAlloc(uint64_t Id, uint64_t BirthClock,
                                 uint32_t Site, uint32_t Size,
                                 bool PredictedShort) {
  Index[Id] = Samples.size();
  Sample S;
  S.Birth = BirthClock;
  S.Site = Site;
  S.Size = Size;
  S.Predicted = PredictedShort;
  Samples.push_back(S);
  EndClock = std::max(EndClock, BirthClock);
}

void DriftSampleLog::recordFree(uint64_t Id, uint64_t DeathClock) {
  auto It = Index.find(Id);
  if (It == Index.end())
    return;
  Samples[It->second].Death = DeathClock;
  EndClock = std::max(EndClock, DeathClock);
  Index.erase(It);
}

void DriftSampleLog::finish(uint64_t FinalClock) {
  EndClock = std::max(EndClock, FinalClock);
}

DriftObservatory DriftSampleLog::build(uint64_t WindowBytes,
                                       uint64_t Threshold) const {
  DriftConfig C;
  C.EndClock = EndClock;
  C.WindowBytes = WindowBytes;
  C.Threshold = Threshold;
  DriftObservatory Obs(C);
  constexpr uint64_t Never = ~uint64_t(0);
  for (const Sample &S : Samples) {
    uint64_t Lifetime = S.Death == Never ? Never : S.Death - S.Birth;
    uint64_t AtExit = EndClock - std::min(S.Birth, EndClock);
    uint64_t Observed = std::min(Lifetime, AtExit);
    if (Observed == 0)
      Observed = 1;
    Obs.recordAlloc(S.Birth, S.Site, S.Size, S.Predicted, Lifetime,
                    Observed <= Threshold);
  }
  return Obs;
}

//===----------------------------------------------------------------------===//
// Report building
//===----------------------------------------------------------------------===//

DriftReport lifepred::buildDriftReport(const DriftObservatory &Obs,
                                       const TrainedQuantileMap *Trained,
                                       std::string Label,
                                       const DriftReportOptions &Options) {
  DriftReport R;
  R.Label = std::move(Label);
  R.WindowBytes = Obs.windowBytes();
  R.EndClock = Obs.endClock();
  R.Threshold = Obs.threshold();
  R.TotalObjects = Obs.totalObjects();
  R.SiteCount = Obs.sites().size();

  const TimeSeries &G = Obs.global();
  uint64_t N = Obs.windowCount();
  R.Windows.resize(N);
  for (uint64_t W = 0; W < N; ++W) {
    DriftWindowRow &Row = R.Windows[W];
    Row.StartClock = W * R.WindowBytes;
    Row.EndClock = Row.StartClock + R.WindowBytes;
    Row.TrueShort = G.counter(W, DriftObservatory::LaneTrueShort);
    Row.FalseShort = G.counter(W, DriftObservatory::LaneFalseShort);
    Row.MissedShort = G.counter(W, DriftObservatory::LaneMissedShort);
    Row.TrueLong = G.counter(W, DriftObservatory::LaneTrueLong);
    Row.FalseShortBytes =
        G.counter(W, DriftObservatory::LaneFalseShortBytes);
    Row.MissedShortBytes =
        G.counter(W, DriftObservatory::LaneMissedShortBytes);
    Row.PinnedBytes = G.counter(W, DriftObservatory::LanePinnedBytes);
    uint64_t Total = Row.total();
    if (Total != 0)
      Row.AccuracyPpm = static_cast<int64_t>(
          (Row.TrueShort + Row.TrueLong) * 1000000 / Total);
    R.TrueShort += Row.TrueShort;
    R.FalseShort += Row.FalseShort;
    R.MissedShort += Row.MissedShort;
    R.TrueLong += Row.TrueLong;
    R.FalseShortBytes += Row.FalseShortBytes;
    R.MissedShortBytes += Row.MissedShortBytes;
    R.PinnedBytes += Row.PinnedBytes;
  }
  uint64_t Total = R.TrueShort + R.FalseShort + R.MissedShort + R.TrueLong;
  if (Total != 0)
    R.MeanAccuracyPpm = static_cast<int64_t>(
        (R.TrueShort + R.TrueLong) * 1000000 / Total);

  // Two-sided CUSUM over per-window accuracy, in integer ppm so the flags
  // are bit-identical across platforms.  S+ accumulates shortfall below
  // the run mean, S- excess above it; a trip flags the window and resets
  // both sums, so several distinct shifts each get localized.
  if (R.MeanAccuracyPpm >= 0) {
    int64_t SPlus = 0;
    int64_t SMinus = 0;
    for (uint64_t W = 0; W < N; ++W) {
      DriftWindowRow &Row = R.Windows[W];
      if (Row.AccuracyPpm < 0)
        continue;
      int64_t Shortfall = R.MeanAccuracyPpm - Row.AccuracyPpm;
      SPlus = std::max<int64_t>(0, SPlus + Shortfall - Options.CusumSlackPpm);
      SMinus =
          std::max<int64_t>(0, SMinus - Shortfall - Options.CusumSlackPpm);
      if (SPlus > Options.CusumDecisionPpm ||
          SMinus > Options.CusumDecisionPpm) {
        Row.ChangePoint = true;
        R.ChangePointWindows.push_back(W);
        SPlus = 0;
        SMinus = 0;
      }
    }
  }

  if (Trained) {
    std::vector<DriftSiteScore> Scored;
    for (const auto &[Site, Ts] : Obs.sites()) {
      auto It = Trained->find(Site);
      if (It == Trained->end())
        continue;
      const TrainedSiteQuantiles &Q = It->second;
      if (Q.Q25 < 0 && Q.Q50 < 0 && Q.Q75 < 0)
        continue;
      uint64_t FirstW = Ts.firstWindow();
      for (uint64_t W = FirstW; W < FirstW + Ts.windowCount(); ++W) {
        const Log2Histogram *Hist =
            Ts.histogram(W, DriftObservatory::HistLifetime);
        if (!Hist || Hist->count() < Options.MinSiteWindowObjects)
          continue;
        DriftSiteScore S;
        S.Site = Site;
        S.Window = W;
        S.Objects = Hist->count();
        S.ObsQ50 = Hist->quantileLowerBound(0.50);
        S.TrainQ50 = Q.Q50;
        double Score = 0.0;
        auto Fold = [&Score](uint64_t ObsQ, double TrainQ) {
          if (TrainQ < 0)
            return;
          Score = std::max(
              Score, std::fabs(std::log2((1.0 + static_cast<double>(ObsQ)) /
                                         (1.0 + TrainQ))));
        };
        Fold(Hist->quantileLowerBound(0.25), Q.Q25);
        Fold(S.ObsQ50, Q.Q50);
        Fold(Hist->quantileLowerBound(0.75), Q.Q75);
        S.Score = Score;
        Scored.push_back(S);
        ++R.ScoredSiteWindows;
      }
    }
    std::sort(Scored.begin(), Scored.end(),
              [](const DriftSiteScore &A, const DriftSiteScore &B) {
                if (A.Score != B.Score)
                  return A.Score > B.Score;
                if (A.Site != B.Site)
                  return A.Site < B.Site;
                return A.Window < B.Window;
              });
    if (Scored.size() > Options.TopSites)
      Scored.resize(Options.TopSites);
    R.TopSites = std::move(Scored);
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

uint64_t sumPinned(const DriftReport &Report) { return Report.PinnedBytes; }

std::string accuracySpark(const DriftReport &Report) {
  std::vector<double> Series;
  Series.reserve(Report.Windows.size());
  for (const DriftWindowRow &Row : Report.Windows)
    Series.push_back(Row.AccuracyPpm < 0
                         ? 0.0
                         : static_cast<double>(Row.AccuracyPpm));
  return sparkline(Series);
}

std::string pinnedSpark(const DriftReport &Report) {
  std::vector<double> Series;
  Series.reserve(Report.Windows.size());
  for (const DriftWindowRow &Row : Report.Windows)
    Series.push_back(static_cast<double>(Row.PinnedBytes));
  return sparkline(Series);
}

} // namespace

void lifepred::printDriftReport(const DriftReport &Report, std::FILE *Out) {
  std::fprintf(Out, "== drift: %s ==\n", Report.Label.c_str());
  std::fprintf(Out,
               "windows: %zu x %llu B  (end clock %llu B, threshold %llu "
               "B)\n",
               Report.Windows.size(),
               static_cast<unsigned long long>(Report.WindowBytes),
               static_cast<unsigned long long>(Report.EndClock),
               static_cast<unsigned long long>(Report.Threshold));
  std::fprintf(Out,
               "objects: %llu  sites: %llu  accuracy: %.2f%% mean (%lld "
               "ppm)\n",
               static_cast<unsigned long long>(Report.TotalObjects),
               static_cast<unsigned long long>(Report.SiteCount),
               Report.MeanAccuracyPpm < 0
                   ? 0.0
                   : static_cast<double>(Report.MeanAccuracyPpm) / 10000.0,
               static_cast<long long>(Report.MeanAccuracyPpm));
  std::fprintf(Out, "accuracy/window     %s\n",
               accuracySpark(Report).c_str());
  std::fprintf(Out, "pinned bytes/window %s  (total %llu B)\n",
               pinnedSpark(Report).c_str(),
               static_cast<unsigned long long>(sumPinned(Report)));
  std::fprintf(Out,
               "confusion: ts %llu fs %llu ms %llu tl %llu  cost: "
               "false_short %llu B, missed_short %llu B\n",
               static_cast<unsigned long long>(Report.TrueShort),
               static_cast<unsigned long long>(Report.FalseShort),
               static_cast<unsigned long long>(Report.MissedShort),
               static_cast<unsigned long long>(Report.TrueLong),
               static_cast<unsigned long long>(Report.FalseShortBytes),
               static_cast<unsigned long long>(Report.MissedShortBytes));
  std::fprintf(Out, "change points: %llu",
               static_cast<unsigned long long>(Report.changePointCount()));
  for (uint64_t W : Report.ChangePointWindows)
    std::fprintf(Out, "  w%llu@%llu", static_cast<unsigned long long>(W),
                 static_cast<unsigned long long>(W * Report.WindowBytes));
  std::fprintf(Out, "\n");
  if (Report.hasWorstSite()) {
    const DriftSiteScore &Worst = Report.worstSite();
    std::fprintf(Out,
                 "worst drift site: %llu @ w%llu  score %.3f  (obs q50 "
                 "%llu vs trained q50 %.0f, %llu objects)\n",
                 static_cast<unsigned long long>(Worst.Site),
                 static_cast<unsigned long long>(Worst.Window), Worst.Score,
                 static_cast<unsigned long long>(Worst.ObsQ50),
                 Worst.TrainQ50,
                 static_cast<unsigned long long>(Worst.Objects));
    if (Report.TopSites.size() > 1) {
      std::fprintf(Out, "top drift (site, window):\n");
      for (const DriftSiteScore &S : Report.TopSites)
        std::fprintf(Out,
                     "  site %-10llu w%-4llu score %-8.3f objects %llu\n",
                     static_cast<unsigned long long>(S.Site),
                     static_cast<unsigned long long>(S.Window), S.Score,
                     static_cast<unsigned long long>(S.Objects));
    }
  } else if (Report.ScoredSiteWindows == 0) {
    std::fprintf(Out, "worst drift site: none scored\n");
  }
}

namespace {

void appendLine(std::string &Out, const std::string &Indent,
                const char *Format, ...) {
  char Buffer[512];
  va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Buffer, sizeof(Buffer), Format, Args);
  va_end(Args);
  Out += Indent;
  Out += Buffer;
}

void appendSiteScore(std::string &Out, const std::string &Indent,
                     const DriftSiteScore &S, bool Comma) {
  appendLine(Out, Indent,
             "{\"site\": %llu, \"window\": %llu, \"objects\": %llu, "
             "\"obs_q50\": %llu, \"train_q50\": %.6g, \"score\": %.6g}%s\n",
             static_cast<unsigned long long>(S.Site),
             static_cast<unsigned long long>(S.Window),
             static_cast<unsigned long long>(S.Objects),
             static_cast<unsigned long long>(S.ObsQ50), S.TrainQ50, S.Score,
             Comma ? "," : "");
}

} // namespace

void lifepred::writeDriftJson(const DriftReport &Report, std::string &Out,
                              const std::string &Indent) {
  const std::string In1 = Indent + "  ";
  const std::string In2 = Indent + "    ";
  Out += Indent + "{\n";
  appendLine(Out, In1, "\"label\": \"%s\",\n", Report.Label.c_str());
  appendLine(Out, In1, "\"window_bytes\": %llu,\n",
             static_cast<unsigned long long>(Report.WindowBytes));
  appendLine(Out, In1, "\"end_clock\": %llu,\n",
             static_cast<unsigned long long>(Report.EndClock));
  appendLine(Out, In1, "\"threshold\": %llu,\n",
             static_cast<unsigned long long>(Report.Threshold));
  appendLine(Out, In1, "\"windows\": %zu,\n", Report.Windows.size());
  appendLine(Out, In1, "\"objects\": %llu,\n",
             static_cast<unsigned long long>(Report.TotalObjects));
  appendLine(Out, In1, "\"sites\": %llu,\n",
             static_cast<unsigned long long>(Report.SiteCount));
  appendLine(Out, In1, "\"true_short\": %llu,\n",
             static_cast<unsigned long long>(Report.TrueShort));
  appendLine(Out, In1, "\"false_short\": %llu,\n",
             static_cast<unsigned long long>(Report.FalseShort));
  appendLine(Out, In1, "\"missed_short\": %llu,\n",
             static_cast<unsigned long long>(Report.MissedShort));
  appendLine(Out, In1, "\"true_long\": %llu,\n",
             static_cast<unsigned long long>(Report.TrueLong));
  appendLine(Out, In1, "\"false_short_bytes\": %llu,\n",
             static_cast<unsigned long long>(Report.FalseShortBytes));
  appendLine(Out, In1, "\"missed_short_bytes\": %llu,\n",
             static_cast<unsigned long long>(Report.MissedShortBytes));
  appendLine(Out, In1, "\"pinned_bytes\": %llu,\n",
             static_cast<unsigned long long>(Report.PinnedBytes));
  appendLine(Out, In1, "\"accuracy_mean_ppm\": %lld,\n",
             static_cast<long long>(Report.MeanAccuracyPpm));
  appendLine(Out, In1, "\"changepoint_count\": %llu,\n",
             static_cast<unsigned long long>(Report.changePointCount()));
  Out += In1 + "\"changepoints\": [";
  for (size_t I = 0; I < Report.ChangePointWindows.size(); ++I) {
    if (I != 0)
      Out += ", ";
    appendLine(Out, "", "%llu",
               static_cast<unsigned long long>(Report.ChangePointWindows[I]));
  }
  Out += "],\n";
  appendLine(Out, In1, "\"scored_site_windows\": %llu,\n",
             static_cast<unsigned long long>(Report.ScoredSiteWindows));
  if (Report.hasWorstSite()) {
    Out += In1 + "\"worst_site\":\n";
    appendSiteScore(Out, In2, Report.worstSite(), /*Comma=*/true);
  } else {
    Out += In1 + "\"worst_site\": null,\n";
  }
  Out += In1 + "\"top_sites\": [";
  if (!Report.TopSites.empty()) {
    Out += "\n";
    for (size_t I = 0; I < Report.TopSites.size(); ++I)
      appendSiteScore(Out, In2, Report.TopSites[I],
                      I + 1 != Report.TopSites.size());
    Out += In1;
  }
  Out += "],\n";
  Out += In1 + "\"series\": [";
  for (size_t W = 0; W < Report.Windows.size(); ++W) {
    const DriftWindowRow &Row = Report.Windows[W];
    Out += W == 0 ? "\n" : ",\n";
    appendLine(Out, In2,
               "{\"w\": %zu, \"start\": %llu, \"ts\": %llu, \"fs\": %llu, "
               "\"ms\": %llu, \"tl\": %llu, \"acc_ppm\": %lld, "
               "\"false_short_bytes\": %llu, \"missed_short_bytes\": %llu, "
               "\"pinned_bytes\": %llu, \"changepoint\": %s}",
               W, static_cast<unsigned long long>(Row.StartClock),
               static_cast<unsigned long long>(Row.TrueShort),
               static_cast<unsigned long long>(Row.FalseShort),
               static_cast<unsigned long long>(Row.MissedShort),
               static_cast<unsigned long long>(Row.TrueLong),
               static_cast<long long>(Row.AccuracyPpm),
               static_cast<unsigned long long>(Row.FalseShortBytes),
               static_cast<unsigned long long>(Row.MissedShortBytes),
               static_cast<unsigned long long>(Row.PinnedBytes),
               Row.ChangePoint ? "true" : "false");
  }
  if (!Report.Windows.empty()) {
    Out += "\n";
    Out += In1;
  }
  Out += "]\n";
  Out += Indent + "}";
}

void lifepred::exportDriftTelemetry(const DriftReport &Report,
                                    StatsRegistry &Registry,
                                    const std::string &Prefix) {
  Registry.counter(Prefix + "windows") += Report.Windows.size();
  Registry.counter(Prefix + "objects") += Report.TotalObjects;
  Registry.counter(Prefix + "changepoints") += Report.changePointCount();
  Registry.counter(Prefix + "true_short") += Report.TrueShort;
  Registry.counter(Prefix + "false_short") += Report.FalseShort;
  Registry.counter(Prefix + "missed_short") += Report.MissedShort;
  Registry.counter(Prefix + "true_long") += Report.TrueLong;
  Registry.counter(Prefix + "false_short_bytes") += Report.FalseShortBytes;
  Registry.counter(Prefix + "missed_short_bytes") += Report.MissedShortBytes;
  Registry.counter(Prefix + "pinned_bytes") += Report.PinnedBytes;
  Registry.counter(Prefix + "scored_site_windows") +=
      Report.ScoredSiteWindows;
  uint64_t &Sites = Registry.gauge(Prefix + "sites");
  Sites = std::max(Sites, Report.SiteCount);
  uint64_t &Mean = Registry.gauge(Prefix + "accuracy_mean_ppm");
  Mean = std::max(Mean, static_cast<uint64_t>(
                            std::max<int64_t>(0, Report.MeanAccuracyPpm)));
  if (Report.hasWorstSite()) {
    const DriftSiteScore &Worst = Report.worstSite();
    uint64_t &Site = Registry.gauge(Prefix + "worst_site");
    Site = std::max(Site, static_cast<uint64_t>(Worst.Site));
    uint64_t &Window = Registry.gauge(Prefix + "worst_site_window");
    Window = std::max(Window, Worst.Window);
    uint64_t &Milli = Registry.gauge(Prefix + "worst_site_score_milli");
    Milli = std::max(
        Milli, static_cast<uint64_t>(std::llround(Worst.Score * 1000.0)));
  }
}

void lifepred::emitDriftTrack(const DriftReport &Report,
                              TraceEventWriter &Writer, unsigned Track) {
  char Name[96];
  for (size_t W = 0; W < Report.Windows.size(); ++W) {
    const DriftWindowRow &Row = Report.Windows[W];
    if (Row.AccuracyPpm >= 0) {
      std::snprintf(Name, sizeof(Name), "%s acc %lld ppm",
                    Report.Label.c_str(),
                    static_cast<long long>(Row.AccuracyPpm));
      Writer.complete(Name, "drift", Track, Row.StartClock,
                      Report.WindowBytes);
    }
    if (Row.PinnedBytes != 0) {
      std::snprintf(Name, sizeof(Name), "%s pinned %llu B",
                    Report.Label.c_str(),
                    static_cast<unsigned long long>(Row.PinnedBytes));
      Writer.complete(Name, "drift", Track + 1, Row.StartClock,
                      Report.WindowBytes);
    }
    if (Row.ChangePoint) {
      std::snprintf(Name, sizeof(Name), "%s changepoint w%zu",
                    Report.Label.c_str(), W);
      Writer.instantAt(Name, "drift", Track, Row.StartClock);
    }
  }
}
