//===- telemetry/LifetimeAudit.h - Misprediction forensics ------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis pass over a finished FlightRecorder: builds the per-site
/// misprediction forensics table (confusion counts, observed lifetime
/// quantiles vs. the trained P² quantiles, drift score) ranked by wasted
/// bytes, the arena-pinning report with survivor attribution, and the
/// serialized forms — human tables, audit JSON, headline metrics folded
/// into a StatsRegistry for bench_compare gating, and chrome://tracing
/// occupancy spans through TraceEventWriter.
///
/// Everything here is a deterministic function of the recorder contents:
/// rankings break ties on site/arena ids, and the gated telemetry metrics
/// are integer-valued so cross-platform bit-identical comparison holds.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TELEMETRY_LIFETIMEAUDIT_H
#define LIFEPRED_TELEMETRY_LIFETIMEAUDIT_H

#include "telemetry/FlightRecorder.h"

#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

namespace lifepred {

class StatsRegistry;
class TraceEventWriter;

/// Lifetime quantiles a site trained at, from the profiler's P² histograms.
/// Plain data so the telemetry layer needs no dependency on the profiler;
/// the sim layer provides buildTrainedQuantiles() to fill one of these from
/// a Profile.
struct TrainedSiteQuantiles {
  double Q25 = -1.0;
  double Q50 = -1.0;
  double Q75 = -1.0;
  uint64_t Objects = 0;
};

/// Keyed by the recorder's site id (trace chain index).
using TrainedQuantileMap = std::unordered_map<uint32_t, TrainedSiteQuantiles>;

/// One row of the misprediction forensics table.
struct SiteAuditRow {
  uint32_t Site = 0;
  uint64_t Objects = 0;
  uint64_t Bytes = 0;
  uint64_t TrueShort = 0;
  uint64_t FalseShort = 0;
  uint64_t MissedShort = 0;
  uint64_t TrueLong = 0;
  uint64_t FalseShortBytes = 0;
  uint64_t MissedShortBytes = 0;
  uint64_t WastedBytes = 0;
  /// Observed lifetime quantiles — log2-bucket lower bounds (see
  /// Log2Histogram::quantileLowerBound for the convention).
  uint64_t ObsQ25 = 0;
  uint64_t ObsQ50 = 0;
  uint64_t ObsQ75 = 0;
  uint64_t ObsQ90 = 0;
  /// Trained P² quantiles; negative when the site was unseen in training.
  double TrainQ25 = -1.0;
  double TrainQ50 = -1.0;
  double TrainQ75 = -1.0;
  bool HasTrained = false;
  /// max over {p25, p50, p75} of |log2((1 + observed) / (1 + trained))| —
  /// how many binary orders of magnitude the site's lifetime distribution
  /// moved between training and test.
  double DriftScore = 0.0;
};

/// The complete audit: forensics + pinning + the raw sample.
struct AuditReport {
  std::string Label;
  uint64_t TotalObjects = 0;
  uint64_t TotalBytes = 0;
  uint64_t SampledObjects = 0;
  uint64_t FinalClock = 0;
  uint64_t TrueShort = 0;
  uint64_t FalseShort = 0;
  uint64_t MissedShort = 0;
  uint64_t TrueLong = 0;
  uint64_t FalseShortBytes = 0;
  uint64_t MissedShortBytes = 0;
  uint64_t TotalDeadByteIntegral = 0;
  uint64_t PinnedEpisodes = 0;
  uint64_t DroppedEpisodes = 0;
  /// Ranked by WastedBytes descending (ties: FalseShort desc, Site asc).
  std::vector<SiteAuditRow> Sites;
  /// Ranked by DeadByteIntegral descending (the recorder's order).
  std::vector<FlightRecorder::PinEpisode> Episodes;
  /// The reservoir sample, sorted by (BirthClock, Id).
  std::vector<FlightRecorder::ObjectRecord> Samples;

  uint64_t wastedBytes() const { return FalseShortBytes + MissedShortBytes; }
};

/// Builds the report from a finished recorder.  \p Trained (optional)
/// supplies per-site training quantiles for the drift columns.
AuditReport buildAuditReport(const FlightRecorder &Recorder,
                             const TrainedQuantileMap *Trained = nullptr,
                             std::string Label = "");

/// Prints the human-readable forensics and pinning tables.
void printAuditReport(const AuditReport &Report, std::FILE *Out,
                      size_t MaxSites = 10, size_t MaxEpisodes = 5);

/// Appends the full report as a JSON object.  \p Indent prefixes every
/// emitted line; output is fully ordered, so byte-identical runs produce
/// byte-identical JSON.
void writeAuditJson(const AuditReport &Report, std::string &Out,
                    const std::string &Indent);

/// Folds the headline numbers into \p Registry under \p Prefix
/// ("audit." by convention): confusion totals, wasted bytes, dead-byte
/// integral, pinned episode count as counters; the top-5 offending sites
/// as gauges ("top1.site", "top1.wasted_bytes", ...).  All integer-valued,
/// so bench_compare can gate them at exact tolerance.
void exportAuditTelemetry(const AuditReport &Report, StatsRegistry &Registry,
                          const std::string &Prefix = "audit.");

/// Emits each pinned episode's fill and pinned phases as chrome://tracing
/// complete events on a per-arena track (byte time on the microsecond
/// axis), plus a reset instant when the reset was observed.
void emitArenaOccupancy(const AuditReport &Report, TraceEventWriter &Writer);

} // namespace lifepred

#endif // LIFEPRED_TELEMETRY_LIFETIMEAUDIT_H
