//===- telemetry/HeapHeatmap.cpp - Address x byte-clock occupancy ----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/HeapHeatmap.h"

#include "telemetry/StatsRegistry.h"
#include "telemetry/TraceEventWriter.h"

#include <algorithm>
#include <bit>
#include <cassert>

using namespace lifepred;

HeapHeatmap::HeapHeatmap(Config C) : Cfg(C) {
  Cfg.BytesPerRow = std::bit_ceil(std::max<uint64_t>(Cfg.BytesPerRow, 64));
  if (Cfg.ClockStride == 0)
    Cfg.ClockStride = 1;
  if (Cfg.MaxRows == 0)
    Cfg.MaxRows = 1;
  if (Cfg.MaxColumns == 0)
    Cfg.MaxColumns = 1;
  RowShift = static_cast<unsigned>(std::countr_zero(Cfg.BytesPerRow));
}

void HeapHeatmap::beginColumn(uint64_t Clock) {
  assert(!InColumn && "beginColumn while a column is open");
  InColumn = true;
  uint64_t Column = Clock / Cfg.ClockStride;
  CurColumn = static_cast<uint32_t>(
      std::min<uint64_t>(Column, Cfg.MaxColumns - 1));
}

void HeapHeatmap::addSpan(uint64_t Address, uint64_t Bytes) {
  assert(InColumn && "addSpan outside beginColumn/endColumn");
  while (Bytes != 0) {
    uint64_t Row = rowKeyFor(Address);
    uint64_t RowEnd = (Row + 1) << RowShift;
    uint64_t Take = std::min(Bytes, RowEnd - Address);
    auto It = Rows.find(Row);
    if (It == Rows.end()) {
      if (Rows.size() >= Cfg.MaxRows) {
        Clipped += Take;
        Address += Take;
        Bytes -= Take;
        continue;
      }
      It = Rows.emplace(Row, std::map<uint32_t, uint64_t>()).first;
    }
    It->second[CurColumn] += Take;
    Address += Take;
    Bytes -= Take;
  }
}

void HeapHeatmap::endColumn() {
  assert(InColumn && "endColumn without beginColumn");
  InColumn = false;
  // Next boundary strictly after the sampled column.
  NextClock = (uint64_t(CurColumn) + 1) * Cfg.ClockStride;
}

void HeapHeatmap::merge(const HeapHeatmap &Other) {
  assert(Cfg.BytesPerRow == Other.Cfg.BytesPerRow &&
         Cfg.ClockStride == Other.Cfg.ClockStride &&
         "merging heatmaps of different geometry");
  for (const auto &[Row, Cells] : Other.Rows) {
    auto It = Rows.find(Row);
    if (It == Rows.end()) {
      if (Rows.size() >= Cfg.MaxRows) {
        for (const auto &[Col, Bytes] : Cells)
          Clipped += Bytes;
        continue;
      }
      It = Rows.emplace(Row, std::map<uint32_t, uint64_t>()).first;
    }
    for (const auto &[Col, Bytes] : Cells)
      It->second[Col] += Bytes;
  }
  Clipped += Other.Clipped;
  NextClock = std::max(NextClock, Other.NextClock);
}

uint64_t HeapHeatmap::columnCount() const {
  uint64_t MaxColumn = 0;
  bool Any = false;
  for (const auto &[Row, Cells] : Rows)
    for (const auto &[Col, Bytes] : Cells) {
      MaxColumn = std::max<uint64_t>(MaxColumn, Col);
      Any = true;
    }
  return Any ? MaxColumn + 1 : 0;
}

uint64_t HeapHeatmap::occupiedCells() const {
  uint64_t Count = 0;
  for (const auto &[Row, Cells] : Rows)
    Count += Cells.size();
  return Count;
}

uint64_t HeapHeatmap::peakCellBytes() const {
  uint64_t Peak = 0;
  for (const auto &[Row, Cells] : Rows)
    for (const auto &[Col, Bytes] : Cells)
      Peak = std::max(Peak, Bytes);
  return Peak;
}

uint64_t HeapHeatmap::cellBytes(uint64_t Address, uint64_t Clock) const {
  auto RowIt = Rows.find(rowKeyFor(Address));
  if (RowIt == Rows.end())
    return 0;
  uint64_t Column = std::min<uint64_t>(Clock / Cfg.ClockStride,
                                       Cfg.MaxColumns - 1);
  auto CellIt = RowIt->second.find(static_cast<uint32_t>(Column));
  return CellIt == RowIt->second.end() ? 0 : CellIt->second;
}

void HeapHeatmap::printAscii(std::FILE *Out) const {
  static const char Shades[] = " .:-=+*#%@";
  uint64_t Columns = columnCount();
  std::fprintf(Out,
               "heap heatmap: %llu rows x %llu cols "
               "(row = %llu addr bytes, col = %llu clock bytes)\n",
               static_cast<unsigned long long>(Rows.size()),
               static_cast<unsigned long long>(Columns),
               static_cast<unsigned long long>(Cfg.BytesPerRow),
               static_cast<unsigned long long>(Cfg.ClockStride));
  uint64_t PrevRow = 0;
  bool First = true;
  for (const auto &[Row, Cells] : Rows) {
    if (!First && Row != PrevRow + 1)
      std::fprintf(Out, "  ~~~ address gap ~~~\n");
    First = false;
    PrevRow = Row;
    std::fprintf(Out, "  0x%012llx |",
                 static_cast<unsigned long long>(Row << RowShift));
    for (uint64_t Col = 0; Col < Columns; ++Col) {
      auto It = Cells.find(static_cast<uint32_t>(Col));
      uint64_t Bytes = It == Cells.end() ? 0 : It->second;
      // Shade by occupancy relative to the row window; clamp — a column
      // can accumulate more than one sample's worth of bytes.
      uint64_t Level = Bytes == 0 ? 0 : 1 + Bytes * 8 / Cfg.BytesPerRow;
      std::fputc(Shades[std::min<uint64_t>(Level, 9)], Out);
    }
    std::fprintf(Out, "|\n");
  }
  if (Clipped != 0)
    std::fprintf(Out, "  (%llu bytes clipped by row cap)\n",
                 static_cast<unsigned long long>(Clipped));
}

void HeapHeatmap::writeJson(std::string &Out,
                            const std::string &Indent) const {
  char Buf[192];
  Out += "{\n";
  std::snprintf(Buf, sizeof(Buf),
                "%s  \"bytes_per_row\": %llu,\n"
                "%s  \"clock_stride\": %llu,\n",
                Indent.c_str(),
                static_cast<unsigned long long>(Cfg.BytesPerRow),
                Indent.c_str(),
                static_cast<unsigned long long>(Cfg.ClockStride));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "%s  \"columns\": %llu,\n%s  \"clipped_bytes\": %llu,\n",
                Indent.c_str(),
                static_cast<unsigned long long>(columnCount()),
                Indent.c_str(), static_cast<unsigned long long>(Clipped));
  Out += Buf;
  Out += Indent + "  \"rows\": [";
  bool FirstRow = true;
  for (const auto &[Row, Cells] : Rows) {
    Out += FirstRow ? "\n" : ",\n";
    FirstRow = false;
    std::snprintf(Buf, sizeof(Buf), "%s    {\"base\": %llu, \"cells\": [",
                  Indent.c_str(),
                  static_cast<unsigned long long>(Row << RowShift));
    Out += Buf;
    bool FirstCell = true;
    for (const auto &[Col, Bytes] : Cells) {
      std::snprintf(Buf, sizeof(Buf), "%s[%u, %llu]", FirstCell ? "" : ", ",
                    Col, static_cast<unsigned long long>(Bytes));
      Out += Buf;
      FirstCell = false;
    }
    Out += "]}";
  }
  Out += Rows.empty() ? "]" : "\n" + Indent + "  ]";
  Out += "\n" + Indent + "}";
}

void HeapHeatmap::exportTrace(TraceEventWriter &Writer) const {
  char Name[32];
  unsigned Track = 0;
  for (const auto &[Row, Cells] : Rows) {
    for (const auto &[Col, Bytes] : Cells) {
      std::snprintf(Name, sizeof(Name), "%llu%%",
                    static_cast<unsigned long long>(
                        std::min<uint64_t>(Bytes * 100 / Cfg.BytesPerRow,
                                           100)));
      Writer.complete(Name, "heatmap", Track,
                      uint64_t(Col) * Cfg.ClockStride, Cfg.ClockStride);
    }
    ++Track;
  }
}

void HeapHeatmap::exportTelemetry(StatsRegistry &Registry,
                                  const std::string &Prefix) const {
  auto Peak = [&Registry](const std::string &Name, uint64_t Value) {
    uint64_t &Gauge = Registry.gauge(Name);
    if (Value > Gauge)
      Gauge = Value;
  };
  Peak(Prefix + "heatmap.rows", Rows.size());
  Peak(Prefix + "heatmap.columns", columnCount());
  Peak(Prefix + "heatmap.occupied_cells", occupiedCells());
  Peak(Prefix + "heatmap.peak_cell_bytes", peakCellBytes());
  Peak(Prefix + "heatmap.clipped_bytes", Clipped);
}
