//===- telemetry/TraceEventWriter.h - chrome://tracing spans ----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits Chrome Trace Event Format JSON (the format chrome://tracing and
/// Perfetto load) for the coarse phases of a simulation run: trace
/// generation, training, and per-program replay.  Spans are duration
/// events ("B"/"E") nested per thread; each thread gets its own tid in
/// first-use order.  Events accumulate in memory under a mutex — span
/// boundaries are per phase, not per allocation, so contention is nil —
/// and the file is written once at close().
///
/// The clock is injectable so tests can produce byte-identical golden
/// output; the default clock is microseconds of steady_clock since
/// construction.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TELEMETRY_TRACEEVENTWRITER_H
#define LIFEPRED_TELEMETRY_TRACEEVENTWRITER_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lifepred {

/// Accumulates trace events and writes one chrome://tracing JSON file.
class TraceEventWriter {
public:
  /// Microsecond timestamp source.
  using ClockFn = std::function<uint64_t()>;

  /// Writes to \p Path at close() (or destruction) using the steady clock.
  explicit TraceEventWriter(std::string Path);

  /// As above with an injected clock (golden tests).
  TraceEventWriter(std::string Path, ClockFn Clock);

  /// Closes if the caller did not.
  ~TraceEventWriter();

  TraceEventWriter(const TraceEventWriter &) = delete;
  TraceEventWriter &operator=(const TraceEventWriter &) = delete;

  /// Opens a span on the calling thread.  Spans on one thread must nest.
  void beginSpan(const std::string &Name, const std::string &Category = "sim");

  /// Closes the calling thread's innermost open span.
  void endSpan();

  /// A zero-duration instant event on the calling thread.
  void instant(const std::string &Name, const std::string &Category = "sim");

  /// A complete ("X") event with explicit timestamp and duration on the
  /// synthetic track \p Track.  Unlike B/E spans these may overlap freely,
  /// which is what per-arena occupancy timelines need; callers should pick
  /// track ids well above the thread tids (first-use numbered from 0).
  void complete(const std::string &Name, const std::string &Category,
                unsigned Track, uint64_t Ts, uint64_t Dur);

  /// An instant event at an explicit timestamp on track \p Track.
  void instantAt(const std::string &Name, const std::string &Category,
                 unsigned Track, uint64_t Ts);

  /// Serializes all events as Trace Event Format JSON.  Spans still open
  /// at write time are closed at the current clock (per thread, inner
  /// first) so the output always parses as well-nested.
  std::string toJson();

  /// Writes the file; returns false (after a warning to stderr) when the
  /// path cannot be written.  Idempotent — only the first call writes.
  bool close();

  /// Number of events recorded so far (test support).
  size_t eventCount() const;

private:
  struct Event {
    std::string Name; ///< Empty for "E" events.
    std::string Category;
    char Phase;       ///< 'B', 'E', 'i', or 'X'.
    unsigned Tid;
    uint64_t Ts;      ///< Microseconds.
    uint64_t Dur = 0; ///< Duration; 'X' events only.
  };

  unsigned tidForThisThread();

  std::string Path;
  ClockFn Clock;
  mutable std::mutex Lock;
  std::vector<Event> Events;
  std::unordered_map<std::thread::id, unsigned> Tids;
  /// Open span depth per tid, to auto-close at serialization.
  std::unordered_map<unsigned, unsigned> OpenSpans;
  bool Closed = false;
};

/// RAII span: opens on construction, closes on destruction.  A null writer
/// makes both no-ops, so instrumented code paths need no conditionals.
class TraceSpan {
public:
  TraceSpan(TraceEventWriter *Writer, const std::string &Name,
            const std::string &Category = "sim")
      : Writer(Writer) {
    if (Writer)
      Writer->beginSpan(Name, Category);
  }
  ~TraceSpan() {
    if (Writer)
      Writer->endSpan();
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  TraceEventWriter *Writer;
};

} // namespace lifepred

#endif // LIFEPRED_TELEMETRY_TRACEEVENTWRITER_H
