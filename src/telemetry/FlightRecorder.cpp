//===- telemetry/FlightRecorder.cpp - Per-object lifetime audit -----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/FlightRecorder.h"

#include "support/Random.h"

#include <algorithm>

namespace lifepred {

void FlightRecorder::setArenaGeometry(uint8_t Band, uint64_t ArenaBytes) {
  Bands[Band].ArenaBytes = ArenaBytes;
}

FlightRecorder::ArenaState &FlightRecorder::arenaState(uint8_t Band,
                                                       uint32_t ArenaIndex) {
  BandTrack &Track = Bands[Band];
  if (ArenaIndex >= Track.Arenas.size())
    Track.Arenas.resize(ArenaIndex + 1);
  return Track.Arenas[ArenaIndex];
}

void FlightRecorder::advanceIntegral(const BandTrack &Track, ArenaState &State,
                                     uint64_t Clock) {
  if (!State.Pinned || Clock <= State.LastIntegralClock)
    return;
  // With no declared geometry, fall back to bytes ever placed — still a
  // lower bound on the space the pinned arena withholds.
  uint64_t ArenaBytes = Track.ArenaBytes ? Track.ArenaBytes : State.PlacedBytes;
  uint64_t Dead =
      ArenaBytes > State.LivePayload ? ArenaBytes - State.LivePayload : 0;
  State.DeadByteIntegral += Dead * (Clock - State.LastIntegralClock);
  State.LastIntegralClock = Clock;
}

void FlightRecorder::closeEpisode(uint8_t Band, uint32_t ArenaIndex,
                                  BandTrack &Track, ArenaState &State,
                                  uint64_t Clock, bool ResetObserved) {
  advanceIntegral(Track, State, Clock);
  PinEpisode E;
  E.Band = Band;
  E.ArenaIndex = ArenaIndex;
  E.Generation = State.Generation;
  E.FirstFillClock = State.FirstFillClock;
  E.LastFillClock = State.LastFillClock;
  E.PinnedSinceClock = State.PinnedSinceClock;
  E.EndClock = Clock;
  E.ResetObserved = ResetObserved;
  E.PinEvents = State.PinEvents;
  E.ObjectCount = State.ObjectCount;
  E.PlacedBytes = State.PlacedBytes;
  E.SurvivorCount = State.SurvivorCount;
  E.DeadByteIntegral = State.DeadByteIntegral;
  E.Survivors = std::move(State.Survivors);
  TotalDeadByteIntegral += E.DeadByteIntegral;
  ++PinnedEpisodeCount;
  Episodes.push_back(std::move(E));
  // Keep the archive bounded during the run; prune rarely (at 4x the cap)
  // so the amortized cost stays tiny and the retained set — the largest
  // integrals — is a pure function of the event stream.
  if (Cfg.MaxPinEpisodes > 0 && Episodes.size() >= Cfg.MaxPinEpisodes * 4)
    pruneEpisodes(Cfg.MaxPinEpisodes);
}

void FlightRecorder::rankEpisodes(std::vector<PinEpisode> &List) {
  std::sort(List.begin(), List.end(),
            [](const PinEpisode &A, const PinEpisode &B) {
              if (A.DeadByteIntegral != B.DeadByteIntegral)
                return A.DeadByteIntegral > B.DeadByteIntegral;
              if (A.Band != B.Band)
                return A.Band < B.Band;
              if (A.ArenaIndex != B.ArenaIndex)
                return A.ArenaIndex < B.ArenaIndex;
              return A.Generation < B.Generation;
            });
}

void FlightRecorder::pruneEpisodes(size_t Keep) {
  if (Episodes.size() <= Keep)
    return;
  rankEpisodes(Episodes);
  DroppedEpisodes += Episodes.size() - Keep;
  Episodes.resize(Keep);
}

void FlightRecorder::maybeSample(uint64_t Id, const LiveObject &Obj) {
  // Algorithm R with the random draw replaced by a pure hash of
  // (Seed, BirthClock, Id): no call-order dependence, so the retained
  // sample is a deterministic function of the trace content alone.
  uint64_t K = ReservoirSeen++;
  uint32_t Slot = ~uint32_t(0);
  if (Reservoir.size() < Cfg.ReservoirCapacity) {
    Slot = static_cast<uint32_t>(Reservoir.size());
    Reservoir.emplace_back();
  } else if (Cfg.ReservoirCapacity > 0) {
    uint64_t State = Cfg.Seed ^ (Obj.BirthClock * 0x9e3779b97f4a7c15ULL) ^
                     (Id + 0x632be59bd9b4e019ULL);
    uint64_t Draw = splitMix64(State);
    uint64_t J = Draw % (K + 1);
    if (J < Cfg.ReservoirCapacity) {
      Slot = static_cast<uint32_t>(J);
      uint64_t EvictedId = Reservoir[Slot].Id;
      auto It = Live.find(EvictedId);
      if (It != Live.end() && It->second.ReservoirSlot == Slot)
        It->second.ReservoirSlot = ~uint32_t(0);
    }
  }
  if (Slot == ~uint32_t(0))
    return;
  ObjectRecord &R = Reservoir[Slot];
  R = ObjectRecord();
  R.Id = Id;
  R.BirthClock = Obj.BirthClock;
  R.Site = Obj.Site;
  R.Size = Obj.Size;
  R.Band = Obj.Band;
  R.ArenaIndex = Obj.ArenaIndex;
  R.Generation = Obj.Generation;
  R.PredictedShort = Obj.PredictedShort;
  Live[Id].ReservoirSlot = Slot;
}

void FlightRecorder::recordAlloc(uint64_t Id, uint64_t BirthClock,
                                 uint32_t Site, uint32_t Size,
                                 bool PredictedShort, uint64_t ClassThreshold,
                                 const AuditPlacement &Placement) {
  ++TotalObjects;
  TotalBytes += Size;

  LiveObject Obj;
  Obj.Site = Site;
  Obj.Size = Size;
  Obj.BirthClock = BirthClock;
  Obj.ClassThreshold = ClassThreshold;
  Obj.PredictedShort = PredictedShort;
  Obj.Band = Placement.Band;
  Obj.ArenaIndex = Placement.ArenaIndex;
  Obj.Generation = Placement.Generation;
  Live[Id] = Obj;
  maybeSample(Id, Obj);

  if (!Placement.inArena())
    return;
  BandTrack &Track = Bands[Placement.Band];
  ArenaState &State = arenaState(Placement.Band, Placement.ArenaIndex);
  if (State.Generation != Placement.Generation) {
    // The allocator reset without the lifecycle sink attached (or the
    // recorder joined mid-run): roll the state forward.
    if (State.Pinned)
      closeEpisode(Placement.Band, Placement.ArenaIndex, Track, State,
                   BirthClock, /*ResetObserved=*/true);
    State = ArenaState();
    State.Generation = Placement.Generation;
  }
  advanceIntegral(Track, State, BirthClock);
  if (!State.Filled) {
    State.Filled = true;
    State.FirstFillClock = BirthClock;
  }
  State.LastFillClock = BirthClock;
  ++State.ObjectCount;
  State.PlacedBytes += Size;
  State.LivePayload += Size;
  State.LiveIds.push_back(Id);
}

void FlightRecorder::classifyAtDeath(uint64_t Id, LiveObject &Obj,
                                     uint64_t Lifetime, bool Died) {
  // Alive-at-exit objects are long-lived by definition (the trace records
  // no death for them), matching the simulator's treatment of NeverFreed.
  bool ActuallyShort = Died && Lifetime <= Obj.ClassThreshold;
  SiteForensics &F = Forensics[Obj.Site];
  ++F.Objects;
  F.Bytes += Obj.Size;
  if (Obj.PredictedShort) {
    if (ActuallyShort) {
      ++F.TrueShort;
    } else {
      ++F.FalseShort;
      F.FalseShortBytes += Obj.Size;
    }
  } else {
    if (ActuallyShort) {
      ++F.MissedShort;
      F.MissedShortBytes += Obj.Size;
    } else {
      ++F.TrueLong;
    }
  }
  F.Lifetimes.record(Lifetime);
  if (Obj.ReservoirSlot != ~uint32_t(0)) {
    ObjectRecord &R = Reservoir[Obj.ReservoirSlot];
    if (R.Id == Id) {
      R.DeathClock = Died ? Obj.BirthClock + Lifetime : NoDeath;
      R.ActuallyShort = ActuallyShort;
    }
  }
}

void FlightRecorder::recordFree(uint64_t Id, uint64_t DeathClock) {
  auto It = Live.find(Id);
  if (It == Live.end())
    return;
  LiveObject &Obj = It->second;
  uint64_t Lifetime =
      DeathClock >= Obj.BirthClock ? DeathClock - Obj.BirthClock : 0;
  classifyAtDeath(Id, Obj, Lifetime, /*Died=*/true);

  if (Obj.ArenaIndex != AuditPlacement::NoArena) {
    BandTrack &Track = Bands[Obj.Band];
    ArenaState &State = arenaState(Obj.Band, Obj.ArenaIndex);
    if (State.Generation == Obj.Generation) {
      advanceIntegral(Track, State, DeathClock);
      State.LivePayload -= std::min<uint64_t>(State.LivePayload, Obj.Size);
      auto Pos = std::find(State.LiveIds.begin(), State.LiveIds.end(), Id);
      if (Pos != State.LiveIds.end()) {
        *Pos = State.LiveIds.back();
        State.LiveIds.pop_back();
      }
      if (State.Pinned)
        for (Survivor &S : State.Survivors)
          if (S.Id == Id)
            S.DeathClock = DeathClock;
    }
  }
  Live.erase(It);
}

void FlightRecorder::onArenaPinned(uint8_t Band, uint32_t ArenaIndex,
                                   uint64_t Generation, uint32_t LiveCount) {
  BandTrack &Track = Bands[Band];
  ArenaState &State = arenaState(Band, ArenaIndex);
  if (State.Generation != Generation) {
    State = ArenaState();
    State.Generation = Generation;
  }
  if (!State.Pinned) {
    State.Pinned = true;
    State.PinnedSinceClock = CurrentClock;
    State.LastIntegralClock = CurrentClock;
    State.SurvivorCount = LiveCount;
    // Snapshot the survivors that held the live counter above zero.  A
    // reset needs LiveCount == 0, so every survivor of a reset-terminated
    // episode dies while the episode is open and gets its death backfilled.
    State.Survivors.clear();
    State.Survivors.reserve(State.LiveIds.size());
    for (uint64_t Id : State.LiveIds) {
      auto It = Live.find(Id);
      if (It == Live.end())
        continue;
      Survivor S;
      S.Id = Id;
      S.Site = It->second.Site;
      S.Size = It->second.Size;
      S.BirthClock = It->second.BirthClock;
      State.Survivors.push_back(S);
    }
    std::sort(State.Survivors.begin(), State.Survivors.end(),
              [](const Survivor &A, const Survivor &B) {
                if (A.BirthClock != B.BirthClock)
                  return A.BirthClock < B.BirthClock;
                return A.Id < B.Id;
              });
    if (State.Survivors.size() > Cfg.MaxSurvivors)
      State.Survivors.resize(Cfg.MaxSurvivors);
  } else {
    advanceIntegral(Track, State, CurrentClock);
  }
  ++State.PinEvents;
}

void FlightRecorder::onArenaReset(uint8_t Band, uint32_t ArenaIndex,
                                  uint64_t NewGeneration) {
  BandTrack &Track = Bands[Band];
  ArenaState &State = arenaState(Band, ArenaIndex);
  if (State.Pinned)
    closeEpisode(Band, ArenaIndex, Track, State, CurrentClock,
                 /*ResetObserved=*/true);
  State = ArenaState();
  State.Generation = NewGeneration;
}

void FlightRecorder::finish(uint64_t FinalByteClock) {
  if (Finished)
    return;
  Finished = true;
  FinalClock = FinalByteClock;
  CurrentClock = FinalByteClock;

  for (auto &[Band, Track] : Bands)
    for (uint32_t I = 0; I < Track.Arenas.size(); ++I)
      if (Track.Arenas[I].Pinned)
        closeEpisode(Band, I, Track, Track.Arenas[I], FinalByteClock,
                     /*ResetObserved=*/false);

  // Classify survivors of the whole trace.  Forensics updates commute and
  // reservoir slots are independent, so hash-map iteration order cannot
  // affect the final state.
  for (auto &[Id, Obj] : Live) {
    uint64_t Age =
        FinalByteClock >= Obj.BirthClock ? FinalByteClock - Obj.BirthClock : 0;
    classifyAtDeath(Id, Obj, Age, /*Died=*/false);
  }
  Live.clear();

  pruneEpisodes(Cfg.MaxPinEpisodes);
  rankEpisodes(Episodes);
}

std::vector<FlightRecorder::ObjectRecord>
FlightRecorder::sampledRecords() const {
  std::vector<ObjectRecord> Out = Reservoir;
  std::sort(Out.begin(), Out.end(),
            [](const ObjectRecord &A, const ObjectRecord &B) {
              if (A.BirthClock != B.BirthClock)
                return A.BirthClock < B.BirthClock;
              return A.Id < B.Id;
            });
  return Out;
}

std::map<uint32_t, FlightRecorder::SiteForensics>
FlightRecorder::siteForensics() const {
  return {Forensics.begin(), Forensics.end()};
}

} // namespace lifepred
