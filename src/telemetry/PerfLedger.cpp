//===- telemetry/PerfLedger.cpp - Perf-trajectory ledger -------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/PerfLedger.h"

#include "support/Json.h"
#include "telemetry/ReportDiff.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

using namespace lifepred;

namespace {

std::string nowIsoUtc() {
  std::time_t Now = std::time(nullptr);
  std::tm Tm{};
#if defined(_WIN32)
  gmtime_s(&Tm, &Now);
#else
  gmtime_r(&Now, &Tm);
#endif
  char Buf[32];
  std::strftime(Buf, sizeof(Buf), "%Y-%m-%dT%H:%M:%SZ", &Tm);
  return Buf;
}

/// Throughput-like metrics regress by dropping; everything else by rising.
bool higherIsBetter(const std::string &Key) {
  return Key.find("per_sec") != std::string::npos ||
         Key.find("speedup") != std::string::npos;
}

} // namespace

bool lifepred::appendRunRecord(const std::string &ReportPath,
                               const std::string &HistoryDir,
                               std::string &Error) {
  std::ifstream In(ReportPath);
  if (!In) {
    Error = "cannot open " + ReportPath;
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::optional<JsonValue> Report = parseJson(Buffer.str());
  if (!Report || !Report->isObject()) {
    Error = ReportPath + " is not a JSON report";
    return false;
  }

  std::string Bench = "unknown";
  if (const JsonValue *Name = Report->find("bench"); Name && Name->isString())
    Bench = Name->string();

  std::string Line = "{\"bench\": \"";
  appendJsonEscaped(Line, Bench);
  Line += "\", \"time\": \"" + nowIsoUtc() + "\"";
  if (const JsonValue *Manifest = Report->find("manifest");
      Manifest && Manifest->isObject()) {
    for (const char *Key : {"git_sha", "build_type", "program"})
      if (const JsonValue *V = Manifest->find(Key); V && V->isString()) {
        Line += std::string(", \"") + Key + "\": \"";
        appendJsonEscaped(Line, V->string());
        Line += "\"";
      }
    for (const char *Key : {"jobs", "seed", "scale"})
      if (const JsonValue *V = Manifest->find(Key); V && V->isNumber()) {
        char Buf[64];
        std::snprintf(Buf, sizeof(Buf), ", \"%s\": %.6g", Key, V->number());
        Line += Buf;
      }
  }
  for (const char *Key : {"events", "wall_seconds", "events_per_sec"})
    if (const JsonValue *V = Report->find(Key); V && V->isNumber()) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), ", \"%s\": %.6g", Key, V->number());
      Line += Buf;
    }
  Line += ", \"values\": {";
  if (const JsonValue *Values = Report->find("values");
      Values && Values->isObject()) {
    bool First = true;
    for (const auto &[Name, Value] : Values->members()) {
      if (!Value.isNumber())
        continue;
      Line += First ? "" : ", ";
      First = false;
      Line += "\"";
      appendJsonEscaped(Line, Name);
      char Buf[48];
      std::snprintf(Buf, sizeof(Buf), "\": %.6g", Value.number());
      Line += Buf;
    }
  }
  Line += "}}\n";

  // An empty --history-dir means the current directory; create_directories
  // on "" would fail, and "" / "x.jsonl" silently degrades to a bare
  // relative path, so normalize before touching the filesystem.  Nested
  // not-yet-existing directories are created in full — the ledger must be
  // appendable from a fresh checkout or a clean CI workspace.
  namespace fs = std::filesystem;
  fs::path Dir = HistoryDir.empty() ? fs::path(".") : fs::path(HistoryDir);
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec) {
    Error = "cannot create " + Dir.string() + ": " + Ec.message();
    return false;
  }
  fs::path LedgerPath = Dir / (Bench + ".jsonl");
  std::ofstream Out(LedgerPath, std::ios::app);
  if (!Out) {
    Error = "cannot append to " + LedgerPath.string();
    return false;
  }
  Out << Line;
  return static_cast<bool>(Out);
}

bool lifepred::readLedger(const std::string &LedgerPath,
                          std::vector<LedgerRecord> &Records,
                          std::string &Error) {
  std::ifstream In(LedgerPath);
  if (!In) {
    Error = "cannot open " + LedgerPath;
    return false;
  }
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::optional<JsonValue> Parsed = parseJson(Line);
    if (!Parsed || !Parsed->isObject())
      continue; // Old or foreign line shapes never poison the ledger.
    LedgerRecord Record;
    if (const JsonValue *V = Parsed->find("bench"); V && V->isString())
      Record.Bench = V->string();
    if (const JsonValue *V = Parsed->find("time"); V && V->isString())
      Record.TimeIso = V->string();
    if (const JsonValue *V = Parsed->find("git_sha"); V && V->isString())
      Record.GitSha = V->string();
    if (const JsonValue *V = Parsed->find("build_type"); V && V->isString())
      Record.BuildType = V->string();
    Record.Events = static_cast<uint64_t>(Parsed->numberOr("events", 0));
    Record.WallSeconds = Parsed->numberOr("wall_seconds", 0);
    Record.EventsPerSec = Parsed->numberOr("events_per_sec", 0);
    if (const JsonValue *Values = Parsed->find("values");
        Values && Values->isObject())
      for (const auto &[Name, Value] : Values->members())
        if (Value.isNumber())
          Record.Values.emplace_back(Name, Value.number());
    Records.push_back(std::move(Record));
  }
  return true;
}

std::string lifepred::sparkline(const std::vector<double> &Series) {
  static const char *Blocks[] = {"▁", "▂", "▃", "▄",
                                 "▅", "▆", "▇", "█"};
  if (Series.empty())
    return "";
  double Min = Series[0], Max = Series[0];
  for (double V : Series) {
    Min = std::min(Min, V);
    Max = std::max(Max, V);
  }
  std::string Out;
  for (double V : Series) {
    size_t Level =
        Max == Min
            ? 0
            : static_cast<size_t>((V - Min) / (Max - Min) * 7.0 + 0.5);
    Out += Blocks[std::min<size_t>(Level, 7)];
  }
  return Out;
}

int lifepred::renderHistory(const std::string &HistoryDir,
                            const HistoryOptions &Options, std::FILE *Out) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  if (!fs::is_directory(HistoryDir, Ec) || Ec) {
    std::fprintf(Out, "no history at %s (run bench_compare "
                      "--append-history <report.json> first)\n",
                 HistoryDir.c_str());
    return -1;
  }

  std::vector<fs::path> Ledgers;
  for (const fs::directory_entry &Entry : fs::directory_iterator(HistoryDir))
    if (Entry.path().extension() == ".jsonl")
      Ledgers.push_back(Entry.path());
  std::sort(Ledgers.begin(), Ledgers.end());

  int Flagged = 0;
  for (const fs::path &Ledger : Ledgers) {
    std::vector<LedgerRecord> Records;
    std::string Error;
    if (!readLedger(Ledger.string(), Records, Error) || Records.empty())
      continue;
    size_t Total = Records.size();
    if (Options.Limit > 0 && Records.size() > Options.Limit)
      Records.erase(Records.begin(),
                    Records.end() - static_cast<ptrdiff_t>(Options.Limit));
    if (Records.size() < Total)
      std::fprintf(Out, "== %s (last %zu of %zu runs, latest %s) ==\n",
                   Ledger.stem().string().c_str(), Records.size(), Total,
                   Records.back().TimeIso.c_str());
    else
      std::fprintf(Out, "== %s (%zu runs, latest %s) ==\n",
                   Ledger.stem().string().c_str(), Records.size(),
                   Records.back().TimeIso.c_str());
    std::fprintf(Out, "   ledger: %s\n", Ledger.string().c_str());

    // Series per metric key, in ledger (append) order.  Headline metrics
    // first, then every values.* key.
    std::map<std::string, std::vector<double>> Series;
    for (const LedgerRecord &Record : Records) {
      Series["events_per_sec"].push_back(Record.EventsPerSec);
      Series["wall_seconds"].push_back(Record.WallSeconds);
      for (const auto &[Name, Value] : Record.Values)
        Series["values." + Name].push_back(Value);
    }

    for (const auto &[Key, Full] : Series) {
      if (!globMatch(Options.MetricGlob, Key))
        continue;
      size_t Count = std::min(Full.size(), Options.Window);
      std::vector<double> Tail(Full.end() - Count, Full.end());
      double Last = Tail.back();

      // Deviation of the last run vs the mean of the runs before it.
      const char *Flag = "";
      if (Tail.size() >= 3) {
        double Mean = 0.0;
        for (size_t I = 0; I + 1 < Tail.size(); ++I)
          Mean += Tail[I];
        Mean /= static_cast<double>(Tail.size() - 1);
        double Magnitude = std::max(std::fabs(Mean), std::fabs(Last));
        double Delta = Magnitude == 0.0 ? 0.0 : (Last - Mean) / Magnitude;
        bool Bad = higherIsBetter(Key) ? Delta < -Options.Tolerance
                                       : Delta > Options.Tolerance;
        bool Timing = isTimingMetric(Key);
        if (Bad) {
          Flag = Timing ? "  <- drift (timing, advisory)" : "  <- REGRESSION";
          if (!Timing)
            ++Flagged;
        }
      }
      std::fprintf(Out, "  %-40s %s  %.6g%s\n", Key.c_str(),
                   sparkline(Tail).c_str(), Last, Flag);
    }
  }
  return Flagged;
}
