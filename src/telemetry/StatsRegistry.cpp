//===- telemetry/StatsRegistry.cpp - Named metrics registry ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/StatsRegistry.h"

#include "support/Json.h"

#include <cmath>
#include <cstdio>

using namespace lifepred;

void Log2Histogram::merge(const Log2Histogram &Other) {
  for (unsigned B = 0; B < BucketCount; ++B)
    Buckets[B] += Other.Buckets[B];
  Total += Other.Total;
  Sum += Other.Sum;
  if (Other.Total != 0 && Other.MinValue < MinValue)
    MinValue = Other.MinValue;
  if (Other.MaxValue > MaxValue)
    MaxValue = Other.MaxValue;
}

uint64_t Log2Histogram::quantileLowerBound(double Phi) const {
  if (Total == 0)
    return 0;
  if (Phi > 1.0)
    Phi = 1.0;
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(Phi * static_cast<double>(Total)));
  if (Rank < 1)
    Rank = 1;
  if (Rank > Total)
    Rank = Total;
  uint64_t Cumulative = 0;
  for (unsigned B = 0; B < BucketCount; ++B) {
    Cumulative += Buckets[B];
    if (Cumulative >= Rank)
      return bucketLow(B);
  }
  return bucketLow(BucketCount - 1);
}

void StatsRegistry::merge(const StatsRegistry &Other) {
  for (const auto &[Name, Value] : Other.Counters)
    Counters[Name] += Value;
  for (const auto &[Name, Value] : Other.Gauges) {
    uint64_t &Gauge = Gauges[Name];
    if (Value > Gauge)
      Gauge = Value;
  }
  for (const auto &[Name, Histogram] : Other.Histograms)
    Histograms[Name].merge(Histogram);
}

namespace {

void appendU64(std::string &Out, uint64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(Value));
  Out += Buf;
}

void appendScalarMap(std::string &Out, const std::string &Indent,
                     const char *Section,
                     const std::map<std::string, uint64_t> &Map) {
  Out += Indent + "\"" + Section + "\": {";
  bool First = true;
  for (const auto &[Name, Value] : Map) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += Indent + "  \"";
    appendJsonEscaped(Out, Name);
    Out += "\": ";
    appendU64(Out, Value);
  }
  Out += Map.empty() ? "}" : "\n" + Indent + "}";
}

} // namespace

void StatsRegistry::writeJson(std::string &Out,
                              const std::string &Indent) const {
  Out += "{\n";
  appendScalarMap(Out, Indent + "  ", "counters", Counters);
  Out += ",\n";
  appendScalarMap(Out, Indent + "  ", "gauges", Gauges);
  Out += ",\n";
  Out += Indent + "  \"histograms\": {";
  bool First = true;
  for (const auto &[Name, Histogram] : Histograms) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += Indent + "    \"";
    appendJsonEscaped(Out, Name);
    Out += "\": {\"count\": ";
    appendU64(Out, Histogram.count());
    Out += ", \"sum\": ";
    appendU64(Out, Histogram.sum());
    Out += ", \"min\": ";
    appendU64(Out, Histogram.min());
    Out += ", \"max\": ";
    appendU64(Out, Histogram.max());
    // Derived summaries under the lower-bound convention (see
    // quantileLowerBound): exact integers, so reports can gate on them.
    Out += ", \"p50\": ";
    appendU64(Out, Histogram.quantileLowerBound(0.50));
    Out += ", \"p90\": ";
    appendU64(Out, Histogram.quantileLowerBound(0.90));
    Out += ", \"p99\": ";
    appendU64(Out, Histogram.quantileLowerBound(0.99));
    // Buckets as [low, count] pairs, empty buckets omitted: sparse but
    // self-describing.
    Out += ", \"buckets\": [";
    bool FirstBucket = true;
    for (unsigned B = 0; B < Log2Histogram::BucketCount; ++B) {
      if (Histogram.bucketCount(B) == 0)
        continue;
      if (!FirstBucket)
        Out += ", ";
      FirstBucket = false;
      Out += "[";
      appendU64(Out, Log2Histogram::bucketLow(B));
      Out += ", ";
      appendU64(Out, Histogram.bucketCount(B));
      Out += "]";
    }
    Out += "]}";
  }
  Out += Histograms.empty() ? "}" : "\n" + Indent + "  }";
  Out += "\n" + Indent + "}";
}
