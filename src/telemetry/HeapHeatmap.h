//===- telemetry/HeapHeatmap.h - Address x byte-clock occupancy -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An address-space x byte-clock occupancy matrix: rows are fixed-width
/// address windows, columns are byte-clock bins, each cell holds the live
/// bytes observed inside that window at that time.  Drivers sample at
/// stride boundaries (due(), like HeapTimeline) and feed the allocator's
/// live spans through beginColumn/addSpan/endColumn; the matrix renders as
/// ASCII shading for the terminal, JSON for tooling, and chrome://tracing
/// events via TraceEventWriter.
///
/// Rows are keyed by absolute address window, stored sparsely — the
/// simulated address space has islands (arena areas near 2^20, general
/// heaps at 2^40), and a dense matrix over that range would be absurd.
/// Cell values are order-independent sums, so scan order never changes the
/// matrix, and merge() makes shard-local heatmaps combine into the global
/// picture by cell-wise addition.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_TELEMETRY_HEAPHEATMAP_H
#define LIFEPRED_TELEMETRY_HEAPHEATMAP_H

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace lifepred {

class StatsRegistry;
class TraceEventWriter;

/// Sparse occupancy matrix over (address window, byte-clock bin).
class HeapHeatmap {
public:
  struct Config {
    /// Address bytes per row; rounded up to a power of two (minimum 64).
    uint64_t BytesPerRow = 64 * 1024;
    /// Byte clock per column (minimum 1).  Pick roughly endClock/columns.
    uint64_t ClockStride = 1 << 20;
    /// Hard cap on distinct rows; spans in further windows are dropped and
    /// accounted in clippedBytes() rather than growing without bound.
    uint64_t MaxRows = 4096;
    /// Hard cap on columns; later samples fold into the last column.
    uint64_t MaxColumns = 512;
  };

  explicit HeapHeatmap(Config C);

  const Config &config() const { return Cfg; }

  /// True when the clock has entered a column not yet sampled.
  bool due(uint64_t Clock) const { return Clock >= NextClock; }

  /// Opens the column containing \p Clock.
  void beginColumn(uint64_t Clock);

  /// Accumulates a live span into the open column, splitting it across row
  /// boundaries.
  void addSpan(uint64_t Address, uint64_t Bytes);

  /// Closes the open column and advances the stride cursor.
  void endColumn();

  /// Cell-wise addition of \p Other (same geometry required), for merging
  /// shard-local heatmaps in shard-index order.
  void merge(const HeapHeatmap &Other);

  /// Number of distinct address rows / populated columns.
  uint64_t rowCount() const { return Rows.size(); }
  uint64_t columnCount() const;
  uint64_t occupiedCells() const;
  uint64_t peakCellBytes() const;
  /// Bytes dropped by the MaxRows cap.
  uint64_t clippedBytes() const { return Clipped; }

  /// Live bytes recorded at (row window containing \p Address, column of
  /// \p Clock); 0 when absent (test support).
  uint64_t cellBytes(uint64_t Address, uint64_t Clock) const;

  /// Renders the matrix as ASCII shading (" .:-=+*#%@" by cell occupancy
  /// relative to the row width) to \p Out, one row per address window with
  /// hex labels and a gap marker between discontiguous regions.
  void printAscii(std::FILE *Out) const;

  /// Appends the matrix as a JSON object to \p Out: geometry, then sparse
  /// rows of [column, bytes] cell pairs.  \p Indent prefixes every line.
  void writeJson(std::string &Out, const std::string &Indent) const;

  /// Emits one chrome://tracing complete event per occupied cell: track =
  /// row index, timestamp/duration = the column's clock window, name = the
  /// cell's occupancy percentage.  Load the file in a trace viewer to
  /// scrub heap occupancy over byte time.
  void exportTrace(TraceEventWriter &Writer) const;

  /// Deterministic shape gauges under "<Prefix>heatmap.": rows, columns,
  /// occupied_cells, peak_cell_bytes, clipped_bytes.  All value keys — the
  /// matrix is a pure function of the trace.
  void exportTelemetry(StatsRegistry &Registry,
                       const std::string &Prefix) const;

private:
  uint64_t rowKeyFor(uint64_t Address) const { return Address >> RowShift; }

  Config Cfg;
  unsigned RowShift;
  uint64_t NextClock = 0; ///< First column triggers immediately.
  bool InColumn = false;
  uint32_t CurColumn = 0;
  uint64_t Clipped = 0;
  /// Row window -> (column -> live bytes).  std::map keeps render order
  /// address-sorted and output deterministic.
  std::map<uint64_t, std::map<uint32_t, uint64_t>> Rows;
};

} // namespace lifepred

#endif // LIFEPRED_TELEMETRY_HEAPHEATMAP_H
