//===- sim/OnlineReplay.cpp - Sharded online-routing replay ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/OnlineReplay.h"

#include "support/ThreadPool.h"
#include "telemetry/DriftObservatory.h"
#include "telemetry/StatsRegistry.h"

#include <memory>

using namespace lifepred;

namespace {

/// One shard's accumulation over the in-memory schedule.
struct MemoryShard {
  PredictionCounts Outcomes;
  uint64_t ArenaAllocs = 0;
  uint64_t ArenaBytes = 0;
  uint64_t GeneralAllocs = 0;
  uint64_t GeneralBytes = 0;
  uint64_t Events = 0;
  std::unique_ptr<DriftObservatory> Drift;
};

} // namespace

OnlineShardedResult lifepred::onlineReplaySharded(
    const CompiledTrace &Compiled, const DynamicRouteBits &Routes,
    uint64_t Threshold, ThreadPool &Pool, StatsRegistry *Registry,
    DriftObservatory *MergedDrift, size_t ShardEvents) {
  const EventSchedule &Schedule = Compiled.schedule();
  const AllocRecord *Records = Compiled.trace().records().data();
  if (ShardEvents == 0)
    ShardEvents = 1;
  const size_t ShardCount =
      Schedule.size() == 0 ? 0 : (Schedule.size() + ShardEvents - 1) / ShardEvents;

  std::vector<MemoryShard> Shards(ShardCount);
  parallelForIndex(Pool, ShardCount, [&](size_t Index) {
    MemoryShard &Shard = Shards[Index];
    if (MergedDrift)
      Shard.Drift =
          std::make_unique<DriftObservatory>(MergedDrift->config());
    const size_t First = Index * ShardEvents;
    const size_t Last = std::min(First + ShardEvents, Schedule.size());
    for (size_t Event = First; Event < Last; ++Event) {
      ++Shard.Events;
      if (Schedule.isFree(Event))
        continue;
      uint32_t Id = Schedule.objectId(Event);
      const AllocRecord &Record = Records[Id];
      bool RoutedShort = Routes.test(Id);
      bool ActuallyShort = Record.Lifetime <= Threshold;
      Shard.Outcomes.add(RoutedShort, ActuallyShort);
      if (RoutedShort) {
        ++Shard.ArenaAllocs;
        Shard.ArenaBytes += Record.Size;
      } else {
        ++Shard.GeneralAllocs;
        Shard.GeneralBytes += Record.Size;
      }
      if (Shard.Drift)
        Shard.Drift->recordAlloc(Schedule.clock(Event), Record.ChainIndex,
                                 Record.Size, RoutedShort, Record.Lifetime,
                                 ActuallyShort);
    }
  });

  OnlineShardedResult Result;
  Result.Shards = ShardCount;
  // Shard-index-order merge: deterministic by construction, and every
  // value is a commutative sum, so it equals the sequential fill.
  for (MemoryShard &Shard : Shards) {
    Result.Outcomes.TrueShort += Shard.Outcomes.TrueShort;
    Result.Outcomes.FalseShort += Shard.Outcomes.FalseShort;
    Result.Outcomes.MissedShort += Shard.Outcomes.MissedShort;
    Result.Outcomes.TrueLong += Shard.Outcomes.TrueLong;
    Result.ArenaAllocs += Shard.ArenaAllocs;
    Result.ArenaBytes += Shard.ArenaBytes;
    Result.GeneralAllocs += Shard.GeneralAllocs;
    Result.GeneralBytes += Shard.GeneralBytes;
    Result.Events += Shard.Events;
    if (MergedDrift && Shard.Drift)
      MergedDrift->merge(*Shard.Drift);
  }

  if (Registry) {
    Result.Outcomes.exportTelemetry(*Registry, "online.pred.");
    Registry->counter("online.arena_allocs") += Result.ArenaAllocs;
    Registry->counter("online.arena_bytes") += Result.ArenaBytes;
    Registry->counter("online.general_allocs") += Result.GeneralAllocs;
    Registry->counter("online.general_bytes") += Result.GeneralBytes;
    Registry->counter("online.events") += Result.Events;
    Registry->counter("online.shards") += Result.Shards;
  }
  return Result;
}

std::vector<uint64_t>
lifepred::expandRoutesToEvents(const EventSchedule &Schedule,
                               const DynamicRouteBits &Routes) {
  std::vector<uint64_t> Words((Schedule.size() + 63) / 64, 0);
  for (size_t Event = 0; Event < Schedule.size(); ++Event)
    if (!Schedule.isFree(Event) && Routes.test(Schedule.objectId(Event)))
      Words[Event >> 6] |= uint64_t(1) << (Event & 63);
  return Words;
}

namespace {

struct FileShard {
  uint64_t ArenaAllocs = 0;
  uint64_t ArenaBytes = 0;
  uint64_t GeneralAllocs = 0;
  uint64_t GeneralBytes = 0;
  uint64_t Events = 0;
};

} // namespace

StreamOnlineResult lifepred::streamReplayOnlineSharded(
    const ScheduleFile &File, ThreadPool &Pool,
    const std::vector<uint64_t> &EventRouteWords, StatsRegistry *Registry,
    uint64_t ChunksPerShard) {
  if (ChunksPerShard == 0)
    ChunksPerShard = 1;
  const uint64_t Chunks = File.chunkCount();
  const uint64_t ShardCount = (Chunks + ChunksPerShard - 1) / ChunksPerShard;

  std::vector<FileShard> Shards(ShardCount);
  parallelForIndex(Pool, ShardCount, [&](size_t Index) {
    FileShard &Shard = Shards[Index];
    const uint64_t FirstChunk = Index * ChunksPerShard;
    const uint64_t LastChunk = std::min(FirstChunk + ChunksPerShard, Chunks);
    for (uint64_t Chunk = FirstChunk; Chunk < LastChunk; ++Chunk) {
      const ScheduleChunkInfo &Info = File.chunk(Chunk);
      const ScheduleEvent *Events = File.chunkEvents(Chunk);
      for (uint64_t I = 0; I < Info.EventCount; ++I) {
        ++Shard.Events;
        const ScheduleEvent &Event = Events[I];
        if (Event.TaggedSlot & EventSchedule::FreeBit)
          continue;
        uint64_t Global = Info.FirstEvent + I;
        bool RoutedShort =
            (EventRouteWords[Global >> 6] >> (Global & 63)) & 1;
        if (RoutedShort) {
          ++Shard.ArenaAllocs;
          Shard.ArenaBytes += Event.Size;
        } else {
          ++Shard.GeneralAllocs;
          Shard.GeneralBytes += Event.Size;
        }
      }
      File.dropChunk(Chunk);
    }
  });

  StreamOnlineResult Result;
  Result.Shards = ShardCount;
  for (const FileShard &Shard : Shards) {
    Result.ArenaAllocs += Shard.ArenaAllocs;
    Result.ArenaBytes += Shard.ArenaBytes;
    Result.GeneralAllocs += Shard.GeneralAllocs;
    Result.GeneralBytes += Shard.GeneralBytes;
    Result.Events += Shard.Events;
  }

  if (Registry) {
    Registry->counter("online.stream.arena_allocs") += Result.ArenaAllocs;
    Registry->counter("online.stream.arena_bytes") += Result.ArenaBytes;
    Registry->counter("online.stream.general_allocs") += Result.GeneralAllocs;
    Registry->counter("online.stream.general_bytes") += Result.GeneralBytes;
    Registry->counter("online.stream.events") += Result.Events;
    Registry->counter("online.stream.shards") += Result.Shards;
  }
  return Result;
}
