//===- sim/TenantMux.h - Multi-tenant serving trace multiplexer -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-tenant serving engine: interleaves many synthetic "sessions" —
/// each a scaled workload-model instance with its own site universe and a
/// deterministic per-tenant RNG stream — onto N worker threads driving the
/// sharded concurrent heap layer (alloc/ShardedHeap.h).  This is the first
/// harness where the allocator families compete under contention rather
/// than in isolation: cross-shard frees, remote-free channels, CAS'd
/// bitmaps.
///
/// Scheduling model (the determinism backbone, argued in DESIGN.md §16):
///
///   * S *logical shards*, a knob independent of the worker count W.
///     Shard s is owned by worker s % W for the whole run.
///   * Replay advances in *rounds* of SliceEvents events per tenant.
///     Tenant t's home shard in round k is (t + k) % S, so tenants migrate
///     across shards round by round and an object's free routinely lands
///     on a different shard (and worker) than its alloc — the cross-thread
///     free traffic real allocators fight over.
///   * Within a round, the owner of shard s replays its tenants in
///     ascending tenant order; cross-shard frees go to the owning shard's
///     MPSC channel; after a barrier, owners drain their channels with
///     entries sorted by address (live addresses are unique, so the sorted
///     order is a pure function of the round's free set); a second barrier
///     closes the round.
///
/// Every value-class observable is therefore a pure function of
/// (tenants, shards, schedules) and byte-identical at any worker count —
/// the jobs-invariance the rest of the repo's telemetry already promises.
/// Interleaving-dependent quantities (CAS retries, drain depths) are
/// quarantined in ContentionCounters and never enter the StatsRegistry.
///
/// The CAS family additionally supports an *eager* remote-free mode —
/// frees apply immediately via fetch_or into the owning shard's atomic
/// bitmap, no channel, no drain — which is the lock-free fast path the
/// timed serving rows measure.  Placement under eager frees is
/// interleaving-dependent, so instrumented (gated) runs always use
/// channel mode.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SIM_TENANTMUX_H
#define LIFEPRED_SIM_TENANTMUX_H

#include "alloc/ShardedHeap.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lifepred {

class StatsRegistry;
class ThreadPool;
struct TenantSession;

/// Allocator family a serving run drives (one sub-heap per shard).
enum class ServeFamily {
  FirstFit, ///< FirstFitAllocator per shard.
  Bsd,      ///< BsdAllocator (LIFO lists) per shard — the serial baseline.
  Cas,      ///< CasHeapShard — the lock-free bitmap fast path.
  Arena,    ///< ArenaAllocator per shard with per-tenant trained predictors.
};

/// How cross-shard frees reach the owning shard.
enum class RemoteFreeMode {
  /// MPSC channel, drained sorted at batch boundaries.  Deterministic at
  /// any worker count; the only mode instrumented runs may use.
  Channel,
  /// Immediate fetch_or into the owning shard's atomic bitmap (CAS family
  /// only).  Lock-free and barrier-light, but placement becomes
  /// interleaving-dependent — timed rows only.
  Eager,
};

/// Shape of one serving run's tenant population.
struct ServeConfig {
  unsigned Tenants = 64;
  unsigned Workers = 4;
  /// Logical shard count (heap partitions), independent of Workers so the
  /// replayed event streams — and every value-class stat — do not change
  /// with the worker count.
  unsigned Shards = 8;
  /// Events replayed per tenant per round.
  unsigned SliceEvents = 256;
  /// Workload scale of each tenant (fraction of the model's BaseObjects).
  double TenantScale = 0.02;
  uint64_t Seed = 0x1993;
  /// Workload model for every tenant; empty = round-robin over
  /// allPrograms(), the heterogeneous serving mix.
  std::string Program;
  /// Build per-tenant train traces and site databases so the arena family
  /// can predict.  Off by default: training dominates setup cost.
  bool NeedPrediction = false;
};

/// Deterministic per-tenant serving totals, derived purely from the
/// tenant's event stream (never from heap state), hence byte-identical at
/// any worker count by construction.
struct TenantServeStats {
  uint64_t Allocs = 0;
  uint64_t Frees = 0;
  uint64_t AllocBytes = 0;
  /// Frees whose home shard at free time differed from the object's home
  /// shard at alloc time (the cross-shard traffic).
  uint64_t RemoteFrees = 0;
  uint64_t PredictedShort = 0;
  uint64_t LiveBytes = 0; ///< Running; ends at the stream's leak residue.
  uint64_t PeakLiveBytes = 0;
};

/// A built tenant population: schedules, sizes, prediction bits, replay
/// cursors.  Built once (the expensive part: workload generation and
/// optional training) and replayed many times across families and modes.
class TenantSet {
public:
  /// Generates all tenants in parallel on \p Pool.  Throws
  /// std::runtime_error for an unknown ServeConfig::Program.
  TenantSet(const ServeConfig &Cfg, ThreadPool &Pool);
  ~TenantSet();

  TenantSet(const TenantSet &) = delete;
  TenantSet &operator=(const TenantSet &) = delete;

  const ServeConfig &config() const { return Cfg; }
  unsigned tenantCount() const { return static_cast<unsigned>(Sessions.size()); }
  /// Total events across all tenants (allocs + frees).
  uint64_t totalEvents() const { return TotalEvents; }
  /// Rounds one replay takes: ceil(longest tenant schedule / SliceEvents).
  uint64_t rounds() const { return Rounds; }

  /// Rewinds every tenant's replay cursor and stats for another run.
  void resetReplayState();

  /// Stream-derived stats of tenant \p Tenant after a run.
  const TenantServeStats &tenantStats(unsigned Tenant) const;
  /// Workload model name tenant \p Tenant replays.
  const std::string &tenantProgram(unsigned Tenant) const;

  /// Engine access (sim/TenantMux.cpp).
  TenantSession &session(unsigned Tenant) { return *Sessions[Tenant]; }
  const TenantSession &session(unsigned Tenant) const {
    return *Sessions[Tenant];
  }

private:
  ServeConfig Cfg;
  std::vector<std::unique_ptr<TenantSession>> Sessions;
  uint64_t TotalEvents = 0;
  uint64_t Rounds = 0;
};

/// One heap operation as applied to a shard, in application order — the
/// conformance hook: a W=1 channel-mode CAS run logs per-shard op streams,
/// and the test replays each into a fresh bitmap-mode BsdAllocator under a
/// ShadowBsd, asserting address-for-address agreement.
struct ServeOpLogEntry {
  uint64_t Addr = 0;
  uint32_t Size = 0;
  bool IsAlloc = false;
};

/// Options for one replay of a TenantSet.
struct ServeRunOptions {
  ServeFamily Family = ServeFamily::Cas;
  RemoteFreeMode Remote = RemoteFreeMode::Channel;
  /// Worker-count override for this run; 0 = ServeConfig::Workers.  The
  /// scaling rows replay one TenantSet serially and in parallel — value-
  /// class results are identical either way, by design.
  unsigned Workers = 0;
  /// Destination for deterministic value-class telemetry; null = timed run,
  /// nothing exported.  Channel mode only (asserted): eager placement would
  /// leak interleaving into heap gauges.
  StatsRegistry *Registry = nullptr;
  /// Key prefix for exports, e.g. "serve.cas.".
  std::string Prefix;
  /// Also export per-tenant sections ("<Prefix>tenant.NNNN.*").
  bool ExportTenants = false;
  /// Attach a per-shard LatencyRecorder and export its distributions
  /// (timing-class keys, ignored by gates).
  bool CollectLatency = false;
  /// Fragmentation probe stride for the end-of-run per-shard samples.
  uint64_t ProbeStrideBytes = 64 * 1024;
  /// Per-shard op logs in application order; W=1 channel mode only
  /// (asserted) — with one worker there is exactly one application order.
  std::vector<std::vector<ServeOpLogEntry>> *OpLog = nullptr;
};

/// Aggregate outcome of one serving replay.
struct ServeResult {
  uint64_t Events = 0;
  uint64_t AllocEvents = 0;
  uint64_t FreeEvents = 0;
  uint64_t RemoteFrees = 0;
  uint64_t Rounds = 0;
  /// Events handled by the busiest / idlest shard (imbalance signal).
  uint64_t ShardEventsMax = 0;
  uint64_t ShardEventsMin = 0;
  /// Sum of per-shard heap sizes at end of run.
  uint64_t HeapBytes = 0;
  /// Backing-store reservations (CAS family; 0 for families that bump
  /// inside their own lane).
  uint64_t ReservedBytes = 0;
  /// Interleaving-dependent counters — timing-class, never gated.
  ContentionCounters Contention;
};

/// Replays \p Tenants once under \p Options, constructing the family's
/// shard set and an engine-owned worker pool of config().Workers threads.
/// Call resetReplayState() between runs of the same TenantSet.
ServeResult runServe(TenantSet &Tenants, const ServeRunOptions &Options);

} // namespace lifepred

#endif // LIFEPRED_SIM_TENANTMUX_H
