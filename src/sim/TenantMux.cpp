//===- sim/TenantMux.cpp - Multi-tenant serving trace multiplexer ----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/TenantMux.h"

#include "core/Profiler.h"
#include "core/Trainer.h"
#include "sim/CompiledPrediction.h"
#include "sim/SimTelemetry.h"
#include "support/Random.h"
#include "support/ThreadPool.h"
#include "telemetry/FragmentationProbe.h"
#include "telemetry/LatencyRecorder.h"
#include "telemetry/StatsRegistry.h"
#include "trace/CompiledTrace.h"
#include "workloads/Programs.h"
#include "workloads/WorkloadRunner.h"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <cstdio>
#include <stdexcept>

using namespace lifepred;

//===----------------------------------------------------------------------===//
// TenantSession / TenantSet
//===----------------------------------------------------------------------===//

namespace lifepred {

/// One tenant: its compiled event schedule, per-record sizes and
/// prediction bits, and the replay-mutable state (cursor, object table,
/// stream stats).  The generating traces are discarded after construction
/// — at serving scale the schedules are what must stay resident, not the
/// traces.
struct TenantSession {
  std::string Program;
  EventSchedule Schedule;
  std::vector<uint32_t> Sizes; ///< Payload size per record id.
  PredictedShortBits Predicted;
  bool HasPrediction = false;

  /// Where record id currently lives: the address the shard heap returned
  /// and the home shard at alloc time (the free needs both).
  struct ObjectSlot {
    uint64_t Addr = 0;
    uint32_t Shard = 0;
  };
  std::vector<ObjectSlot> Table;
  size_t NextEvent = 0;
  TenantServeStats Stats;
};

} // namespace lifepred

TenantSet::TenantSet(const ServeConfig &Config, ThreadPool &Pool)
    : Cfg(Config) {
  if (Cfg.Tenants < 1)
    Cfg.Tenants = 1;
  if (Cfg.Workers < 1)
    Cfg.Workers = 1;
  if (Cfg.Shards < 1)
    Cfg.Shards = 1;
  if (Cfg.SliceEvents < 1)
    Cfg.SliceEvents = 1;

  std::vector<ProgramModel> Programs = allPrograms();
  std::vector<const ProgramModel *> Pick(Cfg.Tenants);
  if (!Cfg.Program.empty()) {
    const ProgramModel *Found = nullptr;
    for (const ProgramModel &Model : Programs)
      if (Model.Name == Cfg.Program)
        Found = &Model;
    if (!Found)
      throw std::runtime_error("unknown serving program: " + Cfg.Program);
    for (unsigned Tenant = 0; Tenant < Cfg.Tenants; ++Tenant)
      Pick[Tenant] = Found;
  } else {
    for (unsigned Tenant = 0; Tenant < Cfg.Tenants; ++Tenant)
      Pick[Tenant] = &Programs[Tenant % Programs.size()];
  }

  SiteKeyPolicy KeyPolicy = SiteKeyPolicy::completeChain();
  Sessions.resize(Cfg.Tenants);
  parallelForIndex(Pool, Cfg.Tenants, [&](size_t Tenant) {
    auto Session = std::make_unique<TenantSession>();
    Session->Program = Pick[Tenant]->Name;

    // Deterministic per-tenant RNG stream: a splitmix64 step over the run
    // seed offset by the tenant index, so tenant t's traces are identical
    // across runs, worker counts, and tenant-population sizes >= t.
    uint64_t State =
        Cfg.Seed + 0x9e3779b97f4a7c15ull * (uint64_t(Tenant) + 1);
    uint64_t TenantSeed = splitMix64(State);

    FunctionRegistry Registry; ///< Per-tenant site universe.
    RunOptions Run;
    Run.Scale = Cfg.TenantScale;
    Run.Seed = TenantSeed;

    AllocationTrace Train;
    if (Cfg.NeedPrediction) {
      Run.Kind = RunKind::Train;
      Train = runWorkload(*Pick[Tenant], Run, Registry);
    }
    Run.Kind = RunKind::Test;
    AllocationTrace Test = runWorkload(*Pick[Tenant], Run, Registry);

    Session->Sizes.reserve(Test.size());
    for (const AllocRecord &Record : Test.records())
      Session->Sizes.push_back(Record.Size);
    Session->Table.resize(Test.size());

    if (Cfg.NeedPrediction) {
      Profile TrainProfile = profileTrace(Train, KeyPolicy);
      SiteDatabase Database = trainDatabase(TrainProfile, KeyPolicy);
      CompiledTrace Compiled(Test, KeyPolicy);
      Session->Predicted = PredictedShortBits(Compiled, Database);
      Session->HasPrediction = true;
      Session->Schedule = Compiled.schedule();
    } else {
      Session->Schedule = EventSchedule(Test);
    }
    Sessions[Tenant] = std::move(Session);
  });

  uint64_t MaxEvents = 0;
  for (const std::unique_ptr<TenantSession> &Session : Sessions) {
    TotalEvents += Session->Schedule.size();
    MaxEvents = std::max<uint64_t>(MaxEvents, Session->Schedule.size());
  }
  Rounds = (MaxEvents + Cfg.SliceEvents - 1) / Cfg.SliceEvents;
}

TenantSet::~TenantSet() = default;

void TenantSet::resetReplayState() {
  for (std::unique_ptr<TenantSession> &Session : Sessions) {
    Session->NextEvent = 0;
    Session->Stats = TenantServeStats();
  }
}

const TenantServeStats &TenantSet::tenantStats(unsigned Tenant) const {
  return Sessions[Tenant]->Stats;
}

const std::string &TenantSet::tenantProgram(unsigned Tenant) const {
  return Sessions[Tenant]->Program;
}

//===----------------------------------------------------------------------===//
// Serving replay core
//===----------------------------------------------------------------------===//

namespace {

std::string shardPrefix(const std::string &Prefix, unsigned Shard) {
  char Buffer[16];
  std::snprintf(Buffer, sizeof(Buffer), "shard.%02u.", Shard);
  return Prefix + Buffer;
}

std::string tenantPrefix(const std::string &Prefix, unsigned Tenant) {
  char Buffer[16];
  std::snprintf(Buffer, sizeof(Buffer), "tenant.%04u.", Tenant);
  return Prefix + Buffer;
}

/// End-of-run per-shard fragmentation sample.  The AllocatorSim-backed
/// families reuse the shared span walk (SimTelemetry); the CAS family
/// samples its bitmap populations in bulk.
template <typename SetT>
void sampleShardSpans(const SetT &Set, unsigned Shard, uint64_t Clock,
                      FragmentationProbe &Probe) {
  probeHeapSpans(Set.shardSim(Shard), Clock, &Probe, nullptr);
}

void sampleShardSpans(const CasShardSet &Set, unsigned Shard, uint64_t Clock,
                      FragmentationProbe &Probe) {
  Set.shard(Shard).sampleFragmentation(Clock, Probe);
}

/// The templated replay core: one instantiation per shard-set family, so
/// the per-event dispatch is a direct call into the family's allocate/free.
template <typename SetT>
ServeResult runServeImpl(TenantSet &TS, SetT &Set,
                         const ServeRunOptions &Opt) {
  const ServeConfig &Cfg = TS.config();
  const unsigned TenantCount = TS.tenantCount();
  const unsigned ShardCount = Cfg.Shards;
  const unsigned Workers = Opt.Workers ? Opt.Workers : Cfg.Workers;
  const unsigned Slice = Cfg.SliceEvents;
  const uint64_t Rounds = TS.rounds();
  const bool Eager = Opt.Remote == RemoteFreeMode::Eager;

  assert((!Eager || SetT::SupportsEagerRemoteFree) &&
         "eager remote frees need the CAS family");
  assert((!Opt.Registry || !Eager) &&
         "instrumented runs must use channel mode (determinism)");
  assert((!Opt.OpLog || (Workers == 1 && !Eager)) &&
         "op logs need one worker and channel mode");

  if (Opt.OpLog) {
    Opt.OpLog->clear();
    Opt.OpLog->resize(ShardCount);
  }

  // Per-shard channels; per-worker node pools and contention buffers
  // (keyed by ThreadPool::currentWorkerIndex(), so each engine worker
  // touches only its own).  Per-shard event/drain counters are written
  // only by the shard's owner — single-writer, hence race-free and, in
  // channel mode, deterministic.
  std::vector<RemoteFreeChannel> Channels(ShardCount);
  std::vector<RemoteNodePool> NodePools(Workers);
  std::vector<ContentionCounters> Contention(Workers);
  std::vector<uint64_t> ShardEvents(ShardCount, 0);
  std::vector<uint64_t> ShardDrained(ShardCount, 0);
  std::vector<uint64_t> ShardMaxDrain(ShardCount, 0);
  std::vector<std::unique_ptr<LatencyRecorder>> Latency(ShardCount);
  if (Opt.CollectLatency)
    for (unsigned Shard = 0; Shard < ShardCount; ++Shard)
      Latency[Shard] = std::make_unique<LatencyRecorder>();

  std::barrier<> RoundBarrier(Workers);

  auto WorkerBody = [&](size_t Worker) {
    const unsigned Slot = ThreadPool::currentWorkerIndex();
    RemoteNodePool &NodePool = NodePools[Slot];
    ContentionCounters &Counters = Contention[Slot];
    std::vector<RemoteFreeNode *> Scratch;

    for (uint64_t Round = 0; Round < Rounds; ++Round) {
      // Slice phase: replay this round's slice of every tenant homed on a
      // shard this worker owns, in ascending shard then tenant order.
      for (unsigned Shard = Worker; Shard < ShardCount; Shard += Workers) {
        LatencyRecorder *Lat = Latency[Shard].get();
        uint64_t &Events = ShardEvents[Shard];
        unsigned FirstTenant =
            (Shard + ShardCount - unsigned(Round % ShardCount)) % ShardCount;
        for (unsigned Tenant = FirstTenant; Tenant < TenantCount;
             Tenant += ShardCount) {
          TenantSession &Session = TS.session(Tenant);
          const uint32_t *Ids = Session.Schedule.taggedIds();
          size_t End = std::min(Session.NextEvent + Slice,
                                Session.Schedule.size());
          for (; Session.NextEvent < End; ++Session.NextEvent) {
            uint32_t Tagged = Ids[Session.NextEvent];
            uint32_t Id = Tagged & ~EventSchedule::FreeBit;
            uint32_t Size = Session.Sizes[Id];
            if (Tagged & EventSchedule::FreeBit) {
              TenantSession::ObjectSlot Object = Session.Table[Id];
              ++Session.Stats.Frees;
              Session.Stats.LiveBytes -= Size;
              if (Object.Shard == Shard) {
                timedAllocatorOp(Lat, LatencyRecorder::OpFree, [&] {
                  Set.freeLocal(Shard, Object.Addr, Size);
                });
                if (Opt.OpLog)
                  (*Opt.OpLog)[Shard].push_back({Object.Addr, Size, false});
              } else {
                ++Session.Stats.RemoteFrees;
                if constexpr (SetT::SupportsEagerRemoteFree) {
                  if (Eager) {
                    timedAllocatorOp(Lat, LatencyRecorder::OpFree, [&] {
                      Set.freeRemoteEager(Object.Shard, Object.Addr, Size);
                    });
                    ++Events;
                    continue;
                  }
                }
                RemoteFreeNode *Node = NodePool.acquire();
                Node->Addr = Object.Addr;
                Node->Size = Size;
                ++Counters.RemoteFreePushes;
                Counters.ChannelCasRetries +=
                    timedAllocatorOp(Lat, LatencyRecorder::OpFree, [&] {
                      return Channels[Object.Shard].push(Node);
                    });
              }
            } else {
              bool Predicted =
                  Session.HasPrediction && Session.Predicted.test(Id);
              Session.Stats.PredictedShort += Predicted;
              uint64_t Addr =
                  timedAllocatorOp(Lat, LatencyRecorder::OpAlloc, [&] {
                    return Set.allocate(Shard, Size, Predicted,
                                        Counters.BitmapCasRetries);
                  });
              Session.Table[Id] = {Addr, Shard};
              ++Session.Stats.Allocs;
              Session.Stats.AllocBytes += Size;
              Session.Stats.LiveBytes += Size;
              raisePeak(Session.Stats.PeakLiveBytes,
                        Session.Stats.LiveBytes);
              if (Opt.OpLog)
                (*Opt.OpLog)[Shard].push_back({Addr, Size, true});
            }
            ++Events;
          }
        }
      }

      if (Eager) {
        // No channels to drain; one barrier hands tenant state to the
        // next round's owners.
        RoundBarrier.arrive_and_wait();
        continue;
      }

      // Barrier A: every push of the round has happened.
      RoundBarrier.arrive_and_wait();

      // Drain phase: apply this round's remote frees to owned shards,
      // sorted by address.  Live addresses are unique, so the sorted
      // order — unlike the channel's arrival order — is a pure function
      // of the round's free set: deterministic at any worker count.
      for (unsigned Shard = Worker; Shard < ShardCount; Shard += Workers) {
        Scratch.clear();
        for (RemoteFreeNode *Node = Channels[Shard].drain(); Node;
             Node = Node->Next)
          Scratch.push_back(Node);
        if (Scratch.empty())
          continue;
        std::sort(Scratch.begin(), Scratch.end(),
                  [](const RemoteFreeNode *A, const RemoteFreeNode *B) {
                    return A->Addr < B->Addr;
                  });
        ShardDrained[Shard] += Scratch.size();
        raisePeak(ShardMaxDrain[Shard], Scratch.size());
        LatencyRecorder *Lat = Latency[Shard].get();
        for (RemoteFreeNode *Node : Scratch) {
          timedAllocatorOp(Lat, LatencyRecorder::OpFree, [&] {
            Set.freeLocal(Shard, Node->Addr, Node->Size);
          });
          if (Opt.OpLog)
            (*Opt.OpLog)[Shard].push_back({Node->Addr, Node->Size, false});
        }
      }

      // Barrier B: every drained list is applied; nodes can be recycled.
      RoundBarrier.arrive_and_wait();
      NodePool.reset();
    }
  };

  if (Workers <= 1) {
    WorkerBody(0);
  } else {
    // W barrier-synchronized bodies on a W-thread pool: no body can finish
    // until all are running, so each pool worker takes exactly one and
    // currentWorkerIndex() values are distinct in [0, W).
    ThreadPool EnginePool(Workers);
    parallelForIndex(EnginePool, Workers, WorkerBody);
  }

  // Aggregate.
  ServeResult Result;
  Result.Rounds = Rounds;
  for (unsigned Tenant = 0; Tenant < TenantCount; ++Tenant) {
    const TenantServeStats &Stats = TS.tenantStats(Tenant);
    Result.AllocEvents += Stats.Allocs;
    Result.FreeEvents += Stats.Frees;
    Result.RemoteFrees += Stats.RemoteFrees;
  }
  Result.Events = Result.AllocEvents + Result.FreeEvents;
  Result.ShardEventsMax = *std::max_element(ShardEvents.begin(),
                                            ShardEvents.end());
  Result.ShardEventsMin = *std::min_element(ShardEvents.begin(),
                                            ShardEvents.end());
  for (unsigned Shard = 0; Shard < ShardCount; ++Shard)
    Result.HeapBytes += Set.shardHeapBytes(Shard);
  Result.ReservedBytes = Set.backing().reservedBytes();
  for (const ContentionCounters &Counters : Contention)
    Result.Contention.merge(Counters);
  for (uint64_t Depth : ShardMaxDrain)
    raisePeak(Result.Contention.MaxDrainDepth, Depth);

  // Export (main thread, quiescent heaps, fixed ascending index order —
  // the same registry bytes at any worker count).
  if (StatsRegistry *Registry = Opt.Registry) {
    const std::string &Prefix = Opt.Prefix;
    Registry->counter(Prefix + "events") += Result.Events;
    Registry->counter(Prefix + "alloc_events") += Result.AllocEvents;
    Registry->counter(Prefix + "free_events") += Result.FreeEvents;
    Registry->counter(Prefix + "remote_frees") += Result.RemoteFrees;
    Registry->counter(Prefix + "rounds") += Rounds;
    Registry->counter(Prefix + "tenants") += TenantCount;
    Registry->counter(Prefix + "shards") += ShardCount;
    Registry->counter(Prefix + "slice_events") += Slice;
    raisePeak(Registry->gauge(Prefix + "heap_bytes"), Result.HeapBytes);
    raisePeak(Registry->gauge(Prefix + "reserved_bytes"),
              Result.ReservedBytes);
    raisePeak(Registry->gauge(Prefix + "shard_events_max"),
              Result.ShardEventsMax);
    // Relative overload of the hottest shard vs the coolest, in parts per
    // million.  Derived from single-writer per-shard event counts, so it
    // is deterministic — but it is a *scheduling* property, and ReportDiff
    // classifies "imbalance" keys as timing-class (not gated).
    uint64_t ImbalancePpm =
        Result.ShardEventsMax == 0
            ? 0
            : (Result.ShardEventsMax - Result.ShardEventsMin) * 1000000 /
                  Result.ShardEventsMax;
    raisePeak(Registry->gauge(Prefix + "shard_imbalance_ppm"), ImbalancePpm);

    uint64_t Clock = 0;
    for (unsigned Tenant = 0; Tenant < TenantCount; ++Tenant)
      Clock += TS.tenantStats(Tenant).AllocBytes;
    for (unsigned Shard = 0; Shard < ShardCount; ++Shard) {
      std::string SPrefix = shardPrefix(Prefix, Shard);
      Set.exportShard(Shard, *Registry, SPrefix);
      Registry->counter(SPrefix + "events") += ShardEvents[Shard];
      Registry->counter(SPrefix + "drained_remote_frees") +=
          ShardDrained[Shard];
      FragmentationProbe Probe(Opt.ProbeStrideBytes);
      sampleShardSpans(Set, Shard, Clock, Probe);
      Probe.exportTelemetry(*Registry, SPrefix);
      if (Latency[Shard])
        Latency[Shard]->exportTelemetry(*Registry, SPrefix);
    }
    if (Opt.ExportTenants) {
      for (unsigned Tenant = 0; Tenant < TenantCount; ++Tenant) {
        const TenantServeStats &Stats = TS.tenantStats(Tenant);
        std::string TPrefix = tenantPrefix(Prefix, Tenant);
        Registry->counter(TPrefix + "allocs") += Stats.Allocs;
        Registry->counter(TPrefix + "frees") += Stats.Frees;
        Registry->counter(TPrefix + "alloc_bytes") += Stats.AllocBytes;
        Registry->counter(TPrefix + "remote_frees") += Stats.RemoteFrees;
        Registry->counter(TPrefix + "predicted_short") +=
            Stats.PredictedShort;
        raisePeak(Registry->gauge(TPrefix + "peak_live_bytes"),
                  Stats.PeakLiveBytes);
        raisePeak(Registry->gauge(TPrefix + "live_bytes"), Stats.LiveBytes);
      }
    }
  }
  return Result;
}

} // namespace

ServeResult lifepred::runServe(TenantSet &Tenants,
                               const ServeRunOptions &Options) {
  const ServeConfig &Cfg = Tenants.config();
  SharedBackingStore::Config Backing;
  switch (Options.Family) {
  case ServeFamily::FirstFit: {
    FirstFitShardSet Set(Backing, FirstFitAllocator::Config(), Cfg.Shards);
    return runServeImpl(Tenants, Set, Options);
  }
  case ServeFamily::Bsd: {
    BsdShardSet Set(Backing, BsdAllocator::Config(), Cfg.Shards);
    return runServeImpl(Tenants, Set, Options);
  }
  case ServeFamily::Cas: {
    CasShardSet Set(Backing, CasHeapShard::Config(), Cfg.Shards);
    return runServeImpl(Tenants, Set, Options);
  }
  case ServeFamily::Arena: {
    ArenaShardSet Set(Backing, ArenaAllocator::Config(), Cfg.Shards);
    return runServeImpl(Tenants, Set, Options);
  }
  }
  assert(false && "unknown serving family");
  return ServeResult();
}
