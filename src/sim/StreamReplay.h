//===- sim/StreamReplay.h - Streamed schedule-file replay -------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays on-disk schedule files (trace/ScheduleFile.h): the billion-event
/// tier.  Three replay shapes, in increasing speed:
///
///  * **Sequential streamed** (streamSimulateFirstFit / streamSimulateBsd):
///    chunk-by-chunk replay making exactly the allocator calls the
///    in-memory simulators make, in exactly the same order, with the same
///    telemetry hooks.  Counters and the exported registry are therefore
///    byte-identical to simulateFirstFit/simulateBsd on the same trace —
///    the equivalence the schedule tests pin — while resident memory stays
///    O(chunk + live slots): each chunk's pages are dropped (madvise) once
///    replayed, and the address table is indexed by *slot*, whose count is
///    the live-object high-water mark, not the trace length.
///
///  * **Batched streamed** (streamSimulateBsdBatched): the Kingsley fast
///    path.  Events are processed in batches, stably partitioned by size
///    class (forEachEventBatched's invariance argument applies unchanged),
///    the per-class free lists are bitmaps (support/BitmapFreeList.h), and
///    the live map is a flat slot-indexed array — no hash map on the hot
///    path.  Counters and exported registry values remain bit-identical to
///    the sequential BSD replay; live-byte peaks come from the file header.
///
///  * **Sharded** (streamReplayBsdSharded): shards of a *fixed* number of
///    chunks replay independently — each worker warms a fresh allocator
///    from the chunk's live-in table, then replays its chunks — and shard
///    telemetry merges in shard index order.  The partition depends only
///    on the file and ChunksPerShard, never on the worker count, so the
///    merged output is bit-identical at any --jobs.  Shard placement is
///    *not* the sequential placement (each shard's heap starts empty);
///    what sharding answers is throughput scaling, with self-consistent
///    per-shard telemetry.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SIM_STREAMREPLAY_H
#define LIFEPRED_SIM_STREAMREPLAY_H

#include "alloc/BsdAllocator.h"
#include "alloc/CostModel.h"
#include "alloc/FirstFitAllocator.h"
#include "trace/ScheduleFile.h"

#include <cstdint>

namespace lifepred {
class HeapHeatmap;
}

namespace lifepred {

class ThreadPool;
class StatsRegistry;
struct SimTelemetry;

/// Results of one streamed baseline replay (mirrors BaselineSimResult).
struct StreamSimResult {
  uint64_t MaxHeapBytes = 0;
  uint64_t MaxLiveBytes = 0;
  uint64_t Events = 0; ///< Events replayed (the file's event count).
  FirstFitAllocator::Counters FirstFit;
  BsdAllocator::Counters Bsd;
  InstrPerOp Instr;
};

/// Streams \p File through a first-fit heap, chunk by chunk.  Telemetry
/// (registry prefix "firstfit.", timeline sampling) matches
/// simulateFirstFit byte-for-byte.
StreamSimResult streamSimulateFirstFit(
    const ScheduleFile &File, const CostModel &Costs = {},
    FirstFitAllocator::Config Config = FirstFitAllocator::Config(),
    SimTelemetry *Telemetry = nullptr);

/// Streams \p File through the BSD allocator, chunk by chunk.  Telemetry
/// (registry prefix "bsd.", timeline sampling) matches simulateBsd
/// byte-for-byte.
StreamSimResult streamSimulateBsd(
    const ScheduleFile &File, const CostModel &Costs = {},
    BsdAllocator::Config Config = BsdAllocator::Config(),
    SimTelemetry *Telemetry = nullptr);

/// The Kingsley grand-challenge fast path: batched size-class dispatch +
/// bitmap free lists + flat slot table.  Counters and the "bsd." registry
/// export are bit-identical to streamSimulateBsd/simulateBsd; MaxLiveBytes
/// is the file's precomputed peak.  \p Telemetry feeds the registry only
/// (no timeline: batching permutes clock order within a batch).
StreamSimResult streamSimulateBsdBatched(
    const ScheduleFile &File, const CostModel &Costs = {},
    BsdAllocator::Config Config = BsdAllocator::Config(),
    size_t BatchEvents = 8192, SimTelemetry *Telemetry = nullptr);

/// Results of a sharded replay.
struct ShardedBsdResult {
  BsdAllocator::Counters Totals; ///< Summed over shards (includes warm-up).
  uint64_t WarmupAllocs = 0;     ///< Live-in allocations, not trace events.
  uint64_t MaxLiveBytes = 0;     ///< The file's global live peak.
  uint64_t Events = 0;           ///< Trace events replayed (excl. warm-up).
  uint64_t Shards = 0;
};

/// Observatory configuration for the sharded replay, which runs one probe
/// set per shard (a SimTelemetry holds exactly one of each sink, so it
/// cannot express per-shard collection).  Per-shard probes export into the
/// registry under "shard." in shard index order; since the shard partition
/// is jobs-independent, so is every exported value.
struct StreamObserveConfig {
  /// Byte-clock stride of each shard's fragmentation probe.
  uint64_t FragStrideBytes = uint64_t(1) << 20;
  /// Sample period of each shard's latency recorder.
  uint32_t LatencyPeriod = 64;
  /// When non-null, each shard builds a heatmap with this sink's geometry
  /// and the results merge here cell-wise in shard index order — columns
  /// use the file's global byte clock, so shard columns align.
  HeapHeatmap *MergedHeatmap = nullptr;
};

/// Replays \p File as shards of \p ChunksPerShard consecutive chunks, fanned
/// across \p Pool.  Each shard runs the batched Kingsley core on a fresh
/// heap warmed from its first chunk's live-in table.  A non-null
/// \p Registry receives each shard's counters under "shard.", merged in
/// shard index order — the partition is a property of the file and
/// \p ChunksPerShard alone, so output is identical at any pool size.  A
/// non-null \p Observe additionally runs per-shard fragmentation probes,
/// latency recorders, and (optionally) heatmaps, exported the same way.
ShardedBsdResult streamReplayBsdSharded(
    const ScheduleFile &File, ThreadPool &Pool,
    BsdAllocator::Config Config = BsdAllocator::Config(),
    StatsRegistry *Registry = nullptr, uint64_t ChunksPerShard = 1,
    const StreamObserveConfig *Observe = nullptr);

} // namespace lifepred

#endif // LIFEPRED_SIM_STREAMREPLAY_H
