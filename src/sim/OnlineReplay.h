//===- sim/OnlineReplay.h - Sharded online-routing replay -------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Jobs-invariant fan-out shapes for online-routed replay.  The online
/// model itself is sequential (runtime/Retrainer.h compiles it into an
/// immutable per-record route plan); these shapes consume the frozen plan
/// in shards of a *fixed* event count, so the partition depends only on
/// the schedule and the shard width, never on the worker count — the same
/// discipline as sim/StreamReplay.h's sharded tier.  Shard results merge
/// in shard index order, making the exported registry byte-identical at
/// any --jobs.
///
/// Two shapes:
///  * onlineReplaySharded — over the in-memory compiled schedule, scoring
///    routed-vs-actual outcomes (the trace's lifetimes are at hand) and
///    optionally filling a DriftObservatory window-wise.
///  * streamReplayOnlineSharded — over an on-disk ScheduleFile.  Disk
///    events carry no record identity, but allocation events appear in
///    record order, so the route plan is first expanded to one bit per
///    *event* (expandRoutesToEvents) and shards index it by the global
///    event number their chunk header pins.  This is how the
///    billion-event StreamReplay tier participates in mid-run re-routing.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SIM_ONLINEREPLAY_H
#define LIFEPRED_SIM_ONLINEREPLAY_H

#include "sim/CompiledPrediction.h"
#include "sim/SimTelemetry.h"
#include "trace/CompiledTrace.h"
#include "trace/ScheduleFile.h"

#include <cstdint>
#include <vector>

namespace lifepred {

class DriftObservatory;
class StatsRegistry;
class ThreadPool;

/// Merged result of one sharded online-routed replay.
struct OnlineShardedResult {
  PredictionCounts Outcomes; ///< Routed verdict vs actual lifetime.
  uint64_t ArenaAllocs = 0;  ///< Allocations routed short.
  uint64_t ArenaBytes = 0;
  uint64_t GeneralAllocs = 0;
  uint64_t GeneralBytes = 0;
  uint64_t Events = 0; ///< Schedule events walked (allocs + frees).
  uint64_t Shards = 0;

  bool operator==(const OnlineShardedResult &Other) const = default;
};

/// Default shard width of the online shapes (events per shard); fixed so
/// the partition is a property of the schedule alone.
inline constexpr size_t OnlineShardEvents = 64 * 1024;

/// Shards \p Compiled's event schedule across \p Pool, scoring every
/// allocation's \p Routes verdict against \p Threshold.  A non-null
/// \p Registry receives the merged totals under "online." ("online.pred."
/// confusion counters, arena/general alloc+byte routing counters, shard
/// and event counts).  A non-null \p MergedDrift — its DriftConfig fixes
/// the window geometry — accumulates every outcome window-wise, merged in
/// shard index order.  Output is byte-identical at any pool size and
/// equals a sequential fill (every exported value is a commutative sum).
OnlineShardedResult onlineReplaySharded(
    const CompiledTrace &Compiled, const DynamicRouteBits &Routes,
    uint64_t Threshold, ThreadPool &Pool, StatsRegistry *Registry = nullptr,
    DriftObservatory *MergedDrift = nullptr,
    size_t ShardEvents = OnlineShardEvents);

/// Expands a per-record route plan to one bit per schedule *event*: bit
/// set at event E iff E is an allocation whose record is routed short.
/// Free events carry a zero bit.  This is the representation the on-disk
/// tier can index, because a ScheduleFile chunk knows its global first
/// event but not its records.
std::vector<uint64_t> expandRoutesToEvents(const EventSchedule &Schedule,
                                           const DynamicRouteBits &Routes);

/// Result of one on-disk online-routed replay.
struct StreamOnlineResult {
  uint64_t ArenaAllocs = 0;
  uint64_t ArenaBytes = 0;
  uint64_t GeneralAllocs = 0;
  uint64_t GeneralBytes = 0;
  uint64_t Events = 0;
  uint64_t Shards = 0;

  bool operator==(const StreamOnlineResult &Other) const = default;
};

/// Shards \p File as runs of \p ChunksPerShard consecutive chunks across
/// \p Pool, routing each allocation event by \p EventRouteWords (one bit
/// per global event, from expandRoutesToEvents).  A non-null \p Registry
/// receives merged totals under "online.stream.".  The partition depends
/// only on the file and \p ChunksPerShard, so output is identical at any
/// pool size.
StreamOnlineResult streamReplayOnlineSharded(
    const ScheduleFile &File, ThreadPool &Pool,
    const std::vector<uint64_t> &EventRouteWords,
    StatsRegistry *Registry = nullptr, uint64_t ChunksPerShard = 1);

} // namespace lifepred

#endif // LIFEPRED_SIM_ONLINEREPLAY_H
