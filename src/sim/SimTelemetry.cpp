//===- sim/SimTelemetry.cpp - Simulation observability hooks ---------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/SimTelemetry.h"

#include "alloc/AllocatorSim.h"
#include "telemetry/FragmentationProbe.h"
#include "telemetry/HeapHeatmap.h"
#include "telemetry/LatencyRecorder.h"

using namespace lifepred;

void lifepred::observeSample(SimTelemetry *Telemetry, uint64_t Clock,
                             const AllocatorSim &Allocator,
                             uint64_t ArenaBytes) {
  if (!Telemetry)
    return;
  if (Telemetry->Timeline && Telemetry->Timeline->due(Clock)) {
    HeapSample Sample;
    Sample.Clock = Clock;
    Sample.HeapBytes = Allocator.heapBytes();
    Sample.LiveBytes = Allocator.liveBytes();
    Sample.ArenaBytes = ArenaBytes;
    Sample.FreeBlocks = Allocator.freeBlockCount();
    Telemetry->Timeline->record(Sample);
  }

  FragmentationProbe *Probe =
      Telemetry->Fragmentation && Telemetry->Fragmentation->due(Clock)
          ? Telemetry->Fragmentation
          : nullptr;
  HeapHeatmap *Heatmap = Telemetry->Heatmap && Telemetry->Heatmap->due(Clock)
                             ? Telemetry->Heatmap
                             : nullptr;
  probeHeapSpans(Allocator, Clock, Probe, Heatmap);
}

void lifepred::probeHeapSpans(const AllocatorSim &Allocator, uint64_t Clock,
                              FragmentationProbe *Probe,
                              HeapHeatmap *Heatmap) {
  if (!Probe && !Heatmap)
    return;

  // One span walk feeds both sinks.
  if (Probe) {
    Probe->beginSample(Clock, Allocator.heapBytes(), Allocator.liveBytes());
    Allocator.forEachFreeSpan(
        [Probe](uint64_t, uint64_t Bytes) { Probe->addFreeSpan(Bytes); });
  }
  if (Heatmap)
    Heatmap->beginColumn(Clock);
  Allocator.forEachLiveSpan([Probe, Heatmap](uint64_t Address,
                                             uint64_t Bytes) {
    if (Probe)
      Probe->addLiveSpan(Bytes);
    if (Heatmap)
      Heatmap->addSpan(Address, Bytes);
  });
  if (Probe)
    Probe->endSample();
  if (Heatmap)
    Heatmap->endColumn();
}

void lifepred::exportObservatory(SimTelemetry *Telemetry,
                                 const std::string &Prefix) {
  if (!Telemetry || !Telemetry->Registry)
    return;
  if (Telemetry->Fragmentation)
    Telemetry->Fragmentation->exportTelemetry(*Telemetry->Registry, Prefix);
  if (Telemetry->Latency)
    Telemetry->Latency->exportTelemetry(*Telemetry->Registry, Prefix);
  if (Telemetry->Heatmap)
    Telemetry->Heatmap->exportTelemetry(*Telemetry->Registry, Prefix);
}
