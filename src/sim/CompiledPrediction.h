//===- sim/CompiledPrediction.h - Pre-resolved per-record predictions -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-(trace, database) prediction artifacts resolved once before replay,
/// so the simulation hot loops perform zero site-table probes: the
/// SiteDatabase's verdict becomes one bit per record, the ClassDatabase's a
/// band byte per record.  Both are pure functions of a CompiledTrace's
/// per-record key table and the trained database, built in one linear pass
/// and shared read-only by every replay of that pairing.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SIM_COMPILEDPREDICTION_H
#define LIFEPRED_SIM_COMPILEDPREDICTION_H

#include "core/LifetimeClassifier.h"
#include "core/SiteDatabase.h"
#include "support/Assert.h"
#include "trace/CompiledTrace.h"

#include <cstdint>
#include <vector>

namespace lifepred {

/// One bit per trace record: was the record's site predicted short-lived
/// by a SiteDatabase?  Replaces the per-event hash probe in the arena
/// replay loop with a shift-and-mask.
class PredictedShortBits {
public:
  PredictedShortBits() = default;

  PredictedShortBits(const CompiledTrace &Compiled, const SiteDatabase &DB) {
    assert(Compiled.hasKeys() && "compile the trace with a key policy");
    assert(Compiled.keyPolicy() == DB.policy() &&
           "key table and database compiled under different policies");
    const std::vector<SiteKey> &Keys = Compiled.recordKeys();
    Words.assign((Keys.size() + 63) / 64, 0);
    for (size_t Id = 0; Id < Keys.size(); ++Id)
      if (DB.contains(Keys[Id]))
        Words[Id >> 6] |= uint64_t(1) << (Id & 63);
  }

  bool test(uint64_t Id) const {
    return (Words[Id >> 6] >> (Id & 63)) & 1;
  }

private:
  std::vector<uint64_t> Words;
};

/// The dynamic-override lane: per-record routes produced by an *online*
/// pass (runtime/Retrainer.h's OnlineRoutePlan) rather than a frozen
/// database probe.  Same bit-packed shape and test() contract as
/// PredictedShortBits, so the simulators template over either; wrapping
/// the plan's words here keeps sim/ free of any runtime/ dependency.
/// Because the words are an immutable pure function of the event stream,
/// every replay shape — including the sharded and streamed ones — can
/// consume mid-run re-routes while staying byte-identical at any --jobs.
class DynamicRouteBits {
public:
  DynamicRouteBits() = default;

  /// Wraps route words (one bit per record, bit set = routed short).
  explicit DynamicRouteBits(std::vector<uint64_t> RouteWords)
      : Words(std::move(RouteWords)) {}

  bool test(uint64_t Id) const {
    return (Words[Id >> 6] >> (Id & 63)) & 1;
  }

  const std::vector<uint64_t> &words() const { return Words; }

private:
  std::vector<uint64_t> Words;
};

/// Applies dynamic routes on top of statically compiled bands (the
/// multi-arena consumer's override lane): a record re-routed *long* goes
/// to the general heap regardless of its static band; a record re-routed
/// *short* keeps its static band, or falls into \p FallbackBand (callers
/// pass the widest band) when the static classifier had left it
/// unclassified.
inline std::vector<LifetimeClass>
overrideBands(std::vector<LifetimeClass> Bands, const DynamicRouteBits &Routes,
              LifetimeClass FallbackBand) {
  for (size_t Id = 0; Id < Bands.size(); ++Id) {
    if (!Routes.test(Id))
      Bands[Id] = UnclassifiedLifetime;
    else if (Bands[Id] == UnclassifiedLifetime)
      Bands[Id] = FallbackBand;
  }
  return Bands;
}

/// One lifetime band per trace record, as classified by a ClassDatabase —
/// the multi-arena analogue of PredictedShortBits.
inline std::vector<LifetimeClass> compileBands(const CompiledTrace &Compiled,
                                               const ClassDatabase &DB) {
  assert(Compiled.hasKeys() && "compile the trace with a key policy");
  assert(Compiled.keyPolicy() == DB.policy() &&
         "key table and database compiled under different policies");
  const std::vector<SiteKey> &Keys = Compiled.recordKeys();
  std::vector<LifetimeClass> Bands;
  Bands.reserve(Keys.size());
  for (SiteKey Key : Keys)
    Bands.push_back(DB.classify(Key));
  return Bands;
}

} // namespace lifepred

#endif // LIFEPRED_SIM_COMPILEDPREDICTION_H
