//===- sim/TraceSimulator.h - Trace-driven allocator simulation -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives allocator simulators from an allocation trace, as the paper's
/// section 5.2 does: each allocation event carries its size and the site
/// identifier; the trained site database decides whether it goes to the
/// short-lived arenas; frees are replayed at the byte clock implied by
/// lifetimes.  The simulation reports heap sizes, arena fractions,
/// operation counts, and reference-locality accounting.
///
/// Every simulator has two entry points: one taking a CompiledTrace — the
/// fast path, replaying the precompiled flat schedule with no virtual
/// dispatch and (for the predictors) zero per-event site-table probes —
/// and a convenience overload taking the raw AllocationTrace that compiles
/// on the spot.  Callers replaying one trace more than once (sweeps,
/// repeats, --jobs fan-outs) should compile once and share the
/// CompiledTrace; it is immutable and safe to use from many threads.
/// Results are bit-identical between the two paths and to the replayTrace
/// oracle (asserted in tests/sim_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SIM_TRACESIMULATOR_H
#define LIFEPRED_SIM_TRACESIMULATOR_H

#include "alloc/ArenaAllocator.h"
#include "alloc/BsdAllocator.h"
#include "alloc/CostModel.h"
#include "alloc/FirstFitAllocator.h"
#include "core/SiteDatabase.h"
#include "telemetry/LifetimeAudit.h"
#include "trace/AllocationTrace.h"
#include "trace/CompiledTrace.h"

#include <cstdint>

namespace lifepred {

class DynamicRouteBits;
struct Profile;
struct SimTelemetry;

/// Results of one first-fit (or BSD) baseline simulation.
struct BaselineSimResult {
  uint64_t MaxHeapBytes = 0;
  uint64_t MaxLiveBytes = 0;
  FirstFitAllocator::Counters FirstFit;
  BsdAllocator::Counters Bsd;
  InstrPerOp Instr;
};

/// Results of one arena-allocator simulation.
struct ArenaSimResult {
  uint64_t MaxHeapBytes = 0;  ///< Includes the arena area.
  uint64_t MaxLiveBytes = 0;
  ArenaAllocator::Counters Arena;
  FirstFitAllocator::Counters General;
  InstrPerOp InstrLen4; ///< Cost with length-4 chain prediction.
  InstrPerOp InstrCce;  ///< Cost with call-chain encryption.

  double arenaAllocPercent() const {
    uint64_t Total = Arena.ArenaAllocs + Arena.GeneralAllocs;
    return Total == 0 ? 0.0
                      : 100.0 * static_cast<double>(Arena.ArenaAllocs) /
                            static_cast<double>(Total);
  }
  double arenaBytesPercent() const {
    uint64_t Total = Arena.ArenaBytes + Arena.GeneralBytes;
    return Total == 0 ? 0.0
                      : 100.0 * static_cast<double>(Arena.ArenaBytes) /
                            static_cast<double>(Total);
  }
};

/// Simulates a compiled trace over a plain first-fit heap.  A non-null
/// \p Telemetry collects metrics under "firstfit." (see SimTelemetry.h);
/// the default leaves the replay uninstrumented and branch-lean.
BaselineSimResult simulateFirstFit(
    const CompiledTrace &Compiled, const CostModel &Costs = {},
    FirstFitAllocator::Config Config = FirstFitAllocator::Config(),
    SimTelemetry *Telemetry = nullptr);

/// Convenience overload: compiles \p Trace's schedule, then simulates.
BaselineSimResult simulateFirstFit(
    const AllocationTrace &Trace, const CostModel &Costs = {},
    FirstFitAllocator::Config Config = FirstFitAllocator::Config(),
    SimTelemetry *Telemetry = nullptr);

/// Simulates a compiled trace over the BSD allocator.  A non-null
/// \p Telemetry collects metrics under "bsd.".
BaselineSimResult simulateBsd(const CompiledTrace &Compiled,
                              const CostModel &Costs = {},
                              BsdAllocator::Config Config = BsdAllocator::Config(),
                              SimTelemetry *Telemetry = nullptr);

/// Convenience overload: compiles \p Trace's schedule, then simulates.
BaselineSimResult simulateBsd(const AllocationTrace &Trace,
                              const CostModel &Costs = {},
                              BsdAllocator::Config Config = BsdAllocator::Config(),
                              SimTelemetry *Telemetry = nullptr);

/// Batch-grouped BSD replay: events are dispatched through
/// forEachEventBatched, stably partitioned by size class per batch, so the
/// allocator works one free list at a time.  Counters, heap trajectory,
/// and the exported "bsd." registry are bit-identical to simulateBsd (the
/// partition preserves per-class order and every exported value is either
/// per-class or a commutative aggregate); MaxLiveBytes is taken from the
/// schedule's precomputed peak, which equals the sequential observation.
/// Timeline sampling is not supported on this path — batching permutes
/// clock order within a batch — so \p Telemetry only feeds the registry.
BaselineSimResult simulateBsdBatched(
    const CompiledTrace &Compiled, const CostModel &Costs = {},
    BsdAllocator::Config Config = BsdAllocator::Config(),
    size_t BatchEvents = 8192, SimTelemetry *Telemetry = nullptr);

/// Simulates a compiled trace over the lifetime-predicting arena
/// allocator, with \p DB deciding which allocations are predicted
/// short-lived.  \p Compiled must carry site keys under DB's policy; the
/// database is resolved to one predicted-short bit per record before the
/// replay, so the hot loop performs no site-table probes.
/// \p CallsPerAlloc feeds the cce cost estimate.  A non-null \p Telemetry
/// collects metrics under "arena." plus prediction outcomes (an event is
/// actually short-lived when its lifetime is within DB's training
/// threshold) aggregated and per site.
ArenaSimResult simulateArena(const CompiledTrace &Compiled,
                             const SiteDatabase &DB, double CallsPerAlloc,
                             const CostModel &Costs = {},
                             ArenaAllocator::Config Config = ArenaAllocator::Config(),
                             SimTelemetry *Telemetry = nullptr);

/// Convenience overload: compiles \p Trace under DB's policy, then
/// simulates.
ArenaSimResult simulateArena(const AllocationTrace &Trace,
                             const SiteDatabase &DB, double CallsPerAlloc,
                             const CostModel &Costs = {},
                             ArenaAllocator::Config Config = ArenaAllocator::Config(),
                             SimTelemetry *Telemetry = nullptr);

/// Online-routing overload: replays with \p Routes — the dynamic-override
/// lane (sim/CompiledPrediction.h), typically wrapping an OnlineRoutePlan
/// from runtime/Retrainer.h — deciding each record's arena/general
/// placement instead of the static database probe.  \p DB still supplies
/// the classification threshold for the prediction-outcome telemetry, so
/// static and online runs score against the same ground truth.
ArenaSimResult simulateArena(const CompiledTrace &Compiled,
                             const SiteDatabase &DB,
                             const DynamicRouteBits &Routes,
                             double CallsPerAlloc,
                             const CostModel &Costs = {},
                             ArenaAllocator::Config Config = ArenaAllocator::Config(),
                             SimTelemetry *Telemetry = nullptr);

/// Maps each of \p Trace's chain indices (the flight recorder's site ids)
/// to the lifetime quantiles its site trained at in \p Trained, keyed under
/// \p Policy.  Sites carrying several sizes use the chain's first record as
/// the representative.  Sites unseen in training are absent, which the
/// audit renders as "-" drift.  Bridges the profiler's SiteKey world to the
/// telemetry layer's plain chain-index world.
TrainedQuantileMap buildTrainedQuantiles(const AllocationTrace &Trace,
                                         const Profile &Trained,
                                         const SiteKeyPolicy &Policy);

} // namespace lifepred

#endif // LIFEPRED_SIM_TRACESIMULATOR_H
