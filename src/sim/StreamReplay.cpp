//===- sim/StreamReplay.cpp - Streamed schedule-file replay ----------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/StreamReplay.h"

#include "sim/SimTelemetry.h"
#include "support/BitmapFreeList.h"
#include "support/MathExtras.h"
#include "support/ThreadPool.h"
#include "telemetry/FragmentationProbe.h"
#include "telemetry/HeapHeatmap.h"
#include "telemetry/LatencyRecorder.h"
#include "trace/CompiledTrace.h"

#include <algorithm>
#include <vector>

using namespace lifepred;

namespace {

/// Sequential chunk-by-chunk replay of \p File into \p Allocator — the same
/// allocator calls, in the same order, as the in-memory consumers, with a
/// slot-indexed address table instead of an O(trace) id-indexed one.
/// Returns the observed live-byte peak.
template <bool Instrumented, typename AllocatorT>
uint64_t replayStream(const ScheduleFile &File, AllocatorT &Allocator,
                      SimTelemetry *Telemetry) {
  std::vector<uint64_t> Slots(File.slotCount());
  uint64_t MaxLive = 0;
  LatencyRecorder *Latency =
      Instrumented && Telemetry ? Telemetry->Latency : nullptr;
  File.adviseSequential();
  for (uint64_t Chunk = 0; Chunk < File.chunkCount(); ++Chunk) {
    const ScheduleEvent *Events = File.chunkEvents(Chunk);
    const uint64_t Count = File.chunk(Chunk).EventCount;
    for (uint64_t I = 0; I < Count; ++I) {
      const ScheduleEvent &Event = Events[I];
      if (Event.TaggedSlot & EventSchedule::FreeBit) {
        timedAllocatorOp(Latency, LatencyRecorder::OpFree, [&] {
          Allocator.free(Slots[Event.TaggedSlot & ~EventSchedule::FreeBit]);
        });
        // Frees sample too, matching the in-memory consumers: the trace
        // tail is all frees and the observatory must see the heap drain.
        if (Instrumented)
          observeSample(Telemetry, Event.Clock, Allocator, /*ArenaBytes=*/0);
      } else {
        Slots[Event.TaggedSlot] =
            timedAllocatorOp(Latency, LatencyRecorder::OpAlloc,
                             [&] { return Allocator.allocate(Event.Size); });
        raisePeak(MaxLive, Allocator.liveBytes());
        if (Instrumented)
          observeSample(Telemetry, Event.Clock, Allocator, /*ArenaBytes=*/0);
      }
    }
    File.dropChunk(Chunk);
  }
  return MaxLive;
}

template <typename AllocatorT>
uint64_t replayStream(const ScheduleFile &File, AllocatorT &Allocator,
                      SimTelemetry *Telemetry) {
  if (Telemetry)
    return replayStream<true>(File, Allocator, Telemetry);
  return replayStream<false>(File, Allocator, nullptr);
}

/// The batched Kingsley replay core: BsdAllocator's exact accounting with
/// bitmap free lists and a flat slot-indexed live table — no hash map.
/// Shared by the single-heap fast path and the sharded workers.
class BatchedKingsley {
public:
  static constexpr uint32_t BucketCount = 40;

  BatchedKingsley(BsdAllocator::Config C, uint64_t SlotCount)
      : Cfg(C), HeapEnd(C.BaseAddress) {
    Buckets.resize(BucketCount);
    for (uint32_t Bucket = 0; Bucket < BucketCount; ++Bucket)
      Buckets[Bucket].configure(blockBytes(Bucket), extentBytes(Bucket) >>
                                                        Bucket);
    Slots.resize(SlotCount);
    SlotEpoch.resize(SlotCount, 0);
    SlotVreg.resize(SlotCount, 0);
  }

  uint32_t bucketFor(uint32_t Size) const {
    uint64_t Need = Size + Cfg.HeaderBytes;
    if (Need < Cfg.MinBlockBytes)
      Need = Cfg.MinBlockBytes;
    return log2Ceil(Need);
  }

  uint64_t allocCell(uint32_t Size, uint32_t Bucket) {
    ++Stats.Allocs;
    Stats.BucketBits += Bucket;
    BitmapFreeList &FreeList = Buckets[Bucket];
    if (FreeList.empty()) {
      ++Stats.PageRefills;
      FreeList.addExtent(HeapEnd);
      HeapEnd += extentBytes(Bucket);
      raisePeak(MaxHeap, heapBytes());
    }
    LiveBytes += Size;
    if (ClassBytesHist)
      ClassBytesHist->record(blockBytes(Bucket));
    return FreeList.pop();
  }

  void allocSlot(uint32_t Slot, uint32_t Size, uint32_t Bucket) {
    Slots[Slot] = allocCell(Size, Bucket);
  }

  /// Replays \p Count events in batches of \p BatchEvents, each batch
  /// stably partitioned by size class (the forEachEventBatched invariance
  /// argument: per-class order is preserved, so counters and final state
  /// match the sequential replay bit-for-bit).
  ///
  /// Slot aliasing: the writer recycles slots LIFO, so one batch routinely
  /// holds a free of object A and an alloc of object B on the *same* slot.
  /// If A and B sit in different size classes, class-order execution could
  /// run B's alloc before A's free and the slot table would hand B's block
  /// to A's free — a cross-class corruption the sequential replay can
  /// never produce.  The cure is register renaming: a pre-pass in original
  /// order gives every event a batch-local *cell* (a free whose object
  /// predates the batch snapshots the persistent table into a fresh cell
  /// before anything can overwrite it; A's own free always lands in A's
  /// class, so within-class order covers the rest), class-order execution
  /// touches only cells, and a write-back pass applies the slot table's
  /// last-alloc-wins in original order.  Renaming never changes which
  /// allocator calls run per class, or their order, so the invariance
  /// argument is untouched.
  void replayBatched(const ScheduleEvent *Events, uint64_t Count,
                     size_t BatchEvents) {
    if (BatchEvents == 0)
      BatchEvents = 1;
    RouteOf.resize(BatchEvents);
    Staged.resize(BatchEvents);
    Sorted.resize(BatchEvents);
    Vreg.resize(BatchEvents);
    Cells.resize(BatchEvents); // One cell per event, at most.
    for (uint64_t Begin = 0; Begin < Count; Begin += BatchEvents) {
      const uint64_t Batch =
          std::min<uint64_t>(BatchEvents, Count - Begin);
      ++Epoch;
      uint32_t NewCell = 0;
      uint32_t Offsets[BucketCount + 1] = {};
      // Renaming pre-pass, original order.  Each event is decoded exactly
      // once into an 8-byte record — free bit | cell | size — so the later
      // passes never touch the 16-byte ScheduleEvent again.  The free/alloc
      // split is a coin-flip branch in a hot loop, so it is compiled away:
      // the only real branch left is the carry-in snapshot, which fires once
      // per object that outlives a batch boundary.
      for (uint64_t I = 0; I < Batch; ++I) {
        const ScheduleEvent &Event = Events[Begin + I];
        const bool IsFree = Event.TaggedSlot & EventSchedule::FreeBit;
        const uint32_t Slot = Event.TaggedSlot & ~EventSchedule::FreeBit;
        const uint32_t Bucket = bucketFor(Event.Size);
        RouteOf[I] = static_cast<uint8_t>(Bucket);
        ++Offsets[Bucket + 1];
        if (IsFree && SlotEpoch[Slot] != Epoch) {
          // Object allocated before this batch: snapshot its address into a
          // fresh cell before any in-batch alloc can overwrite the slot.
          SlotVreg[Slot] = NewCell;
          Cells[NewCell++] = Slots[Slot];
        }
        const uint32_t Cell = IsFree ? SlotVreg[Slot] : NewCell;
        SlotEpoch[Slot] = Epoch;   // Idempotent for non-carry-in frees.
        SlotVreg[Slot] = Cell;     // Ditto.
        Vreg[I] = Cell;            // Write-back reads it for allocs only.
        NewCell += !IsFree;
        Staged[I] = (uint64_t(IsFree) << 63) | (uint64_t(Cell) << 32) |
                    Event.Size;
      }
      for (uint32_t Bucket = 0; Bucket < BucketCount; ++Bucket)
        Offsets[Bucket + 1] += Offsets[Bucket];
      for (uint64_t I = 0; I < Batch; ++I)
        Sorted[Offsets[RouteOf[I]]++] = Staged[I];
      // Class-order execution against the renamed cells, one size-class
      // segment at a time: the free list, stats, and block size are loop
      // invariants of a segment, so the inner loop is just the bitmap op.
      uint64_t SegStart = 0;
      for (uint32_t Bucket = 0; Bucket < BucketCount; ++Bucket) {
        const uint64_t SegEnd = Offsets[Bucket]; // Post-scatter: segment end.
        if (SegEnd == SegStart)
          continue;
        BitmapFreeList &FreeList = Buckets[Bucket];
        uint64_t SegAllocs = 0;
        int64_t SegBytes = 0;
        for (uint64_t J = SegStart; J < SegEnd; ++J) {
          const uint64_t Record = Sorted[J];
          const uint32_t Cell = uint32_t(Record >> 32) & CellMask;
          if (Record & FreeRecordBit) {
            SegBytes -= uint32_t(Record);
            timedAllocatorOp(Latency, LatencyRecorder::OpFree,
                             [&] { FreeList.push(Cells[Cell]); });
          } else {
            SegBytes += uint32_t(Record);
            Cells[Cell] =
                timedAllocatorOp(Latency, LatencyRecorder::OpAlloc, [&] {
                  if (FreeList.empty()) {
                    ++Stats.PageRefills;
                    FreeList.addExtent(HeapEnd);
                    HeapEnd += extentBytes(Bucket);
                    raisePeak(MaxHeap, heapBytes());
                  }
                  return FreeList.pop();
                });
            ++SegAllocs;
          }
        }
        const uint64_t SegFrees = (SegEnd - SegStart) - SegAllocs;
        Stats.Allocs += SegAllocs;
        Stats.Frees += SegFrees;
        Stats.BucketBits += SegAllocs * Bucket;
        LiveBytes += SegBytes;
        if (ClassBytesHist) // A histogram is order-blind, so bulk-record.
          for (uint64_t K = 0; K < SegAllocs; ++K)
            ClassBytesHist->record(blockBytes(Bucket));
        SegStart = SegEnd;
      }
      // Write-back, original order: the slot table's last alloc wins.  The
      // store is unconditional — frees are steered to a scratch word — so
      // this pass, too, carries no data-dependent branch.
      for (uint64_t I = 0; I < Batch; ++I) {
        const ScheduleEvent &Event = Events[Begin + I];
        uint64_t *Dest = (Event.TaggedSlot & EventSchedule::FreeBit)
                             ? &ScratchSlot
                             : &Slots[Event.TaggedSlot];
        *Dest = Cells[Vreg[I]];
      }
    }
  }

  void attachTelemetry(StatsRegistry &Registry, const std::string &Prefix) {
    ClassBytesHist = &Registry.histogram(Prefix + "class_bytes");
  }

  /// Attaches a latency recorder; null detaches (one predictable branch per
  /// replayed record when detached).
  void attachObservatory(LatencyRecorder *Recorder) { Latency = Recorder; }

  /// Feeds one stride-gated fragmentation sample at \p Clock.  A size-class
  /// heap has no span coalescing, so the per-class free/live block counts
  /// *are* the span population: O(BucketCount), no bitmap walk.
  void sampleFragmentation(FragmentationProbe &Probe, uint64_t Clock) const {
    if (!Probe.due(Clock))
      return;
    Probe.beginSample(Clock, heapBytes(), LiveBytes);
    for (uint32_t Bucket = 0; Bucket < BucketCount; ++Bucket) {
      const BitmapFreeList &FreeList = Buckets[Bucket];
      Probe.addFreeSpans(blockBytes(Bucket), FreeList.freeCount());
      Probe.addLiveSpans(blockBytes(Bucket),
                         FreeList.blockCount() - FreeList.freeCount());
    }
    Probe.endSample();
  }

  /// Feeds one stride-gated heatmap column at \p Clock by walking every
  /// class's allocated-block bitmap.  O(blocks) — chunk-boundary callers
  /// only, never the per-event path.
  void sampleHeatmap(HeapHeatmap &Map, uint64_t Clock) const {
    if (!Map.due(Clock))
      return;
    Map.beginColumn(Clock);
    for (uint32_t Bucket = 0; Bucket < BucketCount; ++Bucket) {
      const uint64_t Bytes = blockBytes(Bucket);
      Buckets[Bucket].forEachLive(
          [&Map, Bytes](uint64_t Address) { Map.addSpan(Address, Bytes); });
    }
    Map.endColumn();
  }

  /// Same keys and values as BsdAllocator::exportTelemetry.
  void exportTelemetry(StatsRegistry &Registry,
                       const std::string &Prefix) const {
    Registry.counter(Prefix + "allocs") += Stats.Allocs;
    Registry.counter(Prefix + "frees") += Stats.Frees;
    Registry.counter(Prefix + "page_refills") += Stats.PageRefills;
    Registry.counter(Prefix + "bucket_bits") += Stats.BucketBits;
    raisePeak(Registry.gauge(Prefix + "heap_bytes"), heapBytes());
    raisePeak(Registry.gauge(Prefix + "max_heap_bytes"), MaxHeap);
    raisePeak(Registry.gauge(Prefix + "live_bytes"), LiveBytes);
    raisePeak(Registry.gauge(Prefix + "free_blocks"), freeBlockCount());
  }

  uint64_t heapBytes() const { return HeapEnd - Cfg.BaseAddress; }
  uint64_t maxHeapBytes() const { return MaxHeap; }
  uint64_t liveBytes() const { return LiveBytes; }
  uint64_t freeBlockCount() const {
    uint64_t Count = 0;
    for (const BitmapFreeList &FreeList : Buckets)
      Count += FreeList.freeCount();
    return Count;
  }
  const BsdAllocator::Counters &counters() const { return Stats; }

private:
  uint64_t blockBytes(uint32_t Bucket) const { return uint64_t(1) << Bucket; }
  uint64_t extentBytes(uint32_t Bucket) const {
    uint64_t Block = blockBytes(Bucket);
    return Block >= Cfg.PageBytes ? Block : Cfg.PageBytes;
  }

  BsdAllocator::Config Cfg;
  BsdAllocator::Counters Stats;
  Log2Histogram *ClassBytesHist = nullptr;
  LatencyRecorder *Latency = nullptr;
  std::vector<BitmapFreeList> Buckets;
  /// Packed batch record: bit 63 = free, bits 32..62 = cell, low 32 = size.
  static constexpr uint64_t FreeRecordBit = uint64_t(1) << 63;
  static constexpr uint32_t CellMask = 0x7fffffff;

  std::vector<uint64_t> Slots;  ///< Address by slot (the live table).
  std::vector<uint8_t> RouteOf; ///< Event -> size class, for the scatter.
  std::vector<uint64_t> Staged; ///< Records in original order.
  std::vector<uint64_t> Sorted; ///< Records grouped by size class.
  std::vector<uint32_t> Vreg;   ///< Alloc event -> cell, for write-back.
  std::vector<uint64_t> Cells;     ///< Renamed addresses, one batch's worth.
  std::vector<uint64_t> SlotEpoch; ///< Batch stamp of SlotVreg's validity.
  std::vector<uint32_t> SlotVreg;  ///< Slot -> its current cell this batch.
  uint64_t ScratchSlot = 0;        ///< Write-back target for free events.
  uint64_t Epoch = 0;
  uint64_t HeapEnd;
  uint64_t MaxHeap = 0;
  uint64_t LiveBytes = 0;
};

} // namespace

StreamSimResult lifepred::streamSimulateFirstFit(
    const ScheduleFile &File, const CostModel &Costs,
    FirstFitAllocator::Config Config, SimTelemetry *Telemetry) {
  FirstFitAllocator Allocator(Config);
  if (Telemetry && Telemetry->Registry)
    Allocator.attachTelemetry(*Telemetry->Registry, "firstfit.");
  uint64_t MaxLive = replayStream(File, Allocator, Telemetry);
  if (Telemetry && Telemetry->Registry) {
    Allocator.exportTelemetry(*Telemetry->Registry, "firstfit.");
    exportObservatory(Telemetry, "firstfit.");
  }

  StreamSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = MaxLive;
  Result.Events = File.eventCount();
  Result.FirstFit = Allocator.counters();
  Result.Instr = Costs.firstFit(Allocator.counters());
  return Result;
}

StreamSimResult lifepred::streamSimulateBsd(const ScheduleFile &File,
                                            const CostModel &Costs,
                                            BsdAllocator::Config Config,
                                            SimTelemetry *Telemetry) {
  BsdAllocator Allocator(Config);
  if (Telemetry && Telemetry->Registry)
    Allocator.attachTelemetry(*Telemetry->Registry, "bsd.");
  uint64_t MaxLive = replayStream(File, Allocator, Telemetry);
  if (Telemetry && Telemetry->Registry) {
    Allocator.exportTelemetry(*Telemetry->Registry, "bsd.");
    exportObservatory(Telemetry, "bsd.");
  }

  StreamSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = MaxLive;
  Result.Events = File.eventCount();
  Result.Bsd = Allocator.counters();
  Result.Instr = Costs.bsd(Allocator.counters());
  return Result;
}

StreamSimResult lifepred::streamSimulateBsdBatched(
    const ScheduleFile &File, const CostModel &Costs,
    BsdAllocator::Config Config, size_t BatchEvents,
    SimTelemetry *Telemetry) {
  BatchedKingsley Core(Config, File.slotCount());
  if (Telemetry && Telemetry->Registry)
    Core.attachTelemetry(*Telemetry->Registry, "bsd.");
  if (Telemetry)
    Core.attachObservatory(Telemetry->Latency);
  File.adviseSequential();
  for (uint64_t Chunk = 0; Chunk < File.chunkCount(); ++Chunk) {
    const uint64_t Count = File.chunk(Chunk).EventCount;
    Core.replayBatched(File.chunkEvents(Chunk), Count, BatchEvents);
    // Observatory samples land on chunk boundaries (the clock of the
    // chunk's last event): batching permutes order *within* a batch, but a
    // chunk boundary is a batch boundary, where heap state is placement-
    // consistent with the sequential replay's size-class view.
    if (Telemetry && Count != 0) {
      const uint64_t Clock = File.chunkEvents(Chunk)[Count - 1].Clock;
      if (Telemetry->Fragmentation)
        Core.sampleFragmentation(*Telemetry->Fragmentation, Clock);
      if (Telemetry->Heatmap)
        Core.sampleHeatmap(*Telemetry->Heatmap, Clock);
    }
    File.dropChunk(Chunk);
  }
  if (Telemetry && Telemetry->Registry) {
    Core.exportTelemetry(*Telemetry->Registry, "bsd.");
    exportObservatory(Telemetry, "bsd.");
  }

  StreamSimResult Result;
  Result.MaxHeapBytes = Core.maxHeapBytes();
  Result.MaxLiveBytes = File.maxLiveBytes();
  Result.Events = File.eventCount();
  Result.Bsd = Core.counters();
  Result.Instr = Costs.bsd(Core.counters());
  return Result;
}

ShardedBsdResult lifepred::streamReplayBsdSharded(
    const ScheduleFile &File, ThreadPool &Pool, BsdAllocator::Config Config,
    StatsRegistry *Registry, uint64_t ChunksPerShard,
    const StreamObserveConfig *Observe) {
  if (ChunksPerShard == 0)
    ChunksPerShard = 1;
  const uint64_t ChunkCount = File.chunkCount();
  const uint64_t ShardCount =
      (ChunkCount + ChunksPerShard - 1) / ChunksPerShard;

  struct ShardOut {
    BsdAllocator::Counters Counters;
    uint64_t MaxHeap = 0;
    uint64_t LiveBytes = 0;
    uint64_t FreeBlocks = 0;
    uint64_t HeapBytes = 0;
    uint64_t Warmup = 0;
    uint64_t Events = 0;
  };
  std::vector<ShardOut> Outs(ShardCount);

  // Per-shard observatory sinks, constructed up front and merged with the
  // rest of the shard telemetry in shard index order.
  std::vector<FragmentationProbe> Probes;
  std::vector<LatencyRecorder> Latencies;
  std::vector<HeapHeatmap> Heatmaps;
  if (Observe) {
    Probes.reserve(ShardCount);
    Latencies.reserve(ShardCount);
    if (Observe->MergedHeatmap)
      Heatmaps.reserve(ShardCount);
    for (uint64_t Shard = 0; Shard < ShardCount; ++Shard) {
      Probes.emplace_back(Observe->FragStrideBytes);
      Latencies.emplace_back(Observe->LatencyPeriod);
      if (Observe->MergedHeatmap)
        Heatmaps.emplace_back(Observe->MergedHeatmap->config());
    }
  }

  parallelForIndex(Pool, ShardCount, [&](size_t Shard) {
    const uint64_t First = Shard * ChunksPerShard;
    const uint64_t Last = std::min(First + ChunksPerShard, ChunkCount);
    BatchedKingsley Core(Config, File.slotCount());
    if (Observe)
      Core.attachObservatory(&Latencies[Shard]);
    // Warm-up: re-create the live set at the shard's entry so the frees it
    // will replay have blocks to release.  These allocations are heap
    // machinery, not trace events; they are counted separately.
    const ScheduleChunkInfo &Entry = File.chunk(First);
    const ScheduleLiveIn *LiveIn = File.chunkLiveIn(First);
    for (uint64_t I = 0; I < Entry.LiveInCount; ++I)
      Core.allocSlot(LiveIn[I].Slot, LiveIn[I].Size,
                     Core.bucketFor(LiveIn[I].Size));
    ShardOut &Out = Outs[Shard];
    Out.Warmup = Entry.LiveInCount;
    for (uint64_t Chunk = First; Chunk < Last; ++Chunk) {
      const uint64_t Count = File.chunk(Chunk).EventCount;
      Core.replayBatched(File.chunkEvents(Chunk), Count,
                         /*BatchEvents=*/8192);
      if (Observe && Count != 0) {
        // Chunk boundaries use the file's global byte clock, so shard
        // samples land on a common grid and shard heatmap columns align.
        const uint64_t Clock = File.chunkEvents(Chunk)[Count - 1].Clock;
        Core.sampleFragmentation(Probes[Shard], Clock);
        if (!Heatmaps.empty())
          Core.sampleHeatmap(Heatmaps[Shard], Clock);
      }
      Out.Events += Count;
      File.dropChunk(Chunk);
    }
    Out.Counters = Core.counters();
    Out.MaxHeap = Core.maxHeapBytes();
    Out.LiveBytes = Core.liveBytes();
    Out.FreeBlocks = Core.freeBlockCount();
    Out.HeapBytes = Core.heapBytes();
  });

  // Merge in shard index order: the partition (and hence this loop's
  // sequence of registry operations) depends only on the file and
  // ChunksPerShard, never on the pool size.
  ShardedBsdResult Result;
  Result.Shards = ShardCount;
  Result.MaxLiveBytes = File.maxLiveBytes();
  for (const ShardOut &Out : Outs) {
    Result.Totals.Allocs += Out.Counters.Allocs;
    Result.Totals.Frees += Out.Counters.Frees;
    Result.Totals.PageRefills += Out.Counters.PageRefills;
    Result.Totals.BucketBits += Out.Counters.BucketBits;
    Result.WarmupAllocs += Out.Warmup;
    Result.Events += Out.Events;
    if (Registry) {
      Registry->counter("shard.allocs") += Out.Counters.Allocs;
      Registry->counter("shard.frees") += Out.Counters.Frees;
      Registry->counter("shard.page_refills") += Out.Counters.PageRefills;
      Registry->counter("shard.bucket_bits") += Out.Counters.BucketBits;
      Registry->counter("shard.warmup_allocs") += Out.Warmup;
      raisePeak(Registry->gauge("shard.heap_bytes"), Out.HeapBytes);
      raisePeak(Registry->gauge("shard.max_heap_bytes"), Out.MaxHeap);
      raisePeak(Registry->gauge("shard.live_bytes"), Out.LiveBytes);
      raisePeak(Registry->gauge("shard.free_blocks"), Out.FreeBlocks);
      if (Observe) {
        const size_t Shard = &Out - Outs.data();
        Probes[Shard].exportTelemetry(*Registry, "shard.");
        Latencies[Shard].exportTelemetry(*Registry, "shard.");
      }
    }
  }
  if (Observe && Observe->MergedHeatmap) {
    for (const HeapHeatmap &Map : Heatmaps)
      Observe->MergedHeatmap->merge(Map);
    if (Registry)
      Observe->MergedHeatmap->exportTelemetry(*Registry, "shard.");
  }
  if (Registry)
    raisePeak(Registry->gauge("shard.count"), ShardCount);
  return Result;
}
