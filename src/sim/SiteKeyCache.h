//===- sim/SiteKeyCache.h - Per-trace site-key memoization ------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoizes the *full* SiteKey of every trace record ahead of replay.  The
/// chain-dependent key part is hoisted per distinct chain (as before), and
/// on top of that the finished key is memoized per (ChainIndex, rounded
/// size) — the pair that uniquely determines it for the chain-based
/// policies — so the simulation hot loop performs exactly one site-table
/// probe per allocation and re-derives nothing.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SIM_SITEKEYCACHE_H
#define LIFEPRED_SIM_SITEKEYCACHE_H

#include "core/SiteKey.h"
#include "trace/AllocationTrace.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace lifepred {

/// Precomputed SiteKey per trace record.
class SiteKeyCache {
public:
  SiteKeyCache(const SiteKeyPolicy &Policy, const AllocationTrace &Trace) {
    RecordKeys.reserve(Trace.size());
    if (Policy.usesType()) {
      // Type-based keys ignore the chain; derive directly (cheap).
      for (const AllocRecord &Record : Trace.records())
        RecordKeys.push_back(siteKeyForRecord(Policy, 0, Record));
      return;
    }
    // Hoist the chain hashing per distinct chain.
    std::vector<uint64_t> ChainParts(Trace.chainCount());
    for (uint32_t I = 0; I < Trace.chainCount(); ++I)
      ChainParts[I] = chainKeyPart(Policy, Trace.chain(I));
    // Memoize the finished key per (ChainIndex, rounded size).  A chain
    // allocates very few distinct sizes, so a short per-chain list beats
    // any hash map.
    std::vector<std::vector<std::pair<uint32_t, SiteKey>>> PerChain(
        Trace.chainCount());
    for (const AllocRecord &Record : Trace.records()) {
      uint32_t Rounded = roundSize(Policy, Record.Size);
      auto &Memo = PerChain[Record.ChainIndex];
      SiteKey Key = 0;
      bool Found = false;
      for (const auto &[Size, Cached] : Memo) {
        if (Size == Rounded) {
          Key = Cached;
          Found = true;
          break;
        }
      }
      if (!Found) {
        Key = hashCombine(ChainParts[Record.ChainIndex], Rounded);
        Memo.emplace_back(Rounded, Key);
      }
      RecordKeys.push_back(Key);
    }
  }

  /// The key of record \p Id (its trace index).
  SiteKey keyFor(uint64_t Id) const { return RecordKeys[Id]; }

private:
  std::vector<SiteKey> RecordKeys;
};

} // namespace lifepred

#endif // LIFEPRED_SIM_SITEKEYCACHE_H
