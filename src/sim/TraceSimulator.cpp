//===- sim/TraceSimulator.cpp - Trace-driven allocator simulation ----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/TraceSimulator.h"

#include "sim/SiteKeyCache.h"
#include "trace/TraceReplayer.h"

#include <vector>

using namespace lifepred;

namespace {

/// Replays a trace into any AllocatorSim, tracking peaks.
class BaselineConsumer : public TraceConsumer {
public:
  BaselineConsumer(AllocatorSim &Allocator, size_t ObjectCount)
      : Allocator(Allocator) {
    Addresses.resize(ObjectCount);
  }

  void onAlloc(uint64_t Id, const AllocRecord &Record, uint64_t) override {
    Addresses[Id] = Allocator.allocate(Record.Size);
    raisePeak(MaxLive, Allocator.liveBytes());
  }

  void onFree(uint64_t Id, const AllocRecord &, uint64_t) override {
    Allocator.free(Addresses[Id]);
  }

  uint64_t maxLiveBytes() const { return MaxLive; }

private:
  AllocatorSim &Allocator;
  std::vector<uint64_t> Addresses;
  uint64_t MaxLive = 0;
};

/// Replays a trace into the arena allocator with per-alloc prediction.
class ArenaConsumer : public TraceConsumer {
public:
  ArenaConsumer(ArenaAllocator &Allocator, const AllocationTrace &Trace,
                const SiteDatabase &DB)
      : Allocator(Allocator), DB(DB), Keys(DB.policy(), Trace) {
    Addresses.resize(Trace.size());
  }

  void onAlloc(uint64_t Id, const AllocRecord &Record, uint64_t) override {
    // The full key is memoized per (chain, rounded size) in Keys; the only
    // per-event table work left is the database probe itself.
    bool Predicted = DB.contains(Keys.keyFor(Id));
    Addresses[Id] = Allocator.allocate(Record.Size, Predicted);
    raisePeak(MaxLive, Allocator.liveBytes());
  }

  void onFree(uint64_t Id, const AllocRecord &, uint64_t) override {
    Allocator.free(Addresses[Id]);
  }

  uint64_t maxLiveBytes() const { return MaxLive; }

private:
  ArenaAllocator &Allocator;
  const SiteDatabase &DB;
  SiteKeyCache Keys;
  std::vector<uint64_t> Addresses;
  uint64_t MaxLive = 0;
};

} // namespace

BaselineSimResult
lifepred::simulateFirstFit(const AllocationTrace &Trace,
                           const CostModel &Costs,
                           FirstFitAllocator::Config Config) {
  FirstFitAllocator Allocator(Config);
  BaselineConsumer Consumer(Allocator, Trace.size());
  replayTrace(Trace, Consumer);

  BaselineSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = Consumer.maxLiveBytes();
  Result.FirstFit = Allocator.counters();
  Result.Instr = Costs.firstFit(Allocator.counters());
  return Result;
}

BaselineSimResult lifepred::simulateBsd(const AllocationTrace &Trace,
                                        const CostModel &Costs,
                                        BsdAllocator::Config Config) {
  BsdAllocator Allocator(Config);
  BaselineConsumer Consumer(Allocator, Trace.size());
  replayTrace(Trace, Consumer);

  BaselineSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = Consumer.maxLiveBytes();
  Result.Bsd = Allocator.counters();
  Result.Instr = Costs.bsd(Allocator.counters());
  return Result;
}

ArenaSimResult lifepred::simulateArena(const AllocationTrace &Trace,
                                       const SiteDatabase &DB,
                                       double CallsPerAlloc,
                                       const CostModel &Costs,
                                       ArenaAllocator::Config Config) {
  ArenaAllocator Allocator(Config);
  ArenaConsumer Consumer(Allocator, Trace, DB);
  replayTrace(Trace, Consumer);

  ArenaSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = Consumer.maxLiveBytes();
  Result.Arena = Allocator.counters();
  Result.General = Allocator.general().counters();
  Result.InstrLen4 = Costs.arena(Result.Arena, Result.General,
                                 /*UseCce=*/false, CallsPerAlloc);
  Result.InstrCce = Costs.arena(Result.Arena, Result.General,
                                /*UseCce=*/true, CallsPerAlloc);
  return Result;
}
