//===- sim/TraceSimulator.cpp - Trace-driven allocator simulation ----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Replays run over the compiled flat schedule (trace/CompiledTrace.h) with
// concrete consumer types, so the per-event path has no virtual dispatch.
// Each simulator has a plain consumer — the branch-lean hot path used when
// no SimTelemetry is attached — and an instrumented consumer carrying the
// telemetry, timeline, and flight-recorder hooks.  The two make identical
// allocator calls in identical order, so Counters agree bit-for-bit; only
// the observation differs.
//
//===----------------------------------------------------------------------===//

#include "sim/TraceSimulator.h"

#include "core/Profiler.h"
#include "sim/CompiledPrediction.h"
#include "sim/SimTelemetry.h"
#include "telemetry/DriftObservatory.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/LatencyRecorder.h"

#include <unordered_set>
#include <vector>

using namespace lifepred;

namespace {

/// Uninstrumented replay into any concrete allocator: the hot path.
template <typename AllocatorT>
class PlainBaselineConsumer
    : public ScheduleConsumer<PlainBaselineConsumer<AllocatorT>> {
public:
  PlainBaselineConsumer(AllocatorT &Allocator, const AllocationTrace &Trace)
      : Allocator(Allocator), Records(Trace.records().data()) {
    Addresses.resize(Trace.size());
  }

  void onAlloc(uint32_t Id, uint64_t) {
    Addresses[Id] = Allocator.allocate(Records[Id].Size);
    raisePeak(MaxLive, Allocator.liveBytes());
  }

  void onFree(uint32_t Id, uint64_t) { Allocator.free(Addresses[Id]); }

  uint64_t maxLiveBytes() const { return MaxLive; }

private:
  AllocatorT &Allocator;
  const AllocRecord *Records;
  std::vector<uint64_t> Addresses;
  uint64_t MaxLive = 0;
};

/// Instrumented replay: identical allocator calls plus timeline sampling.
template <typename AllocatorT>
class InstrumentedBaselineConsumer
    : public ScheduleConsumer<InstrumentedBaselineConsumer<AllocatorT>> {
public:
  InstrumentedBaselineConsumer(AllocatorT &Allocator,
                               const AllocationTrace &Trace,
                               SimTelemetry *Telemetry)
      : Allocator(Allocator), Records(Trace.records().data()),
        Telemetry(Telemetry),
        Latency(Telemetry ? Telemetry->Latency : nullptr) {
    Addresses.resize(Trace.size());
  }

  void onAlloc(uint32_t Id, uint64_t Clock) {
    Addresses[Id] = timedAllocatorOp(Latency, LatencyRecorder::OpAlloc, [&] {
      return Allocator.allocate(Records[Id].Size);
    });
    raisePeak(MaxLive, Allocator.liveBytes());
    observeSample(Telemetry, Clock, Allocator, /*ArenaBytes=*/0);
  }

  void onFree(uint32_t Id, uint64_t Clock) {
    timedAllocatorOp(Latency, LatencyRecorder::OpFree,
                     [&] { Allocator.free(Addresses[Id]); });
    // Frees shatter and coalesce spans, so the observatory samples on
    // both event kinds — the trace tail is all frees, and alloc-only
    // sampling would never see the heap drain.
    observeSample(Telemetry, Clock, Allocator, /*ArenaBytes=*/0);
  }

  uint64_t maxLiveBytes() const { return MaxLive; }

private:
  AllocatorT &Allocator;
  const AllocRecord *Records;
  SimTelemetry *Telemetry;
  LatencyRecorder *Latency;
  std::vector<uint64_t> Addresses;
  uint64_t MaxLive = 0;
};

/// Runs a baseline replay over \p Compiled, instrumented only when
/// \p Telemetry is attached, and returns the max live bytes observed.
template <typename AllocatorT>
uint64_t replayBaseline(const CompiledTrace &Compiled, AllocatorT &Allocator,
                        SimTelemetry *Telemetry) {
  if (!Telemetry) {
    PlainBaselineConsumer<AllocatorT> Consumer(Allocator, Compiled.trace());
    forEachEvent(Compiled.schedule(), Consumer);
    return Consumer.maxLiveBytes();
  }
  InstrumentedBaselineConsumer<AllocatorT> Consumer(Allocator,
                                                    Compiled.trace(),
                                                    Telemetry);
  forEachEvent(Compiled.schedule(), Consumer);
  return Consumer.maxLiveBytes();
}

/// Batch-grouped BSD replay consumer for forEachEventBatched: routes every
/// event to its Kingsley size class.  No live-byte peak tracking — the
/// batch partition permutes the live trajectory, so the caller reads the
/// schedule's precomputed maxLiveBytes() instead.
class BatchedBsdConsumer : public ScheduleConsumer<BatchedBsdConsumer> {
public:
  BatchedBsdConsumer(BsdAllocator &Allocator, const AllocationTrace &Trace)
      : Allocator(Allocator), Records(Trace.records().data()) {
    Addresses.resize(Trace.size());
  }

  uint32_t routeCount() const { return 40; }
  uint32_t routeOf(uint32_t Tagged) const {
    return Allocator.bucketFor(
        Records[Tagged & ~EventSchedule::FreeBit].Size);
  }

  void onAlloc(uint32_t Id, uint64_t) {
    Addresses[Id] = Allocator.allocate(Records[Id].Size);
  }

  void onFree(uint32_t Id, uint64_t) { Allocator.free(Addresses[Id]); }

private:
  BsdAllocator &Allocator;
  const AllocRecord *Records;
  std::vector<uint64_t> Addresses;
};

/// Uninstrumented arena replay: the predicted-short verdict is one bit
/// load, the allocate/free calls are non-virtual, nothing else happens.
/// Templated over the bits provider so the static lane
/// (PredictedShortBits) and the online dynamic-override lane
/// (DynamicRouteBits) replay through the identical code path.
template <typename BitsT>
class PlainArenaConsumer : public ScheduleConsumer<PlainArenaConsumer<BitsT>> {
public:
  PlainArenaConsumer(ArenaAllocator &Allocator, const AllocationTrace &Trace,
                     const BitsT &Predicted)
      : Allocator(Allocator), Records(Trace.records().data()),
        Predicted(Predicted) {
    Addresses.resize(Trace.size());
  }

  void onAlloc(uint32_t Id, uint64_t) {
    Addresses[Id] = Allocator.allocate(Records[Id].Size, Predicted.test(Id));
    raisePeak(MaxLive, Allocator.liveBytes());
  }

  void onFree(uint32_t Id, uint64_t) { Allocator.free(Addresses[Id]); }

  uint64_t maxLiveBytes() const { return MaxLive; }

private:
  ArenaAllocator &Allocator;
  const AllocRecord *Records;
  const BitsT &Predicted;
  std::vector<uint64_t> Addresses;
  uint64_t MaxLive = 0;
};

/// Instrumented arena replay: prediction outcomes, timeline, recorder.
template <typename BitsT>
class InstrumentedArenaConsumer
    : public ScheduleConsumer<InstrumentedArenaConsumer<BitsT>> {
public:
  InstrumentedArenaConsumer(ArenaAllocator &Allocator,
                            const AllocationTrace &Trace,
                            const SiteDatabase &DB,
                            const BitsT &Predicted,
                            SimTelemetry *Telemetry)
      : Allocator(Allocator), Records(Trace.records().data()), DB(DB),
        Predicted(Predicted), Telemetry(Telemetry),
        Recorder(Telemetry ? Telemetry->Recorder : nullptr),
        Latency(Telemetry ? Telemetry->Latency : nullptr) {
    Addresses.resize(Trace.size());
  }

  void onAlloc(uint32_t Id, uint64_t Clock) {
    const AllocRecord &Record = Records[Id];
    bool PredictedShort = Predicted.test(Id);
    if (Recorder)
      // Pin/reset callbacks fire from inside allocate(); give them the
      // clock this allocation will be recorded at.
      Recorder->beginEvent(Clock);
    Addresses[Id] = timedAllocatorOp(Latency, LatencyRecorder::OpAlloc, [&] {
      return Allocator.allocate(Record.Size, PredictedShort);
    });
    raisePeak(MaxLive, Allocator.liveBytes());
    if (Telemetry) {
      // NeverFreed is the maximal lifetime, so never-freed objects always
      // classify as actually long-lived.
      bool ActuallyShort = Record.Lifetime <= DB.threshold();
      Telemetry->Outcomes.add(PredictedShort, ActuallyShort);
      Telemetry->PerSite[Record.ChainIndex].add(PredictedShort, ActuallyShort);
      if (Telemetry->Drift)
        Telemetry->Drift->recordAlloc(Clock, Record.ChainIndex, Record.Size,
                                      PredictedShort, Record.Lifetime,
                                      ActuallyShort);
      observeSample(Telemetry, Clock, Allocator, Allocator.arenaLiveBytes());
    }
    if (Recorder) {
      AuditPlacement Placement;
      uint64_t Addr = Addresses[Id];
      if (Allocator.isArenaAddress(Addr)) {
        Placement.ArenaIndex = Allocator.arenaIndexFor(Addr);
        Placement.Generation = Allocator.arenaGeneration(Placement.ArenaIndex);
      }
      Recorder->recordAlloc(Id, Clock, Record.ChainIndex, Record.Size,
                            PredictedShort, DB.threshold(), Placement);
    }
  }

  void onFree(uint32_t Id, uint64_t Clock) {
    timedAllocatorOp(Latency, LatencyRecorder::OpFree,
                     [&] { Allocator.free(Addresses[Id]); });
    if (Telemetry)
      observeSample(Telemetry, Clock, Allocator, Allocator.arenaLiveBytes());
    if (Recorder)
      Recorder->recordFree(Id, Clock);
  }

  void onEnd(uint64_t Clock) {
    if (Recorder)
      Recorder->finish(Clock);
  }

  uint64_t maxLiveBytes() const { return MaxLive; }

private:
  ArenaAllocator &Allocator;
  const AllocRecord *Records;
  const SiteDatabase &DB;
  const BitsT &Predicted;
  SimTelemetry *Telemetry;
  FlightRecorder *Recorder;
  LatencyRecorder *Latency;
  std::vector<uint64_t> Addresses;
  uint64_t MaxLive = 0;
};

/// Shared arena replay body: identical allocator calls for either bits
/// provider, so the static and online lanes differ only in the verdict
/// each record carries.
template <typename BitsT>
ArenaSimResult simulateArenaWith(const CompiledTrace &Compiled,
                                 const SiteDatabase &DB,
                                 const BitsT &Predicted, double CallsPerAlloc,
                                 const CostModel &Costs,
                                 ArenaAllocator::Config Config,
                                 SimTelemetry *Telemetry) {
  ArenaAllocator Allocator(Config);
  if (Telemetry && Telemetry->Registry)
    Allocator.attachTelemetry(*Telemetry->Registry, "arena.");
  if (Telemetry && Telemetry->Recorder) {
    Telemetry->Recorder->setArenaGeometry(AuditPlacement::DefaultBand,
                                          Allocator.arenaBytes());
    Allocator.attachLifecycle(Telemetry->Recorder);
  }
  uint64_t MaxLive = 0;
  if (!Telemetry) {
    PlainArenaConsumer<BitsT> Consumer(Allocator, Compiled.trace(), Predicted);
    forEachEvent(Compiled.schedule(), Consumer);
    MaxLive = Consumer.maxLiveBytes();
  } else {
    InstrumentedArenaConsumer<BitsT> Consumer(Allocator, Compiled.trace(), DB,
                                              Predicted, Telemetry);
    forEachEvent(Compiled.schedule(), Consumer);
    MaxLive = Consumer.maxLiveBytes();
  }
  if (Telemetry && Telemetry->Registry) {
    Allocator.exportTelemetry(*Telemetry->Registry, "arena.");
    Telemetry->Outcomes.exportTelemetry(*Telemetry->Registry, "arena.pred.");
    raisePeak(Telemetry->Registry->gauge("arena.pred.sites"),
              Telemetry->PerSite.size());
    exportObservatory(Telemetry, "arena.");
  }

  ArenaSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = MaxLive;
  Result.Arena = Allocator.counters();
  Result.General = Allocator.general().counters();
  Result.InstrLen4 = Costs.arena(Result.Arena, Result.General,
                                 /*UseCce=*/false, CallsPerAlloc);
  Result.InstrCce = Costs.arena(Result.Arena, Result.General,
                                /*UseCce=*/true, CallsPerAlloc);
  return Result;
}

} // namespace

BaselineSimResult
lifepred::simulateFirstFit(const CompiledTrace &Compiled,
                           const CostModel &Costs,
                           FirstFitAllocator::Config Config,
                           SimTelemetry *Telemetry) {
  FirstFitAllocator Allocator(Config);
  if (Telemetry && Telemetry->Registry)
    Allocator.attachTelemetry(*Telemetry->Registry, "firstfit.");
  uint64_t MaxLive = replayBaseline(Compiled, Allocator, Telemetry);
  if (Telemetry && Telemetry->Registry) {
    Allocator.exportTelemetry(*Telemetry->Registry, "firstfit.");
    exportObservatory(Telemetry, "firstfit.");
  }

  BaselineSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = MaxLive;
  Result.FirstFit = Allocator.counters();
  Result.Instr = Costs.firstFit(Allocator.counters());
  return Result;
}

BaselineSimResult
lifepred::simulateFirstFit(const AllocationTrace &Trace,
                           const CostModel &Costs,
                           FirstFitAllocator::Config Config,
                           SimTelemetry *Telemetry) {
  return simulateFirstFit(CompiledTrace(Trace), Costs, Config, Telemetry);
}

BaselineSimResult lifepred::simulateBsd(const CompiledTrace &Compiled,
                                        const CostModel &Costs,
                                        BsdAllocator::Config Config,
                                        SimTelemetry *Telemetry) {
  BsdAllocator Allocator(Config);
  if (Telemetry && Telemetry->Registry)
    Allocator.attachTelemetry(*Telemetry->Registry, "bsd.");
  uint64_t MaxLive = replayBaseline(Compiled, Allocator, Telemetry);
  if (Telemetry && Telemetry->Registry) {
    Allocator.exportTelemetry(*Telemetry->Registry, "bsd.");
    exportObservatory(Telemetry, "bsd.");
  }

  BaselineSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = MaxLive;
  Result.Bsd = Allocator.counters();
  Result.Instr = Costs.bsd(Allocator.counters());
  return Result;
}

BaselineSimResult lifepred::simulateBsd(const AllocationTrace &Trace,
                                        const CostModel &Costs,
                                        BsdAllocator::Config Config,
                                        SimTelemetry *Telemetry) {
  return simulateBsd(CompiledTrace(Trace), Costs, Config, Telemetry);
}

BaselineSimResult lifepred::simulateBsdBatched(const CompiledTrace &Compiled,
                                               const CostModel &Costs,
                                               BsdAllocator::Config Config,
                                               size_t BatchEvents,
                                               SimTelemetry *Telemetry) {
  BsdAllocator Allocator(Config);
  if (Telemetry && Telemetry->Registry)
    Allocator.attachTelemetry(*Telemetry->Registry, "bsd.");
  BatchedBsdConsumer Consumer(Allocator, Compiled.trace());
  forEachEventBatched(Compiled.schedule(), Consumer, BatchEvents);
  // Batched replay permutes the event order inside a batch, so mid-replay
  // heap states are not comparable to the sequential path; the observatory
  // samples the (placement-consistent) end state once instead.
  observeSample(Telemetry, Compiled.schedule().endClock(), Allocator,
                /*ArenaBytes=*/0);
  if (Telemetry && Telemetry->Registry) {
    Allocator.exportTelemetry(*Telemetry->Registry, "bsd.");
    exportObservatory(Telemetry, "bsd.");
  }

  BaselineSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = Compiled.schedule().maxLiveBytes();
  Result.Bsd = Allocator.counters();
  Result.Instr = Costs.bsd(Allocator.counters());
  return Result;
}

ArenaSimResult lifepred::simulateArena(const CompiledTrace &Compiled,
                                       const SiteDatabase &DB,
                                       double CallsPerAlloc,
                                       const CostModel &Costs,
                                       ArenaAllocator::Config Config,
                                       SimTelemetry *Telemetry) {
  PredictedShortBits Predicted(Compiled, DB);
  return simulateArenaWith(Compiled, DB, Predicted, CallsPerAlloc, Costs,
                           Config, Telemetry);
}

ArenaSimResult lifepred::simulateArena(const CompiledTrace &Compiled,
                                       const SiteDatabase &DB,
                                       const DynamicRouteBits &Routes,
                                       double CallsPerAlloc,
                                       const CostModel &Costs,
                                       ArenaAllocator::Config Config,
                                       SimTelemetry *Telemetry) {
  return simulateArenaWith(Compiled, DB, Routes, CallsPerAlloc, Costs,
                           Config, Telemetry);
}

ArenaSimResult lifepred::simulateArena(const AllocationTrace &Trace,
                                       const SiteDatabase &DB,
                                       double CallsPerAlloc,
                                       const CostModel &Costs,
                                       ArenaAllocator::Config Config,
                                       SimTelemetry *Telemetry) {
  return simulateArena(CompiledTrace(Trace, DB.policy()), DB, CallsPerAlloc,
                       Costs, Config, Telemetry);
}

TrainedQuantileMap
lifepred::buildTrainedQuantiles(const AllocationTrace &Trace,
                                const Profile &Trained,
                                const SiteKeyPolicy &Policy) {
  TrainedQuantileMap Map;
  std::unordered_set<uint32_t> Seen;
  for (const AllocRecord &Record : Trace.records()) {
    if (!Seen.insert(Record.ChainIndex).second)
      continue;
    SiteKey Key = siteKey(Policy, Trace.chain(Record.ChainIndex), Record.Size,
                          Record.TypeId);
    auto It = Trained.Sites.find(Key);
    if (It == Trained.Sites.end())
      continue;
    const SiteStats &Stats = It->second;
    TrainedSiteQuantiles Quantiles;
    Quantiles.Objects = Stats.Objects;
    Quantiles.Q25 = Stats.Lifetimes.quantile(0.25);
    Quantiles.Q50 = Stats.Lifetimes.quantile(0.50);
    Quantiles.Q75 = Stats.Lifetimes.quantile(0.75);
    Map.emplace(Record.ChainIndex, Quantiles);
  }
  return Map;
}
