//===- sim/TraceSimulator.cpp - Trace-driven allocator simulation ----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/TraceSimulator.h"

#include "trace/TraceReplayer.h"

#include <vector>

using namespace lifepred;

namespace {

/// Replays a trace into any AllocatorSim, tracking peaks.
class BaselineConsumer : public TraceConsumer {
public:
  BaselineConsumer(AllocatorSim &Allocator, size_t ObjectCount)
      : Allocator(Allocator) {
    Addresses.resize(ObjectCount);
  }

  void onAlloc(uint64_t Id, const AllocRecord &Record, uint64_t) override {
    Addresses[Id] = Allocator.allocate(Record.Size);
    if (Allocator.liveBytes() > MaxLive)
      MaxLive = Allocator.liveBytes();
  }

  void onFree(uint64_t Id, const AllocRecord &, uint64_t) override {
    Allocator.free(Addresses[Id]);
  }

  uint64_t maxLiveBytes() const { return MaxLive; }

private:
  AllocatorSim &Allocator;
  std::vector<uint64_t> Addresses;
  uint64_t MaxLive = 0;
};

/// Replays a trace into the arena allocator with per-alloc prediction.
class ArenaConsumer : public TraceConsumer {
public:
  ArenaConsumer(ArenaAllocator &Allocator, const AllocationTrace &Trace,
                const SiteDatabase &DB)
      : Allocator(Allocator) {
    Addresses.resize(Trace.size());
    // Prediction depends only on (chain, rounded size); memoize per chain
    // so the hot loop avoids re-hashing chains.
    const SiteKeyPolicy &Policy = DB.policy();
    ChainParts.resize(Trace.chainCount());
    for (uint32_t I = 0; I < Trace.chainCount(); ++I)
      ChainParts[I] = chainKeyPart(Policy, Trace.chain(I));
    this->DB = &DB;
  }

  void onAlloc(uint64_t Id, const AllocRecord &Record, uint64_t) override {
    SiteKey Key = siteKeyForRecord(DB->policy(),
                                   ChainParts[Record.ChainIndex], Record);
    bool Predicted = DB->contains(Key);
    Addresses[Id] = Allocator.allocate(Record.Size, Predicted);
    if (Allocator.liveBytes() > MaxLive)
      MaxLive = Allocator.liveBytes();
  }

  void onFree(uint64_t Id, const AllocRecord &, uint64_t) override {
    Allocator.free(Addresses[Id]);
  }

  uint64_t maxLiveBytes() const { return MaxLive; }

private:
  ArenaAllocator &Allocator;
  const SiteDatabase *DB = nullptr;
  std::vector<uint64_t> ChainParts;
  std::vector<uint64_t> Addresses;
  uint64_t MaxLive = 0;
};

} // namespace

BaselineSimResult
lifepred::simulateFirstFit(const AllocationTrace &Trace,
                           const CostModel &Costs,
                           FirstFitAllocator::Config Config) {
  FirstFitAllocator Allocator(Config);
  BaselineConsumer Consumer(Allocator, Trace.size());
  replayTrace(Trace, Consumer);

  BaselineSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = Consumer.maxLiveBytes();
  Result.FirstFit = Allocator.counters();
  Result.Instr = Costs.firstFit(Allocator.counters());
  return Result;
}

BaselineSimResult lifepred::simulateBsd(const AllocationTrace &Trace,
                                        const CostModel &Costs,
                                        BsdAllocator::Config Config) {
  BsdAllocator Allocator(Config);
  BaselineConsumer Consumer(Allocator, Trace.size());
  replayTrace(Trace, Consumer);

  BaselineSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = Consumer.maxLiveBytes();
  Result.Bsd = Allocator.counters();
  Result.Instr = Costs.bsd(Allocator.counters());
  return Result;
}

ArenaSimResult lifepred::simulateArena(const AllocationTrace &Trace,
                                       const SiteDatabase &DB,
                                       double CallsPerAlloc,
                                       const CostModel &Costs,
                                       ArenaAllocator::Config Config) {
  ArenaAllocator Allocator(Config);
  ArenaConsumer Consumer(Allocator, Trace, DB);
  replayTrace(Trace, Consumer);

  ArenaSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = Consumer.maxLiveBytes();
  Result.Arena = Allocator.counters();
  Result.General = Allocator.general().counters();
  Result.InstrLen4 = Costs.arena(Result.Arena, Result.General,
                                 /*UseCce=*/false, CallsPerAlloc);
  Result.InstrCce = Costs.arena(Result.Arena, Result.General,
                                /*UseCce=*/true, CallsPerAlloc);
  return Result;
}
