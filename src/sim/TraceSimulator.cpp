//===- sim/TraceSimulator.cpp - Trace-driven allocator simulation ----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/TraceSimulator.h"

#include "core/Profiler.h"
#include "sim/SimTelemetry.h"
#include "sim/SiteKeyCache.h"
#include "telemetry/FlightRecorder.h"
#include "trace/TraceReplayer.h"

#include <unordered_set>
#include <vector>

using namespace lifepred;

namespace {

/// Records a byte-clock sample of \p Allocator if one is due.  \p ArenaBytes
/// is supplied by the caller because only the arena allocators have the
/// concept.
void sampleTimeline(SimTelemetry *Telemetry, uint64_t Clock,
                    const AllocatorSim &Allocator, uint64_t ArenaBytes) {
  if (!Telemetry || !Telemetry->Timeline || !Telemetry->Timeline->due(Clock))
    return;
  HeapSample Sample;
  Sample.Clock = Clock;
  Sample.HeapBytes = Allocator.heapBytes();
  Sample.LiveBytes = Allocator.liveBytes();
  Sample.ArenaBytes = ArenaBytes;
  Sample.FreeBlocks = Allocator.freeBlockCount();
  Telemetry->Timeline->record(Sample);
}

/// Replays a trace into any AllocatorSim, tracking peaks.
class BaselineConsumer : public TraceConsumer {
public:
  BaselineConsumer(AllocatorSim &Allocator, size_t ObjectCount,
                   SimTelemetry *Telemetry)
      : Allocator(Allocator), Telemetry(Telemetry) {
    Addresses.resize(ObjectCount);
  }

  void onAlloc(uint64_t Id, const AllocRecord &Record,
               uint64_t Clock) override {
    Addresses[Id] = Allocator.allocate(Record.Size);
    raisePeak(MaxLive, Allocator.liveBytes());
    sampleTimeline(Telemetry, Clock, Allocator, /*ArenaBytes=*/0);
  }

  void onFree(uint64_t Id, const AllocRecord &, uint64_t) override {
    Allocator.free(Addresses[Id]);
  }

  uint64_t maxLiveBytes() const { return MaxLive; }

private:
  AllocatorSim &Allocator;
  SimTelemetry *Telemetry;
  std::vector<uint64_t> Addresses;
  uint64_t MaxLive = 0;
};

/// Replays a trace into the arena allocator with per-alloc prediction.
class ArenaConsumer : public TraceConsumer {
public:
  ArenaConsumer(ArenaAllocator &Allocator, const AllocationTrace &Trace,
                const SiteDatabase &DB, SimTelemetry *Telemetry)
      : Allocator(Allocator), DB(DB), Keys(DB.policy(), Trace),
        Telemetry(Telemetry),
        Recorder(Telemetry ? Telemetry->Recorder : nullptr) {
    Addresses.resize(Trace.size());
  }

  void onAlloc(uint64_t Id, const AllocRecord &Record,
               uint64_t Clock) override {
    // The full key is memoized per (chain, rounded size) in Keys; the only
    // per-event table work left is the database probe itself.
    bool Predicted = DB.contains(Keys.keyFor(Id));
    if (Recorder)
      // Pin/reset callbacks fire from inside allocate(); give them the
      // clock this allocation will be recorded at.
      Recorder->beginEvent(Clock);
    Addresses[Id] = Allocator.allocate(Record.Size, Predicted);
    raisePeak(MaxLive, Allocator.liveBytes());
    if (Telemetry) {
      // NeverFreed is the maximal lifetime, so never-freed objects always
      // classify as actually long-lived.
      bool ActuallyShort = Record.Lifetime <= DB.threshold();
      Telemetry->Outcomes.add(Predicted, ActuallyShort);
      Telemetry->PerSite[Record.ChainIndex].add(Predicted, ActuallyShort);
      sampleTimeline(Telemetry, Clock, Allocator,
                     Allocator.arenaLiveBytes());
    }
    if (Recorder) {
      AuditPlacement Placement;
      uint64_t Addr = Addresses[Id];
      if (Allocator.isArenaAddress(Addr)) {
        Placement.ArenaIndex = Allocator.arenaIndexFor(Addr);
        Placement.Generation = Allocator.arenaGeneration(Placement.ArenaIndex);
      }
      Recorder->recordAlloc(Id, Clock, Record.ChainIndex, Record.Size,
                            Predicted, DB.threshold(), Placement);
    }
  }

  void onFree(uint64_t Id, const AllocRecord &, uint64_t Clock) override {
    Allocator.free(Addresses[Id]);
    if (Recorder)
      Recorder->recordFree(Id, Clock);
  }

  void onEnd(uint64_t Clock) override {
    if (Recorder)
      Recorder->finish(Clock);
  }

  uint64_t maxLiveBytes() const { return MaxLive; }

private:
  ArenaAllocator &Allocator;
  const SiteDatabase &DB;
  SiteKeyCache Keys;
  SimTelemetry *Telemetry;
  FlightRecorder *Recorder;
  std::vector<uint64_t> Addresses;
  uint64_t MaxLive = 0;
};

} // namespace

BaselineSimResult
lifepred::simulateFirstFit(const AllocationTrace &Trace,
                           const CostModel &Costs,
                           FirstFitAllocator::Config Config,
                           SimTelemetry *Telemetry) {
  FirstFitAllocator Allocator(Config);
  if (Telemetry && Telemetry->Registry)
    Allocator.attachTelemetry(*Telemetry->Registry, "firstfit.");
  BaselineConsumer Consumer(Allocator, Trace.size(), Telemetry);
  replayTrace(Trace, Consumer);
  if (Telemetry && Telemetry->Registry)
    Allocator.exportTelemetry(*Telemetry->Registry, "firstfit.");

  BaselineSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = Consumer.maxLiveBytes();
  Result.FirstFit = Allocator.counters();
  Result.Instr = Costs.firstFit(Allocator.counters());
  return Result;
}

BaselineSimResult lifepred::simulateBsd(const AllocationTrace &Trace,
                                        const CostModel &Costs,
                                        BsdAllocator::Config Config,
                                        SimTelemetry *Telemetry) {
  BsdAllocator Allocator(Config);
  if (Telemetry && Telemetry->Registry)
    Allocator.attachTelemetry(*Telemetry->Registry, "bsd.");
  BaselineConsumer Consumer(Allocator, Trace.size(), Telemetry);
  replayTrace(Trace, Consumer);
  if (Telemetry && Telemetry->Registry)
    Allocator.exportTelemetry(*Telemetry->Registry, "bsd.");

  BaselineSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = Consumer.maxLiveBytes();
  Result.Bsd = Allocator.counters();
  Result.Instr = Costs.bsd(Allocator.counters());
  return Result;
}

ArenaSimResult lifepred::simulateArena(const AllocationTrace &Trace,
                                       const SiteDatabase &DB,
                                       double CallsPerAlloc,
                                       const CostModel &Costs,
                                       ArenaAllocator::Config Config,
                                       SimTelemetry *Telemetry) {
  ArenaAllocator Allocator(Config);
  if (Telemetry && Telemetry->Registry)
    Allocator.attachTelemetry(*Telemetry->Registry, "arena.");
  if (Telemetry && Telemetry->Recorder) {
    Telemetry->Recorder->setArenaGeometry(AuditPlacement::DefaultBand,
                                          Allocator.arenaBytes());
    Allocator.attachLifecycle(Telemetry->Recorder);
  }
  ArenaConsumer Consumer(Allocator, Trace, DB, Telemetry);
  replayTrace(Trace, Consumer);
  if (Telemetry && Telemetry->Registry) {
    Allocator.exportTelemetry(*Telemetry->Registry, "arena.");
    Telemetry->Outcomes.exportTelemetry(*Telemetry->Registry, "arena.pred.");
    raisePeak(Telemetry->Registry->gauge("arena.pred.sites"),
              Telemetry->PerSite.size());
  }

  ArenaSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = Consumer.maxLiveBytes();
  Result.Arena = Allocator.counters();
  Result.General = Allocator.general().counters();
  Result.InstrLen4 = Costs.arena(Result.Arena, Result.General,
                                 /*UseCce=*/false, CallsPerAlloc);
  Result.InstrCce = Costs.arena(Result.Arena, Result.General,
                                /*UseCce=*/true, CallsPerAlloc);
  return Result;
}

TrainedQuantileMap
lifepred::buildTrainedQuantiles(const AllocationTrace &Trace,
                                const Profile &Trained,
                                const SiteKeyPolicy &Policy) {
  TrainedQuantileMap Map;
  std::unordered_set<uint32_t> Seen;
  for (const AllocRecord &Record : Trace.records()) {
    if (!Seen.insert(Record.ChainIndex).second)
      continue;
    SiteKey Key = siteKey(Policy, Trace.chain(Record.ChainIndex), Record.Size,
                          Record.TypeId);
    auto It = Trained.Sites.find(Key);
    if (It == Trained.Sites.end())
      continue;
    const SiteStats &Stats = It->second;
    TrainedSiteQuantiles Quantiles;
    Quantiles.Objects = Stats.Objects;
    Quantiles.Q25 = Stats.Lifetimes.quantile(0.25);
    Quantiles.Q50 = Stats.Lifetimes.quantile(0.50);
    Quantiles.Q75 = Stats.Lifetimes.quantile(0.75);
    Map.emplace(Record.ChainIndex, Quantiles);
  }
  return Map;
}
