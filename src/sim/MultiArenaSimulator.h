//===- sim/MultiArenaSimulator.h - Banded-arena simulation ------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace-driven simulation of the multi-band arena allocator with a
/// trained ClassDatabase deciding each allocation's lifetime band.  Like
/// the simulators in TraceSimulator.h, the fast entry point takes a
/// CompiledTrace (band verdicts pre-resolved per record, no per-event
/// classifier probes) and a convenience overload compiles on the spot.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SIM_MULTIARENASIMULATOR_H
#define LIFEPRED_SIM_MULTIARENASIMULATOR_H

#include "alloc/MultiArenaAllocator.h"
#include "core/LifetimeClassifier.h"
#include "trace/AllocationTrace.h"
#include "trace/CompiledTrace.h"

#include <vector>

namespace lifepred {

struct SimTelemetry;

/// Results of a banded-arena simulation.
struct MultiArenaSimResult {
  uint64_t MaxHeapBytes = 0;
  uint64_t MaxLiveBytes = 0;
  std::vector<MultiArenaAllocator::BandCounters> PerBand;
  uint64_t GeneralAllocs = 0;
  uint64_t GeneralBytes = 0;
  FirstFitAllocator::Counters General;

  /// Fraction of all allocated bytes placed in band \p Band's arenas.
  double bandBytesPercent(size_t Band) const {
    uint64_t Total = GeneralBytes;
    for (const auto &Counters : PerBand)
      Total += Counters.Bytes;
    return Total == 0 ? 0.0
                      : 100.0 * static_cast<double>(PerBand[Band].Bytes) /
                            static_cast<double>(Total);
  }
};

/// Simulates a compiled trace over a banded arena allocator configured by
/// \p Config, with \p DB classifying each allocation.  \p Compiled must
/// carry site keys under DB's policy; the classifier is resolved to one
/// band per record before the replay.  A non-null \p Telemetry collects
/// metrics under "multiarena." plus prediction outcomes: an allocation
/// predicted into band B counts as a true short when its lifetime is
/// within B's threshold, and an unclassified one as a missed short when
/// any band's threshold would have covered it.
MultiArenaSimResult
simulateMultiArena(const CompiledTrace &Compiled, const ClassDatabase &DB,
                   MultiArenaAllocator::Config Config =
                       MultiArenaAllocator::Config(),
                   SimTelemetry *Telemetry = nullptr);

/// Convenience overload: compiles \p Trace under DB's policy, then
/// simulates.
MultiArenaSimResult
simulateMultiArena(const AllocationTrace &Trace, const ClassDatabase &DB,
                   MultiArenaAllocator::Config Config =
                       MultiArenaAllocator::Config(),
                   SimTelemetry *Telemetry = nullptr);

/// Precomputed-bands overload: replays with \p Bands (one LifetimeClass
/// per record) instead of re-deriving them from \p DB — the banded
/// dynamic-override lane.  Callers compose compileBands with
/// overrideBands (sim/CompiledPrediction.h) to fold an online route plan
/// into the static classification; \p DB still supplies the band
/// thresholds for outcome telemetry.  \p Bands must cover every record.
MultiArenaSimResult
simulateMultiArena(const CompiledTrace &Compiled, const ClassDatabase &DB,
                   const std::vector<LifetimeClass> &Bands,
                   MultiArenaAllocator::Config Config =
                       MultiArenaAllocator::Config(),
                   SimTelemetry *Telemetry = nullptr);

} // namespace lifepred

#endif // LIFEPRED_SIM_MULTIARENASIMULATOR_H
