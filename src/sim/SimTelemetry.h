//===- sim/SimTelemetry.h - Simulation observability hooks ------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optional observability sinks for the trace simulators.  A SimTelemetry
/// passed to simulateFirstFit / simulateBsd / simulateArena /
/// simulateMultiArena turns on metric collection for that run: allocator
/// counters and per-allocation histograms land in the StatsRegistry,
/// byte-clock heap samples in the HeapTimeline, and (for the predicting
/// allocators) prediction outcomes are classified per event and per site.
/// Passing nullptr — the default everywhere — leaves the simulation
/// untouched.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SIM_SIMTELEMETRY_H
#define LIFEPRED_SIM_SIMTELEMETRY_H

#include "telemetry/HeapTimeline.h"
#include "telemetry/StatsRegistry.h"

#include <cstdint>
#include <string>
#include <unordered_map>

namespace lifepred {

class AllocatorSim;
class DriftObservatory;
class FlightRecorder;
class FragmentationProbe;
class HeapHeatmap;
class LatencyRecorder;

/// Confusion-matrix counts for lifetime prediction, using the paper's
/// terminology: an object is *actually* short-lived when its traced
/// lifetime is within the training threshold.
struct PredictionCounts {
  uint64_t TrueShort = 0;   ///< Predicted short, died within threshold.
  uint64_t FalseShort = 0;  ///< Predicted short, outlived the threshold.
  uint64_t MissedShort = 0; ///< Predicted long, died within threshold.
  uint64_t TrueLong = 0;    ///< Predicted long, outlived the threshold.

  uint64_t total() const {
    return TrueShort + FalseShort + MissedShort + TrueLong;
  }

  /// Fraction of all events predicted correctly, in percent.
  double accuracyPercent() const {
    uint64_t Total = total();
    return Total == 0 ? 0.0
                      : 100.0 * static_cast<double>(TrueShort + TrueLong) /
                            static_cast<double>(Total);
  }

  void add(bool PredictedShort, bool ActuallyShort) {
    if (PredictedShort)
      ++(ActuallyShort ? TrueShort : FalseShort);
    else
      ++(ActuallyShort ? MissedShort : TrueLong);
  }

  /// Exports the four cells as counters "<Prefix>true_short", ... .
  void exportTelemetry(StatsRegistry &Registry,
                       const std::string &Prefix) const {
    Registry.counter(Prefix + "true_short") += TrueShort;
    Registry.counter(Prefix + "false_short") += FalseShort;
    Registry.counter(Prefix + "missed_short") += MissedShort;
    Registry.counter(Prefix + "true_long") += TrueLong;
  }

  bool operator==(const PredictionCounts &Other) const = default;
};

/// Sinks for one instrumented simulation.  Null members disable the
/// corresponding collection; the struct itself is passed by pointer with a
/// nullptr default, so uninstrumented runs never touch any of this.
struct SimTelemetry {
  /// Counters, gauges, and histograms accumulate here.
  StatsRegistry *Registry = nullptr;
  /// Byte-clock heap samples accumulate here.
  HeapTimeline *Timeline = nullptr;
  /// Aggregate prediction outcomes (predicting simulators only).
  PredictionCounts Outcomes;
  /// Prediction outcomes keyed by allocation site (the trace's chain-table
  /// index), for hit/miss/false-short rates per site.
  std::unordered_map<uint32_t, PredictionCounts> PerSite;
  /// Per-object audit trail (predicting simulators only).  When set, the
  /// simulator feeds every birth/death into the recorder, attaches it to
  /// the allocator's arena lifecycle hooks, and calls finish() at the end
  /// of the replay.  One recorder per replay — recorders are not merged;
  /// fan-out code exports them per program in task order.
  FlightRecorder *Recorder = nullptr;
  /// Heap observatory sinks (telemetry/FragmentationProbe.h etc.).  Each is
  /// stride- or period-gated independently; the simulators export probe
  /// results into Registry under the allocator family's prefix at the end
  /// of the replay.  All default to detached.
  FragmentationProbe *Fragmentation = nullptr;
  HeapHeatmap *Heatmap = nullptr;
  LatencyRecorder *Latency = nullptr;
  /// Windowed prediction-drift accounting (predicting simulators only).
  /// When set, every allocation outcome also lands in the observatory's
  /// byte-clock windows.  Not exported by exportObservatory — the drift
  /// report needs trained quantiles, so fan-out code builds and exports
  /// DriftReports per program after the replay.
  DriftObservatory *Drift = nullptr;
};

/// The span walk under observeSample, exposed for shard-aware callers: one
/// pass over \p Allocator's free and live spans feeding \p Probe and/or
/// \p Heatmap (either may be null; both null is a no-op).  The serving
/// engine calls this once per shard sub-heap — each shard is its own
/// AllocatorSim, so the walk needs no notion of sharding, only a caller
/// that aggregates per-shard samples into one probe.  Quiescent heaps
/// only.
void probeHeapSpans(const AllocatorSim &Allocator, uint64_t Clock,
                    FragmentationProbe *Probe, HeapHeatmap *Heatmap);

/// Records byte-clock observatory samples of \p Allocator when any of the
/// attached sinks (timeline, fragmentation probe, heatmap) is due at
/// \p Clock.  One fragmentation/heatmap scan shares a single span walk.
/// \p ArenaBytes is supplied by the caller because only the arena
/// allocators have the concept.  Null-telemetry calls return immediately;
/// the instrumented consumers pay three compares per event when all sinks
/// are attached.
void observeSample(SimTelemetry *Telemetry, uint64_t Clock,
                   const AllocatorSim &Allocator, uint64_t ArenaBytes);

/// Exports the observatory sinks (probe state, latency distributions) into
/// Telemetry->Registry under \p Prefix.  Called by each simulator after
/// the replay, mirroring the allocator exportTelemetry discipline; no-op
/// for detached members.
void exportObservatory(SimTelemetry *Telemetry, const std::string &Prefix);

} // namespace lifepred

#endif // LIFEPRED_SIM_SIMTELEMETRY_H
