//===- sim/MultiArenaSimulator.cpp - Banded-arena simulation ---------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/MultiArenaSimulator.h"

#include "sim/SiteKeyCache.h"
#include "trace/TraceReplayer.h"

using namespace lifepred;

namespace {

class MultiArenaConsumer : public TraceConsumer {
public:
  MultiArenaConsumer(MultiArenaAllocator &Allocator,
                     const AllocationTrace &Trace, const ClassDatabase &DB)
      : Allocator(Allocator), DB(DB), Keys(DB.policy(), Trace) {
    Addresses.resize(Trace.size());
  }

  void onAlloc(uint64_t Id, const AllocRecord &Record, uint64_t) override {
    Addresses[Id] =
        Allocator.allocate(Record.Size, DB.classify(Keys.keyFor(Id)));
    raisePeak(MaxLive, Allocator.liveBytes());
  }

  void onFree(uint64_t Id, const AllocRecord &, uint64_t) override {
    Allocator.free(Addresses[Id]);
  }

  uint64_t maxLiveBytes() const { return MaxLive; }

private:
  MultiArenaAllocator &Allocator;
  const ClassDatabase &DB;
  SiteKeyCache Keys;
  std::vector<uint64_t> Addresses;
  uint64_t MaxLive = 0;
};

} // namespace

MultiArenaSimResult
lifepred::simulateMultiArena(const AllocationTrace &Trace,
                             const ClassDatabase &DB,
                             MultiArenaAllocator::Config Config) {
  MultiArenaAllocator Allocator(Config);
  MultiArenaConsumer Consumer(Allocator, Trace, DB);
  replayTrace(Trace, Consumer);

  MultiArenaSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = Consumer.maxLiveBytes();
  for (size_t Band = 0; Band < Allocator.bands(); ++Band)
    Result.PerBand.push_back(Allocator.bandCounters(Band));
  Result.GeneralAllocs = Allocator.generalAllocs();
  Result.GeneralBytes = Allocator.generalBytes();
  Result.General = Allocator.general().counters();
  return Result;
}
