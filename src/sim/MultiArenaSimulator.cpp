//===- sim/MultiArenaSimulator.cpp - Banded-arena simulation ---------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/MultiArenaSimulator.h"

#include "sim/CompiledPrediction.h"
#include "sim/SimTelemetry.h"
#include "telemetry/DriftObservatory.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/LatencyRecorder.h"

using namespace lifepred;

namespace {

/// Uninstrumented banded replay: band verdict is one table load.
class PlainMultiArenaConsumer
    : public ScheduleConsumer<PlainMultiArenaConsumer> {
public:
  PlainMultiArenaConsumer(MultiArenaAllocator &Allocator,
                          const AllocationTrace &Trace,
                          const std::vector<LifetimeClass> &Bands)
      : Allocator(Allocator), Records(Trace.records().data()),
        Bands(Bands.data()) {
    Addresses.resize(Trace.size());
  }

  void onAlloc(uint32_t Id, uint64_t) {
    Addresses[Id] = Allocator.allocate(Records[Id].Size, Bands[Id]);
    raisePeak(MaxLive, Allocator.liveBytes());
  }

  void onFree(uint32_t Id, uint64_t) { Allocator.free(Addresses[Id]); }

  uint64_t maxLiveBytes() const { return MaxLive; }

private:
  MultiArenaAllocator &Allocator;
  const AllocRecord *Records;
  const LifetimeClass *Bands;
  std::vector<uint64_t> Addresses;
  uint64_t MaxLive = 0;
};

/// Instrumented banded replay: outcomes, timeline, flight recorder.
class InstrumentedMultiArenaConsumer
    : public ScheduleConsumer<InstrumentedMultiArenaConsumer> {
public:
  InstrumentedMultiArenaConsumer(MultiArenaAllocator &Allocator,
                                 const AllocationTrace &Trace,
                                 const ClassDatabase &DB,
                                 const std::vector<LifetimeClass> &Bands,
                                 SimTelemetry *Telemetry)
      : Allocator(Allocator), Records(Trace.records().data()), DB(DB),
        Bands(Bands.data()), Telemetry(Telemetry),
        Recorder(Telemetry ? Telemetry->Recorder : nullptr),
        Latency(Telemetry ? Telemetry->Latency : nullptr) {
    Addresses.resize(Trace.size());
  }

  void onAlloc(uint32_t Id, uint64_t Clock) {
    const AllocRecord &Record = Records[Id];
    LifetimeClass Band = Bands[Id];
    if (Recorder)
      Recorder->beginEvent(Clock);
    Addresses[Id] = timedAllocatorOp(Latency, LatencyRecorder::OpAlloc, [&] {
      return Allocator.allocate(Record.Size, Band);
    });
    raisePeak(MaxLive, Allocator.liveBytes());
    if (Telemetry) {
      recordOutcome(Record, Band, Clock);
      observeSample(Telemetry, Clock, Allocator, Allocator.arenaLiveBytes());
    }
    if (Recorder)
      recordAudit(Id, Record, Clock, Band);
  }

  void onFree(uint32_t Id, uint64_t Clock) {
    timedAllocatorOp(Latency, LatencyRecorder::OpFree,
                     [&] { Allocator.free(Addresses[Id]); });
    observeSample(Telemetry, Clock, Allocator, Allocator.arenaLiveBytes());
    if (Recorder)
      Recorder->recordFree(Id, Clock);
  }

  void onEnd(uint64_t Clock) {
    if (Recorder)
      Recorder->finish(Clock);
  }

  uint64_t maxLiveBytes() const { return MaxLive; }

private:
  void recordOutcome(const AllocRecord &Record, LifetimeClass Band,
                     uint64_t Clock) {
    const std::vector<uint64_t> &Thresholds = DB.thresholds();
    bool PredictedBanded = Band < Thresholds.size();
    // A banded prediction is right when the object died within its band's
    // threshold; an unclassified one is a miss when the widest band would
    // have covered the object.
    bool Correct = PredictedBanded
                       ? Record.Lifetime <= Thresholds[Band]
                       : Thresholds.empty() ||
                             Record.Lifetime > Thresholds.back();
    bool ActuallyShort = PredictedBanded ? Correct : !Correct;
    Telemetry->Outcomes.add(PredictedBanded, ActuallyShort);
    Telemetry->PerSite[Record.ChainIndex].add(PredictedBanded, ActuallyShort);
    if (Telemetry->Drift)
      Telemetry->Drift->recordAlloc(Clock, Record.ChainIndex, Record.Size,
                                    PredictedBanded, Record.Lifetime,
                                    ActuallyShort);
  }

  /// Feeds one allocation into the flight recorder.  The per-object class
  /// threshold reproduces recordOutcome's classification: a banded object is
  /// short within its band's threshold; an unclassified one is short within
  /// the widest band's (so MissedShort counts agree with the sim's).
  void recordAudit(uint64_t Id, const AllocRecord &Record, uint64_t Clock,
                   LifetimeClass Band) {
    const std::vector<uint64_t> &Thresholds = DB.thresholds();
    bool PredictedBanded = Band < Thresholds.size();
    uint64_t ClassThreshold =
        PredictedBanded ? Thresholds[Band]
                        : (Thresholds.empty() ? 0 : Thresholds.back());
    AuditPlacement Placement;
    uint64_t Addr = Addresses[Id];
    uint8_t PlacedBand = Allocator.bandForAddress(Addr);
    if (PlacedBand != MultiArenaAllocator::GeneralBand) {
      Placement.Band = PlacedBand;
      Placement.ArenaIndex = Allocator.arenaIndexFor(PlacedBand, Addr);
      Placement.Generation =
          Allocator.arenaGeneration(PlacedBand, Placement.ArenaIndex);
    }
    Recorder->recordAlloc(Id, Clock, Record.ChainIndex, Record.Size,
                          PredictedBanded, ClassThreshold, Placement);
  }

  MultiArenaAllocator &Allocator;
  const AllocRecord *Records;
  const ClassDatabase &DB;
  const LifetimeClass *Bands;
  SimTelemetry *Telemetry;
  FlightRecorder *Recorder;
  LatencyRecorder *Latency;
  std::vector<uint64_t> Addresses;
  uint64_t MaxLive = 0;
};

} // namespace

MultiArenaSimResult
lifepred::simulateMultiArena(const CompiledTrace &Compiled,
                             const ClassDatabase &DB,
                             MultiArenaAllocator::Config Config,
                             SimTelemetry *Telemetry) {
  return simulateMultiArena(Compiled, DB, compileBands(Compiled, DB), Config,
                            Telemetry);
}

MultiArenaSimResult
lifepred::simulateMultiArena(const CompiledTrace &Compiled,
                             const ClassDatabase &DB,
                             const std::vector<LifetimeClass> &Bands,
                             MultiArenaAllocator::Config Config,
                             SimTelemetry *Telemetry) {
  MultiArenaAllocator Allocator(Config);
  if (Telemetry && Telemetry->Registry)
    Allocator.attachTelemetry(*Telemetry->Registry, "multiarena.");
  if (Telemetry && Telemetry->Recorder) {
    for (size_t Band = 0; Band < Allocator.bands(); ++Band)
      Telemetry->Recorder->setArenaGeometry(
          static_cast<uint8_t>(Band),
          Allocator.bandArenaBytes(static_cast<uint8_t>(Band)));
    Allocator.attachLifecycle(Telemetry->Recorder);
  }
  uint64_t MaxLive = 0;
  if (!Telemetry) {
    PlainMultiArenaConsumer Consumer(Allocator, Compiled.trace(), Bands);
    forEachEvent(Compiled.schedule(), Consumer);
    MaxLive = Consumer.maxLiveBytes();
  } else {
    InstrumentedMultiArenaConsumer Consumer(Allocator, Compiled.trace(), DB,
                                            Bands, Telemetry);
    forEachEvent(Compiled.schedule(), Consumer);
    MaxLive = Consumer.maxLiveBytes();
  }
  if (Telemetry && Telemetry->Registry) {
    Allocator.exportTelemetry(*Telemetry->Registry, "multiarena.");
    Telemetry->Outcomes.exportTelemetry(*Telemetry->Registry,
                                        "multiarena.pred.");
    raisePeak(Telemetry->Registry->gauge("multiarena.pred.sites"),
              Telemetry->PerSite.size());
    exportObservatory(Telemetry, "multiarena.");
  }

  MultiArenaSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = MaxLive;
  for (size_t Band = 0; Band < Allocator.bands(); ++Band)
    Result.PerBand.push_back(Allocator.bandCounters(Band));
  Result.GeneralAllocs = Allocator.generalAllocs();
  Result.GeneralBytes = Allocator.generalBytes();
  Result.General = Allocator.general().counters();
  return Result;
}

MultiArenaSimResult
lifepred::simulateMultiArena(const AllocationTrace &Trace,
                             const ClassDatabase &DB,
                             MultiArenaAllocator::Config Config,
                             SimTelemetry *Telemetry) {
  return simulateMultiArena(CompiledTrace(Trace, DB.policy()), DB, Config,
                            Telemetry);
}
