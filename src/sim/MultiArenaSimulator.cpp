//===- sim/MultiArenaSimulator.cpp - Banded-arena simulation ---------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/MultiArenaSimulator.h"

#include "sim/SimTelemetry.h"
#include "sim/SiteKeyCache.h"
#include "telemetry/FlightRecorder.h"
#include "trace/TraceReplayer.h"

using namespace lifepred;

namespace {

class MultiArenaConsumer : public TraceConsumer {
public:
  MultiArenaConsumer(MultiArenaAllocator &Allocator,
                     const AllocationTrace &Trace, const ClassDatabase &DB,
                     SimTelemetry *Telemetry)
      : Allocator(Allocator), DB(DB), Keys(DB.policy(), Trace),
        Telemetry(Telemetry),
        Recorder(Telemetry ? Telemetry->Recorder : nullptr) {
    Addresses.resize(Trace.size());
  }

  void onAlloc(uint64_t Id, const AllocRecord &Record,
               uint64_t Clock) override {
    LifetimeClass Band = DB.classify(Keys.keyFor(Id));
    if (Recorder)
      Recorder->beginEvent(Clock);
    Addresses[Id] = Allocator.allocate(Record.Size, Band);
    raisePeak(MaxLive, Allocator.liveBytes());
    if (Telemetry) {
      recordOutcome(Record, Band);
      if (Telemetry->Timeline && Telemetry->Timeline->due(Clock)) {
        HeapSample Sample;
        Sample.Clock = Clock;
        Sample.HeapBytes = Allocator.heapBytes();
        Sample.LiveBytes = Allocator.liveBytes();
        Sample.ArenaBytes = Allocator.arenaLiveBytes();
        Sample.FreeBlocks = Allocator.freeBlockCount();
        Telemetry->Timeline->record(Sample);
      }
    }
    if (Recorder)
      recordAudit(Id, Record, Clock, Band);
  }

  void onFree(uint64_t Id, const AllocRecord &, uint64_t Clock) override {
    Allocator.free(Addresses[Id]);
    if (Recorder)
      Recorder->recordFree(Id, Clock);
  }

  void onEnd(uint64_t Clock) override {
    if (Recorder)
      Recorder->finish(Clock);
  }

  uint64_t maxLiveBytes() const { return MaxLive; }

private:
  void recordOutcome(const AllocRecord &Record, LifetimeClass Band) {
    const std::vector<uint64_t> &Thresholds = DB.thresholds();
    bool PredictedBanded = Band < Thresholds.size();
    // A banded prediction is right when the object died within its band's
    // threshold; an unclassified one is a miss when the widest band would
    // have covered the object.
    bool Correct = PredictedBanded
                       ? Record.Lifetime <= Thresholds[Band]
                       : Thresholds.empty() ||
                             Record.Lifetime > Thresholds.back();
    bool ActuallyShort = PredictedBanded ? Correct : !Correct;
    Telemetry->Outcomes.add(PredictedBanded, ActuallyShort);
    Telemetry->PerSite[Record.ChainIndex].add(PredictedBanded, ActuallyShort);
  }

  /// Feeds one allocation into the flight recorder.  The per-object class
  /// threshold reproduces recordOutcome's classification: a banded object is
  /// short within its band's threshold; an unclassified one is short within
  /// the widest band's (so MissedShort counts agree with the sim's).
  void recordAudit(uint64_t Id, const AllocRecord &Record, uint64_t Clock,
                   LifetimeClass Band) {
    const std::vector<uint64_t> &Thresholds = DB.thresholds();
    bool PredictedBanded = Band < Thresholds.size();
    uint64_t ClassThreshold =
        PredictedBanded ? Thresholds[Band]
                        : (Thresholds.empty() ? 0 : Thresholds.back());
    AuditPlacement Placement;
    uint64_t Addr = Addresses[Id];
    uint8_t PlacedBand = Allocator.bandForAddress(Addr);
    if (PlacedBand != MultiArenaAllocator::GeneralBand) {
      Placement.Band = PlacedBand;
      Placement.ArenaIndex = Allocator.arenaIndexFor(PlacedBand, Addr);
      Placement.Generation =
          Allocator.arenaGeneration(PlacedBand, Placement.ArenaIndex);
    }
    Recorder->recordAlloc(Id, Clock, Record.ChainIndex, Record.Size,
                          PredictedBanded, ClassThreshold, Placement);
  }

  MultiArenaAllocator &Allocator;
  const ClassDatabase &DB;
  SiteKeyCache Keys;
  SimTelemetry *Telemetry;
  FlightRecorder *Recorder;
  std::vector<uint64_t> Addresses;
  uint64_t MaxLive = 0;
};

} // namespace

MultiArenaSimResult
lifepred::simulateMultiArena(const AllocationTrace &Trace,
                             const ClassDatabase &DB,
                             MultiArenaAllocator::Config Config,
                             SimTelemetry *Telemetry) {
  MultiArenaAllocator Allocator(Config);
  if (Telemetry && Telemetry->Registry)
    Allocator.attachTelemetry(*Telemetry->Registry, "multiarena.");
  if (Telemetry && Telemetry->Recorder) {
    for (size_t Band = 0; Band < Allocator.bands(); ++Band)
      Telemetry->Recorder->setArenaGeometry(
          static_cast<uint8_t>(Band),
          Allocator.bandArenaBytes(static_cast<uint8_t>(Band)));
    Allocator.attachLifecycle(Telemetry->Recorder);
  }
  MultiArenaConsumer Consumer(Allocator, Trace, DB, Telemetry);
  replayTrace(Trace, Consumer);
  if (Telemetry && Telemetry->Registry) {
    Allocator.exportTelemetry(*Telemetry->Registry, "multiarena.");
    Telemetry->Outcomes.exportTelemetry(*Telemetry->Registry,
                                        "multiarena.pred.");
    raisePeak(Telemetry->Registry->gauge("multiarena.pred.sites"),
              Telemetry->PerSite.size());
  }

  MultiArenaSimResult Result;
  Result.MaxHeapBytes = Allocator.maxHeapBytes();
  Result.MaxLiveBytes = Consumer.maxLiveBytes();
  for (size_t Band = 0; Band < Allocator.bands(); ++Band)
    Result.PerBand.push_back(Allocator.bandCounters(Band));
  Result.GeneralAllocs = Allocator.generalAllocs();
  Result.GeneralBytes = Allocator.generalBytes();
  Result.General = Allocator.general().counters();
  return Result;
}
