//===- support/AtomicBitmapFreeList.h - Lock-free block bitmap --*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent generalization of support/BitmapFreeList.h: one size
/// class, one bit per block, but the words are atomic so the class can be
/// shared between one *owner* thread (the shard's worker, which allocates)
/// and any number of *remote* threads returning blocks (cross-shard frees
/// in the serving engine's eager mode).  This is the btmalloc
/// compare-and-set bitmap idiom:
///
///   - pop() — owner only — scans for the lowest set bit and claims it
///     with a CAS; a lost race (a remote push landed in the same word
///     between load and CAS) retries the word and is counted, so the
///     bench can report CAS contention.
///   - push() — any thread — is one fetch_or (the previous value doubles
///     as the double-free check), a fetch_add on the free count, and a
///     CAS-min on the scan cursor.  Wait-free except the cursor hint.
///
/// Serial conformance: driven from a single thread, pop() returns exactly
/// BitmapFreeList's lowest-free-address sequence (asserted by
/// tests/serve_test.cpp), so a shard built on this class mirrors
/// BsdAllocator's FreeListKind::Bitmap placement bit for bit in the
/// deterministic channel mode.
///
/// Cursor discipline: the cursor is a *hint* — no set bit lies below it
/// only in quiescent states.  pop() therefore restarts its scan from word
/// zero whenever it runs off the end while the free count says blocks
/// exist (a remote push below the cursor raced the claim).  Progress: a
/// pusher sets the bit *before* incrementing FreeCount, so once the owner
/// observes FreeCount > 0 with an acquire load, a set bit is visible.
///
/// Word storage is published once: the owner allocates the full word array
/// for MaxExtents on its first addExtent() and release-stores the pointer;
/// remote pushers acquire-load it.  A remote thread can only free an
/// address that was allocated, which post-dates the publication, so the
/// pointer is never null when a remote push dereferences it.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SUPPORT_ATOMICBITMAPFREELIST_H
#define LIFEPRED_SUPPORT_ATOMICBITMAPFREELIST_H

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>

namespace lifepred {

/// Lock-free bitmap free list of one size class.  Geometry (power-of-two
/// block size and blocks per extent) matches BitmapFreeList; capacity is
/// bounded by MaxExtents so the word array can be published once instead
/// of being resized under concurrent access.
class AtomicBitmapFreeList {
public:
  AtomicBitmapFreeList() = default;
  AtomicBitmapFreeList(const AtomicBitmapFreeList &) = delete;
  AtomicBitmapFreeList &operator=(const AtomicBitmapFreeList &) = delete;

  /// Configures the class geometry.  Must be called (once) before use,
  /// before any concurrent access.  \p MaxExtents bounds addExtent calls;
  /// the word array is sized for it on first use.
  void configure(uint64_t BlockBytes, uint64_t BlocksPerExtent,
                 uint64_t MaxExtents) {
    assert(ExtentCount.load(std::memory_order_relaxed) == 0 &&
           "configure after extents were added");
    assert(std::has_single_bit(BlockBytes) &&
           std::has_single_bit(BlocksPerExtent) &&
           "class geometry must be a power of two");
    assert(MaxExtents > 0 && "need room for at least one extent");
    this->BlockBytes = BlockBytes;
    PerExtent = BlocksPerExtent;
    this->MaxExtents = MaxExtents;
    BlockShift = static_cast<unsigned>(std::countr_zero(BlockBytes));
    PerExtentShift = static_cast<unsigned>(std::countr_zero(BlocksPerExtent));
  }

  /// True when no block is free.  Acquire: pairs with push()'s release
  /// increment, so a true->false transition makes the pushed bit visible
  /// to the subsequent pop() scan.
  bool empty() const {
    return FreeCount.load(std::memory_order_acquire) == 0;
  }

  uint64_t freeCount() const {
    return FreeCount.load(std::memory_order_acquire);
  }

  uint64_t blockCount() const {
    return ExtentCount.load(std::memory_order_acquire) << PerExtentShift;
  }

  uint64_t extentCount() const {
    return ExtentCount.load(std::memory_order_acquire);
  }

  /// Registers a freshly carved extent at \p Base; all of its blocks start
  /// free.  Owner thread only; bases must arrive in increasing address
  /// order (the simulated heap only grows).
  void addExtent(uint64_t Base) {
    assert(PerExtent != 0 && "configure() not called");
    uint64_t Extent = ExtentCount.load(std::memory_order_relaxed);
    assert(Extent < MaxExtents && "size class exceeded MaxExtents");
    std::atomic<uint64_t> *W = Words.load(std::memory_order_relaxed);
    if (!W) {
      // First extent: allocate the full zero-initialized word array and
      // the extent-base table, then publish.  Remote pushers acquire-load
      // the pointer; the bases they binary-search are covered by the same
      // release (written before the store below).
      uint64_t WordCapacity = ((MaxExtents << PerExtentShift) + 63) / 64;
      WordStore.reset(new std::atomic<uint64_t>[WordCapacity]());
      BaseStore.reset(new uint64_t[MaxExtents]());
      W = WordStore.get();
      BaseStore[0] = Base;
      Words.store(W, std::memory_order_release);
    } else {
      assert(BaseStore[Extent - 1] < Base &&
             "extents must arrive in address order");
      BaseStore[Extent] = Base;
    }
    uint64_t First = Extent << PerExtentShift;
    uint64_t Last = First + PerExtent; // Exclusive.
    // Set the extent's bits.  Sub-word extents (block >= page) share words
    // with neighbouring extents, so fetch_or rather than plain stores;
    // remote pushers may be flipping other bits of the same word.
    for (uint64_t Bit = First; Bit < Last;) {
      uint64_t WordIndex = Bit >> 6;
      unsigned Low = static_cast<unsigned>(Bit & 63);
      uint64_t Span = std::min<uint64_t>(64 - Low, Last - Bit);
      uint64_t Mask = Span == 64 ? ~uint64_t(0)
                                 : (((uint64_t(1) << Span) - 1) << Low);
      W[WordIndex].fetch_or(Mask, std::memory_order_relaxed);
      Bit += Span;
    }
    // Publish the extent before the count: a remote bitFor() that sees
    // ExtentCount == Extent + 1 (acquire) must see BaseStore[Extent].
    ExtentCount.store(Extent + 1, std::memory_order_release);
    cursorMin(First >> 6);
    FreeCount.fetch_add(PerExtent, std::memory_order_release);
  }

  /// Claims and returns the lowest free address the scan finds.  Owner
  /// thread only; precondition: !empty() (the acquire there makes the
  /// corresponding bit visible).  \p CasRetries accumulates lost CAS races
  /// against concurrent remote pushes into the same word.
  uint64_t pop(uint64_t &CasRetries) {
    assert(FreeCount.load(std::memory_order_relaxed) != 0 &&
           "pop from an empty class");
    std::atomic<uint64_t> *W = Words.load(std::memory_order_relaxed);
    uint64_t WordCount = (blockCount() + 63) / 64;
    uint64_t Index = Cursor.load(std::memory_order_relaxed);
    for (;;) {
      if (Index >= WordCount) {
        // Stale cursor: a remote push landed below it.  Restart; the
        // FreeCount precondition guarantees a set bit exists.
        Index = 0;
        continue;
      }
      uint64_t Word = W[Index].load(std::memory_order_acquire);
      if (Word == 0) {
        ++Index;
        continue;
      }
      unsigned BitInWord = static_cast<unsigned>(std::countr_zero(Word));
      if (W[Index].compare_exchange_weak(Word, Word & (Word - 1),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        FreeCount.fetch_sub(1, std::memory_order_relaxed);
        // Heuristic cursor advance; remote pushes CAS-min it back down.
        Cursor.store(Index, std::memory_order_relaxed);
        uint64_t Bit = (Index << 6) | BitInWord;
        return BaseStore[Bit >> PerExtentShift] +
               ((Bit & (PerExtent - 1)) << BlockShift);
      }
      // Lost the word to a concurrent remote push (only pushes mutate
      // words besides the owner); the reloaded value has at least as many
      // set bits, so retry the same word.
      ++CasRetries;
    }
  }

  /// Releases \p Addr, which must be a block of this class.  Any thread.
  void push(uint64_t Addr) {
    uint64_t Bit = bitFor(Addr);
    std::atomic<uint64_t> *W = Words.load(std::memory_order_acquire);
    assert(W && "push before any extent was carved");
    uint64_t Prev =
        W[Bit >> 6].fetch_or(uint64_t(1) << (Bit & 63),
                             std::memory_order_release);
    (void)Prev;
    assert(!(Prev & (uint64_t(1) << (Bit & 63))) && "block freed twice");
    cursorMin(Bit >> 6);
    // Count after the bit: an owner that observes the count sees the bit.
    FreeCount.fetch_add(1, std::memory_order_release);
  }

  /// Invokes \p F with the address of every free block.  Quiescent use
  /// only (no concurrent pop/push): telemetry span walks at barriers.
  template <typename FnT> void forEachFree(FnT &&F) const {
    const std::atomic<uint64_t> *W = Words.load(std::memory_order_acquire);
    uint64_t Blocks = blockCount();
    for (uint64_t Bit = 0; Bit < Blocks; ++Bit)
      if (W[Bit >> 6].load(std::memory_order_relaxed) &
          (uint64_t(1) << (Bit & 63)))
        F(BaseStore[Bit >> PerExtentShift] +
          ((Bit & (PerExtent - 1)) << BlockShift));
  }

  /// Invokes \p F with the address of every allocated block — the bitmap
  /// complement of forEachFree.  Quiescent use only.
  template <typename FnT> void forEachLive(FnT &&F) const {
    const std::atomic<uint64_t> *W = Words.load(std::memory_order_acquire);
    uint64_t Blocks = blockCount();
    for (uint64_t Bit = 0; Bit < Blocks; ++Bit)
      if (!(W[Bit >> 6].load(std::memory_order_relaxed) &
            (uint64_t(1) << (Bit & 63))))
        F(BaseStore[Bit >> PerExtentShift] +
          ((Bit & (PerExtent - 1)) << BlockShift));
  }

private:
  void cursorMin(uint64_t WordIndex) {
    uint64_t Current = Cursor.load(std::memory_order_relaxed);
    while (WordIndex < Current &&
           !Cursor.compare_exchange_weak(Current, WordIndex,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }

  uint64_t bitFor(uint64_t Addr) const {
    // Binary search over the published extent bases.  No one-entry cache
    // here (BitmapFreeList's is a data race when pushes are concurrent);
    // extent counts are small and the search is log2 of them.
    uint64_t Count = ExtentCount.load(std::memory_order_acquire);
    assert(Count != 0 && "push before any extent was carved");
    const uint64_t *Bases = BaseStore.get();
    const uint64_t *End = Bases + Count;
    const uint64_t *It = std::upper_bound(Bases, End, Addr);
    assert(It != Bases && "address below every extent");
    uint64_t Extent = static_cast<uint64_t>(It - Bases) - 1;
    uint64_t Offset = Addr - Bases[Extent];
    assert(Offset < (PerExtent << BlockShift) &&
           (Offset & (BlockBytes - 1)) == 0 &&
           "address is not a block of this class");
    return (Extent << PerExtentShift) + (Offset >> BlockShift);
  }

  uint64_t BlockBytes = 0;
  uint64_t PerExtent = 0;
  uint64_t MaxExtents = 0;
  unsigned BlockShift = 0;
  unsigned PerExtentShift = 0;
  /// Owned storage; Words below is the published view of WordStore.
  std::unique_ptr<std::atomic<uint64_t>[]> WordStore;
  std::unique_ptr<uint64_t[]> BaseStore;
  std::atomic<std::atomic<uint64_t> *> Words{nullptr};
  std::atomic<uint64_t> ExtentCount{0};
  std::atomic<uint64_t> FreeCount{0};
  std::atomic<uint64_t> Cursor{0}; ///< Scan hint: lowest word to try first.
};

} // namespace lifepred

#endif // LIFEPRED_SUPPORT_ATOMICBITMAPFREELIST_H
