//===- support/CommandLine.cpp - Tiny flag parser --------------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include <cstdlib>

using namespace lifepred;

CommandLine::CommandLine(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(2);
    auto Eq = Body.find('=');
    if (Eq == std::string::npos)
      Flags[Body] = "true";
    else
      Flags[Body.substr(0, Eq)] = Body.substr(Eq + 1);
  }
}

bool CommandLine::has(const std::string &Name) const {
  return Flags.count(Name) != 0;
}

std::string CommandLine::getString(const std::string &Name,
                                   const std::string &Default) const {
  auto It = Flags.find(Name);
  return It == Flags.end() ? Default : It->second;
}

int64_t CommandLine::getInt(const std::string &Name, int64_t Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end())
    return Default;
  char *End = nullptr;
  int64_t Value = std::strtoll(It->second.c_str(), &End, 10);
  return End && *End == '\0' ? Value : Default;
}

double CommandLine::getDouble(const std::string &Name, double Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end())
    return Default;
  char *End = nullptr;
  double Value = std::strtod(It->second.c_str(), &End);
  return End && *End == '\0' ? Value : Default;
}
