//===- support/ThreadPool.h - Minimal task thread pool ----------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool for the bench substrate: table benches
/// fan out per-(program, allocator) simulations and trace generation across
/// cores.  Tasks are submitted as callables and joined through futures, so
/// exceptions thrown inside a task propagate to the caller at get() time
/// and results are consumed in deterministic (submission) order regardless
/// of completion order.
///
/// A pool constructed with one thread runs every task inline at submit
/// time — no worker threads, strictly serial execution — which keeps
/// `--jobs=1` bit-for-bit reproducible and easy to debug or profile.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SUPPORT_THREADPOOL_H
#define LIFEPRED_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace lifepred {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
public:
  /// Creates a pool with \p Threads workers (minimum 1).  One thread means
  /// inline serial execution (no workers are spawned).
  explicit ThreadPool(unsigned Threads);

  /// Joins all workers.  Pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of threads executing tasks (1 = inline serial mode).
  unsigned threadCount() const { return Threads; }

  /// A sensible default worker count for benches: the hardware concurrency,
  /// or 1 when it cannot be determined.
  static unsigned defaultThreadCount();

  /// Stable index of the calling thread within the pool that owns it:
  /// worker I of an N-thread pool always returns I in [0, N).  Threads not
  /// owned by any pool — including the caller in inline serial mode —
  /// return 0, so "index 0" is the serial identity everywhere.  The serving
  /// engine keys per-worker contention buffers and remote-free node pools
  /// off this; it is thread_local, so nested pools each see their own
  /// owner's index.
  static unsigned currentWorkerIndex();

  /// Submits \p Fn for execution; the returned future yields its result and
  /// rethrows any exception it raised.
  template <typename Fn>
  auto submit(Fn &&F) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    auto Task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(F));
    std::future<Result> Future = Task->get_future();
    if (Threads <= 1)
      (*Task)(); // Inline serial mode: run now, in submission order.
    else
      enqueue([Task] { (*Task)(); });
    return Future;
  }

private:
  void enqueue(std::function<void()> Task);
  void workerLoop();

  unsigned Threads;
  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  bool Stopping = false;
};

/// Runs Fn(Index) for every Index in [0, Count) on \p Pool and joins all of
/// them before returning (a parallel-for with a full barrier).  If any task
/// threw, the exception of the lowest-indexed failing task is rethrown —
/// deterministically, after every task has finished.
template <typename Fn>
void parallelForIndex(ThreadPool &Pool, size_t Count, Fn &&F) {
  std::vector<std::future<void>> Futures;
  Futures.reserve(Count);
  for (size_t Index = 0; Index < Count; ++Index)
    Futures.push_back(Pool.submit([&F, Index] { F(Index); }));
  // First pass waits on everything so no task is still touching shared
  // state when an exception unwinds; second pass rethrows in index order.
  for (std::future<void> &Future : Futures)
    Future.wait();
  for (std::future<void> &Future : Futures)
    Future.get();
}

} // namespace lifepred

#endif // LIFEPRED_SUPPORT_THREADPOOL_H
