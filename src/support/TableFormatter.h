//===- support/TableFormatter.h - Aligned text tables -----------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds aligned, paper-style text tables for the bench harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SUPPORT_TABLEFORMATTER_H
#define LIFEPRED_SUPPORT_TABLEFORMATTER_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace lifepred {

/// Accumulates rows of cells and prints them with per-column alignment.
///
/// Numeric cells are right-aligned, text cells left-aligned.  The bench
/// binaries use this to print rows in the same layout as the paper's tables
/// so the output can be compared side-by-side with the published numbers.
class TableFormatter {
public:
  /// Creates a table with the given column \p Headers.
  explicit TableFormatter(std::vector<std::string> Headers);

  /// Starts a new row; subsequent add* calls fill it left to right.
  void beginRow();

  /// Appends a text cell (left-aligned).
  void addCell(std::string Text);

  /// Appends an integer cell (right-aligned, thousands separators).
  void addInt(int64_t Value);

  /// Appends a floating-point cell with \p Precision fraction digits.
  void addReal(double Value, int Precision = 1);

  /// Appends a percentage cell formatted as e.g. "42.0".
  void addPercent(double Value, int Precision = 1);

  /// Renders the table to \p OS, including the header and a separator rule.
  void print(std::ostream &OS) const;

  /// Formats \p Value with thousands separators ("1,234,567").
  static std::string withThousands(int64_t Value);

private:
  struct Cell {
    std::string Text;
    bool RightAlign = false;
  };

  std::vector<std::string> Headers;
  std::vector<std::vector<Cell>> Rows;
};

} // namespace lifepred

#endif // LIFEPRED_SUPPORT_TABLEFORMATTER_H
