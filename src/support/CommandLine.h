//===- support/CommandLine.h - Tiny flag parser -----------------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal "--name=value" flag parser for the examples and bench binaries.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SUPPORT_COMMANDLINE_H
#define LIFEPRED_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lifepred {

/// Parses flags of the form "--name=value" or bare "--name" (boolean true).
/// Non-flag arguments are collected as positional arguments in order.
class CommandLine {
public:
  /// Parses \p Argc / \p Argv, skipping argv[0].
  CommandLine(int Argc, const char *const *Argv);

  /// Returns true if \p Name was passed as a flag.
  bool has(const std::string &Name) const;

  /// Returns the string value of \p Name, or \p Default if absent.
  std::string getString(const std::string &Name,
                        const std::string &Default) const;

  /// Returns the integer value of \p Name, or \p Default if absent or
  /// unparsable.
  int64_t getInt(const std::string &Name, int64_t Default) const;

  /// Returns the double value of \p Name, or \p Default if absent or
  /// unparsable.
  double getDouble(const std::string &Name, double Default) const;

  /// Returns positional (non-flag) arguments in order.
  const std::vector<std::string> &positional() const { return Positional; }

private:
  std::map<std::string, std::string> Flags;
  std::vector<std::string> Positional;
};

} // namespace lifepred

#endif // LIFEPRED_SUPPORT_COMMANDLINE_H
