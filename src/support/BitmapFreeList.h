//===- support/BitmapFreeList.h - Bitmap block free list --------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-block free list backed by a bitmap, the btmalloc bitmap-scan
/// idiom adapted to the simulator: one size class owns a growing set of
/// equal-sized extents, each carved into equal blocks, and one bit per
/// block says whether it is free.  pop() returns the *lowest free
/// address* — find-first-set from a cursor — instead of the LIFO stack's
/// most-recently-freed block, trading the stack's locality for O(1) space
/// per block (1 bit vs 8 bytes) and branch-lean batched replay.
///
/// Address <-> bit mapping: extents are appended in allocation order, and
/// the simulated heap only grows, so extent bases are strictly increasing
/// and bit order equals address order.  Mapping an address back to its bit
/// is a binary search over the extent bases plus a shift — no hash map.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SUPPORT_BITMAPFREELIST_H
#define LIFEPRED_SUPPORT_BITMAPFREELIST_H

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace lifepred {

/// Bitmap free list of one size class.  Blocks are BlockBytes apart;
/// every extent contributes exactly BlocksPerExtent of them.
class BitmapFreeList {
public:
  BitmapFreeList() = default;

  /// Configures the class geometry.  Must be called (once) before use.
  /// Both quantities must be powers of two (Kingsley classes always are),
  /// which turns every address <-> bit conversion into a shift.
  void configure(uint64_t BlockBytes, uint64_t BlocksPerExtent) {
    assert(Blocks == 0 && "configure after blocks were added");
    assert(std::has_single_bit(BlockBytes) &&
           std::has_single_bit(BlocksPerExtent) &&
           "class geometry must be a power of two");
    this->BlockBytes = BlockBytes;
    this->PerExtent = BlocksPerExtent;
    BlockShift = std::countr_zero(BlockBytes);
    PerExtentShift = std::countr_zero(BlocksPerExtent);
  }

  bool empty() const { return FreeCount == 0; }
  uint64_t freeCount() const { return FreeCount; }
  uint64_t blockCount() const { return Blocks; }

  /// Registers a freshly carved extent at \p Base; all of its blocks start
  /// free.  Bases must arrive in increasing address order (the simulated
  /// heap only grows).
  void addExtent(uint64_t Base) {
    assert(PerExtent != 0 && "configure() not called");
    assert((ExtentBases.empty() || ExtentBases.back() < Base) &&
           "extents must arrive in address order");
    ExtentBases.push_back(Base);
    uint64_t First = Blocks;
    Blocks += PerExtent;
    Words.resize((Blocks + 63) / 64, 0);
    for (uint64_t Bit = First; Bit < Blocks; ++Bit)
      Words[Bit >> 6] |= uint64_t(1) << (Bit & 63);
    FreeCount += PerExtent;
    Cursor = std::min<uint64_t>(Cursor, First >> 6);
  }

  /// Claims and returns the lowest free address.  Precondition: !empty().
  uint64_t pop() {
    assert(FreeCount != 0 && "pop from an empty class");
    while (Words[Cursor] == 0)
      ++Cursor;
    uint64_t Word = Words[Cursor];
    unsigned BitInWord = std::countr_zero(Word);
    Words[Cursor] = Word & (Word - 1);
    --FreeCount;
    uint64_t Bit = (uint64_t(Cursor) << 6) | BitInWord;
    return ExtentBases[Bit >> PerExtentShift] +
           ((Bit & (PerExtent - 1)) << BlockShift);
  }

  /// Releases \p Addr, which must be a block of this class.
  void push(uint64_t Addr) {
    uint64_t Bit = bitFor(Addr);
    assert(!(Words[Bit >> 6] & (uint64_t(1) << (Bit & 63))) &&
           "block freed twice");
    Words[Bit >> 6] |= uint64_t(1) << (Bit & 63);
    ++FreeCount;
    Cursor = std::min<uint64_t>(Cursor, Bit >> 6);
  }

  /// True when \p Addr lies on a block boundary of one of our extents.
  bool owns(uint64_t Addr) const {
    if (ExtentBases.empty())
      return false;
    auto It = std::upper_bound(ExtentBases.begin(), ExtentBases.end(), Addr);
    if (It == ExtentBases.begin())
      return false;
    uint64_t Offset = Addr - *std::prev(It);
    return Offset < PerExtent * BlockBytes && Offset % BlockBytes == 0;
  }

  /// Invokes \p F with the address of every free block (audit support).
  template <typename FnT> void forEachFree(FnT &&F) const {
    for (uint64_t Bit = 0; Bit < Blocks; ++Bit)
      if (Words[Bit >> 6] & (uint64_t(1) << (Bit & 63)))
        F(ExtentBases[Bit / PerExtent] + (Bit % PerExtent) * BlockBytes);
  }

  /// Invokes \p F with the address of every allocated block — the bitmap
  /// complement of forEachFree (heatmap/observatory support).
  template <typename FnT> void forEachLive(FnT &&F) const {
    for (uint64_t Bit = 0; Bit < Blocks; ++Bit)
      if (!(Words[Bit >> 6] & (uint64_t(1) << (Bit & 63))))
        F(ExtentBases[Bit / PerExtent] + (Bit % PerExtent) * BlockBytes);
  }

private:
  uint64_t bitFor(uint64_t Addr) const {
    // One-entry extent cache: replay placement is lowest-address-first, so
    // consecutive frees overwhelmingly land in the same extent and the
    // binary search is the cold path.
    uint64_t Offset = Addr - ExtentBases[CachedExtent]; // Wraps if below.
    if (Offset >= (PerExtent << BlockShift)) {
      auto It = std::upper_bound(ExtentBases.begin(), ExtentBases.end(), Addr);
      assert(It != ExtentBases.begin() && "address below every extent");
      CachedExtent = (It - ExtentBases.begin()) - 1;
      Offset = Addr - ExtentBases[CachedExtent];
    }
    assert(Offset < (PerExtent << BlockShift) && Offset % BlockBytes == 0 &&
           "address is not a block of this class");
    return (CachedExtent << PerExtentShift) + (Offset >> BlockShift);
  }

  uint64_t BlockBytes = 0;
  uint64_t PerExtent = 0;
  unsigned BlockShift = 0;
  unsigned PerExtentShift = 0;
  mutable uint64_t CachedExtent = 0;
  std::vector<uint64_t> ExtentBases;
  std::vector<uint64_t> Words;
  uint64_t Cursor = 0;   ///< First word that may contain a set bit.
  uint64_t FreeCount = 0;
  uint64_t Blocks = 0;
};

} // namespace lifepred

#endif // LIFEPRED_SUPPORT_BITMAPFREELIST_H
