//===- support/Json.h - Minimal JSON value and parser -----------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON document model and recursive-descent parser, enough for the
/// telemetry tooling: bench_compare reads two BENCH_*.json reports and the
/// telemetry tests validate TraceEventWriter output.  Numbers are held as
/// doubles, which represents the reports' counters exactly up to 2^53 —
/// far beyond any counter a bench run produces.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SUPPORT_JSON_H
#define LIFEPRED_SUPPORT_JSON_H

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lifepred {

/// One JSON value; objects preserve member order.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }

  bool boolean() const { return B; }
  double number() const { return Num; }
  const std::string &string() const { return Str; }
  const std::vector<JsonValue> &array() const { return Arr; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Obj;
  }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue *find(std::string_view Name) const;

  /// Convenience: the numeric member \p Name, or \p Default.
  double numberOr(std::string_view Name, double Default) const;

  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool Value);
  static JsonValue makeNumber(double Value);
  static JsonValue makeString(std::string Value);
  static JsonValue makeArray(std::vector<JsonValue> Values);
  static JsonValue
  makeObject(std::vector<std::pair<std::string, JsonValue>> Members);

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;
};

/// Parses \p Text as one JSON document (with optional surrounding
/// whitespace); std::nullopt on any syntax error or trailing garbage.
std::optional<JsonValue> parseJson(std::string_view Text);

/// Appends \p S to \p Out with JSON string escaping (", \, and control
/// characters).  Shared by every JSON emitter in the project.
void appendJsonEscaped(std::string &Out, std::string_view S);

} // namespace lifepred

#endif // LIFEPRED_SUPPORT_JSON_H
