//===- support/ThreadPool.cpp - Minimal task thread pool -------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace lifepred;

namespace {
/// Index of this thread within the pool that spawned it; 0 on threads no
/// pool owns (the main thread, inline serial mode).
thread_local unsigned PoolWorkerIndex = 0;
} // namespace

ThreadPool::ThreadPool(unsigned Threads) : Threads(Threads < 1 ? 1 : Threads) {
  if (this->Threads <= 1)
    return; // Inline serial mode: submit() runs tasks directly.
  Workers.reserve(this->Threads);
  for (unsigned I = 0; I < this->Threads; ++I)
    Workers.emplace_back([this, I] {
      PoolWorkerIndex = I;
      workerLoop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

unsigned ThreadPool::defaultThreadCount() {
  unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware == 0 ? 1 : Hardware;
}

unsigned ThreadPool::currentWorkerIndex() { return PoolWorkerIndex; }

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  WakeWorkers.notify_one();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorkers.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task(); // packaged_task captures any exception into its future.
  }
}
