//===- support/MathExtras.h - Arithmetic helpers ----------------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small arithmetic helpers (alignment, rounding, power-of-two tests).
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SUPPORT_MATHEXTRAS_H
#define LIFEPRED_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstdint>

namespace lifepred {

/// Returns true if \p Value is a power of two (0 is not).
constexpr bool isPowerOf2(uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// Rounds \p Value up to the next multiple of \p Align (Align > 0).
constexpr uint64_t alignTo(uint64_t Value, uint64_t Align) {
  return Align == 0 ? Value : ((Value + Align - 1) / Align) * Align;
}

/// Rounds \p Value down to the previous multiple of \p Align (Align > 0).
constexpr uint64_t alignDown(uint64_t Value, uint64_t Align) {
  return Align == 0 ? Value : (Value / Align) * Align;
}

/// Returns ceil(log2(Value)) for Value >= 1.
constexpr unsigned log2Ceil(uint64_t Value) {
  unsigned Bits = 0;
  uint64_t Pow = 1;
  while (Pow < Value) {
    Pow <<= 1;
    ++Bits;
  }
  return Bits;
}

/// Returns the smallest power of two >= \p Value (Value >= 1).
constexpr uint64_t nextPowerOf2(uint64_t Value) {
  return uint64_t(1) << log2Ceil(Value);
}

/// Returns Numerator/Denominator as a percentage, 0 when the denominator
/// is zero (convenient for report tables).
inline double percent(double Numerator, double Denominator) {
  return Denominator == 0 ? 0.0 : 100.0 * Numerator / Denominator;
}

} // namespace lifepred

#endif // LIFEPRED_SUPPORT_MATHEXTRAS_H
