//===- support/Json.cpp - Minimal JSON value and parser --------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace lifepred;

const JsonValue *JsonValue::find(std::string_view Name) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Key, Value] : Obj)
    if (Key == Name)
      return &Value;
  return nullptr;
}

double JsonValue::numberOr(std::string_view Name, double Default) const {
  const JsonValue *Member = find(Name);
  return Member && Member->isNumber() ? Member->number() : Default;
}

JsonValue JsonValue::makeBool(bool Value) {
  JsonValue V;
  V.K = Kind::Bool;
  V.B = Value;
  return V;
}

JsonValue JsonValue::makeNumber(double Value) {
  JsonValue V;
  V.K = Kind::Number;
  V.Num = Value;
  return V;
}

JsonValue JsonValue::makeString(std::string Value) {
  JsonValue V;
  V.K = Kind::String;
  V.Str = std::move(Value);
  return V;
}

JsonValue JsonValue::makeArray(std::vector<JsonValue> Values) {
  JsonValue V;
  V.K = Kind::Array;
  V.Arr = std::move(Values);
  return V;
}

JsonValue
JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> Members) {
  JsonValue V;
  V.K = Kind::Object;
  V.Obj = std::move(Members);
  return V;
}

void lifepred::appendJsonEscaped(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  std::optional<JsonValue> parseDocument() {
    std::optional<JsonValue> Value = parseValue();
    if (!Value)
      return std::nullopt;
    skipWhitespace();
    if (Pos != Text.size()) // Trailing garbage.
      return std::nullopt;
    return Value;
  }

private:
  void skipWhitespace() {
    while (Pos < Text.size() && std::isspace(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWhitespace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeLiteral(std::string_view Literal) {
    if (Text.substr(Pos, Literal.size()) != Literal)
      return false;
    Pos += Literal.size();
    return true;
  }

  std::optional<std::string> parseString() {
    if (!consume('"'))
      return std::nullopt;
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return std::nullopt;
      char Escape = Text[Pos++];
      switch (Escape) {
      case '"':
      case '\\':
      case '/':
        Out += Escape;
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return std::nullopt;
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char Hex = Text[Pos++];
          Code <<= 4;
          if (Hex >= '0' && Hex <= '9')
            Code |= static_cast<unsigned>(Hex - '0');
          else if (Hex >= 'a' && Hex <= 'f')
            Code |= static_cast<unsigned>(Hex - 'a' + 10);
          else if (Hex >= 'A' && Hex <= 'F')
            Code |= static_cast<unsigned>(Hex - 'A' + 10);
          else
            return std::nullopt;
        }
        // The reports are ASCII; replace non-ASCII escapes with '?' rather
        // than carrying a UTF-8 encoder.
        Out += Code < 0x80 ? static_cast<char>(Code) : '?';
        break;
      }
      default:
        return std::nullopt;
      }
    }
    return std::nullopt; // Unterminated string.
  }

  std::optional<JsonValue> parseValue() {
    skipWhitespace();
    if (Pos >= Text.size())
      return std::nullopt;
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"') {
      std::optional<std::string> S = parseString();
      if (!S)
        return std::nullopt;
      return JsonValue::makeString(std::move(*S));
    }
    if (consumeLiteral("true"))
      return JsonValue::makeBool(true);
    if (consumeLiteral("false"))
      return JsonValue::makeBool(false);
    if (consumeLiteral("null"))
      return JsonValue::makeNull();
    return parseNumber();
  }

  std::optional<JsonValue> parseNumber() {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    bool SawDigit = false;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        SawDigit = true;
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E' || C == '-' || C == '+') {
        ++Pos;
      } else {
        break;
      }
    }
    if (!SawDigit)
      return std::nullopt;
    std::string Token(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double Value = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size())
      return std::nullopt;
    return JsonValue::makeNumber(Value);
  }

  std::optional<JsonValue> parseArray() {
    if (!consume('['))
      return std::nullopt;
    std::vector<JsonValue> Values;
    if (consume(']'))
      return JsonValue::makeArray(std::move(Values));
    for (;;) {
      std::optional<JsonValue> Value = parseValue();
      if (!Value)
        return std::nullopt;
      Values.push_back(std::move(*Value));
      if (consume(']'))
        return JsonValue::makeArray(std::move(Values));
      if (!consume(','))
        return std::nullopt;
    }
  }

  std::optional<JsonValue> parseObject() {
    if (!consume('{'))
      return std::nullopt;
    std::vector<std::pair<std::string, JsonValue>> Members;
    if (consume('}'))
      return JsonValue::makeObject(std::move(Members));
    for (;;) {
      skipWhitespace();
      std::optional<std::string> Key = parseString();
      if (!Key || !consume(':'))
        return std::nullopt;
      std::optional<JsonValue> Value = parseValue();
      if (!Value)
        return std::nullopt;
      Members.emplace_back(std::move(*Key), std::move(*Value));
      if (consume('}'))
        return JsonValue::makeObject(std::move(Members));
      if (!consume(','))
        return std::nullopt;
    }
  }

  std::string_view Text;
  size_t Pos = 0;
};

} // namespace

std::optional<JsonValue> lifepred::parseJson(std::string_view Text) {
  return Parser(Text).parseDocument();
}
