//===- support/Hashing.h - Hashing utilities --------------------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 64-bit hashing helpers used to encode allocation sites and call-chains.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SUPPORT_HASHING_H
#define LIFEPRED_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>

namespace lifepred {

/// FNV-1a offset basis and prime for 64-bit hashing.
inline constexpr uint64_t FnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t FnvPrime = 0x100000001b3ULL;

/// Hashes \p Size bytes starting at \p Data with FNV-1a.
inline uint64_t hashBytes(const void *Data, size_t Size,
                          uint64_t Seed = FnvOffsetBasis) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t Hash = Seed;
  for (size_t I = 0; I < Size; ++I) {
    Hash ^= Bytes[I];
    Hash *= FnvPrime;
  }
  return Hash;
}

/// Mixes a 64-bit value into an accumulated hash (splitmix64 finalizer).
inline uint64_t hashCombine(uint64_t Hash, uint64_t Value) {
  uint64_t Z = Hash ^ (Value + 0x9e3779b97f4a7c15ULL + (Hash << 6) +
                       (Hash >> 2));
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

} // namespace lifepred

#endif // LIFEPRED_SUPPORT_HASHING_H
