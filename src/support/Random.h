//===- support/Random.h - Deterministic random number generation -*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (xoshiro256**) seeded via splitmix64.
///
/// Every workload generator and property test in the repository draws from
/// this generator so that traces, predictions, and bench tables are exactly
/// reproducible from a seed.  std::mt19937 is avoided because its stream is
/// not guaranteed identical across standard library implementations for the
/// distribution adaptors; we implement the few distributions we need.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SUPPORT_RANDOM_H
#define LIFEPRED_SUPPORT_RANDOM_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace lifepred {

/// Advances a splitmix64 state and returns the next value.  Used for seeding.
inline uint64_t splitMix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Deterministic xoshiro256** generator with convenience distributions.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x5eed) {
    uint64_t S = Seed;
    for (uint64_t &Word : State)
      Word = splitMix64(S);
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns an integer uniformly distributed in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Multiply-shift rejection-free mapping (Lemire); the tiny bias is
    // irrelevant for workload generation.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns an integer uniformly distributed in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

  /// Returns a sample from the standard normal distribution (Box-Muller).
  double nextGaussian() {
    // Avoid log(0) by nudging u1 away from zero.
    double U1 = nextDouble();
    if (U1 <= 0.0)
      U1 = 0x1.0p-53;
    double U2 = nextDouble();
    return std::sqrt(-2.0 * std::log(U1)) *
           std::cos(6.283185307179586 * U2);
  }

  /// Samples an index from \p Weights proportionally to the weights.
  /// Weights must be non-negative with a positive sum.
  size_t nextWeighted(const std::vector<double> &Weights) {
    double Total = 0;
    for (double W : Weights)
      Total += W;
    assert(Total > 0 && "weights must have a positive sum");
    double Target = nextDouble() * Total;
    double Acc = 0;
    for (size_t I = 0; I + 1 < Weights.size(); ++I) {
      Acc += Weights[I];
      if (Target < Acc)
        return I;
    }
    return Weights.size() - 1;
  }

  /// Forks an independent generator; the child stream does not overlap the
  /// parent's under any practical draw count.
  Rng fork() { return Rng(next() ^ 0xa02b'dbf7'bb3c'0a7ULL); }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace lifepred

#endif // LIFEPRED_SUPPORT_RANDOM_H
