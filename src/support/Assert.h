//===- support/Assert.h - Assertion helpers ---------------------*- C++ -*-===//
//
// Part of the lifepred project: a reproduction of Barrett & Zorn,
// "Using Lifetime Predictors to Improve Memory Allocation Performance",
// PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion and unreachable-code helpers shared by every lifepred library.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_SUPPORT_ASSERT_H
#define LIFEPRED_SUPPORT_ASSERT_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace lifepred {

/// Reports an internal invariant violation and aborts.
///
/// Used to mark control flow that must never be reached if the program's
/// invariants hold (e.g. a fully covered switch).  Unlike a bare assert this
/// also fires in release builds, since reaching it means later behaviour
/// would be undefined.
[[noreturn]] inline void unreachableInternal(const char *Msg, const char *File,
                                             unsigned Line) {
  std::fprintf(stderr, "%s:%u: unreachable executed: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace lifepred

#define LIFEPRED_UNREACHABLE(Msg)                                             \
  ::lifepred::unreachableInternal(Msg, __FILE__, __LINE__)

#endif // LIFEPRED_SUPPORT_ASSERT_H
