//===- support/TableFormatter.cpp - Aligned text tables -------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TableFormatter.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace lifepred;

TableFormatter::TableFormatter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TableFormatter::beginRow() { Rows.emplace_back(); }

void TableFormatter::addCell(std::string Text) {
  assert(!Rows.empty() && "beginRow must be called before adding cells");
  Rows.back().push_back({std::move(Text), /*RightAlign=*/false});
}

void TableFormatter::addInt(int64_t Value) {
  assert(!Rows.empty() && "beginRow must be called before adding cells");
  Rows.back().push_back({withThousands(Value), /*RightAlign=*/true});
}

void TableFormatter::addReal(double Value, int Precision) {
  assert(!Rows.empty() && "beginRow must be called before adding cells");
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  Rows.back().push_back({Buffer, /*RightAlign=*/true});
}

void TableFormatter::addPercent(double Value, int Precision) {
  addReal(Value, Precision);
}

std::string TableFormatter::withThousands(int64_t Value) {
  bool Negative = Value < 0;
  uint64_t Magnitude =
      Negative ? 0 - static_cast<uint64_t>(Value) : static_cast<uint64_t>(Value);
  std::string Digits = std::to_string(Magnitude);
  std::string Result;
  int Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count != 0 && Count % 3 == 0)
      Result.push_back(',');
    Result.push_back(*It);
    ++Count;
  }
  if (Negative)
    Result.push_back('-');
  return std::string(Result.rbegin(), Result.rend());
}

void TableFormatter::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t I = 0; I < Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size() && I < Widths.size(); ++I)
      if (Row[I].Text.size() > Widths[I])
        Widths[I] = Row[I].Text.size();

  auto PrintPadded = [&](const std::string &Text, size_t Width,
                         bool RightAlign) {
    size_t Pad = Width > Text.size() ? Width - Text.size() : 0;
    if (RightAlign)
      OS << std::string(Pad, ' ') << Text;
    else
      OS << Text << std::string(Pad, ' ');
  };

  for (size_t I = 0; I < Headers.size(); ++I) {
    if (I)
      OS << "  ";
    PrintPadded(Headers[I], Widths[I], /*RightAlign=*/false);
  }
  OS << '\n';

  size_t RuleWidth = 0;
  for (size_t I = 0; I < Widths.size(); ++I)
    RuleWidth += Widths[I] + (I ? 2 : 0);
  OS << std::string(RuleWidth, '-') << '\n';

  for (const auto &Row : Rows) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I)
        OS << "  ";
      PrintPadded(Row[I].Text, I < Widths.size() ? Widths[I] : 0,
                  Row[I].RightAlign);
    }
    OS << '\n';
  }
}
