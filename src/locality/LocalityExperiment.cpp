//===- locality/LocalityExperiment.cpp - Miss-rate comparison --------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "locality/LocalityExperiment.h"

#include "alloc/ArenaAllocator.h"
#include "alloc/FirstFitAllocator.h"
#include "trace/TraceReplayer.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

using namespace lifepred;

namespace {

/// A scheduled reference: (byte clock, object id, access index).
struct Access {
  uint64_t Clock;
  uint64_t Id;
  uint32_t Index;
  bool operator>(const Access &O) const { return Clock > O.Clock; }
};

/// Replays a trace through an allocator and synthesizes the reference
/// stream into a memory-hierarchy sink (CacheSim or PageSim — anything
/// with an access(uint64_t) method).  Each object's references are spread
/// evenly over its lifetime, so accesses to short- and long-lived objects
/// interleave the way a running program's would — that interleaving is
/// what the arena's address segregation improves.
template <typename SinkT>
class LocalityConsumer : public TraceConsumer {
public:
  using AllocFn = uint64_t (*)(void *, uint32_t, bool);
  using FreeFn = void (*)(void *, uint64_t);

  LocalityConsumer(SinkT &Cache, size_t ObjectCount, uint32_t MaxRefs,
                   void *Allocator, AllocFn Alloc, FreeFn Free,
                   const std::vector<bool> &Predicted)
      : Cache(Cache), MaxRefs(MaxRefs), Allocator(Allocator), Alloc(Alloc),
        Free(Free), Predicted(Predicted) {
    Addresses.resize(ObjectCount);
    Sizes.resize(ObjectCount);
    Freed.resize(ObjectCount, 0);
  }

  void onAlloc(uint64_t Id, const AllocRecord &Record,
               uint64_t Clock) override {
    drainAccesses(Clock);
    uint64_t Addr = Alloc(Allocator, Record.Size, Predicted[Id]);
    Addresses[Id] = Addr;
    Sizes[Id] = Record.Size;
    Cache.access(Addr); // The allocation itself touches the object.

    // Spread the object's references evenly across its lifetime (objects
    // that outlive the trace spread over a fixed window).
    uint32_t Count = std::min(std::max(Record.Refs, 1u), MaxRefs);
    uint64_t Span = Record.Lifetime == NeverFreed
                        ? 4 * 1000 * 1000
                        : std::max<uint64_t>(Record.Lifetime, 1);
    for (uint32_t K = 1; K <= Count; ++K)
      Scheduled.push({Clock + Span * K / (Count + 1), Id, K});
  }

  void onFree(uint64_t Id, const AllocRecord &, uint64_t Clock) override {
    drainAccesses(Clock);
    Cache.access(Addresses[Id]); // The free touches the object once.
    Freed[Id] = 1;
    Free(Allocator, Addresses[Id]);
  }

  void onEnd(uint64_t Clock) override { drainAccesses(Clock + 1); }

private:
  void drainAccesses(uint64_t UpTo) {
    while (!Scheduled.empty() && Scheduled.top().Clock < UpTo) {
      Access A = Scheduled.top();
      Scheduled.pop();
      if (Freed[A.Id])
        continue; // The object died before this reference came due.
      // Stride through the object's cache lines (zero-size objects still
      // occupy one addressable byte).
      uint64_t Offset = (static_cast<uint64_t>(A.Index) * 32) %
                        std::max(Sizes[A.Id], 1u);
      Cache.access(Addresses[A.Id] + Offset);
    }
  }

  SinkT &Cache;
  uint32_t MaxRefs;
  void *Allocator;
  AllocFn Alloc;
  FreeFn Free;
  const std::vector<bool> &Predicted;
  std::vector<uint64_t> Addresses;
  std::vector<uint32_t> Sizes;
  std::priority_queue<Access, std::vector<Access>, std::greater<Access>>
      Scheduled;
  std::vector<char> Freed;
};

std::vector<bool> predictAll(const AllocationTrace &Trace,
                             const SiteDatabase &DB) {
  const SiteKeyPolicy &Policy = DB.policy();
  std::vector<uint64_t> ChainParts(Trace.chainCount());
  for (uint32_t I = 0; I < Trace.chainCount(); ++I)
    ChainParts[I] = chainKeyPart(Policy, Trace.chain(I));
  std::vector<bool> Predicted(Trace.size());
  for (size_t I = 0; I < Trace.size(); ++I) {
    const AllocRecord &Record = Trace.records()[I];
    Predicted[I] = DB.contains(
        siteKeyForRecord(Policy, ChainParts[Record.ChainIndex], Record));
  }
  return Predicted;
}

/// Runs the first-fit and arena streams into fresh sinks built by
/// \p MakeSink; returns (first-fit sink, arena sink).
template <typename SinkT, typename MakeSinkT>
std::pair<SinkT, SinkT> runBothStreams(const AllocationTrace &Trace,
                                       const SiteDatabase &DB,
                                       uint32_t MaxRefs,
                                       MakeSinkT MakeSink) {
  std::vector<bool> Predicted = predictAll(Trace, DB);
  SinkT FirstFitSink = MakeSink();
  {
    FirstFitAllocator FF;
    LocalityConsumer<SinkT> Consumer(
        FirstFitSink, Trace.size(), MaxRefs, &FF,
        [](void *A, uint32_t Size, bool) {
          return static_cast<FirstFitAllocator *>(A)->allocate(Size);
        },
        [](void *A, uint64_t Addr) {
          static_cast<FirstFitAllocator *>(A)->free(Addr);
        },
        Predicted);
    replayTrace(Trace, Consumer);
  }
  SinkT ArenaSink = MakeSink();
  {
    ArenaAllocator Arena;
    LocalityConsumer<SinkT> Consumer(
        ArenaSink, Trace.size(), MaxRefs, &Arena,
        [](void *A, uint32_t Size, bool IsShort) {
          return static_cast<ArenaAllocator *>(A)->allocate(Size, IsShort);
        },
        [](void *A, uint64_t Addr) {
          static_cast<ArenaAllocator *>(A)->free(Addr);
        },
        Predicted);
    replayTrace(Trace, Consumer);
  }
  return {std::move(FirstFitSink), std::move(ArenaSink)};
}

} // namespace

LocalityResult lifepred::compareLocality(const AllocationTrace &Trace,
                                         const SiteDatabase &DB,
                                         const LocalityOptions &Options) {
  auto [FF, Arena] = runBothStreams<CacheSim>(
      Trace, DB, Options.MaxRefsPerObject,
      [&Options] { return CacheSim(Options.Cache); });
  LocalityResult Result;
  Result.FirstFitMissPercent = FF.missRatePercent();
  Result.ArenaMissPercent = Arena.missRatePercent();
  Result.Accesses = FF.accesses();
  return Result;
}

PagingResult lifepred::comparePaging(const AllocationTrace &Trace,
                                     const SiteDatabase &DB,
                                     const PagingOptions &Options) {
  auto [FF, Arena] = runBothStreams<PageSim>(
      Trace, DB, Options.MaxRefsPerObject,
      [&Options] { return PageSim(Options.Memory); });
  PagingResult Result;
  Result.FirstFitFaultPercent = FF.faultRatePercent();
  Result.ArenaFaultPercent = Arena.faultRatePercent();
  Result.Accesses = FF.accesses();
  return Result;
}
