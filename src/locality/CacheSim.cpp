//===- locality/CacheSim.cpp - Set-associative cache simulator -------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "locality/CacheSim.h"

#include "support/MathExtras.h"

#include <cassert>

using namespace lifepred;

CacheSim::CacheSim() : CacheSim(Config()) {}

CacheSim::CacheSim(Config Config) : Cfg(Config) {
  assert(isPowerOf2(Cfg.CacheBytes) && isPowerOf2(Cfg.LineBytes) &&
         "cache geometry must be powers of two");
  assert(Cfg.Ways >= 1 && "cache needs at least one way");
  SetCount = static_cast<unsigned>(Cfg.CacheBytes / Cfg.LineBytes / Cfg.Ways);
  assert(SetCount >= 1 && "cache too small for its associativity");
  Lines.resize(static_cast<size_t>(SetCount) * Cfg.Ways);
}

bool CacheSim::access(uint64_t Address) {
  ++Tick;
  uint64_t LineAddr = Address / Cfg.LineBytes;
  unsigned Set = static_cast<unsigned>(LineAddr % SetCount);
  uint64_t Tag = LineAddr / SetCount;
  Line *SetLines = &Lines[static_cast<size_t>(Set) * Cfg.Ways];

  Line *Victim = &SetLines[0];
  for (unsigned Way = 0; Way < Cfg.Ways; ++Way) {
    Line &L = SetLines[Way];
    if (L.Valid && L.Tag == Tag) {
      L.LastUse = Tick;
      ++Hits;
      return true;
    }
    // Prefer an invalid line; otherwise evict the least recently used.
    if (Victim->Valid && (!L.Valid || L.LastUse < Victim->LastUse))
      Victim = &L;
  }

  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->LastUse = Tick;
  ++Misses;
  return false;
}
