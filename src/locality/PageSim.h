//===- locality/PageSim.h - LRU paging simulator ----------------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LRU main-memory paging simulator.  The paper claims arena
/// segregation reduces "the cache and page miss rates"; CacheSim covers
/// the first claim and this covers the second: a fixed budget of resident
/// pages with true LRU replacement, counting faults over the heap
/// reference stream.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_LOCALITY_PAGESIM_H
#define LIFEPRED_LOCALITY_PAGESIM_H

#include <cstdint>
#include <list>
#include <unordered_map>

namespace lifepred {

/// LRU page-residency simulator.
class PageSim {
public:
  /// Geometry: page size and resident-set budget.
  struct Config {
    uint64_t PageBytes = 4096;
    unsigned MemoryPages = 32; ///< A 128 KB resident set by default.
  };

  PageSim();
  explicit PageSim(Config C);

  /// Simulates a reference to \p Address; returns true on a page fault.
  bool access(uint64_t Address);

  uint64_t faults() const { return Faults; }
  uint64_t accesses() const { return Accesses; }

  /// Fault rate in percent.
  double faultRatePercent() const {
    return Accesses == 0 ? 0.0
                         : 100.0 * static_cast<double>(Faults) /
                               static_cast<double>(Accesses);
  }

private:
  Config Cfg;
  /// Resident pages, most recently used at the front.
  std::list<uint64_t> Lru;
  /// Page number -> position in the LRU list.
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> Resident;
  uint64_t Faults = 0;
  uint64_t Accesses = 0;
};

} // namespace lifepred

#endif // LIFEPRED_LOCALITY_PAGESIM_H
