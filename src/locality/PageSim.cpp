//===- locality/PageSim.cpp - LRU paging simulator -------------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//

#include "locality/PageSim.h"

#include "support/MathExtras.h"

#include <cassert>

using namespace lifepred;

PageSim::PageSim() : PageSim(Config()) {}

PageSim::PageSim(Config C) : Cfg(C) {
  assert(isPowerOf2(Cfg.PageBytes) && "page size must be a power of two");
  assert(Cfg.MemoryPages >= 1 && "need at least one resident page");
}

bool PageSim::access(uint64_t Address) {
  ++Accesses;
  uint64_t Page = Address / Cfg.PageBytes;
  auto It = Resident.find(Page);
  if (It != Resident.end()) {
    // Hit: move to the front of the LRU list.
    Lru.splice(Lru.begin(), Lru, It->second);
    return false;
  }
  ++Faults;
  if (Lru.size() >= Cfg.MemoryPages) {
    Resident.erase(Lru.back());
    Lru.pop_back();
  }
  Lru.push_front(Page);
  Resident[Page] = Lru.begin();
  return true;
}
