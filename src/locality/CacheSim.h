//===- locality/CacheSim.h - Set-associative cache simulator ----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small set-associative cache simulator with LRU replacement.  The paper
/// argues (sections 1 and 6) that confining short-lived objects to a 64 KB
/// arena area improves reference locality; the locality ablation bench
/// feeds heap address streams from the first-fit and arena simulations
/// through this cache to quantify the claimed miss-rate effect.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_LOCALITY_CACHESIM_H
#define LIFEPRED_LOCALITY_CACHESIM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lifepred {

/// LRU set-associative cache.
class CacheSim {
public:
  /// Geometry.  Defaults model a 1990s 64 KB direct-mapped-ish data cache
  /// (here 2-way to avoid pathological conflicts).
  struct Config {
    uint64_t CacheBytes = 64 * 1024;
    uint64_t LineBytes = 32;
    unsigned Ways = 2;
  };

  CacheSim();
  explicit CacheSim(Config C);

  /// Simulates a load/store at \p Address; returns true on a hit.
  bool access(uint64_t Address);

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t accesses() const { return Hits + Misses; }

  /// Miss rate in percent.
  double missRatePercent() const {
    uint64_t Total = accesses();
    return Total == 0 ? 0.0
                      : 100.0 * static_cast<double>(Misses) /
                            static_cast<double>(Total);
  }

private:
  struct Line {
    uint64_t Tag = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  Config Cfg;
  unsigned SetCount;
  std::vector<Line> Lines; ///< SetCount * Ways, set-major.
  uint64_t Tick = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace lifepred

#endif // LIFEPRED_LOCALITY_CACHESIM_H
