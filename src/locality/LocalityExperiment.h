//===- locality/LocalityExperiment.h - Miss-rate comparison -----*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the paper's locality claim: replays a trace through the
/// first-fit and the lifetime-predicting arena allocators, synthesizes a
/// heap reference stream (each object is touched in proportion to its
/// modeled reference count, spread over its cache lines), and feeds both
/// address streams through the same cache.  Arena allocation concentrates
/// the short-lived objects' references in a 64 KB window, so its stream
/// should miss less.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_LOCALITY_LOCALITYEXPERIMENT_H
#define LIFEPRED_LOCALITY_LOCALITYEXPERIMENT_H

#include "core/SiteDatabase.h"
#include "locality/CacheSim.h"
#include "locality/PageSim.h"
#include "trace/AllocationTrace.h"

namespace lifepred {

/// Result of one locality comparison.
struct LocalityResult {
  double FirstFitMissPercent = 0;
  double ArenaMissPercent = 0;
  uint64_t Accesses = 0; ///< Same for both streams by construction.
};

/// Options for the synthesized reference stream.
struct LocalityOptions {
  CacheSim::Config Cache;
  /// Cap on synthesized accesses per object (keeps runtime bounded on
  /// reference-heavy traces).
  uint32_t MaxRefsPerObject = 16;
};

/// Runs the comparison for \p Trace, with \p DB driving arena placement.
LocalityResult compareLocality(const AllocationTrace &Trace,
                               const SiteDatabase &DB,
                               const LocalityOptions &Options = {});

/// Result of one paging comparison.
struct PagingResult {
  double FirstFitFaultPercent = 0;
  double ArenaFaultPercent = 0;
  uint64_t Accesses = 0;
};

/// Options for the paging comparison.
struct PagingOptions {
  PageSim::Config Memory;
  uint32_t MaxRefsPerObject = 16;
};

/// Page-fault analogue of compareLocality: the same synthesized reference
/// streams measured against an LRU resident set instead of a cache.
PagingResult comparePaging(const AllocationTrace &Trace,
                           const SiteDatabase &DB,
                           const PagingOptions &Options = {});

} // namespace lifepred

#endif // LIFEPRED_LOCALITY_LOCALITYEXPERIMENT_H
