//===- bench/ablation_size_rounding.cpp - Size-rounding sweep --------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Ablation for section 4.1's site-mapping claim: "by rounding the object
// size to a multiple of four bytes, we found the corresponding sites were
// more likely to map correctly.  Rounding to a larger multiple of two
// reduced the mapping effectiveness because too much size information was
// eliminated."  Sweeps the rounding granularity under true prediction on
// models with size jitter enabled.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Pipeline.h"
#include "support/TableFormatter.h"

#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  if (!Cl.has("scale"))
    Options.Scale = 0.25;
  printBanner("Ablation C", "size-rounding granularity (true prediction)",
              Options);

  // Give every site a little size jitter so cross-run sizes differ by a
  // few bytes — the situation rounding is meant to absorb.
  std::vector<ProgramTraces> All;
  for (ProgramModel Model : allPrograms()) {
    if (!Options.OnlyProgram.empty() && Model.Name != Options.OnlyProgram)
      continue;
    for (SiteSpec &Site : Model.Sites)
      if (Site.SizeJitter == 0)
        Site.SizeJitter = 3;
    All.push_back(makeTraces(Model, Options));
  }

  const uint32_t Roundings[] = {1, 2, 4, 8, 16, 64};
  TableFormatter Table({"Program", "Rounding", "Pred%", "Error%",
                        "SitesUsed"});
  for (const ProgramTraces &Traces : All) {
    bool First = true;
    for (uint32_t Rounding : Roundings) {
      SiteKeyPolicy Policy = SiteKeyPolicy::completeChain(Rounding);
      PipelineResult Result =
          trainAndEvaluate(Traces.Train, Traces.Test, Policy);
      Table.beginRow();
      Table.addCell(First ? Traces.Model.Name : "");
      Table.addInt(Rounding);
      Table.addPercent(Result.Report.predictedShortPercent());
      Table.addPercent(Result.Report.errorPercent(), 2);
      Table.addInt(static_cast<int64_t>(Result.Report.SitesUsed));
      First = false;
    }
  }
  Table.print(std::cout);
  std::printf("\nReading: rounding 1 fragments sites whose sizes wobble "
              "across runs (lower Pred%%); very coarse rounding merges "
              "unlike sites (more error, fewer usable sites).  The paper "
              "settled on 4.\n");
  return 0;
}
