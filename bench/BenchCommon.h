//===- bench/BenchCommon.h - Shared bench harness helpers -------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table-reproduction bench binaries: workload trace
/// generation with common flags (--scale, --seed, --program, --jobs,
/// --json) and printing conventions.  Every bench prints its measured
/// values beside the paper's published numbers so the output reads as a
/// direct comparison.
///
/// Trace generation and per-(program, allocator) simulations fan out over
/// a ThreadPool sized by --jobs; results are stored into index-addressed
/// slots so output order (and with --jobs=1, execution order) is
/// deterministic.  --json=<path> additionally writes the measured values
/// plus wall-clock and events/sec as a machine-readable report.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_BENCH_BENCHCOMMON_H
#define LIFEPRED_BENCH_BENCHCOMMON_H

#include "callchain/FunctionRegistry.h"
#include "support/CommandLine.h"
#include "support/ThreadPool.h"
#include "trace/AllocationTrace.h"
#include "workloads/PaperData.h"
#include "workloads/Programs.h"
#include "workloads/WorkloadRunner.h"

#include <string>
#include <utility>
#include <vector>

namespace lifepred {

/// A program's train and test traces generated under one registry (so
/// FunctionIds agree across the two runs).
struct ProgramTraces {
  ProgramModel Model;
  FunctionRegistry Registry;
  AllocationTrace Train;
  AllocationTrace Test;
};

/// Common bench flags.
struct BenchOptions {
  double Scale = 1.0;
  uint64_t Seed = 0x1993;
  std::string OnlyProgram; ///< Empty = all five.
  unsigned Jobs = 1;       ///< Worker threads; 1 = serial.
  std::string JsonPath;    ///< Empty = no JSON report.

  static BenchOptions fromCommandLine(const CommandLine &Cl);
};

/// Generates traces for every selected program, fanning out one task per
/// program on \p Pool.  Result order matches allPrograms() order
/// regardless of job count.
std::vector<ProgramTraces> makeAllTraces(const BenchOptions &Options,
                                         ThreadPool &Pool);

/// Serial convenience overload.
std::vector<ProgramTraces> makeAllTraces(const BenchOptions &Options);

/// Generates traces for one model.
ProgramTraces makeTraces(const ProgramModel &Model,
                         const BenchOptions &Options);

/// Prints the standard bench banner naming the table being reproduced.
void printBanner(const char *Table, const char *Caption,
                 const BenchOptions &Options);

/// Machine-readable bench report, written when --json is set.
///
/// Values are kept in insertion order; keys follow the convention
/// "<program>.<column>".  The report always records the bench name, the
/// options it ran under, total replayed events, wall-clock seconds, and
/// the derived events/sec throughput.
class JsonReport {
public:
  JsonReport(std::string BenchName, const BenchOptions &Options)
      : BenchName(std::move(BenchName)), Options(Options) {}

  /// Records a measured value.
  void add(const std::string &Key, double Value) {
    Values.emplace_back(Key, Value);
  }

  /// Records the replayed-event total and the wall-clock spent replaying.
  void setThroughput(uint64_t Events, double WallSeconds) {
    this->Events = Events;
    this->WallSeconds = WallSeconds;
  }

  /// Writes the report to Options.JsonPath.  If that names a directory,
  /// the file becomes <dir>/BENCH_<name>.json.  No-op when --json was not
  /// given; returns false (after printing a warning) if the file cannot
  /// be written.
  bool write() const;

private:
  std::string BenchName;
  BenchOptions Options;
  std::vector<std::pair<std::string, double>> Values;
  uint64_t Events = 0;
  double WallSeconds = 0.0;
};

/// Monotonic wall-clock seconds (for events/sec measurement).
double wallTimeSeconds();

/// Number of replay events (allocs plus derived frees) in \p Trace.
inline uint64_t replayEventCount(const AllocationTrace &Trace) {
  uint64_t Events = Trace.size();
  for (const AllocRecord &Record : Trace.records())
    if (Record.Lifetime != NeverFreed)
      ++Events;
  return Events;
}

} // namespace lifepred

#endif // LIFEPRED_BENCH_BENCHCOMMON_H
