//===- bench/BenchCommon.h - Shared bench harness helpers -------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table-reproduction bench binaries: workload trace
/// generation with common flags (--scale, --seed, --program) and printing
/// conventions.  Every bench prints its measured values beside the paper's
/// published numbers so the output reads as a direct comparison.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_BENCH_BENCHCOMMON_H
#define LIFEPRED_BENCH_BENCHCOMMON_H

#include "callchain/FunctionRegistry.h"
#include "support/CommandLine.h"
#include "trace/AllocationTrace.h"
#include "workloads/PaperData.h"
#include "workloads/Programs.h"
#include "workloads/WorkloadRunner.h"

#include <string>
#include <vector>

namespace lifepred {

/// A program's train and test traces generated under one registry (so
/// FunctionIds agree across the two runs).
struct ProgramTraces {
  ProgramModel Model;
  FunctionRegistry Registry;
  AllocationTrace Train;
  AllocationTrace Test;
};

/// Common bench flags.
struct BenchOptions {
  double Scale = 1.0;
  uint64_t Seed = 0x1993;
  std::string OnlyProgram; ///< Empty = all five.

  static BenchOptions fromCommandLine(const CommandLine &Cl);
};

/// Generates traces for every selected program.
std::vector<ProgramTraces> makeAllTraces(const BenchOptions &Options);

/// Generates traces for one model.
ProgramTraces makeTraces(const ProgramModel &Model,
                         const BenchOptions &Options);

/// Prints the standard bench banner naming the table being reproduced.
void printBanner(const char *Table, const char *Caption,
                 const BenchOptions &Options);

} // namespace lifepred

#endif // LIFEPRED_BENCH_BENCHCOMMON_H
