//===- bench/BenchCommon.h - Shared bench harness helpers -------*- C++ -*-===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table-reproduction bench binaries: workload trace
/// generation with common flags (--scale, --seed, --program, --jobs,
/// --json) and printing conventions.  Every bench prints its measured
/// values beside the paper's published numbers so the output reads as a
/// direct comparison.
///
/// Trace generation and per-(program, allocator) simulations fan out over
/// a ThreadPool sized by --jobs; results are stored into index-addressed
/// slots so output order (and with --jobs=1, execution order) is
/// deterministic.  --json=<path> additionally writes the measured values
/// plus wall-clock and events/sec as a machine-readable report.
///
//===----------------------------------------------------------------------===//

#ifndef LIFEPRED_BENCH_BENCHCOMMON_H
#define LIFEPRED_BENCH_BENCHCOMMON_H

#include "callchain/FunctionRegistry.h"
#include "support/CommandLine.h"
#include "support/ThreadPool.h"
#include "trace/AllocationTrace.h"
#include "trace/CompiledTrace.h"
#include "workloads/PaperData.h"
#include "workloads/Programs.h"
#include "workloads/WorkloadRunner.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace lifepred {

class StatsRegistry;
class HeapTimeline;
class TraceEventWriter;

/// A program's train and test traces generated under one registry (so
/// FunctionIds agree across the two runs).
struct ProgramTraces {
  ProgramModel Model;
  FunctionRegistry Registry;
  AllocationTrace Train;
  AllocationTrace Test;
};

/// Common bench flags.
struct BenchOptions {
  double Scale = 1.0;
  uint64_t Seed = 0x1993;
  std::string OnlyProgram;  ///< Empty = all five.
  /// Worker threads.  The --jobs flag defaults to 0 = "every core"
  /// (std::thread::hardware_concurrency); the manifest records the
  /// *effective* count, never the 0 sentinel.  --jobs=1 is strictly
  /// serial.
  unsigned Jobs = 1;
  std::string JsonPath;     ///< Empty = no JSON report.
  std::string TraceOutPath; ///< --trace-out: chrome://tracing span file.
  std::string AuditOutPath; ///< --audit-out: lifetime audit report file.
  /// --timeline-stride: byte-clock sampling stride for the heap timeline
  /// section of the JSON report (0 = no timeline).
  uint64_t TimelineStride = 0;
  /// --observe: run the heap observatory (fragmentation probes, latency
  /// recorders, heatmap) on the untimed instrumented replays.
  bool Observe = false;
  /// --observe-stride: byte-clock stride of the observatory's probes and
  /// heatmap columns.
  uint64_t ObserveStride = 64 * 1024;
  /// --heatmap-out: standalone heatmap JSON file (requires --observe).
  std::string HeatmapOutPath;
  /// --drift-out: standalone drift-report JSON file; also turns on the
  /// drift observatory for the instrumented predicting replays.
  std::string DriftOutPath;
  /// --drift-window: byte-clock window width for the drift observatory
  /// (0 = DriftObservatory::autoWindowBytes per program).
  uint64_t DriftWindowBytes = 0;

  static BenchOptions fromCommandLine(const CommandLine &Cl);
};

/// Provenance of one bench run, recorded in every JSON report so that two
/// reports can always answer "were these the same code and configuration?"
/// before their numbers are compared.
struct RunManifest {
  std::string GitSha;    ///< Short commit hash the binary was built from.
  std::string BuildType; ///< CMAKE_BUILD_TYPE.
  std::string Compiler;  ///< Compiler id and version.
  unsigned Jobs = 1;
  uint64_t Seed = 0;
  double Scale = 1.0;
  std::string Program; ///< --program filter; empty = all.

  /// Serving-engine provenance (bench_sim_throughput --serve), so
  /// bench_compare / trace_tool history can identify scaling runs: engine
  /// worker threads and tenant count, plus run totals of the
  /// interleaving-dependent contention counters.  Manifest entries are
  /// provenance notes, never gated values — contention totals vary run to
  /// run by design.  Zero outside serving mode; the manifest JSON carries
  /// them only when Threads is nonzero.
  unsigned Threads = 0;
  unsigned Tenants = 0;
  uint64_t ContentionCasRetries = 0;
  uint64_t ContentionRemoteFreePushes = 0;
  uint64_t ContentionMaxDrainDepth = 0;

  /// The manifest of this build and \p Options (the one constructor every
  /// bench uses, so no field can be recorded inconsistently).
  static RunManifest current(const BenchOptions &Options);
};

/// Generates traces for every selected program, fanning out one task per
/// program on \p Pool.  Result order matches allPrograms() order
/// regardless of job count.
std::vector<ProgramTraces> makeAllTraces(const BenchOptions &Options,
                                         ThreadPool &Pool);

/// Serial convenience overload.
std::vector<ProgramTraces> makeAllTraces(const BenchOptions &Options);

/// Generates traces for one model.
ProgramTraces makeTraces(const ProgramModel &Model,
                         const BenchOptions &Options);

/// Compiles every program's *test* trace once — the event schedule plus,
/// when \p Policy is non-null, per-record site keys under that policy —
/// fanning out one task per program on \p Pool.  Result order matches
/// \p All.  The compiled traces are immutable, so every simulation task a
/// bench later fans out (threshold sweeps, per-allocator columns, repeat
/// loops) shares them read-only at any --jobs; they hold pointers into
/// \p All, which must outlive them.
std::vector<CompiledTrace>
compileAllTraces(const std::vector<ProgramTraces> &All, ThreadPool &Pool,
                 const SiteKeyPolicy *Policy = nullptr);

/// Prints the standard bench banner naming the table being reproduced.
void printBanner(const char *Table, const char *Caption,
                 const BenchOptions &Options);

/// Machine-readable bench report, written when --json is set.
///
/// Values are kept in insertion order; keys follow the convention
/// "<program>.<column>".  The report (schema version 2) always records the
/// bench name, a RunManifest, total replayed events, wall-clock seconds,
/// and the derived events/sec throughput; attachTelemetry() and
/// attachTimeline() add the corresponding sections.
class JsonReport {
public:
  /// The report schema emitted by write(); bench_compare notes a mismatch
  /// before comparing two reports.
  static constexpr int SchemaVersion = 2;

  JsonReport(std::string BenchName, const BenchOptions &Options)
      : BenchName(std::move(BenchName)), Options(Options),
        Manifest(RunManifest::current(Options)) {}

  /// Records a measured value.
  void add(const std::string &Key, double Value) {
    Values.emplace_back(Key, Value);
  }

  /// Records the replayed-event total and the wall-clock spent replaying.
  void setThroughput(uint64_t Events, double WallSeconds) {
    this->Events = Events;
    this->WallSeconds = WallSeconds;
  }

  /// Records serving-mode provenance in the manifest (see RunManifest):
  /// worker threads, tenant count, and contention-counter run totals.
  void setServeProvenance(unsigned Threads, unsigned Tenants,
                          uint64_t CasRetries, uint64_t RemoteFreePushes,
                          uint64_t MaxDrainDepth) {
    Manifest.Threads = Threads;
    Manifest.Tenants = Tenants;
    Manifest.ContentionCasRetries = CasRetries;
    Manifest.ContentionRemoteFreePushes = RemoteFreePushes;
    Manifest.ContentionMaxDrainDepth = MaxDrainDepth;
  }

  /// Adds \p Registry's metrics as the report's "telemetry" section.  The
  /// registry must outlive write(); nullptr detaches.
  void attachTelemetry(const StatsRegistry *Registry) {
    Telemetry = Registry;
  }

  /// Adds \p Timeline's samples as the report's "timeline" section.  The
  /// timeline must outlive write(); nullptr detaches.
  void attachTimeline(const HeapTimeline *Timeline) {
    this->Timeline = Timeline;
  }

  /// Writes the report to Options.JsonPath.  If that names a directory,
  /// the file becomes <dir>/BENCH_<name>.json.  No-op when --json was not
  /// given; returns false (after printing a warning) if the file cannot
  /// be written.
  bool write() const;

private:
  std::string BenchName;
  BenchOptions Options;
  RunManifest Manifest;
  std::vector<std::pair<std::string, double>> Values;
  uint64_t Events = 0;
  double WallSeconds = 0.0;
  const StatsRegistry *Telemetry = nullptr;
  const HeapTimeline *Timeline = nullptr;
};

/// A TraceEventWriter for Options.TraceOutPath, or nullptr when --trace-out
/// was not given.  TraceSpan's null-writer behaviour makes the result
/// usable unconditionally.
std::unique_ptr<TraceEventWriter> makeTraceWriter(const BenchOptions &Options);

/// Monotonic wall-clock seconds (for events/sec measurement).
double wallTimeSeconds();

/// Peak resident set size of this process in kilobytes (VmHWM from
/// /proc/self/status), or 0 where that interface does not exist.  Recorded
/// in the JSON manifest as "peak_rss_kb" — the streamed-replay residency
/// evidence: a chunk-streamed run's peak stays flat as the trace grows.
uint64_t peakRssKb();

/// Number of replay events (allocs plus derived frees) in \p Trace.
inline uint64_t replayEventCount(const AllocationTrace &Trace) {
  uint64_t Events = Trace.size();
  for (const AllocRecord &Record : Trace.records())
    if (Record.Lifetime != NeverFreed)
      ++Events;
  return Events;
}

} // namespace lifepred

#endif // LIFEPRED_BENCH_BENCHCOMMON_H
