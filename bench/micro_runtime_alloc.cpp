//===- bench/micro_runtime_alloc.cpp - Real-heap microbenchmarks -----------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// google-benchmark timings of the *real* PredictingHeap against plain
// operator new on the paper's target pattern: bursts of short-lived
// allocations that die together.  The arena path is a pointer bump plus a
// count increment, so it should beat the general-purpose allocator — the
// modern analogue of Table 9's GAWK row.
//
//===----------------------------------------------------------------------===//

#include "callchain/ShadowStack.h"
#include "runtime/PredictingHeap.h"

#include "benchmark/benchmark.h"

#include <vector>

using namespace lifepred;

namespace {

constexpr FunctionId BenchFunction = 777;

SiteDatabase makeDatabase(bool PredictShort) {
  SiteKeyPolicy Policy = SiteKeyPolicy::lastN(4);
  SiteDatabase DB(Policy, 32 * 1024);
  if (PredictShort)
    for (uint32_t Size = 8; Size <= 256; Size += 4)
      DB.insert(siteKey(Policy, CallChain{BenchFunction}, Size));
  return DB;
}

void predictingHeapChurn(benchmark::State &State, bool PredictShort) {
  ShadowStack::current().clear();
  PredictingHeap Heap(makeDatabase(PredictShort));
  ScopedFrame Frame(BenchFunction);
  size_t Size = static_cast<size_t>(State.range(0));
  std::vector<void *> Batch(64);
  for (auto _ : State) {
    for (void *&P : Batch)
      P = Heap.allocate(Size);
    for (void *P : Batch)
      Heap.deallocate(P);
  }
  State.SetItemsProcessed(
      static_cast<int64_t>(State.iterations()) * 2 * Batch.size());
}

void BM_PredictingHeap_ArenaPath(benchmark::State &State) {
  predictingHeapChurn(State, /*PredictShort=*/true);
}

void BM_PredictingHeap_GeneralPath(benchmark::State &State) {
  predictingHeapChurn(State, /*PredictShort=*/false);
}

void BM_OperatorNew(benchmark::State &State) {
  size_t Size = static_cast<size_t>(State.range(0));
  std::vector<void *> Batch(64);
  for (auto _ : State) {
    for (void *&P : Batch)
      P = ::operator new(Size);
    for (void *P : Batch)
      ::operator delete(P);
  }
  State.SetItemsProcessed(
      static_cast<int64_t>(State.iterations()) * 2 * Batch.size());
}

} // namespace

BENCHMARK(BM_PredictingHeap_ArenaPath)->Arg(16)->Arg(48)->Arg(128);
BENCHMARK(BM_PredictingHeap_GeneralPath)->Arg(16)->Arg(48)->Arg(128);
BENCHMARK(BM_OperatorNew)->Arg(16)->Arg(48)->Arg(128);

BENCHMARK_MAIN();
