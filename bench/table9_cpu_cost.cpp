//===- bench/table9_cpu_cost.cpp - Reproduce Table 9 -----------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Reproduces Table 9: average instructions per allocate and free under four
// allocators — BSD (Kingsley), first fit, and the arena allocator with
// length-4 chain prediction and with call-chain encryption (both under
// true prediction).  Arena costs are operation counts times per-operation
// estimates, exactly the paper's method.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Pipeline.h"
#include "sim/TraceSimulator.h"
#include "support/TableFormatter.h"

#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  printBanner("Table 9", "instructions per allocation and free", Options);

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  CostModel Costs;

  TableFormatter Table({"Program", "Alg", "alloc", "paper", "free", "paper",
                        "a+f", "paper"});

  for (const ProgramTraces &Traces : makeAllTraces(Options)) {
    const PaperProgramData *Paper = paperData(Traces.Model.Name);

    Profile TrainProfile = profileTrace(Traces.Train, Policy);
    SiteDatabase DB = trainDatabase(TrainProfile, Policy);

    BaselineSimResult Bsd = simulateBsd(Traces.Test, Costs);
    BaselineSimResult FF = simulateFirstFit(Traces.Test, Costs);
    ArenaSimResult Arena =
        simulateArena(Traces.Test, DB, Traces.Model.CallsPerAlloc, Costs);

    auto AddRow = [&](const char *Alg, const InstrPerOp &Instr,
                      int PaperAlloc, int PaperFree, bool First) {
      Table.beginRow();
      Table.addCell(First ? Traces.Model.Name : "");
      Table.addCell(Alg);
      Table.addReal(Instr.Alloc, 0);
      Table.addInt(PaperAlloc);
      Table.addReal(Instr.Free, 0);
      Table.addInt(PaperFree);
      Table.addReal(Instr.total(), 0);
      Table.addInt(PaperAlloc + PaperFree);
    };
    AddRow("BSD", Bsd.Instr, Paper->BsdAlloc, Paper->BsdFree, true);
    AddRow("First-fit", FF.Instr, Paper->FirstFitAlloc, Paper->FirstFitFree,
           false);
    AddRow("Arena(len4)", Arena.InstrLen4, Paper->ArenaLen4Alloc,
           Paper->ArenaLen4Free, false);
    AddRow("Arena(cce)", Arena.InstrCce, Paper->ArenaCceAlloc,
           Paper->ArenaCceFree, false);
  }

  Table.print(std::cout);
  return 0;
}
