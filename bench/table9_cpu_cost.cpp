//===- bench/table9_cpu_cost.cpp - Reproduce Table 9 -----------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Reproduces Table 9: average instructions per allocate and free under four
// allocators — BSD (Kingsley), first fit, and the arena allocator with
// length-4 chain prediction and with call-chain encryption (both under
// true prediction).  Arena costs are operation counts times per-operation
// estimates, exactly the paper's method.
//
// Each (program, allocator) simulation is an independent task on the
// bench thread pool (--jobs); rows print in program order afterwards, so
// the output is identical at any job count.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "ObservatoryBench.h"

#include "core/Pipeline.h"
#include "sim/TraceSimulator.h"
#include "support/TableFormatter.h"

#include <iostream>

using namespace lifepred;

namespace {

/// One program's simulation results across the table's allocators.
struct Row {
  BaselineSimResult Bsd;
  BaselineSimResult FF;
  ArenaSimResult Arena;
};

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  printBanner("Table 9", "instructions per allocation and free", Options);

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
  CostModel Costs;

  ThreadPool Pool(Options.Jobs);
  std::vector<ProgramTraces> All = makeAllTraces(Options, Pool);
  std::vector<CompiledTrace> Compiled = compileAllTraces(All, Pool, &Policy);

  std::vector<Row> Rows(All.size());
  uint64_t Events = 0;
  for (const ProgramTraces &Traces : All)
    Events += 3 * replayEventCount(Traces.Test);
  double Start = wallTimeSeconds();
  parallelForIndex(Pool, All.size() * 3, [&](size_t Task) {
    const ProgramTraces &Traces = All[Task / 3];
    const CompiledTrace &Test = Compiled[Task / 3];
    Row &R = Rows[Task / 3];
    switch (Task % 3) {
    case 0:
      R.Bsd = simulateBsd(Test, Costs);
      break;
    case 1:
      R.FF = simulateFirstFit(Test, Costs);
      break;
    case 2: {
      Profile TrainProfile = profileTrace(Traces.Train, Policy);
      SiteDatabase DB = trainDatabase(TrainProfile, Policy);
      R.Arena = simulateArena(Test, DB, Traces.Model.CallsPerAlloc, Costs);
      break;
    }
    }
  });
  double Wall = wallTimeSeconds() - Start;

  TableFormatter Table({"Program", "Alg", "alloc", "paper", "free", "paper",
                        "a+f", "paper"});
  JsonReport Report("table9_cpu_cost", Options);
  Report.setThroughput(Events, Wall);

  for (size_t I = 0; I < All.size(); ++I) {
    const ProgramTraces &Traces = All[I];
    const Row &R = Rows[I];
    const PaperProgramData *Paper = paperData(Traces.Model.Name);

    auto AddRow = [&](const char *Alg, const InstrPerOp &Instr,
                      int PaperAlloc, int PaperFree, bool First) {
      Table.beginRow();
      Table.addCell(First ? Traces.Model.Name : "");
      Table.addCell(Alg);
      Table.addReal(Instr.Alloc, 0);
      Table.addInt(PaperAlloc);
      Table.addReal(Instr.Free, 0);
      Table.addInt(PaperFree);
      Table.addReal(Instr.total(), 0);
      Table.addInt(PaperAlloc + PaperFree);
      std::string Name = Traces.Model.Name;
      Report.add(Name + "." + Alg + ".alloc", Instr.Alloc);
      Report.add(Name + "." + Alg + ".free", Instr.Free);
    };
    AddRow("BSD", R.Bsd.Instr, Paper->BsdAlloc, Paper->BsdFree, true);
    AddRow("First-fit", R.FF.Instr, Paper->FirstFitAlloc,
           Paper->FirstFitFree, false);
    AddRow("Arena(len4)", R.Arena.InstrLen4, Paper->ArenaLen4Alloc,
           Paper->ArenaLen4Free, false);
    AddRow("Arena(cce)", R.Arena.InstrCce, Paper->ArenaCceAlloc,
           Paper->ArenaCceFree, false);
  }

  Table.print(std::cout);
  StatsRegistry ObservatoryRegistry;
  if (runObservatoryPass(Options, All, Pool, ObservatoryRegistry))
    Report.attachTelemetry(&ObservatoryRegistry);
  Report.write();
  return 0;
}
