//===- bench/table5_size_only.cpp - Reproduce Table 5 ----------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Reproduces Table 5: how much of the short-lived allocation can be
// predicted from the object size *alone* (self prediction).  The paper's
// point: size is a poor predictor compared to the allocation site.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Pipeline.h"
#include "support/TableFormatter.h"

#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  printBanner("Table 5", "bytes predicted short-lived from size alone",
              Options);

  SiteKeyPolicy Policy = SiteKeyPolicy::sizeOnly();

  TableFormatter Table({"Program", "Actual%", "paper", "Pred%", "paper",
                        "SizesUsed", "paper"});

  for (const ProgramTraces &Traces : makeAllTraces(Options)) {
    const PaperProgramData *Paper = paperData(Traces.Model.Name);
    PipelineResult Self =
        trainAndEvaluate(Traces.Train, Traces.Train, Policy);

    Table.beginRow();
    Table.addCell(Traces.Model.Name);
    Table.addPercent(Self.Report.actualShortPercent(), 0);
    Table.addInt(Paper->ActualShortPercent);
    Table.addPercent(Self.Report.predictedShortPercent(), 0);
    Table.addInt(Paper->SizeOnlyPredictedPercent);
    Table.addInt(static_cast<int64_t>(Self.Report.SitesUsed));
    Table.addInt(Paper->SizeOnlySitesUsed);
  }

  Table.print(std::cout);
  return 0;
}
