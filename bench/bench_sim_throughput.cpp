//===- bench/bench_sim_throughput.cpp - Simulator hot-path throughput ------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Measures trace-replay throughput (events/sec, where an event is one
// alloc or one derived free) of the simulator hot path:
//
//   legacy-ff  : the original std::map/std::set first-fit block store,
//                retained as LegacyFirstFitAllocator (the differential
//                oracle).
//   flat-ff    : the flat boundary-tag block store that replaced it.
//   bsd        : the Kingsley power-of-two allocator.
//   arena      : the lifetime-predicting arena allocator (true database).
//   multiarena : the two-band arena allocator (trained class database).
//
// The flat/legacy pair replays the same traces under the same fit policy
// (--policy=roving|address|best), so their ratio is the speedup of the
// block-store rewrite alone.  Per-(program, allocator, repeat) replays
// fan out on the bench thread pool; each task times only its own replay,
// and per-allocator throughput aggregates those task-local times, so
// --jobs only shortens the bench without perturbing the ratio.
//
// With --json (or --trace-out, or --audit-out) the bench additionally runs
// one *untimed* instrumented replay per (program, allocator family) after
// the timed region, collecting allocator counters, per-allocation
// histograms, and prediction outcomes into a StatsRegistry — one registry
// per program, merged in program order, so the telemetry section is
// identical at any --jobs.  --timeline-stride=N adds byte-clock heap
// samples of the first program's first-fit replay; --trace-out=<file>
// writes chrome://tracing spans for the run's phases (plus arena
// fill→pin→reset occupancy when auditing); --audit-out=<file> attaches a
// flight recorder to each program's arena replay and writes the lifetime
// audit (misprediction forensics and arena-pinning attribution), folding
// its headline numbers into the JSON report.
//
// Flags: the common --scale/--seed/--program/--jobs/--json/--trace-out/
// --audit-out/--timeline-stride, plus --policy (default roving) and
// --repeat=N (default 3) which replays every trace N times to lengthen
// the timed region.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "alloc/LegacyFirstFitAllocator.h"
#include "core/Pipeline.h"
#include "sim/MultiArenaSimulator.h"
#include "sim/SimTelemetry.h"
#include "sim/TraceSimulator.h"
#include "support/TableFormatter.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/LifetimeAudit.h"
#include "telemetry/TraceEventWriter.h"
#include "trace/TraceReplayer.h"

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

using namespace lifepred;

namespace {

/// Replays \p Trace into a fresh \p Allocator, returning nothing; the
/// caller times the call.  Mirrors the simulator's BaselineConsumer.
template <typename AllocatorT>
void replayBaseline(const AllocationTrace &Trace,
                    typename AllocatorT::Config Config) {
  class Consumer : public TraceConsumer {
  public:
    Consumer(AllocatorT &Allocator, size_t ObjectCount)
        : Allocator(Allocator) {
      Addresses.resize(ObjectCount);
    }
    void onAlloc(uint64_t Id, const AllocRecord &Record, uint64_t) override {
      Addresses[Id] = Allocator.allocate(Record.Size);
      raisePeak(MaxLive, Allocator.liveBytes());
    }
    void onFree(uint64_t Id, const AllocRecord &, uint64_t) override {
      Allocator.free(Addresses[Id]);
    }

  private:
    AllocatorT &Allocator;
    std::vector<uint64_t> Addresses;
    uint64_t MaxLive = 0;
  };

  AllocatorT Allocator(Config);
  Consumer C(Allocator, Trace.size());
  replayTrace(Trace, C);
}

constexpr unsigned AllocatorCount = 5;
const char *const AllocatorNames[AllocatorCount] = {
    "legacy-ff", "flat-ff", "bsd", "arena", "multiarena"};

/// The two-band geometry of ablation_multi_arena's "2 bands" case: same
/// total area as the paper's single band, split.
const std::vector<uint64_t> MultiArenaThresholds = {16 * 1024, 32 * 1024};

MultiArenaAllocator::Config multiArenaConfig() {
  MultiArenaAllocator::Config Config;
  Config.Bands = {{32 * 1024, 8}, {32 * 1024, 8}};
  return Config;
}

struct Cell {
  uint64_t Events = 0;
  double Seconds = 0.0;
  double eventsPerSec() const {
    return Seconds > 0.0 ? static_cast<double>(Events) / Seconds : 0.0;
  }
};

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  std::string PolicyName = Cl.getString("policy", "roving");
  unsigned Repeat = static_cast<unsigned>(Cl.getInt("repeat", 3));
  if (Repeat < 1)
    Repeat = 1;

  FitPolicy Policy = FitPolicy::RovingFirstFit;
  if (PolicyName == "address")
    Policy = FitPolicy::AddressOrderedFirstFit;
  else if (PolicyName == "best")
    Policy = FitPolicy::BestFit;
  else if (PolicyName != "roving") {
    std::fprintf(stderr, "unknown --policy=%s (roving|address|best)\n",
                 PolicyName.c_str());
    return 1;
  }

  printBanner("Throughput", "simulator trace-replay events per second",
              Options);
  std::printf("fit policy: %s; repeats per trace: %u\n\n", PolicyName.c_str(),
              Repeat);

  SiteKeyPolicy KeyPolicy = SiteKeyPolicy::completeChain();
  std::unique_ptr<TraceEventWriter> TraceWriter = makeTraceWriter(Options);

  ThreadPool Pool(Options.Jobs);
  std::vector<ProgramTraces> All;
  {
    TraceSpan Span(TraceWriter.get(), "generate-traces");
    All = makeAllTraces(Options, Pool);
  }

  // Train the arena databases up front (outside the timed region).  The
  // audit pass additionally needs the trained per-site quantiles to score
  // train-to-test drift, so --audit-out keeps the profiles.
  std::vector<SiteDatabase> TrueDBs(All.size());
  std::vector<ClassDatabase> ClassDBs(All.size());
  std::vector<Profile> TrainProfiles(All.size());
  {
    TraceSpan Span(TraceWriter.get(), "train");
    parallelForIndex(Pool, All.size(), [&](size_t Index) {
      Profile TrainProfile = profileTrace(All[Index].Train, KeyPolicy);
      TrueDBs[Index] = trainDatabase(TrainProfile, KeyPolicy);
      ClassDBs[Index] =
          trainClassDatabase(TrainProfile, KeyPolicy, MultiArenaThresholds);
      if (!Options.AuditOutPath.empty())
        TrainProfiles[Index] = std::move(TrainProfile);
    });
  }

  FirstFitAllocator::Config FFConfig;
  FFConfig.Policy = Policy;

  // One task per (program, allocator); each repeats its replay and times
  // only the replay calls.
  std::vector<Cell> Cells(All.size() * AllocatorCount);
  {
    TraceSpan Span(TraceWriter.get(), "timed-replays");
    parallelForIndex(Pool, Cells.size(), [&](size_t Task) {
      size_t ProgramIndex = Task / AllocatorCount;
      unsigned Allocator = Task % AllocatorCount;
      const ProgramTraces &Traces = All[ProgramIndex];
      Cell &C = Cells[Task];
      C.Events = uint64_t(Repeat) * replayEventCount(Traces.Test);
      double Start = wallTimeSeconds();
      for (unsigned R = 0; R < Repeat; ++R) {
        switch (Allocator) {
        case 0:
          replayBaseline<LegacyFirstFitAllocator>(Traces.Test, FFConfig);
          break;
        case 1:
          replayBaseline<FirstFitAllocator>(Traces.Test, FFConfig);
          break;
        case 2:
          replayBaseline<BsdAllocator>(Traces.Test, BsdAllocator::Config());
          break;
        case 3:
          simulateArena(Traces.Test, TrueDBs[ProgramIndex],
                        Traces.Model.CallsPerAlloc);
          break;
        case 4:
          simulateMultiArena(Traces.Test, ClassDBs[ProgramIndex],
                             multiArenaConfig());
          break;
        }
      }
      C.Seconds = wallTimeSeconds() - Start;
    });
  }

  TableFormatter Table({"Program", "Allocator", "Events", "Seconds",
                        "Events/sec", "vs legacy"});
  JsonReport Report("sim_throughput", Options);

  Cell LegacyTotal, FlatTotal;
  uint64_t TotalEvents = 0;
  double TotalSeconds = 0.0;
  for (size_t I = 0; I < All.size(); ++I) {
    const Cell &Legacy = Cells[I * AllocatorCount + 0];
    for (unsigned A = 0; A < AllocatorCount; ++A) {
      const Cell &C = Cells[I * AllocatorCount + A];
      TotalEvents += C.Events;
      TotalSeconds += C.Seconds;
      Table.beginRow();
      Table.addCell(A == 0 ? All[I].Model.Name : "");
      Table.addCell(AllocatorNames[A]);
      Table.addInt(static_cast<int64_t>(C.Events));
      Table.addReal(C.Seconds, 3);
      Table.addInt(static_cast<int64_t>(C.eventsPerSec()));
      Table.addReal(Legacy.Seconds > 0.0 && C.Seconds > 0.0
                        ? Legacy.Seconds / C.Seconds
                        : 0.0,
                    2);
      Report.add(std::string(All[I].Model.Name) + "." + AllocatorNames[A] +
                     ".events_per_sec",
                 C.eventsPerSec());
    }
    LegacyTotal.Events += Legacy.Events;
    LegacyTotal.Seconds += Legacy.Seconds;
    FlatTotal.Events += Cells[I * AllocatorCount + 1].Events;
    FlatTotal.Seconds += Cells[I * AllocatorCount + 1].Seconds;
  }
  Table.print(std::cout);

  double Speedup = FlatTotal.Seconds > 0.0
                       ? LegacyTotal.Seconds / FlatTotal.Seconds
                       : 0.0;
  std::printf("\nfirst-fit replay (%s): legacy %.0f events/sec, flat %.0f "
              "events/sec — speedup %.2fx\n",
              PolicyName.c_str(), LegacyTotal.eventsPerSec(),
              FlatTotal.eventsPerSec(), Speedup);

  Report.setThroughput(TotalEvents, TotalSeconds);
  Report.add("legacy_ff.events_per_sec", LegacyTotal.eventsPerSec());
  Report.add("flat_ff.events_per_sec", FlatTotal.eventsPerSec());
  Report.add("flat_vs_legacy_speedup", Speedup);

  // Untimed instrumented replays: allocator counters, histograms, and
  // prediction outcomes for the JSON report's telemetry section.  One
  // registry per program, merged in program order — deterministic at any
  // --jobs.  Runs after the timed region so it cannot perturb it.
  StatsRegistry Telemetry;
  HeapTimeline Timeline(Options.TimelineStride);
  bool Audit = !Options.AuditOutPath.empty();
  if (!Options.JsonPath.empty() || TraceWriter || Audit) {
    TraceSpan Span(TraceWriter.get(), "instrumented-replays");
    std::vector<StatsRegistry> PerProgram(All.size());
    std::vector<PredictionCounts> ArenaOutcomes(All.size());
    // One flight recorder per program replay: each records serially inside
    // its task and is read back in program order below, so the audit output
    // is bit-identical at any --jobs.
    std::vector<std::unique_ptr<FlightRecorder>> Recorders(All.size());
    if (Audit) {
      FlightRecorder::Config RecorderConfig;
      RecorderConfig.Seed = Options.Seed;
      for (auto &Recorder : Recorders)
        Recorder = std::make_unique<FlightRecorder>(RecorderConfig);
    }
    parallelForIndex(Pool, All.size(), [&](size_t Index) {
      TraceSpan ProgramSpan(TraceWriter.get(), All[Index].Model.Name,
                            "replay");
      const AllocationTrace &Test = All[Index].Test;
      SimTelemetry FF;
      FF.Registry = &PerProgram[Index];
      if (Index == 0 && Options.TimelineStride > 0)
        FF.Timeline = &Timeline;
      simulateFirstFit(Test, CostModel(), FFConfig, &FF);
      SimTelemetry Bsd;
      Bsd.Registry = &PerProgram[Index];
      simulateBsd(Test, CostModel(), BsdAllocator::Config(), &Bsd);
      SimTelemetry Arena;
      Arena.Registry = &PerProgram[Index];
      Arena.Recorder = Recorders[Index].get();
      simulateArena(Test, TrueDBs[Index], All[Index].Model.CallsPerAlloc,
                    CostModel(), ArenaAllocator::Config(), &Arena);
      ArenaOutcomes[Index] = Arena.Outcomes;
      SimTelemetry Multi;
      Multi.Registry = &PerProgram[Index];
      simulateMultiArena(Test, ClassDBs[Index], multiArenaConfig(), &Multi);
    });
    for (size_t I = 0; I < All.size(); ++I) {
      Telemetry.merge(PerProgram[I]);
      Report.add(std::string(All[I].Model.Name) + ".arena.pred_accuracy_pct",
                 ArenaOutcomes[I].accuracyPercent());
    }
    if (Audit) {
      std::FILE *AuditFile = std::fopen(Options.AuditOutPath.c_str(), "w");
      if (!AuditFile)
        std::fprintf(stderr, "warning: cannot write --audit-out=%s\n",
                     Options.AuditOutPath.c_str());
      for (size_t I = 0; I < All.size(); ++I) {
        std::string Name = All[I].Model.Name;
        TrainedQuantileMap Trained =
            buildTrainedQuantiles(All[I].Test, TrainProfiles[I], KeyPolicy);
        AuditReport ProgramAudit =
            buildAuditReport(*Recorders[I], &Trained, Name + ".arena");
        if (AuditFile)
          printAuditReport(ProgramAudit, AuditFile);
        exportAuditTelemetry(ProgramAudit, Telemetry, "audit." + Name + ".");
        Report.add(Name + ".audit.wasted_bytes",
                   static_cast<double>(ProgramAudit.wastedBytes()));
        Report.add(Name + ".audit.dead_bytes_pinned",
                   static_cast<double>(ProgramAudit.TotalDeadByteIntegral));
        if (TraceWriter)
          emitArenaOccupancy(ProgramAudit, *TraceWriter);
      }
      if (AuditFile)
        std::fclose(AuditFile);
    }
    if (Options.TimelineStride > 0) {
      Timeline.exportTelemetry(Telemetry, "timeline.");
      Report.attachTimeline(&Timeline);
    }
    Report.attachTelemetry(&Telemetry);
  }

  Report.write();
  if (TraceWriter)
    TraceWriter->close();
  return 0;
}
