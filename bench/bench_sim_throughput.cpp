//===- bench/bench_sim_throughput.cpp - Simulator hot-path throughput ------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Measures trace-replay throughput (events/sec, where an event is one
// alloc or one derived free) of the simulator hot path:
//
//   legacy-ff : the original std::map/std::set first-fit block store,
//               retained as LegacyFirstFitAllocator (the differential
//               oracle).
//   flat-ff   : the flat boundary-tag block store that replaced it.
//   bsd       : the Kingsley power-of-two allocator.
//   arena     : the lifetime-predicting arena allocator (true database).
//
// The flat/legacy pair replays the same traces under the same fit policy
// (--policy=roving|address|best), so their ratio is the speedup of the
// block-store rewrite alone.  Per-(program, allocator, repeat) replays
// fan out on the bench thread pool; each task times only its own replay,
// and per-allocator throughput aggregates those task-local times, so
// --jobs only shortens the bench without perturbing the ratio.
//
// Flags: the common --scale/--seed/--program/--jobs/--json, plus
// --policy (default roving) and --repeat=N (default 3) which replays
// every trace N times to lengthen the timed region.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "alloc/LegacyFirstFitAllocator.h"
#include "core/Pipeline.h"
#include "sim/TraceSimulator.h"
#include "support/TableFormatter.h"
#include "trace/TraceReplayer.h"

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

using namespace lifepred;

namespace {

/// Replays \p Trace into a fresh \p Allocator, returning nothing; the
/// caller times the call.  Mirrors the simulator's BaselineConsumer.
template <typename AllocatorT>
void replayBaseline(const AllocationTrace &Trace,
                    typename AllocatorT::Config Config) {
  class Consumer : public TraceConsumer {
  public:
    Consumer(AllocatorT &Allocator, size_t ObjectCount)
        : Allocator(Allocator) {
      Addresses.resize(ObjectCount);
    }
    void onAlloc(uint64_t Id, const AllocRecord &Record, uint64_t) override {
      Addresses[Id] = Allocator.allocate(Record.Size);
      raisePeak(MaxLive, Allocator.liveBytes());
    }
    void onFree(uint64_t Id, const AllocRecord &, uint64_t) override {
      Allocator.free(Addresses[Id]);
    }

  private:
    AllocatorT &Allocator;
    std::vector<uint64_t> Addresses;
    uint64_t MaxLive = 0;
  };

  AllocatorT Allocator(Config);
  Consumer C(Allocator, Trace.size());
  replayTrace(Trace, C);
}

constexpr unsigned AllocatorCount = 4;
const char *const AllocatorNames[AllocatorCount] = {"legacy-ff", "flat-ff",
                                                    "bsd", "arena"};

struct Cell {
  uint64_t Events = 0;
  double Seconds = 0.0;
  double eventsPerSec() const {
    return Seconds > 0.0 ? static_cast<double>(Events) / Seconds : 0.0;
  }
};

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  std::string PolicyName = Cl.getString("policy", "roving");
  unsigned Repeat = static_cast<unsigned>(Cl.getInt("repeat", 3));
  if (Repeat < 1)
    Repeat = 1;

  FitPolicy Policy = FitPolicy::RovingFirstFit;
  if (PolicyName == "address")
    Policy = FitPolicy::AddressOrderedFirstFit;
  else if (PolicyName == "best")
    Policy = FitPolicy::BestFit;
  else if (PolicyName != "roving") {
    std::fprintf(stderr, "unknown --policy=%s (roving|address|best)\n",
                 PolicyName.c_str());
    return 1;
  }

  printBanner("Throughput", "simulator trace-replay events per second",
              Options);
  std::printf("fit policy: %s; repeats per trace: %u\n\n", PolicyName.c_str(),
              Repeat);

  SiteKeyPolicy KeyPolicy = SiteKeyPolicy::completeChain();

  ThreadPool Pool(Options.Jobs);
  std::vector<ProgramTraces> All = makeAllTraces(Options, Pool);

  // Train the arena databases up front (outside the timed region).
  std::vector<SiteDatabase> TrueDBs(All.size());
  parallelForIndex(Pool, All.size(), [&](size_t Index) {
    Profile TrainProfile = profileTrace(All[Index].Train, KeyPolicy);
    TrueDBs[Index] = trainDatabase(TrainProfile, KeyPolicy);
  });

  FirstFitAllocator::Config FFConfig;
  FFConfig.Policy = Policy;

  // One task per (program, allocator); each repeats its replay and times
  // only the replay calls.
  std::vector<Cell> Cells(All.size() * AllocatorCount);
  parallelForIndex(Pool, Cells.size(), [&](size_t Task) {
    size_t ProgramIndex = Task / AllocatorCount;
    unsigned Allocator = Task % AllocatorCount;
    const ProgramTraces &Traces = All[ProgramIndex];
    Cell &C = Cells[Task];
    C.Events = uint64_t(Repeat) * replayEventCount(Traces.Test);
    double Start = wallTimeSeconds();
    for (unsigned R = 0; R < Repeat; ++R) {
      switch (Allocator) {
      case 0:
        replayBaseline<LegacyFirstFitAllocator>(Traces.Test, FFConfig);
        break;
      case 1:
        replayBaseline<FirstFitAllocator>(Traces.Test, FFConfig);
        break;
      case 2:
        replayBaseline<BsdAllocator>(Traces.Test, BsdAllocator::Config());
        break;
      case 3:
        simulateArena(Traces.Test, TrueDBs[ProgramIndex],
                      Traces.Model.CallsPerAlloc);
        break;
      }
    }
    C.Seconds = wallTimeSeconds() - Start;
  });

  TableFormatter Table({"Program", "Allocator", "Events", "Seconds",
                        "Events/sec", "vs legacy"});
  JsonReport Report("sim_throughput", Options);

  Cell LegacyTotal, FlatTotal;
  uint64_t TotalEvents = 0;
  double TotalSeconds = 0.0;
  for (size_t I = 0; I < All.size(); ++I) {
    const Cell &Legacy = Cells[I * AllocatorCount + 0];
    for (unsigned A = 0; A < AllocatorCount; ++A) {
      const Cell &C = Cells[I * AllocatorCount + A];
      TotalEvents += C.Events;
      TotalSeconds += C.Seconds;
      Table.beginRow();
      Table.addCell(A == 0 ? All[I].Model.Name : "");
      Table.addCell(AllocatorNames[A]);
      Table.addInt(static_cast<int64_t>(C.Events));
      Table.addReal(C.Seconds, 3);
      Table.addInt(static_cast<int64_t>(C.eventsPerSec()));
      Table.addReal(Legacy.Seconds > 0.0 && C.Seconds > 0.0
                        ? Legacy.Seconds / C.Seconds
                        : 0.0,
                    2);
      Report.add(std::string(All[I].Model.Name) + "." + AllocatorNames[A] +
                     ".events_per_sec",
                 C.eventsPerSec());
    }
    LegacyTotal.Events += Legacy.Events;
    LegacyTotal.Seconds += Legacy.Seconds;
    FlatTotal.Events += Cells[I * AllocatorCount + 1].Events;
    FlatTotal.Seconds += Cells[I * AllocatorCount + 1].Seconds;
  }
  Table.print(std::cout);

  double Speedup = FlatTotal.Seconds > 0.0
                       ? LegacyTotal.Seconds / FlatTotal.Seconds
                       : 0.0;
  std::printf("\nfirst-fit replay (%s): legacy %.0f events/sec, flat %.0f "
              "events/sec — speedup %.2fx\n",
              PolicyName.c_str(), LegacyTotal.eventsPerSec(),
              FlatTotal.eventsPerSec(), Speedup);

  Report.setThroughput(TotalEvents, TotalSeconds);
  Report.add("legacy_ff.events_per_sec", LegacyTotal.eventsPerSec());
  Report.add("flat_ff.events_per_sec", FlatTotal.eventsPerSec());
  Report.add("flat_vs_legacy_speedup", Speedup);
  Report.write();
  return 0;
}
