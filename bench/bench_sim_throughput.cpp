//===- bench/bench_sim_throughput.cpp - Simulator hot-path throughput ------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Measures trace-replay throughput (events/sec, where an event is one
// alloc or one derived free) of the simulator hot path:
//
//   legacy-ff  : the original std::map/std::set first-fit block store,
//                retained as LegacyFirstFitAllocator (the differential
//                oracle), driven through the replayTrace oracle scheduler.
//   oracle-ff  : the flat boundary-tag block store driven through the same
//                replayTrace oracle (per-replay priority-queue scheduling,
//                virtual consumer dispatch).
//   flat-ff    : the flat store replaying the precompiled event schedule
//                (CompiledTrace) — the production path.
//   bsd        : the Kingsley power-of-two allocator, compiled schedule.
//   arena      : the lifetime-predicting arena allocator (true database),
//                compiled schedule with pre-resolved predictions.
//   multiarena : the two-band arena allocator (trained class database),
//                compiled schedule with pre-resolved bands.
//
// The oracle-ff/legacy-ff pair isolates the block-store rewrite; the
// flat-ff/oracle-ff pair isolates the schedule compilation (same allocator,
// same fit policy --policy=roving|address|best).  Schedule compilation is
// its own timed phase, reported separately from replay: the JSON carries
// compile.seconds / compile.schedule_bytes for the one-time cost and
// replay.events / replay.seconds / replay.events_per_sec for the compiled
// production replays (flat-ff, bsd, arena, multiarena) — the headline the
// regression gate watches.  Per-(program, allocator, repeat) replays fan
// out on the bench thread pool, all sharing each program's immutable
// compiled schedule; each task times only its own replay, and per-allocator
// throughput aggregates those task-local times, so --jobs only shortens the
// bench without perturbing the ratios.
//
// With --json (or --trace-out, or --audit-out) the bench additionally runs
// one *untimed* instrumented replay per (program, allocator family) after
// the timed region, collecting allocator counters, per-allocation
// histograms, and prediction outcomes into a StatsRegistry — one registry
// per program, merged in program order, so the telemetry section is
// identical at any --jobs.  --timeline-stride=N adds byte-clock heap
// samples of the first program's first-fit replay; --trace-out=<file>
// writes chrome://tracing spans for the run's phases (plus arena
// fill→pin→reset occupancy when auditing); --audit-out=<file> attaches a
// flight recorder to each program's arena replay and writes the lifetime
// audit (misprediction forensics and arena-pinning attribution), folding
// its headline numbers into the JSON report.
//
// Flags: the common --scale/--seed/--program/--jobs/--json/--trace-out/
// --audit-out/--timeline-stride, plus --policy (default roving) and
// --repeat=N (default 3) which replays every trace N times to lengthen
// the timed region.  --drift-out=<file> attaches the prediction drift
// observatory to each program's untimed arena replay and writes the
// windowed drift reports (confusion timelines, CUSUM change points,
// per-site quantile divergence) as ordered JSON, folding drift.* headline
// keys into the report; --drift-window=B overrides the auto window width.
//
// Two additional modes exercise the billion-event tier (trace/ScheduleFile
// + sim/StreamReplay):
//
//   --stream : compile each program's test trace to an on-disk .sched file
//     (timed), then replay it streamed four ways — sequential first-fit,
//     sequential BSD, batched-bitmap BSD, and chunk-sharded BSD across the
//     thread pool.  The instrumented pass exports the streamed "firstfit."
//     and "bsd." registries (byte-identical to the in-memory replays) plus
//     the sharded "shard." merge, so a bench_compare gate pins the whole
//     streamed tier.  --chunk-events=N sets the chunk granularity,
//     --sched-out=<dir> keeps the schedule files.
//
//   --grand-challenge=N : synthesize an N-event schedule from the
//     grandchallenge fuzz profile in bounded segments (the writer appends
//     segment by segment, so memory stays O(segment) while the file grows
//     to billions of events), then replay it streamed: batched-bitmap
//     single-thread and chunk-sharded aggregate.  A one-segment in-memory
//     compiled replay (the PR 4 path) is timed as the speedup reference.
//     The .sched file defaults to the working directory (not /tmp, which
//     may be a RAM-backed filesystem) and is deleted unless --sched-out or
//     --keep-sched is given.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "ObservatoryBench.h"

#include "alloc/LegacyFirstFitAllocator.h"
#include "core/Pipeline.h"
#include "sim/MultiArenaSimulator.h"
#include "sim/SimTelemetry.h"
#include "sim/StreamReplay.h"
#include "sim/TenantMux.h"
#include "sim/TraceSimulator.h"
#include "support/TableFormatter.h"
#include "telemetry/DriftObservatory.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/LifetimeAudit.h"
#include "telemetry/TraceEventWriter.h"
#include "trace/ScheduleFile.h"
#include "trace/TraceReplayer.h"
#include "verify/TraceFuzzer.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

using namespace lifepred;

namespace {

/// Replays \p Trace into a fresh \p Allocator through the replayTrace
/// oracle (per-replay priority-queue scheduling, virtual dispatch); the
/// caller times the call.  This is the pre-compilation path, kept as the
/// comparison row for the compiled replays.
template <typename AllocatorT>
void oracleReplay(const AllocationTrace &Trace,
                  typename AllocatorT::Config Config) {
  class Consumer : public TraceConsumer {
  public:
    Consumer(AllocatorT &Allocator, size_t ObjectCount)
        : Allocator(Allocator) {
      Addresses.resize(ObjectCount);
    }
    void onAlloc(uint64_t Id, const AllocRecord &Record, uint64_t) override {
      Addresses[Id] = Allocator.allocate(Record.Size);
      raisePeak(MaxLive, Allocator.liveBytes());
    }
    void onFree(uint64_t Id, const AllocRecord &, uint64_t) override {
      Allocator.free(Addresses[Id]);
    }

  private:
    AllocatorT &Allocator;
    std::vector<uint64_t> Addresses;
    uint64_t MaxLive = 0;
  };

  AllocatorT Allocator(Config);
  Consumer C(Allocator, Trace.size());
  replayTrace(Trace, C);
}

constexpr unsigned AllocatorCount = 6;
const char *const AllocatorNames[AllocatorCount] = {
    "legacy-ff", "oracle-ff", "flat-ff", "bsd", "arena", "multiarena"};

/// The two-band geometry of ablation_multi_arena's "2 bands" case: same
/// total area as the paper's single band, split.
const std::vector<uint64_t> MultiArenaThresholds = {16 * 1024, 32 * 1024};

MultiArenaAllocator::Config multiArenaConfig() {
  MultiArenaAllocator::Config Config;
  Config.Bands = {{32 * 1024, 8}, {32 * 1024, 8}};
  return Config;
}

struct Cell {
  uint64_t Events = 0;
  double Seconds = 0.0;
  double eventsPerSec() const {
    return Seconds > 0.0 ? static_cast<double>(Events) / Seconds : 0.0;
  }
};

ScheduleFileWriter::Config scheduleConfig(const CommandLine &Cl) {
  ScheduleFileWriter::Config Config;
  long ChunkEvents = Cl.getInt("chunk-events", 0);
  if (ChunkEvents > 0)
    Config.EventsPerChunk = static_cast<uint64_t>(ChunkEvents);
  return Config;
}

/// --serve=<tenants>x<threads>: the multi-tenant serving tier
/// (sim/TenantMux over alloc/ShardedHeap).  One TenantSet — thousands of
/// scaled per-tenant sessions with deterministic RNG streams — is built
/// once and replayed per allocator family: serially (the scaling
/// reference), in parallel channel mode (deterministic remote frees), and
/// for the CAS family additionally in eager mode (the lock-free
/// remote-free fast path).  The instrumented pass replays channel mode
/// into one StatsRegistry — aggregate, per-shard, and per-tenant sections
/// — which is byte-identical at any worker count; contention counters
/// (CAS retries, remote-free pushes, drain depths) are reported as
/// timing-class JSON values and manifest provenance, never gated.
///
/// Flags: --serve=TxW (tenants x workers; plain T uses --jobs workers),
/// --shards=S (logical heap shards, default 8), --slice-events=N (events
/// per tenant per round, default 256), --tenant-scale=F (per-tenant
/// workload scale, default 0.02), --serve-family=ff|bsd|cas|arena|all,
/// --repeat=N, plus the common --program/--seed/--json/--observe.
int runServeBench(const CommandLine &Cl, const BenchOptions &Options) {
  std::string ServeArg = Cl.getString("serve", "");
  unsigned Tenants = 64;
  unsigned Workers = Options.Jobs;
  {
    unsigned T = 0, W = 0;
    if (std::sscanf(ServeArg.c_str(), "%ux%u", &T, &W) == 2) {
      Tenants = T;
      Workers = W;
    } else if (std::sscanf(ServeArg.c_str(), "%u", &T) == 1) {
      Tenants = T;
    } else if (!ServeArg.empty()) {
      std::fprintf(stderr, "bad --serve=%s (want <tenants>x<threads>)\n",
                   ServeArg.c_str());
      return 1;
    }
  }
  unsigned Repeat = static_cast<unsigned>(Cl.getInt("repeat", 3));
  if (Repeat < 1)
    Repeat = 1;

  ServeConfig Cfg;
  Cfg.Tenants = Tenants;
  Cfg.Workers = Workers < 1 ? 1 : Workers;
  long Shards = Cl.getInt("shards", 8);
  Cfg.Shards = Shards < 1 ? 1 : static_cast<unsigned>(Shards);
  long Slice = Cl.getInt("slice-events", 256);
  Cfg.SliceEvents = Slice < 1 ? 1 : static_cast<unsigned>(Slice);
  Cfg.TenantScale = Cl.getDouble("tenant-scale", 0.02);
  Cfg.Seed = Options.Seed;
  Cfg.Program = Options.OnlyProgram;

  struct FamilyRow {
    ServeFamily Family;
    const char *Name;
  };
  std::vector<FamilyRow> Families;
  std::string FamilyArg = Cl.getString("serve-family", "all");
  bool All = FamilyArg == "all";
  if (All || FamilyArg == "ff")
    Families.push_back({ServeFamily::FirstFit, "serve-ff"});
  if (All || FamilyArg == "bsd")
    Families.push_back({ServeFamily::Bsd, "serve-bsd"});
  if (All || FamilyArg == "cas")
    Families.push_back({ServeFamily::Cas, "serve-cas"});
  if (All || FamilyArg == "arena")
    Families.push_back({ServeFamily::Arena, "serve-arena"});
  if (Families.empty()) {
    std::fprintf(stderr, "unknown --serve-family=%s (ff|bsd|cas|arena|all)\n",
                 FamilyArg.c_str());
    return 1;
  }
  for (const FamilyRow &Row : Families)
    Cfg.NeedPrediction |= Row.Family == ServeFamily::Arena;

  printBanner("Throughput (serving)",
              "multi-tenant sharded-heap replay events per second", Options);
  std::printf("tenants: %u; workers: %u; shards: %u; slice: %u events; "
              "tenant scale: %.3g\n\n",
              Cfg.Tenants, Cfg.Workers, Cfg.Shards, Cfg.SliceEvents,
              Cfg.TenantScale);

  ThreadPool Pool(Options.Jobs);
  std::unique_ptr<TenantSet> TS;
  try {
    TS = std::make_unique<TenantSet>(Cfg, Pool);
  } catch (const std::exception &Ex) {
    std::fprintf(stderr, "error: %s\n", Ex.what());
    return 1;
  }

  struct ServeCell {
    const char *Family = nullptr;
    const char *Mode = nullptr;
    unsigned Workers = 1;
    Cell C;
    ContentionCounters Contention;
    uint64_t RemoteFrees = 0;
  };
  std::vector<ServeCell> Cells;
  ContentionCounters ContentionTotal;

  auto TimedRun = [&](ServeFamily Family, const char *FamilyName,
                      const char *Mode, unsigned RunWorkers,
                      RemoteFreeMode Remote) {
    ServeCell Row;
    Row.Family = FamilyName;
    Row.Mode = Mode;
    Row.Workers = RunWorkers;
    Row.C.Events = uint64_t(Repeat) * TS->totalEvents();
    for (unsigned R = 0; R < Repeat; ++R) {
      TS->resetReplayState();
      ServeRunOptions Run;
      Run.Family = Family;
      Run.Remote = Remote;
      Run.Workers = RunWorkers;
      double Start = wallTimeSeconds();
      ServeResult Result = runServe(*TS, Run);
      Row.C.Seconds += wallTimeSeconds() - Start;
      Row.Contention.merge(Result.Contention);
      Row.RemoteFrees = Result.RemoteFrees;
    }
    ContentionTotal.merge(Row.Contention);
    Cells.push_back(Row);
  };

  for (const FamilyRow &Row : Families) {
    TimedRun(Row.Family, Row.Name, "serial", 1, RemoteFreeMode::Channel);
    if (Cfg.Workers > 1)
      TimedRun(Row.Family, Row.Name, "parallel", Cfg.Workers,
               RemoteFreeMode::Channel);
    if (Row.Family == ServeFamily::Cas)
      TimedRun(Row.Family, Row.Name, "eager", Cfg.Workers,
               RemoteFreeMode::Eager);
  }

  TableFormatter Table({"Family", "Mode", "Workers", "Events", "Seconds",
                        "Events/sec", "Speedup", "CAS retries",
                        "Remote frees"});
  JsonReport Report("serve_throughput", Options);
  Cell Total;
  double SerialSeconds = 0.0;
  for (const ServeCell &Row : Cells) {
    if (std::strcmp(Row.Mode, "serial") == 0)
      SerialSeconds = Row.C.Seconds;
    Total.Events += Row.C.Events;
    Total.Seconds += Row.C.Seconds;
    double Speedup = SerialSeconds > 0.0 && Row.C.Seconds > 0.0
                         ? SerialSeconds / Row.C.Seconds
                         : 0.0;
    Table.beginRow();
    Table.addCell(Row.Family);
    Table.addCell(Row.Mode);
    Table.addInt(Row.Workers);
    Table.addInt(static_cast<int64_t>(Row.C.Events));
    Table.addReal(Row.C.Seconds, 3);
    Table.addInt(static_cast<int64_t>(Row.C.eventsPerSec()));
    Table.addReal(Speedup, 2);
    Table.addInt(static_cast<int64_t>(Row.Contention.BitmapCasRetries +
                                      Row.Contention.ChannelCasRetries));
    Table.addInt(static_cast<int64_t>(Row.RemoteFrees));
    std::string Key = std::string(Row.Family) + "." + Row.Mode;
    Report.add(Key + ".events_per_sec", Row.C.eventsPerSec());
    if (std::strcmp(Row.Mode, "serial") != 0)
      Report.add(Key + ".speedup", Speedup);
  }
  Table.print(std::cout);
  std::printf("\nserving totals: %llu events over %llu rounds; %llu remote "
              "frees; peak RSS %llu KB\n",
              static_cast<unsigned long long>(TS->totalEvents()),
              static_cast<unsigned long long>(TS->rounds()),
              static_cast<unsigned long long>(
                  Cells.empty() ? 0 : Cells.back().RemoteFrees),
              static_cast<unsigned long long>(peakRssKb()));

  Report.setThroughput(Total.Events, Total.Seconds);
  Report.add("serve.tenants", static_cast<double>(Cfg.Tenants));
  Report.add("serve.workers", static_cast<double>(Cfg.Workers));
  Report.add("serve.shards", static_cast<double>(Cfg.Shards));
  Report.add("serve.slice_events", static_cast<double>(Cfg.SliceEvents));
  Report.add("serve.total_events", static_cast<double>(TS->totalEvents()));
  Report.add("serve.rounds", static_cast<double>(TS->rounds()));
  // Contention totals across all timed runs: timing-class keys
  // (isContentionMetric), reported for observability, never gated.
  Report.add("serve.contention.bitmap_cas_retries",
             static_cast<double>(ContentionTotal.BitmapCasRetries));
  Report.add("serve.contention.channel_cas_retries",
             static_cast<double>(ContentionTotal.ChannelCasRetries));
  Report.add("serve.contention.remote_free_pushes",
             static_cast<double>(ContentionTotal.RemoteFreePushes));
  Report.add("serve.contention.max_drain_depth",
             static_cast<double>(ContentionTotal.MaxDrainDepth));
  Report.setServeProvenance(Cfg.Workers, Cfg.Tenants,
                            ContentionTotal.BitmapCasRetries +
                                ContentionTotal.ChannelCasRetries,
                            ContentionTotal.RemoteFreePushes,
                            ContentionTotal.MaxDrainDepth);

  // Untimed instrumented pass: channel mode at the configured worker
  // count, one registry for every family in fixed order — byte-identical
  // at any worker count (the jobs-invariance test pins this).  Per-tenant
  // sections are exported once, under the first family's prefix: tenant
  // stats are stream-derived and family-independent.
  if (!Options.JsonPath.empty() || Options.Observe) {
    StatsRegistry Telemetry;
    bool FirstFamily = true;
    for (const FamilyRow &Row : Families) {
      TS->resetReplayState();
      ServeRunOptions Run;
      Run.Family = Row.Family;
      Run.Remote = RemoteFreeMode::Channel;
      Run.Registry = &Telemetry;
      Run.Prefix = std::string(Row.Name) + ".";
      Run.ExportTenants = FirstFamily;
      Run.CollectLatency = Options.Observe;
      Run.ProbeStrideBytes = Options.ObserveStride;
      runServe(*TS, Run);
      FirstFamily = false;
    }
    Report.attachTelemetry(&Telemetry);
    Report.write();
  } else {
    Report.write();
  }
  return 0;
}

/// --stream: the streamed-replay tier over the paper workloads.  Each
/// program's test trace is compiled to an on-disk schedule (timed), then
/// replayed four ways from the file.  The instrumented pass exports the
/// streamed registries, so a --json gate pins the tier's telemetry.
int runStreamBench(const CommandLine &Cl, const BenchOptions &Options) {
  unsigned Repeat = static_cast<unsigned>(Cl.getInt("repeat", 3));
  if (Repeat < 1)
    Repeat = 1;
  std::string SchedDir = Cl.getString("sched-out", "");
  bool KeepSched = !SchedDir.empty() || Cl.has("keep-sched");
  ScheduleFileWriter::Config SchedConfig = scheduleConfig(Cl);

  printBanner("Throughput (streamed)",
              "on-disk schedule replay events per second", Options);
  std::printf("chunk events: %llu; repeats per file: %u\n\n",
              static_cast<unsigned long long>(SchedConfig.EventsPerChunk),
              Repeat);

  ThreadPool Pool(Options.Jobs);
  std::vector<ProgramTraces> All = makeAllTraces(Options, Pool);
  if (All.empty()) {
    std::fprintf(stderr, "error: unknown program '%s'\n",
                 Options.OnlyProgram.c_str());
    return 1;
  }

  constexpr unsigned ShapeCount = 4;
  const char *const ShapeNames[ShapeCount] = {"stream-ff", "stream-bsd",
                                              "stream-batch", "stream-shard"};

  // Timed compile-to-disk phase, then the files are replayed read-only.
  double CompileSeconds = 0.0;
  uint64_t ScheduleBytes = 0;
  uint64_t ScheduleEvents = 0;
  uint64_t ScheduleChunks = 0;
  std::vector<std::string> Paths(All.size());
  std::vector<ScheduleFile> Files;
  for (size_t I = 0; I < All.size(); ++I) {
    Paths[I] = (SchedDir.empty() ? std::string() : SchedDir + "/") +
               All[I].Model.Name + ".sched";
    double Start = wallTimeSeconds();
    ScheduleFileWriter Writer(Paths[I], SchedConfig);
    Writer.append(All[I].Test);
    if (!Writer.finish()) {
      std::fprintf(stderr, "error: %s\n", Writer.error().c_str());
      return 1;
    }
    CompileSeconds += wallTimeSeconds() - Start;
    std::string Error;
    std::optional<ScheduleFile> File = ScheduleFile::open(Paths[I], Error);
    if (!File) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    ScheduleBytes += File->fileBytes();
    ScheduleEvents += File->eventCount();
    ScheduleChunks += File->chunkCount();
    Files.push_back(std::move(*File));
  }

  // Timed streamed replays.  The sharded shape fans out on the pool
  // itself, so the shapes run sequentially and each times only itself.
  std::vector<Cell> Cells(All.size() * ShapeCount);
  for (size_t I = 0; I < All.size(); ++I) {
    for (unsigned Shape = 0; Shape < ShapeCount; ++Shape) {
      Cell &C = Cells[I * ShapeCount + Shape];
      C.Events = uint64_t(Repeat) * Files[I].eventCount();
      double Start = wallTimeSeconds();
      for (unsigned R = 0; R < Repeat; ++R) {
        switch (Shape) {
        case 0:
          streamSimulateFirstFit(Files[I]);
          break;
        case 1:
          streamSimulateBsd(Files[I]);
          break;
        case 2:
          streamSimulateBsdBatched(Files[I]);
          break;
        case 3:
          streamReplayBsdSharded(Files[I], Pool);
          break;
        }
      }
      C.Seconds = wallTimeSeconds() - Start;
    }
  }

  TableFormatter Table({"Program", "Replay", "Events", "Seconds",
                        "Events/sec", "vs stream-bsd"});
  JsonReport Report("stream_throughput", Options);
  Cell ReplayTotal;
  for (size_t I = 0; I < All.size(); ++I) {
    const Cell &Sequential = Cells[I * ShapeCount + 1];
    for (unsigned Shape = 0; Shape < ShapeCount; ++Shape) {
      const Cell &C = Cells[I * ShapeCount + Shape];
      ReplayTotal.Events += C.Events;
      ReplayTotal.Seconds += C.Seconds;
      Table.beginRow();
      Table.addCell(Shape == 0 ? All[I].Model.Name : "");
      Table.addCell(ShapeNames[Shape]);
      Table.addInt(static_cast<int64_t>(C.Events));
      Table.addReal(C.Seconds, 3);
      Table.addInt(static_cast<int64_t>(C.eventsPerSec()));
      Table.addReal(Sequential.Seconds > 0.0 && C.Seconds > 0.0
                        ? Sequential.Seconds / C.Seconds
                        : 0.0,
                    2);
      Report.add(std::string(All[I].Model.Name) + "." + ShapeNames[Shape] +
                     ".events_per_sec",
                 C.eventsPerSec());
    }
  }
  Table.print(std::cout);
  std::printf("\nschedule compile: %.3f s for %llu events (%llu KB on disk, "
              "%llu chunks)\n",
              CompileSeconds, static_cast<unsigned long long>(ScheduleEvents),
              static_cast<unsigned long long>(ScheduleBytes / 1024),
              static_cast<unsigned long long>(ScheduleChunks));
  std::printf("streamed replays: %.0f events/sec aggregate (peak RSS %llu "
              "KB)\n",
              ReplayTotal.eventsPerSec(),
              static_cast<unsigned long long>(peakRssKb()));

  Report.setThroughput(ReplayTotal.Events, ReplayTotal.Seconds);
  Report.add("compile.seconds", CompileSeconds);
  Report.add("compile.schedule_bytes", static_cast<double>(ScheduleBytes));
  Report.add("compile.events", static_cast<double>(ScheduleEvents));
  Report.add("compile.chunks", static_cast<double>(ScheduleChunks));
  Report.add("replay.events", static_cast<double>(ReplayTotal.Events));
  Report.add("replay.seconds", ReplayTotal.Seconds);
  Report.add("replay.events_per_sec", ReplayTotal.eventsPerSec());

  // Untimed instrumented pass: the streamed sequential registries (pinned
  // byte-identical to the in-memory replays by tests/schedule_test) plus
  // the sharded merge (pinned jobs-invariant).  One registry per program,
  // merged in program order.  --observe attaches the heap observatory:
  // probes on the sequential shapes, per-shard probes on the sharded one,
  // and a separate batched replay whose probes export under "bsd.batch."
  // (its counter export stays detached — it would double the sequential
  // BSD keys).
  if (!Options.JsonPath.empty() || Options.Observe) {
    BenchObservatory Observatory(Options, All.size());
    StreamObserveConfig ShardObserve;
    ShardObserve.FragStrideBytes = Options.ObserveStride;
    StatsRegistry Telemetry;
    std::vector<StatsRegistry> PerProgram(All.size());
    for (size_t I = 0; I < All.size(); ++I) {
      SimTelemetry FF;
      FF.Registry = &PerProgram[I];
      Observatory.attach(FF, I, BenchObservatory::FirstFit);
      streamSimulateFirstFit(Files[I], CostModel(),
                             FirstFitAllocator::Config(), &FF);
      SimTelemetry Bsd;
      Bsd.Registry = &PerProgram[I];
      Observatory.attach(Bsd, I, BenchObservatory::Bsd);
      streamSimulateBsd(Files[I], CostModel(), BsdAllocator::Config(), &Bsd);
      streamReplayBsdSharded(Files[I], Pool, BsdAllocator::Config(),
                             &PerProgram[I], /*ChunksPerShard=*/1,
                             Options.Observe ? &ShardObserve : nullptr);
      if (Options.Observe) {
        FragmentationProbe BatchProbe(Options.ObserveStride);
        LatencyRecorder BatchLatency;
        SimTelemetry Batch;
        Batch.Fragmentation = &BatchProbe;
        Batch.Latency = &BatchLatency;
        streamSimulateBsdBatched(Files[I], CostModel(),
                                 BsdAllocator::Config(), /*BatchEvents=*/8192,
                                 &Batch);
        BatchProbe.exportTelemetry(PerProgram[I], "bsd.batch.");
        BatchLatency.exportTelemetry(PerProgram[I], "bsd.batch.");
      }
    }
    for (size_t I = 0; I < All.size(); ++I)
      Telemetry.merge(PerProgram[I]);
    Observatory.finish(Options, All);
    Report.attachTelemetry(&Telemetry);
    Report.write();
  } else {
    Report.write();
  }

  if (!KeepSched)
    for (const std::string &Path : Paths)
      std::remove(Path.c_str());
  return 0;
}

/// --grand-challenge=N: synthesize an N-event schedule from the
/// grandchallenge fuzz profile in bounded segments, then replay it
/// streamed.  Memory stays O(segment + chunk) throughout; the file carries
/// the events.
int runGrandChallenge(const CommandLine &Cl, const BenchOptions &Options,
                      uint64_t TargetEvents) {
  if (TargetEvents == 0) {
    std::fprintf(stderr, "error: --grand-challenge needs an event count\n");
    return 1;
  }
  std::string SchedPath = Cl.getString("sched-out", "grand_challenge.sched");
  bool KeepSched = Cl.has("sched-out") || Cl.has("keep-sched");
  ScheduleFileWriter::Config SchedConfig = scheduleConfig(Cl);
  long SegmentArg = Cl.getInt("segment-objects", 1 << 20);
  size_t SegmentObjects =
      SegmentArg > 0 ? static_cast<size_t>(SegmentArg) : size_t(1) << 20;

  printBanner("Grand challenge",
              "billion-event streamed schedule synthesis and replay",
              Options);
  std::printf("target events: %llu; segment objects: %zu; chunk events: "
              "%llu\n\n",
              static_cast<unsigned long long>(TargetEvents), SegmentObjects,
              static_cast<unsigned long long>(SchedConfig.EventsPerChunk));

  // Synthesis: bounded segments appended to the writer.  Every
  // grandchallenge object is freed within its segment, so segments
  // concatenate with empty live-in seams and peak memory is one segment's
  // trace plus the writer's buffers.
  double SynthStart = wallTimeSeconds();
  ScheduleFileWriter Writer(SchedPath, SchedConfig);
  uint64_t Segment = 0;
  while (Writer.valid() && Writer.eventCount() < TargetEvents) {
    AllocationTrace Trace = generateFuzzTrace(FuzzProfile::GrandChallenge,
                                              Options.Seed + Segment,
                                              SegmentObjects);
    Writer.append(Trace);
    ++Segment;
  }
  if (!Writer.finish()) {
    std::fprintf(stderr, "error: %s\n", Writer.error().c_str());
    return 1;
  }
  double SynthSeconds = wallTimeSeconds() - SynthStart;

  std::string Error;
  std::optional<ScheduleFile> File = ScheduleFile::open(SchedPath, Error);
  if (!File) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("synthesized %llu events in %llu segments: %.3f s, %llu MB "
              "on disk, %llu chunks\n",
              static_cast<unsigned long long>(File->eventCount()),
              static_cast<unsigned long long>(Segment), SynthSeconds,
              static_cast<unsigned long long>(File->fileBytes() >> 20),
              static_cast<unsigned long long>(File->chunkCount()));

  // The PR 4 single-thread reference: one segment replayed through the
  // in-memory compiled path (hash-map live table, LIFO free lists).
  AllocationTrace RefTrace = generateFuzzTrace(FuzzProfile::GrandChallenge,
                                               Options.Seed, SegmentObjects);
  CompiledTrace RefCompiled(RefTrace);
  uint64_t RefEvents = RefCompiled.schedule().size();
  double RefStart = wallTimeSeconds();
  simulateBsd(RefCompiled);
  double RefSeconds = wallTimeSeconds() - RefStart;
  double RefEvPerSec =
      RefSeconds > 0.0 ? static_cast<double>(RefEvents) / RefSeconds : 0.0;

  // The challenge replays: batched-bitmap single-thread, then sharded.
  Cell Batch;
  Batch.Events = File->eventCount();
  double BatchStart = wallTimeSeconds();
  streamSimulateBsdBatched(*File);
  Batch.Seconds = wallTimeSeconds() - BatchStart;

  ThreadPool Pool(Options.Jobs);
  Cell Shard;
  Shard.Events = File->eventCount();
  double ShardStart = wallTimeSeconds();
  streamReplayBsdSharded(*File, Pool);
  Shard.Seconds = wallTimeSeconds() - ShardStart;

  double Speedup = RefEvPerSec > 0.0 ? Batch.eventsPerSec() / RefEvPerSec : 0.0;
  std::printf("\ncompiled reference (1 segment): %.0f events/sec\n",
              RefEvPerSec);
  std::printf("batched-bitmap streamed:        %.0f events/sec "
              "(%.2fx the compiled path)\n",
              Batch.eventsPerSec(), Speedup);
  std::printf("sharded streamed (%u jobs):     %.0f events/sec\n",
              Options.Jobs, Shard.eventsPerSec());
  std::printf("peak RSS: %llu KB for a %llu MB schedule\n",
              static_cast<unsigned long long>(peakRssKb()),
              static_cast<unsigned long long>(File->fileBytes() >> 20));

  JsonReport Report("grand_challenge", Options);
  Report.setThroughput(Batch.Events + Shard.Events,
                       Batch.Seconds + Shard.Seconds);
  Report.add("compile.seconds", SynthSeconds);
  Report.add("compile.schedule_bytes", static_cast<double>(File->fileBytes()));
  Report.add("compile.events", static_cast<double>(File->eventCount()));
  Report.add("compile.chunks", static_cast<double>(File->chunkCount()));
  Report.add("replay.events", static_cast<double>(Batch.Events));
  Report.add("replay.seconds", Batch.Seconds);
  Report.add("replay.events_per_sec", Batch.eventsPerSec());
  Report.add("grand.batch.events_per_sec", Batch.eventsPerSec());
  Report.add("grand.shard.events_per_sec", Shard.eventsPerSec());
  Report.add("grand.compiled_ref.events_per_sec", RefEvPerSec);
  Report.add("grand.speedup_vs_compiled", Speedup);
  Report.write();

  if (!KeepSched)
    std::remove(SchedPath.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  if (Cl.has("grand-challenge"))
    return runGrandChallenge(
        Cl, Options, static_cast<uint64_t>(Cl.getInt("grand-challenge", 0)));
  if (Cl.has("serve"))
    return runServeBench(Cl, Options);
  if (Cl.has("stream"))
    return runStreamBench(Cl, Options);
  std::string PolicyName = Cl.getString("policy", "roving");
  unsigned Repeat = static_cast<unsigned>(Cl.getInt("repeat", 3));
  if (Repeat < 1)
    Repeat = 1;

  FitPolicy Policy = FitPolicy::RovingFirstFit;
  if (PolicyName == "address")
    Policy = FitPolicy::AddressOrderedFirstFit;
  else if (PolicyName == "best")
    Policy = FitPolicy::BestFit;
  else if (PolicyName != "roving") {
    std::fprintf(stderr, "unknown --policy=%s (roving|address|best)\n",
                 PolicyName.c_str());
    return 1;
  }

  printBanner("Throughput", "simulator trace-replay events per second",
              Options);
  std::printf("fit policy: %s; repeats per trace: %u\n\n", PolicyName.c_str(),
              Repeat);

  SiteKeyPolicy KeyPolicy = SiteKeyPolicy::completeChain();
  std::unique_ptr<TraceEventWriter> TraceWriter = makeTraceWriter(Options);

  ThreadPool Pool(Options.Jobs);
  std::vector<ProgramTraces> All;
  {
    TraceSpan Span(TraceWriter.get(), "generate-traces");
    All = makeAllTraces(Options, Pool);
  }

  // Train the arena databases up front (outside the timed region).  The
  // audit pass additionally needs the trained per-site quantiles to score
  // train-to-test drift, so --audit-out keeps the profiles.
  std::vector<SiteDatabase> TrueDBs(All.size());
  std::vector<ClassDatabase> ClassDBs(All.size());
  std::vector<Profile> TrainProfiles(All.size());
  {
    TraceSpan Span(TraceWriter.get(), "train");
    parallelForIndex(Pool, All.size(), [&](size_t Index) {
      Profile TrainProfile = profileTrace(All[Index].Train, KeyPolicy);
      TrueDBs[Index] = trainDatabase(TrainProfile, KeyPolicy);
      ClassDBs[Index] =
          trainClassDatabase(TrainProfile, KeyPolicy, MultiArenaThresholds);
      if (!Options.AuditOutPath.empty() || !Options.DriftOutPath.empty())
        TrainProfiles[Index] = std::move(TrainProfile);
    });
  }

  FirstFitAllocator::Config FFConfig;
  FFConfig.Policy = Policy;

  // Timed compile phase: each program's test trace is compiled once —
  // event schedule plus per-record site keys — and shared read-only by
  // every replay task below at any --jobs.
  std::vector<CompiledTrace> Compiled(All.size());
  std::vector<double> CompileSeconds(All.size());
  {
    TraceSpan Span(TraceWriter.get(), "compile-schedules");
    parallelForIndex(Pool, All.size(), [&](size_t Index) {
      double Start = wallTimeSeconds();
      Compiled[Index] = CompiledTrace(All[Index].Test, KeyPolicy);
      CompileSeconds[Index] = wallTimeSeconds() - Start;
    });
  }
  double CompileTotalSeconds = 0.0;
  uint64_t ScheduleBytes = 0;
  uint64_t ScheduleEvents = 0;
  for (size_t I = 0; I < All.size(); ++I) {
    CompileTotalSeconds += CompileSeconds[I];
    ScheduleBytes += Compiled[I].schedule().memoryBytes();
    ScheduleEvents += Compiled[I].schedule().size();
  }

  // One task per (program, allocator); each repeats its replay and times
  // only the replay calls.
  std::vector<Cell> Cells(All.size() * AllocatorCount);
  {
    TraceSpan Span(TraceWriter.get(), "timed-replays");
    parallelForIndex(Pool, Cells.size(), [&](size_t Task) {
      size_t ProgramIndex = Task / AllocatorCount;
      unsigned Allocator = Task % AllocatorCount;
      const ProgramTraces &Traces = All[ProgramIndex];
      const CompiledTrace &Test = Compiled[ProgramIndex];
      Cell &C = Cells[Task];
      C.Events = uint64_t(Repeat) * replayEventCount(Traces.Test);
      double Start = wallTimeSeconds();
      for (unsigned R = 0; R < Repeat; ++R) {
        switch (Allocator) {
        case 0:
          oracleReplay<LegacyFirstFitAllocator>(Traces.Test, FFConfig);
          break;
        case 1:
          oracleReplay<FirstFitAllocator>(Traces.Test, FFConfig);
          break;
        case 2:
          simulateFirstFit(Test, CostModel(), FFConfig);
          break;
        case 3:
          simulateBsd(Test);
          break;
        case 4:
          simulateArena(Test, TrueDBs[ProgramIndex],
                        Traces.Model.CallsPerAlloc);
          break;
        case 5:
          simulateMultiArena(Test, ClassDBs[ProgramIndex],
                             multiArenaConfig());
          break;
        }
      }
      C.Seconds = wallTimeSeconds() - Start;
    });
  }

  TableFormatter Table({"Program", "Allocator", "Events", "Seconds",
                        "Events/sec", "vs legacy"});
  JsonReport Report("sim_throughput", Options);

  Cell LegacyTotal, OracleTotal, FlatTotal, ReplayTotal;
  uint64_t TotalEvents = 0;
  double TotalSeconds = 0.0;
  for (size_t I = 0; I < All.size(); ++I) {
    const Cell &Legacy = Cells[I * AllocatorCount + 0];
    for (unsigned A = 0; A < AllocatorCount; ++A) {
      const Cell &C = Cells[I * AllocatorCount + A];
      TotalEvents += C.Events;
      TotalSeconds += C.Seconds;
      if (A >= 2) { // The compiled production replays: the headline.
        ReplayTotal.Events += C.Events;
        ReplayTotal.Seconds += C.Seconds;
      }
      Table.beginRow();
      Table.addCell(A == 0 ? All[I].Model.Name : "");
      Table.addCell(AllocatorNames[A]);
      Table.addInt(static_cast<int64_t>(C.Events));
      Table.addReal(C.Seconds, 3);
      Table.addInt(static_cast<int64_t>(C.eventsPerSec()));
      Table.addReal(Legacy.Seconds > 0.0 && C.Seconds > 0.0
                        ? Legacy.Seconds / C.Seconds
                        : 0.0,
                    2);
      Report.add(std::string(All[I].Model.Name) + "." + AllocatorNames[A] +
                     ".events_per_sec",
                 C.eventsPerSec());
    }
    LegacyTotal.Events += Legacy.Events;
    LegacyTotal.Seconds += Legacy.Seconds;
    OracleTotal.Events += Cells[I * AllocatorCount + 1].Events;
    OracleTotal.Seconds += Cells[I * AllocatorCount + 1].Seconds;
    FlatTotal.Events += Cells[I * AllocatorCount + 2].Events;
    FlatTotal.Seconds += Cells[I * AllocatorCount + 2].Seconds;
  }
  Table.print(std::cout);

  double BlockStoreSpeedup = OracleTotal.Seconds > 0.0
                                 ? LegacyTotal.Seconds / OracleTotal.Seconds
                                 : 0.0;
  double CompileSpeedup = FlatTotal.Seconds > 0.0
                              ? OracleTotal.Seconds / FlatTotal.Seconds
                              : 0.0;
  std::printf("\nschedule compile: %.3f s for %llu events (%llu KB of "
              "schedule)\n",
              CompileTotalSeconds,
              static_cast<unsigned long long>(ScheduleEvents),
              static_cast<unsigned long long>(ScheduleBytes / 1024));
  std::printf("first-fit replay (%s): legacy %.0f ev/s, oracle %.0f ev/s "
              "(block store %.2fx), compiled %.0f ev/s (schedule %.2fx)\n",
              PolicyName.c_str(), LegacyTotal.eventsPerSec(),
              OracleTotal.eventsPerSec(), BlockStoreSpeedup,
              FlatTotal.eventsPerSec(), CompileSpeedup);
  std::printf("compiled production replays: %.0f events/sec\n",
              ReplayTotal.eventsPerSec());

  Report.setThroughput(TotalEvents, TotalSeconds);
  Report.add("compile.seconds", CompileTotalSeconds);
  Report.add("compile.schedule_bytes", static_cast<double>(ScheduleBytes));
  Report.add("compile.events", static_cast<double>(ScheduleEvents));
  Report.add("replay.events", static_cast<double>(ReplayTotal.Events));
  Report.add("replay.seconds", ReplayTotal.Seconds);
  Report.add("replay.events_per_sec", ReplayTotal.eventsPerSec());
  Report.add("legacy_ff.events_per_sec", LegacyTotal.eventsPerSec());
  Report.add("oracle_ff.events_per_sec", OracleTotal.eventsPerSec());
  Report.add("flat_ff.events_per_sec", FlatTotal.eventsPerSec());
  Report.add("flat_vs_legacy_speedup", BlockStoreSpeedup);
  Report.add("compiled_vs_oracle_speedup", CompileSpeedup);

  // Untimed instrumented replays: allocator counters, histograms, and
  // prediction outcomes for the JSON report's telemetry section.  One
  // registry per program, merged in program order — deterministic at any
  // --jobs.  Runs after the timed region so it cannot perturb it.
  StatsRegistry Telemetry;
  HeapTimeline Timeline(Options.TimelineStride);
  BenchObservatory Observatory(Options, All.size());
  bool Audit = !Options.AuditOutPath.empty();
  bool Drift = !Options.DriftOutPath.empty();
  if (!Options.JsonPath.empty() || TraceWriter || Audit || Drift ||
      Observatory.enabled()) {
    TraceSpan Span(TraceWriter.get(), "instrumented-replays");
    std::vector<StatsRegistry> PerProgram(All.size());
    std::vector<PredictionCounts> ArenaOutcomes(All.size());
    // One flight recorder per program replay: each records serially inside
    // its task and is read back in program order below, so the audit output
    // is bit-identical at any --jobs.
    std::vector<std::unique_ptr<FlightRecorder>> Recorders(All.size());
    // One drift observatory per program's arena replay, built and read in
    // program order — the --drift-out report is bit-identical at any
    // --jobs.
    std::vector<std::unique_ptr<DriftObservatory>> DriftObs(All.size());
    if (Audit) {
      FlightRecorder::Config RecorderConfig;
      RecorderConfig.Seed = Options.Seed;
      for (auto &Recorder : Recorders)
        Recorder = std::make_unique<FlightRecorder>(RecorderConfig);
    }
    parallelForIndex(Pool, All.size(), [&](size_t Index) {
      TraceSpan ProgramSpan(TraceWriter.get(), All[Index].Model.Name,
                            "replay");
      const CompiledTrace &Test = Compiled[Index];
      SimTelemetry FF;
      FF.Registry = &PerProgram[Index];
      if (Index == 0 && Options.TimelineStride > 0)
        FF.Timeline = &Timeline;
      Observatory.attach(FF, Index, BenchObservatory::FirstFit);
      simulateFirstFit(Test, CostModel(), FFConfig, &FF);
      SimTelemetry Bsd;
      Bsd.Registry = &PerProgram[Index];
      Observatory.attach(Bsd, Index, BenchObservatory::Bsd);
      simulateBsd(Test, CostModel(), BsdAllocator::Config(), &Bsd);
      SimTelemetry Arena;
      Arena.Registry = &PerProgram[Index];
      Arena.Recorder = Recorders[Index].get();
      if (Drift) {
        DriftConfig Config;
        Config.EndClock = Test.schedule().endClock();
        Config.WindowBytes = Options.DriftWindowBytes;
        Config.Threshold = TrueDBs[Index].threshold();
        DriftObs[Index] = std::make_unique<DriftObservatory>(Config);
        Arena.Drift = DriftObs[Index].get();
      }
      Observatory.attach(Arena, Index, BenchObservatory::Arena);
      simulateArena(Test, TrueDBs[Index], All[Index].Model.CallsPerAlloc,
                    CostModel(), ArenaAllocator::Config(), &Arena);
      ArenaOutcomes[Index] = Arena.Outcomes;
      SimTelemetry Multi;
      Multi.Registry = &PerProgram[Index];
      Observatory.attach(Multi, Index, BenchObservatory::Multi);
      simulateMultiArena(Test, ClassDBs[Index], multiArenaConfig(), &Multi);
    });
    for (size_t I = 0; I < All.size(); ++I) {
      Telemetry.merge(PerProgram[I]);
      Report.add(std::string(All[I].Model.Name) + ".arena.pred_accuracy_pct",
                 ArenaOutcomes[I].accuracyPercent());
    }
    if (Audit) {
      std::FILE *AuditFile = std::fopen(Options.AuditOutPath.c_str(), "w");
      if (!AuditFile)
        std::fprintf(stderr, "warning: cannot write --audit-out=%s\n",
                     Options.AuditOutPath.c_str());
      for (size_t I = 0; I < All.size(); ++I) {
        std::string Name = All[I].Model.Name;
        TrainedQuantileMap Trained =
            buildTrainedQuantiles(All[I].Test, TrainProfiles[I], KeyPolicy);
        AuditReport ProgramAudit =
            buildAuditReport(*Recorders[I], &Trained, Name + ".arena");
        if (AuditFile)
          printAuditReport(ProgramAudit, AuditFile);
        exportAuditTelemetry(ProgramAudit, Telemetry, "audit." + Name + ".");
        Report.add(Name + ".audit.wasted_bytes",
                   static_cast<double>(ProgramAudit.wastedBytes()));
        Report.add(Name + ".audit.dead_bytes_pinned",
                   static_cast<double>(ProgramAudit.TotalDeadByteIntegral));
        if (TraceWriter)
          emitArenaOccupancy(ProgramAudit, *TraceWriter);
      }
      if (AuditFile)
        std::fclose(AuditFile);
    }
    if (Drift) {
      std::string DriftJson =
          "{\n  \"schema_version\": 1,\n  \"reports\": [\n";
      uint64_t TotalWindows = 0;
      uint64_t TotalChangePoints = 0;
      bool HaveWorst = false;
      DriftSiteScore Worst;
      for (size_t I = 0; I < All.size(); ++I) {
        std::string Name = All[I].Model.Name;
        TrainedQuantileMap Trained =
            buildTrainedQuantiles(All[I].Test, TrainProfiles[I], KeyPolicy);
        DriftReport ProgramDrift =
            buildDriftReport(*DriftObs[I], &Trained, Name + ".arena");
        writeDriftJson(ProgramDrift, DriftJson, "    ");
        DriftJson += I + 1 != All.size() ? ",\n" : "\n";
        exportDriftTelemetry(ProgramDrift, Telemetry, "drift." + Name + ".");
        if (TraceWriter)
          emitDriftTrack(ProgramDrift, *TraceWriter,
                         900 + static_cast<unsigned>(I) * 2);
        TotalWindows += ProgramDrift.Windows.size();
        TotalChangePoints += ProgramDrift.changePointCount();
        Report.add(Name + ".drift.windows",
                   static_cast<double>(ProgramDrift.Windows.size()));
        Report.add(Name + ".drift.changepoint_count",
                   static_cast<double>(ProgramDrift.changePointCount()));
        if (ProgramDrift.hasWorstSite() &&
            (!HaveWorst || ProgramDrift.worstSite().Score > Worst.Score)) {
          HaveWorst = true;
          Worst = ProgramDrift.worstSite();
        }
      }
      DriftJson += "  ]\n}\n";
      Report.add("drift.windows", static_cast<double>(TotalWindows));
      Report.add("drift.changepoint_count",
                 static_cast<double>(TotalChangePoints));
      if (HaveWorst) {
        Report.add("drift.worst_site_id", static_cast<double>(Worst.Site));
        Report.add("drift.worst_site_window",
                   static_cast<double>(Worst.Window));
        Report.add("drift.worst_site_score", Worst.Score);
      }
      std::FILE *DriftFile = std::fopen(Options.DriftOutPath.c_str(), "w");
      if (!DriftFile) {
        std::fprintf(stderr, "warning: cannot write --drift-out=%s\n",
                     Options.DriftOutPath.c_str());
      } else {
        std::fwrite(DriftJson.data(), 1, DriftJson.size(), DriftFile);
        std::fclose(DriftFile);
        std::printf("drift JSON written to %s\n",
                    Options.DriftOutPath.c_str());
      }
    }
    if (Options.TimelineStride > 0) {
      Timeline.exportTelemetry(Telemetry, "timeline.");
      Report.attachTimeline(&Timeline);
    }
    Observatory.finish(Options, All);
    Report.attachTelemetry(&Telemetry);
  }

  Report.write();
  if (TraceWriter)
    TraceWriter->close();
  return 0;
}
