//===- bench/ablation_multi_arena.cpp - Banded lifetime segregation --------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Extension beyond the paper: instead of one short-lived band (< 32 KB,
// 64 KB arena area), classify sites into *two* bands — very short (< 4 KB)
// and medium (< 32 KB) — each with its own arena area.  Band 0 recycles in
// a small cache-hot window while band 1 keeps the medium-lived objects
// from pinning it.  This is the generational direction the paper's
// related-work section sketches.  Single-band at the same total area is
// the paper's algorithm, included as the baseline.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/LifetimeClassifier.h"
#include "core/Profiler.h"
#include "sim/MultiArenaSimulator.h"
#include "support/TableFormatter.h"

#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  if (!Cl.has("scale"))
    Options.Scale = 0.25;
  printBanner("Ablation H",
              "two-band lifetime segregation vs the paper's single band",
              Options);

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();

  TableFormatter Table({"Program", "Config", "Band0%", "Band1%",
                        "General%", "Fallback0", "MaxHeap(K)"});
  for (const ProgramTraces &Traces : makeAllTraces(Options)) {
    Profile TrainProfile = profileTrace(Traces.Train, Policy);
    // One compile serves both band configurations' replays.
    CompiledTrace Test(Traces.Test, Policy);

    struct Case {
      const char *Name;
      std::vector<uint64_t> Thresholds;
      MultiArenaAllocator::Config Config;
    };
    std::vector<Case> Cases;
    {
      Case Single;
      Single.Name = "1 band (paper)";
      Single.Thresholds = {32 * 1024};
      Single.Config.Bands = {{64 * 1024, 16}};
      Cases.push_back(Single);
    }
    {
      Case Dual;
      Dual.Name = "2 bands";
      Dual.Thresholds = {16 * 1024, 32 * 1024};
      // Same total area, split: a small fast-recycling window for the
      // under-16 KB sites plus a larger area for the 16-32 KB band.
      Dual.Config.Bands = {{32 * 1024, 8}, {32 * 1024, 8}};
      Cases.push_back(Dual);
    }

    bool First = true;
    for (const Case &C : Cases) {
      ClassDatabase DB =
          trainClassDatabase(TrainProfile, Policy, C.Thresholds);
      MultiArenaSimResult R = simulateMultiArena(Test, DB, C.Config);

      uint64_t TotalBytes = R.GeneralBytes;
      for (const auto &Band : R.PerBand)
        TotalBytes += Band.Bytes;
      Table.beginRow();
      Table.addCell(First ? Traces.Model.Name : "");
      Table.addCell(C.Name);
      Table.addPercent(R.bandBytesPercent(0));
      if (R.PerBand.size() > 1)
        Table.addPercent(R.bandBytesPercent(1));
      else
        Table.addCell("-");
      Table.addPercent(TotalBytes == 0
                           ? 0.0
                           : 100.0 *
                                 static_cast<double>(R.GeneralBytes) /
                                 static_cast<double>(TotalBytes));
      Table.addInt(static_cast<int64_t>(R.PerBand[0].Fallbacks));
      Table.addInt(static_cast<int64_t>(R.MaxHeapBytes / 1024));
      First = false;
    }
  }
  Table.print(std::cout);
  std::printf("\nReading: banding is a real tradeoff, not a free "
              "win.  Where the short band fits its traffic (GAWK) the "
              "fast-dying objects keep full coverage in half the address "
              "window.  Where lifetimes crowd the band boundary (GHOST, "
              "ESPRESSO) the conservative per-band rule plus the halved "
              "area shed coverage to the general heap, and PERL's "
              "mispredicted long objects pollute the smaller band faster "
              "than the paper's single 64 KB area.  The paper's one-band "
              "32 KB/64 KB design is a solid default; banding pays only "
              "when the lifetime histogram has a deep valley between "
              "bands.\n");
  return 0;
}
