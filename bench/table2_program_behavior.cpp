//===- bench/table2_program_behavior.cpp - Reproduce Table 2 ---------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Reproduces Table 2: per-program allocation behaviour — total objects and
// bytes allocated, peak simultaneously-live bytes and objects, and the
// fraction of memory references touching the heap.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TableFormatter.h"
#include "trace/TraceStats.h"

#include <cstdio>
#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  printBanner("Table 2", "memory allocation behaviour of the test programs",
              Options);

  TableFormatter Table({"Program", "Calls(M)", "paper", "Bytes(M)", "paper",
                        "Objects(M)", "paper", "MaxBytes(K)", "paper",
                        "MaxObjects", "paper", "HeapRefs(%)", "paper"});

  for (const ProgramTraces &Traces : makeAllTraces(Options)) {
    const PaperProgramData *Paper = paperData(Traces.Model.Name);
    TraceStats Stats = computeTraceStats(Traces.Train);

    Table.beginRow();
    Table.addCell(Traces.Model.Name);
    Table.addReal(static_cast<double>(Stats.TotalObjects) *
                      Traces.Model.CallsPerAlloc / 1e6,
                  2);
    Table.addReal(Paper->FunctionCallsM, 2);
    Table.addReal(static_cast<double>(Stats.TotalBytes) / 1e6, 1);
    Table.addReal(Paper->TotalBytesM, 1);
    Table.addReal(static_cast<double>(Stats.TotalObjects) / 1e6, 1);
    Table.addReal(Paper->TotalObjectsM, 1);
    Table.addInt(static_cast<int64_t>(Stats.MaxLiveBytes / 1000));
    Table.addReal(Paper->MaxBytesK, 0);
    Table.addInt(static_cast<int64_t>(Stats.MaxLiveObjects));
    Table.addInt(Paper->MaxObjects);
    Table.addPercent(Stats.heapRefPercent(), 0);
    Table.addInt(Paper->HeapRefsPercent);
  }

  Table.print(std::cout);
  std::printf("\nNote: GHOST's published call count (1.21M) is inconsistent "
              "with the paper's own Table 9 cce overhead; we model the "
              "Table 9-consistent rate (see EXPERIMENTS.md).\n");
  return 0;
}
