//===- bench/ablation_arena_geometry.cpp - Arena geometry sweep ------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Ablation for section 5.2's geometry choices: the 64 KB arena area
// ("twice the age of the objects predicted short-lived") divided into 16
// blocks ("blocking reduces the space consumed by erroneously predicted
// long-lived objects").  Sweeps area size and block count on GAWK (the
// success case) and CFRAC (the pollution case).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Pipeline.h"
#include "sim/TraceSimulator.h"
#include "support/TableFormatter.h"

#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  if (!Cl.has("scale"))
    Options.Scale = 0.25;
  printBanner("Ablation B", "arena area size and block count sweep",
              Options);

  struct Geometry {
    uint64_t AreaKb;
    unsigned Count;
  };
  const Geometry Geometries[] = {{64, 1},  {64, 4},   {64, 16}, {64, 64},
                                 {32, 8},  {128, 32}, {256, 64}};

  TableFormatter Table({"Program", "Area(K)", "Blocks", "Arena%",
                        "ArenaBytes%", "MaxHeap(K)", "Fallback%"});
  for (const ProgramTraces &Traces : makeAllTraces(Options)) {
    if (Traces.Model.Name != "GAWK" && Traces.Model.Name != "CFRAC")
      continue;
    SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();
    SiteDatabase DB =
        trainDatabase(profileTrace(Traces.Train, Policy), Policy);
    // One compile serves every geometry's replay of the same test trace.
    CompiledTrace Test(Traces.Test, Policy);
    bool First = true;
    for (const Geometry &G : Geometries) {
      ArenaAllocator::Config Cfg;
      Cfg.AreaBytes = G.AreaKb * 1024;
      Cfg.ArenaCount = G.Count;
      ArenaSimResult R = simulateArena(Test, DB,
                                       Traces.Model.CallsPerAlloc,
                                       CostModel(), Cfg);
      uint64_t Total = R.Arena.ArenaAllocs + R.Arena.GeneralAllocs;
      Table.beginRow();
      Table.addCell(First ? Traces.Model.Name : "");
      Table.addInt(static_cast<int64_t>(G.AreaKb));
      Table.addInt(G.Count);
      Table.addPercent(R.arenaAllocPercent());
      Table.addPercent(R.arenaBytesPercent());
      Table.addInt(static_cast<int64_t>(R.MaxHeapBytes / 1024));
      Table.addPercent(Total == 0
                           ? 0.0
                           : 100.0 *
                                 static_cast<double>(
                                     R.Arena.FallbackAllocs) /
                                 static_cast<double>(Total));
      First = false;
    }
  }
  Table.print(std::cout);
  std::printf("\nReading: one undivided 64 KB arena lets a single "
              "mispredicted object pin the whole area; finer blocking "
              "bounds the damage (the paper's 16 x 4 KB choice).\n");
  return 0;
}
