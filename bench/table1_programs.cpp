//===- bench/table1_programs.cpp - Reproduce Table 1 -----------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Table 1 is the paper's prose description of the five test programs and
// their inputs.  This binary prints the corresponding model inventory —
// description, modeled input relationship between the train and test
// datasets, and the site-population summary each model was calibrated to.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  printBanner("Table 1", "general information about the test programs",
              Options);

  for (const ProgramModel &Model : allPrograms()) {
    if (!Options.OnlyProgram.empty() && Model.Name != Options.OnlyProgram)
      continue;
    const PaperProgramData *Paper = paperData(Model.Name);
    unsigned TrainOnly = 0, TestOnly = 0;
    for (const SiteSpec &Site : Model.Sites) {
      TrainOnly += Site.TrainOnly;
      TestOnly += Site.TestOnly;
    }
    std::printf("%-8s  %s\n", Model.Name.c_str(),
                Model.Description.c_str());
    std::printf("          paper source size: %u lines of C; "
                "%.0fM instructions executed\n",
                Paper->SourceLines, Paper->InstructionsM);
    std::printf("          model: %zu sites (%u train-only, %u test-only "
                "twins), %llu objects at scale 1, ~%.1f calls/alloc, "
                "test-weight sigma %.2f\n\n",
                Model.Sites.size(), TrainOnly, TestOnly,
                static_cast<unsigned long long>(Model.BaseObjects),
                Model.CallsPerAlloc, Model.TestWeightSigma);
  }
  std::printf("Train/test input relationships (driving Table 4's "
              "self-vs-true gap):\n"
              "  CFRAC    different products of primes: same sites, "
              "shifted mix, rare long-lived results\n"
              "  ESPRESSO different PLA examples: over half the trained "
              "sites never recur\n"
              "  GAWK     same awk script on different data: true equals "
              "self\n"
              "  GHOST    different documents: moderate site turnover\n"
              "  PERL     two different perl scripts: most sites differ "
              "and weights shift heavily\n");
  return 0;
}
