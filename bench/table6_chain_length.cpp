//===- bench/table6_chain_length.cpp - Reproduce Table 6 -------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Reproduces Table 6: the effect of the call-chain length on short-lived
// prediction (self prediction).  Sub-chains of length 1..7 use the raw
// chain; the "inf" row uses the complete chain with recursive cycles
// pruned — which is why "inf" can predict *less* than length 7 on programs
// with recursion (the paper's ESPRESSO note).  The "NewRef" columns give
// the fraction of all memory references made to predicted objects.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Pipeline.h"
#include "support/TableFormatter.h"

#include <iostream>
#include <string>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  printBanner("Table 6", "effect of call-chain length on prediction",
              Options);

  std::vector<ProgramTraces> All = makeAllTraces(Options);
  TableFormatter Table({"Length", "Program", "Pred%", "paper", "NewRef%",
                        "paper"});

  for (const ProgramTraces &Traces : All) {
    const PaperProgramData *Paper = paperData(Traces.Model.Name);
    for (unsigned Row = 0; Row < 8; ++Row) {
      bool Complete = Row == 7;
      SiteKeyPolicy Policy = Complete
                                 ? SiteKeyPolicy::completeChain()
                                 : SiteKeyPolicy::lastN(Row + 1);
      PipelineResult Self =
          trainAndEvaluate(Traces.Train, Traces.Train, Policy);

      Table.beginRow();
      std::string Label = Complete ? "inf" : std::to_string(Row + 1);
      if (Paper->ChainJumpLength == static_cast<int>(Row + 1))
        Label = "(" + Label + ")"; // The paper's abrupt-improvement marker.
      Table.addCell(Row == 0 ? Traces.Model.Name + (" len " + Label)
                             : "  len " + Label);
      Table.addCell(Row == 0 ? "" : Traces.Model.Name);
      Table.addPercent(Self.Report.predictedShortPercent(), 0);
      Table.addInt(Paper->ChainPredPercent[Row]);
      Table.addPercent(Self.Report.newRefPercent(), 0);
      Table.addInt(Paper->ChainNewRefPercent[Row]);
    }
  }

  Table.print(std::cout);
  return 0;
}
