//===- bench/ablation_fit_policy.cpp - Free-list policy comparison ---------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Ablation for the baseline-allocator choice.  The paper picks "a
// relatively simple first-fit algorithm with enhancements described by
// Knuth" for its good memory utilization; this sweep compares the three
// classic free-list policies — roving-pointer first fit (next fit),
// address-ordered first fit, and best fit — on heap size and search cost,
// with and without arena segregation in front.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Pipeline.h"
#include "sim/TraceSimulator.h"
#include "support/TableFormatter.h"

#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  if (!Cl.has("scale"))
    Options.Scale = 0.25;
  printBanner("Ablation E", "free-list policy: next fit vs first fit vs "
                            "best fit",
              Options);

  struct PolicyCase {
    const char *Name;
    FitPolicy Policy;
  };
  const PolicyCase Policies[] = {
      {"roving (next fit)", FitPolicy::RovingFirstFit},
      {"address-ordered", FitPolicy::AddressOrderedFirstFit},
      {"best fit", FitPolicy::BestFit},
  };

  TableFormatter Table({"Program", "Policy", "PlainHeap(K)", "steps/alloc",
                        "ArenaHeap(K)", "ArenaSteps/alloc"});
  for (const ProgramTraces &Traces : makeAllTraces(Options)) {
    SiteKeyPolicy KeyPolicy = SiteKeyPolicy::completeChain();
    SiteDatabase DB =
        trainDatabase(profileTrace(Traces.Train, KeyPolicy), KeyPolicy);
    // One compile serves all six replays of the program's test trace.
    CompiledTrace Test(Traces.Test, KeyPolicy);
    bool First = true;
    for (const PolicyCase &Case : Policies) {
      FirstFitAllocator::Config FFConfig;
      FFConfig.Policy = Case.Policy;
      BaselineSimResult Plain = simulateFirstFit(Test, CostModel(), FFConfig);
      ArenaAllocator::Config ArenaConfig;
      ArenaConfig.General.Policy = Case.Policy;
      ArenaSimResult Arena =
          simulateArena(Test, DB, Traces.Model.CallsPerAlloc,
                        CostModel(), ArenaConfig);

      auto StepsPerAlloc = [](const FirstFitAllocator::Counters &C) {
        return C.Allocs == 0 ? 0.0
                             : static_cast<double>(C.SearchSteps) /
                                   static_cast<double>(C.Allocs);
      };
      Table.beginRow();
      Table.addCell(First ? Traces.Model.Name : "");
      Table.addCell(Case.Name);
      Table.addInt(static_cast<int64_t>(Plain.MaxHeapBytes / 1024));
      Table.addReal(StepsPerAlloc(Plain.FirstFit), 1);
      Table.addInt(static_cast<int64_t>(Arena.MaxHeapBytes / 1024));
      Table.addReal(StepsPerAlloc(Arena.General), 1);
      First = false;
    }
  }
  Table.print(std::cout);
  std::printf("\nReading: best fit and address-ordered first fit use "
              "memory tightly but pay longer searches; the roving pointer "
              "is cheap per allocation but spreads long-lived objects "
              "(worst on GHOST).  Arena segregation shrinks the gap by "
              "taking the churn out of the free list.\n");
  return 0;
}
