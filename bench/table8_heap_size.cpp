//===- bench/table8_heap_size.cpp - Reproduce Table 8 ----------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Reproduces Table 8: maximum heap sizes under plain first fit versus the
// lifetime-predicting arena allocator (self- and true-prediction site
// databases).  The arena heap includes the whole 64 KB arena area, so
// programs with small heaps pay ~64 KB of overhead while GHOST — the only
// large-heap program — sees a substantial net reduction because the
// short-lived objects stop fragmenting the general heap.
//
// Each (program, allocator) simulation is an independent task on the
// bench thread pool (--jobs); rows print in program order afterwards, so
// the output is identical at any job count.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "ObservatoryBench.h"

#include "core/Pipeline.h"
#include "sim/TraceSimulator.h"
#include "support/TableFormatter.h"

#include <iostream>

using namespace lifepred;

namespace {

/// One program's three simulation results.
struct Row {
  BaselineSimResult FF;
  ArenaSimResult Self;
  ArenaSimResult True;
};

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  printBanner("Table 8", "maximum heap sizes (kilobytes)", Options);

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();

  ThreadPool Pool(Options.Jobs);
  std::vector<ProgramTraces> All = makeAllTraces(Options, Pool);
  std::vector<CompiledTrace> Compiled = compileAllTraces(All, Pool, &Policy);

  // Fan out one task per (program, allocator), all replaying the shared
  // compiled schedule.  Database training rides inside the task that
  // consumes it.
  std::vector<Row> Rows(All.size());
  uint64_t Events = 0;
  for (const ProgramTraces &Traces : All)
    Events += 3 * replayEventCount(Traces.Test);
  double Start = wallTimeSeconds();
  parallelForIndex(Pool, All.size() * 3, [&](size_t Task) {
    const ProgramTraces &Traces = All[Task / 3];
    const CompiledTrace &Test = Compiled[Task / 3];
    Row &R = Rows[Task / 3];
    switch (Task % 3) {
    case 0:
      R.FF = simulateFirstFit(Test);
      break;
    case 1: {
      // The paper sizes heaps on the *test* (performance) input; the
      // self database is trained on that same input.
      Profile SelfProfile = profileTrace(Traces.Test, Policy);
      SiteDatabase SelfDB = trainDatabase(SelfProfile, Policy);
      R.Self = simulateArena(Test, SelfDB, Traces.Model.CallsPerAlloc);
      break;
    }
    case 2: {
      // ...the true database on the training input.
      Profile TrainProfile = profileTrace(Traces.Train, Policy);
      SiteDatabase TrueDB = trainDatabase(TrainProfile, Policy);
      R.True = simulateArena(Test, TrueDB, Traces.Model.CallsPerAlloc);
      break;
    }
    }
  });
  double Wall = wallTimeSeconds() - Start;

  TableFormatter Table({"Program", "FirstFit(K)", "paper", "SelfArena(K)",
                        "paper", "Self/FF%", "paper", "TrueArena(K)",
                        "paper", "True/FF%", "paper"});
  JsonReport Report("table8_heap_size", Options);
  Report.setThroughput(Events, Wall);

  for (size_t I = 0; I < All.size(); ++I) {
    const ProgramTraces &Traces = All[I];
    const Row &R = Rows[I];
    const PaperProgramData *Paper = paperData(Traces.Model.Name);

    auto Kb = [](uint64_t Bytes) {
      return static_cast<int64_t>(Bytes / 1024);
    };
    Table.beginRow();
    Table.addCell(Traces.Model.Name);
    Table.addInt(Kb(R.FF.MaxHeapBytes));
    Table.addInt(Paper->FirstFitHeapK);
    Table.addInt(Kb(R.Self.MaxHeapBytes));
    Table.addInt(Paper->SelfArenaHeapK);
    Table.addPercent(100.0 * static_cast<double>(R.Self.MaxHeapBytes) /
                         static_cast<double>(R.FF.MaxHeapBytes),
                     1);
    Table.addReal(100.0 * Paper->SelfArenaHeapK / Paper->FirstFitHeapK, 1);
    Table.addInt(Kb(R.True.MaxHeapBytes));
    Table.addInt(Paper->TrueArenaHeapK);
    Table.addPercent(100.0 * static_cast<double>(R.True.MaxHeapBytes) /
                         static_cast<double>(R.FF.MaxHeapBytes),
                     1);
    Table.addReal(100.0 * Paper->TrueArenaHeapK / Paper->FirstFitHeapK, 1);

    std::string Name = Traces.Model.Name;
    Report.add(Name + ".firstfit_heap_k",
               static_cast<double>(Kb(R.FF.MaxHeapBytes)));
    Report.add(Name + ".self_arena_heap_k",
               static_cast<double>(Kb(R.Self.MaxHeapBytes)));
    Report.add(Name + ".true_arena_heap_k",
               static_cast<double>(Kb(R.True.MaxHeapBytes)));
  }

  Table.print(std::cout);
  StatsRegistry ObservatoryRegistry;
  if (runObservatoryPass(Options, All, Pool, ObservatoryRegistry))
    Report.attachTelemetry(&ObservatoryRegistry);
  Report.write();
  return 0;
}
