//===- bench/table8_heap_size.cpp - Reproduce Table 8 ----------------------===//
//
// Part of the lifepred project (Barrett & Zorn, PLDI 1993 reproduction).
//
// Reproduces Table 8: maximum heap sizes under plain first fit versus the
// lifetime-predicting arena allocator (self- and true-prediction site
// databases).  The arena heap includes the whole 64 KB arena area, so
// programs with small heaps pay ~64 KB of overhead while GHOST — the only
// large-heap program — sees a substantial net reduction because the
// short-lived objects stop fragmenting the general heap.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Pipeline.h"
#include "sim/TraceSimulator.h"
#include "support/TableFormatter.h"

#include <iostream>

using namespace lifepred;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  BenchOptions Options = BenchOptions::fromCommandLine(Cl);
  printBanner("Table 8", "maximum heap sizes (kilobytes)", Options);

  SiteKeyPolicy Policy = SiteKeyPolicy::completeChain();

  TableFormatter Table({"Program", "FirstFit(K)", "paper", "SelfArena(K)",
                        "paper", "Self/FF%", "paper", "TrueArena(K)",
                        "paper", "True/FF%", "paper"});

  for (const ProgramTraces &Traces : makeAllTraces(Options)) {
    const PaperProgramData *Paper = paperData(Traces.Model.Name);

    // The paper sizes heaps on the *test* (performance) input; the self
    // database is trained on that same input, the true database on the
    // training input.
    Profile SelfProfile = profileTrace(Traces.Test, Policy);
    SiteDatabase SelfDB = trainDatabase(SelfProfile, Policy);
    Profile TrainProfile = profileTrace(Traces.Train, Policy);
    SiteDatabase TrueDB = trainDatabase(TrainProfile, Policy);

    BaselineSimResult FF = simulateFirstFit(Traces.Test);
    ArenaSimResult Self =
        simulateArena(Traces.Test, SelfDB, Traces.Model.CallsPerAlloc);
    ArenaSimResult True =
        simulateArena(Traces.Test, TrueDB, Traces.Model.CallsPerAlloc);

    auto Kb = [](uint64_t Bytes) {
      return static_cast<int64_t>(Bytes / 1024);
    };
    Table.beginRow();
    Table.addCell(Traces.Model.Name);
    Table.addInt(Kb(FF.MaxHeapBytes));
    Table.addInt(Paper->FirstFitHeapK);
    Table.addInt(Kb(Self.MaxHeapBytes));
    Table.addInt(Paper->SelfArenaHeapK);
    Table.addPercent(100.0 * static_cast<double>(Self.MaxHeapBytes) /
                         static_cast<double>(FF.MaxHeapBytes),
                     1);
    Table.addReal(100.0 * Paper->SelfArenaHeapK / Paper->FirstFitHeapK, 1);
    Table.addInt(Kb(True.MaxHeapBytes));
    Table.addInt(Paper->TrueArenaHeapK);
    Table.addPercent(100.0 * static_cast<double>(True.MaxHeapBytes) /
                         static_cast<double>(FF.MaxHeapBytes),
                     1);
    Table.addReal(100.0 * Paper->TrueArenaHeapK / Paper->FirstFitHeapK, 1);
  }

  Table.print(std::cout);
  return 0;
}
